(* Tests for the differential-verification harness itself: the seeded
   generators produce valid models, every oracle passes on a batch of
   seeded instances, the greedy shrinker minimizes failing cases, and the
   driver writes parseable repro files. *)

module Rng = Bufsize_prob.Rng
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Splitting = Bufsize_soc.Splitting
module Spec_parser = Bufsize_soc.Spec_parser
module Ctmdp = Bufsize_mdp.Ctmdp
module Lp = Bufsize_numeric.Lp
module Gen_model = Bufsize_verify.Gen_model
module Oracle = Bufsize_verify.Oracle
module Oracles = Bufsize_verify.Oracles
module Shrink = Bufsize_verify.Shrink
module Driver = Bufsize_verify.Driver
module Arb = Bufsize_verify_qcheck.Verify_arbitrary

(* ------------------------------------------------- generator validity *)

let qcheck ?(count = 100) name arb prop =
  QCheck.Test.check_exn (QCheck.Test.make ~count ~name arb prop)

let test_gen_arch_valid () =
  qcheck "arch validity" Arb.arch (fun (_, (topo, traffic)) ->
      let split = Splitting.split traffic in
      Topology.is_connected topo
      && Topology.num_processors topo >= 2
      && Array.length (Traffic.flows traffic) > 0
      && Array.for_all
           (fun (s : Splitting.subsystem) ->
             List.exists (fun (_, r) -> r > 0.) s.Splitting.clients)
           split.Splitting.subsystems)

let test_gen_arch_utilization_capped () =
  (* The cap is exact up to the 0.001-word rate floor applied to flows
     whose rescaled rate would round to zero — hence the small slack. *)
  qcheck "arch utilization" Arb.arch (fun (_, (topo, traffic)) ->
      Array.for_all
        (fun (b : Topology.bus) ->
          Traffic.bus_utilization traffic b.Topology.bus_id <= 0.9 +. 0.02)
        (Topology.buses topo))

let test_gen_spec_text_parses () =
  qcheck "spec text parses" Arb.spec_text (fun (_, text) ->
      match Spec_parser.parse text with Ok _ -> true | Error _ -> false)

let test_gen_ctmdp_valid () =
  qcheck "ctmdp validity" Arb.ctmdp_case (fun (_, case) ->
      let m = Gen_model.ctmdp_of_case case in
      (* The mandatory cycle edge makes the union graph strongly
         connected, so the unichain heuristic must accept every
         generated instance. *)
      Ctmdp.num_states m = case.Gen_model.num_states
      && Ctmdp.num_extras m = 1
      && Ctmdp.is_unichain_heuristic m)

let test_gen_lp_builds () =
  qcheck "lp builds and solves" Arb.lp_case (fun (_, case) ->
      let lp = Gen_model.lp_of_case case in
      Lp.num_vars lp = Array.length case.Gen_model.obj
      && match Lp.solve lp with Lp.Optimal _ | Lp.Infeasible | Lp.Unbounded -> true)

let test_gen_mm1k_ranges () =
  qcheck "mm1k ranges" Arb.mm1k_case (fun (_, c) ->
      c.Gen_model.lambda > 0. && c.Gen_model.mu > 0.
      && c.Gen_model.k >= 1 && c.Gen_model.k <= 8)

let test_gen_monolithic_valid () =
  qcheck "monolithic spec validates" Arb.monolithic_spec (fun (_, s) ->
      (* Monolithic.residual validates the spec and raises on a bad one. *)
      let v = Array.make (Bufsize_soc.Monolithic.dim s) 0.1 in
      Array.length (Bufsize_soc.Monolithic.residual s v)
      = Bufsize_soc.Monolithic.dim s)

let test_gen_deterministic () =
  (* The same seed must reproduce the same instance, and derived streams
     must not collide across indexes. *)
  let t1 = Gen_model.arch_text (Rng.create 42) in
  let t2 = Gen_model.arch_text (Rng.create 42) in
  Alcotest.(check string) "same seed same arch" t1 t2;
  let t3 = Gen_model.arch_text (Rng.create (Rng.derive_seed 42 1)) in
  Alcotest.(check bool) "derived seed differs" true (t1 <> t3)

(* ------------------------------------------------------------ oracles *)

(* Every oracle over >= 50 seeded instances.  One alcotest case per
   oracle so a failure names the oracle directly. *)
let oracle_case (o : Oracle.t) =
  Alcotest.test_case o.Oracle.name `Slow (fun () ->
      let summary =
        Driver.run ~oracles:[ o ] ~max_states:48 ~seed:20250807 ~count:50 ()
      in
      if not (Driver.passed summary) then
        Alcotest.fail (Format.asprintf "%a" Driver.pp_summary summary))

let test_oracle_registry () =
  Alcotest.(check int) "ten oracles" 10 (List.length Oracles.all);
  List.iter
    (fun name ->
      match Oracles.find name with
      | Some o -> Alcotest.(check string) "find returns the oracle" name o.Oracle.name
      | None -> Alcotest.failf "oracle %s not found" name)
    (Oracles.names ());
  Alcotest.(check (option reject)) "unknown oracle" None
    (Option.map (fun (o : Oracle.t) -> o.Oracle.name) (Oracles.find "bogus"))

(* ----------------------------------------------------------- shrinker *)

(* A synthetic case family the shrinker can chew on: a list of ints whose
   check fails iff some element exceeds 10; shrink candidates drop one
   element or halve one element.  The greedy minimum for a failing list
   is a single element just above the threshold. *)
let rec int_list_case xs =
  {
    Oracle.label = Printf.sprintf "ints [%s]" (String.concat ";" (List.map string_of_int xs));
    repro = String.concat " " (List.map string_of_int xs);
    check =
      (fun () ->
        if List.exists (fun x -> x > 10) xs then Oracle.failf "element > 10" else Oracle.Pass);
    shrink =
      (fun () ->
        let drops = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs in
        let halves = List.mapi (fun i _ -> List.mapi (fun j x -> if i = j then x / 2 else x) xs) xs in
        List.map int_list_case (drops @ halves));
  }

let test_shrink_minimizes () =
  let case = int_list_case [ 3; 25; 7; 99; 1 ] in
  match Oracle.run_check case with
  | Oracle.Pass -> Alcotest.fail "seed case should fail"
  | Oracle.Fail msg ->
      let shrunk, msg', steps = Shrink.minimize case msg in
      Alcotest.(check string) "message survives" "element > 10" msg';
      Alcotest.(check bool) "made progress" true (steps > 0);
      (* Locally minimal: every candidate of the result passes. *)
      List.iter
        (fun c ->
          match Oracle.run_check c with
          | Oracle.Pass -> ()
          | Oracle.Fail _ -> Alcotest.fail "not locally minimal")
        (shrunk.Oracle.shrink ());
      (* For this family the greedy minimum is one element in (10, 21]:
         dropping it passes, halving it passes. *)
      let parts = String.split_on_char ' ' shrunk.Oracle.repro in
      Alcotest.(check int) "single element" 1 (List.length parts);
      let v = int_of_string (List.hd parts) in
      Alcotest.(check bool) "just above threshold" true (v > 10 && v / 2 <= 10)

let test_shrink_max_steps_bounds () =
  (* An always-failing case with an infinite shrink chain must stop at
     max_steps rather than loop. *)
  let rec endless n =
    {
      Oracle.label = "endless";
      repro = string_of_int n;
      check = (fun () -> Oracle.failf "always fails");
      shrink = (fun () -> [ endless (n + 1) ]);
    }
  in
  let _, _, steps = Shrink.minimize ~max_steps:7 (endless 0) "always fails" in
  Alcotest.(check int) "stops at the bound" 7 steps

let test_shrink_exception_counts_as_failure () =
  (* A shrink candidate whose check raises is a failure, not a crash of
     the minimizer. *)
  let bomb =
    {
      Oracle.label = "bomb";
      repro = "bomb";
      check = (fun () -> failwith "boom");
      shrink = (fun () -> []);
    }
  in
  (match Oracle.run_check bomb with
  | Oracle.Fail msg ->
      Alcotest.(check bool) "exception captured" true
        (String.length msg > 0)
  | Oracle.Pass -> Alcotest.fail "exception should fail");
  let parent =
    {
      Oracle.label = "parent";
      repro = "parent";
      check = (fun () -> Oracle.failf "parent fails");
      shrink = (fun () -> [ bomb ]);
    }
  in
  let shrunk, _, steps = Shrink.minimize parent "parent fails" in
  Alcotest.(check int) "descended into the raising candidate" 1 steps;
  Alcotest.(check string) "landed on it" "bomb" shrunk.Oracle.label

(* ------------------------------------------------------------- driver *)

let failing_oracle =
  (* Deterministically failing on even instances, with a working shrink,
     to exercise the driver's failure path end to end. *)
  {
    Oracle.name = "synthetic-fail";
    doc = "fails on even instance seeds";
    generate =
      (fun ~max_states:_ rng ->
        let n = 20 + Rng.int rng 20 in
        let parity = Rng.int rng 2 in
        if parity = 0 then int_list_case [ 3; n; 7 ] else int_list_case [ 3; 7 ]);
  }

let test_driver_reports_and_writes_repros () =
  let out_dir = Filename.temp_file "bufsize_verify" "" in
  Sys.remove out_dir;
  let summary =
    Driver.run ~oracles:[ failing_oracle ] ~out_dir ~seed:5 ~count:30 ()
  in
  Alcotest.(check bool) "driver sees failures" true (summary.Driver.total_failures > 0);
  Alcotest.(check bool) "but not everywhere" true
    (summary.Driver.total_failures < summary.Driver.total_instances);
  Alcotest.(check bool) "passed is false" false (Driver.passed summary);
  List.iter
    (fun (o : Driver.oracle_summary) ->
      List.iter
        (fun (f : Driver.failure) ->
          (match f.Driver.repro_path with
          | None -> Alcotest.fail "repro path missing"
          | Some path ->
              Alcotest.(check bool) "repro file exists" true (Sys.file_exists path);
              let ic = open_in path in
              let first = input_line ic in
              close_in ic;
              Alcotest.(check bool) "repro header is a comment" true
                (String.length first > 0 && first.[0] = '#'));
          (* The recorded seed regenerates a failing instance. *)
          match
            Oracle.run_check
              (failing_oracle.Oracle.generate ~max_states:48 (Rng.create f.Driver.seed))
          with
          | Oracle.Fail _ -> ()
          | Oracle.Pass -> Alcotest.fail "recorded seed does not reproduce")
        o.Driver.failures)
    summary.Driver.oracles;
  (* Determinism: the same run finds the same failures. *)
  let summary2 = Driver.run ~oracles:[ failing_oracle ] ~seed:5 ~count:30 () in
  Alcotest.(check int) "deterministic failure count" summary.Driver.total_failures
    summary2.Driver.total_failures

(* -------------------------------------------------------------- replay *)

let test_replay_case_roundtrips () =
  (* The of_string parsers invert the to_string printers on generated
     cases (all values are round3'd, so %g printing is lossless). *)
  let rng = Rng.create 77 in
  for _ = 1 to 50 do
    let c = Gen_model.lp_case rng in
    (match Gen_model.lp_case_of_string (Gen_model.lp_case_to_string c) with
    | Error e -> Alcotest.failf "lp round-trip: %s" e
    | Ok c' -> Alcotest.(check bool) "lp case round-trips" true (c = c'));
    let m = Gen_model.ctmdp_case rng in
    (match Gen_model.ctmdp_case_of_string (Gen_model.ctmdp_case_to_string m) with
    | Error e -> Alcotest.failf "ctmdp round-trip: %s" e
    | Ok m' -> Alcotest.(check bool) "ctmdp case round-trips" true (m = m'));
    let s = Gen_model.monolithic_spec rng in
    match Gen_model.monolithic_of_string (Gen_model.monolithic_to_string s) with
    | Error e -> Alcotest.failf "monolithic round-trip: %s" e
    | Ok s' -> Alcotest.(check bool) "monolithic spec round-trips" true (s = s')
  done

let test_replay_all_oracles () =
  (* A generated (passing) case of every oracle, prefixed with the driver
     header, reconstructs through case_of_repro and still passes. *)
  List.iter
    (fun (o : Oracle.t) ->
      let case = o.Oracle.generate ~max_states:24 (Rng.create 4242) in
      let text = Printf.sprintf "# oracle: %s\n%s" o.Oracle.name case.Oracle.repro in
      match Oracles.case_of_repro text with
      | Error e -> Alcotest.failf "%s: replay parse failed: %s" o.Oracle.name e
      | Ok case' -> (
          match Oracle.run_check case' with
          | Oracle.Pass -> ()
          | Oracle.Fail m -> Alcotest.failf "%s: replayed case fails: %s" o.Oracle.name m))
    Oracles.all

let test_replay_rejects_malformed () =
  (match Oracles.case_of_repro "no header at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on a missing oracle header");
  (match Oracles.case_of_repro "# oracle: simplex-cross\nnot an lp" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on a malformed body");
  match Oracles.case_of_repro "# oracle: no-such-oracle\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on an unknown oracle"

let test_replay_from_file () =
  (* Driver.replay reads a repro file end-to-end. *)
  let case = (List.hd Oracles.all).Oracle.generate ~max_states:16 (Rng.create 9) in
  let path = Filename.temp_file "bufsize_replay" ".repro" in
  let oc = open_out path in
  Printf.fprintf oc "# oracle: %s\n%s" (List.hd Oracles.all).Oracle.name case.Oracle.repro;
  close_out oc;
  let result = Driver.replay path in
  Sys.remove path;
  match result with
  | Ok (_, Oracle.Pass) -> ()
  | Ok (label, Oracle.Fail m) -> Alcotest.failf "replayed %s fails: %s" label m
  | Error e -> Alcotest.failf "replay: %s" e

let test_driver_architecture_repro_roundtrips () =
  (* Repro files written for architecture-based oracles must stay
     loadable by Spec_parser (comment header + spec body). *)
  let arch_fail =
    {
      Oracle.name = "synthetic-arch-fail";
      doc = "always fails, repro is an architecture";
      generate =
        (fun ~max_states:_ rng ->
          let text = Gen_model.arch_text rng in
          {
            Oracle.label = "arch";
            repro = text;
            check = (fun () -> Oracle.failf "synthetic failure");
            shrink = (fun () -> []);
          });
    }
  in
  let out_dir = Filename.temp_file "bufsize_verify" "" in
  Sys.remove out_dir;
  let summary = Driver.run ~oracles:[ arch_fail ] ~out_dir ~seed:11 ~count:2 () in
  List.iter
    (fun (o : Driver.oracle_summary) ->
      List.iter
        (fun (f : Driver.failure) ->
          match f.Driver.repro_path with
          | None -> Alcotest.fail "no repro written"
          | Some path -> (
              match Spec_parser.parse_file path with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "repro %s does not parse: %s" path e))
        o.Driver.failures)
    summary.Driver.oracles

let () =
  Alcotest.run "verify"
    [
      ( "generators",
        [
          Alcotest.test_case "arch validity (property)" `Quick test_gen_arch_valid;
          Alcotest.test_case "arch utilization cap (property)" `Quick
            test_gen_arch_utilization_capped;
          Alcotest.test_case "spec text parses (property)" `Quick test_gen_spec_text_parses;
          Alcotest.test_case "ctmdp validity (property)" `Quick test_gen_ctmdp_valid;
          Alcotest.test_case "lp builds (property)" `Quick test_gen_lp_builds;
          Alcotest.test_case "mm1k ranges (property)" `Quick test_gen_mm1k_ranges;
          Alcotest.test_case "monolithic validates (property)" `Quick test_gen_monolithic_valid;
          Alcotest.test_case "seed determinism" `Quick test_gen_deterministic;
        ] );
      ( "oracles",
        Alcotest.test_case "registry" `Quick test_oracle_registry
        :: List.map oracle_case Oracles.all );
      ( "shrinker",
        [
          Alcotest.test_case "greedy minimization" `Quick test_shrink_minimizes;
          Alcotest.test_case "max-steps bound" `Quick test_shrink_max_steps_bounds;
          Alcotest.test_case "raising checks count as failures" `Quick
            test_shrink_exception_counts_as_failure;
        ] );
      ( "driver",
        [
          Alcotest.test_case "failure reporting and repro files" `Quick
            test_driver_reports_and_writes_repros;
          Alcotest.test_case "architecture repros parse" `Quick
            test_driver_architecture_repro_roundtrips;
        ] );
      ( "replay",
        [
          Alcotest.test_case "case printers round-trip" `Quick test_replay_case_roundtrips;
          Alcotest.test_case "every oracle replays" `Quick test_replay_all_oracles;
          Alcotest.test_case "malformed repros rejected" `Quick test_replay_rejects_malformed;
          Alcotest.test_case "file replay" `Quick test_replay_from_file;
        ] );
    ]
