(* Tests for the resilient solve pipeline: the escalation combinator's
   status/value contract, budgets, the singular-basis no-NaN regression,
   the typed reducible-chain error, the Newton -> Picard closure
   fallback on stiff bridges, the sizing health report, qcheck
   fault-agreement properties, and the exhaustive chaos fault sweep. *)

module Resilience = Bufsize_resilience.Resilience
module Lp = Bufsize_numeric.Lp
module Simplex = Bufsize_numeric.Simplex
module Ctmc = Bufsize_prob.Ctmc
module Monolithic = Bufsize_soc.Monolithic
module Sizing = Bufsize_soc.Sizing
module Chaos = Bufsize_verify.Chaos
module Oracle = Bufsize_verify.Oracle
module Oracles = Bufsize_verify.Oracles
module Gen_model = Bufsize_verify.Gen_model
module Arb = Bufsize_verify_qcheck.Verify_arbitrary

let qcheck ?(count = 100) name arb prop =
  QCheck.Test.check_exn (QCheck.Test.make ~count ~name arb prop)

(* Naive substring scan (no string library dependency). *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* The value/status contract every integration relies on: a surfaced
   value iff the status is usable. *)
let consistent value diag =
  match (value, diag.Resilience.status) with
  | Some _, (Resilience.Ok | Resilience.Degraded _) -> true
  | None, Resilience.Failed _ -> true
  | _ -> false

(* -------------------------------------------- escalation combinator *)

let accept_step name v =
  Resilience.step name (fun _ -> Resilience.Accept (v, Resilience.meta ()))

let reject_step name why = Resilience.step name (fun _ -> Resilience.Reject why)

let partial_step name v note =
  Resilience.step name (fun _ -> Resilience.Partial (v, Resilience.meta (), note))

let raising_step name = Resilience.step name (fun _ -> failwith "kaboom")

let test_escalate_first_accept () =
  let v, d = Resilience.escalate ~solver:"t" [ accept_step "one" 1; reject_step "two" "x" ] in
  Alcotest.(check (option int)) "value" (Some 1) v;
  Alcotest.(check bool) "ok" true (Resilience.is_ok d);
  Alcotest.(check (list string)) "no fallbacks" [] d.Resilience.fallbacks

let test_escalate_fallback_degrades () =
  let v, d = Resilience.escalate ~solver:"t" [ reject_step "one" "boom"; accept_step "two" 2 ] in
  Alcotest.(check (option int)) "value" (Some 2) v;
  (match d.Resilience.status with
  | Resilience.Degraded r ->
      Alcotest.(check bool) "names the fallback step" true (contains_sub r "fell back to two")
  | _ -> Alcotest.fail "expected Degraded");
  Alcotest.(check (list string)) "fallbacks" [ "two" ] d.Resilience.fallbacks;
  Alcotest.(check bool) "consistent" true (consistent v d)

let test_escalate_all_reject () =
  let v, d =
    Resilience.escalate ~solver:"t" [ reject_step "one" "first"; reject_step "two" "second" ]
  in
  Alcotest.(check (option int)) "no value" None v;
  (match d.Resilience.status with
  | Resilience.Failed r -> Alcotest.(check string) "first reason kept" "first" r
  | _ -> Alcotest.fail "expected Failed");
  Alcotest.(check bool) "consistent" true (consistent v d)

let test_escalate_partial_retained () =
  let v, d =
    Resilience.escalate ~solver:"t" [ partial_step "one" 7 "meh"; reject_step "two" "x" ]
  in
  Alcotest.(check (option int)) "best-known value" (Some 7) v;
  (match d.Resilience.status with
  | Resilience.Degraded r -> Alcotest.(check string) "partial note" "meh" r
  | _ -> Alcotest.fail "expected Degraded")

let test_escalate_partial_then_accept () =
  let v, d =
    Resilience.escalate ~solver:"t" [ partial_step "one" 7 "meh"; accept_step "two" 9 ]
  in
  Alcotest.(check (option int)) "clean answer wins" (Some 9) v;
  Alcotest.(check bool) "degraded" true
    (match d.Resilience.status with Resilience.Degraded _ -> true | _ -> false)

let test_escalate_exception_becomes_reject () =
  let v, d = Resilience.escalate ~solver:"t" [ raising_step "one"; accept_step "two" 3 ] in
  Alcotest.(check (option int)) "value" (Some 3) v;
  match d.Resilience.status with
  | Resilience.Degraded r ->
      Alcotest.(check bool) "reason mentions the exception" true
        (contains_sub r "kaboom")
  | _ -> Alcotest.fail "expected Degraded"

let test_escalate_expired_budget () =
  let v, d =
    Resilience.escalate ~solver:"t"
      ~budget:(Resilience.expired ())
      [ accept_step "one" 1; accept_step "two" 2 ]
  in
  Alcotest.(check (option int)) "no value" None v;
  match d.Resilience.status with
  | Resilience.Failed r ->
      Alcotest.(check bool) "reason mentions the budget" true (contains_sub r "budget")
  | _ -> Alcotest.fail "expected Failed"

let test_budget_basics () =
  Alcotest.(check bool) "unlimited never expires" false
    (Resilience.exhausted Resilience.unlimited);
  Alcotest.(check bool) "non-positive ms = unlimited" false
    (Resilience.exhausted (Resilience.of_ms 0.));
  Alcotest.(check bool) "expired () is exhausted" true
    (Resilience.exhausted (Resilience.expired ()));
  Alcotest.(check bool) "unlimited remaining infinite" true
    (Resilience.remaining_ms Resilience.unlimited = Float.infinity)

let test_health_report () =
  let d_ok = Resilience.ok ~solver:"s" () in
  let d_bad = Resilience.degraded ~solver:"s" "why" in
  Alcotest.(check bool) "all ok" true (Resilience.health_ok [ ("a", d_ok) ]);
  Alcotest.(check bool) "degraded breaks it" false
    (Resilience.health_ok [ ("a", d_ok); ("b", d_bad) ]);
  let json = Resilience.health_to_json [ ("a", d_ok) ] in
  Alcotest.(check bool) "json ok flag" true (contains_sub json "\"ok\":true");
  (* NaN residuals must serialize as null, keeping the JSON standard. *)
  Alcotest.(check bool) "nan residual -> null" true
    (contains_sub (Resilience.to_json d_ok) "\"residual\":null")

(* Emitted health JSON must be standard JSON: nasty solver / reason
   strings escape correctly, wall_ms is a number (never a formatted
   string), and the escalation span id cross-reference is a number or
   null.  The check parses the emitted text back with the strict
   Test_json parser instead of substring matching. *)
let test_health_json_roundtrip () =
  let nasty = "we\"ird\\solver\nwith\ttabs\rand\x01ctl" in
  let reason = "fell \"back\"\nbecause" in
  let d = Resilience.degraded ~solver:nasty reason in
  let label = "sub\"system\n1" in
  let json = Resilience.health_to_json [ (label, d); ("clean", Resilience.ok ~solver:"s" ()) ] in
  let v = Test_json.parse_exn json in
  Alcotest.(check bool) "ok flag is a bool" false Test_json.(to_bool (member_exn "ok" v));
  let diags = Test_json.(to_list (member_exn "diagnostics" v)) in
  Alcotest.(check int) "two entries" 2 (List.length diags);
  let first = List.hd diags in
  Alcotest.(check string) "label round-trips" label
    Test_json.(to_string (member_exn "label" first));
  let diag = Test_json.member_exn "diagnostic" first in
  Alcotest.(check string) "solver round-trips" nasty
    Test_json.(to_string (member_exn "solver" diag));
  Alcotest.(check string) "reason round-trips" reason
    Test_json.(to_string (member_exn "reason" diag));
  Alcotest.(check string) "status" "degraded" Test_json.(to_string (member_exn "status" diag));
  (match Test_json.member_exn "wall_ms" diag with
  | Test_json.Num ms -> Alcotest.(check bool) "wall_ms finite" true (Float.is_finite ms)
  | _ -> Alcotest.fail "wall_ms must be a JSON number");
  match Test_json.member_exn "span" diag with
  | Test_json.Null | Test_json.Num _ -> ()
  | _ -> Alcotest.fail "span must be a number or null"

(* A real escalation chain run under tracing stamps the chain's span id
   into the diagnostic, linking --health-json output to the trace. *)
let test_diagnostic_links_to_span () =
  let module Obs = Bufsize_obs.Obs in
  Obs.disable ();
  Obs.reset ();
  Obs.enable_spans ();
  let _, d = Resilience.escalate ~solver:"linked" [ accept_step "one" 1 ] in
  Obs.disable ();
  Alcotest.(check bool) "span id recorded" true (d.Resilience.span_id > 0);
  let spans = Obs.recorded_spans () in
  Alcotest.(check bool) "the chain span exists in the trace" true
    (List.exists (fun s -> s.Obs.sid = d.Resilience.span_id && s.Obs.sname = "linked") spans);
  let diag = Test_json.parse_exn (Resilience.to_json d) in
  Alcotest.(check (float 0.)) "span id serialized" (float_of_int d.Resilience.span_id)
    Test_json.(to_number (member_exn "span" diag));
  Obs.reset ()

(* --------------------------------------- singular bases (satellite 1) *)

(* Three copies of the same equality row: the final basis necessarily
   contains an artificial column of a redundant row, so the old
   refinement path hit a singular LU solve and surfaced NaN duals. *)
let test_simplex_duplicated_rows_finite () =
  let std =
    {
      Simplex.nrows = 3;
      ncols = 2;
      a = [| 1.; 1.; 1.; 1.; 1.; 1. |];
      b = [| 1.; 1.; 1. |];
      c = [| 1.; 2. |];
    }
  in
  match Simplex.solve std with
  | Simplex.Optimal s ->
      Alcotest.(check bool) "no NaN/Inf anywhere" true (Simplex.solution_finite s);
      Alcotest.(check (float 1e-9)) "objective" 1.0 s.Simplex.objective
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected an optimum"

let test_lp_diag_duplicated_rows () =
  let lp = Lp.create ~name:"dup" Lp.Minimize in
  let x = Lp.add_var ~name:"x" lp in
  let y = Lp.add_var ~name:"y" lp in
  Lp.set_objective lp [ (1., x); (2., y) ];
  Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Eq 1.;
  Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Eq 1.;
  Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Ge 1.;
  match Lp.solve_diag lp with
  | Some o, d ->
      Alcotest.(check bool) "usable diagnostic" true (Resilience.is_usable d);
      Alcotest.(check bool) "finite outcome" true (Lp.outcome_finite o);
      (match o with
      | Lp.Optimal s -> Alcotest.(check (float 1e-9)) "objective" 1.0 s.Lp.objective
      | _ -> Alcotest.fail "expected Optimal")
  | None, _ -> Alcotest.fail "duplicated rows must still solve"

(* ------------------------------------ reducible chains (satellite 2) *)

let test_reducible_typed_error () =
  (* Two disjoint 2-cycles: no stationary solve can claim irreducibility. *)
  let t = Ctmc.of_rates 4 [ (0, 1, 1.); (1, 0, 1.); (2, 3, 1.); (3, 2, 1.) ] in
  (match Ctmc.stationary_gth t with
  | Error (`Reducible_class cls) ->
      Alcotest.(check bool) "names a closed class" true (cls = [ 0; 1 ] || cls = [ 2; 3 ])
  | Ok _ -> Alcotest.fail "reducible chain must yield the typed error");
  let pi, d = Ctmc.stationary_diag t in
  Alcotest.(check bool) "never reported clean" false (Resilience.is_ok d);
  Alcotest.(check bool) "consistent" true (consistent pi d);
  match pi with
  | Some v -> Alcotest.(check bool) "surfaced vector is a distribution" true
        (Ctmc.distribution_valid v)
  | None -> ()

let test_communicating_class () =
  let t = Ctmc.of_rates 5 [ (0, 1, 1.); (1, 0, 1.); (1, 2, 0.5); (2, 3, 1.); (3, 4, 1.); (4, 2, 1.) ] in
  Alcotest.(check (list int)) "upstream transient cycle" [ 0; 1 ] (Ctmc.communicating_class t 0);
  Alcotest.(check (list int)) "closed class" [ 2; 3; 4 ] (Ctmc.communicating_class t 3)

(* --------------------------------- stiff closures (satellite 3) *)

let stiff_specs =
  [
    { Monolithic.kx = 6; ky = 6; lambda_x = 1.05; lambda_y = 0.95;
      cross_fraction = 0.9; mu_x = 1.0; mu_y = 1.0 };
    { Monolithic.kx = 5; ky = 7; lambda_x = 1.1; lambda_y = 0.8;
      cross_fraction = 0.85; mu_x = 1.0; mu_y = 1.0 };
    { Monolithic.kx = 7; ky = 4; lambda_x = 0.9; lambda_y = 1.05;
      cross_fraction = 0.95; mu_x = 1.0; mu_y = 1.0 };
  ]

let test_stiff_closure_surfaces_valid_roots () =
  List.iter
    (fun s ->
      let root, d = Monolithic.solve_closure s in
      Alcotest.(check bool) "consistent" true (consistent root d);
      match root with
      | Some v ->
          Alcotest.(check bool) "valid probability blocks" true (Monolithic.closure_valid s v);
          Alcotest.(check bool) "small residual" true (Monolithic.residual_norm s v <= 1e-4)
      | None -> ())
    stiff_specs

let test_stiff_closure_newton_rejected_not_surfaced () =
  (* Wherever the plain Newton iteration fails on a stiff bridge, the
     chain must land on a fallback (recorded in the diagnostic) instead
     of surfacing the non-converged iterate. *)
  List.iter
    (fun (s : Monolithic.spec) ->
      let uniform =
        Array.init (Monolithic.dim s) (fun i ->
            if i <= s.Monolithic.kx then 1. /. float_of_int (s.Monolithic.kx + 1)
            else 1. /. float_of_int (s.Monolithic.ky + 1))
      in
      let raw =
        Bufsize_numeric.Newton.solve ~max_iter:200 ~tol:1e-9 ~damped:false
          ~f:(Monolithic.residual s) ~x0:uniform ()
      in
      let root, d = Monolithic.solve_closure s in
      if not raw.Bufsize_numeric.Newton.converged then begin
        Alcotest.(check bool) "plain-Newton failure never reported clean" false
          (Resilience.is_ok d);
        match root with
        | Some v ->
            Alcotest.(check bool) "fallback root is valid" true (Monolithic.closure_valid s v)
        | None -> ()
      end)
    stiff_specs

(* ------------------------------------------------------ sizing health *)

let test_sizing_health_all_ok_on_clean_arch () =
  let _, traffic = Bufsize_soc.Amba.create () in
  let r = Sizing.run { (Sizing.default_config ~budget:24) with Sizing.max_states = 96 } traffic in
  Alcotest.(check bool) "health entries present" true (r.Sizing.health <> []);
  Alcotest.(check bool) "clean run is all ok" true (Resilience.health_ok r.Sizing.health)

(* --------------------------------- qcheck properties (satellite 4) *)

let test_prop_lp_diag_matches_clean () =
  qcheck ~count:100 "lp solve_diag agrees with solve when Ok" Arb.lp_case
    (fun (_, case) ->
      let clean = Lp.solve (Gen_model.lp_of_case case) in
      let surfaced, d = Lp.solve_diag (Gen_model.lp_of_case case) in
      (match surfaced with Some o -> Lp.outcome_finite o | None -> true)
      && consistent surfaced d
      &&
      match d.Resilience.status with
      | Resilience.Ok -> (
          match (surfaced, clean) with
          | Some (Lp.Optimal a), Lp.Optimal b ->
              let scale = Float.max 1. (Float.abs b.Lp.objective) in
              Float.abs (a.Lp.objective -. b.Lp.objective) <= 1e-8 *. scale
          | Some Lp.Infeasible, Lp.Infeasible | Some Lp.Unbounded, Lp.Unbounded -> true
          | _ -> false)
      | Resilience.Degraded _ | Resilience.Failed _ -> true)

let test_prop_expired_budget_never_ok () =
  qcheck ~count:50 "expired budget is never reported Ok" Arb.lp_case
    (fun (_, case) ->
      let surfaced, d =
        Lp.solve_diag ~budget:(Resilience.expired ()) (Gen_model.lp_of_case case)
      in
      surfaced = None && not (Resilience.is_ok d))

let test_prop_every_fault_surfaces () =
  qcheck ~count:30 "injected faults surface as structured diagnostics" QCheck.small_nat
    (fun seed ->
      List.for_all
        (fun fault ->
          match Chaos.check fault seed with Oracle.Pass -> true | Oracle.Fail _ -> false)
        Chaos.all_faults)

(* ------------------------------------------------- chaos fault sweep *)

(* The acceptance sweep: every fault family x 50 seeded instances, each
   surfacing as a structured diagnostic (the check itself asserts the
   no-exception / no-NaN / metamorphic-agreement contract). *)
let test_chaos_sweep () =
  List.iter
    (fun fault ->
      for seed = 1 to 50 do
        match Chaos.check fault seed with
        | Oracle.Pass -> ()
        | Oracle.Fail msg ->
            Alcotest.fail
              (Printf.sprintf "fault %s seed %d: %s" (Chaos.fault_name fault) seed msg)
      done)
    Chaos.all_faults

let test_chaos_repro_roundtrip () =
  List.iter
    (fun fault ->
      let case = Chaos.case ~fault ~seed:7 in
      match Oracles.case_of_repro case.Oracle.repro with
      | Error e -> Alcotest.fail e
      | Ok case' -> (
          match Oracle.run_check case' with
          | Oracle.Pass -> ()
          | Oracle.Fail msg ->
              Alcotest.fail (Printf.sprintf "%s replay: %s" (Chaos.fault_name fault) msg)))
    Chaos.all_faults

(* ---------------------------------------------------------------- run *)

let () =
  Alcotest.run "resilience"
    [
      ( "escalate",
        [
          Alcotest.test_case "first accept is pristine" `Quick test_escalate_first_accept;
          Alcotest.test_case "fallback degrades" `Quick test_escalate_fallback_degrades;
          Alcotest.test_case "all reject fails" `Quick test_escalate_all_reject;
          Alcotest.test_case "partial retained" `Quick test_escalate_partial_retained;
          Alcotest.test_case "partial then accept" `Quick test_escalate_partial_then_accept;
          Alcotest.test_case "exceptions become rejects" `Quick
            test_escalate_exception_becomes_reject;
          Alcotest.test_case "expired budget" `Quick test_escalate_expired_budget;
          Alcotest.test_case "budget basics" `Quick test_budget_basics;
          Alcotest.test_case "health report" `Quick test_health_report;
          Alcotest.test_case "health json round-trip" `Quick test_health_json_roundtrip;
          Alcotest.test_case "diagnostic links to span" `Quick test_diagnostic_links_to_span;
        ] );
      ( "singular-basis",
        [
          Alcotest.test_case "duplicated rows: finite simplex solution" `Quick
            test_simplex_duplicated_rows_finite;
          Alcotest.test_case "duplicated rows: lp diag" `Quick test_lp_diag_duplicated_rows;
        ] );
      ( "reducible",
        [
          Alcotest.test_case "typed error with closed class" `Quick test_reducible_typed_error;
          Alcotest.test_case "communicating classes" `Quick test_communicating_class;
        ] );
      ( "stiff-closure",
        [
          Alcotest.test_case "valid roots surface" `Quick test_stiff_closure_surfaces_valid_roots;
          Alcotest.test_case "non-converged newton never surfaces" `Quick
            test_stiff_closure_newton_rejected_not_surfaced;
        ] );
      ( "sizing-health",
        [ Alcotest.test_case "clean arch all ok" `Quick test_sizing_health_all_ok_on_clean_arch ] );
      ( "properties",
        [
          Alcotest.test_case "diag matches clean (property)" `Quick
            test_prop_lp_diag_matches_clean;
          Alcotest.test_case "expired budget non-ok (property)" `Quick
            test_prop_expired_budget_never_ok;
          Alcotest.test_case "faults surface (property)" `Quick test_prop_every_fault_surfaces;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "7 faults x 50 seeds sweep" `Quick test_chaos_sweep;
          Alcotest.test_case "repro round-trip" `Quick test_chaos_repro_roundtrip;
        ] );
    ]
