(* Tests for the sizing daemon: lifecycle and liveness, bitwise parity
   between daemon replies and direct library calls, the typed error
   taxonomy (bad_request / oversized / overloaded / internal_error),
   deadline-zero degradation, crash isolation, admission control with
   retry recovery, and concurrent clients. *)

module Serve = Bufsize_serve.Serve
module Json = Bufsize_json.Json
module Sizing = Bufsize_soc.Sizing
module Spec_parser = Bufsize_soc.Spec_parser

(* A tiny two-bus architecture so every solve is milliseconds. *)
let spec_text =
  "bus a rate 8.0\n\
   bus b rate 8.0\n\
   proc p on a\n\
   proc q on b\n\
   bridge br a b\n\
   flow p -> q rate 1.0\n\
   flow q -> p rate 0.5\n"

let budget = 8
let max_states = 16

let expected_result () =
  match Spec_parser.parse spec_text with
  | Error e -> Alcotest.failf "spec did not parse: %s" e
  | Ok (_, traffic) ->
      let config = { (Sizing.default_config ~budget) with Sizing.max_states } in
      Json.encode (Serve.sizing_core_json traffic (Sizing.run config traffic))

let size_request ~id =
  Json.Obj
    [
      ("id", Json.Num (float_of_int id));
      ("op", Json.Str "size");
      ("spec", Json.Str spec_text);
      ("budget", Json.Num (float_of_int budget));
      ("max_states", Json.Num (float_of_int max_states));
    ]

let test_config () =
  {
    Serve.socket_path = Serve.temp_socket_path ();
    queue_depth = 16;
    workers = 2;
    default_deadline_ms = 0.;
    max_request_bytes = 512;
    flight_cap = 8;
    log_requests = false;
  }

let with_server ?config f =
  let cfg = match config with Some c -> c | None -> test_config () in
  let t = Serve.start ~config:cfg () in
  Fun.protect ~finally:(fun () -> Serve.stop t) (fun () -> f t)

let status r = Option.value ~default:"<none>" (Json.mem_string "status" r)
let error_kind r = Option.value ~default:"<none>" (Option.bind (Json.member "error" r) (Json.mem_string "kind"))
let result_str r = Json.encode (Json.member_exn "result" r)

let ok_reply what = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%s failed: %s" what e

(* Send raw lines over one connection and read [n] newline-terminated
   replies — for malformed / pipelined traffic the typed client cannot
   produce. *)
let raw_exchange ~socket lines n =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
      let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let b = Bytes.of_string payload in
      let rec send off =
        if off < Bytes.length b then
          send (off + Unix.write fd b off (Bytes.length b - off))
      in
      send 0;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let newlines () =
        String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 (Buffer.contents buf)
      in
      while newlines () < n do
        let r = Unix.read fd chunk 0 (Bytes.length chunk) in
        if r = 0 then Alcotest.fail "connection closed before all replies arrived";
        Buffer.add_subbytes buf chunk 0 r
      done;
      Buffer.contents buf |> String.split_on_char '\n'
      |> List.filter (fun s -> s <> "")
      |> List.map Json.parse_exn)

(* Test-only ops: [block] parks a worker until released (to fill the
   queue deterministically), [boom] crashes (to exercise isolation). *)
let block_m = Mutex.create ()
let block_cv = Condition.create ()
let block_released = ref false
let block_started = Atomic.make 0

let () =
  Serve.register_op "block" (fun ~deadline:_ _ ->
      Atomic.incr block_started;
      Mutex.lock block_m;
      while not !block_released do
        Condition.wait block_cv block_m
      done;
      Mutex.unlock block_m;
      Serve.Reply_ok [ ("blocked", Json.Bool true) ]);
  Serve.register_op "boom" (fun ~deadline:_ _ -> failwith "injected test crash")

let release_blocks () =
  Mutex.lock block_m;
  block_released := true;
  Condition.broadcast block_cv;
  Mutex.unlock block_m

let reset_blocks () =
  Mutex.lock block_m;
  block_released := false;
  Mutex.unlock block_m;
  Atomic.set block_started 0

let wait_for_block_started count =
  let rec go tries =
    if Atomic.get block_started < count then begin
      if tries > 1000 then Alcotest.fail "worker never picked up the block request";
      Unix.sleepf 0.01;
      go (tries + 1)
    end
  in
  go 0

(* ------------------------------------------------------------- tests *)

let test_lifecycle () =
  let cfg = test_config () in
  let t = Serve.start ~config:cfg () in
  let reply =
    ok_reply "ping" (Serve.request ~socket:cfg.Serve.socket_path (Json.Obj [ ("op", Json.Str "ping") ]))
  in
  Alcotest.(check string) "ping ok" "ok" (status reply);
  let ops =
    Json.member_exn "ops" reply |> Json.to_list |> List.map Json.to_string
  in
  Alcotest.(check bool) "ops lists ping" true (List.mem "ping" ops);
  Alcotest.(check bool) "ops lists size" true (List.mem "size" ops);
  Serve.stop t;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists cfg.Serve.socket_path);
  Serve.stop t

let test_size_bitwise () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      let reply = ok_reply "size" (Serve.request ~socket (size_request ~id:1)) in
      Alcotest.(check string) "status ok" "ok" (status reply);
      Alcotest.(check string) "id echoed" "1" (Json.encode (Json.member_exn "id" reply));
      Alcotest.(check string) "bitwise vs direct Sizing.run" (expected_result ()) (result_str reply))

let test_typed_errors () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      let oversized_line =
        Printf.sprintf {|{"id":5,"op":"size","pad":%S}|} (String.make 600 'x')
      in
      let replies =
        raw_exchange ~socket
          [ {|{"id":1,|}; {|{"id":2,"op":"nope"}|}; oversized_line ]
          3
      in
      match replies with
      | [ r1; r2; r3 ] ->
          Alcotest.(check string) "malformed is error" "error" (status r1);
          Alcotest.(check string) "malformed kind" "bad_request" (error_kind r1);
          Alcotest.(check string) "malformed id null" "null" (Json.encode (Json.member_exn "id" r1));
          Alcotest.(check string) "unknown op is error" "error" (status r2);
          Alcotest.(check string) "unknown op kind" "bad_request" (error_kind r2);
          Alcotest.(check string) "unknown op id echoed" "2" (Json.encode (Json.member_exn "id" r2));
          Alcotest.(check string) "oversized kind" "oversized" (error_kind r3);
          Alcotest.(check string) "oversized id null" "null" (Json.encode (Json.member_exn "id" r3))
      | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs))

let test_deadline_zero () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      let req =
        match size_request ~id:4 with
        | Json.Obj kvs -> Json.Obj (kvs @ [ ("deadline_ms", Json.Num 0.) ])
        | _ -> assert false
      in
      let reply = ok_reply "deadline-zero size" (Serve.request ~socket req) in
      Alcotest.(check string) "degraded" "degraded" (status reply);
      let reason = Option.value ~default:"" (Json.mem_string "reason" reply) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "reason mentions the deadline (%S)" reason)
        true (contains reason "deadline"))

let test_crash_isolation () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      let boom =
        ok_reply "boom" (Serve.request ~socket (Json.Obj [ ("id", Json.Num 7.); ("op", Json.Str "boom") ]))
      in
      Alcotest.(check string) "boom is error" "error" (status boom);
      Alcotest.(check string) "boom kind" "internal_error" (error_kind boom);
      let after = ok_reply "size after crash" (Serve.request ~socket (size_request ~id:8)) in
      Alcotest.(check string) "server survived" "ok" (status after);
      Alcotest.(check string) "answer still bitwise" (expected_result ()) (result_str after))

let test_overload_and_retry () =
  reset_blocks ();
  let cfg = { (test_config ()) with Serve.queue_depth = 1; workers = 1 } in
  with_server ~config:cfg (fun t ->
      let socket = Serve.socket_path t in
      Fun.protect ~finally:release_blocks (fun () ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_UNIX socket);
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
              let send s =
                let b = Bytes.of_string s in
                let rec go off =
                  if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
                in
                go 0
              in
              let read_reply =
                let buf = Buffer.create 256 in
                fun () ->
                  let chunk = Bytes.create 4096 in
                  let line_done () = String.contains (Buffer.contents buf) '\n' in
                  while not (line_done ()) do
                    let r = Unix.read fd chunk 0 (Bytes.length chunk) in
                    if r = 0 then Alcotest.fail "connection closed mid-test";
                    Buffer.add_subbytes buf chunk 0 r
                  done;
                  let s = Buffer.contents buf in
                  let i = String.index s '\n' in
                  Buffer.clear buf;
                  Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
                  Json.parse_exn (String.sub s 0 i)
              in
              (* Park the single worker, then fill the one queue slot and
                 pipeline a size request behind it — per-connection line
                 ordering guarantees the size request sees a full queue. *)
              send {|{"id":1,"op":"block"}|};
              send "\n";
              wait_for_block_started 1;
              send ({|{"id":2,"op":"block"}|} ^ "\n"
                   ^ Json.encode (size_request ~id:3) ^ "\n");
              let rejected = read_reply () in
              Alcotest.(check string) "rejected id" "3" (Json.encode (Json.member_exn "id" rejected));
              Alcotest.(check string) "rejected status" "error" (status rejected);
              Alcotest.(check string) "rejected kind" "overloaded" (error_kind rejected);
              let hint =
                Option.value ~default:(-1.)
                  (Option.bind (Json.member "error" rejected) (Json.mem_number "retry_after_ms"))
              in
              Alcotest.(check bool) "retry-after hint present" true (hint >= 1.);
              (* Liveness: ping is answered inline even with the worker
                 parked and the queue full. *)
              let ping =
                ok_reply "ping under load" (Serve.request ~socket (Json.Obj [ ("op", Json.Str "ping") ]))
              in
              Alcotest.(check string) "ping ok under load" "ok" (status ping);
              (* Retry recovers once the congestion clears. *)
              let releaser =
                Domain.spawn (fun () ->
                    Unix.sleepf 0.02;
                    release_blocks ())
              in
              let retried =
                ok_reply "retried size"
                  (Serve.request_with_retry ~attempts:50 ~base_delay_ms:10. ~seed:7 ~socket
                     (size_request ~id:9))
              in
              Domain.join releaser;
              Alcotest.(check string) "retry recovered" "ok" (status retried);
              Alcotest.(check string) "retried answer bitwise" (expected_result ())
                (result_str retried);
              (* The parked requests were drained, not dropped. *)
              let b1 = read_reply () and b2 = read_reply () in
              let ids = List.sort compare [ Json.encode (Json.member_exn "id" b1);
                                            Json.encode (Json.member_exn "id" b2) ] in
              Alcotest.(check (list string)) "both blocks replied" [ "1"; "2" ] ids;
              Alcotest.(check string) "block 1 ok" "ok" (status b1);
              Alcotest.(check string) "block 2 ok" "ok" (status b2))))

let test_concurrent_bitwise () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      let expected = expected_result () in
      let domains =
        Array.init 4 (fun i ->
            Domain.spawn (fun () -> Serve.request ~socket (size_request ~id:(10 + i))))
      in
      Array.iteri
        (fun i d ->
          let reply = ok_reply (Printf.sprintf "client %d" i) (Domain.join d) in
          Alcotest.(check string) (Printf.sprintf "client %d ok" i) "ok" (status reply);
          Alcotest.(check string)
            (Printf.sprintf "client %d id" i)
            (string_of_int (10 + i))
            (Json.encode (Json.member_exn "id" reply));
          Alcotest.(check string) (Printf.sprintf "client %d bitwise" i) expected (result_str reply))
        domains)

(* ------------------------------------------------- introspection tests *)

let kron_request ~id ?(telemetry = false) () =
  Json.Obj
    ([
       ("id", Json.Num (float_of_int id));
       ("op", Json.Str "kron");
       ("dims", Json.List [ Json.Num 3.; Json.Num 3. ]);
       ("rates", Json.List [ Json.Num 1.; Json.Num 2. ]);
     ]
    @ if telemetry then [ ("telemetry", Json.Bool true) ] else [])

let int_field what name r =
  match Json.mem_int name r with
  | Some n -> n
  | None -> Alcotest.failf "%s: no int field %s in %s" what name (Json.encode r)

let test_stats_op () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      for i = 1 to 3 do
        ignore (ok_reply "size for stats" (Serve.request ~socket (size_request ~id:i)))
      done;
      let boom =
        ok_reply "boom for stats" (Serve.request ~socket (Json.Obj [ ("op", Json.Str "boom") ]))
      in
      Alcotest.(check string) "boom failed" "error" (status boom);
      let stats =
        ok_reply "stats" (Serve.request ~socket (Json.Obj [ ("op", Json.Str "stats") ]))
      in
      Alcotest.(check string) "stats ok" "ok" (status stats);
      let accepted = int_field "stats" "accepted" stats in
      let completed = int_field "stats" "completed" stats in
      let failed = int_field "stats" "failed" stats in
      let in_flight = int_field "stats" "in_flight" stats in
      Alcotest.(check int) "conservation" accepted (completed + failed + in_flight);
      Alcotest.(check int) "quiescent" 0 in_flight;
      Alcotest.(check int) "three sizes completed + boom failed" 4 (completed + failed);
      Alcotest.(check int) "one failure" 1 failed;
      let ops = Json.member_exn "ops" stats in
      let size_stats = Json.member_exn "size" ops in
      Alcotest.(check int) "per-op size completed" 3 (int_field "ops.size" "completed" size_stats);
      let boom_stats = Json.member_exn "boom" ops in
      Alcotest.(check int) "per-op boom failed" 1 (int_field "ops.boom" "failed" boom_stats);
      Alcotest.(check bool) "uptime present" true
        (Option.value ~default:(-1.) (Json.mem_number "uptime_s" stats) >= 0.);
      Alcotest.(check int) "workers echoed" 2 (int_field "stats" "workers" stats))

let strip_telemetry = function
  | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") kvs)
  | v -> v

let test_telemetry_strip_parity () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      let plain = ok_reply "plain kron" (Serve.request ~socket (kron_request ~id:21 ())) in
      let tele =
        ok_reply "telemetry kron" (Serve.request ~socket (kron_request ~id:21 ~telemetry:true ()))
      in
      Alcotest.(check string) "telemetry only appends: strip restores the plain reply"
        (Json.encode plain)
        (Json.encode (strip_telemetry tele));
      let tm = Json.member_exn "telemetry" tele in
      Alcotest.(check bool) "request_id positive" true (int_field "telemetry" "request_id" tm > 0);
      Alcotest.(check bool) "queue_ms nonnegative" true
        (Option.value ~default:(-1.) (Json.mem_number "queue_ms" tm) >= 0.);
      Alcotest.(check bool) "service_ms nonnegative" true
        (Option.value ~default:(-1.) (Json.mem_number "service_ms" tm) >= 0.);
      (match Json.member_exn "spans" tm with
      | Json.List spans ->
          Alcotest.(check bool) "captured at least the request span" true (spans <> []);
          List.iter
            (fun s ->
              ignore (int_field "span" "id" s);
              ignore (Json.member_exn "name" s))
            spans
      | _ -> Alcotest.fail "telemetry.spans not a list");
      ignore (Json.member_exn "cache" tm);
      (* A size request's telemetry carries the handler's solver health. *)
      let tele_size =
        match size_request ~id:22 with
        | Json.Obj kvs ->
            ok_reply "telemetry size"
              (Serve.request ~socket (Json.Obj (kvs @ [ ("telemetry", Json.Bool true) ])))
        | _ -> assert false
      in
      let tm2 = Json.member_exn "telemetry" tele_size in
      match Json.member_exn "solvers" tm2 with
      | Json.Obj _ -> ()
      | v -> Alcotest.failf "telemetry.solvers not an object: %s" (Json.encode v))

let test_metrics_op () =
  with_server (fun t ->
      let socket = Serve.socket_path t in
      (* Latency histograms are process-global (registered by name), so
         earlier tests' requests are already in them: assert the delta. *)
      let size_count () =
        let m =
          ok_reply "metrics json" (Serve.request ~socket (Json.Obj [ ("op", Json.Str "metrics") ]))
        in
        Alcotest.(check string) "metrics ok" "ok" (status m);
        match Json.member "serve.latency_ms.size" (Json.member_exn "histograms" (Json.member_exn "metrics" m)) with
        | Some h -> (m, int_field "latency histogram" "count" h)
        | None -> (m, 0)
      in
      let _, before = size_count () in
      ignore (ok_reply "warm size" (Serve.request ~socket (size_request ~id:31)));
      let m, after = size_count () in
      Alcotest.(check int) "one more size observation" (before + 1) after;
      let size_h =
        Json.member_exn "serve.latency_ms.size"
          (Json.member_exn "histograms" (Json.member_exn "metrics" m))
      in
      List.iter
        (fun q ->
          Alcotest.(check bool) (q ^ " present") true
            (Option.is_some (Json.mem_number q size_h)))
        [ "p50"; "p95"; "p99" ];
      let prom =
        ok_reply "metrics prometheus"
          (Serve.request ~socket
             (Json.Obj [ ("op", Json.Str "metrics"); ("prometheus", Json.Bool true) ]))
      in
      let text =
        match Json.member "text" prom with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.fail "prometheus reply has no text member"
      in
      Alcotest.(check (option string)) "content type" (Some "text/plain; version=0.0.4")
        (Json.mem_string "content_type" prom);
      let has_line pred =
        List.exists pred (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "exposition has the size histogram" true
        (has_line (fun l -> l = "# TYPE serve_latency_ms_size histogram"));
      Alcotest.(check bool) "exposition has cumulative buckets" true
        (has_line (fun l ->
             String.length l > 34
             && String.sub l 0 34 = "serve_latency_ms_size_bucket{le=\"+")))

let test_flight_op_and_cap () =
  (* flight_cap 8 in the test config; send more than that. *)
  with_server (fun t ->
      let socket = Serve.socket_path t in
      for i = 1 to 12 do
        ignore (ok_reply "kron for flight" (Serve.request ~socket (kron_request ~id:i ())))
      done;
      let fl =
        ok_reply "flight" (Serve.request ~socket (Json.Obj [ ("op", Json.Str "flight") ]))
      in
      Alcotest.(check string) "flight ok" "ok" (status fl);
      Alcotest.(check int) "capacity echoed" 8 (int_field "flight" "capacity" fl);
      Alcotest.(check int) "all pushes counted" 12 (int_field "flight" "recorded" fl);
      match Json.member_exn "records" fl with
      | Json.List records ->
          Alcotest.(check int) "ring kept exactly capacity records" 8 (List.length records);
          let rids = List.map (int_field "record" "request_id") records in
          Alcotest.(check (list int)) "newest records, oldest first" (List.sort compare rids) rids;
          List.iter
            (fun r ->
              Alcotest.(check (option string)) "op recorded" (Some "kron") (Json.mem_string "op" r);
              Alcotest.(check (option string)) "outcome ok" (Some "ok")
                (Json.mem_string "outcome" r))
            records
      | _ -> Alcotest.fail "flight.records not a list")

let test_internal_error_dumps_flight () =
  let cfg = test_config () in
  let dump = cfg.Serve.socket_path ^ ".flight.jsonl" in
  with_server ~config:cfg (fun t ->
      let socket = Serve.socket_path t in
      ignore (ok_reply "kron before boom" (Serve.request ~socket (kron_request ~id:41 ())));
      Alcotest.(check bool) "no dump before a crash" false (Sys.file_exists dump);
      let boom =
        ok_reply "boom" (Serve.request ~socket (Json.Obj [ ("id", Json.Num 42.); ("op", Json.Str "boom") ]))
      in
      Alcotest.(check string) "boom kind" "internal_error" (error_kind boom);
      (* The dump is written before the error reply, so it exists now. *)
      Alcotest.(check bool) "dump written on internal_error" true (Sys.file_exists dump);
      let ic = open_in dump in
      let lines = In_channel.input_lines ic in
      close_in ic;
      Sys.remove dump;
      let records = List.map Json.parse_exn (List.filter (fun l -> l <> "") lines) in
      Alcotest.(check int) "dump holds both requests" 2 (List.length records);
      let last = List.nth records 1 in
      Alcotest.(check (option string)) "crash recorded" (Some "internal_error")
        (Json.mem_string "outcome" last);
      Alcotest.(check (option string)) "crashing op recorded" (Some "boom")
        (Json.mem_string "op" last))

let () =
  Alcotest.run "serve"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "start, ping, stop, unlink" `Quick test_lifecycle;
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
        ] );
      ( "parity",
        [
          Alcotest.test_case "size bitwise vs library" `Quick test_size_bitwise;
          Alcotest.test_case "concurrent clients bitwise" `Quick test_concurrent_bitwise;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
          Alcotest.test_case "deadline zero" `Quick test_deadline_zero;
          Alcotest.test_case "overload and retry" `Quick test_overload_and_retry;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "stats counters conserve" `Quick test_stats_op;
          Alcotest.test_case "telemetry strip parity" `Quick test_telemetry_strip_parity;
          Alcotest.test_case "metrics json and prometheus" `Quick test_metrics_op;
          Alcotest.test_case "flight ring and capacity" `Quick test_flight_op_and_cap;
          Alcotest.test_case "internal_error dumps flight" `Quick
            test_internal_error_dumps_flight;
        ] );
    ]
