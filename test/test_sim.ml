(* Tests for the discrete-event simulator: the event heap, the engine,
   arbitration policies, and the full bus simulation validated against
   M/M/1/K closed forms. *)

module Event_heap = Bufsize_sim.Event_heap
module Des = Bufsize_sim.Des
module Arbiter = Bufsize_sim.Arbiter
module Metrics = Bufsize_sim.Metrics
module Sim_run = Bufsize_sim.Sim_run
module Replicate = Bufsize_sim.Replicate
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Birth_death = Bufsize_prob.Birth_death
module Rng = Bufsize_prob.Rng
module Stats = Bufsize_numeric.Stats

let check_close tol = Alcotest.(check (float tol))

(* ----------------------------------------------------------- event heap *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:3. "c";
  Event_heap.push h ~time:1. "a";
  Event_heap.push h ~time:2. "b";
  let pop () = match Event_heap.pop h with Some (_, x) -> x | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1. "first";
  Event_heap.push h ~time:1. "second";
  (match Event_heap.pop h with
  | Some (_, x) -> Alcotest.(check string) "insertion order" "first" x
  | None -> Alcotest.fail "empty");
  match Event_heap.pop h with
  | Some (_, x) -> Alcotest.(check string) "then second" "second" x
  | None -> Alcotest.fail "empty"

let test_heap_random_order () =
  let h = Event_heap.create () in
  let rng = Rng.create 5 in
  let times = Array.init 500 (fun _ -> Rng.float rng) in
  Array.iter (fun t -> Event_heap.push h ~time:t ()) times;
  let sorted = Array.copy times in
  Array.sort compare sorted;
  Array.iter
    (fun expected ->
      match Event_heap.pop h with
      | Some (t, ()) -> check_close 0. "heap order" expected t
      | None -> Alcotest.fail "heap exhausted early")
    sorted

let test_heap_nan_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: NaN time") (fun () ->
      Event_heap.push h ~time:Float.nan ())

(* Property: under any interleaving of pushes and pops, the heap behaves
   like a sorted multiset — every pop returns the minimum pending time,
   and sizes track exactly.  Times are drawn from a tiny discrete set so
   ties are frequent. *)
let test_heap_model_property () =
  let op_gen =
    QCheck.Gen.(
      list_size (int_range 1 120)
        (frequency [ (3, map (fun t -> `Push (float_of_int t)) (int_range 0 5)); (2, return `Pop) ]))
  in
  let prop ops =
    let h = Event_heap.create () in
    let pending = ref [] in
    List.for_all
      (fun op ->
        match op with
        | `Push t ->
            Event_heap.push h ~time:t ();
            pending := t :: !pending;
            Event_heap.size h = List.length !pending
        | `Pop -> (
            match (Event_heap.pop h, !pending) with
            | None, [] -> true
            | None, _ :: _ | Some _, [] -> false
            | Some (t, ()), ps ->
                let m = List.fold_left Float.min infinity ps in
                let rec remove_one = function
                  | [] -> []
                  | x :: rest -> if x = t then rest else x :: remove_one rest
                in
                pending := remove_one ps;
                t = m && Event_heap.size h = List.length !pending))
      ops
    && (Event_heap.is_empty h = (!pending = []))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"heap vs multiset model" (QCheck.make op_gen) prop)

(* Property: events pushed with equal times pop in insertion order, no
   matter what other times surround them. *)
let test_heap_tie_stability_property () =
  let gen =
    QCheck.Gen.(list_size (int_range 2 60) (pair (int_range 0 3) nat))
  in
  let prop timed =
    let h = Event_heap.create () in
    List.iteri (fun i (t, x) -> Event_heap.push h ~time:(float_of_int t) (i, x)) timed;
    let popped = ref [] in
    let rec drain () =
      match Event_heap.pop h with
      | Some (t, v) ->
          popped := (t, v) :: !popped;
          drain ()
      | None -> ()
    in
    drain ();
    let popped = List.rev !popped in
    (* Within every group of equal times, insertion sequence numbers must
       be strictly increasing. *)
    List.for_all
      (fun t0 ->
        let seq =
          List.filter_map
            (fun (t, (i, _)) -> if t = float_of_int t0 then Some i else None)
            popped
        in
        List.sort compare seq = seq)
      [ 0; 1; 2; 3 ]
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"FIFO within equal times" (QCheck.make gen) prop)

(* ------------------------------------------------------------------ des *)

let test_des_runs_in_order () =
  let des = Des.create () in
  let log = ref [] in
  Des.schedule des ~delay:2. (fun _ -> log := 2 :: !log);
  Des.schedule des ~delay:1. (fun _ -> log := 1 :: !log);
  Des.run des ~until:10.;
  Alcotest.(check (list int)) "order" [ 2; 1 ] !log;
  check_close 1e-12 "clock at until" 10. (Des.now des)

let test_des_until_cuts_off () =
  let des = Des.create () in
  let fired = ref false in
  Des.schedule des ~delay:5. (fun _ -> fired := true);
  Des.run des ~until:3.;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "still pending" 1 (Des.pending des)

let test_des_cascading_events () =
  let des = Des.create () in
  let count = ref 0 in
  let rec tick des =
    incr count;
    if !count < 5 then Des.schedule des ~delay:1. tick
  in
  Des.schedule des ~delay:1. tick;
  Des.run des ~until:100.;
  Alcotest.(check int) "chain of events" 5 !count

let test_des_rejects_past () =
  let des = Des.create () in
  Des.schedule des ~delay:1. (fun _ -> ());
  Des.run des ~until:5.;
  Alcotest.check_raises "past" (Invalid_argument "Des.schedule_at: time in the past") (fun () ->
      Des.schedule_at des ~time:1. (fun _ -> ()))

(* -------------------------------------------------------------- arbiter *)

let view ?(last = -1) lengths =
  {
    Arbiter.bus = 0;
    num_clients = Array.length lengths;
    queue_lengths = lengths;
    capacities = Array.map (fun _ -> 10) lengths;
    last_served = last;
  }

let test_arbiter_empty () =
  let rng = Rng.create 1 in
  Alcotest.(check (option int)) "empty" None (Arbiter.choose Arbiter.Round_robin rng (view [| 0; 0 |]))

let test_arbiter_fixed_priority () =
  let rng = Rng.create 1 in
  Alcotest.(check (option int)) "lowest index" (Some 1)
    (Arbiter.choose Arbiter.Fixed_priority rng (view [| 0; 2; 5 |]))

let test_arbiter_longest_queue () =
  let rng = Rng.create 1 in
  Alcotest.(check (option int)) "longest" (Some 2)
    (Arbiter.choose Arbiter.Longest_queue rng (view [| 1; 2; 5 |]));
  Alcotest.(check (option int)) "tie -> lowest index" (Some 0)
    (Arbiter.choose Arbiter.Longest_queue rng (view [| 5; 2; 5 |]))

let test_arbiter_round_robin () =
  let rng = Rng.create 1 in
  Alcotest.(check (option int)) "after 0 comes 1" (Some 1)
    (Arbiter.choose Arbiter.Round_robin rng (view ~last:0 [| 3; 2; 1 |]));
  Alcotest.(check (option int)) "wraps" (Some 0)
    (Arbiter.choose Arbiter.Round_robin rng (view ~last:2 [| 3; 2; 1 |]));
  Alcotest.(check (option int)) "skips empty" (Some 2)
    (Arbiter.choose Arbiter.Round_robin rng (view ~last:0 [| 3; 0; 1 |]))

let test_arbiter_random_covers () =
  let rng = Rng.create 99 in
  let seen = Array.make 3 false in
  for _ = 1 to 200 do
    match Arbiter.choose Arbiter.Random rng (view [| 1; 1; 1 |]) with
    | Some i -> seen.(i) <- true
    | None -> Alcotest.fail "unexpected empty"
  done;
  Alcotest.(check bool) "all clients chosen" true (Array.for_all (fun b -> b) seen)

let test_arbiter_custom_fallback () =
  let rng = Rng.create 1 in
  let bogus = Arbiter.Custom ("bogus", fun _ _ -> Some 17) in
  Alcotest.(check (option int)) "falls back to longest queue" (Some 1)
    (Arbiter.choose bogus rng (view [| 1; 4 |]))

(* ------------------------------------------- simulation vs closed forms *)

(* Single bus, one loaded client with capacity K: the simulated loss
   fraction must match the M/M/1/K blocking probability. *)
let single_bus_spec ~lambda ~mu ~k =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:mu "bus" in
  let p0 = Topology.add_processor b ~bus:bus0 "src" in
  let p1 = Topology.add_processor b ~bus:bus0 "dst" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = lambda } ] in
  let allocation =
    Buffer_alloc.make
      [ (bus0, Traffic.Proc_client p0, k); (bus0, Traffic.Proc_client p1, 1) ]
  in
  { (Sim_run.default_spec ~traffic ~allocation) with Sim_run.horizon = 30_000.; warmup = 500. }

(* The simulator dequeues a request when its service starts, so a buffer of
   capacity [k] plus the in-service slot is an M/M/1/(k+1) system: an
   arrival is lost iff [k] requests wait AND one is in service. *)

let test_sim_mm1k_blocking () =
  let lambda = 2.0 and mu = 3.0 in
  let k = 4 in
  let spec = single_bus_spec ~lambda ~mu ~k in
  let report = Sim_run.run spec in
  let simulated = Metrics.loss_fraction report in
  let expected = Birth_death.Mm1k.blocking_probability ~lambda ~mu ~k:(k + 1) in
  check_close 0.01 "blocking probability" expected simulated

let test_sim_mm1k_sojourn () =
  let lambda = 2.0 and mu = 3.0 in
  let k = 4 in
  let spec = single_bus_spec ~lambda ~mu ~k in
  let report = Sim_run.run spec in
  (* Mean system sojourn (queueing + service); the buffer records the
     queueing part, so add the mean service time. *)
  let simulated = Metrics.mean_buffer_sojourn report +. (1. /. mu) in
  let expected = Birth_death.Mm1k.mean_sojourn ~lambda ~mu ~k:(k + 1) in
  check_close 0.05 "sojourn" expected simulated

let test_sim_conservation () =
  let spec = single_bus_spec ~lambda:2.0 ~mu:3.0 ~k:4 in
  let report = Sim_run.run spec in
  let p = report.Metrics.per_proc.(0) in
  (* In-flight requests at the horizon account for a tiny slack. *)
  Alcotest.(check bool) "offered >= lost + delivered" true
    (p.Metrics.offered >= p.Metrics.lost + p.Metrics.delivered);
  Alcotest.(check bool) "accounting tight" true
    (p.Metrics.offered - p.Metrics.lost - p.Metrics.delivered < 10)

let test_sim_deterministic_given_seed () =
  let spec = single_bus_spec ~lambda:2.0 ~mu:3.0 ~k:4 in
  let r1 = Sim_run.run spec and r2 = Sim_run.run spec in
  Alcotest.(check int) "same losses" (Metrics.total_lost r1) (Metrics.total_lost r2);
  let r3 = Sim_run.run { spec with Sim_run.seed = 42 } in
  Alcotest.(check bool) "different seed differs" true
    (Metrics.total_lost r1 <> Metrics.total_lost r3
    || Metrics.total_offered r1 <> Metrics.total_offered r3)

let test_sim_bigger_buffer_fewer_losses () =
  let loss k =
    let spec = single_bus_spec ~lambda:2.5 ~mu:3.0 ~k in
    Metrics.loss_fraction (Sim_run.run spec)
  in
  Alcotest.(check bool) "monotone" true (loss 8 < loss 2)

let test_sim_timeout_policy_drops () =
  (* A tight timeout must cause strictly more losses than no timeout. *)
  let spec = single_bus_spec ~lambda:2.5 ~mu:3.0 ~k:6 in
  let base = Metrics.total_lost (Sim_run.run spec) in
  let with_timeout =
    Metrics.total_lost (Sim_run.run { spec with Sim_run.timeout = Some (Sim_run.Global 0.05) })
  in
  Alcotest.(check bool) "timeout hurts" true (with_timeout > base)

let test_sim_cross_bus_delivery () =
  (* Two buses joined by a bridge: flows must be delivered end to end and
     bridge buffer statistics recorded. *)
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:5.0 "x" in
  let bus1 = Topology.add_bus b ~service_rate:5.0 "y" in
  let p0 = Topology.add_processor b ~bus:bus0 "src" in
  let p1 = Topology.add_processor b ~bus:bus1 "dst" in
  let _ = Topology.add_bridge b ~between:(bus0, bus1) "br" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 1.0 } ] in
  let allocation = Buffer_alloc.uniform traffic ~budget:12 in
  let spec =
    { (Sim_run.default_spec ~traffic ~allocation) with Sim_run.horizon = 5000.; warmup = 100. }
  in
  let report = Sim_run.run spec in
  Alcotest.(check bool) "deliveries happen" true (Metrics.total_delivered report > 3000);
  let bridge_buffer =
    Array.to_list report.Metrics.buffers
    |> List.find_opt (fun bs ->
           match bs.Metrics.client with
           | Traffic.Bridge_client _ -> true
           | Traffic.Proc_client _ -> false)
  in
  match bridge_buffer with
  | Some bs -> Alcotest.(check bool) "bridge buffer used" true (bs.Metrics.served > 3000)
  | None -> Alcotest.fail "no bridge buffer in report"

let test_sim_zero_capacity_drops_everything () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:5.0 "x" in
  let p0 = Topology.add_processor b ~bus:bus0 "src" in
  let p1 = Topology.add_processor b ~bus:bus0 "dst" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 1.0 } ] in
  let allocation =
    Buffer_alloc.make [ (bus0, Traffic.Proc_client p0, 0); (bus0, Traffic.Proc_client p1, 1) ]
  in
  let spec =
    { (Sim_run.default_spec ~traffic ~allocation) with Sim_run.horizon = 1000.; warmup = 0. }
  in
  let report = Sim_run.run spec in
  Alcotest.(check int) "all lost" (Metrics.total_offered report) (Metrics.total_lost report)

let test_sim_occupancy_matches_theory () =
  let lambda = 2.0 and mu = 3.0 in
  let k = 4 in
  let spec = single_bus_spec ~lambda ~mu ~k in
  let report = Sim_run.run spec in
  (* The request leaves the buffer when its service starts, so the system
     is M/M/1/(k+1) and E[queue] = E[N] - P(server busy). *)
  let pi = Birth_death.stationary (Birth_death.mm1k ~lambda ~mu ~k:(k + 1)) in
  let expected_n = Birth_death.Mm1k.mean_customers ~lambda ~mu ~k:(k + 1) in
  let expected_queue = expected_n -. (1. -. pi.(0)) in
  let buf =
    Array.to_list report.Metrics.buffers
    |> List.find (fun bs -> bs.Metrics.served > 0)
  in
  check_close 0.05 "occupancy" expected_queue buf.Metrics.mean_occupancy

let test_sim_per_buffer_timeout_infinite_is_noop () =
  (* Per-buffer thresholds of +infinity must reproduce the no-timeout run
     exactly (same RNG consumption, same losses). *)
  let spec = single_bus_spec ~lambda:2.5 ~mu:3.0 ~k:4 in
  let base = Sim_run.run spec in
  let infinite =
    Sim_run.run
      { spec with Sim_run.timeout = Some (Sim_run.Per_buffer (fun _ _ -> infinity)) }
  in
  Alcotest.(check int) "same losses" (Metrics.total_lost base) (Metrics.total_lost infinite);
  Alcotest.(check int) "same deliveries" (Metrics.total_delivered base)
    (Metrics.total_delivered infinite)

let test_sim_per_buffer_timeout_selective () =
  (* A tight threshold on the loaded buffer only: timeouts recorded there
     and nowhere else. *)
  let spec = single_bus_spec ~lambda:2.5 ~mu:3.0 ~k:6 in
  let tight bus client =
    ignore bus;
    match client with Traffic.Proc_client 0 -> 0.02 | _ -> infinity
  in
  let report = Sim_run.run { spec with Sim_run.timeout = Some (Sim_run.Per_buffer tight) } in
  let timeouts =
    Array.fold_left (fun acc b -> acc + b.Metrics.timeouts) 0 report.Metrics.buffers
  in
  Alcotest.(check bool) "timeouts happen" true (timeouts > 0);
  Array.iter
    (fun b ->
      match b.Metrics.client with
      | Traffic.Proc_client 0 -> ()
      | _ -> Alcotest.(check int) "no timeouts elsewhere" 0 b.Metrics.timeouts)
    report.Metrics.buffers

let test_sim_warmup_resets_counters () =
  (* With warmup close to the horizon almost nothing is counted. *)
  let spec = single_bus_spec ~lambda:2.5 ~mu:3.0 ~k:4 in
  let full = Sim_run.run { spec with Sim_run.horizon = 1000.; warmup = 0. } in
  let late = Sim_run.run { spec with Sim_run.horizon = 1000.; warmup = 990. } in
  Alcotest.(check bool) "few counted after late warmup" true
    (Metrics.total_offered late < Metrics.total_offered full / 10)

let test_sim_latency_recorded () =
  let mu = 3.0 in
  let spec = single_bus_spec ~lambda:1.0 ~mu ~k:6 in
  let report = Sim_run.run spec in
  let p = report.Metrics.per_proc.(0) in
  Alcotest.(check bool) "latency >= service time" true (p.Metrics.mean_latency >= 1. /. mu);
  Alcotest.(check bool) "max >= mean" true (p.Metrics.max_latency >= p.Metrics.mean_latency);
  Alcotest.(check bool) "finite" true (Float.is_finite p.Metrics.mean_latency)

let test_sim_latency_grows_with_load () =
  let latency lambda =
    let spec = single_bus_spec ~lambda ~mu:3.0 ~k:12 in
    (Sim_run.run spec).Metrics.per_proc.(0).Metrics.mean_latency
  in
  Alcotest.(check bool) "heavier load waits longer" true (latency 2.7 > latency 0.5)

let test_sim_no_deliveries_nan_latency () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:5.0 "x" in
  let p0 = Topology.add_processor b ~bus:bus0 "src" in
  let p1 = Topology.add_processor b ~bus:bus0 "dst" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 1.0 } ] in
  let allocation =
    Buffer_alloc.make [ (bus0, Traffic.Proc_client p0, 0); (bus0, Traffic.Proc_client p1, 1) ]
  in
  let spec =
    { (Sim_run.default_spec ~traffic ~allocation) with Sim_run.horizon = 100.; warmup = 0. }
  in
  let report = Sim_run.run spec in
  Alcotest.(check bool) "nan latency without deliveries" true
    (Float.is_nan report.Metrics.per_proc.(0).Metrics.mean_latency)

let test_sim_utilization_sanity () =
  (* Offered load below capacity: deliveries dominate losses. *)
  let spec = single_bus_spec ~lambda:1.0 ~mu:4.0 ~k:6 in
  let report = Sim_run.run spec in
  Alcotest.(check bool) "low-load regime nearly lossless" true
    (Metrics.total_lost report * 100 < Metrics.total_offered report)

(* ------------------------------------------------------------ replicate *)

let test_replicate_aggregates () =
  let spec =
    { (single_bus_spec ~lambda:2.0 ~mu:3.0 ~k:4) with Sim_run.horizon = 2000.; warmup = 100. }
  in
  let agg = Replicate.run ~replications:5 spec in
  Alcotest.(check int) "replication count" 5 (Stats.count agg.Replicate.total_lost);
  Alcotest.(check bool) "variance across seeds" true
    (Stats.std_dev agg.Replicate.total_lost > 0.);
  let per_proc = Replicate.mean_per_proc_lost agg in
  Alcotest.(check int) "two processors" 2 (Array.length per_proc);
  Alcotest.(check bool) "src loses" true (per_proc.(0) > 0.);
  check_close 1e-12 "dst loses nothing" 0. per_proc.(1)

(* Merging with the empty aggregate must be the identity, and merging two
   single-replication shards must reproduce the two-replication run (the
   regression here was NaN variance sneaking in through empty shards). *)
let test_replicate_empty_merge_identity () =
  let spec =
    { (single_bus_spec ~lambda:2.0 ~mu:3.0 ~k:4) with Sim_run.horizon = 500.; warmup = 50. }
  in
  let agg = Replicate.run ~replications:3 spec in
  let nprocs = Array.length agg.Replicate.per_proc_lost in
  let e = Replicate.empty ~nprocs in
  Alcotest.(check int) "empty has no replications" 0 e.Replicate.replications;
  List.iter
    (fun merged ->
      Alcotest.(check int) "replications" 3 merged.Replicate.replications;
      Alcotest.(check int) "count" (Stats.count agg.Replicate.total_lost)
        (Stats.count merged.Replicate.total_lost);
      check_close 1e-12 "mean" (Stats.mean agg.Replicate.total_lost)
        (Stats.mean merged.Replicate.total_lost);
      check_close 1e-9 "variance" (Stats.variance agg.Replicate.total_lost)
        (Stats.variance merged.Replicate.total_lost);
      check_close 1e-12 "loss fraction mean" (Stats.mean agg.Replicate.loss_fraction)
        (Stats.mean merged.Replicate.loss_fraction);
      Array.iteri
        (fun p s ->
          check_close 1e-12 "per-proc mean" (Stats.mean agg.Replicate.per_proc_lost.(p))
            (Stats.mean s))
        merged.Replicate.per_proc_lost)
    [ Replicate.merge e agg; Replicate.merge agg e ];
  let ee = Replicate.merge e (Replicate.empty ~nprocs) in
  Alcotest.(check int) "empty + empty count" 0 (Stats.count ee.Replicate.total_lost);
  Alcotest.(check bool) "empty + empty mean is nan" true
    (Float.is_nan (Stats.mean ee.Replicate.total_lost))

let test_replicate_single_sample_merge () =
  let spec =
    { (single_bus_spec ~lambda:2.0 ~mu:3.0 ~k:4) with Sim_run.horizon = 500.; warmup = 50. }
  in
  (* Two single-replication shards with different base seeds.  A
     single-sample aggregate has a well-defined mean and (by convention)
     NaN variance; the merge must produce the exact two-sample
     statistics, not propagate the NaN. *)
  let a = Replicate.run ~replications:1 spec in
  let b = Replicate.run ~replications:1 { spec with Sim_run.seed = 4242 } in
  Alcotest.(check bool) "single-sample variance is nan" true
    (Float.is_nan (Stats.variance a.Replicate.total_lost));
  Alcotest.(check bool) "single-sample mean finite" true
    (Float.is_finite (Stats.mean a.Replicate.total_lost));
  let la = Stats.mean a.Replicate.total_lost and lb = Stats.mean b.Replicate.total_lost in
  let merged = Replicate.merge a b in
  Alcotest.(check int) "replications" 2 merged.Replicate.replications;
  Alcotest.(check int) "count" 2 (Stats.count merged.Replicate.total_lost);
  check_close 1e-9 "mean" ((la +. lb) /. 2.) (Stats.mean merged.Replicate.total_lost);
  let d = la -. lb in
  check_close 1e-9 "variance" (d *. d /. 2.) (Stats.variance merged.Replicate.total_lost);
  Alcotest.(check bool) "variance finite with two samples" true
    (Float.is_finite (Stats.variance merged.Replicate.total_lost));
  check_close 1e-12 "min" (Float.min la lb) (Stats.min_value merged.Replicate.total_lost);
  check_close 1e-12 "max" (Float.max la lb) (Stats.max_value merged.Replicate.total_lost)

let () =
  Alcotest.run "sim"
    [
      ( "event-heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "random order (500 events)" `Quick test_heap_random_order;
          Alcotest.test_case "NaN rejected" `Quick test_heap_nan_rejected;
          Alcotest.test_case "multiset model (property)" `Quick test_heap_model_property;
          Alcotest.test_case "tie stability (property)" `Quick test_heap_tie_stability_property;
        ] );
      ( "des",
        [
          Alcotest.test_case "event order" `Quick test_des_runs_in_order;
          Alcotest.test_case "until cutoff" `Quick test_des_until_cuts_off;
          Alcotest.test_case "cascading events" `Quick test_des_cascading_events;
          Alcotest.test_case "past rejected" `Quick test_des_rejects_past;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "empty" `Quick test_arbiter_empty;
          Alcotest.test_case "fixed priority" `Quick test_arbiter_fixed_priority;
          Alcotest.test_case "longest queue" `Quick test_arbiter_longest_queue;
          Alcotest.test_case "round robin" `Quick test_arbiter_round_robin;
          Alcotest.test_case "random covers all" `Quick test_arbiter_random_covers;
          Alcotest.test_case "custom fallback" `Quick test_arbiter_custom_fallback;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "MM1K blocking" `Slow test_sim_mm1k_blocking;
          Alcotest.test_case "MM1K sojourn" `Slow test_sim_mm1k_sojourn;
          Alcotest.test_case "request conservation" `Quick test_sim_conservation;
          Alcotest.test_case "deterministic by seed" `Quick test_sim_deterministic_given_seed;
          Alcotest.test_case "buffer size monotonicity" `Slow test_sim_bigger_buffer_fewer_losses;
          Alcotest.test_case "timeout policy drops" `Quick test_sim_timeout_policy_drops;
          Alcotest.test_case "cross-bus delivery" `Quick test_sim_cross_bus_delivery;
          Alcotest.test_case "zero capacity" `Quick test_sim_zero_capacity_drops_everything;
          Alcotest.test_case "occupancy vs theory" `Slow test_sim_occupancy_matches_theory;
        ] );
      ( "timeout-policy",
        [
          Alcotest.test_case "infinite thresholds are a no-op" `Quick
            test_sim_per_buffer_timeout_infinite_is_noop;
          Alcotest.test_case "selective per-buffer thresholds" `Quick
            test_sim_per_buffer_timeout_selective;
          Alcotest.test_case "warmup resets counters" `Quick test_sim_warmup_resets_counters;
          Alcotest.test_case "low-load sanity" `Quick test_sim_utilization_sanity;
        ] );
      ( "latency",
        [
          Alcotest.test_case "recorded and sane" `Quick test_sim_latency_recorded;
          Alcotest.test_case "grows with load" `Slow test_sim_latency_grows_with_load;
          Alcotest.test_case "nan without deliveries" `Quick test_sim_no_deliveries_nan_latency;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "aggregation" `Quick test_replicate_aggregates;
          Alcotest.test_case "empty merge identity" `Quick test_replicate_empty_merge_identity;
          Alcotest.test_case "single-sample shards" `Quick test_replicate_single_sample_merge;
        ] );
    ]
