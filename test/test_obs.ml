(* Tests for the telemetry layer: the disabled fast path (no spans, no
   allocation), shard-merge permutation independence, span nesting and
   pool context propagation, exporter well-formedness (parsed back with
   the strict Test_json parser), and the only-observes guarantee (sizing
   results bitwise identical with tracing on or off). *)

module Obs = Bufsize_obs.Obs
module Pool = Bufsize_pool.Pool
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Sizing = Bufsize_soc.Sizing

let qcheck ?(count = 100) name arb prop =
  QCheck.Test.check_exn (QCheck.Test.make ~count ~name arb prop)

(* Every test owns the global telemetry state for its duration. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* ------------------------------------------------- disabled fast path *)

let test_disabled_records_nothing () =
  fresh ();
  let c = Obs.counter "test.disabled.counter" in
  let h = Obs.histogram "test.disabled.histogram" in
  let r = Obs.span ~name:"invisible" (fun () -> 41 + 1) in
  Alcotest.(check int) "span is transparent" 42 r;
  Obs.incr c;
  Obs.add c 10;
  Obs.observe h 1.5;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.recorded_spans ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.histogram_value h).Obs.h_count;
  Obs.span_with_id ~name:"invisible" (fun id ->
      Alcotest.(check int) "disabled span id is 0" 0 id)

let test_disabled_span_allocates_nothing () =
  fresh ();
  let body () = 7 in
  let iters = 10_000 in
  (* One warm-up call, then measure: a per-call allocation would show up
     as >= 2 words x iters; the slack only covers the Gc.minor_words
     boxed-float results themselves. *)
  ignore (Obs.span ~name:"hot" body);
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Obs.span ~name:"hot" body)
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 64. then
    Alcotest.failf "disabled span allocated %.0f minor words over %d calls" delta iters

(* ------------------------------------------------------- shard merge *)

(* Mirrors the Stats.merge property: increments scattered over arbitrary
   shards in an arbitrary order must merge to the plain sequential
   total.  Amounts stay small integers so histogram float sums are
   exact. *)
let test_prop_shard_merge_permutation () =
  fresh ();
  Obs.enable_metrics ();
  let c1 = Obs.counter "test.shard.c1" in
  let c2 = Obs.counter "test.shard.c2" in
  let h1 = Obs.histogram "test.shard.h1" in
  let h2 = Obs.histogram "test.shard.h2" in
  let arb =
    QCheck.(list (pair (int_bound 1000) (int_bound (Obs.Internal.stripes - 1))))
  in
  qcheck ~count:200 "shards merge to the sequential count in any permutation" arb
    (fun incs ->
      Obs.reset ();
      let apply c h items =
        List.iter
          (fun (amt, stripe) ->
            Obs.Internal.counter_add_on_stripe c ~stripe amt;
            Obs.Internal.observe_on_stripe h ~stripe (float_of_int amt))
          items
      in
      apply c1 h1 incs;
      (* Same multiset, reversed order, and rotated shard assignment. *)
      apply c2 h2
        (List.rev_map
           (fun (amt, stripe) -> (amt, (stripe + 7) mod Obs.Internal.stripes))
           incs);
      let expected = List.fold_left (fun a (amt, _) -> a + amt) 0 incs in
      let s1 = Obs.histogram_value h1 and s2 = Obs.histogram_value h2 in
      Obs.counter_value c1 = expected
      && Obs.counter_value c2 = expected
      && s1.Obs.h_count = List.length incs
      && s2.Obs.h_count = s1.Obs.h_count
      && s1.Obs.h_sum = float_of_int expected
      && s2.Obs.h_sum = s1.Obs.h_sum
      && s1.Obs.h_min = s2.Obs.h_min
      && s1.Obs.h_max = s2.Obs.h_max);
  fresh ()

(* ----------------------------------------------------- span recording *)

let find_span name spans =
  match List.find_opt (fun s -> s.Obs.sname = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting_and_attrs () =
  fresh ();
  Obs.enable_spans ();
  Obs.span ~name:"outer" (fun () ->
      Obs.span ~name:"inner"
        ~attrs:(fun () -> [ ("k", "v") ])
        (fun () -> ());
      Obs.span ~name:"inner2" (fun () -> ()));
  let spans = Obs.recorded_spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = find_span "outer" spans in
  let inner = find_span "inner" spans in
  let inner2 = find_span "inner2" spans in
  Alcotest.(check int) "outer is a root" 0 outer.Obs.sparent;
  Alcotest.(check int) "inner parented under outer" outer.Obs.sid inner.Obs.sparent;
  Alcotest.(check int) "inner2 parented under outer" outer.Obs.sid inner2.Obs.sparent;
  Alcotest.(check (list (pair string string))) "attrs captured" [ ("k", "v") ] inner.Obs.sattrs;
  Alcotest.(check bool) "outer at least as long as inner" true
    (outer.Obs.sdur_ns >= inner.Obs.sdur_ns);
  Alcotest.(check int) "no drops" 0 (Obs.dropped_spans ());
  fresh ()

let test_span_exception_still_recorded () =
  fresh ();
  Obs.enable_spans ();
  (try Obs.span ~name:"thrower" (fun () -> failwith "boom") with Failure _ -> ());
  ignore (find_span "thrower" (Obs.recorded_spans ()));
  fresh ()

let test_span_with_id_cross_reference () =
  fresh ();
  Obs.enable_spans ();
  let seen = ref 0 in
  Obs.span_with_id ~name:"chain" (fun id -> seen := id);
  let s = find_span "chain" (Obs.recorded_spans ()) in
  Alcotest.(check bool) "nonzero id" true (!seen > 0);
  Alcotest.(check int) "body saw the recorded id" s.Obs.sid !seen;
  fresh ()

let test_pool_context_propagation () =
  fresh ();
  Obs.enable_spans ();
  (* Oversubscribed so cross-domain propagation is really exercised even
     on a single-core runner. *)
  let pool = Pool.create ~oversubscribe:true 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Obs.span ~name:"submit" (fun () ->
          ignore
            (Pool.map_array ~pool
               (fun i -> Obs.span ~name:"worker" (fun () -> i))
               (Array.init 8 Fun.id))));
  let spans = Obs.recorded_spans () in
  let submit = find_span "submit" spans in
  let workers = List.filter (fun s -> s.Obs.sname = "worker") spans in
  Alcotest.(check int) "eight worker spans" 8 (List.length workers);
  List.iter
    (fun w ->
      Alcotest.(check int) "worker parented under the submitting span" submit.Obs.sid
        w.Obs.sparent)
    workers;
  fresh ()

(* ----------------------------------------------------------- exporters *)

let with_temp_file f =
  let path = Filename.temp_file "bufsize_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let record_sample_run () =
  fresh ();
  Obs.enable_spans ();
  Obs.enable_metrics ();
  let c = Obs.counter "test.export.counter" in
  let h = Obs.histogram "test.export.histogram" in
  Obs.span ~name:"root \"quoted\"\n" (fun () ->
      Obs.add c 3;
      Obs.observe h 0.25;
      Obs.span ~name:"leaf" ~attrs:(fun () -> [ ("path", "a\\b\t") ]) (fun () -> ()))

let test_chrome_trace_well_formed () =
  record_sample_run ();
  with_temp_file (fun path ->
      Obs.write_chrome_trace path;
      let json = Test_json.parse_exn (read_file path) in
      let events = Test_json.(to_list (member_exn "traceEvents" json)) in
      let phase e = Test_json.(to_string (member_exn "ph" e)) in
      let xs = List.filter (fun e -> phase e = "X") events in
      let ms = List.filter (fun e -> phase e = "M") events in
      Alcotest.(check int) "one X event per span" 2 (List.length xs);
      Alcotest.(check bool) "metadata events present" true (ms <> []);
      List.iter
        (fun e ->
          Alcotest.(check bool) "ts present and nonnegative" true
            Test_json.(to_number (member_exn "ts" e) >= 0.);
          Alcotest.(check bool) "dur present and nonnegative" true
            Test_json.(to_number (member_exn "dur" e) >= 0.);
          Alcotest.(check (float 0.)) "single process" 1.
            Test_json.(to_number (member_exn "pid" e));
          ignore Test_json.(to_number (member_exn "tid" e));
          ignore Test_json.(to_string (member_exn "name" e));
          let args = Test_json.member_exn "args" e in
          ignore Test_json.(to_string (member_exn "span_id" args)))
        xs;
      let leaf =
        List.find (fun e -> Test_json.(to_string (member_exn "name" e)) = "leaf") xs
      in
      Alcotest.(check string) "attrs survive the round-trip" "a\\b\t"
        Test_json.(to_string (member_exn "path" (member_exn "args" leaf))));
  fresh ()

let test_jsonl_and_metrics_json_well_formed () =
  record_sample_run ();
  let metrics = Test_json.parse_exn (Obs.metrics_json ()) in
  let counters = Test_json.member_exn "counters" metrics in
  Alcotest.(check (float 0.)) "counter exported" 3.
    Test_json.(to_number (member_exn "test.export.counter" counters));
  with_temp_file (fun path ->
      Obs.write_jsonl path;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check bool) "several records" true (List.length lines > 3);
      List.iter (fun line -> ignore (Test_json.parse_exn line)) lines;
      let kinds =
        List.map
          (fun line ->
            Test_json.(to_string (member_exn "type" (parse_exn line))))
          lines
      in
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " record present") true (List.mem k kinds))
        [ "span"; "counter"; "histogram"; "gc"; "dropped_spans" ]);
  fresh ()

(* ----------------------------------------------------------- quantiles *)

(* The estimator's contract (obs.mli): the estimate falls inside the
   bucket that contains the true order statistic.  Checked against a
   sorted-sample oracle over random samples, for the SLO quantiles the
   stats endpoint serves. *)
let bucket_of bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let bucket_range bounds i =
  let n = Array.length bounds in
  ( (if i = 0 then Float.neg_infinity else bounds.(i - 1)),
    if i >= n then Float.infinity else bounds.(i) )

let quantile_qs = [ 0.5; 0.95; 0.99 ]

let test_prop_quantile_vs_sorted_oracle () =
  fresh ();
  let h = Obs.histogram_with_bounds "test.quantile.h" Obs.latency_ms_bounds in
  let arb = QCheck.(list_of_size Gen.(1 -- 200) (int_bound 1_000_000)) in
  qcheck ~count:200 "quantile estimate lands in the true order statistic's bucket" arb
    (fun raw ->
      Obs.reset ();
      let sample = List.map (fun i -> float_of_int i /. 100.) raw in
      List.iter (Obs.observe_always h) sample;
      let s = Obs.histogram_value h in
      let sorted = Array.of_list (List.sort compare sample) in
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let rank = Int.max 1 (Int.min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
          let true_stat = sorted.(rank - 1) in
          let lo, hi = bucket_range Obs.latency_ms_bounds (bucket_of Obs.latency_ms_bounds true_stat) in
          let e = Obs.quantile s q in
          e >= lo -. 1e-9 && e <= hi +. 1e-9)
        quantile_qs);
  fresh ()

(* Same multiset of observations scattered over different stripes in a
   different order must give identical quantiles: the stripe merge is
   invisible to the estimator. *)
let test_prop_quantile_stripe_permutation () =
  fresh ();
  let h1 = Obs.histogram_with_bounds "test.quantile.p1" Obs.latency_ms_bounds in
  let h2 = Obs.histogram_with_bounds "test.quantile.p2" Obs.latency_ms_bounds in
  let arb =
    QCheck.(list_of_size Gen.(1 -- 100) (pair (int_bound 1_000_000) (int_bound (Obs.Internal.stripes - 1))))
  in
  qcheck ~count:200 "quantiles are stripe-permutation invariant" arb (fun obs ->
      Obs.reset ();
      List.iter
        (fun (v, stripe) -> Obs.Internal.observe_on_stripe h1 ~stripe (float_of_int v /. 100.))
        obs;
      List.iter
        (fun (v, stripe) ->
          Obs.Internal.observe_on_stripe h2
            ~stripe:((stripe + 11) mod Obs.Internal.stripes)
            (float_of_int v /. 100.))
        (List.rev obs);
      let s1 = Obs.histogram_value h1 and s2 = Obs.histogram_value h2 in
      List.for_all (fun q -> Obs.quantile s1 q = Obs.quantile s2 q) quantile_qs);
  fresh ()

let test_histogram_bounds_mismatch_rejected () =
  fresh ();
  ignore (Obs.histogram_with_bounds "test.bounds.fixed" [| 1.; 2.; 4. |]);
  (* Same bounds: idempotent. *)
  ignore (Obs.histogram_with_bounds "test.bounds.fixed" [| 1.; 2.; 4. |]);
  Alcotest.check_raises "different bounds for the same name rejected"
    (Invalid_argument "Obs: histogram \"test.bounds.fixed\" registered with other bounds")
    (fun () -> ignore (Obs.histogram_with_bounds "test.bounds.fixed" [| 1.; 2. |]));
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument "Obs.histogram_with_bounds: bounds must be strictly increasing")
    (fun () -> ignore (Obs.histogram_with_bounds "test.bounds.bad" [| 1.; 1. |]))

(* -------------------------------------------------------- flight ring *)

(* Four domains hammer one ring.  Records are immutable pairs, so the
   only way a reader could see a torn record is a bug in the slot
   protocol; the test checks every surviving record is a value some
   domain actually pushed, each domain's records surface in push order,
   and the tail respects capacity exactly. *)
let test_ring_concurrent_writes () =
  let cap = 64 in
  let per_domain = 1000 in
  let ndomains = 4 in
  let ring = Obs.Ring.create ~capacity:cap in
  let domains =
    Array.init ndomains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Obs.Ring.push ring (d, i)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "every push counted" (ndomains * per_domain) (Obs.Ring.pushed ring);
  let snap = Obs.Ring.snapshot ring in
  List.iter
    (fun (d, i) ->
      if d < 0 || d >= ndomains || i < 0 || i >= per_domain then
        Alcotest.failf "torn or foreign record (%d, %d)" d i)
    snap;
  (* Per-domain push order survives the merge. *)
  for d = 0 to ndomains - 1 do
    let mine = List.filter_map (fun (d', i) -> if d' = d then Some i else None) snap in
    let rec ascending = function
      | a :: (b :: _ as rest) -> a < b && ascending rest
      | _ -> true
    in
    Alcotest.(check bool)
      (Printf.sprintf "domain %d records in push order" d)
      true (ascending mine)
  done;
  let tail = Obs.Ring.tail ring in
  Alcotest.(check int) "tail is exactly the capacity" cap (List.length tail);
  List.iter
    (fun r ->
      if not (List.mem r snap) then Alcotest.failf "tail record not in snapshot")
    tail;
  Obs.Ring.clear ring;
  Alcotest.(check (list (pair int int))) "clear empties the ring" [] (Obs.Ring.snapshot ring)

let test_ring_capacity_small () =
  let ring = Obs.Ring.create ~capacity:3 in
  for i = 1 to 10 do
    Obs.Ring.push ring i
  done;
  Alcotest.(check (list int)) "tail keeps the newest capacity records" [ 8; 9; 10 ]
    (Obs.Ring.tail ring)

(* ------------------------------------------------------------ capture *)

(* Per-request capture: spans flow to the caller's sink (across pool
   domains) without global span recording being on, and without leaking
   into the global buffers. *)
let test_capture_collects_subtree () =
  fresh ();
  let (), spans, dropped =
    Obs.with_capture (fun () ->
        Obs.span ~name:"outer" (fun () -> Obs.span ~name:"inner" (fun () -> ())))
  in
  Alcotest.(check int) "two spans captured" 2 (List.length spans);
  Alcotest.(check int) "nothing dropped" 0 dropped;
  let outer = find_span "outer" spans in
  let inner = find_span "inner" spans in
  Alcotest.(check int) "parentage preserved" outer.Obs.sid inner.Obs.sparent;
  Alcotest.(check bool) "start-time order" true
    (outer.Obs.sstart_ns <= inner.Obs.sstart_ns);
  Alcotest.(check int) "global buffers untouched" 0 (List.length (Obs.recorded_spans ()));
  Alcotest.(check bool) "spans off again after capture" false (Obs.spans_enabled ());
  fresh ()

let test_capture_crosses_pool_domains () =
  fresh ();
  let pool = Pool.create ~oversubscribe:true 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let (), spans, _ =
        Obs.with_capture (fun () ->
            Obs.span ~name:"submit" (fun () ->
                ignore
                  (Pool.map_array ~pool
                     (fun i -> Obs.span ~name:"worker" (fun () -> i))
                     (Array.init 8 Fun.id))))
      in
      let submit = find_span "submit" spans in
      let workers = List.filter (fun s -> s.Obs.sname = "worker") spans in
      Alcotest.(check int) "eight pooled spans captured" 8 (List.length workers);
      List.iter
        (fun w ->
          Alcotest.(check int) "pooled span parented under submit" submit.Obs.sid
            w.Obs.sparent)
        workers);
  fresh ()

let test_capture_cap_counts_drops () =
  fresh ();
  let (), spans, dropped =
    Obs.with_capture ~max_spans:2 (fun () ->
        for i = 1 to 5 do
          Obs.span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
        done)
  in
  Alcotest.(check int) "capped at max_spans" 2 (List.length spans);
  Alcotest.(check int) "overflow counted" 3 dropped;
  fresh ()

(* ------------------------------------------------------ only observes *)

let small_traffic () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:3.0 "west" in
  let bus1 = Topology.add_bus b ~service_rate:3.0 "east" in
  let p0 = Topology.add_processor b ~bus:bus0 "A" in
  let p1 = Topology.add_processor b ~bus:bus0 "B" in
  let p2 = Topology.add_processor b ~bus:bus1 "C" in
  let p3 = Topology.add_processor b ~bus:bus1 "D" in
  ignore (Topology.add_bridge b ~between:(bus0, bus1) "br");
  let topo = Topology.finalize b in
  Traffic.create topo
    [
      { Traffic.src = p0; dst = p2; rate = 1.3 };
      { Traffic.src = p1; dst = p0; rate = 0.8 };
      { Traffic.src = p2; dst = p3; rate = 1.1 };
      { Traffic.src = p3; dst = p1; rate = 0.7 };
    ]

let test_sizing_identical_with_tracing_on_or_off () =
  fresh ();
  let traffic = small_traffic () in
  let config = { (Sizing.default_config ~budget:16) with Sizing.max_states = 48 } in
  let off = Sizing.run config traffic in
  Obs.enable_spans ();
  Obs.enable_metrics ();
  let on = Sizing.run config traffic in
  Alcotest.(check bool) "allocations identical" true
    (off.Sizing.allocation = on.Sizing.allocation);
  Alcotest.(check bool) "predicted gain bitwise identical" true
    (Int64.bits_of_float off.Sizing.predicted_loss_rate
    = Int64.bits_of_float on.Sizing.predicted_loss_rate);
  Alcotest.(check bool) "the traced run recorded spans" true (Obs.recorded_spans () <> []);
  fresh ()

(* ---------------------------------------------------------------- run *)

let () =
  Alcotest.run "obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "span fast path allocates nothing" `Quick
            test_disabled_span_allocates_nothing;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "shard merge permutation (property)" `Quick
            test_prop_shard_merge_permutation;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and attrs" `Quick test_span_nesting_and_attrs;
          Alcotest.test_case "exceptions close the span" `Quick
            test_span_exception_still_recorded;
          Alcotest.test_case "span_with_id cross-reference" `Quick
            test_span_with_id_cross_reference;
          Alcotest.test_case "pool context propagation" `Quick test_pool_context_propagation;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "estimate in true statistic's bucket (property)" `Quick
            test_prop_quantile_vs_sorted_oracle;
          Alcotest.test_case "stripe permutation invariance (property)" `Quick
            test_prop_quantile_stripe_permutation;
          Alcotest.test_case "bounds validation" `Quick test_histogram_bounds_mismatch_rejected;
        ] );
      ( "ring",
        [
          Alcotest.test_case "4-domain concurrent writes" `Quick test_ring_concurrent_writes;
          Alcotest.test_case "small capacity tail" `Quick test_ring_capacity_small;
        ] );
      ( "capture",
        [
          Alcotest.test_case "collects the subtree off-globals" `Quick
            test_capture_collects_subtree;
          Alcotest.test_case "crosses pool domains" `Quick test_capture_crosses_pool_domains;
          Alcotest.test_case "cap counts drops" `Quick test_capture_cap_counts_drops;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_trace_well_formed;
          Alcotest.test_case "jsonl and metrics json" `Quick
            test_jsonl_and_metrics_json_well_formed;
        ] );
      ( "only-observes",
        [
          Alcotest.test_case "sizing identical with tracing on/off" `Quick
            test_sizing_identical_with_tracing_on_or_off;
        ] );
    ]
