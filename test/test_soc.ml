(* Tests for the SoC layer: topology building and routing, traffic
   derivation, bridge splitting, the bus CTMDP model, allocations, the
   monolithic quadratic formulation, and end-to-end sizing. *)

module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Splitting = Bufsize_soc.Splitting
module Bus_model = Bufsize_soc.Bus_model
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Sizing = Bufsize_soc.Sizing
module Monolithic = Bufsize_soc.Monolithic
module Fig1 = Bufsize_soc.Fig1
module Netproc = Bufsize_soc.Netproc
module Policy = Bufsize_mdp.Policy
module Birth_death = Bufsize_prob.Birth_death

let check_close tol = Alcotest.(check (float tol))

(* A linear three-bus chain used by several tests: P0 on bus0, P1 on bus1,
   P2 on bus2, bridges bus0-bus1-bus2. *)
let chain () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:3.0 "bus0" in
  let bus1 = Topology.add_bus b ~service_rate:4.0 "bus1" in
  let bus2 = Topology.add_bus b ~service_rate:3.5 "bus2" in
  let p0 = Topology.add_processor b ~bus:bus0 "P0" in
  let p1 = Topology.add_processor b ~bus:bus1 "P1" in
  let p2 = Topology.add_processor b ~bus:bus2 "P2" in
  let br01 = Topology.add_bridge b ~between:(bus0, bus1) "br01" in
  let br12 = Topology.add_bridge b ~between:(bus1, bus2) "br12" in
  (Topology.finalize b, (bus0, bus1, bus2), (p0, p1, p2), (br01, br12))

(* ------------------------------------------------------------- topology *)

let test_topology_accessors () =
  let topo, (bus0, bus1, _), (p0, _, _), _ = chain () in
  Alcotest.(check int) "buses" 3 (Topology.num_buses topo);
  Alcotest.(check int) "procs" 3 (Topology.num_processors topo);
  Alcotest.(check int) "bridges" 2 (Topology.num_bridges topo);
  Alcotest.(check string) "bus name" "bus0" (Topology.bus topo bus0).Topology.bus_name;
  Alcotest.(check int) "home bus" bus0 (Topology.processor topo p0).Topology.home_bus;
  Alcotest.(check int) "find" bus1 (Topology.find_bus topo "bus1");
  Alcotest.(check int) "find proc" p0 (Topology.find_processor topo "P0");
  Alcotest.(check int) "procs on bus0" 1 (List.length (Topology.processors_on_bus topo bus0));
  Alcotest.(check int) "bridges of bus1" 2 (List.length (Topology.bridges_of_bus topo bus1))

let test_topology_validation () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b "x" in
  Alcotest.check_raises "duplicate name" (Invalid_argument "Topology: duplicate name \"x\"")
    (fun () -> ignore (Topology.add_bus b "x"));
  Alcotest.check_raises "self bridge" (Invalid_argument "Topology.add_bridge: endpoints coincide")
    (fun () -> ignore (Topology.add_bridge b ~between:(bus0, bus0) "loop"))

let test_topology_routing () =
  let topo, (bus0, bus1, bus2), _, (br01, br12) = chain () in
  Alcotest.(check (option (list int))) "self route" (Some []) (Topology.route topo bus0 bus0);
  Alcotest.(check (option (list int))) "one hop" (Some [ br01 ]) (Topology.route topo bus0 bus1);
  Alcotest.(check (option (list int)))
    "two hops" (Some [ br01; br12 ]) (Topology.route topo bus0 bus2);
  Alcotest.(check (option (list int)))
    "bus path" (Some [ bus2; bus1; bus0 ]) (Topology.bus_path topo bus2 bus0);
  Alcotest.(check bool) "connected" true (Topology.is_connected topo)

let test_topology_disconnected () =
  (* Finalizing a disconnected bus graph is rejected with a message naming
     the components. *)
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b "a" in
  let _ = Topology.add_bus b "b" in
  let _ = Topology.add_processor b ~bus:bus0 "p" in
  Alcotest.check_raises "finalize rejects"
    (Invalid_argument
       "Topology.finalize: disconnected bus graph: 2 components: [a]; [b] (add bridges to \
        connect them)")
    (fun () -> ignore (Topology.finalize b))

let test_topology_mesh () =
  let b = Topology.builder () in
  let cells = Topology.mesh b ~service_rate:2.0 ~rows:2 ~cols:3 "m" in
  let topo = Topology.finalize b in
  Alcotest.(check int) "buses" 6 (Topology.num_buses topo);
  (* 2x3 mesh: 2*(3-1) horizontal + (2-1)*3 vertical links. *)
  Alcotest.(check int) "bridges" 7 (Topology.num_bridges topo);
  Alcotest.(check string) "derived cell name" "m_r1c2"
    (Topology.bus topo cells.(1).(2)).Topology.bus_name;
  check_close 1e-12 "cell rate" 2.0 (Topology.bus topo cells.(0).(1)).Topology.service_rate;
  (match Topology.grid_cell topo cells.(1).(2) with
  | Some (0, 1, 2) -> ()
  | _ -> Alcotest.fail "grid_cell lookup");
  (* XY: column first, then row. *)
  match Topology.route topo cells.(0).(0) cells.(1).(2) with
  | Some [ h1; h2; v1 ] ->
      let name id = (Topology.bridge topo id).Topology.bridge_name in
      Alcotest.(check string) "first hop east" "m_h_r0c0" (name h1);
      Alcotest.(check string) "second hop east" "m_h_r0c1" (name h2);
      Alcotest.(check string) "then south" "m_v_r0c2" (name v1)
  | Some l -> Alcotest.failf "expected 3 hops, got %d" (List.length l)
  | None -> Alcotest.fail "unroutable"

let test_topology_torus_wrap () =
  let b = Topology.builder () in
  let cells = Topology.torus b ~rows:3 ~cols:4 "t" in
  let topo = Topology.finalize b in
  (* Every dimension longer than 2 wraps: 3*4 horizontal + 3*4 vertical. *)
  Alcotest.(check int) "bridges" 24 (Topology.num_bridges topo);
  let name id = (Topology.bridge topo id).Topology.bridge_name in
  (* (0,0) -> (0,3): the wrap link is shorter than walking east. *)
  (match Topology.route topo cells.(0).(0) cells.(0).(3) with
  | Some [ br ] -> Alcotest.(check string) "wrap link" "t_h_r0c3" (name br)
  | Some l -> Alcotest.failf "expected 1 hop, got %d" (List.length l)
  | None -> Alcotest.fail "unroutable");
  (* (0,0) -> (0,2): two hops either way; ties go towards increasing
     index, so the route starts east through c0's link. *)
  match Topology.route topo cells.(0).(0) cells.(0).(2) with
  | Some [ b1; _ ] -> Alcotest.(check string) "tie breaks east" "t_h_r0c0" (name b1)
  | Some l -> Alcotest.failf "expected 2 hops, got %d" (List.length l)
  | None -> Alcotest.fail "unroutable"

let test_topology_torus_2x2_no_wrap () =
  (* Wraps on a dimension of length 2 would duplicate the mesh edges. *)
  let b = Topology.builder () in
  let _ = Topology.torus b ~rows:2 ~cols:2 "t" in
  let topo = Topology.finalize b in
  Alcotest.(check int) "same links as the 2x2 mesh" 4 (Topology.num_bridges topo)

let test_topology_shared_buffer () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b "x" in
  let bus1 = Topology.add_bus b "y" in
  let _ = Topology.add_bridge b ~between:(bus0, bus1) "br" in
  Topology.mark_shared b bus1;
  Topology.mark_shared b bus1;
  let topo = Topology.finalize b in
  Alcotest.(check bool) "y shared" true (Topology.shared_buffer topo bus1);
  Alcotest.(check bool) "x static" false (Topology.shared_buffer topo bus0);
  Alcotest.(check (list int)) "shared list" [ bus1 ] (Topology.shared_buses topo)

let test_topology_shortest_path () =
  (* A triangle plus a long way around: BFS must take the direct bridge. *)
  let b = Topology.builder () in
  let x = Topology.add_bus b "x" in
  let y = Topology.add_bus b "y" in
  let z = Topology.add_bus b "z" in
  let direct = Topology.add_bridge b ~between:(x, z) "direct" in
  let _xy = Topology.add_bridge b ~between:(x, y) "xy" in
  let _yz = Topology.add_bridge b ~between:(y, z) "yz" in
  let topo = Topology.finalize b in
  Alcotest.(check (option (list int))) "direct" (Some [ direct ]) (Topology.route topo x z)

(* -------------------------------------------------------------- traffic *)

let test_traffic_local_flow () =
  let topo, (bus0, _, _), (p0, _, _), _ = chain () in
  let b = Topology.builder () in
  ignore b;
  (* A second processor on bus0 for a local flow. *)
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p0 + 1; rate = 1.0 } ] in
  (* p0+1 = P1 on bus1: crosses one bridge. *)
  let hops = Traffic.hops traffic { Traffic.src = p0; dst = p0 + 1; rate = 1.0 } in
  Alcotest.(check int) "two hops" 2 (List.length hops);
  (match hops with
  | (b0, Traffic.Proc_client p) :: (b1, Traffic.Bridge_client _) :: [] ->
      Alcotest.(check int) "first hop bus" bus0 b0;
      Alcotest.(check int) "first hop client" p0 p;
      Alcotest.(check int) "second hop bus" (bus0 + 1) b1
  | _ -> Alcotest.fail "unexpected hop structure")

let test_traffic_aggregation () =
  let topo, (bus0, bus1, bus2), (p0, p1, p2), _ = chain () in
  ignore bus0;
  let traffic =
    Traffic.create topo
      [
        { Traffic.src = p0; dst = p2; rate = 0.5 };
        { Traffic.src = p1; dst = p2; rate = 0.7 };
        { Traffic.src = p0; dst = p1; rate = 0.3 };
      ]
  in
  check_close 1e-12 "total" 1.5 (Traffic.total_offered traffic);
  check_close 1e-12 "offered by p0" 0.8 (Traffic.offered_by_proc traffic p0);
  (* bus1 clients: P1 (0.7), bridge from bus0 (0.5 + 0.3 = 0.8). *)
  let clients = Traffic.clients_of_bus traffic bus1 in
  Alcotest.(check int) "two clients on bus1" 2 (List.length clients);
  let bridge_rate =
    List.fold_left
      (fun acc (c, r) ->
        match c with Traffic.Bridge_client _ -> acc +. r | Traffic.Proc_client _ -> acc)
      0. clients
  in
  check_close 1e-12 "bridge load aggregates" 0.8 bridge_rate;
  (* bus2: bridge from bus1 carries 0.5 + 0.7. *)
  let clients2 = Traffic.clients_of_bus traffic bus2 in
  let bridge_rate2 =
    List.fold_left
      (fun acc (c, r) ->
        match c with Traffic.Bridge_client _ -> acc +. r | Traffic.Proc_client _ -> acc)
      0. clients2
  in
  check_close 1e-12 "transit load" 1.2 bridge_rate2

let test_traffic_validation () =
  let topo, _, (p0, _, _), _ = chain () in
  (match Traffic.create topo [ { Traffic.src = p0; dst = p0; rate = 1. } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self flow accepted");
  match Traffic.create topo [ { Traffic.src = p0; dst = p0 + 1; rate = 0. } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero rate accepted"

let test_traffic_utilization () =
  let topo, (bus0, _, _), (p0, p1, _), _ = chain () in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 1.5 } ] in
  (* bus0 rho = 1.5 / 3.0. *)
  check_close 1e-12 "rho" 0.5 (Traffic.bus_utilization traffic bus0)

(* ------------------------------------------------------------ splitting *)

let test_split_fig1 () =
  let topo, traffic = Fig1.create () in
  let split = Splitting.split traffic in
  (* The paper's Figure 2: the architecture splits into 4 subsystems. *)
  Alcotest.(check int) "four subsystems" 4 (Array.length split.Splitting.subsystems);
  Alcotest.(check bool) "couplings present" true (split.Splitting.coupling_points > 0);
  Alcotest.(check bool) "not linear monolithically" false
    (Splitting.is_linear_without_split traffic);
  (* Every inserted buffer corresponds to a bridge client somewhere. *)
  List.iter
    (fun (br, into_bus) ->
      let clients = Traffic.clients_of_bus traffic into_bus in
      let present =
        List.exists
          (fun (c, _) ->
            match c with
            | Traffic.Bridge_client { bridge; into_bus = ib } -> bridge = br && ib = into_bus
            | Traffic.Proc_client _ -> false)
          clients
      in
      Alcotest.(check bool) "inserted buffer is a client" true present)
    split.Splitting.inserted_buffers;
  ignore topo

let test_split_local_only () =
  (* Single bus: no bridges crossed, split is trivial and linear. *)
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b "only" in
  let p0 = Topology.add_processor b ~bus:bus0 "A" in
  let p1 = Topology.add_processor b ~bus:bus0 "B" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 1. } ] in
  let split = Splitting.split traffic in
  Alcotest.(check int) "one subsystem" 1 (Array.length split.Splitting.subsystems);
  Alcotest.(check int) "no couplings" 0 split.Splitting.coupling_points;
  Alcotest.(check bool) "linear already" true (Splitting.is_linear_without_split traffic)

let test_split_netproc_covers_processors () =
  let _, traffic = Netproc.create () in
  let split = Splitting.split traffic in
  let covered =
    Array.to_list split.Splitting.subsystems
    |> List.concat_map (fun s ->
           List.filter_map
             (fun (c, _) ->
               match c with Traffic.Proc_client p -> Some p | Traffic.Bridge_client _ -> None)
             s.Splitting.clients)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all 17 processors appear" 17 (List.length covered)

(* ------------------------------------------------------------ bus model *)

let test_choose_levels_respects_cap () =
  let clients = [ (Traffic.Proc_client 0, 2.0); (Traffic.Proc_client 1, 1.0) ] in
  let levels = Bus_model.choose_levels ~max_states:36 clients in
  let states = Array.fold_left (fun acc l -> acc * (l + 1)) 1 levels in
  Alcotest.(check bool) "within cap" true (states <= 36);
  Alcotest.(check bool) "heavy client finer" true (levels.(0) >= levels.(1))

let test_choose_levels_zero_rate () =
  let levels =
    Bus_model.choose_levels ~max_states:16
      [ (Traffic.Proc_client 0, 1.0); (Traffic.Proc_client 1, 0.) ]
  in
  Alcotest.(check int) "unloaded client gets no levels" 0 levels.(1)

let test_bus_model_single_client_is_mm1k () =
  (* One client with L levels on a bus = M/M/1/L; the model's optimal gain
     must match the closed form. *)
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:3.0 "solo" in
  let p0 = Topology.add_processor b ~bus:bus0 "A" in
  let p1 = Topology.add_processor b ~bus:bus0 "B" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 2.0 } ] in
  let split = Splitting.split traffic in
  let model = Bus_model.build ~levels:[| 4; 0 |] split.Splitting.subsystems.(0) in
  Alcotest.(check int) "states" 5 (Bus_model.num_states model);
  match Bufsize_mdp.Lp_formulation.solve (Bus_model.ctmdp model) with
  | Bufsize_mdp.Lp_formulation.Optimal s ->
      check_close 1e-7 "gain = MM1K loss"
        (Birth_death.Mm1k.loss_rate ~lambda:2.0 ~mu:3.0 ~k:4)
        s.Bufsize_mdp.Lp_formulation.gain
  | _ -> Alcotest.fail "LP failed"

let test_bus_model_encode_decode () =
  let topo, _, (p0, p1, p2), _ = chain () in
  ignore topo;
  let _, traffic =
    let topo, (b0, b1, _), _, _ = (fun () -> chain ()) () in
    ignore b0;
    ignore b1;
    ( topo,
      Traffic.create topo
        [
          { Traffic.src = p0; dst = p1; rate = 1.0 };
          { Traffic.src = p1; dst = p2; rate = 0.5 };
        ] )
  in
  let split = Splitting.split traffic in
  let sub = split.Splitting.subsystems.(1) in
  let model = Bus_model.build ~max_states:64 sub in
  for s = 0 to Bus_model.num_states model - 1 do
    Alcotest.(check int) "roundtrip" s (Bus_model.encode model (Bus_model.decode model s))
  done

let test_bus_model_occupancy_distribution () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:3.0 "solo" in
  let p0 = Topology.add_processor b ~bus:bus0 "A" in
  let p1 = Topology.add_processor b ~bus:bus0 "B" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = 2.0 } ] in
  let split = Splitting.split traffic in
  let model = Bus_model.build ~levels:[| 4; 0 |] split.Splitting.subsystems.(0) in
  let policy = Policy.deterministic (Bus_model.ctmdp model) (Array.make 5 0) in
  let marginals = Bus_model.occupancy_distribution model policy in
  Alcotest.(check int) "one loaded client" 1 (Array.length marginals);
  let expected = Birth_death.stationary (Birth_death.mm1k ~lambda:2.0 ~mu:3.0 ~k:4) in
  Array.iteri
    (fun l p -> check_close 1e-9 (Printf.sprintf "marginal %d" l) expected.(l) p)
    marginals.(0)

(* Shared-pool (DAMQ) model: a two-client bus with a shared pool of the
   same total capacity must never lose more than the static partition —
   the partition's admission rule is one of the pool's actions. *)
let shared_two_client_arch () =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:3.0 "bus" in
  let p0 = Topology.add_processor b ~bus:bus0 "A" in
  let p1 = Topology.add_processor b ~bus:bus0 "B" in
  let p2 = Topology.add_processor b ~bus:bus0 "C" in
  Topology.mark_shared b bus0;
  let topo = Topology.finalize b in
  let traffic =
    Traffic.create topo
      [
        { Traffic.src = p0; dst = p2; rate = 1.4 };
        { Traffic.src = p1; dst = p2; rate = 0.6 };
      ]
  in
  (Splitting.split traffic).Splitting.subsystems.(0)

let test_shared_model_shape () =
  let sub = shared_two_client_arch () in
  let shared = Bus_model.Shared.build ~capacity:3 sub in
  Alcotest.(check int) "capacity" 3 (Bus_model.Shared.capacity shared);
  (* Occupancy vectors (k0, k1) with k0 + k1 <= 3 over two loaded
     clients: C(3 + 2, 2) = 10 states. *)
  Alcotest.(check int) "states" 10 (Bus_model.Shared.num_states shared);
  Alcotest.(check int) "loaded clients" 2 (Array.length (Bus_model.Shared.loaded_clients shared));
  for s = 0 to Bus_model.Shared.num_states shared - 1 do
    let k = Bus_model.Shared.state shared s in
    Alcotest.(check bool) "within pool" true (k.(0) + k.(1) <= 3)
  done

let test_shared_never_worse_than_static () =
  let sub = shared_two_client_arch () in
  let levels = Bus_model.choose_levels ~max_states:24 sub.Splitting.clients in
  let static_model = Bus_model.build ~levels sub in
  let capacity = Bus_model.total_levels static_model in
  let shared = Bus_model.Shared.build ~static_levels:levels ~capacity sub in
  let solve ctmdp =
    match Bufsize_mdp.Lp_formulation.solve ctmdp with
    | Bufsize_mdp.Lp_formulation.Optimal s -> s.Bufsize_mdp.Lp_formulation.gain
    | _ -> Alcotest.fail "LP failed"
  in
  let static_loss = solve (Bus_model.ctmdp static_model) in
  let damq_loss = solve (Bus_model.Shared.ctmdp shared) in
  Alcotest.(check bool) "damq <= static" true (damq_loss <= static_loss +. 1e-9);
  Alcotest.(check bool) "nonnegative" true (damq_loss >= -1e-9)

let test_shared_capacity_guard () =
  let sub = shared_two_client_arch () in
  (match Bus_model.Shared.build ~capacity:0 sub with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  match Bus_model.Shared.build ~max_states:5 ~capacity:3 sub with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "state guard ignored"

(* ----------------------------------------------------------- allocation *)

let test_alloc_uniform () =
  let _, traffic = Fig1.create () in
  let a = Buffer_alloc.uniform traffic ~budget:20 in
  Alcotest.(check int) "total" 20 (Buffer_alloc.total a);
  Array.iter
    (fun e -> Alcotest.(check bool) "roughly even" true (e.Buffer_alloc.words >= 1))
    a.Buffer_alloc.entries

let test_alloc_traffic_proportional () =
  let _, traffic = Fig1.create () in
  let a = Buffer_alloc.traffic_proportional traffic ~budget:50 in
  Alcotest.(check int) "total" 50 (Buffer_alloc.total a);
  (* The heaviest client should get at least as much as the lightest. *)
  let words = Array.map (fun e -> e.Buffer_alloc.words) a.Buffer_alloc.entries in
  let mn = Array.fold_left Int.min max_int words in
  let mx = Array.fold_left Int.max 0 words in
  Alcotest.(check bool) "spread exists" true (mx >= mn)

let test_alloc_lookup_missing () =
  let _, traffic = Fig1.create () in
  let a = Buffer_alloc.uniform traffic ~budget:20 in
  Alcotest.(check int) "missing client" 0 (Buffer_alloc.lookup a 0 (Traffic.Proc_client 999))

let test_alloc_scale_budget () =
  let _, traffic = Fig1.create () in
  let a = Buffer_alloc.traffic_proportional traffic ~budget:40 in
  let b = Buffer_alloc.scale_budget a ~budget:80 in
  Alcotest.(check int) "rescaled" 80 (Buffer_alloc.total b);
  Alcotest.(check int) "same buffers" (Buffer_alloc.num_buffers a) (Buffer_alloc.num_buffers b)

let test_alloc_duplicate_rejected () =
  match
    Buffer_alloc.make
      [ (0, Traffic.Proc_client 0, 1); (0, Traffic.Proc_client 0, 2) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

(* ----------------------------------------------------------- monolithic *)

let default_spec =
  {
    Monolithic.kx = 3;
    ky = 3;
    lambda_x = 2.0;
    lambda_y = 1.5;
    cross_fraction = 0.5;
    mu_x = 2.5;
    mu_y = 2.2;
  }

(* Strong bidirectional coupling: the regime where the quadratic closure
   has coexisting light-traffic and congestion-collapse roots. *)
let coupled_spec =
  {
    Monolithic.kx = 8;
    ky = 8;
    lambda_x = 3.5;
    lambda_y = 3.0;
    cross_fraction = 0.95;
    mu_x = 2.5;
    mu_y = 2.0;
  }

let test_monolithic_residual_dimension () =
  let v = Array.make (Monolithic.dim default_spec) 0.2 in
  let r = Monolithic.residual default_spec v in
  Alcotest.(check int) "square system" (Monolithic.dim default_spec) (Array.length r);
  Alcotest.(check bool) "has quadratic terms" true
    (Monolithic.quadratic_term_count default_spec > 0)

let test_monolithic_newton_struggles () =
  (* The paper's observation, qualitatively: generic starts do not reliably
     solve the quadratic system.  We assert that at least one generic start
     fails to produce a valid solution under strong coupling. *)
  let report = Monolithic.attempt ~starts:25 coupled_spec in
  Alcotest.(check int) "all starts accounted" 25
    (report.Monolithic.converged_valid + report.Monolithic.converged_invalid
    + report.Monolithic.failed);
  Alcotest.(check bool) "not universally solvable" true
    (report.Monolithic.converged_valid < report.Monolithic.starts);
  (* The modern damped iteration is not a cure either. *)
  let damped = Monolithic.attempt ~starts:25 ~damped:true coupled_spec in
  Alcotest.(check bool) "damped also misses starts" true
    (damped.Monolithic.converged_valid < damped.Monolithic.starts)

let test_monolithic_split_always_works () =
  let s = Monolithic.solve_split default_spec in
  let sum v = Array.fold_left ( +. ) 0. v in
  check_close 1e-9 "x normalized" 1. (sum s.Monolithic.x_dist);
  check_close 1e-9 "y normalized" 1. (sum s.Monolithic.y_dist);
  check_close 1e-9 "bridge normalized" 1. (sum s.Monolithic.bridge_dist);
  Alcotest.(check bool) "losses nonnegative" true
    (s.Monolithic.x_loss >= 0. && s.Monolithic.y_loss >= 0. && s.Monolithic.bridge_loss >= 0.)

let test_monolithic_split_matches_mm1k_on_x () =
  (* Bus X after splitting is exactly M/M/1/Kx. *)
  let s = Monolithic.solve_split default_spec in
  let expected =
    Birth_death.stationary
      (Birth_death.mm1k ~lambda:default_spec.Monolithic.lambda_x
         ~mu:default_spec.Monolithic.mu_x ~k:default_spec.Monolithic.kx)
  in
  Array.iteri
    (fun i p -> check_close 1e-9 (Printf.sprintf "x[%d]" i) expected.(i) p)
    s.Monolithic.x_dist

(* ------------------------------------------------------------------ dot *)

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_topology () =
  let topo, _ = Fig1.create () in
  let s = Bufsize_soc.Dot.topology topo in
  Alcotest.(check bool) "digraph" true (contains "digraph" s);
  Alcotest.(check bool) "bus a present" true (contains "\"a\\nmu=" s);
  Alcotest.(check bool) "bridge b1 present" true (contains "b1" s);
  Alcotest.(check bool) "processor present" true (contains "P1" s)

let test_dot_with_allocation () =
  let topo, traffic = Fig1.create () in
  let alloc = Buffer_alloc.uniform traffic ~budget:20 in
  let s = Bufsize_soc.Dot.with_allocation topo traffic alloc in
  Alcotest.(check bool) "words annotated" true (contains "words" s);
  Alcotest.(check bool) "bridge buffer node" true (contains "house" s);
  Alcotest.(check bool) "utilization annotated" true (contains "rho=" s)

let test_dot_with_routes () =
  let b = Topology.builder () in
  let cells = Topology.mesh b ~rows:2 ~cols:2 "m" in
  let src = Topology.add_processor b ~bus:cells.(0).(0) "src" in
  let dst = Topology.add_processor b ~bus:cells.(1).(1) "dst" in
  Topology.mark_shared b cells.(1).(1);
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src; dst; rate = 0.5 } ] in
  let s = Bufsize_soc.Dot.with_routes traffic in
  (* The XY route src -> dst visits r0c0 (home), r0c1, r1c1: a 4-edge
     dashed chain, rate on the first edge, shared fill on the marked bus. *)
  Alcotest.(check bool) "dashed overlay" true (contains "style=dashed" s);
  Alcotest.(check bool) "rate labelled" true (contains "label=\"0.5/s\"" s);
  Alcotest.(check bool) "layout preserved" true (contains "constraint=false" s);
  Alcotest.(check bool) "shared pool annotated" true (contains "shared pool" s);
  Alcotest.(check bool) "shared fill" true (contains "lightsalmon" s)

let test_route_length_on_random_chains () =
  (* Property: on a line of n buses, the route from bus 0 to bus k crosses
     exactly k bridges and the bus path visits k+1 buses. *)
  let gen = QCheck.make QCheck.Gen.(int_range 2 12) in
  let prop n =
    let b = Topology.builder () in
    let buses = Array.init n (fun i -> Topology.add_bus b (Printf.sprintf "bus%d" i)) in
    for i = 0 to n - 2 do
      ignore (Topology.add_bridge b ~between:(buses.(i), buses.(i + 1)) (Printf.sprintf "br%d" i))
    done;
    let topo = Topology.finalize b in
    let ok = ref true in
    for k = 0 to n - 1 do
      (match Topology.route topo buses.(0) buses.(k) with
      | Some path -> if List.length path <> k then ok := false
      | None -> ok := false);
      match Topology.bus_path topo buses.(0) buses.(k) with
      | Some path -> if List.length path <> k + 1 then ok := false
      | None -> ok := false
    done;
    !ok
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:50 ~name:"chain routing" gen prop)

let test_traffic_flow_conservation_property () =
  (* Property: total client arrival rate over all buses equals the sum over
     flows of rate x hop count (each hop loads exactly one client). *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n_flows = int_range 1 8 in
        let* specs =
          list_size (return n_flows)
            (let* src = int_range 0 2 in
             let* dst = int_range 0 2 in
             let* rate = float_range 0.1 2. in
             return (src, dst, rate))
        in
        return specs)
  in
  let prop specs =
    let topo, _, (p0, p1, p2), _ = chain () in
    let procs = [| p0; p1; p2 |] in
    let flows =
      List.filter_map
        (fun (s, d, rate) ->
          if s = d then None else Some { Traffic.src = procs.(s); dst = procs.(d); rate })
        specs
    in
    flows = []
    ||
    let traffic = Traffic.create topo flows in
    let total_clients =
      List.fold_left (fun acc (_, _, r) -> acc +. r) 0. (Traffic.all_clients traffic)
    in
    let total_hops =
      List.fold_left
        (fun acc f -> acc +. (f.Traffic.rate *. float_of_int (List.length (Traffic.hops traffic f))))
        0. flows
    in
    Float.abs (total_clients -. total_hops) < 1e-9
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:100 ~name:"flow conservation" gen prop)

let test_netproc_stable () =
  (* The calibrated testbench must be stable (rho < 1 on every bus) so
     that losses come from finite buffers, not raw overload. *)
  let topo, traffic = Netproc.create () in
  Array.iter
    (fun (bus : Topology.bus) ->
      let rho = Traffic.bus_utilization traffic bus.Topology.bus_id in
      Alcotest.(check bool)
        (Printf.sprintf "bus %s rho=%.3f < 1" bus.Topology.bus_name rho)
        true (rho < 1.))
    (Topology.buses topo)

let test_fig1_rate_scale_validation () =
  Alcotest.check_raises "bad scale" (Invalid_argument "Fig1.create: rate_scale must be positive")
    (fun () -> ignore (Fig1.create ~rate_scale:0. ()))

let test_amba_shape () =
  let topo, traffic = Bufsize_soc.Amba.create () in
  Alcotest.(check int) "two buses" 2 (Topology.num_buses topo);
  Alcotest.(check int) "eight components" 8 (Topology.num_processors topo);
  Alcotest.(check int) "one bridge" 1 (Topology.num_bridges topo);
  (* Both buses loaded but stable; the bridge is the dominant APB client. *)
  let apb = Topology.find_bus topo "APB" in
  let rho = Traffic.bus_utilization traffic apb in
  Alcotest.(check bool) "APB busy but stable" true (rho > 0.5 && rho < 1.);
  let bridge_rate =
    List.fold_left
      (fun acc (c, r) ->
        match c with Traffic.Bridge_client _ -> Float.max acc r | Traffic.Proc_client _ -> acc)
      0.
      (Traffic.clients_of_bus traffic apb)
  in
  List.iter
    (fun (c, r) ->
      match c with
      | Traffic.Proc_client _ ->
          Alcotest.(check bool) "bridge dominates peripherals" true (bridge_rate >= r)
      | Traffic.Bridge_client _ -> ())
    (Traffic.clients_of_bus traffic apb)

let test_amba_sizing_favours_bridge () =
  let _, traffic = Bufsize_soc.Amba.create () in
  let r =
    Sizing.run { (Sizing.default_config ~budget:24) with Sizing.max_states = 96 } traffic
  in
  let topo = Traffic.topology traffic in
  let apb = Topology.find_bus topo "APB" in
  let bridge_words =
    Array.fold_left
      (fun acc (e : Buffer_alloc.entry) ->
        match e.Buffer_alloc.client with
        | Traffic.Bridge_client { into_bus; _ } when into_bus = apb ->
            Int.max acc e.Buffer_alloc.words
        | Traffic.Bridge_client _ | Traffic.Proc_client _ -> acc)
      0 r.Sizing.allocation.Buffer_alloc.entries
  in
  (* The AHB->APB bridge buffer gets more than the uniform share. *)
  Alcotest.(check bool) "bridge above uniform share" true (bridge_words > 24 / 10)

(* ---------------------------------------------------------- spec parser *)

module Spec_parser = Bufsize_soc.Spec_parser

let sample_spec =
  {|
# a two-bus architecture
bus core rate 20.0
bus io
proc cpu on core
proc dma on io
bridge br0 core io
flow cpu -> dma rate 1.5
flow dma -> cpu rate 0.5
|}

let test_spec_parse_ok () =
  match Spec_parser.parse sample_spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (topo, traffic) ->
      Alcotest.(check int) "buses" 2 (Topology.num_buses topo);
      Alcotest.(check int) "procs" 2 (Topology.num_processors topo);
      Alcotest.(check int) "bridges" 1 (Topology.num_bridges topo);
      Alcotest.(check int) "flows" 2 (Array.length (Traffic.flows traffic));
      check_close 1e-9 "default bus rate" 1.0
        (Topology.bus topo (Topology.find_bus topo "io")).Topology.service_rate;
      check_close 1e-9 "explicit bus rate" 20.0
        (Topology.bus topo (Topology.find_bus topo "core")).Topology.service_rate

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let expect_error fragment text =
  match Spec_parser.parse text with
  | Ok _ -> Alcotest.failf "expected error mentioning %S" fragment
  | Error msg ->
      Alcotest.(check bool) (Printf.sprintf "error %S mentions %S" msg fragment) true
        (contains fragment msg)

let test_spec_parse_errors () =
  expect_error "unknown keyword" "bogus line here";
  expect_error "unknown bus" "proc p on nowhere\nflow p -> p rate 1.";
  expect_error "malformed flow" "bus a\nproc p on a\nproc q on a\nflow p q rate 1.";
  expect_error "malformed bus rate" "bus a rate fast";
  expect_error "must be positive" "bus a rate -2";
  expect_error "duplicate bus" "bus a\nbus a";
  expect_error "no flows" "bus a\nproc p on a";
  expect_error "line 3" "bus a\nproc p on a\nproc p on a"

let test_spec_roundtrip () =
  let topo, traffic = Fig1.create () in
  let text = Spec_parser.to_string topo traffic in
  match Spec_parser.parse text with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok (topo2, traffic2) ->
      Alcotest.(check int) "buses" (Topology.num_buses topo) (Topology.num_buses topo2);
      Alcotest.(check int) "procs" (Topology.num_processors topo)
        (Topology.num_processors topo2);
      Alcotest.(check int) "bridges" (Topology.num_bridges topo) (Topology.num_bridges topo2);
      check_close 1e-9 "offered traffic" (Traffic.total_offered traffic)
        (Traffic.total_offered traffic2)

let test_spec_parse_file_missing () =
  match Spec_parser.parse_file "/nonexistent/arch.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected I/O error"

(* Error paths through parse_file: the same diagnostics (with line
   numbers) must surface when the text arrives from disk. *)
let expect_file_error fragment text =
  let path = Filename.temp_file "bufsize_spec" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      match Spec_parser.parse_file path with
      | Ok _ -> Alcotest.failf "expected file error mentioning %S" fragment
      | Error msg ->
          Alcotest.(check bool) (Printf.sprintf "error %S mentions %S" msg fragment) true
            (contains fragment msg))

let test_spec_parse_file_errors () =
  expect_file_error "no flows" "";
  expect_file_error "unknown bus" "proc p on nowhere\nflow p -> p rate 1.";
  expect_file_error "duplicate processor" "bus a\nproc p on a\nproc p on a";
  expect_file_error "malformed flow rate" "bus a\nproc p on a\nproc q on a\nflow p -> q rate fast"

let grid_spec =
  {|
mesh noc rows 2 cols 2 rate 2.0
shared_buffer noc_r0c0
proc a on noc_r0c0
proc b on noc_r1c1
flow a -> b rate 0.3
flow b -> a rate 0.2
|}

let test_spec_parse_grid () =
  match Spec_parser.parse grid_spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (topo, traffic) ->
      Alcotest.(check int) "buses" 4 (Topology.num_buses topo);
      Alcotest.(check int) "bridges" 4 (Topology.num_bridges topo);
      Alcotest.(check int) "grids" 1 (Array.length (Topology.grids topo));
      Alcotest.(check bool) "r0c0 shared" true
        (Topology.shared_buffer topo (Topology.find_bus topo "noc_r0c0"));
      check_close 1e-9 "cell rate" 2.0
        (Topology.bus topo (Topology.find_bus topo "noc_r1c1")).Topology.service_rate;
      Alcotest.(check int) "flows" 2 (Array.length (Traffic.flows traffic));
      (* The canonical print is a parse fixed point: parse o to_string = id. *)
      let text = Spec_parser.to_string topo traffic in
      (match Spec_parser.parse text with
      | Error e -> Alcotest.failf "round-trip parse: %s" e
      | Ok (topo2, traffic2) ->
          Alcotest.(check string) "fixed point" text (Spec_parser.to_string topo2 traffic2))

let test_spec_grid_errors () =
  (* Malformed grid stanzas report their line numbers. *)
  expect_error "line 1" "mesh m rows 0 cols 2";
  expect_error "mesh rows must be positive" "mesh m rows 0 cols 2\nbus a";
  expect_error "malformed torus cols \"x\"" "bus a\ntorus t rows 2 cols x";
  expect_error "line 2" "bus a\ntorus t rows 2 cols x";
  expect_error "malformed mesh statement" "mesh m rows 2";
  expect_error "malformed shared_buffer statement" "shared_buffer a b";
  expect_error "line 2: duplicate grid \"m\"" "mesh m rows 2 cols 2\nmesh m rows 2 cols 2";
  expect_error "line 1: unknown bus \"nowhere\"" "shared_buffer nowhere";
  expect_error "line 1: mesh rate must be positive" "mesh m rows 2 cols 2 rate -1"

(* Adversarial-input caps: each resource bound fires as a line-numbered
   error, cheaply, instead of an allocation storm. *)
let test_spec_parser_caps () =
  expect_error "exceeds the cap" (String.make ((1 lsl 20) + 1) 'a');
  expect_error "line 2: 5004 bytes exceeds the cap of 4096"
    ("bus a\nbus " ^ String.make 5000 'b');
  expect_error "line 1: token of 300 bytes exceeds the cap of 256"
    ("bus " ^ String.make 300 'b');
  expect_error "line 1: mesh declares 10000 cells, more than the cap of 4096"
    "mesh m rows 100 cols 100";
  expect_error "line 1: torus declares 8192 cells" "torus t rows 2 cols 4096";
  let flood =
    String.concat "\n" (List.init 4200 (fun i -> Printf.sprintf "bus b%d" i))
  in
  expect_error "more than 4096 statements" flood;
  (* At the caps, parsing still works. *)
  match Spec_parser.parse ("bus a\nproc p on a\nproc q on a\nflow p -> q rate 1.\n# "
                           ^ String.make 4000 'x') with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cap-sized comment should parse: %s" e

(* Fuzz: the parser must classify, never crash — on arbitrary bytes and
   on valid specs truncated mid-text (a daemon client dying mid-send). *)
let test_spec_parser_fuzz () =
  let arb_bytes =
    QCheck.make ~print:String.escaped
      QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 400))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"random bytes never crash" arb_bytes (fun text ->
         match Spec_parser.parse text with Ok _ | Error _ -> true));
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"truncated valid specs never crash"
       Bufsize_verify_qcheck.Verify_arbitrary.spec_text (fun (seed, text) ->
         let cut = abs seed mod (String.length text + 1) in
         match Spec_parser.parse (String.sub text 0 cut) with Ok _ | Error _ -> true))

(* Round-trip property over random generated architectures: to_string
   output re-parses to an architecture with identical shape and load. *)
let test_spec_roundtrip_property () =
  let prop (_seed, text) =
    match Spec_parser.parse text with
    | Error e -> QCheck.Test.fail_reportf "generated spec does not parse: %s" e
    | Ok (topo, traffic) -> (
        match Spec_parser.parse (Spec_parser.to_string topo traffic) with
        | Error e -> QCheck.Test.fail_reportf "round-trip does not parse: %s" e
        | Ok (topo2, traffic2) ->
            Topology.num_buses topo = Topology.num_buses topo2
            && Topology.num_processors topo = Topology.num_processors topo2
            && Topology.num_bridges topo = Topology.num_bridges topo2
            && Array.length (Traffic.flows traffic) = Array.length (Traffic.flows traffic2)
            && Float.abs (Traffic.total_offered traffic -. Traffic.total_offered traffic2)
               < 1e-9)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"spec round-trip"
       Bufsize_verify_qcheck.Verify_arbitrary.spec_text prop)

(* Stronger property over grid specs (mesh/torus/shared_buffer stanzas):
   the canonical print is a literal parse fixed point. *)
let test_spec_grid_roundtrip_property () =
  let prop (_seed, text) =
    match Spec_parser.parse text with
    | Error e -> QCheck.Test.fail_reportf "generated grid spec does not parse: %s" e
    | Ok (topo, traffic) ->
        let printed = Spec_parser.to_string topo traffic in
        if printed <> text then
          QCheck.Test.fail_reportf "print is not a fixed point:\n%s\nvs\n%s" printed text
        else true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:100 ~name:"grid spec round-trip"
       Bufsize_verify_qcheck.Verify_arbitrary.topo_spec_text prop)

(* --------------------------------------------------------------- sizing *)

let test_sizing_fig1_end_to_end () =
  let _, traffic = Fig1.create () in
  let config = { (Sizing.default_config ~budget:40) with Sizing.max_states = 64 } in
  let r = Sizing.run config traffic in
  Alcotest.(check int) "budget distributed" 40 (Buffer_alloc.total r.Sizing.allocation);
  Alcotest.(check bool) "loss prediction finite" true (Float.is_finite r.Sizing.predicted_loss_rate);
  Alcotest.(check bool) "nonnegative loss" true (r.Sizing.predicted_loss_rate >= 0.);
  Array.iter
    (fun (sol : Sizing.subsystem_solution) ->
      Alcotest.(check bool) "switching bound" true
        sol.Sizing.switching.Bufsize_mdp.Kswitching.within_bound)
    r.Sizing.solutions

let test_sizing_separate_solver () =
  let _, traffic = Fig1.create () in
  let config =
    { (Sizing.default_config ~budget:40) with Sizing.max_states = 64; solver = Sizing.Separate }
  in
  let r = Sizing.run config traffic in
  Alcotest.(check int) "budget distributed" 40 (Buffer_alloc.total r.Sizing.allocation)

let test_sizing_more_budget_less_loss () =
  let _, traffic = Fig1.create () in
  let loss budget =
    let config = { (Sizing.default_config ~budget) with Sizing.max_states = 48 } in
    (Sizing.run config traffic).Sizing.predicted_loss_rate
  in
  (* The predicted loss with a generous occupancy budget is no worse than
     with a tight one (same state space, looser constraint). *)
  Alcotest.(check bool) "monotone in budget" true (loss 80 <= loss 20 +. 1e-9)

let test_sizing_weighted_losses () =
  (* The paper's closing remark as a feature: weighting one processor's
     losses shifts buffer space toward it. *)
  let _, traffic = Fig1.create () in
  let p3 = 2 in
  (* processor P3 on bus b *)
  let base = { (Sizing.default_config ~budget:40) with Sizing.max_states = 48 } in
  let weighted =
    {
      base with
      Sizing.client_weight =
        (fun c ->
          match c with
          | Traffic.Proc_client p when p = p3 -> 10.
          | Traffic.Proc_client _ | Traffic.Bridge_client _ -> 1.);
    }
  in
  let alloc_of config =
    let r = Sizing.run config traffic in
    let topo = Traffic.topology traffic in
    let home = (Topology.processor topo p3).Topology.home_bus in
    Buffer_alloc.lookup r.Sizing.allocation home (Traffic.Proc_client p3)
  in
  Alcotest.(check bool) "weighted processor gets at least as much" true
    (alloc_of weighted >= alloc_of base)

let test_sizing_rejects_bad_config () =
  let _, traffic = Fig1.create () in
  Alcotest.check_raises "bad budget" (Invalid_argument "Sizing.run: budget must be positive")
    (fun () -> ignore (Sizing.run (Sizing.default_config ~budget:0) traffic))

let () =
  Alcotest.run "soc"
    [
      ( "topology",
        [
          Alcotest.test_case "accessors" `Quick test_topology_accessors;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "routing" `Quick test_topology_routing;
          Alcotest.test_case "disconnected" `Quick test_topology_disconnected;
          Alcotest.test_case "shortest path" `Quick test_topology_shortest_path;
          Alcotest.test_case "mesh constructor" `Quick test_topology_mesh;
          Alcotest.test_case "torus wrap routing" `Quick test_topology_torus_wrap;
          Alcotest.test_case "torus 2x2 degenerates to mesh" `Quick
            test_topology_torus_2x2_no_wrap;
          Alcotest.test_case "shared buffer marks" `Quick test_topology_shared_buffer;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "cross-bus flow hops" `Quick test_traffic_local_flow;
          Alcotest.test_case "aggregation" `Quick test_traffic_aggregation;
          Alcotest.test_case "validation" `Quick test_traffic_validation;
          Alcotest.test_case "utilization" `Quick test_traffic_utilization;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "fig1 subsystems" `Quick test_split_fig1;
          Alcotest.test_case "local-only trivial split" `Quick test_split_local_only;
          Alcotest.test_case "netproc coverage" `Quick test_split_netproc_covers_processors;
        ] );
      ( "bus-model",
        [
          Alcotest.test_case "level cap" `Quick test_choose_levels_respects_cap;
          Alcotest.test_case "zero-rate levels" `Quick test_choose_levels_zero_rate;
          Alcotest.test_case "single client = MM1K" `Quick test_bus_model_single_client_is_mm1k;
          Alcotest.test_case "encode/decode roundtrip" `Quick test_bus_model_encode_decode;
          Alcotest.test_case "occupancy distribution" `Quick test_bus_model_occupancy_distribution;
          Alcotest.test_case "shared model shape" `Quick test_shared_model_shape;
          Alcotest.test_case "shared never worse than static" `Quick
            test_shared_never_worse_than_static;
          Alcotest.test_case "shared capacity guard" `Quick test_shared_capacity_guard;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "uniform" `Quick test_alloc_uniform;
          Alcotest.test_case "traffic proportional" `Quick test_alloc_traffic_proportional;
          Alcotest.test_case "missing lookup" `Quick test_alloc_lookup_missing;
          Alcotest.test_case "budget rescale" `Quick test_alloc_scale_budget;
          Alcotest.test_case "duplicate rejected" `Quick test_alloc_duplicate_rejected;
        ] );
      ( "monolithic",
        [
          Alcotest.test_case "residual shape" `Quick test_monolithic_residual_dimension;
          Alcotest.test_case "newton struggles" `Quick test_monolithic_newton_struggles;
          Alcotest.test_case "split always solves" `Quick test_monolithic_split_always_works;
          Alcotest.test_case "split X = MM1K" `Quick test_monolithic_split_matches_mm1k_on_x;
        ] );
      ( "properties",
        [
          Alcotest.test_case "chain routing (property)" `Quick test_route_length_on_random_chains;
          Alcotest.test_case "flow conservation (property)" `Quick
            test_traffic_flow_conservation_property;
          Alcotest.test_case "netproc stability" `Quick test_netproc_stable;
          Alcotest.test_case "fig1 validation" `Quick test_fig1_rate_scale_validation;
          Alcotest.test_case "amba shape" `Quick test_amba_shape;
          Alcotest.test_case "amba sizing favours the bridge" `Quick
            test_amba_sizing_favours_bridge;
        ] );
      ( "spec-parser",
        [
          Alcotest.test_case "parse ok" `Quick test_spec_parse_ok;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "missing file" `Quick test_spec_parse_file_missing;
          Alcotest.test_case "file error paths" `Quick test_spec_parse_file_errors;
          Alcotest.test_case "roundtrip (property)" `Quick test_spec_roundtrip_property;
          Alcotest.test_case "parse grid stanzas" `Quick test_spec_parse_grid;
          Alcotest.test_case "grid stanza errors" `Quick test_spec_grid_errors;
          Alcotest.test_case "grid roundtrip (property)" `Quick
            test_spec_grid_roundtrip_property;
          Alcotest.test_case "adversarial caps" `Quick test_spec_parser_caps;
          Alcotest.test_case "fuzz never crashes" `Quick test_spec_parser_fuzz;
        ] );
      ( "dot",
        [
          Alcotest.test_case "topology render" `Quick test_dot_topology;
          Alcotest.test_case "allocation render" `Quick test_dot_with_allocation;
          Alcotest.test_case "route overlay render" `Quick test_dot_with_routes;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "fig1 end to end" `Quick test_sizing_fig1_end_to_end;
          Alcotest.test_case "separate solver" `Quick test_sizing_separate_solver;
          Alcotest.test_case "budget monotonicity" `Quick test_sizing_more_budget_less_loss;
          Alcotest.test_case "weighted losses" `Quick test_sizing_weighted_losses;
          Alcotest.test_case "config validation" `Quick test_sizing_rejects_bad_config;
        ] );
    ]
