(* Tests for the sum-of-Kronecker operator and the SAN layer on top of
   it: mixed-radix index codec, shuffle SpMV vs the materialized joint
   matrix, adjointness of the transposed product, generator row sums,
   term-order independence, and the SAN lowering of the bridged bus
   model against both the materialized CTMC solve and the split
   approximation's exact marginals. *)

module Sparse = Bufsize_numeric.Sparse
module Kronecker = Bufsize_numeric.Kronecker
module Ctmc = Bufsize_prob.Ctmc
module San = Bufsize_prob.San
module Rng = Bufsize_prob.Rng
module Monolithic = Bufsize_soc.Monolithic
module San_bridge = Bufsize_soc.San_bridge
module Gen_model = Bufsize_verify.Gen_model

let qcheck ?(count = 100) name arb prop =
  QCheck.Test.check_exn (QCheck.Test.make ~count ~name arb prop)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000)

let max_abs_diff a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let close tol a b = Array.length a = Array.length b && max_abs_diff a b <= tol

let inf_norm v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let dot a b =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let random_san seed = Gen_model.san_of_case (Gen_model.san_case (Rng.create (1 + seed)))

let random_vec rng n = Array.init n (fun _ -> Rng.float_range rng (-2.) 2.)

(* --------------------------------------------------------- descriptor *)

let test_encode_decode_roundtrip () =
  qcheck "mixed-radix encode/decode round-trips" seed_arb (fun seed ->
      let san = random_san seed in
      let n = San.num_states san in
      let ok = ref true in
      for idx = 0 to n - 1 do
        let state = San.decode san idx in
        if San.encode san state <> idx then ok := false;
        (* every digit stays within its automaton's range *)
        Array.iteri
          (fun m s ->
            if s < 0 || s >= (San.automata san).(m).San.size then ok := false)
          state
      done;
      !ok)

let test_spmv_matches_materialized () =
  qcheck ~count:60 "shuffle SpMV = materialized SpMV" seed_arb (fun seed ->
      let san = random_san seed in
      let desc = San.descriptor san in
      let m = Kronecker.materialize desc in
      let x = random_vec (Rng.create (seed + 31)) (San.num_states san) in
      let shuffle = Kronecker.mul_vec desc x and dense = Sparse.mul_vec m x in
      let tol = 1e-12 *. (1. +. inf_norm dense) in
      close tol shuffle dense
      && close tol (Kronecker.mul_vec_t desc x) (Sparse.mul_vec_t m x))

let test_adjointness () =
  qcheck "SpMV and transposed SpMV are adjoint" seed_arb (fun seed ->
      let san = random_san seed in
      let rng = Rng.create (seed + 7) in
      let n = San.num_states san in
      let desc = San.descriptor san in
      let x = random_vec rng n and y = random_vec rng n in
      let lhs = dot (Kronecker.mul_vec desc x) y in
      let rhs = dot x (Kronecker.mul_vec_t desc y) in
      Float.abs (lhs -. rhs) <= 1e-11 *. (1. +. Float.max (Float.abs lhs) (Float.abs rhs)))

let test_generator_row_sums_zero () =
  qcheck "descriptor rows sum to zero" seed_arb (fun seed ->
      let san = random_san seed in
      let desc = San.descriptor san in
      let ones = Array.make (San.num_states san) 1. in
      inf_norm (Kronecker.mul_vec desc ones) <= 1e-9)

let test_term_order_independence () =
  qcheck ~count:60 "term order does not change the operator" seed_arb (fun seed ->
      let san = random_san seed in
      let desc = San.descriptor san in
      let reversed =
        Kronecker.create ~dims:(Kronecker.dims desc) (List.rev (Kronecker.terms desc))
      in
      let x = random_vec (Rng.create (seed + 13)) (San.num_states san) in
      let a = Kronecker.mul_vec desc x and b = Kronecker.mul_vec reversed x in
      let tol = 1e-12 *. (1. +. inf_norm a) in
      close tol a b
      && close tol (Kronecker.mul_vec_t desc x) (Kronecker.mul_vec_t reversed x))

let test_hand_kronecker_product () =
  (* 2 (A (x) B) against the closed-form entries. *)
  let a = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 1, 2.); (1, 0, 3.); (1, 1, 4.) ] in
  let b = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 1, 5.); (1, 0, 6.); (1, 1, 7.) ] in
  let desc =
    Kronecker.create ~dims:[| 2; 2 |]
      [ { Kronecker.coeff = 2.; factors = [| Kronecker.Factor a; Kronecker.Factor b |] } ]
  in
  let m = Kronecker.materialize desc in
  for i1 = 0 to 1 do
    for i2 = 0 to 1 do
      for j1 = 0 to 1 do
        for j2 = 0 to 1 do
          Alcotest.(check (float 1e-15))
            (Printf.sprintf "entry (%d%d,%d%d)" i1 i2 j1 j2)
            (2. *. Sparse.get a i1 j1 *. Sparse.get b i2 j2)
            (Sparse.get m ((i1 * 2) + i2) ((j1 * 2) + j2))
        done
      done
    done
  done;
  (* identity modes are skipped, not multiplied *)
  let with_id =
    Kronecker.create ~dims:[| 2; 2 |]
      [ { Kronecker.coeff = 1.; factors = [| Kronecker.Identity; Kronecker.Factor b |] } ]
  in
  let x = [| 1.; -1.; 2.; 0.5 |] in
  let expected = [| -5.; -1.; 2.5; 15.5 |] in
  Alcotest.(check bool) "I (x) B product" true
    (close 1e-12 (Kronecker.mul_vec with_id x) expected)

let test_stationary_matches_materialized () =
  qcheck ~count:25 "SAN stationary = materialized GTH stationary" seed_arb (fun seed ->
      let san = random_san seed in
      let pi_kron, _, converged = San.stationary_report san in
      converged && close 1e-8 pi_kron (Ctmc.stationary (San.to_ctmc san)))

(* -------------------------------------------------------- bridged SAN *)

let spec =
  {
    Monolithic.kx = 3;
    ky = 2;
    lambda_x = 1.1;
    lambda_y = 0.7;
    cross_fraction = 0.3;
    mu_x = 1.8;
    mu_y = 1.5;
  }

let test_bridge_joint_vs_materialized () =
  let san = San_bridge.model spec in
  let pi_kron = San.stationary san in
  let pi_dense = Ctmc.stationary (San.to_ctmc san) in
  Alcotest.(check bool) "joint stationary matches materialized" true
    (close 1e-8 pi_kron pi_dense)

let test_bridge_x_marginal_is_split () =
  (* X is served at full rate whether the completion is local or cross,
     so its joint marginal is exactly the split's M/M/1/K. *)
  let sol = San_bridge.solve spec in
  let split = Monolithic.solve_split spec in
  Alcotest.(check bool) "converged" true sol.San_bridge.converged;
  Alcotest.(check bool) "x marginal" true
    (close 1e-8 sol.San_bridge.x_dist split.Monolithic.x_dist);
  Alcotest.(check (float 1e-8)) "x loss" split.Monolithic.x_loss sol.San_bridge.x_loss

let test_bridge_decoupled_boundary () =
  (* cross_fraction = 0: the bridge stays empty and both buses are
     independent M/M/1/K queues — split and joint must agree exactly. *)
  let s0 = { spec with Monolithic.cross_fraction = 0. } in
  let g = San_bridge.compare_split s0 in
  let j = g.San_bridge.joint and sp = g.San_bridge.split in
  Alcotest.(check bool) "y marginal" true
    (close 1e-8 j.San_bridge.y_dist sp.Monolithic.y_dist);
  Alcotest.(check (float 1e-8)) "y loss" sp.Monolithic.y_loss j.San_bridge.y_loss;
  Alcotest.(check (float 1e-10)) "bridge empty" 1. j.San_bridge.bridge_dist.(0)

let test_bridge_warm_equals_cold () =
  (* The split-product warm seed must not move the fixed point. *)
  let warm = San_bridge.solve ~warm_start:true spec in
  let cold = San_bridge.solve ~warm_start:false spec in
  Alcotest.(check bool) "same joint answer" true
    (close 1e-8 warm.San_bridge.bridge_dist cold.San_bridge.bridge_dist
    && close 1e-8 warm.San_bridge.y_dist cold.San_bridge.y_dist);
  Alcotest.(check bool) "warm start not slower"
    true
    (warm.San_bridge.sweeps <= cold.San_bridge.sweeps)

let test_san_case_serialization_roundtrip () =
  qcheck ~count:60 "san_case survives to_string/of_string" seed_arb (fun seed ->
      let c = Gen_model.san_case (Rng.create (1 + seed)) in
      match Gen_model.san_case_of_string (Gen_model.san_case_to_string c) with
      | Error e -> QCheck.Test.fail_report ("parse error: " ^ e)
      | Ok c' ->
          (* Equality through the compiled semantics: same dims and same
             operator action on a probe vector. *)
          let s = Gen_model.san_of_case c and s' = Gen_model.san_of_case c' in
          let d = San.descriptor s and d' = San.descriptor s' in
          Kronecker.dims d = Kronecker.dims d'
          &&
          let x = random_vec (Rng.create (seed + 3)) (San.num_states s) in
          max_abs_diff (Kronecker.mul_vec d x) (Kronecker.mul_vec d' x) = 0.)

let () =
  Alcotest.run "kron"
    [
      ( "descriptor",
        [
          Alcotest.test_case "encode/decode round-trip (property)" `Quick
            test_encode_decode_roundtrip;
          Alcotest.test_case "SpMV vs materialized (property)" `Quick
            test_spmv_matches_materialized;
          Alcotest.test_case "adjointness (property)" `Quick test_adjointness;
          Alcotest.test_case "generator row sums (property)" `Quick
            test_generator_row_sums_zero;
          Alcotest.test_case "term-order independence (property)" `Quick
            test_term_order_independence;
          Alcotest.test_case "hand-computed Kronecker product" `Quick
            test_hand_kronecker_product;
        ] );
      ( "stationary",
        [
          Alcotest.test_case "SAN vs materialized (property)" `Quick
            test_stationary_matches_materialized;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "joint vs materialized" `Quick test_bridge_joint_vs_materialized;
          Alcotest.test_case "X marginal is the split M/M/1/K" `Quick
            test_bridge_x_marginal_is_split;
          Alcotest.test_case "decoupled boundary" `Quick test_bridge_decoupled_boundary;
          Alcotest.test_case "warm seed holds the fixed point" `Quick
            test_bridge_warm_equals_cold;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "repro round-trip (property)" `Quick
            test_san_case_serialization_roundtrip;
        ] );
    ]
