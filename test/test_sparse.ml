(* Tests for the CSR sparse-matrix substrate and the sparse solve paths
   built on it: SpMV and transposed SpMV against the dense reference,
   triplet accumulation, transpose, iterative stationary distributions
   against the direct (GTH/LU) solvers on random CTMCs, and the sparse LP
   lowering against the dense one. *)

module Mat = Bufsize_numeric.Mat
module Sparse = Bufsize_numeric.Sparse
module Lp = Bufsize_numeric.Lp
module Simplex_revised = Bufsize_numeric.Simplex_revised
module Ctmc = Bufsize_prob.Ctmc
module Rng = Bufsize_prob.Rng
module Gen_model = Bufsize_verify.Gen_model

let qcheck ?(count = 100) name arb prop =
  QCheck.Test.check_exn (QCheck.Test.make ~count ~name arb prop)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000)

(* Random rectangular matrix with ~half the entries zero, plus a vector
   for each dimension. *)
let random_mat_vecs seed =
  let rng = Rng.create (1 + seed) in
  let rows = 1 + Rng.int rng 8 and cols = 1 + Rng.int rng 8 in
  let m =
    Mat.init rows cols (fun _ _ ->
        if Rng.int rng 2 = 0 then 0. else Rng.float_range rng (-3.) 3.)
  in
  let x = Array.init cols (fun _ -> Rng.float_range rng (-2.) 2.) in
  let y = Array.init rows (fun _ -> Rng.float_range rng (-2.) 2.) in
  (m, x, y)

let close tol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Float.abs (u -. v) <= tol) a b

(* ------------------------------------------------------------- algebra *)

let test_spmv_matches_dense () =
  qcheck "SpMV = dense mul_vec" seed_arb (fun seed ->
      let m, x, _ = random_mat_vecs seed in
      close 1e-12 (Sparse.mul_vec (Sparse.of_dense m) x) (Mat.mul_vec m x))

let test_spmv_t_matches_dense () =
  qcheck "transposed SpMV = dense transpose mul_vec" seed_arb (fun seed ->
      let m, _, y = random_mat_vecs seed in
      close 1e-12 (Sparse.mul_vec_t (Sparse.of_dense m) y) (Mat.mul_vec (Mat.transpose m) y))

let test_transpose_roundtrip () =
  qcheck "transpose agrees with dense and involutes" seed_arb (fun seed ->
      let m, _, _ = random_mat_vecs seed in
      let s = Sparse.of_dense m in
      Mat.approx_equal ~tol:0. (Sparse.to_dense (Sparse.transpose s)) (Mat.transpose m)
      && Sparse.approx_equal ~tol:0. (Sparse.transpose (Sparse.transpose s)) s)

let test_of_triplets_accumulates () =
  (* Duplicates accumulate in list order; exact zeros are dropped. *)
  let s =
    Sparse.of_triplets ~rows:2 ~cols:3
      [ (0, 1, 1.5); (1, 2, -2.); (0, 1, 0.5); (1, 0, 0.); (0, 2, 4.) ]
  in
  Alcotest.(check int) "nnz" 3 (Sparse.nnz s);
  Alcotest.(check (float 0.)) "accumulated" 2. (Sparse.get s 0 1);
  Alcotest.(check (float 0.)) "plain" 4. (Sparse.get s 0 2);
  Alcotest.(check (float 0.)) "negative" (-2.) (Sparse.get s 1 2);
  Alcotest.(check (float 0.)) "dropped zero" 0. (Sparse.get s 1 0);
  Alcotest.(check int) "row 0 nnz" 2 (Sparse.row_nnz s 0)

(* Random triplet list with forced duplicates (including some that
   accumulate to exactly zero), plus the dense accumulation reference
   computed in the same list order — so the comparison is bitwise. *)
let random_triplets seed =
  let rng = Rng.create (1 + seed) in
  let rows = 1 + Rng.int rng 6 and cols = 1 + Rng.int rng 6 in
  let base =
    List.init
      (Rng.int rng 20)
      (fun _ -> (Rng.int rng rows, Rng.int rng cols, Rng.float_range rng (-3.) 3.))
  in
  (* duplicate a prefix verbatim and cancel a few entries exactly *)
  let dups = List.filteri (fun i _ -> i < 5) base in
  let cancels = List.filteri (fun i _ -> i mod 3 = 0) base |> List.map (fun (i, j, v) -> (i, j, -.v)) in
  (rows, cols, base @ dups @ cancels)

let test_of_triplets_accumulation_property () =
  qcheck "of_triplets accumulates duplicates in list order" seed_arb (fun seed ->
      let rows, cols, triplets = random_triplets seed in
      let s = Sparse.of_triplets ~rows ~cols triplets in
      let dense = Array.make_matrix rows cols 0. in
      List.iter (fun (i, j, v) -> dense.(i).(j) <- dense.(i).(j) +. v) triplets;
      let ok = ref true in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          (* bitwise: same accumulation order on both sides, and exact
             zeros must be dropped from the structure *)
          if Sparse.get s i j <> dense.(i).(j) then ok := false;
          if dense.(i).(j) = 0. && Sparse.index s i j <> None then ok := false
        done
      done;
      !ok)

let test_transpose_involution_property () =
  qcheck "transpose (transpose a) = a structurally" seed_arb (fun seed ->
      let rows, cols, triplets = random_triplets seed in
      let s = Sparse.of_triplets ~rows ~cols triplets in
      let tt = Sparse.transpose (Sparse.transpose s) in
      tt.Sparse.rows = s.Sparse.rows
      && tt.Sparse.cols = s.Sparse.cols
      && tt.Sparse.row_ptr = s.Sparse.row_ptr
      && tt.Sparse.col_idx = s.Sparse.col_idx
      && tt.Sparse.values = s.Sparse.values)

let test_scale_and_row_sums () =
  let s = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 1, 2.); (1, 0, -1.) ] in
  let sums = Sparse.row_sums (Sparse.scale 2. s) in
  Alcotest.(check (float 0.)) "row 0" 6. sums.(0);
  Alcotest.(check (float 0.)) "row 1" (-2.) sums.(1)

(* --------------------------------------------------------- stationary *)

(* Random irreducible CTMC: a cycle [i -> i+1 mod n] guarantees
   irreducibility, random extra transitions give it structure. *)
let random_ctmc seed =
  let rng = Rng.create (1 + seed) in
  let n = 2 + Rng.int rng 29 in
  let rates = ref [] in
  for i = 0 to n - 1 do
    rates := (i, (i + 1) mod n, Rng.float_range rng 0.5 2.) :: !rates;
    let extras = Rng.int rng 3 in
    for _ = 1 to extras do
      let j = Rng.int rng n in
      if j <> i then rates := (i, j, Rng.float_range rng 0.01 1.) :: !rates
    done
  done;
  Ctmc.of_rates n !rates

let test_iterative_stationary_matches_direct () =
  qcheck ~count:60 "iterative stationary = GTH = LU" seed_arb (fun seed ->
      let c = random_ctmc seed in
      let it = Ctmc.stationary_iterative c in
      let lu = Ctmc.stationary_dense c in
      let gth =
        match Ctmc.stationary_gth c with
        | Ok pi -> pi
        | Error (`Reducible_class _) ->
            QCheck.Test.fail_report "GTH refused an irreducible chain"
      in
      close 1e-8 it gth && close 1e-8 it lu)

let test_two_state_converges_in_two_sweeps () =
  (* Lambda = 2 max_exit equals the total rate on a symmetric 2-state
     chain, so P's second eigenvalue is 0: the first sweep lands exactly
     on the fixed point and the second only observes delta < tol. *)
  let c = Ctmc.of_rates 2 [ (0, 1, 1.); (1, 0, 1.) ] in
  let pi, iters, converged =
    Ctmc.stationary_iterative_report ~init:[| 0.9; 0.1 |] c
  in
  Alcotest.(check bool) "converged" true converged;
  Alcotest.(check bool) "iterations <= 2" true (iters <= 2);
  Alcotest.(check bool) "exact fixed point" true (close 1e-12 pi [| 0.5; 0.5 |])

let test_init_seeding_preserves_fixed_point () =
  qcheck ~count:40 "?init seeding never moves the fixed point" seed_arb (fun seed ->
      let c = random_ctmc seed in
      let cold = Ctmc.stationary_iterative c in
      (* re-seeding with the fixed point itself must stay on it *)
      let reseeded = Ctmc.stationary_iterative ~init:cold c in
      (* a perturbed (but valid) seed must converge back to it *)
      let rng = Rng.create (seed + 77) in
      let pert =
        Array.map (fun p -> Float.max 0. (p +. Rng.float_range rng (-0.01) 0.01)) cold
      in
      let total = Array.fold_left ( +. ) 0. pert in
      let pert = Array.map (fun p -> p /. total) pert in
      let from_pert = Ctmc.stationary_iterative ~init:pert c in
      close 1e-10 reseeded cold && close 1e-8 from_pert cold)

let test_stationary_dispatch_consistent () =
  (* The auto dispatcher must agree with both explicit routes. *)
  let c = random_ctmc 7 in
  let auto = Ctmc.stationary c in
  Alcotest.(check bool) "auto = iterative" true (close 1e-8 auto (Ctmc.stationary_iterative c));
  Alcotest.(check bool) "auto = dense" true (close 1e-8 auto (Ctmc.stationary_dense c))

(* ----------------------------------------------------------- lowering *)

let dense_of_sparse_std (s : Simplex_revised.sparse_standard) =
  let a = Array.make (s.Simplex_revised.snrows * s.Simplex_revised.sncols) 0. in
  Array.iteri
    (fun j col ->
      Array.iter (fun (i, v) -> a.((i * s.Simplex_revised.sncols) + j) <- v) col)
    s.Simplex_revised.scols;
  a

let test_sparse_lowering_matches_dense () =
  qcheck ~count:200 "to_standard_sparse = to_standard" seed_arb (fun seed ->
      let c = Gen_model.lp_case (Rng.create (1 + seed)) in
      let lp = Gen_model.lp_of_case c in
      let d = Lp.to_standard lp in
      let s = Lp.to_standard_sparse lp in
      s.Simplex_revised.snrows = d.Bufsize_numeric.Simplex.nrows
      && s.Simplex_revised.sncols = d.Bufsize_numeric.Simplex.ncols
      && s.Simplex_revised.sb = d.Bufsize_numeric.Simplex.b
      && s.Simplex_revised.sc = d.Bufsize_numeric.Simplex.c
      && dense_of_sparse_std s = d.Bufsize_numeric.Simplex.a)

let () =
  Alcotest.run "sparse"
    [
      ( "algebra",
        [
          Alcotest.test_case "SpMV vs dense (property)" `Quick test_spmv_matches_dense;
          Alcotest.test_case "transposed SpMV vs dense (property)" `Quick
            test_spmv_t_matches_dense;
          Alcotest.test_case "transpose round-trip (property)" `Quick test_transpose_roundtrip;
          Alcotest.test_case "triplet accumulation" `Quick test_of_triplets_accumulates;
          Alcotest.test_case "triplet accumulation (property)" `Quick
            test_of_triplets_accumulation_property;
          Alcotest.test_case "transpose involution (property)" `Quick
            test_transpose_involution_property;
          Alcotest.test_case "scale and row sums" `Quick test_scale_and_row_sums;
        ] );
      ( "stationary",
        [
          Alcotest.test_case "iterative vs direct (property)" `Quick
            test_iterative_stationary_matches_direct;
          Alcotest.test_case "two-state chain converges in two sweeps" `Quick
            test_two_state_converges_in_two_sweeps;
          Alcotest.test_case "?init seeding preserves fixed point (property)" `Quick
            test_init_seeding_preserves_fixed_point;
          Alcotest.test_case "dispatch consistency" `Quick test_stationary_dispatch_consistent;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "sparse vs dense standard form (property)" `Quick
            test_sparse_lowering_matches_dense;
        ] );
    ]
