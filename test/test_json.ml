(* The strict JSON parser the assertions here use lives in the library
   now (the sizing service parses requests with it); this alias keeps the
   test modules' [Test_json.parse] call sites stable. *)

include Bufsize_json.Json
