(* Tests for the numeric substrate: vectors/matrices, LU, simplex, the LP
   model layer, Newton, apportionment and statistics. *)

module Vec = Bufsize_numeric.Vec
module Mat = Bufsize_numeric.Mat
module Lu = Bufsize_numeric.Lu
module Lp = Bufsize_numeric.Lp
module Simplex = Bufsize_numeric.Simplex
module Newton = Bufsize_numeric.Newton
module Apportion = Bufsize_numeric.Apportion
module Stats = Bufsize_numeric.Stats

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ Vec *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.; 2.; 3. ] in
  check_float "sum" 6. (Vec.sum v);
  check_float "dot" 14. (Vec.dot v v);
  check_float "norm_inf" 3. (Vec.norm_inf v);
  Alcotest.(check int) "max_index" 2 (Vec.max_index v);
  let w = Vec.scale 2. v in
  check_float "scale" 4. w.(1);
  let s = Vec.add v w in
  check_float "add" 9. s.(2);
  let d = Vec.sub w v in
  Alcotest.(check bool) "sub=v" true (Vec.approx_equal d v)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.; 1. ] and y = Vec.of_list [ 0.; 2. ] in
  Vec.axpy 3. x y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y (Vec.of_list [ 3.; 5. ]))

let test_vec_mismatch () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec.dot: dimensions 2 <> 3")
    (fun () -> ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* ------------------------------------------------------------------ Mat *)

let test_mat_mul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19. (Mat.get c 0 0);
  check_float "c01" 22. (Mat.get c 0 1);
  check_float "c10" 43. (Mat.get c 1 0);
  check_float "c11" 50. (Mat.get c 1 1)

let test_mat_transpose_identity () =
  let a = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = Mat.transpose a in
  Alcotest.(check int) "rows" 3 at.Mat.rows;
  check_float "entry" 6. (Mat.get at 2 1);
  let i3 = Mat.identity 3 in
  Alcotest.(check bool) "A I = A (shapes permitting)" true
    (Mat.approx_equal (Mat.mul a i3) a)

let test_mat_mul_vec () =
  let a = Mat.of_rows [| [| 2.; 0. |]; [| 1.; 3. |] |] in
  let v = Mat.mul_vec a [| 1.; 2. |] in
  Alcotest.(check bool) "Av" true (Vec.approx_equal v [| 2.; 7. |])

(* ------------------------------------------------------------------- Lu *)

let test_lu_solve () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve a [| 3.; 5. |] in
  Alcotest.(check bool) "solution" true
    (Vec.approx_equal ~tol:1e-12 x [| 0.8; 1.4 |]);
  check_float "residual" 0. (Lu.residual_norm a x [| 3.; 5. |])

let test_lu_needs_pivoting () =
  (* Zero pivot in the (0,0) position forces a row swap. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Lu.solve a [| 2.; 3. |] in
  Alcotest.(check bool) "swap solve" true (Vec.approx_equal x [| 3.; 2. |])

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  (match Lu.solve a [| 1.; 2. |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular")

let test_lu_det () =
  let a = Mat.of_rows [| [| 3.; 1. |]; [| 1.; 2. |] |] in
  check_float "det" 5. (Lu.det (Lu.factorize a))

let test_lu_inverse () =
  let a = Mat.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Lu.inverse a in
  Alcotest.(check bool) "A A^-1 = I" true
    (Mat.approx_equal ~tol:1e-12 (Mat.mul a inv) (Mat.identity 2))

let test_lu_random_roundtrip () =
  (* Property: for random well-conditioned A and x, solve(A, A x) = x. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 8 in
        let* entries = array_size (return (n * n)) (float_range (-1.) 1.) in
        let* xs = array_size (return n) (float_range (-5.) 5.) in
        return (n, entries, xs))
  in
  let prop (n, entries, xs) =
    let a = Mat.init n n (fun i j -> entries.((i * n) + j) +. if i = j then 4. else 0.) in
    let b = Mat.mul_vec a xs in
    match Lu.solve a b with
    | x -> Vec.approx_equal ~tol:1e-6 x xs
    | exception Lu.Singular _ -> QCheck.assume_fail ()
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"lu roundtrip (diagonally dominated)" gen prop)

(* -------------------------------------------------------------- Simplex *)

let std ~nrows ~ncols a b c = { Simplex.nrows; ncols; a; b; c }

let test_simplex_basic () =
  (* min -x - y  s.t.  x + y + s = 4, x + 3y + t = 6  =>  x = 4, y = 0?
     Optimum of max x + y is x=4,y=0 with obj 4 (vertex (3,1) gives 4 too:
     degenerate family).  Check the objective value. *)
  let p =
    std ~nrows:2 ~ncols:4
      [| 1.; 1.; 1.; 0.; 1.; 3.; 0.; 1. |]
      [| 4.; 6. |]
      [| -1.; -1.; 0.; 0. |]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol ->
      check_float_loose "objective" (-4.) sol.Simplex.objective;
      check_float_loose "feasible" 0. (Simplex.feasibility_error p sol.Simplex.x)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  (* x + s = 1 and x - t... encode x <= 1 and x >= 2 with explicit slack and
     surplus columns: rows x + s = 1; x - t = 2, all vars >= 0. *)
  let p =
    std ~nrows:2 ~ncols:3 [| 1.; 1.; 0.; 1.; 0.; -1. |] [| 1.; 2. |] [| 0.; 0.; 0. |]
  in
  (match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_simplex_unbounded () =
  (* min -x s.t. x - y = 0: x can grow without bound. *)
  let p = std ~nrows:1 ~ncols:2 [| 1.; -1. |] [| 0. |] [| -1.; 0. |] in
  (match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_simplex_negative_rhs () =
  (* -x - s = -3 (i.e. x + s = 3 after the internal flip); min x gives 0. *)
  let p = std ~nrows:1 ~ncols:2 [| -1.; -1. |] [| -3. |] [| 1.; 0. |] in
  (match Simplex.solve p with
  | Simplex.Optimal sol -> check_float_loose "objective" 0. sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal")

let test_simplex_degenerate () =
  (* Klee-Minty-flavoured degeneracy: multiple rows active at the optimum.
     The Bland fallback must terminate. *)
  let p =
    std ~nrows:3 ~ncols:6
      [|
        1.; 0.; 0.; 1.; 0.; 0.;
        4.; 1.; 0.; 0.; 1.; 0.;
        8.; 4.; 1.; 0.; 0.; 1.;
      |]
      [| 1.; 4.; 16. |]
      [| -4.; -2.; -1.; 0.; 0.; 0. |]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol ->
      Alcotest.(check bool) "finite objective" true (Float.is_finite sol.Simplex.objective);
      check_float_loose "feasible" 0. (Simplex.feasibility_error p sol.Simplex.x)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_duals () =
  (* min -3x - 5y st x + s1 = 4; 2y + s2 = 12; 3x + 2y + s3 = 18
     classic: optimum (2, 6), objective -36, duals (0, -3/2... ) for the
     min form y = (0, 1.5, 1) negated: check complementary slackness by
     y' b = objective. *)
  let p =
    std ~nrows:3 ~ncols:5
      [|
        1.; 0.; 1.; 0.; 0.;
        0.; 2.; 0.; 1.; 0.;
        3.; 2.; 0.; 0.; 1.;
      |]
      [| 4.; 12.; 18. |]
      [| -3.; -5.; 0.; 0.; 0. |]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol ->
      check_float_loose "objective" (-36.) sol.Simplex.objective;
      let yb =
        Array.fold_left ( +. ) 0. (Array.mapi (fun i y -> y *. p.Simplex.b.(i)) sol.Simplex.duals)
      in
      check_float_loose "strong duality" sol.Simplex.objective yb
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_transportation () =
  (* 2x2 transportation problem with known optimum: supplies (10, 20),
     demands (15, 15), costs [[1, 3]; [2, 1]].  Optimal plan ships 10 on
     the cheap (1,1) lane, 5+15 from source 2: cost 10 + 10 + 15 = 35. *)
  let p =
    std ~nrows:4 ~ncols:4
      [|
        1.; 1.; 0.; 0.;  (* supply 1 *)
        0.; 0.; 1.; 1.;  (* supply 2 *)
        1.; 0.; 1.; 0.;  (* demand 1 *)
        0.; 1.; 0.; 1.;  (* demand 2 *)
      |]
      [| 10.; 20.; 15.; 15. |]
      [| 1.; 3.; 2.; 1. |]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol ->
      check_float_loose "objective" 35. sol.Simplex.objective;
      check_float_loose "feasible" 0. (Simplex.feasibility_error p sol.Simplex.x)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_strong_duality_property () =
  (* Property: on random feasible bounded LPs (x = 0 feasible, variables
     capped), the refined duals satisfy y'b = objective. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* nv = int_range 1 5 in
        let* nc = int_range 1 5 in
        let* coefs = array_size (return (nc * nv)) (float_range (-2.) 2.) in
        let* rhs = array_size (return nc) (float_range 0.5 6.) in
        let* obj = array_size (return nv) (float_range (-2.) 2.) in
        return (nv, nc, coefs, rhs, obj))
  in
  let prop (nv, nc, coefs, rhs, obj) =
    (* rows: A x + s = b with slacks; bounds x_j + t_j = 10. *)
    let nrows = nc + nv in
    let ncols = nv + nc + nv in
    let a = Array.make (nrows * ncols) 0. in
    let b = Array.make nrows 0. in
    for i = 0 to nc - 1 do
      for j = 0 to nv - 1 do
        a.((i * ncols) + j) <- coefs.((i * nv) + j)
      done;
      a.((i * ncols) + nv + i) <- 1.;
      b.(i) <- rhs.(i)
    done;
    for j = 0 to nv - 1 do
      let i = nc + j in
      a.((i * ncols) + j) <- 1.;
      a.((i * ncols) + nv + nc + j) <- 1.;
      b.(i) <- 10.
    done;
    let c = Array.make ncols 0. in
    Array.blit obj 0 c 0 nv;
    let p = { Simplex.nrows; ncols; a; b; c } in
    match Simplex.solve p with
    | Simplex.Optimal sol ->
        let yb =
          Array.fold_left ( +. ) 0.
            (Array.mapi (fun i y -> y *. b.(i)) sol.Simplex.duals)
        in
        Float.abs (yb -. sol.Simplex.objective) < 1e-6
        && Simplex.feasibility_error p sol.Simplex.x < 1e-7
    | Simplex.Infeasible | Simplex.Unbounded -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:150 ~name:"strong duality" gen prop)

(* -------------------------------------------------------------- Revised *)

module Simplex_revised = Bufsize_numeric.Simplex_revised

let test_revised_matches_dense_basics () =
  (* Re-run the dense engine's fixed cases through the revised engine. *)
  let cases =
    [
      ( "basic",
        std ~nrows:2 ~ncols:4
          [| 1.; 1.; 1.; 0.; 1.; 3.; 0.; 1. |]
          [| 4.; 6. |]
          [| -1.; -1.; 0.; 0. |],
        Some (-4.) );
      ( "transportation",
        std ~nrows:4 ~ncols:4
          [|
            1.; 1.; 0.; 0.;
            0.; 0.; 1.; 1.;
            1.; 0.; 1.; 0.;
            0.; 1.; 0.; 1.;
          |]
          [| 10.; 20.; 15.; 15. |]
          [| 1.; 3.; 2.; 1. |],
        Some 35. );
      ( "negative rhs",
        std ~nrows:1 ~ncols:2 [| -1.; -1. |] [| -3. |] [| 1.; 0. |],
        Some 0. );
    ]
  in
  List.iter
    (fun (name, p, expected) ->
      match (Simplex_revised.solve p, expected) with
      | Simplex.Optimal sol, Some obj ->
          check_float_loose name obj sol.Simplex.objective;
          check_float_loose (name ^ " feasible") 0. (Simplex.feasibility_error p sol.Simplex.x)
      | outcome, _ ->
          ignore outcome;
          Alcotest.failf "%s: unexpected outcome" name)
    cases

let test_revised_infeasible_unbounded () =
  let infeasible =
    std ~nrows:2 ~ncols:3 [| 1.; 1.; 0.; 1.; 0.; -1. |] [| 1.; 2. |] [| 0.; 0.; 0. |]
  in
  (match Simplex_revised.solve infeasible with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  let unbounded = std ~nrows:1 ~ncols:2 [| 1.; -1. |] [| 0. |] [| -1.; 0. |] in
  match Simplex_revised.solve unbounded with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_revised_agrees_with_dense_property () =
  (* Property: on random feasible bounded LPs both engines find the same
     optimal value. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* nv = int_range 1 6 in
        let* nc = int_range 1 6 in
        let* coefs = array_size (return (nc * nv)) (float_range (-2.) 2.) in
        let* rhs = array_size (return nc) (float_range 0.5 6.) in
        let* obj = array_size (return nv) (float_range (-2.) 2.) in
        return (nv, nc, coefs, rhs, obj))
  in
  let prop (nv, nc, coefs, rhs, obj) =
    (* A x + s = b plus x_j + t_j = 10 bounds, as in the duality test. *)
    let nrows = nc + nv in
    let ncols = nv + nc + nv in
    let a = Array.make (nrows * ncols) 0. in
    let b = Array.make nrows 0. in
    for i = 0 to nc - 1 do
      for j = 0 to nv - 1 do
        a.((i * ncols) + j) <- coefs.((i * nv) + j)
      done;
      a.((i * ncols) + nv + i) <- 1.;
      b.(i) <- rhs.(i)
    done;
    for j = 0 to nv - 1 do
      let i = nc + j in
      a.((i * ncols) + j) <- 1.;
      a.((i * ncols) + nv + nc + j) <- 1.;
      b.(i) <- 10.
    done;
    let c = Array.make ncols 0. in
    Array.blit obj 0 c 0 nv;
    let p = { Simplex.nrows; ncols; a; b; c } in
    match (Simplex.solve p, Simplex_revised.solve p) with
    | Simplex.Optimal dense, Simplex.Optimal revised ->
        Float.abs (dense.Simplex.objective -. revised.Simplex.objective) < 1e-6
        && Simplex.feasibility_error p revised.Simplex.x < 1e-6
    | _, _ -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:150 ~name:"revised = dense" gen prop)

let test_lu_solve_transposed () =
  let a = Mat.of_rows [| [| 2.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 4. |] |] in
  let f = Lu.factorize a in
  let b = [| 1.; 2.; 3. |] in
  let x = Lu.solve_transposed f b in
  let residual = Vec.sub (Mat.mul_vec (Mat.transpose a) x) b in
  check_float_loose "A' x = b" 0. (Vec.norm_inf residual)

let test_lu_solve_transposed_with_pivoting () =
  (* A matrix that forces row swaps exercises the permutation handling. *)
  let a = Mat.of_rows [| [| 0.; 1.; 2. |]; [| 3.; 0.; 1. |]; [| 1.; 2.; 0. |] |] in
  let f = Lu.factorize a in
  let b = [| 4.; -1.; 2. |] in
  let x = Lu.solve_transposed f b in
  let residual = Vec.sub (Mat.mul_vec (Mat.transpose a) x) b in
  check_float_loose "A' x = b (pivoted)" 0. (Vec.norm_inf residual)

(* ------------------------------------------------------------------- Lp *)

let test_lp_maximize () =
  let lp = Lp.create Lp.Maximize in
  let x = Lp.add_var ~name:"x" lp and y = Lp.add_var ~name:"y" lp in
  Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constraint lp [ (1., x); (3., y) ] Lp.Le 6.;
  Lp.set_objective lp [ (3., x); (5., y) ];
  match Lp.solve lp with
  | Lp.Optimal sol ->
      check_float_loose "objective" 14. sol.Lp.objective;
      check_float_loose "x" 3. (Lp.value sol x);
      check_float_loose "y" 1. (Lp.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.pp_outcome o

let test_lp_ge_and_eq () =
  let lp = Lp.create Lp.Minimize in
  let x = Lp.add_var lp and y = Lp.add_var lp in
  Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Eq 10.;
  Lp.add_constraint lp [ (1., x) ] Lp.Ge 3.;
  Lp.set_objective lp [ (2., x); (1., y) ];
  match Lp.solve lp with
  | Lp.Optimal sol ->
      check_float_loose "x at lower" 3. (Lp.value sol x);
      check_float_loose "y fills" 7. (Lp.value sol y);
      check_float_loose "objective" 13. sol.Lp.objective
  | o -> Alcotest.failf "expected optimal, got %a" Lp.pp_outcome o

let test_lp_free_variable () =
  let lp = Lp.create Lp.Minimize in
  let x = Lp.add_var ~lb:Float.neg_infinity lp in
  Lp.add_constraint lp [ (1., x) ] Lp.Ge (-5.);
  Lp.set_objective lp [ (1., x) ];
  match Lp.solve lp with
  | Lp.Optimal sol -> check_float_loose "x" (-5.) (Lp.value sol x)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.pp_outcome o

let test_lp_shifted_bound () =
  let lp = Lp.create Lp.Minimize in
  let x = Lp.add_var ~lb:2.5 lp in
  Lp.set_objective lp [ (4., x) ];
  match Lp.solve lp with
  | Lp.Optimal sol ->
      check_float_loose "x at bound" 2.5 (Lp.value sol x);
      check_float_loose "objective includes shift" 10. sol.Lp.objective
  | o -> Alcotest.failf "expected optimal, got %a" Lp.pp_outcome o

let test_lp_infeasible () =
  let lp = Lp.create Lp.Minimize in
  let x = Lp.add_var lp in
  Lp.add_constraint lp [ (1., x) ] Lp.Le 1.;
  Lp.add_constraint lp [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective lp [ (1., x) ];
  match Lp.solve lp with
  | Lp.Infeasible -> ()
  | o -> Alcotest.failf "expected infeasible, got %a" Lp.pp_outcome o

let test_lp_unbounded () =
  let lp = Lp.create Lp.Maximize in
  let x = Lp.add_var lp in
  Lp.set_objective lp [ (1., x) ];
  match Lp.solve lp with
  | Lp.Unbounded -> ()
  | o -> Alcotest.failf "expected unbounded, got %a" Lp.pp_outcome o

let test_lp_random_feasibility () =
  (* Property: on random bounded LPs, the solver returns a feasible point
     whose objective is no worse than any sampled feasible point. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* nv = int_range 1 4 in
        let* nc = int_range 1 4 in
        let* coefs = array_size (return (nc * nv)) (float_range (-2.) 2.) in
        let* rhs = array_size (return nc) (float_range 1. 8.) in
        let* obj = array_size (return nv) (float_range (-1.) 1.) in
        return (nv, nc, coefs, rhs, obj))
  in
  let prop (nv, nc, coefs, rhs, obj) =
    let lp = Lp.create Lp.Minimize in
    let xs = Lp.add_vars lp nv in
    for i = 0 to nc - 1 do
      let terms = List.init nv (fun j -> (coefs.((i * nv) + j), xs.(j))) in
      Lp.add_constraint lp terms Lp.Le rhs.(i)
    done;
    (* Cap every variable so the LP is bounded. *)
    Array.iter (fun x -> Lp.add_constraint lp [ (1., x) ] Lp.Le 10.) xs;
    Lp.set_objective lp (List.init nv (fun j -> (obj.(j), xs.(j))));
    match Lp.solve lp with
    | Lp.Optimal sol ->
        (* x = 0 is feasible (rhs > 0), so the optimum is <= objective(0) = 0. *)
        sol.Lp.objective <= 1e-7
    | Lp.Infeasible | Lp.Unbounded -> false
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"random LPs solve and beat origin" gen prop)

let test_lp_large_model_access () =
  (* The array-backed model makes [var_name] and [num_constraints] O(1).
     200k lookups against a 10k-variable, 10k-row model finish in
     milliseconds; the historical list-backed representation (List.nth
     over a reversed list, List.length per query) needed a billion list
     steps here, so the generous wall-clock bound below still separates
     the complexity classes on slow CI machines. *)
  let n = 10_000 in
  let lp = Lp.create ~name:"big" Lp.Minimize in
  let xs = Lp.add_vars lp n in
  for i = 0 to n - 1 do
    Lp.add_constraint lp [ (1., xs.(i)) ] Lp.Ge 0.
  done;
  let lookups = 200_000 in
  let t0 = Unix.gettimeofday () in
  let checksum = ref 0 in
  for i = 0 to lookups - 1 do
    checksum := !checksum + String.length (Lp.var_name lp xs.(i mod n)) + Lp.num_constraints lp
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "last var name" "x9999" (Lp.var_name lp xs.(n - 1));
  Alcotest.(check int) "row count" n (Lp.num_constraints lp);
  Alcotest.(check bool) "checksum consumed" true (!checksum > 0);
  Alcotest.(check bool)
    (Printf.sprintf "O(1) accessors: %d lookups took %.3fs (bound 2s)" lookups dt)
    true (dt < 2.0)

(* --------------------------------------------------------------- Newton *)

let test_newton_scalar () =
  let f x = [| (x.(0) *. x.(0)) -. 4. |] in
  let r = Newton.solve ~f ~x0:[| 3. |] () in
  Alcotest.(check bool) "converged" true r.Newton.converged;
  check_float_loose "root" 2. r.Newton.solution.(0)

let test_newton_system () =
  (* x^2 + y^2 = 5, x y = 2 -> (2, 1) from a nearby start. *)
  let f v =
    [| (v.(0) *. v.(0)) +. (v.(1) *. v.(1)) -. 5.; (v.(0) *. v.(1)) -. 2. |]
  in
  let r = Newton.solve ~f ~x0:[| 2.5; 0.5 |] () in
  Alcotest.(check bool) "converged" true r.Newton.converged;
  check_float_loose "x" 2. r.Newton.solution.(0);
  check_float_loose "y" 1. r.Newton.solution.(1)

let test_newton_singular_jacobian () =
  (* f(x) = x^2 has a singular Jacobian at the root; the solver slows to a
     crawl and must report honestly rather than loop forever. *)
  let f x = [| x.(0) *. x.(0) |] in
  let r = Newton.solve ~max_iter:25 ~f ~x0:[| 1. |] () in
  Alcotest.(check bool) "not fully converged or tiny residual" true
    ((not r.Newton.converged) || r.Newton.residual < 1e-9)

let test_newton_respects_lower () =
  let f x = [| x.(0) +. 5. |] in
  let r = Newton.solve ~lower:[| 0. |] ~f ~x0:[| 1. |] ~max_iter:10 () in
  Alcotest.(check bool) "clipped at 0" true (r.Newton.solution.(0) >= 0.)

(* ------------------------------------------------------------ Apportion *)

let test_apportion_exact () =
  let shares = Apportion.largest_remainder ~budget:10 [| 1.; 1.; 2.; 1. |] in
  Alcotest.(check (array int)) "shares" [| 2; 2; 4; 2 |] shares

let test_apportion_remainders () =
  let shares = Apportion.largest_remainder ~budget:10 [| 1.; 1.; 1. |] in
  Alcotest.(check int) "total" 10 (Array.fold_left ( + ) 0 shares);
  Array.iter (fun s -> Alcotest.(check bool) "3 or 4" true (s = 3 || s = 4)) shares

let test_apportion_minimum () =
  let shares = Apportion.largest_remainder ~minimum:2 ~budget:10 [| 0.; 0.; 100. |] in
  Alcotest.(check int) "total" 10 (Array.fold_left ( + ) 0 shares);
  Array.iter (fun s -> Alcotest.(check bool) ">= min" true (s >= 2)) shares;
  Alcotest.(check int) "heavy gets the spare" 6 shares.(2)

let test_apportion_zero_weights () =
  let shares = Apportion.largest_remainder ~budget:7 [| 0.; 0. |] in
  Alcotest.(check int) "total" 7 (Array.fold_left ( + ) 0 shares)

let test_apportion_property () =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 10 in
        let* ws = array_size (return n) (float_range 0. 10.) in
        let* budget = int_range 0 100 in
        return (ws, budget))
  in
  let prop (ws, budget) =
    let shares = Apportion.largest_remainder ~budget ws in
    Array.fold_left ( + ) 0 shares = budget && Array.for_all (fun s -> s >= 0) shares
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"apportionment sums to budget" gen prop)

let test_proportional_caps () =
  let shares = Apportion.proportional_caps ~budget:20 ~demands:[| 3; 5; 2 |] () in
  Alcotest.(check int) "total" 20 (Array.fold_left ( + ) 0 shares);
  Alcotest.(check bool) "each >= demand" true
    (shares.(0) >= 3 && shares.(1) >= 5 && shares.(2) >= 2)

(* ---------------------------------------------------------------- Stats *)

let test_stats_moments () =
  let t = Stats.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check_float "mean" 5. (Stats.mean t);
  check_float_loose "variance" (32. /. 7.) (Stats.variance t);
  check_float "min" 2. (Stats.min_value t);
  check_float "max" 9. (Stats.max_value t)

let test_stats_ci () =
  let t = Stats.of_list [ 10.; 12.; 9.; 11.; 10.; 12.; 9.; 11.; 10.; 11. ] in
  let lo, hi = Stats.confidence_interval95 t in
  Alcotest.(check bool) "mean inside CI" true (lo < Stats.mean t && Stats.mean t < hi);
  Alcotest.(check bool) "CI nontrivial" true (hi -. lo > 0.)

let test_stats_t_quantile () =
  check_float "df=1" 12.706 (Stats.t_quantile ~df:1);
  check_float "df=10" 2.228 (Stats.t_quantile ~df:10);
  check_float "df huge" 1.96 (Stats.t_quantile ~df:10_000);
  (* Interpolation is monotone between table entries. *)
  let t13 = Stats.t_quantile ~df:13 in
  Alcotest.(check bool) "monotone" true
    (t13 < Stats.t_quantile ~df:12 && t13 > Stats.t_quantile ~df:15)

let test_batch_means () =
  let t = Stats.batch_means ~batch:2 [ 1.; 3.; 5.; 7.; 100. ] in
  Alcotest.(check int) "two full batches" 2 (Stats.count t);
  check_float "mean of batch means" 4. (Stats.mean t)

let () =
  Alcotest.run "numeric"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
        ] );
      ( "mat",
        [
          Alcotest.test_case "multiply" `Quick test_mat_mul;
          Alcotest.test_case "transpose/identity" `Quick test_mat_transpose_identity;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve 2x2" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "random roundtrip (property)" `Quick test_lu_random_roundtrip;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic optimum" `Quick test_simplex_basic;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "strong duality" `Quick test_simplex_duals;
          Alcotest.test_case "transportation problem" `Quick test_simplex_transportation;
          Alcotest.test_case "strong duality (property)" `Quick
            test_simplex_strong_duality_property;
        ] );
      ( "simplex-revised",
        [
          Alcotest.test_case "fixed cases" `Quick test_revised_matches_dense_basics;
          Alcotest.test_case "infeasible/unbounded" `Quick test_revised_infeasible_unbounded;
          Alcotest.test_case "matches dense (property)" `Quick
            test_revised_agrees_with_dense_property;
          Alcotest.test_case "LU transpose solve" `Quick test_lu_solve_transposed;
          Alcotest.test_case "LU transpose solve (pivoted)" `Quick
            test_lu_solve_transposed_with_pivoting;
        ] );
      ( "lp",
        [
          Alcotest.test_case "maximize" `Quick test_lp_maximize;
          Alcotest.test_case "ge and eq rows" `Quick test_lp_ge_and_eq;
          Alcotest.test_case "free variable" `Quick test_lp_free_variable;
          Alcotest.test_case "shifted lower bound" `Quick test_lp_shifted_bound;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "random LPs (property)" `Quick test_lp_random_feasibility;
          Alcotest.test_case "O(1) accessors on a 10k-var model" `Quick
            test_lp_large_model_access;
        ] );
      ( "newton",
        [
          Alcotest.test_case "scalar root" `Quick test_newton_scalar;
          Alcotest.test_case "2x2 system" `Quick test_newton_system;
          Alcotest.test_case "singular jacobian honesty" `Quick test_newton_singular_jacobian;
          Alcotest.test_case "lower clipping" `Quick test_newton_respects_lower;
        ] );
      ( "apportion",
        [
          Alcotest.test_case "exact split" `Quick test_apportion_exact;
          Alcotest.test_case "remainders" `Quick test_apportion_remainders;
          Alcotest.test_case "minimum floor" `Quick test_apportion_minimum;
          Alcotest.test_case "all-zero weights" `Quick test_apportion_zero_weights;
          Alcotest.test_case "sums to budget (property)" `Quick test_apportion_property;
          Alcotest.test_case "proportional caps" `Quick test_proportional_caps;
        ] );
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "confidence interval" `Quick test_stats_ci;
          Alcotest.test_case "t quantiles" `Quick test_stats_t_quantile;
          Alcotest.test_case "batch means" `Quick test_batch_means;
        ] );
    ]
