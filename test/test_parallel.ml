(* Tests for the multicore layer: the domain pool, parallel replication
   determinism, mergeable statistics, derived replication seeds, and the
   simplex pricing modes. *)

module Pool = Bufsize_pool.Pool
module Stats = Bufsize_numeric.Stats
module Simplex = Bufsize_numeric.Simplex
module Rng = Bufsize_prob.Rng
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Sim_run = Bufsize_sim.Sim_run
module Replicate = Bufsize_sim.Replicate

(* Tests must exercise real multi-domain execution even on single-core CI
   runners, so they lift the core-count cap. *)
let with_pool k f =
  let pool = Pool.create ~oversubscribe:true k in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ pool *)

(* Uneven per-item work so a work-stealing bug that permutes results would
   actually be exercised: item i spins proportionally to a hash of i. *)
let busy_square i =
  let spin = 1 + ((i * 2654435761) land 0xff) in
  let acc = ref 0 in
  for k = 1 to spin do
    acc := (!acc + (k * k)) land max_int
  done;
  ignore !acc;
  i * i

let test_pool_matches_sequential () =
  let input = Array.init 257 Fun.id in
  let expected = Array.map busy_square input in
  List.iter
    (fun k ->
      with_pool k (fun pool ->
          let got = Pool.map_array ~pool busy_square input in
          Alcotest.(check (array int))
            (Printf.sprintf "pool size %d" k)
            expected got))
    [ 1; 2; 3 ]

let test_pool_mapi_indices () =
  let input = Array.make 100 "x" in
  with_pool 3 (fun pool ->
      let got = Pool.mapi_array ~pool (fun i s -> (i, s)) input in
      Array.iteri
        (fun i (j, s) ->
          Alcotest.(check int) "index" i j;
          Alcotest.(check string) "value" "x" s)
        got)

let test_pool_empty_and_singleton () =
  with_pool 3 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array ~pool busy_square [||]);
      Alcotest.(check (array int)) "singleton" [| 49 |] (Pool.map_array ~pool busy_square [| 7 |]))

let test_pool_exception_propagates () =
  with_pool 3 (fun pool ->
      Alcotest.check_raises "worker exception reaches caller" (Failure "item 17") (fun () ->
          ignore
            (Pool.map_array ~pool
               (fun i -> if i = 17 then failwith "item 17" else busy_square i)
               (Array.init 64 Fun.id)));
      (* the pool must still be usable after a failed batch *)
      Alcotest.(check (array int))
        "pool survives" [| 0; 1; 4 |]
        (Pool.map_array ~pool (fun i -> i * i) [| 0; 1; 2 |]))

let test_pool_nested_calls_fall_back () =
  (* A nested map_array on the same pool must not deadlock: the inner call
     finds the pool busy and runs sequentially on the calling domain. *)
  with_pool 2 (fun pool ->
      let got =
        Pool.map_array ~pool
          (fun i ->
            let inner = Pool.map_array ~pool (fun j -> i + j) (Array.init 4 Fun.id) in
            Array.fold_left ( + ) 0 inner)
          (Array.init 16 Fun.id)
      in
      let expected = Array.init 16 (fun i -> (4 * i) + 6) in
      Alcotest.(check (array int)) "nested totals" expected got)

(* ------------------------------------------------- replication determinism *)

let single_bus_spec ~lambda ~mu ~k =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:mu "bus" in
  let p0 = Topology.add_processor b ~bus:bus0 "src" in
  let p1 = Topology.add_processor b ~bus:bus0 "dst" in
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = lambda } ] in
  let allocation =
    Buffer_alloc.make [ (bus0, Traffic.Proc_client p0, k); (bus0, Traffic.Proc_client p1, 1) ]
  in
  { (Sim_run.default_spec ~traffic ~allocation) with Sim_run.horizon = 2000.; warmup = 100. }

let check_stats_identical name a b =
  let bits f = Int64.bits_of_float f in
  Alcotest.(check int) (name ^ " count") (Stats.count a) (Stats.count b);
  Alcotest.(check int64) (name ^ " mean") (bits (Stats.mean a)) (bits (Stats.mean b));
  Alcotest.(check int64) (name ^ " variance") (bits (Stats.variance a)) (bits (Stats.variance b));
  Alcotest.(check int64) (name ^ " min") (bits (Stats.min_value a)) (bits (Stats.min_value b));
  Alcotest.(check int64) (name ^ " max") (bits (Stats.max_value a)) (bits (Stats.max_value b))

let check_aggregate_identical (a : Replicate.aggregate) (b : Replicate.aggregate) =
  Alcotest.(check int) "replications" a.Replicate.replications b.Replicate.replications;
  let per name xa xb =
    Alcotest.(check int) (name ^ " arity") (Array.length xa) (Array.length xb);
    Array.iteri (fun i sa -> check_stats_identical (Printf.sprintf "%s[%d]" name i) sa xb.(i)) xa
  in
  per "per_proc_lost" a.Replicate.per_proc_lost b.Replicate.per_proc_lost;
  per "per_proc_offered" a.Replicate.per_proc_offered b.Replicate.per_proc_offered;
  per "per_proc_latency" a.Replicate.per_proc_latency b.Replicate.per_proc_latency;
  check_stats_identical "total_lost" a.Replicate.total_lost b.Replicate.total_lost;
  check_stats_identical "total_offered" a.Replicate.total_offered b.Replicate.total_offered;
  check_stats_identical "loss_fraction" a.Replicate.loss_fraction b.Replicate.loss_fraction;
  check_stats_identical "mean_sojourn" a.Replicate.mean_sojourn b.Replicate.mean_sojourn

let test_replicate_pool_size_invariant () =
  let spec = single_bus_spec ~lambda:2.0 ~mu:3.0 ~k:4 in
  let sequential = with_pool 1 (fun pool -> Replicate.run ~replications:8 ~pool spec) in
  let parallel = with_pool 3 (fun pool -> Replicate.run ~replications:8 ~pool spec) in
  check_aggregate_identical sequential parallel

(* --------------------------------------------------------- derived seeds *)

let test_derive_seed_injective () =
  (* The old scheme (seed + 1000 * i) aliased replication streams whenever
     two user seeds were < 1000 * replications apart; the hash must keep
     every (seed, index) pair distinct over a realistic span. *)
  let seen = Hashtbl.create 4096 in
  for seed = 0 to 40 do
    for index = 0 to 31 do
      let d = Rng.derive_seed seed index in
      Alcotest.(check bool)
        (Printf.sprintf "nonnegative (%d,%d)" seed index)
        true (d >= 0);
      (match Hashtbl.find_opt seen d with
      | Some (s0, i0) ->
          Alcotest.failf "derive_seed collision: (%d,%d) and (%d,%d) -> %d" s0 i0 seed index d
      | None -> ());
      Hashtbl.add seen d (seed, index)
    done
  done;
  (* the specific aliasing of the old additive scheme must be gone *)
  Alcotest.(check bool) "seed 1/rep 1 vs seed 1001/rep 0" true
    (Rng.derive_seed 1 1 <> Rng.derive_seed 1001 0)

(* ------------------------------------------------------------ Stats.merge *)

let test_merge_matches_single_pass () =
  let prop (xs, cut) =
    let xs = Array.of_list xs in
    let n = Array.length xs in
    let cut = if n = 0 then 0 else cut mod (n + 1) in
    let left = Array.sub xs 0 cut and right = Array.sub xs cut (n - cut) in
    let merged = Stats.merge (Stats.of_list (Array.to_list left)) (Stats.of_list (Array.to_list right)) in
    let whole = Stats.of_list (Array.to_list xs) in
    let close a b =
      let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
      Float.abs (a -. b) <= 1e-9 *. scale
    in
    Stats.count merged = Stats.count whole
    && (n = 0 || close (Stats.mean merged) (Stats.mean whole))
    && (n < 2 || close (Stats.variance merged) (Stats.variance whole))
    && Stats.min_value merged = Stats.min_value whole
    && Stats.max_value merged = Stats.max_value whole
  in
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair (list_size (int_bound 60) (float_bound_exclusive 1000.)) (int_bound 1000))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"merge = single-pass over concatenation" gen prop)

let test_merge_empty_identity () =
  let s = Stats.of_list [ 1.; 2.; 3. ] in
  let e = Stats.create () in
  check_stats_identical "left identity" s (Stats.merge e s);
  check_stats_identical "right identity" s (Stats.merge s e);
  Alcotest.(check int) "both empty" 0 (Stats.count (Stats.merge e (Stats.create ())));
  (* Merging empties never manufactures values: mean stays NaN, extrema
     stay at their empty sentinels, and no NaN leaks into a later merge. *)
  let ee = Stats.merge e (Stats.create ()) in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Stats.mean ee));
  check_stats_identical "empty merge then data" s (Stats.merge ee s)

let test_merge_single_samples () =
  (* Single-observation shards: the smallest non-empty case.  Variance of
     one sample is NaN by convention; merging two singles must produce the
     exact two-sample statistics, not NaN. *)
  let a = Stats.of_list [ 4. ] and b = Stats.of_list [ 10. ] in
  Alcotest.(check bool) "single variance nan" true (Float.is_nan (Stats.variance a));
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 2 (Stats.count m);
  Alcotest.(check (float 1e-12)) "mean" 7. (Stats.mean m);
  Alcotest.(check (float 1e-12)) "variance" 18. (Stats.variance m);
  Alcotest.(check (float 1e-12)) "min" 4. (Stats.min_value m);
  Alcotest.(check (float 1e-12)) "max" 10. (Stats.max_value m);
  check_stats_identical "single + empty" a (Stats.merge a (Stats.create ()));
  check_stats_identical "empty + single" a (Stats.merge (Stats.create ()) a)

(* -------------------------------------------------------- simplex pricing *)

(* Random standard-form LPs with a known feasible point (b = A x0 for a
   nonnegative x0).  Partial pricing must reach the same optimum as the
   default Dantzig pricing — only the pivot path may differ. *)
let random_standard rng ~m ~n =
  let a = Array.init (m * n) (fun _ -> Rng.float_range rng (-1.) 1.) in
  let x0 = Array.init n (fun _ -> Rng.float_range rng 0. 2.) in
  let b =
    Array.init m (fun i ->
        let acc = ref 0. in
        for j = 0 to n - 1 do
          acc := !acc +. (a.((i * n) + j) *. x0.(j))
        done;
        !acc)
  in
  (* Bounded feasible region: costs bounded below by adding the simplex of
     total mass; keep costs positive so minimization is bounded. *)
  let c = Array.init n (fun _ -> Rng.float_range rng 0.1 2.) in
  { Simplex.nrows = m; ncols = n; a; b; c }

let test_partial_pricing_agrees_with_dantzig () =
  let rng = Rng.create 20260807 in
  let solve_with mode std =
    Unix.putenv "BUFSIZE_SIMPLEX_PRICING" mode;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "BUFSIZE_SIMPLEX_PRICING" "dantzig")
      (fun () -> Simplex.solve std)
  in
  for case = 1 to 20 do
    let std = random_standard rng ~m:6 ~n:14 in
    let d = solve_with "dantzig" std and p = solve_with "partial" std in
    match (d, p) with
    | Simplex.Optimal sd, Simplex.Optimal sp ->
        let scale = Float.max 1. (Float.abs sd.Simplex.objective) in
        Alcotest.(check bool)
          (Printf.sprintf "case %d objectives agree" case)
          true
          (Float.abs (sd.Simplex.objective -. sp.Simplex.objective) <= 1e-6 *. scale);
        Alcotest.(check bool)
          (Printf.sprintf "case %d partial solution feasible" case)
          true
          (Simplex.feasibility_error std sp.Simplex.x <= 1e-6)
    | Simplex.Infeasible, Simplex.Infeasible | Simplex.Unbounded, Simplex.Unbounded -> ()
    | _ -> Alcotest.failf "case %d: pricing modes disagree on LP status" case
  done

let test_pricing_env_rejects_garbage () =
  Unix.putenv "BUFSIZE_SIMPLEX_PRICING" "fancy";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "BUFSIZE_SIMPLEX_PRICING" "dantzig")
    (fun () ->
      let std = random_standard (Rng.create 7) ~m:3 ~n:6 in
      match Simplex.solve std with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument for unknown pricing mode")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential map" `Quick test_pool_matches_sequential;
          Alcotest.test_case "mapi indices" `Quick test_pool_mapi_indices;
          Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagates;
          Alcotest.test_case "nested calls fall back" `Quick test_pool_nested_calls_fall_back;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "aggregate invariant under pool size" `Quick
            test_replicate_pool_size_invariant;
        ] );
      ("seeds", [ Alcotest.test_case "derive_seed injective" `Quick test_derive_seed_injective ]);
      ( "stats-merge",
        [
          Alcotest.test_case "merge = single pass (qcheck)" `Quick test_merge_matches_single_pass;
          Alcotest.test_case "empty identities" `Quick test_merge_empty_identity;
          Alcotest.test_case "single-sample shards" `Quick test_merge_single_samples;
        ] );
      ( "simplex-pricing",
        [
          Alcotest.test_case "partial agrees with dantzig" `Quick
            test_partial_pricing_agrees_with_dantzig;
          Alcotest.test_case "unknown mode rejected" `Quick test_pricing_env_rejects_garbage;
        ] );
    ]
