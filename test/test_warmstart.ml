(* Tests for the warm-start & incremental-solve machinery: LU storage
   reuse, warm simplex bases (acceptance, garbage and singular fallback),
   the exact-key solve cache, CTMC rate patching and seeded iterations,
   and chunked pool determinism. *)

module Lp = Bufsize_numeric.Lp
module Lu = Bufsize_numeric.Lu
module Mat = Bufsize_numeric.Mat
module Solve_cache = Bufsize_numeric.Solve_cache
module Simplex_revised = Bufsize_numeric.Simplex_revised
module Ctmc = Bufsize_prob.Ctmc
module Pool = Bufsize_pool.Pool

let check_float = Alcotest.(check (float 1e-9))

(* Restore the process-wide cache / warm-start switches around a test so
   test order never matters. *)
let with_clean_globals f =
  let cached = Solve_cache.enabled () and warm = Lp.warm_start_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Solve_cache.set_enabled cached;
      Lp.set_warm_start warm;
      Solve_cache.clear_all ())
    f

(* ------------------------------------------------------------------- lu *)

let mat_a = Mat.of_rows [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 2. |] |]
let mat_b = Mat.of_rows [| [| 2.; 1.; 1. |]; [| 1.; 5.; 0. |]; [| 1.; 0.; 3. |] |]

let test_refactorize_matches_fresh () =
  let f = Lu.factorize mat_a in
  (match Lu.refactorize f mat_b with
  | Ok () -> ()
  | Error k -> Alcotest.failf "refactorize failed at step %d" k);
  let b = [| 1.; 2.; 3. |] in
  let reused = Lu.solve_factorized f b in
  let fresh = Lu.solve_factorized (Lu.factorize mat_b) b in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "component %d bitwise" i)
        true
        (Int64.bits_of_float x = Int64.bits_of_float fresh.(i)))
    reused

let test_refactorize_singular_then_recover () =
  let f = Lu.factorize mat_a in
  let singular = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 2.; 4.; 6. |]; [| 0.; 1.; 1. |] |] in
  (match Lu.refactorize f singular with
  | Ok () -> Alcotest.fail "refactorize accepted a singular matrix"
  | Error _ -> ());
  (* A later refactorize fully rewrites the partial elimination. *)
  (match Lu.refactorize f mat_a with
  | Ok () -> ()
  | Error k -> Alcotest.failf "recovery refactorize failed at step %d" k);
  let x = Lu.solve_factorized f [| 5.; 5.; 3. |] in
  let r = Lu.residual_norm mat_a x [| 5.; 5.; 3. |] in
  Alcotest.(check bool) "recovered solve is exact" true (r <= 1e-10)

let test_refactorize_dim_mismatch () =
  let f = Lu.factorize mat_a in
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Lu.refactorize: dimension mismatch") (fun () ->
      ignore (Lu.refactorize f (Mat.identity 2)))

(* ------------------------------------------------------------ warm bases *)

(* max 3x + 2y st x + y <= 4, x <= 3, y <= 3: optimum 11 at (3, 1). *)
let small_lp () =
  let lp = Lp.create ~name:"warm-test" Lp.Maximize in
  let x = Lp.add_var ~name:"x" lp in
  let y = Lp.add_var ~name:"y" lp in
  Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constraint lp [ (1., x) ] Lp.Le 3.;
  Lp.add_constraint lp [ (1., y) ] Lp.Le 3.;
  Lp.set_objective lp [ (3., x); (2., y) ];
  lp

let solve_opt ?warm_basis lp =
  match Lp.solve ~engine:Lp.Revised ?warm_basis lp with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_warm_basis_resolve () =
  let cold = solve_opt (small_lp ()) in
  check_float "cold objective" 11. cold.Lp.objective;
  let acc0, _ = Simplex_revised.warm_stats () in
  let warm = solve_opt ~warm_basis:cold.Lp.basis (small_lp ()) in
  let acc1, _ = Simplex_revised.warm_stats () in
  check_float "warm objective" 11. warm.Lp.objective;
  Alcotest.(check bool) "warm basis accepted" true (acc1 > acc0)

let test_garbage_basis_falls_back () =
  let cold = solve_opt (small_lp ()) in
  let _, rej0 = Simplex_revised.warm_stats () in
  (* Duplicate indices: structurally invalid, must be rejected cheaply. *)
  let warm = solve_opt ~warm_basis:[| 0; 0; 0 |] (small_lp ()) in
  let _, rej1 = Simplex_revised.warm_stats () in
  check_float "fallback objective" cold.Lp.objective warm.Lp.objective;
  Alcotest.(check bool) "garbage basis rejected" true (rej1 > rej0)

let test_singular_basis_falls_back () =
  (* x and y have identical constraint columns, so the warm basis {x, y}
     is numerically singular: refactorization must fail gracefully and the
     cold solve must still deliver a clean optimum — never NaN. *)
  let lp () =
    let lp = Lp.create ~name:"singular-warm" Lp.Minimize in
    let x = Lp.add_var ~name:"x" lp in
    let y = Lp.add_var ~name:"y" lp in
    Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Eq 1.;
    Lp.add_constraint lp [ (1., x); (1., y) ] Lp.Le 2.;
    Lp.set_objective lp [ (1., x); (2., y) ];
    lp
  in
  let _, rej0 = Simplex_revised.warm_stats () in
  let o, diag = Lp.solve_diag ~warm_basis:[| 0; 1 |] (lp ()) in
  let _, rej1 = Simplex_revised.warm_stats () in
  (match o with
  | Some (Lp.Optimal s) ->
      Alcotest.(check bool) "objective finite" true (Float.is_finite s.Lp.objective);
      check_float "optimum" 1. s.Lp.objective
  | _ -> Alcotest.fail "singular warm basis broke the solve");
  (match diag.Bufsize_resilience.Resilience.status with
  | Bufsize_resilience.Resilience.Failed r -> Alcotest.failf "diagnostic Failed: %s" r
  | _ -> ());
  Alcotest.(check bool) "singular basis rejected" true (rej1 > rej0)

let test_warm_registry_hand_off () =
  with_clean_globals (fun () ->
      Solve_cache.set_enabled false;
      (* cache off so the second solve really re-runs *)
      Lp.set_warm_start true;
      let first =
        match Lp.solve_diag (small_lp ()) with
        | Some (Lp.Optimal s), _ -> s
        | _ -> Alcotest.fail "first solve failed"
      in
      let acc0, _ = Simplex_revised.warm_stats () in
      let second =
        match Lp.solve_diag (small_lp ()) with
        | Some (Lp.Optimal s), _ -> s
        | _ -> Alcotest.fail "second solve failed"
      in
      let acc1, _ = Simplex_revised.warm_stats () in
      check_float "same objective" first.Lp.objective second.Lp.objective;
      Alcotest.(check bool) "registry basis accepted" true (acc1 > acc0))

(* ------------------------------------------------------------ solve cache *)

let test_cache_hit_miss_lru () =
  with_clean_globals (fun () ->
      Solve_cache.set_enabled true;
      let c : int Solve_cache.t = Solve_cache.create ~capacity:2 "test" in
      Alcotest.(check (option int)) "initial miss" None (Solve_cache.find c "a");
      Solve_cache.add c "a" 1;
      Solve_cache.add c "b" 2;
      Alcotest.(check (option int)) "hit a" (Some 1) (Solve_cache.find c "a");
      Alcotest.(check (option int)) "hit b" (Some 2) (Solve_cache.find c "b");
      (* Capacity 2: inserting c evicts the least recently used (a was
         touched after b? — order: find a, find b, so a is older). *)
      Solve_cache.add c "c" 3;
      Alcotest.(check (option int)) "lru evicted" None (Solve_cache.find c "a");
      Alcotest.(check (option int)) "recent kept" (Some 2) (Solve_cache.find c "b");
      Alcotest.(check (option int)) "new kept" (Some 3) (Solve_cache.find c "c");
      Alcotest.(check bool) "hits counted" true (Solve_cache.hits c >= 4);
      Alcotest.(check bool) "misses counted" true (Solve_cache.misses c >= 2))

let test_cache_disabled () =
  with_clean_globals (fun () ->
      Solve_cache.set_enabled true;
      let c : int Solve_cache.t = Solve_cache.create "test-disabled" in
      Solve_cache.add c "k" 42;
      Alcotest.(check (option int)) "stored" (Some 42) (Solve_cache.find c "k");
      Solve_cache.set_enabled false;
      Alcotest.(check (option int)) "disabled find" None (Solve_cache.find c "k");
      let h = Solve_cache.hits c and m = Solve_cache.misses c in
      ignore (Solve_cache.find c "k");
      Alcotest.(check int) "no hit counted when off" h (Solve_cache.hits c);
      Alcotest.(check int) "no miss counted when off" m (Solve_cache.misses c);
      Solve_cache.set_enabled true;
      Alcotest.(check (option int)) "re-enabled find" (Some 42) (Solve_cache.find c "k"))

let test_lp_result_cache () =
  with_clean_globals (fun () ->
      Solve_cache.set_enabled true;
      Solve_cache.clear_all ();
      Lp.set_warm_start false;
      let h0, m0 = Lp.cache_stats () in
      let first =
        match Lp.solve_diag (small_lp ()) with
        | Some (Lp.Optimal s), _ -> s
        | _ -> Alcotest.fail "first solve failed"
      in
      let second =
        match Lp.solve_diag (small_lp ()) with
        | Some (Lp.Optimal s), _ -> s
        | _ -> Alcotest.fail "second solve failed"
      in
      let h1, m1 = Lp.cache_stats () in
      Alcotest.(check bool) "one miss then one hit" true (h1 = h0 + 1 && m1 = m0 + 1);
      Alcotest.(check bool) "bitwise identical objective" true
        (Int64.bits_of_float first.Lp.objective = Int64.bits_of_float second.Lp.objective))

let test_canonical_distinguishes () =
  let a = Lp.canonical (small_lp ()) in
  let b = Lp.canonical (small_lp ()) in
  Alcotest.(check string) "canonical is deterministic" a b;
  let lp = small_lp () in
  let other = Lp.create ~name:"warm-test" Lp.Maximize in
  let x = Lp.add_var ~name:"x" other in
  let y = Lp.add_var ~name:"y" other in
  Lp.add_constraint other [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constraint other [ (1., x) ] Lp.Le 3.;
  Lp.add_constraint other [ (1., y) ] Lp.Le 3.000000000000001;
  Lp.set_objective other [ (3., x); (2., y) ];
  Alcotest.(check bool) "one-ulp rhs difference changes the key" true
    (Lp.canonical lp <> Lp.canonical other)

(* Hammer one cache from several domains at once.  The invariants: a hit
   never returns a value that disagrees with the key it was stored under,
   the hit/miss counters account for every find exactly once, and
   concurrent inserts never push the table past its capacity. *)
let test_cache_concurrent_stress () =
  with_clean_globals (fun () ->
      Solve_cache.set_enabled true;
      let capacity = 32 in
      let c : int Solve_cache.t = Solve_cache.create ~capacity "stress" in
      let finds = Atomic.make 0 and wrong = Atomic.make 0 in
      let pool = Pool.create ~oversubscribe:true 4 in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          ignore
            (Pool.map_array ~pool ~chunk:1
               (fun d ->
                 let rng = Random.State.make [| 42 + d |] in
                 for _ = 1 to 2000 do
                   let k = Random.State.int rng 64 in
                   let key = Printf.sprintf "key-%d" k in
                   (match Solve_cache.find c key with
                   | Some v -> if v <> k then Atomic.incr wrong
                   | None -> Solve_cache.add c key k);
                   Atomic.incr finds
                 done)
               [| 0; 1; 2; 3 |]));
      Alcotest.(check int) "no torn values" 0 (Atomic.get wrong);
      Alcotest.(check int) "hits + misses = find calls" (Atomic.get finds)
        (Solve_cache.hits c + Solve_cache.misses c);
      Alcotest.(check bool) "never past capacity" true (Solve_cache.length c <= capacity))

(* ------------------------------------------------------------------ ctmc *)

let ring_rates = [ (0, 1, 2.); (1, 2, 1.5); (2, 0, 0.75); (0, 2, 0.25) ]

let test_patch_rates_bitwise () =
  let t0 = Ctmc.of_rates 3 ring_rates in
  let scaled = List.map (fun (i, j, r) -> (i, j, r *. 1.5)) ring_rates in
  match Ctmc.patch_rates t0 scaled with
  | None -> Alcotest.fail "patch_rates rejected a same-pattern change"
  | Some patched ->
      let rebuilt = Ctmc.of_rates 3 scaled in
      for i = 0 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "exit %d bitwise" i)
          true
          (Int64.bits_of_float (Ctmc.exit_rate patched i)
          = Int64.bits_of_float (Ctmc.exit_rate rebuilt i));
        for j = 0 to 2 do
          if i <> j then
            Alcotest.(check bool)
              (Printf.sprintf "rate %d->%d bitwise" i j)
              true
              (Int64.bits_of_float (Ctmc.rate patched i j)
              = Int64.bits_of_float (Ctmc.rate rebuilt i j))
        done
      done

let test_patch_rates_pattern_shift () =
  let t0 = Ctmc.of_rates 3 ring_rates in
  (* A transition at a position the pattern does not have. *)
  Alcotest.(check bool) "new position rejected" true
    (Ctmc.patch_rates t0 ((1, 0, 1.) :: ring_rates) = None);
  (* A previously present position vanishing. *)
  Alcotest.(check bool) "dropped position rejected" true
    (Ctmc.patch_rates t0 (List.tl ring_rates) = None);
  (* Invalid triples. *)
  Alcotest.(check bool) "self loop rejected" true
    (Ctmc.patch_rates t0 [ (0, 0, 1.) ] = None)

let test_seeded_stationary () =
  let t0 = Ctmc.of_rates 3 ring_rates in
  let nearby = Ctmc.of_rates 3 (List.map (fun (i, j, r) -> (i, j, r *. 1.1)) ring_rates) in
  let seed = Ctmc.stationary_iterative t0 in
  let cold = Ctmc.stationary_iterative nearby in
  let warm = Ctmc.stationary_iterative ~init:seed nearby in
  Array.iteri (fun i p -> check_float (Printf.sprintf "pi(%d)" i) cold.(i) p) warm;
  (* Malformed seeds are ignored, not fatal. *)
  let junk = Ctmc.stationary_iterative ~init:[| 1.; 2. |] nearby in
  Array.iteri (fun i p -> check_float (Printf.sprintf "junk pi(%d)" i) cold.(i) p) junk

(* ------------------------------------------------------------------ pool *)

let test_chunked_pool_determinism () =
  let input = Array.init 101 (fun i -> i) in
  let expected = Array.mapi (fun i x -> (i * 3) + x) input in
  let pool = Pool.create ~oversubscribe:true 3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun chunk ->
          let got = Pool.mapi_array ~pool ~chunk (fun i x -> (i * 3) + x) input in
          Alcotest.(check (array int))
            (Printf.sprintf "chunk %d" chunk)
            expected got)
        [ 1; 3; 7; 64; 1000 ])

let () =
  Alcotest.run "warmstart"
    [
      ( "lu-reuse",
        [
          Alcotest.test_case "refactorize matches fresh" `Quick test_refactorize_matches_fresh;
          Alcotest.test_case "singular then recover" `Quick
            test_refactorize_singular_then_recover;
          Alcotest.test_case "dimension mismatch" `Quick test_refactorize_dim_mismatch;
        ] );
      ( "warm-basis",
        [
          Alcotest.test_case "re-solve from optimal basis" `Quick test_warm_basis_resolve;
          Alcotest.test_case "garbage basis falls back" `Quick test_garbage_basis_falls_back;
          Alcotest.test_case "singular basis falls back" `Quick test_singular_basis_falls_back;
          Alcotest.test_case "registry hand-off" `Quick test_warm_registry_hand_off;
        ] );
      ( "solve-cache",
        [
          Alcotest.test_case "hit, miss, lru" `Quick test_cache_hit_miss_lru;
          Alcotest.test_case "disabled mode" `Quick test_cache_disabled;
          Alcotest.test_case "lp result cache" `Quick test_lp_result_cache;
          Alcotest.test_case "canonical key" `Quick test_canonical_distinguishes;
          Alcotest.test_case "concurrent stress" `Quick test_cache_concurrent_stress;
        ] );
      ( "ctmc-incremental",
        [
          Alcotest.test_case "patch bitwise" `Quick test_patch_rates_bitwise;
          Alcotest.test_case "pattern shifts rejected" `Quick test_patch_rates_pattern_shift;
          Alcotest.test_case "seeded stationary" `Quick test_seeded_stationary;
        ] );
      ( "pool-chunking",
        [ Alcotest.test_case "chunked determinism" `Quick test_chunked_pool_determinism ] );
    ]
