(* A NoC-style 3x3 mesh with DAMQ shared-buffer routers, end to end.

   Demonstrates the arbitrary-topology pipeline:
   - a mesh grid built in one call, with deterministic XY routing;
   - network interfaces (one per router) exchanging multi-hop flows;
   - the bridge split folding transit traffic into per-edge bridge
     buffers along the routed paths;
   - CTMDP sizing, then the static-partition vs DAMQ shared-pool
     comparison on the routers marked shared.

   Run with:  dune exec examples/noc_mesh.exe *)

module B = Bufsize

let () =
  let b = B.Topology.builder () in
  let cells = B.Topology.mesh b ~service_rate:4.0 ~rows:3 ~cols:3 "noc" in
  (* One network interface per router; the four edge-center routers use a
     DAMQ shared pool. *)
  let nis =
    Array.mapi
      (fun r row ->
        Array.mapi
          (fun c bus -> B.Topology.add_processor b ~bus (Printf.sprintf "ni_r%dc%d" r c))
          row)
      cells
  in
  List.iter
    (fun (r, c) -> B.Topology.mark_shared b cells.(r).(c))
    [ (0, 1); (1, 0); (1, 2); (2, 1) ];
  let topo = B.Topology.finalize b in

  (* Corner-to-corner and cross traffic: every flow crosses several
     bridges, so transit load dominates local load. *)
  let flows =
    [
      { B.Traffic.src = nis.(0).(0); dst = nis.(2).(2); rate = 0.5 };
      { B.Traffic.src = nis.(2).(2); dst = nis.(0).(0); rate = 0.5 };
      { B.Traffic.src = nis.(0).(2); dst = nis.(2).(0); rate = 0.35 };
      { B.Traffic.src = nis.(1).(0); dst = nis.(1).(2); rate = 0.6 };
      { B.Traffic.src = nis.(2).(1); dst = nis.(0).(1); rate = 0.4 };
    ]
  in
  let traffic = B.Traffic.create topo flows in

  Format.printf "== 3x3 mesh, XY-routed ==@.";
  (match B.Topology.route topo cells.(0).(0) cells.(2).(2) with
  | Some path ->
      Format.printf "route r0c0 -> r2c2 (%d hops): %s@.@." (List.length path)
        (String.concat " -> "
           (List.map
              (fun id -> (B.Topology.bridge topo id).B.Topology.bridge_name)
              path))
  | None -> assert false);

  (* The split: one subsystem per bus, transit flows folded into bridge
     buffers along every routed path. *)
  let split = B.Splitting.split traffic in
  Format.printf "== Split at bridges ==@.%a@.@." (fun ppf -> B.Splitting.pp ppf topo) split;

  (* Static partition vs DAMQ shared pool on the routers marked shared. *)
  let config =
    { (B.Sizing.default_config ~budget:54) with B.Sizing.max_states = 48 }
  in
  let sizing, report = B.Sizing.compare_sharing config traffic in
  Format.printf "== CTMDP sizing ==@.%a@.@.%a@.@." B.Sizing.pp_summary sizing
    (fun ppf -> B.Buffer_alloc.pp topo ppf)
    sizing.B.Sizing.allocation;
  Format.printf "== Static partition vs DAMQ shared pool ==@.%a@.@."
    B.Sizing.pp_sharing_report report;

  (* DOT render with per-flow multi-hop route overlays; paste into
     [dot -Tsvg] to inspect. *)
  Format.printf "== DOT (routes overlay) ==@.%s@." (B.Dot.with_routes traffic)
