module Mat = Bufsize_numeric.Mat
module Vec = Bufsize_numeric.Vec
module Lu = Bufsize_numeric.Lu
module Sparse = Bufsize_numeric.Sparse
module Obs = Bufsize_obs.Obs

(* Stationary-solve telemetry: total uniformized sweeps, how many solves
   took the iterative path, and the balance residuals of accepted
   distributions. *)
let m_iterations = Obs.counter "ctmc.iterations"
let m_iterative_solves = Obs.counter "ctmc.iterative_solves"
let h_residual = Obs.histogram "ctmc.residual"

(* The generator is held sparse (CSR, diagonal included): buffer-occupancy
   CTMDPs have a handful of arrival/service neighbours per state, so the
   O(n^2) dense matrix was the memory wall for everything downstream.
   Dense matrices only appear in the small-n direct solves and in the
   explicitly dense accessors ([generator], [uniformize]). *)

type t = {
  n : int;
  q : Sparse.t;  (* full generator, diagonal included *)
  exit : float array;  (* exit.(i) = -Q_ii *)
}

(* Largest n solved by direct dense elimination; beyond it the stationary
   distribution comes from uniformized power iteration (sparse, O(nnz) per
   sweep) and no dense n x n matrix is ever allocated. *)
let dense_threshold = 512

let of_rates n rates =
  if n <= 0 then invalid_arg "Ctmc.of_rates: need at least one state";
  List.iter
    (fun (i, j, r) ->
      if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Ctmc.of_rates: state out of range";
      if i = j then invalid_arg "Ctmc.of_rates: self loop";
      if r < 0. then invalid_arg "Ctmc.of_rates: negative rate")
    rates;
  let off = Sparse.of_triplets ~rows:n ~cols:n rates in
  (* Diagonal = minus the (column-ascending) off-diagonal row sum — the
     same accumulation order the dense representation used. *)
  let exit = Array.make n 0. in
  for i = 0 to n - 1 do
    let out = ref 0. in
    Sparse.iter_row off i (fun j v -> if j <> i then out := !out +. v);
    exit.(i) <- !out
  done;
  let diag = ref [] in
  for i = n - 1 downto 0 do
    if exit.(i) <> 0. then diag := (i, i, -.exit.(i)) :: !diag
  done;
  let q =
    Sparse.of_triplets ~rows:n ~cols:n
      (List.rev_append (List.rev rates) !diag)
  in
  { n; q; exit }

(* Incremental re-rate: when a sweep changes only the numbers and not the
   sparsity pattern, rebuild the CSR values in place of a full [of_rates].
   The accumulation mirrors [of_rates] exactly — duplicates summed in list
   order per position, exit rates re-summed in ascending-column order — so
   a successful patch is bitwise-identical to the rebuild.  Any pattern
   change (a rate at a position the chain does not have, a previously
   present position accumulating to zero, an exit vanishing or appearing)
   returns [None] and the caller rebuilds. *)
let patch_rates t rates =
  let n = t.n in
  let ok =
    List.for_all
      (fun (i, j, r) -> i >= 0 && i < n && j >= 0 && j < n && i <> j && r >= 0.)
      rates
  in
  if not ok then None
  else begin
    let nnz = Sparse.nnz t.q in
    let vals = Array.make nnz 0. in
    let touched = Array.make nnz false in
    let mismatch = ref false in
    List.iter
      (fun (i, j, r) ->
        if not !mismatch then
          match Sparse.index t.q i j with
          | None -> mismatch := true
          | Some k ->
              vals.(k) <- vals.(k) +. r;
              touched.(k) <- true)
      rates;
    if !mismatch then None
    else begin
      (* Every off-diagonal position must survive with a nonzero value
         (of_triplets would have dropped it otherwise, shifting the
         pattern). *)
      let exit = Array.make n 0. in
      (try
         for i = 0 to n - 1 do
           let out = ref 0. in
           for k = t.q.Sparse.row_ptr.(i) to t.q.Sparse.row_ptr.(i + 1) - 1 do
             let j = t.q.Sparse.col_idx.(k) in
             if j <> i then begin
               if (not touched.(k)) || vals.(k) = 0. then raise Exit;
               out := !out +. vals.(k)
             end
           done;
           exit.(i) <- !out
         done
       with Exit -> mismatch := true);
      if !mismatch then None
      else begin
        (try
           for i = 0 to n - 1 do
             match Sparse.index t.q i i with
             | Some k ->
                 if exit.(i) = 0. then raise Exit;
                 vals.(k) <- -.exit.(i)
             | None -> if exit.(i) <> 0. then raise Exit
           done
         with Exit -> mismatch := true);
        if !mismatch then None
        else Some { n; q = Sparse.with_values t.q vals; exit }
      end
    end
  end

let of_generator m =
  if m.Mat.rows <> m.Mat.cols then invalid_arg "Ctmc.of_generator: not square";
  let n = m.Mat.rows in
  for i = 0 to n - 1 do
    let sum = ref 0. in
    for j = 0 to n - 1 do
      let x = Mat.get m i j in
      if i <> j && x < 0. then invalid_arg "Ctmc.of_generator: negative off-diagonal";
      sum := !sum +. x
    done;
    if Float.abs !sum > 1e-8 then invalid_arg "Ctmc.of_generator: row does not sum to zero"
  done;
  let q = Sparse.of_dense m in
  let exit = Array.init n (fun i -> -.Mat.get m i i) in
  { n; q; exit }

let of_sparse_generator q =
  if q.Sparse.rows <> q.Sparse.cols then invalid_arg "Ctmc.of_sparse_generator: not square";
  let n = q.Sparse.rows in
  let exit = Array.make n 0. in
  for i = 0 to n - 1 do
    let sum = ref 0. in
    Sparse.iter_row q i (fun j v ->
        if i <> j && v < 0. then
          invalid_arg "Ctmc.of_sparse_generator: negative off-diagonal";
        if i = j then exit.(i) <- -.v;
        sum := !sum +. v);
    if Float.abs !sum > 1e-8 then
      invalid_arg "Ctmc.of_sparse_generator: row does not sum to zero"
  done;
  { n; q; exit }

let dim t = t.n
let generator t = Sparse.to_dense t.q
let sparse_generator t = t.q
let rate t i j = Sparse.get t.q i j
let exit_rate t i = t.exit.(i)

let stationary_dense t =
  (* Solve pi Q = 0 with the last balance equation replaced by sum pi = 1:
     transpose to Q' pi' = 0 and overwrite the final row with ones. *)
  let n = t.n in
  if n = 1 then [| 1. |]
  else begin
    let a = Mat.transpose (Sparse.to_dense t.q) in
    for j = 0 to n - 1 do
      Mat.set a (n - 1) j 1.
    done;
    let b = Array.make n 0. in
    b.(n - 1) <- 1.;
    let pi = Lu.solve a b in
    (* Clamp the tiny negatives produced by roundoff and renormalize. *)
    let pi = Array.map (fun p -> Float.max 0. p) pi in
    let total = Vec.sum pi in
    Array.map (fun p -> p /. total) pi
  end

(* States that communicate with [k] in the original chain (forward- and
   backward-reachable through positive rates).  Used to name the closed
   class blocking a direct stationary solve. *)
let communicating_class t k =
  let n = t.n in
  let forward = Array.make n false in
  let rec dfs i =
    if not forward.(i) then begin
      forward.(i) <- true;
      Sparse.iter_row t.q i (fun j v -> if j <> i && v > 0. then dfs j)
    end
  in
  dfs k;
  let rev = Array.make n [] in
  Sparse.iter t.q (fun i j v -> if i <> j && v > 0. then rev.(j) <- i :: rev.(j));
  let backward = Array.make n false in
  let rec bdfs i =
    if not backward.(i) then begin
      backward.(i) <- true;
      List.iter bdfs rev.(i)
    end
  in
  bdfs k;
  List.filter (fun i -> forward.(i) && backward.(i)) (List.init n Fun.id)

(* Grassmann–Taksar–Heyman: subtraction-free state elimination, the
   numerically preferred direct method.  Works on the off-diagonal rate
   matrix (GTH is row-scale invariant, so rates need no normalization).
   Returns [Error (`Reducible_class states)] when an eliminated state has
   no transition into the remaining block (chain not irreducible), naming
   the communicating class of the offending state — callers fall back to
   the LU path, which picks one closed class like the historical
   behavior, or report the class in a diagnostic. *)
let stationary_gth t =
  let n = t.n in
  if n = 1 then Ok [| 1. |]
  else begin
    let w = Array.make_matrix n n 0. in
    Sparse.iter t.q (fun i j v -> if i <> j then w.(i).(j) <- v);
    let exception Reducible of int in
    try
      for k = n - 1 downto 1 do
        let s = ref 0. in
        for j = 0 to k - 1 do
          s := !s +. w.(k).(j)
        done;
        if !s <= 0. then raise (Reducible k);
        for i = 0 to k - 1 do
          w.(i).(k) <- w.(i).(k) /. !s
        done;
        for i = 0 to k - 1 do
          let wik = w.(i).(k) in
          if wik <> 0. then
            for j = 0 to k - 1 do
              if j <> i then w.(i).(j) <- w.(i).(j) +. (wik *. w.(k).(j))
            done
        done
      done;
      let pi = Array.make n 0. in
      pi.(0) <- 1.;
      for k = 1 to n - 1 do
        let acc = ref 0. in
        for i = 0 to k - 1 do
          acc := !acc +. (pi.(i) *. w.(i).(k))
        done;
        pi.(k) <- acc.contents
      done;
      let total = Vec.sum pi in
      Ok (Array.map (fun p -> p /. total) pi)
    with Reducible k -> Error (`Reducible_class (communicating_class t k))
  end

let max_exit_rate t = Array.fold_left Float.max 0. t.exit

(* Uniformized power iteration: pi <- pi P with P = I + Q/Lambda, applied
   through the transposed SpMV so no matrix beyond the generator is ever
   formed.  Lambda = 2 max_i exit_i keeps every diagonal of P at >= 1/2
   (strong aperiodicity) — the near-minimal rate used by [uniformize]
   would make P almost periodic on symmetric chains and stall convergence. *)
let stationary_iterative_report ?(tol = 1e-13) ?(max_iter = 200_000) ?init t =
  let n = t.n in
  if n = 1 then ([| 1. |], 0, true)
  else begin
    Obs.incr m_iterative_solves;
    let lambda = Float.max (2. *. max_exit_rate t) 1e-300 in
    (* A previous stationary vector (sweep warm start) is accepted as the
       starting point when it is a plausible distribution of the right
       size; anything else falls back to uniform. *)
    let pi =
      match init with
      | Some p0
        when Array.length p0 = n
             && Array.for_all (fun x -> Float.is_finite x && x >= 0.) p0
             && Float.abs (Vec.sum p0 -. 1.) <= 1e-6 ->
          Array.copy p0
      | _ -> Array.make n (1. /. float_of_int n)
    in
    let qt_pi = Array.make n 0. in
    let continue = ref true in
    let iters = ref 0 in
    while !continue && !iters < max_iter do
      Sparse.mul_vec_t_into t.q pi qt_pi;
      let delta = ref 0. in
      for i = 0 to n - 1 do
        let step = qt_pi.(i) /. lambda in
        pi.(i) <- pi.(i) +. step;
        delta := Float.max !delta (Float.abs step)
      done;
      incr iters;
      if !delta < tol then continue := false
    done;
    let pi = Array.map (fun p -> Float.max 0. p) pi in
    let total = Vec.sum pi in
    Obs.add m_iterations !iters;
    (Array.map (fun p -> p /. total) pi, !iters, not !continue)
  end

let stationary_iterative ?tol ?max_iter ?init t =
  let pi, _, _ = stationary_iterative_report ?tol ?max_iter ?init t in
  pi

let stationary t =
  if t.n <= dense_threshold then
    match stationary_gth t with
    | Ok pi -> pi
    | Error (`Reducible_class _) -> (
        (* LU picks one closed class (the historical behavior); a singular
           system on top of that degrades to the iterative sweep instead
           of escaping as an exception. *)
        match stationary_dense t with
        | pi -> pi
        | exception Lu.Singular _ -> stationary_iterative t)
  else stationary_iterative t

module Resilience = Bufsize_resilience.Resilience

(* A usable stationary distribution: finite, nonnegative, normalized. *)
let distribution_valid pi =
  Resilience.all_finite pi
  && Array.for_all (fun p -> p >= 0.) pi
  && Float.abs (Vec.sum pi -. 1.) <= 1e-6

(* ||pi Q||_inf — the balance residual reported in diagnostics. *)
let stationary_residual t pi =
  let qt_pi = Array.make t.n 0. in
  Sparse.mul_vec_t_into t.q pi qt_pi;
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. qt_pi

(* Diagnostic stationary solve: the escalation chain of the ISSUE —
   direct GTH first at small n (preserving [stationary]'s clean path),
   uniformized iteration first beyond the dense threshold, each method
   validated for finiteness/normalization before being trusted, and a
   reducible chain surfacing its closed class in the rejection reason
   rather than as an exception. *)
let stationary_diag ?budget ?init t =
  let fmt_class cls =
    let shown = List.filteri (fun i _ -> i < 8) cls in
    Printf.sprintf "reducible: closed class [%s%s] (%d states)"
      (String.concat ";" (List.map string_of_int shown))
      (if List.length cls > 8 then ";..." else "")
      (List.length cls)
  in
  let accept pi iterations =
    if distribution_valid pi then begin
      let residual = stationary_residual t pi in
      Obs.observe h_residual residual;
      Resilience.Accept (pi, Resilience.meta ~iterations ~residual ())
    end
    else Resilience.Reject "invalid distribution (NaN/Inf, negative, or unnormalized)"
  in
  let gth _ =
    match stationary_gth t with
    | Ok pi -> accept pi 0
    | Error (`Reducible_class cls) -> Resilience.Reject (fmt_class cls)
  in
  let lu _ = accept (stationary_dense t) 0 in
  let iterative _ =
    let pi, iters, converged = stationary_iterative_report ?init t in
    if not (distribution_valid pi) then
      Resilience.Reject "invalid distribution (NaN/Inf, negative, or unnormalized)"
    else if converged then begin
      let residual = stationary_residual t pi in
      Obs.observe h_residual residual;
      Resilience.Accept (pi, Resilience.meta ~iterations:iters ~residual ())
    end
    else
      Resilience.Partial
        ( pi,
          Resilience.meta ~iterations:iters ~residual:(stationary_residual t pi) (),
          Printf.sprintf "uniformized iteration unconverged after %d sweeps" iters )
  in
  let steps =
    if t.n <= dense_threshold then
      [
        Resilience.step "gth" gth;
        Resilience.step "lu-dense" lu;
        Resilience.step "uniformized-iterative" iterative;
      ]
    else
      [
        Resilience.step "uniformized-iterative" iterative;
        Resilience.step "gth" gth;
        Resilience.step "lu-dense" lu;
      ]
  in
  let budget = match budget with Some b -> b | None -> Resilience.of_env () in
  Resilience.escalate ~solver:(Printf.sprintf "ctmc.stationary(n=%d)" t.n) ~budget steps

let is_irreducible t =
  let n = t.n in
  let reaches from =
    let seen = Array.make n false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        Sparse.iter_row t.q i (fun j v -> if j <> i && v > 0. then dfs j)
      end
    in
    dfs from;
    Array.for_all (fun b -> b) seen
  in
  let rec check i = i >= n || (reaches i && check (i + 1)) in
  check 0

let uniformization_rate t = (max_exit_rate t *. 1.0000001) +. 1e-12

let uniformize ?rate t =
  let lambda = match rate with Some r -> r | None -> uniformization_rate t in
  let n = t.n in
  let p = Mat.identity n in
  Sparse.iter t.q (fun i j v -> Mat.update p i j (fun base -> base +. (v /. lambda)));
  p

let transient t pi0 horizon =
  if horizon < 0. then invalid_arg "Ctmc.transient: negative horizon";
  let n = t.n in
  if Vec.dim pi0 <> n then invalid_arg "Ctmc.transient: distribution size mismatch";
  let lambda = uniformization_rate t in
  let mean = lambda *. horizon in
  (* Truncate the Poisson sum when the accumulated mass is within 1e-12;
     term <- term P' computed sparsely as term + (Q' term)/lambda. *)
  let result = Vec.zeros n in
  let term = ref (Vec.copy pi0) in
  let qt_term = Array.make n 0. in
  let weight = ref (exp (-.mean)) in
  let accumulated = ref 0. in
  let k = ref 0 in
  let max_terms = 16 + int_of_float (mean +. (8. *. sqrt (mean +. 1.))) in
  while !accumulated < 1. -. 1e-12 && !k <= max_terms do
    Vec.axpy !weight !term result;
    accumulated := !accumulated +. !weight;
    Sparse.mul_vec_t_into t.q !term qt_term;
    let next = Array.make n 0. in
    for i = 0 to n - 1 do
      next.(i) <- !term.(i) +. (qt_term.(i) /. lambda)
    done;
    term := next;
    incr k;
    weight := !weight *. mean /. float_of_int !k
  done;
  (* Renormalize the truncation remainder. *)
  let total = Vec.sum result in
  if total > 0. then Vec.scale (1. /. total) result else result

let expected_value _t pi f =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. f i)) pi;
  !acc
