(** Finite continuous-time Markov chains.

    A CTMC is represented by its generator matrix [Q]: off-diagonal entries
    are nonnegative transition rates, each diagonal entry is minus its row
    sum.  The stationary distribution solves [pi Q = 0], [sum pi = 1]; it is
    the analytic backbone of policy evaluation and of the translation from
    CTMDP policies to buffer occupancy distributions.

    The generator is stored sparse (CSR) — buffer-occupancy chains have
    O(1) neighbours per state.  Stationary solves dispatch on size: GTH
    elimination (subtraction-free, with an LU fallback for reducible
    chains) up to a few hundred states, uniformized power iteration via
    transposed SpMV beyond that, so no O(n^2) matrix is ever allocated on
    the large-instance path. *)

type t
(** A validated generator. *)

val of_rates : int -> (int * int * float) list -> t
(** [of_rates n rates] builds an [n]-state generator from
    [(from, to, rate)] triples (accumulating duplicates; diagonal computed).
    @raise Invalid_argument on negative rates, self loops, or out-of-range
    states. *)

val patch_rates : t -> (int * int * float) list -> t option
(** [patch_rates t rates] rebuilds the chain from new rate triples while
    reusing the existing sparsity pattern (fresh values array; shared
    [row_ptr]/[col_idx]) — the incremental path for sweeps that change
    only the numbers.  A successful patch is bitwise-identical to
    [of_rates (dim t) rates]: duplicates accumulate in list order and the
    exit rates re-sum in ascending-column order, exactly as the rebuild
    would.  Returns [None] — and the caller must rebuild — whenever the
    pattern shifts: a rate at a position [t] does not have, a previously
    present position accumulating to zero, an exit rate appearing or
    vanishing, or an invalid triple (out of range, self loop, negative). *)

val of_generator : Bufsize_numeric.Mat.t -> t
(** Validates an explicit generator matrix: square, nonnegative
    off-diagonal, rows summing to (numerically) zero. *)

val of_sparse_generator : Bufsize_numeric.Sparse.t -> t
(** Same validation as {!of_generator}, from CSR — the scalable entry
    point (never densifies). *)

val dim : t -> int

val generator : t -> Bufsize_numeric.Mat.t
(** A dense copy of the generator matrix (small chains / tests only —
    allocates O(n^2)). *)

val sparse_generator : t -> Bufsize_numeric.Sparse.t
(** The generator as stored, diagonal included.  O(1). *)

val rate : t -> int -> int -> float
(** [rate t i j] with [i <> j] is the transition rate. *)

val exit_rate : t -> int -> float
(** Total rate out of a state ([-Q_ii]). *)

val stationary : t -> Bufsize_numeric.Vec.t
(** Stationary distribution.  Small chains use GTH elimination (falling
    back to the LU balance-equation solve when the chain is reducible —
    the result is then a stationary distribution of one closed class as
    selected by the linear solve, and a singular LU system degrades
    further to {!stationary_iterative}); large chains use
    {!stationary_iterative}.  Use {!stationary_diag} when the caller needs
    to know which path was taken. *)

val stationary_dense : t -> Bufsize_numeric.Vec.t
(** The direct LU solve on the dense balance equations, at any size
    (allocates O(n^2)) — the historical semantics, kept as the reducible
    fallback and for cross-checks. *)

val stationary_gth :
  t ->
  (Bufsize_numeric.Vec.t, [ `Reducible_class of int list ]) result
(** Subtraction-free GTH state elimination;
    [Error (`Reducible_class states)] when the chain is not irreducible
    enough for the elimination order, naming the communicating class of
    the state whose elimination pivot vanished (callers typically fall
    back to {!stationary_dense}).  Allocates O(n^2) work space. *)

val communicating_class : t -> int -> int list
(** The communicating class of a state: every state it both reaches and
    is reached by along positive rates, itself included.  Sorted. *)

val stationary_iterative :
  ?tol:float ->
  ?max_iter:int ->
  ?init:Bufsize_numeric.Vec.t ->
  t ->
  Bufsize_numeric.Vec.t
(** Uniformized power iteration through transposed SpMV — O(nnz) per
    sweep, no dense allocation.  [tol] (default [1e-13]) bounds the
    per-sweep max update; [max_iter] defaults to [200_000].  [init] seeds
    the iteration with a previous stationary vector (sweep warm start:
    nearby chains converge in a fraction of the sweeps); it is used only
    when it is a valid distribution of the right size, so a stale or
    malformed seed silently falls back to the uniform start. *)

val stationary_iterative_report :
  ?tol:float ->
  ?max_iter:int ->
  ?init:Bufsize_numeric.Vec.t ->
  t ->
  Bufsize_numeric.Vec.t * int * bool
(** {!stationary_iterative} plus the sweep count and whether [tol] was
    reached within [max_iter] — the convergence evidence the resilience
    layer needs to distinguish Ok from Degraded. *)

val distribution_valid : Bufsize_numeric.Vec.t -> bool
(** Finite, nonnegative, and summing to 1 within [1e-6] — the acceptance
    test applied to every candidate stationary vector in
    {!stationary_diag}. *)

val stationary_residual : t -> Bufsize_numeric.Vec.t -> float
(** [|pi Q|_inf], the balance-equation residual (O(nnz)). *)

val stationary_diag :
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?init:Bufsize_numeric.Vec.t ->
  t ->
  Bufsize_numeric.Vec.t option * Bufsize_resilience.Resilience.diagnostic
(** Resilient stationary solve with an explicit escalation chain:
    GTH -> dense LU -> uniformized iteration below the dense threshold
    (preserving {!stationary}'s clean path as the [Ok] first step),
    iteration first above it.  Reducible chains are rejected by GTH with
    the offending closed class in the reason string; an unconverged
    iteration is kept as a [Partial] best-known answer; every candidate
    must pass {!distribution_valid} to surface.  [budget] defaults to
    {!Bufsize_resilience.Resilience.of_env}. *)

val is_irreducible : t -> bool
(** Graph check: every state reaches every other along positive rates. *)

val uniformization_rate : t -> float
(** Smallest valid uniformization constant, [max_i exit_rate + epsilon]. *)

val uniformize : ?rate:float -> t -> Bufsize_numeric.Mat.t
(** Discrete-time transition matrix [P = I + Q/rate]; [rate] defaults to
    {!uniformization_rate}. *)

val transient : t -> Bufsize_numeric.Vec.t -> float -> Bufsize_numeric.Vec.t
(** [transient t pi0 horizon] is the distribution at time [horizon] from
    initial distribution [pi0], via uniformization with adaptive Poisson
    truncation. *)

val expected_value : t -> Bufsize_numeric.Vec.t -> (int -> float) -> float
(** [expected_value t pi f] is [sum_i pi_i f(i)]. *)
