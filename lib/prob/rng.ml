type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used for seeding and stream splitting. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Per-replication seed: hash the (seed, index) pair through two rounds of
   the splitmix64 finalizer, mixing the index in between with an odd
   multiplier.  Unlike the old [seed + 1000 * i] scheme — which collides
   whenever two user seeds are less than [1000 * replications] apart — any
   collision here requires a full 63-bit birthday coincidence. *)
let derive_seed seed index =
  let state = ref (Int64.of_int seed) in
  let (_ : int64) = splitmix64 state in
  state := Int64.logxor !state (Int64.mul (Int64.of_int index) 0xD1342543DE82EF95L);
  let z = splitmix64 state in
  (* keep 62 bits so the result is a nonnegative native int (OCaml ints
     are 63-bit signed) *)
  Int64.to_int (Int64.shift_right_logical z 2)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* 53 high bits to a double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^64,
     but we use the standard multiply-shift reduction for uniformity. *)
  int_of_float (float t *. float_of_int n)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. float t in
  -.log u /. rate

let poisson t ~mean =
  if mean < 0. then invalid_arg "Rng.poisson: negative mean"
  else if mean = 0. then 0
  else if mean < 30. then begin
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.
  end
  else begin
    (* Normal approximation with continuity correction (Box-Muller). *)
    let u1 = Float.max 1e-12 (float t) and u2 = float t in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    Int.max 0 (int_of_float (Float.round (mean +. (sqrt mean *. z))))
  end

let discrete t weights =
  let total = Array.fold_left (fun acc w ->
      if w < 0. then invalid_arg "Rng.discrete: negative weight" else acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Rng.discrete: all weights zero";
  let target = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
