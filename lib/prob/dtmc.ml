module Mat = Bufsize_numeric.Mat
module Vec = Bufsize_numeric.Vec
module Lu = Bufsize_numeric.Lu
module Sparse = Bufsize_numeric.Sparse

(* Sparse transition matrix, mirroring Ctmc: direct dense solve for small
   chains, damped power iteration through transposed SpMV beyond. *)

type t = { n : int; p : Sparse.t }

let dense_threshold = 512

let of_matrix m =
  if m.Mat.rows <> m.Mat.cols then invalid_arg "Dtmc.of_matrix: not square";
  for i = 0 to m.Mat.rows - 1 do
    let sum = ref 0. in
    for j = 0 to m.Mat.cols - 1 do
      let x = Mat.get m i j in
      if x < -1e-12 || x > 1. +. 1e-9 then invalid_arg "Dtmc.of_matrix: entry out of [0,1]";
      sum := !sum +. x
    done;
    if Float.abs (!sum -. 1.) > 1e-8 then invalid_arg "Dtmc.of_matrix: row does not sum to one"
  done;
  { n = m.Mat.rows; p = Sparse.of_dense m }

let embedded_of_ctmc c =
  let n = Ctmc.dim c in
  let entries = ref [] in
  for i = n - 1 downto 0 do
    let exit = Ctmc.exit_rate c i in
    if exit <= 0. then entries := (i, i, 1.) :: !entries
    else
      (* Collect the off-diagonal row, normalized by the exit rate. *)
      let row = ref [] in
      Sparse.iter_row (Ctmc.sparse_generator c) i (fun j v ->
          if j <> i then row := (i, j, v /. exit) :: !row);
      entries := List.rev_append !row !entries
  done;
  { n; p = Sparse.of_triplets ~rows:n ~cols:n !entries }

let dim t = t.n
let matrix t = Sparse.to_dense t.p
let sparse_matrix t = t.p
let step t pi = Sparse.mul_vec_t t.p pi

let stationary_dense t =
  let n = t.n in
  if n = 1 then [| 1. |]
  else begin
    (* (P^T - I) pi = 0 with the last row replaced by normalization. *)
    let p = Sparse.to_dense t.p in
    let a = Mat.init n n (fun i j -> Mat.get p j i -. if i = j then 1. else 0.) in
    for j = 0 to n - 1 do
      Mat.set a (n - 1) j 1.
    done;
    let b = Array.make n 0. in
    b.(n - 1) <- 1.;
    let pi = Lu.solve a b in
    let pi = Array.map (Float.max 0.) pi in
    let total = Vec.sum pi in
    Array.map (fun p -> p /. total) pi
  end

(* pi <- (pi + pi P)/2: the lazy chain has diagonal >= 1/2, so the
   iteration converges even on periodic chains and shares P's stationary
   distribution. *)
let stationary_iterative ?(tol = 1e-13) ?(max_iter = 200_000) t =
  let n = t.n in
  if n = 1 then [| 1. |]
  else begin
    let pi = Array.make n (1. /. float_of_int n) in
    let pt_pi = Array.make n 0. in
    let continue = ref true in
    let iters = ref 0 in
    while !continue && !iters < max_iter do
      Sparse.mul_vec_t_into t.p pi pt_pi;
      let delta = ref 0. in
      for i = 0 to n - 1 do
        let next = 0.5 *. (pi.(i) +. pt_pi.(i)) in
        delta := Float.max !delta (Float.abs (next -. pi.(i)));
        pi.(i) <- next
      done;
      incr iters;
      if !delta < tol then continue := false
    done;
    let pi = Array.map (Float.max 0.) pi in
    let total = Vec.sum pi in
    Array.map (fun p -> p /. total) pi
  end

let stationary t =
  if t.n <= dense_threshold then stationary_dense t else stationary_iterative t

let power_stationary ?(tol = 1e-12) ?(max_iter = 100_000) t =
  let n = t.n in
  let rec loop pi iters =
    let next = Sparse.mul_vec_t t.p pi in
    if Vec.norm_inf (Vec.sub next pi) < tol || iters >= max_iter then next
    else loop next (iters + 1)
  in
  loop (Array.make n (1. /. float_of_int n)) 0
