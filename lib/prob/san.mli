(** Stochastic Automata Networks — compositional CTMCs whose generator
    is a {!Bufsize_numeric.Kronecker} descriptor, never materialized.

    A SAN is a set of small local automata plus two coupling
    mechanisms, following the classical Plateau descriptor (see the
    Deshmukh–Sahula SoC formulation this module reproduces):

    - {b synchronizing events}: an event fires at a base rate, moving
      every participating automaton along its routing matrix at once;
      a participant with no routing row for its current state disables
      the event.
    - {b functional rates}: a per-state multiplier on another
      automaton scales an event's rate (e.g. a shared bus serving each
      of two queues at half rate only while the other is busy).

    The compiled generator is
    [sum_a I (x) Q_a (x) I  +  sum_e rate_e ((x) R_ea - (x) D_ea)]
    with [D_ea = diag(R_ea 1)], which keeps every row sum exactly zero
    and every off-diagonal nonnegative by construction.  Stationary
    solves run the same uniformized power iteration as {!Ctmc}
    (including [?init] warm seeding) through the Kronecker transposed
    SpMV, so joint spaces of 10^6+ states stay in O(n) memory. *)

type automaton = {
  name : string;
  size : int;  (** local state count, >= 1 *)
  local : (int * int * float) list;
      (** local [(from, to, rate)] transitions, rate >= 0, no self
          loops *)
}

type event = {
  label : string;
  rate : float;  (** base firing rate, >= 0 *)
  routing : (int * (int * int * float) list) list;
      (** participants: automaton index -> [(from, to, weight)] rows,
          weights >= 0.  Self loops allowed (e.g. drop-when-full). *)
  scaling : (int * float array) list;
      (** functional rates: automaton index -> per-state multiplier
          (length [size], entries >= 0).  An automaton may not appear
          in both [routing] and [scaling] of the same event. *)
}

type t
(** A validated SAN with its compiled descriptor. *)

val create : automaton list -> event list -> t
(** @raise Invalid_argument on malformed automata or events (bad
    indices, negative rates/weights, duplicate participants,
    wrong-length scaling vectors). *)

val automata : t -> automaton array
val events : t -> event list
val num_states : t -> int

val descriptor : t -> Bufsize_numeric.Kronecker.t
(** The compiled sum-of-Kronecker generator. *)

val encode : t -> int array -> int
val decode : t -> int -> int array

val uniformization_rate : t -> float
(** [2 * max_i exit_i], computed exactly from the descriptor diagonal
    — the same strongly aperiodic constant {!Ctmc} iteration uses. *)

val stationary_report :
  ?tol:float ->
  ?max_iter:int ->
  ?init:Bufsize_numeric.Vec.t ->
  t ->
  Bufsize_numeric.Vec.t * int * bool
(** Uniformized power iteration [pi <- pi + (Q' pi)/Lambda] through
    the Kronecker transposed SpMV.  Defaults match
    {!Ctmc.stationary_iterative_report} ([tol = 1e-13],
    [max_iter = 200_000]); [init] is accepted only when it is a valid
    distribution of the right size, exactly like the {!Ctmc} warm
    seed.  Returns [(pi, sweeps, converged)].  Instrumented with an
    [Obs] span ["san.stationary"] plus per-iteration [san.sweeps]
    counters and a [san.residual] histogram. *)

val stationary : ?tol:float -> ?max_iter:int -> ?init:Bufsize_numeric.Vec.t -> t -> Bufsize_numeric.Vec.t

val stationary_residual : t -> Bufsize_numeric.Vec.t -> float
(** [|pi Q|_inf] through the descriptor — O(n) memory. *)

val marginal : t -> automaton:int -> Bufsize_numeric.Vec.t -> Bufsize_numeric.Vec.t
(** Marginal distribution of one automaton under a joint vector. *)

val expected : t -> (int array -> float) -> Bufsize_numeric.Vec.t -> float
(** [expected t f pi = sum_s pi_s f(decode s)] — joint functionals
    (correlations the marginals cannot see); decodes with a reused
    buffer, O(n * modes). *)

val to_ctmc : t -> Ctmc.t
(** Materialize the descriptor into a validated {!Ctmc} — the
    small-instance cross-check path (O(joint nnz) memory). *)
