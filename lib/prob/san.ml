module Vec = Bufsize_numeric.Vec
module Sparse = Bufsize_numeric.Sparse
module Kronecker = Bufsize_numeric.Kronecker
module Obs = Bufsize_obs.Obs

(* Solver telemetry, mirroring ctmc.ml: solve count, per-iteration
   sweep counter, and the balance residuals of returned vectors. *)
let m_solves = Obs.counter "san.solves"
let m_sweeps = Obs.counter "san.sweeps"
let h_residual = Obs.histogram "san.residual"

type automaton = {
  name : string;
  size : int;
  local : (int * int * float) list;
}

type event = {
  label : string;
  rate : float;
  routing : (int * (int * int * float) list) list;
  scaling : (int * float array) list;
}

type t = {
  automata : automaton array;
  events : event list;
  desc : Kronecker.t;
  exit : float array;  (* exit.(s) = -Q_ss, from the descriptor diagonal *)
}

let validate_automaton i a =
  if a.size <= 0 then
    invalid_arg (Printf.sprintf "San.create: automaton %d has non-positive size" i);
  List.iter
    (fun (f, t, r) ->
      if f < 0 || f >= a.size || t < 0 || t >= a.size then
        invalid_arg (Printf.sprintf "San.create: automaton %d local transition out of range" i);
      if f = t then
        invalid_arg (Printf.sprintf "San.create: automaton %d local self loop" i);
      if not (Float.is_finite r) || r < 0. then
        invalid_arg (Printf.sprintf "San.create: automaton %d negative local rate" i))
    a.local

let validate_event automata e =
  let n_aut = Array.length automata in
  if not (Float.is_finite e.rate) || e.rate < 0. then
    invalid_arg (Printf.sprintf "San.create: event %s has negative rate" e.label);
  let seen = Hashtbl.create 8 in
  let claim a =
    if a < 0 || a >= n_aut then
      invalid_arg (Printf.sprintf "San.create: event %s references automaton %d" e.label a);
    if Hashtbl.mem seen a then
      invalid_arg
        (Printf.sprintf "San.create: event %s mentions automaton %d twice" e.label a);
    Hashtbl.add seen a ()
  in
  List.iter
    (fun (a, rows) ->
      claim a;
      let d = automata.(a).size in
      List.iter
        (fun (f, t, w) ->
          if f < 0 || f >= d || t < 0 || t >= d then
            invalid_arg
              (Printf.sprintf "San.create: event %s routing out of range on automaton %d"
                 e.label a);
          if not (Float.is_finite w) || w < 0. then
            invalid_arg
              (Printf.sprintf "San.create: event %s negative routing weight" e.label))
        rows)
    e.routing;
  List.iter
    (fun (a, mult) ->
      claim a;
      if Array.length mult <> automata.(a).size then
        invalid_arg
          (Printf.sprintf "San.create: event %s scaling length mismatch on automaton %d"
             e.label a);
      Array.iter
        (fun m ->
          if not (Float.is_finite m) || m < 0. then
            invalid_arg
              (Printf.sprintf "San.create: event %s negative scaling multiplier" e.label))
        mult)
    e.scaling

(* Local generator of one automaton as CSR, diagonal included
   (off-diagonal row sums accumulated in list order, like Ctmc.of_rates). *)
let local_generator a =
  let d = a.size in
  let exit = Array.make d 0. in
  List.iter (fun (f, _, r) -> exit.(f) <- exit.(f) +. r) a.local;
  let diag = ref [] in
  for s = d - 1 downto 0 do
    if exit.(s) <> 0. then diag := (s, s, -.exit.(s)) :: !diag
  done;
  Sparse.of_triplets ~rows:d ~cols:d (a.local @ !diag)

let compile automata events =
  let n_aut = Array.length automata in
  let dims = Array.map (fun a -> a.size) automata in
  let identity_row () = Array.make n_aut Kronecker.Identity in
  let local_terms =
    Array.to_list automata
    |> List.mapi (fun i a ->
           if a.local = [] then None
           else begin
             let factors = identity_row () in
             factors.(i) <- Kronecker.Factor (local_generator a);
             Some { Kronecker.coeff = 1.; factors }
           end)
    |> List.filter_map Fun.id
  in
  let event_terms =
    List.concat_map
      (fun e ->
        (* Positive term: (x) routing matrices, scaled modes as diagonal
           multiplier factors.  Negative term: same scaling, routing
           replaced by diag of its row sums — keeps row sums exactly
           zero and is fully diagonal, so off-diagonals stay >= 0. *)
        let pos = identity_row () and neg = identity_row () in
        List.iter
          (fun (a, rows) ->
            let d = automata.(a).size in
            let sums = Array.make d 0. in
            List.iter (fun (f, _, w) -> sums.(f) <- sums.(f) +. w) rows;
            let diag = ref [] in
            for s = d - 1 downto 0 do
              if sums.(s) <> 0. then diag := (s, s, sums.(s)) :: !diag
            done;
            pos.(a) <- Kronecker.Factor (Sparse.of_triplets ~rows:d ~cols:d rows);
            neg.(a) <- Kronecker.Factor (Sparse.of_triplets ~rows:d ~cols:d !diag))
          e.routing;
        List.iter
          (fun (a, mult) ->
            let d = automata.(a).size in
            let diag = ref [] in
            for s = d - 1 downto 0 do
              if mult.(s) <> 0. then diag := (s, s, mult.(s)) :: !diag
            done;
            let f = Kronecker.Factor (Sparse.of_triplets ~rows:d ~cols:d !diag) in
            pos.(a) <- f;
            neg.(a) <- f)
          e.scaling;
        if e.rate = 0. || e.routing = [] then []
        else
          [
            { Kronecker.coeff = e.rate; factors = pos };
            { Kronecker.coeff = -.e.rate; factors = neg };
          ])
      events
  in
  Kronecker.create ~dims (local_terms @ event_terms)

let create automata events =
  if automata = [] then invalid_arg "San.create: no automata";
  let automata = Array.of_list automata in
  Array.iteri validate_automaton automata;
  List.iter (validate_event automata) events;
  let desc = compile automata events in
  let exit = Array.map (fun d -> -.d) (Kronecker.diagonal desc) in
  { automata; events; desc; exit }

let automata t = Array.copy t.automata
let events t = t.events
let num_states t = Kronecker.num_states t.desc
let descriptor t = t.desc
let encode t state = Kronecker.encode t.desc state
let decode t idx = Kronecker.decode t.desc idx

let max_exit_rate t = Array.fold_left Float.max 0. t.exit
let uniformization_rate t = Float.max (2. *. max_exit_rate t) 1e-300

let stationary_residual t pi =
  let qt_pi = Kronecker.mul_vec_t t.desc pi in
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. qt_pi

(* Same sweep as Ctmc.stationary_iterative_report, with the transposed
   SpMV routed through the shuffle algorithm and scratch reused across
   sweeps so the loop allocates nothing per iteration. *)
let stationary_report ?(tol = 1e-13) ?(max_iter = 200_000) ?init t =
  let n = num_states t in
  if n = 1 then ([| 1. |], 0, true)
  else
    Obs.span ~name:"san.stationary"
      ~attrs:(fun () -> [ ("states", string_of_int n) ])
      (fun () ->
        Obs.incr m_solves;
        let lambda = uniformization_rate t in
        let pi =
          match init with
          | Some p0
            when Array.length p0 = n
                 && Array.for_all (fun x -> Float.is_finite x && x >= 0.) p0
                 && Float.abs (Vec.sum p0 -. 1.) <= 1e-6 ->
              Array.copy p0
          | _ -> Array.make n (1. /. float_of_int n)
        in
        let qt_pi = Array.make n 0. in
        let scratch = Kronecker.scratch t.desc in
        let continue = ref true in
        let iters = ref 0 in
        while !continue && !iters < max_iter do
          Kronecker.mul_vec_t_into ~scratch t.desc pi qt_pi;
          let delta = ref 0. in
          for i = 0 to n - 1 do
            let step = qt_pi.(i) /. lambda in
            pi.(i) <- pi.(i) +. step;
            delta := Float.max !delta (Float.abs step)
          done;
          incr iters;
          Obs.incr m_sweeps;
          if !delta < tol then continue := false
        done;
        let pi = Array.map (fun p -> Float.max 0. p) pi in
        let total = Vec.sum pi in
        let pi = Array.map (fun p -> p /. total) pi in
        Obs.observe h_residual (stationary_residual t pi);
        (pi, !iters, not !continue))

let stationary ?tol ?max_iter ?init t =
  let pi, _, _ = stationary_report ?tol ?max_iter ?init t in
  pi

let marginal t ~automaton pi =
  let n_aut = Array.length t.automata in
  if automaton < 0 || automaton >= n_aut then invalid_arg "San.marginal: automaton out of range";
  let n = num_states t in
  if Array.length pi <> n then invalid_arg "San.marginal: vector size mismatch";
  let d = t.automata.(automaton).size in
  (* stride of this mode in the mixed-radix joint index *)
  let stride = ref 1 in
  for m = n_aut - 1 downto automaton + 1 do
    stride := !stride * t.automata.(m).size
  done;
  let stride = !stride in
  let out = Array.make d 0. in
  for idx = 0 to n - 1 do
    let s = idx / stride mod d in
    out.(s) <- out.(s) +. pi.(idx)
  done;
  out

let expected t f pi =
  let n = num_states t in
  if Array.length pi <> n then invalid_arg "San.expected: vector size mismatch";
  let state = Array.make (Array.length t.automata) 0 in
  let acc = ref 0. in
  for idx = 0 to n - 1 do
    if pi.(idx) <> 0. then begin
      Kronecker.decode_into t.desc idx state;
      acc := !acc +. (pi.(idx) *. f state)
    end
  done;
  !acc

let to_ctmc t = Ctmc.of_sparse_generator (Kronecker.materialize t.desc)
