(** Finite discrete-time Markov chains.

    Companion to {!Ctmc}: stationary distributions of stochastic matrices
    and the embedded jump chain of a CTMC.  Used to cross-validate
    uniformization and in tests. *)

type t

val of_matrix : Bufsize_numeric.Mat.t -> t
(** Validates a row-stochastic matrix (rows sum to 1, entries in [0,1]). *)

val embedded_of_ctmc : Ctmc.t -> t
(** Jump chain of a CTMC: [P_ij = q_ij / exit_i] (absorbing states become
    self-loops). *)

val dim : t -> int

val matrix : t -> Bufsize_numeric.Mat.t
(** Dense copy (allocates O(n^2); tests and small chains only). *)

val sparse_matrix : t -> Bufsize_numeric.Sparse.t
(** The transition matrix as stored.  O(1). *)

val step : t -> Bufsize_numeric.Vec.t -> Bufsize_numeric.Vec.t
(** One transition: [pi P], via transposed SpMV. *)

val stationary : t -> Bufsize_numeric.Vec.t
(** For small chains: solves [pi P = pi], [sum pi = 1] by LU on
    [(P' - I)] with a normalization row.  Large chains use
    {!stationary_iterative}. *)

val stationary_dense : t -> Bufsize_numeric.Vec.t
(** The direct LU solve at any size (allocates O(n^2)). *)

val stationary_iterative :
  ?tol:float -> ?max_iter:int -> t -> Bufsize_numeric.Vec.t
(** Damped (lazy-chain) power iteration [pi <- (pi + pi P)/2] through
    transposed SpMV; converges on periodic chains too. *)

val power_stationary : ?tol:float -> ?max_iter:int -> t -> Bufsize_numeric.Vec.t
(** Power iteration from the uniform distribution; used in tests as an
    independent check of {!stationary}. *)
