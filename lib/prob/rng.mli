(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256++ generator seeded through splitmix64, so
    that simulation runs are reproducible across machines and OCaml
    versions (the stdlib [Random] self-seeds and has changed algorithms
    between releases).  [split] derives statistically independent streams,
    one per simulation replication. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed via splitmix64. *)

val derive_seed : int -> int -> int
(** [derive_seed seed index] hashes the pair to a nonnegative 63-bit seed
    for stream [index] of a replicated experiment (splitmix64 finalizer,
    twice).  Distinct [(seed, index)] pairs map to distinct seeds up to
    birthday collisions in 63 bits — unlike additive schemes such as
    [seed + 1000 * index], which collide for nearby user seeds. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's
    (the parent advances). *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]].  @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val exponential : t -> rate:float -> float
(** Exponential variate with the given [rate] (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val poisson : t -> mean:float -> int
(** Poisson variate (Knuth multiplication below mean 30, normal
    approximation with continuity correction above). *)

val discrete : t -> float array -> int
(** [discrete t weights] samples an index proportionally to nonnegative
    [weights].  @raise Invalid_argument if all weights are zero or any is
    negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
