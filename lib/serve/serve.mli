(** Sizing-as-a-service: a long-running Unix-domain-socket daemon.

    The server speaks newline-delimited JSON: one request object per
    line, one reply object per line, ids echoed verbatim.  Requests fan
    out to worker domains over a bounded queue; the accept/read loop
    never blocks on a solve.  The robustness envelope is first-class:

    - {b admission control} — when the queue is full the request is
      rejected immediately with a typed [overloaded] error carrying a
      retry-after hint, instead of queueing unboundedly;
    - {b deadline propagation} — a request's [deadline_ms] becomes the
      ambient {!Bufsize_resilience.Resilience} budget of its worker, so
      every solver it reaches (including through {!Bufsize_pool.Pool})
      cuts off server-side and degrades instead of hanging;
    - {b crash isolation} — an exception in a handler poisons only its
      own request (typed [internal_error] reply), never the accept loop;
    - {b graceful shutdown} — {!stop} drains queued and in-flight
      requests, writes their replies, closes connections and unlinks the
      socket.

    {2 Protocol}

    Request: [{"id":1,"op":"size","arch":"netproc","budget":160,
    "max_states":64,"deadline_ms":5000}].  [id] is echoed verbatim (any
    JSON value; [null] when absent); [op] selects a handler; absent
    [deadline_ms] uses the server default, [deadline_ms <= 0] is an
    already-expired deadline.  Every dispatched request is also assigned
    a server-side monotone request id, which appears in telemetry
    replies, flight-recorder records and [--log-requests] lines.

    Reply: [{"id":1,"op":"size","status":"ok",...}] with [status] one of
    ["ok"], ["degraded"] (usable answer plus a ["reason"]), or ["error"]
    with an ["error"] object [{"kind":k,"message":m,"retry_after_ms":r}]
    where [kind] is ["bad_request"], ["oversized"], ["overloaded"] or
    ["internal_error"].

    {2 Introspection}

    A request with ["telemetry": true] gets a trailing ["telemetry"]
    member on its reply: the server-assigned request id, queue-wait and
    service milliseconds, the request's own span subtree (captured
    per-request — no server-side trace file, no global tracing), the
    solver diagnostics the handler attached (engine, iterations,
    residual, fallbacks), and cache hit/miss deltas.  Stripping the
    ["telemetry"] member restores the plain reply byte-for-byte —
    telemetry only observes.

    Built-in ops answered inline by the IO loop (they work while every
    worker is busy): [ping] (liveness + op list), [stats] (queue depth,
    waiting, in-flight, workers, service-time EWMA, uptime, dropped
    spans, per-op accepted/completed/failed counters, conserving
    accepted = completed + failed + in_flight), and [flight] (the flight
    recorder's newest records).  Worker ops: [size], [simulate], [kron],
    [metrics] (the full Obs metrics registry with per-op latency
    histograms and p50/p95/p99, as JSON or — with ["prometheus": true] —
    Prometheus text exposition in a ["text"] member), and the
    chaos-gated [stall]; the verify library registers [verify] and
    [chaos] (both gated behind [BUFSIZE_CHAOS=1] where they inject
    faults).

    {2 Flight recorder}

    A lock-free per-domain ring ({!Bufsize_obs.Obs.Ring}) remembers the
    last [flight_cap] completed request records (id, op, outcome,
    queue/service latencies, telemetry span id, diagnostic note).  The
    merged ring is dumped as JSONL to {!flight_dump_path} on any
    [internal_error] reply and by {!dump_flight} (the CLI calls it on
    SIGUSR1), and is served live by the [flight] op. *)

module Json := Bufsize_json.Json
module Resilience := Bufsize_resilience.Resilience

(** {1 Configuration} *)

type config = {
  socket_path : string;
  queue_depth : int;  (** waiting requests beyond which [overloaded] fires *)
  workers : int;  (** worker domains; >= 1 *)
  default_deadline_ms : float;  (** for requests without [deadline_ms]; <= 0 = unlimited *)
  max_request_bytes : int;  (** longer request lines get a typed [oversized] reply *)
  flight_cap : int;  (** flight-recorder capacity (completed requests remembered) *)
  log_requests : bool;  (** one JSONL line per completed request on stderr *)
}

val config_of_env : unit -> config
(** Defaults seeded from the environment: [BUFSIZE_SERVE_SOCKET] (default
    [<tmpdir>/bufsize.sock]), [BUFSIZE_SERVE_QUEUE] (64),
    [BUFSIZE_SERVE_WORKERS], [BUFSIZE_SERVE_DEADLINE_MS] (unlimited),
    [BUFSIZE_SERVE_MAX_REQUEST] (1 MiB), [BUFSIZE_FLIGHT_CAP] (256),
    [BUFSIZE_SERVE_LOG_REQUESTS] (off). *)

val temp_socket_path : unit -> string
(** A fresh unique socket path in the temp directory — for in-process
    servers in tests and oracles. *)

(** {1 Handlers} *)

type error_kind = Bad_request | Oversized | Overloaded | Internal_error

type reply =
  | Reply_ok of (string * Json.t) list
  | Reply_degraded of string * (string * Json.t) list
      (** best-known answer plus the degradation reason *)
  | Reply_error of { kind : error_kind; message : string; retry_after_ms : float option }

type handler = deadline:Resilience.budget -> Json.t -> reply
(** Runs on a worker domain with [deadline] already installed as the
    ambient solve budget; exceptions become [internal_error] replies
    (or [degraded] when the deadline expired mid-flight). *)

val register_op : string -> handler -> unit
(** Later registrations replace earlier ones; ["ping"] cannot be taken
    (the IO loop answers it before dispatch). *)

val registered_ops : unit -> string list
(** Sorted op names, [ping] included. *)

val chaos_enabled : unit -> bool
(** Whether [BUFSIZE_CHAOS=1] — the gate on fault-injection ops. *)

(** {1 Server lifecycle} *)

type t

val start : ?config:config -> unit -> t
(** Bind the socket (replacing a stale file), spawn the worker domains
    and the IO domain.  The socket is connectable when [start] returns.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain queued and in-flight
    requests (their replies are written), join all domains, close every
    connection and unlink the socket.  Idempotent. *)

val socket_path : t -> string
val config : t -> config

val flight_dump_path : t -> string
(** Where {!dump_flight} writes by default: [BUFSIZE_FLIGHT_PATH] when
    set, else [socket_path ^ ".flight.jsonl"]. *)

val dump_flight : ?path:string -> t -> string
(** Write the flight recorder's current records (oldest first, one JSON
    object per line) to [path] (default {!flight_dump_path}), replacing
    any previous dump, and return the path written.  Called automatically
    on every [internal_error] reply; the CLI wires it to SIGUSR1. *)

(** {1 Client} *)

val request : socket:string -> Json.t -> (Json.t, string) result
(** One request over a fresh connection: connect, send, read exactly one
    reply line, close.  [Error] on connection failure, a dropped
    connection, or an unparsable reply. *)

val request_with_retry :
  ?attempts:int ->
  ?base_delay_ms:float ->
  ?max_delay_ms:float ->
  ?seed:int ->
  socket:string ->
  Json.t ->
  (Json.t, string) result
(** {!request} with jittered exponential backoff (full jitter: a uniform
    fraction of the current cap) on connection failure and on typed
    [overloaded] replies, honoring the server's [retry_after_ms] hint as
    a floor when present.  [attempts] (default 6) counts total tries;
    [base_delay_ms] defaults to 25, [max_delay_ms] to 2000.  [seed]
    makes the jitter deterministic for tests. *)

(** {1 Shared serialization}

    The daemon's [size] reply and the CLI's [size --json] output go
    through the same serializer, so "daemon answers bitwise-identical to
    the CLI" is checkable with string equality: floats print with %.17g
    (lossless round-trip). *)

val sizing_core_json : Bufsize_soc.Traffic.t -> Bufsize_soc.Sizing.result -> Json.t
(** The deterministic core of a sizing result: allocation entries (bus /
    client / words in the allocation's canonical order), total words,
    predicted loss rate, words per level, and whether the budget bound
    was active.  Health is deliberately excluded — it carries wall-clock
    times. *)

val solver_stats_json : unit -> Json.t
(** The process-wide cache and warm-start counters, shaped like the
    [solver_stats] object of the CLI's [--health-json]. *)
