(* The sizing daemon: a select-based IO loop on one domain, worker
   domains draining a bounded queue, replies written straight from the
   worker that computed them (serialized per connection).

   Worker *domains* rather than threads on purpose: the per-request
   deadline travels as the ambient Resilience budget, which is
   domain-local, so each in-flight request keeps its own deadline no
   matter how the solves below it are scheduled. *)

module Json = Bufsize_json.Json
module Obs = Bufsize_obs.Obs
module Resilience = Bufsize_resilience.Resilience
module Sizing = Bufsize_soc.Sizing
module Spec_parser = Bufsize_soc.Spec_parser
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Buffer_alloc = Bufsize_soc.Buffer_alloc

let m_requests = Obs.counter "serve.requests"
let m_overloaded = Obs.counter "serve.overloaded"
let m_degraded = Obs.counter "serve.degraded"
let m_internal = Obs.counter "serve.internal_errors"

(* ------------------------------------------------------- configuration *)

type config = {
  socket_path : string;
  queue_depth : int;
  workers : int;
  default_deadline_ms : float;
  max_request_bytes : int;
}

let env_nonneg_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | Some _ | None ->
          invalid_arg (Printf.sprintf "%s: expected a nonnegative integer, got %S" name s))

let env_float name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "%s: expected a number, got %S" name s))

let default_socket_path () = Filename.concat (Filename.get_temp_dir_name ()) "bufsize.sock"

let config_of_env () =
  {
    socket_path =
      (match Sys.getenv_opt "BUFSIZE_SERVE_SOCKET" with
      | None | Some "" -> default_socket_path ()
      | Some p -> p);
    queue_depth = env_nonneg_int "BUFSIZE_SERVE_QUEUE" 64;
    workers =
      Int.max 1
        (env_nonneg_int "BUFSIZE_SERVE_WORKERS"
           (Int.max 1 (Int.min 4 (Domain.recommended_domain_count () - 1))));
    default_deadline_ms = env_float "BUFSIZE_SERVE_DEADLINE_MS" 0.;
    max_request_bytes = env_nonneg_int "BUFSIZE_SERVE_MAX_REQUEST" (1 lsl 20);
  }

let temp_socket_path () =
  let path = Filename.temp_file "bufsize" ".sock" in
  (* temp_file creates the file; the bind below wants the name only. *)
  (try Sys.remove path with Sys_error _ -> ());
  path

let chaos_enabled () =
  match Sys.getenv_opt "BUFSIZE_CHAOS" with Some "1" -> true | Some _ | None -> false

(* ------------------------------------------------------------ handlers *)

type error_kind = Bad_request | Oversized | Overloaded | Internal_error

let error_kind_name = function
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Internal_error -> "internal_error"

type reply =
  | Reply_ok of (string * Json.t) list
  | Reply_degraded of string * (string * Json.t) list
  | Reply_error of { kind : error_kind; message : string; retry_after_ms : float option }

type handler = deadline:Resilience.budget -> Json.t -> reply

let ops : (string, handler) Hashtbl.t = Hashtbl.create 16
let ops_mutex = Mutex.create ()

let register_op name h =
  if name = "ping" then invalid_arg "Serve.register_op: ping is answered by the IO loop";
  Mutex.lock ops_mutex;
  Hashtbl.replace ops name h;
  Mutex.unlock ops_mutex

let find_op name =
  Mutex.lock ops_mutex;
  let h = Hashtbl.find_opt ops name in
  Mutex.unlock ops_mutex;
  h

let registered_ops () =
  Mutex.lock ops_mutex;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) ops [] in
  Mutex.unlock ops_mutex;
  List.sort String.compare ("ping" :: names)

let bad_request message = Reply_error { kind = Bad_request; message; retry_after_ms = None }

(* A handler body that validates by raising Invalid_argument (the
   convention throughout the library) maps those onto bad_request — the
   client's fault, not an internal error.  Other exceptions propagate to
   the worker, which types them as degraded (deadline ran out mid-solve)
   or internal_error. *)
let guard f = try f () with Invalid_argument m -> bad_request m

(* ------------------------------------------------ reply serialization *)

let reply_json ~id ~op reply =
  let base = [ ("id", id); ("op", Json.Str op) ] in
  match reply with
  | Reply_ok fields -> Json.Obj (base @ (("status", Json.Str "ok") :: fields))
  | Reply_degraded (reason, fields) ->
      Json.Obj
        (base @ (("status", Json.Str "degraded") :: ("reason", Json.Str reason) :: fields))
  | Reply_error { kind; message; retry_after_ms } ->
      let err =
        [ ("kind", Json.Str (error_kind_name kind)); ("message", Json.Str message) ]
        @ (match retry_after_ms with None -> [] | Some ms -> [ ("retry_after_ms", Json.Num ms) ])
      in
      Json.Obj (base @ [ ("status", Json.Str "error"); ("error", Json.Obj err) ])

(* ----------------------------------------------- shared serialization *)

let sizing_core_json traffic (r : Sizing.result) =
  let topo = Traffic.topology traffic in
  let entry (e : Buffer_alloc.entry) =
    Json.Obj
      [
        ("bus", Json.Str (Topology.bus topo e.Buffer_alloc.bus).Topology.bus_name);
        ("client", Json.Str (Traffic.client_label topo e.Buffer_alloc.client));
        ("words", Json.Num (float_of_int e.Buffer_alloc.words));
      ]
  in
  Json.Obj
    [
      ( "allocation",
        Json.List (Array.to_list (Array.map entry r.Sizing.allocation.Buffer_alloc.entries)) );
      ("total_words", Json.Num (float_of_int r.Sizing.allocation.Buffer_alloc.total));
      ("predicted_loss_rate", Json.Num r.Sizing.predicted_loss_rate);
      ("words_per_level", Json.Num r.Sizing.words_per_level);
      ("budget_bound_active", Json.Bool r.Sizing.budget_bound_active);
    ]

let solver_stats_json () =
  let warm_acc, warm_rej = Bufsize_numeric.Simplex_revised.warm_stats () in
  let lp_hits, lp_misses = Bufsize_numeric.Lp.cache_stats () in
  let sz_hits, sz_misses = Sizing.cache_stats () in
  let pair h m =
    Json.Obj [ ("hits", Json.Num (float_of_int h)); ("misses", Json.Num (float_of_int m)) ]
  in
  Json.Obj
    [
      ("lp_cache", pair lp_hits lp_misses);
      ("sizing_cache", pair sz_hits sz_misses);
      ( "warm_start",
        Json.Obj
          [
            ("accepted", Json.Num (float_of_int warm_acc));
            ("rejected", Json.Num (float_of_int warm_rej));
          ] );
    ]

(* -------------------------------------------------------- built-in ops *)

let arch_of_request req =
  match Json.mem_string "spec" req with
  | Some text -> (
      match Spec_parser.parse text with Ok a -> Ok a | Error e -> Error ("spec: " ^ e))
  | None -> (
      match Json.mem_string "arch" req with
      | Some "fig1" -> Ok (Bufsize_soc.Fig1.create ())
      | Some "netproc" -> Ok (Bufsize_soc.Netproc.create ())
      | Some "amba" -> Ok (Bufsize_soc.Amba.create ())
      | Some other ->
          Error
            (Printf.sprintf "unknown architecture %S (use fig1, netproc, amba, or inline \"spec\")"
               other)
      | None -> Error "request needs an \"arch\" name or inline \"spec\" text")

let degradation_reason health =
  match Resilience.status_reason (Resilience.worst_status (List.map snd health)) with
  | Some r -> r
  | None -> "degraded"

let size_handler ~deadline:_ req =
  match arch_of_request req with
  | Error e -> bad_request e
  | Ok (_, traffic) ->
      guard @@ fun () ->
      let budget = Option.value ~default:16 (Json.mem_int "budget" req) in
      let max_states = Option.value ~default:64 (Json.mem_int "max_states" req) in
      let config = { (Sizing.default_config ~budget) with Sizing.max_states } in
      let r = Sizing.run config traffic in
      let fields =
        [
          ("result", sizing_core_json traffic r);
          ("health", Json.parse_exn (Resilience.health_to_json r.Sizing.health));
          ("solver_stats", solver_stats_json ());
        ]
      in
      if Resilience.health_ok r.Sizing.health then Reply_ok fields
      else Reply_degraded (degradation_reason r.Sizing.health, fields)

let simulate_handler ~deadline:_ req =
  match arch_of_request req with
  | Error e -> bad_request e
  | Ok (_, traffic) ->
      guard @@ fun () ->
      let budget = Option.value ~default:16 (Json.mem_int "budget" req) in
      let horizon = Option.value ~default:2000. (Json.mem_number "horizon" req) in
      let seed = Option.value ~default:1 (Json.mem_int "seed" req) in
      let max_states = Option.value ~default:64 (Json.mem_int "max_states" req) in
      let policy = Option.value ~default:"uniform" (Json.mem_string "policy" req) in
      let allocation =
        match policy with
        | "uniform" -> Buffer_alloc.uniform traffic ~budget
        | "proportional" -> Buffer_alloc.traffic_proportional traffic ~budget
        | "ctmdp" ->
            let config = { (Sizing.default_config ~budget) with Sizing.max_states } in
            (Sizing.run config traffic).Sizing.allocation
        | other -> invalid_arg (Printf.sprintf "unknown policy %S" other)
      in
      let spec =
        {
          (Bufsize_sim.Sim_run.default_spec ~traffic ~allocation) with
          Bufsize_sim.Sim_run.horizon;
          seed;
        }
      in
      let report = Bufsize_sim.Sim_run.run spec in
      let module M = Bufsize_sim.Metrics in
      Reply_ok
        [
          ("offered", Json.Num (float_of_int (M.total_offered report)));
          ("lost", Json.Num (float_of_int (M.total_lost report)));
          ("delivered", Json.Num (float_of_int (M.total_delivered report)));
          ("loss_fraction", Json.Num (M.loss_fraction report));
          ("events", Json.Num (float_of_int report.M.events));
          ("horizon", Json.Num report.M.horizon);
        ]

let kron_handler ~deadline:_ req =
  guard @@ fun () ->
  let num name default = Option.value ~default (Json.mem_number name req) in
  let int_field name default = Option.value ~default (Json.mem_int name req) in
  let kx = int_field "kx" 9 and ky = int_field "ky" 9 in
  if kx < 1 || ky < 1 then invalid_arg "queue capacities must be at least 1";
  let spec =
    {
      Bufsize_soc.Monolithic.kx;
      ky;
      lambda_x = num "lambda_x" 1.5;
      lambda_y = num "lambda_y" 1.2;
      cross_fraction = num "cross" 0.25;
      mu_x = num "mu_x" 2.4;
      mu_y = num "mu_y" 2.2;
    }
  in
  let bridge = Json.mem_int "bridge" req in
  let g = Bufsize_soc.San_bridge.compare_split ?bridge_capacity:bridge spec in
  let module S = Bufsize_soc.San_bridge in
  let j = g.S.joint in
  let fields =
    [
      ("states", Json.Num (float_of_int j.S.states));
      ("sweeps", Json.Num (float_of_int j.S.sweeps));
      ("converged", Json.Bool j.S.converged);
      ("residual", Json.Num j.S.residual);
      ("x_loss", Json.Num j.S.x_loss);
      ("bridge_loss", Json.Num j.S.bridge_loss);
      ("y_loss", Json.Num j.S.y_loss);
      ("x_loss_gap_pct", Json.Num g.S.x_loss_gap_pct);
      ("y_loss_gap_pct", Json.Num g.S.y_loss_gap_pct);
      ("bridge_delay_gap_pct", Json.Num g.S.bridge_delay_gap_pct);
    ]
  in
  if j.S.converged then Reply_ok fields
  else Reply_degraded ("power iteration did not converge within the sweep cap", fields)

(* Occupies a worker for a controlled interval — lets tests fill the
   queue deterministically.  Chaos-gated: a production daemon must not
   offer a free denial-of-service op. *)
let stall_handler ~deadline:_ req =
  if not (chaos_enabled ()) then bad_request "stall requires BUFSIZE_CHAOS=1"
  else begin
    let ms = Option.value ~default:100. (Json.mem_number "ms" req) in
    Unix.sleepf (Float.max 0. ms /. 1000.);
    Reply_ok [ ("slept_ms", Json.Num ms) ]
  end

let () =
  register_op "size" size_handler;
  register_op "simulate" simulate_handler;
  register_op "kron" kron_handler;
  register_op "stall" stall_handler

(* ------------------------------------------------- conns, queue, server *)

type conn = {
  fd : Unix.file_descr;
  wm : Mutex.t;  (* serializes reply writes from workers and the IO loop *)
  rbuf : Buffer.t;
  mutable skipping : bool;  (* discarding the rest of an oversized line *)
  mutable eof : bool;
  mutable alive : bool;  (* false after a write error: stop writing *)
  pending : int Atomic.t;  (* queued + running requests of this conn *)
}

type work = {
  w_conn : conn;
  w_id : Json.t;
  w_op : string;
  w_handler : handler;
  w_req : Json.t;
  w_deadline : Resilience.budget;
}

type queue = {
  qm : Mutex.t;
  qcv : Condition.t;
  items : work Queue.t;
  depth : int;
  mutable closed : bool;
}

let queue_create depth =
  {
    qm = Mutex.create ();
    qcv = Condition.create ();
    items = Queue.create ();
    depth;
    closed = false;
  }

(* Non-blocking admission: full queue means an immediate typed rejection,
   never an unbounded backlog.  Returns the waiting count for the
   retry-after hint (read under the same lock, so never torn). *)
let queue_try_push q w =
  Mutex.lock q.qm;
  let accepted = (not q.closed) && Queue.length q.items < q.depth in
  if accepted then begin
    Queue.push w q.items;
    Condition.signal q.qcv
  end;
  let waiting = Queue.length q.items in
  Mutex.unlock q.qm;
  (accepted, waiting)

let queue_pop q =
  Mutex.lock q.qm;
  while Queue.is_empty q.items && not q.closed do
    Condition.wait q.qcv q.qm
  done;
  let w = if Queue.is_empty q.items then None else Some (Queue.pop q.items) in
  Mutex.unlock q.qm;
  w

let queue_close q =
  Mutex.lock q.qm;
  q.closed <- true;
  Condition.broadcast q.qcv;
  Mutex.unlock q.qm

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  q : queue;
  stopping : bool Atomic.t;
  mutable conns : conn list;  (* touched only by the IO domain *)
  mutable worker_domains : unit Domain.t array;
  mutable io_domain : unit Domain.t option;
  mutable stopped : bool;
  ewma_ms : float Atomic.t;  (* smoothed request service time *)
}

let socket_path t = t.cfg.socket_path
let config t = t.cfg

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 1.0);
        write_all fd b off len

let write_reply conn ~id ~op reply =
  let line = Json.encode (reply_json ~id ~op reply) ^ "\n" in
  Mutex.lock conn.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wm)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (Bytes.of_string line) 0 (String.length line)
        with Unix.Unix_error _ -> conn.alive <- false)

let deadline_of_request t req =
  match Json.mem_number "deadline_ms" req with
  | Some ms when ms <= 0. -> Resilience.expired ()
  | Some ms -> Resilience.of_ms ms
  | None ->
      if t.cfg.default_deadline_ms > 0. then Resilience.of_ms t.cfg.default_deadline_ms
      else Resilience.unlimited

(* One complete request line, dispatched from the IO domain.  Every line
   gets exactly one reply: parse errors and unknown ops are answered
   inline, ping short-circuits (a liveness probe that works while every
   worker is busy), everything else is enqueued or bounced with a typed
   overloaded rejection. *)
let handle_line t conn line =
  Obs.incr m_requests;
  match Json.parse line with
  | Error e -> write_reply conn ~id:Json.Null ~op:"" (bad_request ("invalid JSON: " ^ e))
  | Ok req -> (
      let id = Option.value ~default:Json.Null (Json.member "id" req) in
      match Json.mem_string "op" req with
      | None -> write_reply conn ~id ~op:"" (bad_request "missing or non-string \"op\"")
      | Some "ping" ->
          write_reply conn ~id ~op:"ping"
            (Reply_ok [ ("ops", Json.List (List.map (fun n -> Json.Str n) (registered_ops ()))) ])
      | Some op -> (
          match find_op op with
          | None ->
              write_reply conn ~id ~op
                (bad_request
                   (Printf.sprintf "unknown op %S (available: %s)" op
                      (String.concat ", " (registered_ops ()))))
          | Some h ->
              let w =
                {
                  w_conn = conn;
                  w_id = id;
                  w_op = op;
                  w_handler = h;
                  w_req = req;
                  w_deadline = deadline_of_request t req;
                }
              in
              let accepted, waiting = queue_try_push t.q w in
              if accepted then Atomic.incr conn.pending
              else begin
                Obs.incr m_overloaded;
                let ewma = Float.max 1. (Atomic.get t.ewma_ms) in
                let hint =
                  Float.max 1. (ewma *. float_of_int (waiting + 1) /. float_of_int t.cfg.workers)
                in
                write_reply conn ~id ~op
                  (Reply_error
                     {
                       kind = Overloaded;
                       message = Printf.sprintf "request queue full (depth %d)" t.cfg.queue_depth;
                       retry_after_ms = Some hint;
                     })
              end))

(* ------------------------------------------------------------- workers *)

let run_work t w =
  let t0 = Unix.gettimeofday () in
  let reply =
    if Resilience.exhausted w.w_deadline then
      Reply_degraded ("deadline exceeded before the request started", [])
    else
      match
        Resilience.with_ambient_budget w.w_deadline (fun () ->
            w.w_handler ~deadline:w.w_deadline w.w_req)
      with
      | r -> r
      | exception e ->
          if Resilience.exhausted w.w_deadline then
            Reply_degraded ("deadline exceeded: " ^ Printexc.to_string e, [])
          else
            Reply_error
              { kind = Internal_error; message = Printexc.to_string e; retry_after_ms = None }
  in
  (match reply with
  | Reply_degraded _ -> Obs.incr m_degraded
  | Reply_error { kind = Internal_error; _ } -> Obs.incr m_internal
  | Reply_ok _ | Reply_error _ -> ());
  let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let prev = Atomic.get t.ewma_ms in
  Atomic.set t.ewma_ms (if prev <= 0. then dt_ms else (0.8 *. prev) +. (0.2 *. dt_ms));
  write_reply w.w_conn ~id:w.w_id ~op:w.w_op reply;
  Atomic.decr w.w_conn.pending

let worker_loop t =
  let rec go () =
    match queue_pop t.q with
    | None -> ()
    | Some w ->
        (* run_work is exception-free by construction (the handler call is
           guarded, reply writes swallow socket errors); the belt-and-
           braces handler keeps a worker alive against the unexpected. *)
        (try run_work t w with _ -> Atomic.decr w.w_conn.pending);
        go ()
  in
  go ()

(* ------------------------------------------------------------- IO loop *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
let unlink_noerr path = try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

(* Feed a received chunk through the connection's line framing.  The
   partial tail lives in conn.rbuf between reads; oversized lines
   (longer than max_request_bytes without a newline) get one typed reply
   and are discarded up to the next newline, so the connection stays
   usable and the one-reply-per-request invariant holds. *)
let process_chunk t conn chunk =
  let oversized () =
    write_reply conn ~id:Json.Null ~op:""
      (Reply_error
         {
           kind = Oversized;
           message = Printf.sprintf "request exceeds %d bytes" t.cfg.max_request_bytes;
           retry_after_ms = None;
         })
  in
  let data =
    if Buffer.length conn.rbuf = 0 then chunk
    else begin
      let head = Buffer.contents conn.rbuf in
      Buffer.clear conn.rbuf;
      head ^ chunk
    end
  in
  let n = String.length data in
  let rec go start =
    if start < n then
      match String.index_from_opt data start '\n' with
      | Some i ->
          let line = String.sub data start (i - start) in
          if conn.skipping then conn.skipping <- false
          else if String.length line > t.cfg.max_request_bytes then oversized ()
          else if String.trim line <> "" then handle_line t conn line;
          go (i + 1)
      | None ->
          let rest = n - start in
          if conn.skipping then ()
          else if rest > t.cfg.max_request_bytes then begin
            conn.skipping <- true;
            oversized ()
          end
          else Buffer.add_substring conn.rbuf data start rest
  in
  go 0

let accept_conns t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          {
            fd;
            wm = Mutex.create ();
            rbuf = Buffer.create 256;
            skipping = false;
            eof = false;
            alive = true;
            pending = Atomic.make 0;
          }
          :: t.conns;
        loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  loop ()

let read_conn t conn buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> conn.eof <- true
  | nread -> process_chunk t conn (Bytes.sub_string buf 0 nread)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ ->
      conn.eof <- true;
      conn.alive <- false

let io_loop t =
  let buf = Bytes.create 65536 in
  while not (Atomic.get t.stopping) do
    (* Reap connections that reached EOF and have no replies in flight.
       A conn with pending work keeps its fd open so the worker's reply
       still has somewhere to go (and the fd number cannot be reused by
       a new accept while a worker might write to it). *)
    let live, dead = List.partition (fun c -> not (c.eof && Atomic.get c.pending = 0)) t.conns in
    List.iter (fun c -> close_noerr c.fd) dead;
    t.conns <- live;
    let read_fds =
      t.listen_fd :: List.filter_map (fun c -> if c.eof then None else Some c.fd) live
    in
    match Unix.select read_fds [] [] 0.1 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_conns t
            else
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn -> read_conn t conn buf
              | None -> ())
          ready
  done;
  (* Stop accepting immediately; queued work keeps draining in [stop]. *)
  close_noerr t.listen_fd;
  unlink_noerr t.cfg.socket_path

(* ----------------------------------------------------------- lifecycle *)

let start ?config () =
  let cfg = match config with Some c -> c | None -> config_of_env () in
  if cfg.workers < 1 then invalid_arg "Serve.start: need at least one worker";
  (* A dying client mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  unlink_noerr cfg.socket_path;
  (try
     Unix.bind listen_fd (ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     close_noerr listen_fd;
     raise e);
  let t =
    {
      cfg;
      listen_fd;
      q = queue_create cfg.queue_depth;
      stopping = Atomic.make false;
      conns = [];
      worker_domains = [||];
      io_domain = None;
      stopped = false;
      ewma_ms = Atomic.make 0.;
    }
  in
  t.worker_domains <- Array.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.io_domain <- Some (Domain.spawn (fun () -> io_loop t));
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    Option.iter Domain.join t.io_domain;
    t.io_domain <- None;
    (* The IO loop has exited, so no further pushes arrive.  Closing the
       queue lets the workers drain what is queued, reply, and exit. *)
    queue_close t.q;
    Array.iter Domain.join t.worker_domains;
    t.worker_domains <- [||];
    (* All replies are written (workers joined): connections can close. *)
    List.iter (fun c -> close_noerr c.fd) t.conns;
    t.conns <- [];
    unlink_noerr t.cfg.socket_path
  end

(* -------------------------------------------------------------- client *)

type failure_kind = Retryable of string | Fatal of string

let send_and_receive ~socket req =
  match Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Fatal ("socket: " ^ Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          match Unix.connect fd (ADDR_UNIX socket) with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Retryable (Printf.sprintf "connect %s: %s" socket (Unix.error_message e)))
          | () -> (
              let line = Json.encode req ^ "\n" in
              match write_all fd (Bytes.of_string line) 0 (String.length line) with
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Retryable ("send: " ^ Unix.error_message e))
              | () ->
                  let buf = Bytes.create 65536 in
                  let acc = Buffer.create 256 in
                  let rec read_line () =
                    match Unix.read fd buf 0 (Bytes.length buf) with
                    | exception Unix.Unix_error (EINTR, _, _) -> read_line ()
                    | exception Unix.Unix_error (e, _, _) ->
                        Error (Retryable ("recv: " ^ Unix.error_message e))
                    | 0 -> Error (Fatal "connection closed before a reply arrived")
                    | n -> (
                        Buffer.add_subbytes acc buf 0 n;
                        let s = Buffer.contents acc in
                        match String.index_opt s '\n' with
                        | None -> read_line ()
                        | Some i -> (
                            match Json.parse (String.sub s 0 i) with
                            | Ok v -> Ok v
                            | Error e -> Error (Fatal ("unparsable reply: " ^ e))))
                  in
                  read_line ()))

let request ~socket req =
  match send_and_receive ~socket req with
  | Ok v -> Ok v
  | Error (Retryable m) | Error (Fatal m) -> Error m

let reply_overloaded_hint v =
  match Json.member "error" v with
  | Some err when Json.mem_string "kind" err = Some "overloaded" ->
      Some (Option.value ~default:0. (Json.mem_number "retry_after_ms" err))
  | Some _ | None -> None

let request_with_retry ?(attempts = 6) ?(base_delay_ms = 25.) ?(max_delay_ms = 2000.) ?seed
    ~socket req =
  let rng =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.) in
  let backoff k hint =
    (* Full jitter over the exponential cap, floored at the server's
       retry-after hint when it gave one. *)
    let cap = Float.min max_delay_ms (base_delay_ms *. (2. ** float_of_int k)) in
    let jittered = Random.State.float rng cap in
    Float.max (Option.value ~default:0. hint) jittered
  in
  let rec go k =
    match send_and_receive ~socket req with
    | Ok v -> (
        match reply_overloaded_hint v with
        | Some hint when k + 1 < attempts ->
            sleep_ms (backoff k (Some hint));
            go (k + 1)
        | Some _ | None -> Ok v)
    | Error (Fatal m) -> Error m
    | Error (Retryable m) ->
        if k + 1 < attempts then begin
          sleep_ms (backoff k None);
          go (k + 1)
        end
        else Error m
  in
  go 0
