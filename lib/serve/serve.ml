(* The sizing daemon: a select-based IO loop on one domain, worker
   domains draining a bounded queue, replies written straight from the
   worker that computed them (serialized per connection).

   Worker *domains* rather than threads on purpose: the per-request
   deadline travels as the ambient Resilience budget, which is
   domain-local, so each in-flight request keeps its own deadline no
   matter how the solves below it are scheduled. *)

module Json = Bufsize_json.Json
module Obs = Bufsize_obs.Obs
module Resilience = Bufsize_resilience.Resilience
module Sizing = Bufsize_soc.Sizing
module Spec_parser = Bufsize_soc.Spec_parser
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Buffer_alloc = Bufsize_soc.Buffer_alloc

let m_requests = Obs.counter "serve.requests"
let m_overloaded = Obs.counter "serve.overloaded"
let m_degraded = Obs.counter "serve.degraded"
let m_internal = Obs.counter "serve.internal_errors"

(* ------------------------------------------------------- configuration *)

type config = {
  socket_path : string;
  queue_depth : int;
  workers : int;
  default_deadline_ms : float;
  max_request_bytes : int;
  flight_cap : int;
  log_requests : bool;
}

let env_nonneg_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | Some _ | None ->
          invalid_arg (Printf.sprintf "%s: expected a nonnegative integer, got %S" name s))

let env_float name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "%s: expected a number, got %S" name s))

let env_bool name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some ("0" | "false" | "off" | "no") -> false
  | Some s -> invalid_arg (Printf.sprintf "%s: expected a boolean, got %S" name s)

let default_socket_path () = Filename.concat (Filename.get_temp_dir_name ()) "bufsize.sock"

let config_of_env () =
  {
    socket_path =
      (match Sys.getenv_opt "BUFSIZE_SERVE_SOCKET" with
      | None | Some "" -> default_socket_path ()
      | Some p -> p);
    queue_depth = env_nonneg_int "BUFSIZE_SERVE_QUEUE" 64;
    workers =
      Int.max 1
        (env_nonneg_int "BUFSIZE_SERVE_WORKERS"
           (Int.max 1 (Int.min 4 (Domain.recommended_domain_count () - 1))));
    default_deadline_ms = env_float "BUFSIZE_SERVE_DEADLINE_MS" 0.;
    max_request_bytes = env_nonneg_int "BUFSIZE_SERVE_MAX_REQUEST" (1 lsl 20);
    flight_cap = Int.max 1 (env_nonneg_int "BUFSIZE_FLIGHT_CAP" 256);
    log_requests = env_bool "BUFSIZE_SERVE_LOG_REQUESTS" false;
  }

let temp_socket_path () =
  let path = Filename.temp_file "bufsize" ".sock" in
  (* temp_file creates the file; the bind below wants the name only. *)
  (try Sys.remove path with Sys_error _ -> ());
  path

let chaos_enabled () =
  match Sys.getenv_opt "BUFSIZE_CHAOS" with Some "1" -> true | Some _ | None -> false

(* ------------------------------------------------------------ handlers *)

type error_kind = Bad_request | Oversized | Overloaded | Internal_error

let error_kind_name = function
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Internal_error -> "internal_error"

type reply =
  | Reply_ok of (string * Json.t) list
  | Reply_degraded of string * (string * Json.t) list
  | Reply_error of { kind : error_kind; message : string; retry_after_ms : float option }

type handler = deadline:Resilience.budget -> Json.t -> reply

let ops : (string, handler) Hashtbl.t = Hashtbl.create 16
let ops_mutex = Mutex.create ()

(* Ops the IO loop answers inline, without a worker: [ping] (liveness
   even when every worker is busy), [stats] and [flight] (they read
   server state a handler cannot reach — and an operator probing a
   saturated daemon needs them to answer exactly then). *)
let inline_ops = [ "ping"; "stats"; "flight" ]

let register_op name h =
  if List.mem name inline_ops then
    invalid_arg (Printf.sprintf "Serve.register_op: %s is answered by the IO loop" name);
  Mutex.lock ops_mutex;
  Hashtbl.replace ops name h;
  Mutex.unlock ops_mutex

let find_op name =
  Mutex.lock ops_mutex;
  let h = Hashtbl.find_opt ops name in
  Mutex.unlock ops_mutex;
  h

let registered_ops () =
  Mutex.lock ops_mutex;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) ops [] in
  Mutex.unlock ops_mutex;
  List.sort String.compare (inline_ops @ names)

let bad_request message = Reply_error { kind = Bad_request; message; retry_after_ms = None }

(* A handler body that validates by raising Invalid_argument (the
   convention throughout the library) maps those onto bad_request — the
   client's fault, not an internal error.  Other exceptions propagate to
   the worker, which types them as degraded (deadline ran out mid-solve)
   or internal_error. *)
let guard f = try f () with Invalid_argument m -> bad_request m

(* ------------------------------------------------ reply serialization *)

let reply_json ~id ~op reply =
  let base = [ ("id", id); ("op", Json.Str op) ] in
  match reply with
  | Reply_ok fields -> Json.Obj (base @ (("status", Json.Str "ok") :: fields))
  | Reply_degraded (reason, fields) ->
      Json.Obj
        (base @ (("status", Json.Str "degraded") :: ("reason", Json.Str reason) :: fields))
  | Reply_error { kind; message; retry_after_ms } ->
      let err =
        [ ("kind", Json.Str (error_kind_name kind)); ("message", Json.Str message) ]
        @ (match retry_after_ms with None -> [] | Some ms -> [ ("retry_after_ms", Json.Num ms) ])
      in
      Json.Obj (base @ [ ("status", Json.Str "error"); ("error", Json.Obj err) ])

(* ----------------------------------------------- shared serialization *)

let sizing_core_json traffic (r : Sizing.result) =
  let topo = Traffic.topology traffic in
  let entry (e : Buffer_alloc.entry) =
    Json.Obj
      [
        ("bus", Json.Str (Topology.bus topo e.Buffer_alloc.bus).Topology.bus_name);
        ("client", Json.Str (Traffic.client_label topo e.Buffer_alloc.client));
        ("words", Json.Num (float_of_int e.Buffer_alloc.words));
      ]
  in
  Json.Obj
    [
      ( "allocation",
        Json.List (Array.to_list (Array.map entry r.Sizing.allocation.Buffer_alloc.entries)) );
      ("total_words", Json.Num (float_of_int r.Sizing.allocation.Buffer_alloc.total));
      ("predicted_loss_rate", Json.Num r.Sizing.predicted_loss_rate);
      ("words_per_level", Json.Num r.Sizing.words_per_level);
      ("budget_bound_active", Json.Bool r.Sizing.budget_bound_active);
    ]

let solver_stats_json () =
  let warm_acc, warm_rej = Bufsize_numeric.Simplex_revised.warm_stats () in
  let lp_hits, lp_misses = Bufsize_numeric.Lp.cache_stats () in
  let sz_hits, sz_misses = Sizing.cache_stats () in
  let pair h m =
    Json.Obj [ ("hits", Json.Num (float_of_int h)); ("misses", Json.Num (float_of_int m)) ]
  in
  Json.Obj
    [
      ("lp_cache", pair lp_hits lp_misses);
      ("sizing_cache", pair sz_hits sz_misses);
      ( "warm_start",
        Json.Obj
          [
            ("accepted", Json.Num (float_of_int warm_acc));
            ("rejected", Json.Num (float_of_int warm_rej));
          ] );
    ]

(* -------------------------------------------------------- built-in ops *)

let arch_of_request req =
  match Json.mem_string "spec" req with
  | Some text -> (
      match Spec_parser.parse text with Ok a -> Ok a | Error e -> Error ("spec: " ^ e))
  | None -> (
      match Json.mem_string "arch" req with
      | Some "fig1" -> Ok (Bufsize_soc.Fig1.create ())
      | Some "netproc" -> Ok (Bufsize_soc.Netproc.create ())
      | Some "amba" -> Ok (Bufsize_soc.Amba.create ())
      | Some other ->
          Error
            (Printf.sprintf "unknown architecture %S (use fig1, netproc, amba, or inline \"spec\")"
               other)
      | None -> Error "request needs an \"arch\" name or inline \"spec\" text")

let degradation_reason health =
  match Resilience.status_reason (Resilience.worst_status (List.map snd health)) with
  | Some r -> r
  | None -> "degraded"

let size_handler ~deadline:_ req =
  match arch_of_request req with
  | Error e -> bad_request e
  | Ok (_, traffic) ->
      guard @@ fun () ->
      let budget = Option.value ~default:16 (Json.mem_int "budget" req) in
      let max_states = Option.value ~default:64 (Json.mem_int "max_states" req) in
      let config = { (Sizing.default_config ~budget) with Sizing.max_states } in
      let r = Sizing.run config traffic in
      let fields =
        [
          ("result", sizing_core_json traffic r);
          ("health", Json.parse_exn (Resilience.health_to_json r.Sizing.health));
          ("solver_stats", solver_stats_json ());
        ]
      in
      if Resilience.health_ok r.Sizing.health then Reply_ok fields
      else Reply_degraded (degradation_reason r.Sizing.health, fields)

let simulate_handler ~deadline:_ req =
  match arch_of_request req with
  | Error e -> bad_request e
  | Ok (_, traffic) ->
      guard @@ fun () ->
      let budget = Option.value ~default:16 (Json.mem_int "budget" req) in
      let horizon = Option.value ~default:2000. (Json.mem_number "horizon" req) in
      let seed = Option.value ~default:1 (Json.mem_int "seed" req) in
      let max_states = Option.value ~default:64 (Json.mem_int "max_states" req) in
      let policy = Option.value ~default:"uniform" (Json.mem_string "policy" req) in
      let allocation =
        match policy with
        | "uniform" -> Buffer_alloc.uniform traffic ~budget
        | "proportional" -> Buffer_alloc.traffic_proportional traffic ~budget
        | "ctmdp" ->
            let config = { (Sizing.default_config ~budget) with Sizing.max_states } in
            (Sizing.run config traffic).Sizing.allocation
        | other -> invalid_arg (Printf.sprintf "unknown policy %S" other)
      in
      let spec =
        {
          (Bufsize_sim.Sim_run.default_spec ~traffic ~allocation) with
          Bufsize_sim.Sim_run.horizon;
          seed;
        }
      in
      let report = Bufsize_sim.Sim_run.run spec in
      let module M = Bufsize_sim.Metrics in
      Reply_ok
        [
          ("offered", Json.Num (float_of_int (M.total_offered report)));
          ("lost", Json.Num (float_of_int (M.total_lost report)));
          ("delivered", Json.Num (float_of_int (M.total_delivered report)));
          ("loss_fraction", Json.Num (M.loss_fraction report));
          ("events", Json.Num (float_of_int report.M.events));
          ("horizon", Json.Num report.M.horizon);
        ]

let kron_handler ~deadline:_ req =
  guard @@ fun () ->
  let num name default = Option.value ~default (Json.mem_number name req) in
  let int_field name default = Option.value ~default (Json.mem_int name req) in
  let kx = int_field "kx" 9 and ky = int_field "ky" 9 in
  if kx < 1 || ky < 1 then invalid_arg "queue capacities must be at least 1";
  let spec =
    {
      Bufsize_soc.Monolithic.kx;
      ky;
      lambda_x = num "lambda_x" 1.5;
      lambda_y = num "lambda_y" 1.2;
      cross_fraction = num "cross" 0.25;
      mu_x = num "mu_x" 2.4;
      mu_y = num "mu_y" 2.2;
    }
  in
  let bridge = Json.mem_int "bridge" req in
  let g = Bufsize_soc.San_bridge.compare_split ?bridge_capacity:bridge spec in
  let module S = Bufsize_soc.San_bridge in
  let j = g.S.joint in
  let fields =
    [
      ("states", Json.Num (float_of_int j.S.states));
      ("sweeps", Json.Num (float_of_int j.S.sweeps));
      ("converged", Json.Bool j.S.converged);
      ("residual", Json.Num j.S.residual);
      ("x_loss", Json.Num j.S.x_loss);
      ("bridge_loss", Json.Num j.S.bridge_loss);
      ("y_loss", Json.Num j.S.y_loss);
      ("x_loss_gap_pct", Json.Num g.S.x_loss_gap_pct);
      ("y_loss_gap_pct", Json.Num g.S.y_loss_gap_pct);
      ("bridge_delay_gap_pct", Json.Num g.S.bridge_delay_gap_pct);
    ]
  in
  if j.S.converged then Reply_ok fields
  else Reply_degraded ("power iteration did not converge within the sweep cap", fields)

(* Occupies a worker for a controlled interval — lets tests fill the
   queue deterministically.  Chaos-gated: a production daemon must not
   offer a free denial-of-service op. *)
let stall_handler ~deadline:_ req =
  if not (chaos_enabled ()) then bad_request "stall requires BUFSIZE_CHAOS=1"
  else begin
    let ms = Option.value ~default:100. (Json.mem_number "ms" req) in
    Unix.sleepf (Float.max 0. ms /. 1000.);
    Reply_ok [ ("slept_ms", Json.Num ms) ]
  end

(* The full Obs metrics registry — counters, gauges, and the per-op
   latency histograms with their p50/p95/p99 — as JSON, or as Prometheus
   text exposition when the request sets ["prometheus": true] (or
   ["format": "prometheus"]).  A worker op on purpose: the export walks
   every metric shard, which has no business on the IO domain. *)
let metrics_handler ~deadline:_ req =
  let prometheus =
    (match Json.member "prometheus" req with Some (Json.Bool b) -> b | _ -> false)
    || Json.mem_string "format" req = Some "prometheus"
  in
  if prometheus then
    Reply_ok
      [
        ("content_type", Json.Str "text/plain; version=0.0.4");
        ("text", Json.Str (Obs.metrics_prometheus ()));
      ]
  else Reply_ok [ ("metrics", Json.parse_exn (Obs.metrics_json ())) ]

let () =
  register_op "size" size_handler;
  register_op "simulate" simulate_handler;
  register_op "kron" kron_handler;
  register_op "stall" stall_handler;
  register_op "metrics" metrics_handler

(* ------------------------------------------- flight recorder & stats *)

(* One completed request, as remembered by the flight recorder: enough
   for a postmortem (who, what, how long, how it ended) without
   always-on tracing.  Immutable, so ring slots are single pointer
   stores and records can never be torn. *)
type flight_record = {
  fr_rid : int;  (* server-assigned request id *)
  fr_op : string;
  fr_outcome : string;  (* "ok" | "degraded" | an error kind name *)
  fr_note : string;  (* degradation reason / error message; "" when ok *)
  fr_queue_ms : float;
  fr_service_ms : float;
  fr_span : int;  (* telemetry root span id; 0 when not captured *)
}

let flight_record_json r =
  Json.Obj
    [
      ("request_id", Json.Num (float_of_int r.fr_rid));
      ("op", Json.Str r.fr_op);
      ("outcome", Json.Str r.fr_outcome);
      ("note", Json.Str r.fr_note);
      ("queue_ms", Json.Num r.fr_queue_ms);
      ("service_ms", Json.Num r.fr_service_ms);
      ("span", if r.fr_span = 0 then Json.Null else Json.Num (float_of_int r.fr_span));
    ]

(* Per-op admission accounting for the [stats] op.  [in_flight] is
   derived as accepted - completed - failed under the same mutex both
   sides update, so the conservation identity the serve oracle checks
   holds at every instant, not just at quiescence. *)
type op_stat = { mutable os_accepted : int; mutable os_completed : int; mutable os_failed : int }

(* Per-op latency histograms (queue wait + service, milliseconds) on the
   fixed log buckets.  Registered in the process-global Obs registry —
   that is what the [metrics] op exports — and observed through the
   ungated path so the daemon's SLO data fills without enabling
   process-wide metrics. *)
let latency_m = Mutex.create ()
let latency_tbl : (string, Obs.histogram) Hashtbl.t = Hashtbl.create 8

let latency_hist op =
  Mutex.lock latency_m;
  let h =
    match Hashtbl.find_opt latency_tbl op with
    | Some h -> h
    | None ->
        let h = Obs.histogram_with_bounds ("serve.latency_ms." ^ op) Obs.latency_ms_bounds in
        Hashtbl.replace latency_tbl op h;
        h
  in
  Mutex.unlock latency_m;
  h

(* One structured stderr line per completed request (--log-requests).
   A global mutex keeps lines whole across worker domains. *)
let log_m = Mutex.create ()

let request_log_line r =
  Json.encode
    (Json.Obj
       [
         ("request_id", Json.Num (float_of_int r.fr_rid));
         ("op", Json.Str r.fr_op);
         ("outcome", Json.Str r.fr_outcome);
         ("queue_ms", Json.Num r.fr_queue_ms);
         ("service_ms", Json.Num r.fr_service_ms);
       ])

let log_request r =
  let line = request_log_line r in
  Mutex.lock log_m;
  (try
     output_string stderr line;
     output_char stderr '\n';
     flush stderr
   with Sys_error _ -> ());
  Mutex.unlock log_m

(* ------------------------------------------------- conns, queue, server *)

type conn = {
  fd : Unix.file_descr;
  wm : Mutex.t;  (* serializes reply writes from workers and the IO loop *)
  rbuf : Buffer.t;
  mutable skipping : bool;  (* discarding the rest of an oversized line *)
  mutable eof : bool;
  mutable alive : bool;  (* false after a write error: stop writing *)
  pending : int Atomic.t;  (* queued + running requests of this conn *)
}

type work = {
  w_conn : conn;
  w_id : Json.t;
  w_rid : int;  (* server-assigned, unique per dispatched request *)
  w_op : string;
  w_handler : handler;
  w_req : Json.t;
  w_deadline : Resilience.budget;
  w_enqueued : float;  (* Unix time at admission, for queue-wait *)
  w_telemetry : bool;  (* request asked for its own span subtree *)
}

type queue = {
  qm : Mutex.t;
  qcv : Condition.t;
  items : work Queue.t;
  depth : int;
  mutable closed : bool;
}

let queue_create depth =
  {
    qm = Mutex.create ();
    qcv = Condition.create ();
    items = Queue.create ();
    depth;
    closed = false;
  }

(* Non-blocking admission: full queue means an immediate typed rejection,
   never an unbounded backlog.  Returns the waiting count for the
   retry-after hint (read under the same lock, so never torn). *)
let queue_try_push q w =
  Mutex.lock q.qm;
  let accepted = (not q.closed) && Queue.length q.items < q.depth in
  if accepted then begin
    Queue.push w q.items;
    Condition.signal q.qcv
  end;
  let waiting = Queue.length q.items in
  Mutex.unlock q.qm;
  (accepted, waiting)

let queue_pop q =
  Mutex.lock q.qm;
  while Queue.is_empty q.items && not q.closed do
    Condition.wait q.qcv q.qm
  done;
  let w = if Queue.is_empty q.items then None else Some (Queue.pop q.items) in
  Mutex.unlock q.qm;
  w

let queue_close q =
  Mutex.lock q.qm;
  q.closed <- true;
  Condition.broadcast q.qcv;
  Mutex.unlock q.qm

let queue_length q =
  Mutex.lock q.qm;
  let n = Queue.length q.items in
  Mutex.unlock q.qm;
  n

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  q : queue;
  stopping : bool Atomic.t;
  mutable conns : conn list;  (* touched only by the IO domain *)
  mutable worker_domains : unit Domain.t array;
  mutable io_domain : unit Domain.t option;
  mutable stopped : bool;
  ewma_ms : float Atomic.t;  (* smoothed request service time *)
  started_at : float;
  rids : int Atomic.t;  (* next request id *)
  flight : flight_record Obs.Ring.t;
  stats_m : Mutex.t;
  op_stats : (string, op_stat) Hashtbl.t;
}

let op_stat_locked t op =
  match Hashtbl.find_opt t.op_stats op with
  | Some s -> s
  | None ->
      let s = { os_accepted = 0; os_completed = 0; os_failed = 0 } in
      Hashtbl.replace t.op_stats op s;
      s

let stat_accepted t op =
  Mutex.lock t.stats_m;
  let s = op_stat_locked t op in
  s.os_accepted <- s.os_accepted + 1;
  Mutex.unlock t.stats_m

let stat_done t op ~failed =
  Mutex.lock t.stats_m;
  let s = op_stat_locked t op in
  if failed then s.os_failed <- s.os_failed + 1 else s.os_completed <- s.os_completed + 1;
  Mutex.unlock t.stats_m

let socket_path t = t.cfg.socket_path
let config t = t.cfg

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 1.0);
        write_all fd b off len

(* [extra] fields (the per-request telemetry object) are appended after
   everything else, so stripping them from a reply restores the exact
   bytes of the plain reply — the invariant the serve oracle checks. *)
let write_reply ?(extra = []) conn ~id ~op reply =
  let j =
    match (reply_json ~id ~op reply, extra) with
    | j, [] -> j
    | Json.Obj kvs, extra -> Json.Obj (kvs @ extra)
    | j, _ -> j
  in
  let line = Json.encode j ^ "\n" in
  Mutex.lock conn.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wm)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (Bytes.of_string line) 0 (String.length line)
        with Unix.Unix_error _ -> conn.alive <- false)

let deadline_of_request t req =
  match Json.mem_number "deadline_ms" req with
  | Some ms when ms <= 0. -> Resilience.expired ()
  | Some ms -> Resilience.of_ms ms
  | None ->
      if t.cfg.default_deadline_ms > 0. then Resilience.of_ms t.cfg.default_deadline_ms
      else Resilience.unlimited

(* ------------------------------------------------------ introspection *)

let num_int n = Json.Num (float_of_int n)

(* The live server snapshot, answered inline by the IO domain: an
   operator must be able to read queue depth and in-flight counts from a
   daemon whose every worker is wedged.  Reading [accepted] from the IO
   domain and the completion counts under [stats_m] makes
   accepted = completed + failed + in_flight exact. *)
let stats_reply t =
  Mutex.lock t.stats_m;
  let per_op =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold
         (fun op s acc -> (op, (s.os_accepted, s.os_completed, s.os_failed)) :: acc)
         t.op_stats [])
  in
  Mutex.unlock t.stats_m;
  let acc, comp, fail =
    List.fold_left
      (fun (a, c, f) (_, (oa, oc, of_)) -> (a + oa, c + oc, f + of_))
      (0, 0, 0) per_op
  in
  let op_json (op, (oa, oc, of_)) =
    ( op,
      Json.Obj
        [
          ("accepted", num_int oa);
          ("completed", num_int oc);
          ("failed", num_int of_);
          ("in_flight", num_int (oa - oc - of_));
        ] )
  in
  Reply_ok
    [
      ("uptime_s", Json.Num (Unix.gettimeofday () -. t.started_at));
      ("queue_depth", num_int t.cfg.queue_depth);
      ("waiting", num_int (queue_length t.q));
      ("workers", num_int t.cfg.workers);
      ("ewma_service_ms", Json.Num (Atomic.get t.ewma_ms));
      ("accepted", num_int acc);
      ("completed", num_int comp);
      ("failed", num_int fail);
      ("in_flight", num_int (acc - comp - fail));
      ("dropped_spans", num_int (Obs.dropped_spans ()));
      ("span_high_water", num_int (Obs.span_high_water ()));
      ("flight_recorded", num_int (Obs.Ring.pushed t.flight));
      ("ops", Json.Obj (List.map op_json per_op));
    ]

let flight_records t = Obs.Ring.tail t.flight

let flight_reply t =
  Reply_ok
    [
      ("capacity", num_int t.cfg.flight_cap);
      ("recorded", num_int (Obs.Ring.pushed t.flight));
      ("records", Json.List (List.map flight_record_json (flight_records t)));
    ]

let flight_dump_path t =
  match Sys.getenv_opt "BUFSIZE_FLIGHT_PATH" with
  | Some p when p <> "" -> p
  | Some _ | None -> t.cfg.socket_path ^ ".flight.jsonl"

(* Merge every domain's ring stripe and write the newest [flight_cap]
   records as JSONL, newest snapshot replacing the previous dump.
   Called on internal_error (from the failing worker), on SIGUSR1 (via
   the CLI), and manually; must never throw into a worker. *)
let dump_flight ?path t =
  let path = match path with Some p -> p | None -> flight_dump_path t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (Json.encode (flight_record_json r));
          output_char oc '\n')
        (flight_records t));
  path

let dump_flight_noerr t = try ignore (dump_flight t) with Sys_error _ -> ()

(* One complete request line, dispatched from the IO domain.  Every line
   gets exactly one reply: parse errors and unknown ops are answered
   inline, ping/stats/flight short-circuit (probes that work while every
   worker is busy), everything else is enqueued or bounced with a typed
   overloaded rejection. *)
let handle_line t conn line =
  Obs.incr m_requests;
  match Json.parse line with
  | Error e -> write_reply conn ~id:Json.Null ~op:"" (bad_request ("invalid JSON: " ^ e))
  | Ok req -> (
      let id = Option.value ~default:Json.Null (Json.member "id" req) in
      match Json.mem_string "op" req with
      | None -> write_reply conn ~id ~op:"" (bad_request "missing or non-string \"op\"")
      | Some "ping" ->
          write_reply conn ~id ~op:"ping"
            (Reply_ok [ ("ops", Json.List (List.map (fun n -> Json.Str n) (registered_ops ()))) ])
      | Some "stats" -> write_reply conn ~id ~op:"stats" (stats_reply t)
      | Some "flight" -> write_reply conn ~id ~op:"flight" (flight_reply t)
      | Some op -> (
          match find_op op with
          | None ->
              write_reply conn ~id ~op
                (bad_request
                   (Printf.sprintf "unknown op %S (available: %s)" op
                      (String.concat ", " (registered_ops ()))))
          | Some h ->
              let w =
                {
                  w_conn = conn;
                  w_id = id;
                  w_rid = Atomic.fetch_and_add t.rids 1;
                  w_op = op;
                  w_handler = h;
                  w_req = req;
                  w_deadline = deadline_of_request t req;
                  w_enqueued = Unix.gettimeofday ();
                  w_telemetry =
                    (match Json.member "telemetry" req with
                    | Some (Json.Bool b) -> b
                    | Some _ | None -> false);
                }
              in
              let accepted, waiting = queue_try_push t.q w in
              if accepted then begin
                Atomic.incr conn.pending;
                stat_accepted t op
              end
              else begin
                Obs.incr m_overloaded;
                let ewma = Float.max 1. (Atomic.get t.ewma_ms) in
                let hint =
                  Float.max 1. (ewma *. float_of_int (waiting + 1) /. float_of_int t.cfg.workers)
                in
                write_reply conn ~id ~op
                  (Reply_error
                     {
                       kind = Overloaded;
                       message = Printf.sprintf "request queue full (depth %d)" t.cfg.queue_depth;
                       retry_after_ms = Some hint;
                     })
              end))

(* ------------------------------------------------------------- workers *)

(* Cache/warm-start counters sampled around a telemetry request; the
   reply carries the deltas.  (Process-global counters, so concurrent
   requests can bleed into each other's deltas — telemetry is a
   diagnostic view, not an accounting one.) *)
let cache_stats_now () =
  let lp_h, lp_m = Bufsize_numeric.Lp.cache_stats () in
  let sz_h, sz_m = Sizing.cache_stats () in
  let wa, wr = Bufsize_numeric.Simplex_revised.warm_stats () in
  (lp_h, lp_m, sz_h, sz_m, wa, wr)

let span_json epoch (s : Obs.span_record) =
  Json.Obj
    [
      ("id", num_int s.Obs.sid);
      ("parent", num_int s.Obs.sparent);
      ("name", Json.Str s.Obs.sname);
      ("domain", num_int s.Obs.strack);
      ("start_us", Json.Num (Int64.to_float (Int64.sub s.Obs.sstart_ns epoch) /. 1e3));
      ("dur_us", Json.Num (Int64.to_float s.Obs.sdur_ns /. 1e3));
      ("alloc_minor_words", Json.Num s.Obs.salloc_minor_w);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Obs.sattrs));
    ]

let reply_fields = function
  | Reply_ok fields | Reply_degraded (_, fields) -> fields
  | Reply_error _ -> []

let telemetry_json ~rid ~root ~spans ~spans_dropped ~queue_ms ~service_ms ~c0 ~c1 ~reply =
  let lp_h0, lp_m0, sz_h0, sz_m0, wa0, wr0 = c0 in
  let lp_h1, lp_m1, sz_h1, sz_m1, wa1, wr1 = c1 in
  let pair h m = Json.Obj [ ("hits", num_int h); ("misses", num_int m) ] in
  let epoch = match spans with s :: _ -> s.Obs.sstart_ns | [] -> 0L in
  Json.Obj
    [
      ("request_id", num_int rid);
      ("queue_ms", Json.Num queue_ms);
      ("service_ms", Json.Num service_ms);
      ("root_span", if root = 0 then Json.Null else num_int root);
      ("spans", Json.List (List.map (span_json epoch) spans));
      ("spans_dropped", num_int spans_dropped);
      ( "solvers",
        (* The solver diagnostics (engine, status, iterations, residual,
           fallbacks, chain span id) as the handler attached them. *)
        Option.value ~default:Json.Null (List.assoc_opt "health" (reply_fields reply)) );
      ( "cache",
        Json.Obj
          [
            ("lp", pair (lp_h1 - lp_h0) (lp_m1 - lp_m0));
            ("sizing", pair (sz_h1 - sz_h0) (sz_m1 - sz_m0));
            ( "warm_start",
              Json.Obj [ ("accepted", num_int (wa1 - wa0)); ("rejected", num_int (wr1 - wr0)) ] );
          ] );
    ]

let run_work t w =
  let t0 = Unix.gettimeofday () in
  let queue_ms = (t0 -. w.w_enqueued) *. 1000. in
  let compute () =
    if Resilience.exhausted w.w_deadline then
      Reply_degraded ("deadline exceeded before the request started", [])
    else
      match
        Resilience.with_ambient_budget w.w_deadline (fun () ->
            w.w_handler ~deadline:w.w_deadline w.w_req)
      with
      | r -> r
      | exception e ->
          if Resilience.exhausted w.w_deadline then
            Reply_degraded ("deadline exceeded: " ^ Printexc.to_string e, [])
          else
            Reply_error
              { kind = Internal_error; message = Printexc.to_string e; retry_after_ms = None }
  in
  (* Telemetry wraps the handler in a capture and a root span; the reply
     is the same either way (the capture only observes), so the
     telemetry-stripped reply stays byte-identical to a plain one. *)
  let reply, capture =
    if not w.w_telemetry then (compute (), None)
    else begin
      let c0 = cache_stats_now () in
      let (reply, root), spans, spans_dropped =
        Obs.with_capture (fun () ->
            Obs.span_with_id ~name:"serve.request" (fun root -> (compute (), root)))
      in
      (reply, Some (root, spans, spans_dropped, c0))
    end
  in
  (match reply with
  | Reply_degraded _ -> Obs.incr m_degraded
  | Reply_error { kind = Internal_error; _ } -> Obs.incr m_internal
  | Reply_ok _ | Reply_error _ -> ());
  let service_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let prev = Atomic.get t.ewma_ms in
  Atomic.set t.ewma_ms (if prev <= 0. then service_ms else (0.8 *. prev) +. (0.2 *. service_ms));
  let outcome, note =
    match reply with
    | Reply_ok _ -> ("ok", "")
    | Reply_degraded (reason, _) -> ("degraded", reason)
    | Reply_error { kind; message; _ } -> (error_kind_name kind, message)
  in
  let record =
    {
      fr_rid = w.w_rid;
      fr_op = w.w_op;
      fr_outcome = outcome;
      fr_note = note;
      fr_queue_ms = queue_ms;
      fr_service_ms = service_ms;
      fr_span = (match capture with Some (root, _, _, _) -> root | None -> 0);
    }
  in
  (* Every completion below happens before the reply is written, so a
     client that has its reply sees it reflected in stats/flight. *)
  Obs.observe_always (latency_hist w.w_op) (queue_ms +. service_ms);
  Obs.Ring.push t.flight record;
  stat_done t w.w_op ~failed:(match reply with Reply_error _ -> true | _ -> false);
  if t.cfg.log_requests then log_request record;
  (match reply with
  | Reply_error { kind = Internal_error; _ } -> dump_flight_noerr t
  | Reply_ok _ | Reply_degraded _ | Reply_error _ -> ());
  let extra =
    match capture with
    | None -> []
    | Some (root, spans, spans_dropped, c0) ->
        let c1 = cache_stats_now () in
        [
          ( "telemetry",
            telemetry_json ~rid:w.w_rid ~root ~spans ~spans_dropped ~queue_ms ~service_ms ~c0
              ~c1 ~reply );
        ]
  in
  write_reply ~extra w.w_conn ~id:w.w_id ~op:w.w_op reply;
  Atomic.decr w.w_conn.pending

let worker_loop t =
  let rec go () =
    match queue_pop t.q with
    | None -> ()
    | Some w ->
        (* run_work is exception-free by construction (the handler call is
           guarded, reply writes swallow socket errors); the belt-and-
           braces handler keeps a worker alive against the unexpected. *)
        (try run_work t w with _ -> Atomic.decr w.w_conn.pending);
        go ()
  in
  go ()

(* ------------------------------------------------------------- IO loop *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()
let unlink_noerr path = try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

(* Feed a received chunk through the connection's line framing.  The
   partial tail lives in conn.rbuf between reads; oversized lines
   (longer than max_request_bytes without a newline) get one typed reply
   and are discarded up to the next newline, so the connection stays
   usable and the one-reply-per-request invariant holds. *)
let process_chunk t conn chunk =
  let oversized () =
    write_reply conn ~id:Json.Null ~op:""
      (Reply_error
         {
           kind = Oversized;
           message = Printf.sprintf "request exceeds %d bytes" t.cfg.max_request_bytes;
           retry_after_ms = None;
         })
  in
  let data =
    if Buffer.length conn.rbuf = 0 then chunk
    else begin
      let head = Buffer.contents conn.rbuf in
      Buffer.clear conn.rbuf;
      head ^ chunk
    end
  in
  let n = String.length data in
  let rec go start =
    if start < n then
      match String.index_from_opt data start '\n' with
      | Some i ->
          let line = String.sub data start (i - start) in
          if conn.skipping then conn.skipping <- false
          else if String.length line > t.cfg.max_request_bytes then oversized ()
          else if String.trim line <> "" then handle_line t conn line;
          go (i + 1)
      | None ->
          let rest = n - start in
          if conn.skipping then ()
          else if rest > t.cfg.max_request_bytes then begin
            conn.skipping <- true;
            oversized ()
          end
          else Buffer.add_substring conn.rbuf data start rest
  in
  go 0

let accept_conns t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          {
            fd;
            wm = Mutex.create ();
            rbuf = Buffer.create 256;
            skipping = false;
            eof = false;
            alive = true;
            pending = Atomic.make 0;
          }
          :: t.conns;
        loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  loop ()

let read_conn t conn buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> conn.eof <- true
  | nread -> process_chunk t conn (Bytes.sub_string buf 0 nread)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ ->
      conn.eof <- true;
      conn.alive <- false

let io_loop t =
  let buf = Bytes.create 65536 in
  while not (Atomic.get t.stopping) do
    (* Reap connections that reached EOF and have no replies in flight.
       A conn with pending work keeps its fd open so the worker's reply
       still has somewhere to go (and the fd number cannot be reused by
       a new accept while a worker might write to it). *)
    let live, dead = List.partition (fun c -> not (c.eof && Atomic.get c.pending = 0)) t.conns in
    List.iter (fun c -> close_noerr c.fd) dead;
    t.conns <- live;
    let read_fds =
      t.listen_fd :: List.filter_map (fun c -> if c.eof then None else Some c.fd) live
    in
    match Unix.select read_fds [] [] 0.1 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_conns t
            else
              match List.find_opt (fun c -> c.fd = fd) t.conns with
              | Some conn -> read_conn t conn buf
              | None -> ())
          ready
  done;
  (* Stop accepting immediately; queued work keeps draining in [stop]. *)
  close_noerr t.listen_fd;
  unlink_noerr t.cfg.socket_path

(* ----------------------------------------------------------- lifecycle *)

let start ?config () =
  let cfg = match config with Some c -> c | None -> config_of_env () in
  if cfg.workers < 1 then invalid_arg "Serve.start: need at least one worker";
  (* A dying client mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  unlink_noerr cfg.socket_path;
  (try
     Unix.bind listen_fd (ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     close_noerr listen_fd;
     raise e);
  let t =
    {
      cfg;
      listen_fd;
      q = queue_create cfg.queue_depth;
      stopping = Atomic.make false;
      conns = [];
      worker_domains = [||];
      io_domain = None;
      stopped = false;
      ewma_ms = Atomic.make 0.;
      started_at = Unix.gettimeofday ();
      rids = Atomic.make 1;
      flight = Obs.Ring.create ~capacity:(Int.max 1 cfg.flight_cap);
      stats_m = Mutex.create ();
      op_stats = Hashtbl.create 16;
    }
  in
  t.worker_domains <- Array.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.io_domain <- Some (Domain.spawn (fun () -> io_loop t));
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    Option.iter Domain.join t.io_domain;
    t.io_domain <- None;
    (* The IO loop has exited, so no further pushes arrive.  Closing the
       queue lets the workers drain what is queued, reply, and exit. *)
    queue_close t.q;
    Array.iter Domain.join t.worker_domains;
    t.worker_domains <- [||];
    (* All replies are written (workers joined): connections can close. *)
    List.iter (fun c -> close_noerr c.fd) t.conns;
    t.conns <- [];
    unlink_noerr t.cfg.socket_path
  end

(* -------------------------------------------------------------- client *)

type failure_kind = Retryable of string | Fatal of string

let send_and_receive ~socket req =
  match Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Fatal ("socket: " ^ Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> close_noerr fd)
        (fun () ->
          match Unix.connect fd (ADDR_UNIX socket) with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Retryable (Printf.sprintf "connect %s: %s" socket (Unix.error_message e)))
          | () -> (
              let line = Json.encode req ^ "\n" in
              match write_all fd (Bytes.of_string line) 0 (String.length line) with
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Retryable ("send: " ^ Unix.error_message e))
              | () ->
                  let buf = Bytes.create 65536 in
                  let acc = Buffer.create 256 in
                  let rec read_line () =
                    match Unix.read fd buf 0 (Bytes.length buf) with
                    | exception Unix.Unix_error (EINTR, _, _) -> read_line ()
                    | exception Unix.Unix_error (e, _, _) ->
                        Error (Retryable ("recv: " ^ Unix.error_message e))
                    | 0 -> Error (Fatal "connection closed before a reply arrived")
                    | n -> (
                        Buffer.add_subbytes acc buf 0 n;
                        let s = Buffer.contents acc in
                        match String.index_opt s '\n' with
                        | None -> read_line ()
                        | Some i -> (
                            match Json.parse (String.sub s 0 i) with
                            | Ok v -> Ok v
                            | Error e -> Error (Fatal ("unparsable reply: " ^ e))))
                  in
                  read_line ()))

let request ~socket req =
  match send_and_receive ~socket req with
  | Ok v -> Ok v
  | Error (Retryable m) | Error (Fatal m) -> Error m

let reply_overloaded_hint v =
  match Json.member "error" v with
  | Some err when Json.mem_string "kind" err = Some "overloaded" ->
      Some (Option.value ~default:0. (Json.mem_number "retry_after_ms" err))
  | Some _ | None -> None

let request_with_retry ?(attempts = 6) ?(base_delay_ms = 25.) ?(max_delay_ms = 2000.) ?seed
    ~socket req =
  let rng =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.) in
  let backoff k hint =
    (* Full jitter over the exponential cap, floored at the server's
       retry-after hint when it gave one. *)
    let cap = Float.min max_delay_ms (base_delay_ms *. (2. ** float_of_int k)) in
    let jittered = Random.State.float rng cap in
    Float.max (Option.value ~default:0. hint) jittered
  in
  let rec go k =
    match send_and_receive ~socket req with
    | Ok v -> (
        match reply_overloaded_hint v with
        | Some hint when k + 1 < attempts ->
            sleep_ms (backoff k (Some hint));
            go (k + 1)
        | Some _ | None -> Ok v)
    | Error (Fatal m) -> Error m
    | Error (Retryable m) ->
        if k + 1 < attempts then begin
          sleep_ms (backoff k None);
          go (k + 1)
        end
        else Error m
  in
  go 0
