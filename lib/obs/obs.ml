(* Telemetry core.  Three design rules govern everything here:

   1. The disabled path costs one atomic load and a branch — [span] and
      the metric mutators may sit inside simplex pivots, SpMV, and the
      DES event loop.  The disabled path must also not allocate (the
      test suite asserts this with a Gc.minor_words delta).
   2. Recording never synchronizes across domains on the hot path: span
      buffers are domain-local (Domain.DLS), metric shards are striped
      atomics indexed by domain id.  Readers merge; writers never wait.
   3. Telemetry only observes.  Nothing in the numeric pipeline may
      read a value produced here, so results are bitwise-identical with
      tracing on or off. *)

external now_ns : unit -> int64 = "bufsize_obs_now_ns"

(* ------------------------------------------------------------ enabling *)

(* [spans_on] is the single switch the hot path reads.  It is the OR of
   two slow-path inputs: the user-facing enable (BUFSIZE_TRACE and
   friends) and a refcount of live per-request captures (see the capture
   section below) — a telemetry-enabled request must make [span] record
   even when global tracing is off.  Both inputs change only under
   [enable_m]; the hot path still pays one atomic load. *)
let spans_on = Atomic.make false
let metrics_on = Atomic.make false

(* User tracing routes spans to the per-domain buffers; captures route
   them to their sink only.  The buffer path therefore checks this
   second atomic so a daemon serving telemetry requests does not slowly
   fill (and then permanently saturate) the global span buffers. *)
let user_spans_on = Atomic.make false

let enable_m = Mutex.create ()
let captures_live = ref 0

let spans_enabled () = Atomic.get user_spans_on
let metrics_enabled () = Atomic.get metrics_on

(* Trace epoch: exported timestamps are relative to the last
   [enable_spans] so traces start near t=0. *)
let epoch_ns = Atomic.make 0L

let recompute_spans_on () =
  Atomic.set spans_on (Atomic.get user_spans_on || !captures_live > 0)

let enable_spans () =
  Mutex.lock enable_m;
  Atomic.set epoch_ns (now_ns ());
  Atomic.set user_spans_on true;
  recompute_spans_on ();
  Mutex.unlock enable_m

let enable_metrics () = Atomic.set metrics_on true

let disable () =
  Mutex.lock enable_m;
  Atomic.set user_spans_on false;
  recompute_spans_on ();
  Mutex.unlock enable_m;
  Atomic.set metrics_on false

(* ------------------------------------------------------------- spans *)

type span_record = {
  sid : int;
  sparent : int;
  sname : string;
  strack : int;
  sstart_ns : int64;
  sdur_ns : int64;
  salloc_minor_w : float;
  sattrs : (string * string) list;
}

(* A capture sink: the per-request span collector.  One request installs
   a sink on its worker domain (and, via the pool's context propagation,
   on every domain that runs work for it); spans closing under the sink
   are appended here instead of — or in addition to — the global
   per-domain buffers.  The mutex is uncontended except when a pooled
   solve fans one request across domains, which is exactly when
   correctness needs it. *)
type sink = {
  k_m : Mutex.t;
  mutable k_spans : span_record list;  (* newest first *)
  k_cap : int;
  mutable k_n : int;
  mutable k_dropped : int;
}

(* Per-domain span state.  Mutated only by the owning domain; the
   exporter reads it when the pipeline is quiescent (end of run). *)
type dstate = {
  did : int;
  mutable open_ : int list;  (* ids of open spans, innermost first *)
  mutable ctx : int;  (* propagated parent used when [open_] is empty *)
  mutable sink_ : sink option;  (* live capture on this domain, if any *)
  mutable completed : span_record list;  (* newest first *)
  mutable nspans : int;
  mutable hwm : int;  (* high-water mark of [nspans] since the last reset *)
  mutable dropped : int;
}

let max_spans_per_domain = 1 lsl 17

let registry_m = Mutex.create ()
let registry : dstate list ref = ref []

let dstate_key =
  Domain.DLS.new_key (fun () ->
      let ds =
        {
          did = (Domain.self () :> int);
          open_ = [];
          ctx = 0;
          sink_ = None;
          completed = [];
          nspans = 0;
          hwm = 0;
          dropped = 0;
        }
      in
      Mutex.lock registry_m;
      registry := ds :: !registry;
      Mutex.unlock registry_m;
      ds)

let dstate () = Domain.DLS.get dstate_key

let next_id = Atomic.make 1

let record_span attrs name f =
  let ds = dstate () in
  let id = Atomic.fetch_and_add next_id 1 in
  let parent = match ds.open_ with p :: _ -> p | [] -> ds.ctx in
  ds.open_ <- id :: ds.open_;
  let w0 = Gc.minor_words () in
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = now_ns () in
      let w1 = Gc.minor_words () in
      (match ds.open_ with _ :: tl -> ds.open_ <- tl | [] -> ());
      let to_buffer = Atomic.get user_spans_on in
      let to_sink = ds.sink_ in
      if to_buffer || to_sink <> None then begin
        let sattrs = match attrs with None -> [] | Some g -> ( try g () with _ -> []) in
        let r =
          {
            sid = id;
            sparent = parent;
            sname = name;
            strack = ds.did;
            sstart_ns = t0;
            sdur_ns = Int64.sub t1 t0;
            salloc_minor_w = w1 -. w0;
            sattrs;
          }
        in
        (match to_sink with
        | None -> ()
        | Some k ->
            Mutex.lock k.k_m;
            if k.k_n >= k.k_cap then k.k_dropped <- k.k_dropped + 1
            else begin
              k.k_spans <- r :: k.k_spans;
              k.k_n <- k.k_n + 1
            end;
            Mutex.unlock k.k_m);
        if to_buffer then begin
          if ds.nspans >= max_spans_per_domain then ds.dropped <- ds.dropped + 1
          else begin
            ds.completed <- r :: ds.completed;
            ds.nspans <- ds.nspans + 1;
            if ds.nspans > ds.hwm then ds.hwm <- ds.nspans
          end
        end
      end)
    (fun () -> f id)

let span ?attrs ~name f =
  if not (Atomic.get spans_on) then f () else record_span attrs name (fun _ -> f ())

let span_with_id ?attrs ~name f =
  if not (Atomic.get spans_on) then f 0 else record_span attrs name f

let current_context () =
  if not (Atomic.get spans_on) then 0
  else
    let ds = dstate () in
    match ds.open_ with p :: _ -> p | [] -> ds.ctx

let with_context parent f =
  if parent = 0 || not (Atomic.get spans_on) then f ()
  else begin
    let ds = dstate () in
    let saved = ds.ctx in
    ds.ctx <- parent;
    Fun.protect ~finally:(fun () -> ds.ctx <- saved) f
  end

let recorded_spans () =
  Mutex.lock registry_m;
  let states = !registry in
  Mutex.unlock registry_m;
  let all = List.concat_map (fun ds -> ds.completed) states in
  List.sort (fun a b -> Int64.compare a.sstart_ns b.sstart_ns) all

let dropped_spans () =
  Mutex.lock registry_m;
  let states = !registry in
  Mutex.unlock registry_m;
  List.fold_left (fun acc ds -> acc + ds.dropped) 0 states

let span_high_water () =
  Mutex.lock registry_m;
  let states = !registry in
  Mutex.unlock registry_m;
  List.fold_left (fun acc ds -> Int.max acc ds.hwm) 0 states

(* ----------------------------------------------------------- capture *)

type capture_sink = sink option

let capture_begin () =
  Mutex.lock enable_m;
  incr captures_live;
  recompute_spans_on ();
  Mutex.unlock enable_m

let capture_end () =
  Mutex.lock enable_m;
  captures_live := Int.max 0 (!captures_live - 1);
  recompute_spans_on ();
  Mutex.unlock enable_m

let with_capture ?(max_spans = 4096) f =
  let k = { k_m = Mutex.create (); k_spans = []; k_cap = Int.max 1 max_spans; k_n = 0; k_dropped = 0 } in
  let ds = dstate () in
  let saved = ds.sink_ in
  ds.sink_ <- Some k;
  capture_begin ();
  let result =
    Fun.protect
      ~finally:(fun () ->
        capture_end ();
        ds.sink_ <- saved)
      f
  in
  (* The pool joins its workers before [f] returns, so nothing pushes
     into [k] after this point; the lock is for the memory fence. *)
  Mutex.lock k.k_m;
  let spans = k.k_spans and dropped = k.k_dropped in
  Mutex.unlock k.k_m;
  let spans = List.sort (fun a b -> Int64.compare a.sstart_ns b.sstart_ns) spans in
  (result, spans, dropped)

let current_sink () = if not (Atomic.get spans_on) then None else (dstate ()).sink_

let with_sink k f =
  match k with
  | None -> f ()
  | Some _ ->
      let ds = dstate () in
      let saved = ds.sink_ in
      ds.sink_ <- k;
      Fun.protect ~finally:(fun () -> ds.sink_ <- saved) f

(* ------------------------------------------------------------ metrics *)

(* Shards are striped by domain id: merging sums every stripe, so any
   interleaving or assignment of increments to stripes yields the same
   totals (the qcheck suite checks permutation-independence through
   [Internal]).  32 stripes keeps contention negligible even when domain
   ids collide modulo the stripe count. *)
let stripes = 32

let stripe_of_self () = (Domain.self () :> int) land (stripes - 1)

type counter = { c_name : string; c_shards : int Atomic.t array }
type gauge = { g_name : string; g_bits : int64 Atomic.t }

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_bounds : float array;
  h_buckets : int array;
}

let bucket_bounds = [| 1e-12; 1e-10; 1e-8; 1e-6; 1e-4; 1e-2; 1.; 1e2; 1e4 |]

(* A 1-2-5 log series over the millisecond range — the bucket layout for
   request-latency histograms (fixed log buckets, ~3 per decade), fine
   enough that interpolated p50/p95/p99 land within a factor ~2. *)
let latency_ms_bounds =
  [| 0.05; 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. |]

type hshard = {
  hs_count : int Atomic.t;
  hs_sum : int64 Atomic.t;  (* float bits, CAS-updated *)
  hs_min : int64 Atomic.t;
  hs_max : int64 Atomic.t;
  hs_buckets : int Atomic.t array;
}

type histogram = { h_name : string; h_bounds : float array; h_shards : hshard array }

type metric = MCounter of counter | MGauge of gauge | MHistogram of histogram

let metric_name = function
  | MCounter c -> c.c_name
  | MGauge g -> g.g_name
  | MHistogram h -> h.h_name

let metrics_m = Mutex.create ()
let metrics : metric list ref = ref []  (* reverse registration order *)

(* [same] may itself reject (histogram bounds mismatch), so the unlock
   must survive an exception — a leaked registry lock would deadlock
   every later registration and [reset]. *)
let register name make same =
  Mutex.lock metrics_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock metrics_m)
    (fun () ->
      match List.find_opt (fun m -> metric_name m = name) !metrics with
      | Some m -> (
          match same m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Obs: metric %S already registered with another kind" name))
      | None ->
          let v = make () in
          metrics := v :: !metrics;
          (match same v with Some x -> x | None -> assert false))

let counter name =
  register name
    (fun () -> MCounter { c_name = name; c_shards = Array.init stripes (fun _ -> Atomic.make 0) })
    (function MCounter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> MGauge { g_name = name; g_bits = Atomic.make (Int64.bits_of_float Float.nan) })
    (function MGauge g -> Some g | _ -> None)

let new_hshard nbuckets =
  {
    hs_count = Atomic.make 0;
    hs_sum = Atomic.make (Int64.bits_of_float 0.);
    hs_min = Atomic.make (Int64.bits_of_float Float.infinity);
    hs_max = Atomic.make (Int64.bits_of_float Float.neg_infinity);
    hs_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
  }

let histogram_with_bounds name bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Obs.histogram_with_bounds: empty bounds";
  for i = 1 to n - 1 do
    if not (bounds.(i - 1) < bounds.(i)) then
      invalid_arg "Obs.histogram_with_bounds: bounds must be strictly increasing"
  done;
  register name
    (fun () ->
      MHistogram
        {
          h_name = name;
          h_bounds = Array.copy bounds;
          h_shards = Array.init stripes (fun _ -> new_hshard (n + 1));
        })
    (function
      | MHistogram h ->
          if h.h_bounds = bounds then Some h
          else invalid_arg (Printf.sprintf "Obs: histogram %S registered with other bounds" name)
      | _ -> None)

let histogram name = histogram_with_bounds name bucket_bounds

let add c n =
  if Atomic.get metrics_on then
    ignore (Atomic.fetch_and_add c.c_shards.(stripe_of_self ()) n)

let incr c = add c 1

let set_gauge g v = if Atomic.get metrics_on then Atomic.set g.g_bits (Int64.bits_of_float v)

(* Boxed int64 atomics compare by physical equality in compare_and_set,
   so the read-modify-CAS loop below is the standard lock-free float
   accumulate. *)
let rec cas_float_update a f =
  let old = Atomic.get a in
  let nv = Int64.bits_of_float (f (Int64.float_of_bits old)) in
  if not (Atomic.compare_and_set a old nv) then cas_float_update a f

let bucket_of bounds v =
  let rec go i = if i >= Array.length bounds || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe_shard ~bounds hs v =
  ignore (Atomic.fetch_and_add hs.hs_count 1);
  cas_float_update hs.hs_sum (fun s -> s +. v);
  cas_float_update hs.hs_min (fun m -> Float.min m v);
  cas_float_update hs.hs_max (fun m -> Float.max m v);
  ignore (Atomic.fetch_and_add hs.hs_buckets.(bucket_of bounds v) 1)

let observe h v =
  if Atomic.get metrics_on then
    observe_shard ~bounds:h.h_bounds h.h_shards.(stripe_of_self ()) v

(* The serve layer's latency histograms must fill even when the global
   metrics switch is off (the daemon's own introspection must not
   require enabling process-wide instrumentation overhead), so it
   observes through this ungated variant. *)
let observe_always h v = observe_shard ~bounds:h.h_bounds h.h_shards.(stripe_of_self ()) v

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards
let gauge_value g = Int64.float_of_bits (Atomic.get g.g_bits)

let histogram_value h =
  let count = ref 0 and sum = ref 0. in
  let mn = ref Float.infinity and mx = ref Float.neg_infinity in
  let buckets = Array.make (Array.length h.h_bounds + 1) 0 in
  Array.iter
    (fun hs ->
      count := !count + Atomic.get hs.hs_count;
      sum := !sum +. Int64.float_of_bits (Atomic.get hs.hs_sum);
      mn := Float.min !mn (Int64.float_of_bits (Atomic.get hs.hs_min));
      mx := Float.max !mx (Int64.float_of_bits (Atomic.get hs.hs_max));
      Array.iteri (fun i b -> buckets.(i) <- buckets.(i) + Atomic.get b) hs.hs_buckets)
    h.h_shards;
  {
    h_count = !count;
    h_sum = !sum;
    h_min = !mn;
    h_max = !mx;
    h_bounds = h.h_bounds;
    h_buckets = buckets;
  }

(* Quantile estimation from bucket counts.  The rank of q over n samples
   is ceil(q*n) (clamped to [1,n]), the same definition a sorted-sample
   oracle uses, so the estimate always lands in the bucket that holds
   the true order statistic; within the bucket we interpolate linearly
   by rank.  The open-ended first and last buckets borrow the observed
   min/max as their missing edge, which also makes single-bucket
   populations exact at the extremes. *)
let quantile (s : histogram_snapshot) q =
  if s.h_count = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Int.max 1 (Int.min s.h_count (int_of_float (Float.ceil (q *. float_of_int s.h_count)))) in
    let nb = Array.length s.h_buckets in
    let rec find i cum =
      if i >= nb - 1 then (i, cum)
      else if cum + s.h_buckets.(i) >= rank then (i, cum)
      else find (i + 1) (cum + s.h_buckets.(i))
    in
    let i, before = find 0 0 in
    let in_bucket = Int.max 1 s.h_buckets.(i) in
    let lo = if i = 0 then s.h_min else Float.max s.h_min s.h_bounds.(i - 1) in
    let hi = if i = nb - 1 then s.h_max else Float.min s.h_max s.h_bounds.(i) in
    let frac = float_of_int (rank - before) /. float_of_int in_bucket in
    if not (Float.is_finite lo && Float.is_finite hi) then Float.max lo (Float.min hi 0.)
    else lo +. (frac *. (hi -. lo))
  end

type metric_value =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * histogram_snapshot

let metrics_snapshot () =
  Mutex.lock metrics_m;
  let ms = List.rev !metrics in
  Mutex.unlock metrics_m;
  List.map
    (function
      | MCounter c -> Counter (c.c_name, counter_value c)
      | MGauge g -> Gauge (g.g_name, gauge_value g)
      | MHistogram h -> Histogram (h.h_name, histogram_value h))
    ms
  (* Synthesized from the span buffers rather than bumped on the span
     hot path: always exact, and costs nothing when nothing is dropped. *)
  @ [ Counter ("obs.spans.dropped", dropped_spans ()) ]

(* -------------------------------------------------------------- reset *)

let reset () =
  Mutex.lock registry_m;
  List.iter
    (fun ds ->
      ds.completed <- [];
      ds.nspans <- 0;
      ds.hwm <- 0;
      ds.dropped <- 0)
    !registry;
  Mutex.unlock registry_m;
  Mutex.lock metrics_m;
  List.iter
    (function
      | MCounter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
      | MGauge g -> Atomic.set g.g_bits (Int64.bits_of_float Float.nan)
      | MHistogram h ->
          Array.iter
            (fun hs ->
              Atomic.set hs.hs_count 0;
              Atomic.set hs.hs_sum (Int64.bits_of_float 0.);
              Atomic.set hs.hs_min (Int64.bits_of_float Float.infinity);
              Atomic.set hs.hs_max (Int64.bits_of_float Float.neg_infinity);
              Array.iter (fun b -> Atomic.set b 0) hs.hs_buckets)
            h.h_shards)
    !metrics;
  Mutex.unlock metrics_m;
  if Atomic.get spans_on then Atomic.set epoch_ns (now_ns ())

(* ---------------------------------------------------------- exporters *)

(* Hand-rolled JSON, mirroring lib/core/resilience.ml (which sits above
   this module in the dependency order, so no sharing). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)
let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let rel_us ns = Int64.to_float (Int64.sub ns (Atomic.get epoch_ns)) /. 1e3

let span_args s =
  let kv =
    ("span_id", string_of_int s.sid)
    :: ("parent", string_of_int s.sparent)
    :: ("alloc_minor_words", Printf.sprintf "%.0f" s.salloc_minor_w)
    :: s.sattrs
  in
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) (json_str v)) kv)

let gc_json () =
  let st = Gc.quick_stat () in
  Printf.sprintf
    "{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"heap_words\":%d}"
    (json_float st.Gc.minor_words) (json_float st.Gc.promoted_words)
    (json_float st.Gc.major_words) st.Gc.minor_collections st.Gc.major_collections
    st.Gc.heap_words

let write_chrome_trace path =
  let spans = recorded_spans () in
  let tracks =
    List.sort_uniq compare (List.map (fun s -> s.strack) spans)
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else out ","
  in
  sep ();
  out "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"bufsize\"}}";
  List.iter
    (fun t ->
      sep ();
      out "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain-%d\"}}" t t)
    tracks;
  List.iter
    (fun s ->
      sep ();
      out "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":%s,\"cat\":\"bufsize\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
        s.strack (json_str s.sname) (rel_us s.sstart_ns)
        (Int64.to_float s.sdur_ns /. 1e3)
        (span_args s))
    spans;
  out "]}";
  close_out oc

let metric_json_line = function
  | Counter (n, v) -> Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}" (json_str n) v
  | Gauge (n, v) ->
      Printf.sprintf "{\"type\":\"gauge\",\"name\":%s,\"value\":%s}" (json_str n) (json_float v)
  | Histogram (n, h) ->
      Printf.sprintf
        "{\"type\":\"histogram\",\"name\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[%s]}"
        (json_str n) h.h_count (json_float h.h_sum) (json_float h.h_min) (json_float h.h_max)
        (String.concat "," (Array.to_list (Array.map string_of_int h.h_buckets)))

let write_jsonl path =
  let oc = open_out path in
  List.iter
    (fun s ->
      Printf.fprintf oc
        "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":%s,\"track\":%d,\"start_us\":%.3f,\"dur_us\":%.3f,\"alloc_minor_words\":%s,\"attrs\":{%s}}\n"
        s.sid s.sparent (json_str s.sname) s.strack (rel_us s.sstart_ns)
        (Int64.to_float s.sdur_ns /. 1e3)
        (json_float s.salloc_minor_w)
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) (json_str v)) s.sattrs)))
    (recorded_spans ());
  List.iter (fun m -> Printf.fprintf oc "%s\n" (metric_json_line m)) (metrics_snapshot ());
  Printf.fprintf oc "{\"type\":\"gc\",\"stat\":%s}\n" (gc_json ());
  Printf.fprintf oc "{\"type\":\"dropped_spans\",\"value\":%d}\n" (dropped_spans ());
  close_out oc

let metrics_json () =
  let counters, gauges, histos =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | Counter (n, v) -> (Printf.sprintf "%s:%d" (json_str n) v :: cs, gs, hs)
        | Gauge (n, v) -> (cs, Printf.sprintf "%s:%s" (json_str n) (json_float v) :: gs, hs)
        | Histogram (n, h) ->
            ( cs,
              gs,
              Printf.sprintf
                "%s:{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"bounds\":[%s],\"buckets\":[%s]}"
                (json_str n) h.h_count (json_float h.h_sum) (json_float h.h_min)
                (json_float h.h_max)
                (json_float (quantile h 0.50))
                (json_float (quantile h 0.95))
                (json_float (quantile h 0.99))
                (String.concat "," (Array.to_list (Array.map json_float h.h_bounds)))
                (String.concat "," (Array.to_list (Array.map string_of_int h.h_buckets)))
              :: hs ))
      ([], [], []) (metrics_snapshot ())
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s},\"gc\":%s}"
    (String.concat "," (List.rev counters))
    (String.concat "," (List.rev gauges))
    (String.concat "," (List.rev histos))
    (gc_json ())

(* --------------------------------------------- Prometheus exposition *)

(* Text exposition format 0.0.4.  Metric names keep only [a-zA-Z0-9_:];
   counters gain the conventional _total suffix, histograms emit
   cumulative le-buckets plus _sum/_count, unset gauges (NaN) are
   skipped.  Floats print with the shortest representation that parses
   back to the same value, so [le="0.05"] rather than 17 digits while a
   scraper still sees the exact bucket edges the estimator used. *)
let prometheus_float f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let prometheus_name n =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    n

let metrics_prometheus () =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun m ->
      match m with
      | Counter (n, v) ->
          let n = prometheus_name n ^ "_total" in
          out "# TYPE %s counter\n%s %d\n" n n v
      | Gauge (n, v) ->
          if Float.is_finite v then begin
            let n = prometheus_name n in
            out "# TYPE %s gauge\n%s %s\n" n n (prometheus_float v)
          end
      | Histogram (n, h) ->
          let n = prometheus_name n in
          out "# TYPE %s histogram\n" n;
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              if i < Array.length h.h_bounds then begin
                cum := !cum + c;
                out "%s_bucket{le=\"%s\"} %d\n" n (prometheus_float h.h_bounds.(i)) !cum
              end)
            h.h_buckets;
          out "%s_bucket{le=\"+Inf\"} %d\n" n h.h_count;
          out "%s_sum %s\n" n (prometheus_float h.h_sum);
          out "%s_count %d\n" n h.h_count)
    (metrics_snapshot ());
  Buffer.contents b

let pp_summary ppf () =
  let ms = metrics_snapshot () in
  Format.fprintf ppf "@[<v>== metrics ==@,";
  List.iter
    (fun m ->
      match m with
      | Counter (n, v) -> Format.fprintf ppf "  %-32s %d@," n v
      | Gauge (n, v) ->
          if Float.is_finite v then Format.fprintf ppf "  %-32s %g@," n v
          else Format.fprintf ppf "  %-32s (unset)@," n
      | Histogram (n, h) ->
          if h.h_count = 0 then Format.fprintf ppf "  %-32s (empty)@," n
          else
            Format.fprintf ppf "  %-32s count=%d mean=%.3g min=%.3g max=%.3g@," n h.h_count
              (h.h_sum /. float_of_int h.h_count)
              h.h_min h.h_max)
    ms;
  let spans = recorded_spans () in
  if spans <> [] then begin
    Format.fprintf ppf "== spans (by name) ==@,";
    Format.fprintf ppf "  %-32s %8s %12s %12s %12s@," "name" "count" "total ms" "mean ms" "max ms";
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun s ->
        let ms = Int64.to_float s.sdur_ns /. 1e6 in
        match Hashtbl.find_opt tbl s.sname with
        | None -> Hashtbl.replace tbl s.sname (ref (1, ms, ms))
        | Some r ->
            let c, tot, mx = !r in
            r := (c + 1, tot +. ms, Float.max mx ms))
      spans;
    let rows = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl [] in
    let rows =
      List.sort (fun (_, (_, t1, _)) (_, (_, t2, _)) -> Float.compare t2 t1) rows
    in
    List.iter
      (fun (name, (c, tot, mx)) ->
        Format.fprintf ppf "  %-32s %8d %12.3f %12.3f %12.3f@," name c tot (tot /. float_of_int c) mx)
      rows
  end;
  let dropped = dropped_spans () and hwm = span_high_water () in
  if dropped > 0 || hwm > 0 then
    Format.fprintf ppf "== span buffers ==@,  dropped %d, per-domain high-water %d of %d@," dropped
      hwm max_spans_per_domain;
  Format.fprintf ppf "@]"

(* ---------------------------------------------------- env integration *)

let trace_env_var = "BUFSIZE_TRACE"
let metrics_env_var = "BUFSIZE_METRICS"

let init_from_env () =
  (match Sys.getenv_opt trace_env_var with
  | None | Some "" -> ()
  | Some path ->
      enable_spans ();
      enable_metrics ();
      at_exit (fun () -> write_chrome_trace path));
  match Sys.getenv_opt metrics_env_var with
  | None | Some "" -> ()
  | Some ("1" | "summary") ->
      enable_metrics ();
      at_exit (fun () -> Format.eprintf "%a@." pp_summary ())
  | Some path ->
      enable_spans ();
      enable_metrics ();
      at_exit (fun () -> write_jsonl path)

(* ----------------------------------------------------------- ring *)

(* A lock-free bounded ring of recent records, striped by domain id like
   the metric shards.  Each push claims a globally unique sequence
   number and a per-stripe slot with fetch_and_add; the slot write is a
   single immutable-pointer store, so concurrent writers (and readers)
   can never observe a torn record — at worst a lapped slot holds the
   newer of two records.  Every stripe retains its own last [capacity]
   records, which is a superset of the newest [capacity] records
   overall, so [snapshot]'s tail is exact. *)
module Ring = struct
  type 'a cell = { r_seq : int; r_v : 'a }

  type 'a stripe_state = { r_next : int Atomic.t; r_slots : 'a cell option array }

  type 'a t = { r_cap : int; r_seq : int Atomic.t; r_stripes : 'a stripe_state array }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Obs.Ring.create: capacity must be >= 1";
    {
      r_cap = capacity;
      r_seq = Atomic.make 0;
      r_stripes =
        Array.init stripes (fun _ ->
            { r_next = Atomic.make 0; r_slots = Array.make capacity None });
    }

  let capacity t = t.r_cap

  let push t v =
    let st = t.r_stripes.(stripe_of_self ()) in
    let seq = Atomic.fetch_and_add t.r_seq 1 in
    let slot = Atomic.fetch_and_add st.r_next 1 mod t.r_cap in
    st.r_slots.(slot) <- Some { r_seq = seq; r_v = v }

  let pushed t = Atomic.get t.r_seq

  (* All retained records across every stripe, oldest first. *)
  let snapshot t =
    let cells = ref [] in
    Array.iter
      (fun st ->
        Array.iter (function None -> () | Some c -> cells := c :: !cells) st.r_slots)
      t.r_stripes;
    List.map
      (fun c -> c.r_v)
      (List.sort (fun (a : _ cell) (b : _ cell) -> compare a.r_seq b.r_seq) !cells)

  (* The newest [capacity] records overall, oldest first. *)
  let tail t =
    let all = snapshot t in
    let n = List.length all in
    if n <= t.r_cap then all
    else List.filteri (fun i _ -> i >= n - t.r_cap) all

  let clear t =
    Array.iter
      (fun st ->
        Atomic.set st.r_next 0;
        Array.fill st.r_slots 0 (Array.length st.r_slots) None)
      t.r_stripes
end

(* -------------------------------------------------------- test hooks *)

module Internal = struct
  let stripes = stripes

  let counter_add_on_stripe c ~stripe n =
    ignore (Atomic.fetch_and_add c.c_shards.(stripe land (stripes - 1)) n)

  let observe_on_stripe h ~stripe v =
    observe_shard ~bounds:h.h_bounds h.h_shards.(stripe land (stripes - 1)) v
end
