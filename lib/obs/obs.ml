(* Telemetry core.  Three design rules govern everything here:

   1. The disabled path costs one atomic load and a branch — [span] and
      the metric mutators may sit inside simplex pivots, SpMV, and the
      DES event loop.  The disabled path must also not allocate (the
      test suite asserts this with a Gc.minor_words delta).
   2. Recording never synchronizes across domains on the hot path: span
      buffers are domain-local (Domain.DLS), metric shards are striped
      atomics indexed by domain id.  Readers merge; writers never wait.
   3. Telemetry only observes.  Nothing in the numeric pipeline may
      read a value produced here, so results are bitwise-identical with
      tracing on or off. *)

external now_ns : unit -> int64 = "bufsize_obs_now_ns"

(* ------------------------------------------------------------ enabling *)

let spans_on = Atomic.make false
let metrics_on = Atomic.make false

let spans_enabled () = Atomic.get spans_on
let metrics_enabled () = Atomic.get metrics_on

(* Trace epoch: exported timestamps are relative to the last
   [enable_spans] so traces start near t=0. *)
let epoch_ns = Atomic.make 0L

let enable_spans () =
  Atomic.set epoch_ns (now_ns ());
  Atomic.set spans_on true

let enable_metrics () = Atomic.set metrics_on true

let disable () =
  Atomic.set spans_on false;
  Atomic.set metrics_on false

(* ------------------------------------------------------------- spans *)

type span_record = {
  sid : int;
  sparent : int;
  sname : string;
  strack : int;
  sstart_ns : int64;
  sdur_ns : int64;
  salloc_minor_w : float;
  sattrs : (string * string) list;
}

(* Per-domain span state.  Mutated only by the owning domain; the
   exporter reads it when the pipeline is quiescent (end of run). *)
type dstate = {
  did : int;
  mutable open_ : int list;  (* ids of open spans, innermost first *)
  mutable ctx : int;  (* propagated parent used when [open_] is empty *)
  mutable completed : span_record list;  (* newest first *)
  mutable nspans : int;
  mutable dropped : int;
}

let max_spans_per_domain = 1 lsl 17

let registry_m = Mutex.create ()
let registry : dstate list ref = ref []

let dstate_key =
  Domain.DLS.new_key (fun () ->
      let ds =
        {
          did = (Domain.self () :> int);
          open_ = [];
          ctx = 0;
          completed = [];
          nspans = 0;
          dropped = 0;
        }
      in
      Mutex.lock registry_m;
      registry := ds :: !registry;
      Mutex.unlock registry_m;
      ds)

let dstate () = Domain.DLS.get dstate_key

let next_id = Atomic.make 1

let record_span attrs name f =
  let ds = dstate () in
  let id = Atomic.fetch_and_add next_id 1 in
  let parent = match ds.open_ with p :: _ -> p | [] -> ds.ctx in
  ds.open_ <- id :: ds.open_;
  let w0 = Gc.minor_words () in
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = now_ns () in
      let w1 = Gc.minor_words () in
      (match ds.open_ with _ :: tl -> ds.open_ <- tl | [] -> ());
      if ds.nspans >= max_spans_per_domain then ds.dropped <- ds.dropped + 1
      else begin
        let sattrs = match attrs with None -> [] | Some g -> ( try g () with _ -> []) in
        ds.completed <-
          {
            sid = id;
            sparent = parent;
            sname = name;
            strack = ds.did;
            sstart_ns = t0;
            sdur_ns = Int64.sub t1 t0;
            salloc_minor_w = w1 -. w0;
            sattrs;
          }
          :: ds.completed;
        ds.nspans <- ds.nspans + 1
      end)
    (fun () -> f id)

let span ?attrs ~name f =
  if not (Atomic.get spans_on) then f () else record_span attrs name (fun _ -> f ())

let span_with_id ?attrs ~name f =
  if not (Atomic.get spans_on) then f 0 else record_span attrs name f

let current_context () =
  if not (Atomic.get spans_on) then 0
  else
    let ds = dstate () in
    match ds.open_ with p :: _ -> p | [] -> ds.ctx

let with_context parent f =
  if parent = 0 || not (Atomic.get spans_on) then f ()
  else begin
    let ds = dstate () in
    let saved = ds.ctx in
    ds.ctx <- parent;
    Fun.protect ~finally:(fun () -> ds.ctx <- saved) f
  end

let recorded_spans () =
  Mutex.lock registry_m;
  let states = !registry in
  Mutex.unlock registry_m;
  let all = List.concat_map (fun ds -> ds.completed) states in
  List.sort (fun a b -> Int64.compare a.sstart_ns b.sstart_ns) all

let dropped_spans () =
  Mutex.lock registry_m;
  let states = !registry in
  Mutex.unlock registry_m;
  List.fold_left (fun acc ds -> acc + ds.dropped) 0 states

(* ------------------------------------------------------------ metrics *)

(* Shards are striped by domain id: merging sums every stripe, so any
   interleaving or assignment of increments to stripes yields the same
   totals (the qcheck suite checks permutation-independence through
   [Internal]).  32 stripes keeps contention negligible even when domain
   ids collide modulo the stripe count. *)
let stripes = 32

let stripe_of_self () = (Domain.self () :> int) land (stripes - 1)

type counter = { c_name : string; c_shards : int Atomic.t array }
type gauge = { g_name : string; g_bits : int64 Atomic.t }

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

let bucket_bounds = [| 1e-12; 1e-10; 1e-8; 1e-6; 1e-4; 1e-2; 1.; 1e2; 1e4 |]

let nbuckets = Array.length bucket_bounds + 1

type hshard = {
  hs_count : int Atomic.t;
  hs_sum : int64 Atomic.t;  (* float bits, CAS-updated *)
  hs_min : int64 Atomic.t;
  hs_max : int64 Atomic.t;
  hs_buckets : int Atomic.t array;
}

type histogram = { h_name : string; h_shards : hshard array }

type metric = MCounter of counter | MGauge of gauge | MHistogram of histogram

let metric_name = function
  | MCounter c -> c.c_name
  | MGauge g -> g.g_name
  | MHistogram h -> h.h_name

let metrics_m = Mutex.create ()
let metrics : metric list ref = ref []  (* reverse registration order *)

let register name make same =
  Mutex.lock metrics_m;
  let found = List.find_opt (fun m -> metric_name m = name) !metrics in
  let r =
    match found with
    | Some m -> (
        match same m with
        | Some v -> v
        | None ->
            Mutex.unlock metrics_m;
            invalid_arg (Printf.sprintf "Obs: metric %S already registered with another kind" name))
    | None ->
        let v = make () in
        metrics := v :: !metrics;
        (match same v with Some x -> x | None -> assert false)
  in
  Mutex.unlock metrics_m;
  r

let counter name =
  register name
    (fun () -> MCounter { c_name = name; c_shards = Array.init stripes (fun _ -> Atomic.make 0) })
    (function MCounter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> MGauge { g_name = name; g_bits = Atomic.make (Int64.bits_of_float Float.nan) })
    (function MGauge g -> Some g | _ -> None)

let new_hshard () =
  {
    hs_count = Atomic.make 0;
    hs_sum = Atomic.make (Int64.bits_of_float 0.);
    hs_min = Atomic.make (Int64.bits_of_float Float.infinity);
    hs_max = Atomic.make (Int64.bits_of_float Float.neg_infinity);
    hs_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
  }

let histogram name =
  register name
    (fun () -> MHistogram { h_name = name; h_shards = Array.init stripes (fun _ -> new_hshard ()) })
    (function MHistogram h -> Some h | _ -> None)

let add c n =
  if Atomic.get metrics_on then
    ignore (Atomic.fetch_and_add c.c_shards.(stripe_of_self ()) n)

let incr c = add c 1

let set_gauge g v = if Atomic.get metrics_on then Atomic.set g.g_bits (Int64.bits_of_float v)

(* Boxed int64 atomics compare by physical equality in compare_and_set,
   so the read-modify-CAS loop below is the standard lock-free float
   accumulate. *)
let rec cas_float_update a f =
  let old = Atomic.get a in
  let nv = Int64.bits_of_float (f (Int64.float_of_bits old)) in
  if not (Atomic.compare_and_set a old nv) then cas_float_update a f

let bucket_of v =
  let rec go i = if i >= Array.length bucket_bounds || v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe_shard hs v =
  ignore (Atomic.fetch_and_add hs.hs_count 1);
  cas_float_update hs.hs_sum (fun s -> s +. v);
  cas_float_update hs.hs_min (fun m -> Float.min m v);
  cas_float_update hs.hs_max (fun m -> Float.max m v);
  ignore (Atomic.fetch_and_add hs.hs_buckets.(bucket_of v) 1)

let observe h v =
  if Atomic.get metrics_on then observe_shard h.h_shards.(stripe_of_self ()) v

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards
let gauge_value g = Int64.float_of_bits (Atomic.get g.g_bits)

let histogram_value h =
  let count = ref 0 and sum = ref 0. in
  let mn = ref Float.infinity and mx = ref Float.neg_infinity in
  let buckets = Array.make nbuckets 0 in
  Array.iter
    (fun hs ->
      count := !count + Atomic.get hs.hs_count;
      sum := !sum +. Int64.float_of_bits (Atomic.get hs.hs_sum);
      mn := Float.min !mn (Int64.float_of_bits (Atomic.get hs.hs_min));
      mx := Float.max !mx (Int64.float_of_bits (Atomic.get hs.hs_max));
      Array.iteri (fun i b -> buckets.(i) <- buckets.(i) + Atomic.get b) hs.hs_buckets)
    h.h_shards;
  { h_count = !count; h_sum = !sum; h_min = !mn; h_max = !mx; h_buckets = buckets }

type metric_value =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * histogram_snapshot

let metrics_snapshot () =
  Mutex.lock metrics_m;
  let ms = List.rev !metrics in
  Mutex.unlock metrics_m;
  List.map
    (function
      | MCounter c -> Counter (c.c_name, counter_value c)
      | MGauge g -> Gauge (g.g_name, gauge_value g)
      | MHistogram h -> Histogram (h.h_name, histogram_value h))
    ms

(* -------------------------------------------------------------- reset *)

let reset () =
  Mutex.lock registry_m;
  List.iter
    (fun ds ->
      ds.completed <- [];
      ds.nspans <- 0;
      ds.dropped <- 0)
    !registry;
  Mutex.unlock registry_m;
  Mutex.lock metrics_m;
  List.iter
    (function
      | MCounter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
      | MGauge g -> Atomic.set g.g_bits (Int64.bits_of_float Float.nan)
      | MHistogram h ->
          Array.iter
            (fun hs ->
              Atomic.set hs.hs_count 0;
              Atomic.set hs.hs_sum (Int64.bits_of_float 0.);
              Atomic.set hs.hs_min (Int64.bits_of_float Float.infinity);
              Atomic.set hs.hs_max (Int64.bits_of_float Float.neg_infinity);
              Array.iter (fun b -> Atomic.set b 0) hs.hs_buckets)
            h.h_shards)
    !metrics;
  Mutex.unlock metrics_m;
  if Atomic.get spans_on then Atomic.set epoch_ns (now_ns ())

(* ---------------------------------------------------------- exporters *)

(* Hand-rolled JSON, mirroring lib/core/resilience.ml (which sits above
   this module in the dependency order, so no sharing). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)
let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let rel_us ns = Int64.to_float (Int64.sub ns (Atomic.get epoch_ns)) /. 1e3

let span_args s =
  let kv =
    ("span_id", string_of_int s.sid)
    :: ("parent", string_of_int s.sparent)
    :: ("alloc_minor_words", Printf.sprintf "%.0f" s.salloc_minor_w)
    :: s.sattrs
  in
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) (json_str v)) kv)

let gc_json () =
  let st = Gc.quick_stat () in
  Printf.sprintf
    "{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"heap_words\":%d}"
    (json_float st.Gc.minor_words) (json_float st.Gc.promoted_words)
    (json_float st.Gc.major_words) st.Gc.minor_collections st.Gc.major_collections
    st.Gc.heap_words

let write_chrome_trace path =
  let spans = recorded_spans () in
  let tracks =
    List.sort_uniq compare (List.map (fun s -> s.strack) spans)
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else out ","
  in
  sep ();
  out "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"bufsize\"}}";
  List.iter
    (fun t ->
      sep ();
      out "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain-%d\"}}" t t)
    tracks;
  List.iter
    (fun s ->
      sep ();
      out "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":%s,\"cat\":\"bufsize\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
        s.strack (json_str s.sname) (rel_us s.sstart_ns)
        (Int64.to_float s.sdur_ns /. 1e3)
        (span_args s))
    spans;
  out "]}";
  close_out oc

let metric_json_line = function
  | Counter (n, v) -> Printf.sprintf "{\"type\":\"counter\",\"name\":%s,\"value\":%d}" (json_str n) v
  | Gauge (n, v) ->
      Printf.sprintf "{\"type\":\"gauge\",\"name\":%s,\"value\":%s}" (json_str n) (json_float v)
  | Histogram (n, h) ->
      Printf.sprintf
        "{\"type\":\"histogram\",\"name\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[%s]}"
        (json_str n) h.h_count (json_float h.h_sum) (json_float h.h_min) (json_float h.h_max)
        (String.concat "," (Array.to_list (Array.map string_of_int h.h_buckets)))

let write_jsonl path =
  let oc = open_out path in
  List.iter
    (fun s ->
      Printf.fprintf oc
        "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":%s,\"track\":%d,\"start_us\":%.3f,\"dur_us\":%.3f,\"alloc_minor_words\":%s,\"attrs\":{%s}}\n"
        s.sid s.sparent (json_str s.sname) s.strack (rel_us s.sstart_ns)
        (Int64.to_float s.sdur_ns /. 1e3)
        (json_float s.salloc_minor_w)
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) (json_str v)) s.sattrs)))
    (recorded_spans ());
  List.iter (fun m -> Printf.fprintf oc "%s\n" (metric_json_line m)) (metrics_snapshot ());
  Printf.fprintf oc "{\"type\":\"gc\",\"stat\":%s}\n" (gc_json ());
  Printf.fprintf oc "{\"type\":\"dropped_spans\",\"value\":%d}\n" (dropped_spans ());
  close_out oc

let metrics_json () =
  let counters, gauges, histos =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | Counter (n, v) -> (Printf.sprintf "%s:%d" (json_str n) v :: cs, gs, hs)
        | Gauge (n, v) -> (cs, Printf.sprintf "%s:%s" (json_str n) (json_float v) :: gs, hs)
        | Histogram (n, h) ->
            ( cs,
              gs,
              Printf.sprintf "%s:{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}" (json_str n)
                h.h_count (json_float h.h_sum) (json_float h.h_min) (json_float h.h_max)
              :: hs ))
      ([], [], []) (metrics_snapshot ())
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s},\"gc\":%s}"
    (String.concat "," (List.rev counters))
    (String.concat "," (List.rev gauges))
    (String.concat "," (List.rev histos))
    (gc_json ())

let pp_summary ppf () =
  let ms = metrics_snapshot () in
  Format.fprintf ppf "@[<v>== metrics ==@,";
  List.iter
    (fun m ->
      match m with
      | Counter (n, v) -> Format.fprintf ppf "  %-32s %d@," n v
      | Gauge (n, v) ->
          if Float.is_finite v then Format.fprintf ppf "  %-32s %g@," n v
          else Format.fprintf ppf "  %-32s (unset)@," n
      | Histogram (n, h) ->
          if h.h_count = 0 then Format.fprintf ppf "  %-32s (empty)@," n
          else
            Format.fprintf ppf "  %-32s count=%d mean=%.3g min=%.3g max=%.3g@," n h.h_count
              (h.h_sum /. float_of_int h.h_count)
              h.h_min h.h_max)
    ms;
  let spans = recorded_spans () in
  if spans <> [] then begin
    Format.fprintf ppf "== spans (by name) ==@,";
    Format.fprintf ppf "  %-32s %8s %12s %12s %12s@," "name" "count" "total ms" "mean ms" "max ms";
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun s ->
        let ms = Int64.to_float s.sdur_ns /. 1e6 in
        match Hashtbl.find_opt tbl s.sname with
        | None -> Hashtbl.replace tbl s.sname (ref (1, ms, ms))
        | Some r ->
            let c, tot, mx = !r in
            r := (c + 1, tot +. ms, Float.max mx ms))
      spans;
    let rows = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl [] in
    let rows =
      List.sort (fun (_, (_, t1, _)) (_, (_, t2, _)) -> Float.compare t2 t1) rows
    in
    List.iter
      (fun (name, (c, tot, mx)) ->
        Format.fprintf ppf "  %-32s %8d %12.3f %12.3f %12.3f@," name c tot (tot /. float_of_int c) mx)
      rows;
    let dropped = dropped_spans () in
    if dropped > 0 then Format.fprintf ppf "  (%d spans dropped at buffer cap)@," dropped
  end;
  Format.fprintf ppf "@]"

(* ---------------------------------------------------- env integration *)

let trace_env_var = "BUFSIZE_TRACE"
let metrics_env_var = "BUFSIZE_METRICS"

let init_from_env () =
  (match Sys.getenv_opt trace_env_var with
  | None | Some "" -> ()
  | Some path ->
      enable_spans ();
      enable_metrics ();
      at_exit (fun () -> write_chrome_trace path));
  match Sys.getenv_opt metrics_env_var with
  | None | Some "" -> ()
  | Some ("1" | "summary") ->
      enable_metrics ();
      at_exit (fun () -> Format.eprintf "%a@." pp_summary ())
  | Some path ->
      enable_spans ();
      enable_metrics ();
      at_exit (fun () -> write_jsonl path)

(* -------------------------------------------------------- test hooks *)

module Internal = struct
  let stripes = stripes

  let counter_add_on_stripe c ~stripe n =
    ignore (Atomic.fetch_and_add c.c_shards.(stripe land (stripes - 1)) n)

  let observe_on_stripe h ~stripe v = observe_shard h.h_shards.(stripe land (stripes - 1)) v
end
