/* Monotonic clock for span timing.  CLOCK_MONOTONIC is immune to wall
   clock adjustments (NTP slews, manual changes), which matters because
   span durations feed benchmark overhead accounting.  Falls back to
   CLOCK_REALTIME on platforms without a monotonic clock. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

CAMLprim value bufsize_obs_now_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    clock_gettime(CLOCK_REALTIME, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec));
}
