(** End-to-end telemetry for the solve & simulate pipeline: hierarchical
    spans with monotonic-clock timing, a registry of named metrics with
    per-domain shards, and Chrome-trace / JSONL / console exporters.

    Everything is off by default.  The disabled fast path of {!span} and
    the metric mutators is a single atomic load and branch, so
    instrumentation can sit inside hot loops (simplex pivots, SpMV, the
    DES event loop) without measurable cost.  No numeric result may ever
    depend on whether telemetry is enabled: the layer only observes. *)

(* ------------------------------------------------------------ enabling *)

val spans_enabled : unit -> bool
val metrics_enabled : unit -> bool

val enable_spans : unit -> unit
(** Also resets the trace epoch so exported timestamps start near 0. *)

val enable_metrics : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Clear every recorded span and zero every metric shard.  Call only
    when no pooled work is in flight (between runs, in tests, between
    benchmark repetitions). *)

(* ------------------------------------------------------------- spans *)

val span : ?attrs:(unit -> (string * string) list) -> name:string -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f ()] inside a span.  When tracing is disabled
    this is [f ()] after one atomic load — no allocation.  When enabled,
    the span records its monotonic start/duration, the enclosing span as
    parent, the current domain as track, and the minor words allocated
    while it was open.  [attrs] is evaluated once, at span close, so
    attribute values can read counters accumulated during the span.
    Exceptions close the span and propagate. *)

val span_with_id : ?attrs:(unit -> (string * string) list) -> name:string -> (int -> 'a) -> 'a
(** Like {!span} but passes the span id to the body (0 when disabled) so
    callers can cross-reference the span from other records — the
    resilience layer stores it in its diagnostics. *)

val current_context : unit -> int
(** Id of the innermost open span on this domain (or the propagated
    parent context), 0 when none or disabled.  Capture it before handing
    work to another domain and restore it there with {!with_context}. *)

val with_context : int -> (unit -> 'a) -> 'a
(** [with_context parent f] runs [f] with spans parented under [parent]
    when no local span is open — the pool uses it to parent worker-domain
    spans under the span that submitted the job. *)

type span_record = {
  sid : int;
  sparent : int;  (* 0 = root *)
  sname : string;
  strack : int;  (* domain id *)
  sstart_ns : int64;  (* monotonic, absolute *)
  sdur_ns : int64;
  salloc_minor_w : float;  (* minor words allocated while open *)
  sattrs : (string * string) list;
}

val recorded_spans : unit -> span_record list
(** All completed spans across every domain, sorted by start time. *)

val dropped_spans : unit -> int
(** Spans discarded because a domain hit its buffer cap. *)

val span_high_water : unit -> int
(** Largest per-domain span-buffer occupancy seen since the last
    {!reset} — how close any domain came to the drop threshold. *)

(** {1 Per-request capture}

    A capture collects the span subtree of one computation without
    touching the global span buffers and without requiring tracing to be
    enabled process-wide — the sizing daemon uses it to attach a
    request's own spans to its reply.  Captures nest with global tracing
    (spans are then delivered to both destinations) and with each other
    (innermost sink wins on a domain). *)

type capture_sink
(** The destination installed on a domain by a live capture.  Opaque;
    exists so {!Bufsize_pool.Pool} can carry the caller's capture onto
    its worker domains, exactly like the span parent context. *)

val with_capture : ?max_spans:int -> (unit -> 'a) -> 'a * span_record list * int
(** [with_capture f] runs [f] with span recording forced on and a fresh
    sink installed on the calling domain; returns [f ()]'s value, the
    spans closed under the sink (start-time order), and how many were
    discarded beyond [max_spans] (default 4096).  Pool workers running
    items for [f] deliver to the same sink.  Other domains' unrelated
    spans are not collected (and, when global tracing is off, not
    recorded at all). *)

val current_sink : unit -> capture_sink
(** The calling domain's live capture sink (a no-op value when none).
    Capture it before handing work to another domain, restore there with
    {!with_sink} — the pool does this alongside {!current_context}. *)

val with_sink : capture_sink -> (unit -> 'a) -> 'a
(** Run [f] with the given sink installed on this domain. *)

(* ------------------------------------------------------------ metrics *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a named monotonic counter.  Idempotent. *)

val gauge : string -> gauge

val histogram : string -> histogram
(** A histogram over the default decade buckets ({!bucket_bounds}). *)

val histogram_with_bounds : string -> float array -> histogram
(** A histogram with caller-chosen strictly increasing bucket upper
    bounds (one extra overflow bucket is added).  Idempotent for equal
    bounds; @raise Invalid_argument on a bounds mismatch or an empty or
    non-increasing array. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit
val observe : histogram -> float -> unit

val observe_always : histogram -> float -> unit
(** Record regardless of the global metrics switch — for subsystems
    (the serve layer's latency histograms) whose own introspection must
    work without enabling process-wide instrumentation. *)

val counter_value : counter -> int
(** Sum across all shards; reads are always allowed, even when disabled. *)

val gauge_value : gauge -> float

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (* +inf when empty *)
  h_max : float;  (* -inf when empty *)
  h_bounds : float array;  (* bucket upper bounds of this histogram *)
  h_buckets : int array;  (* length = Array.length h_bounds + 1 *)
}

val histogram_value : histogram -> histogram_snapshot

val quantile : histogram_snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile (rank ceil(q*count)) from
    the bucket counts: the estimate always falls inside the bucket that
    contains the true order statistic, linearly interpolated by rank and
    tightened by the observed min/max.  NaN when empty. *)

val bucket_bounds : float array
(** Upper bounds of the default decade buckets (last bucket catches the
    rest). *)

val latency_ms_bounds : float array
(** A 1-2-5 log series from 0.05 ms to 10 s — the fixed log-bucket
    layout for request-latency histograms. *)

type metric_value =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * histogram_snapshot

val metrics_snapshot : unit -> metric_value list
(** Every registered metric merged across shards, in registration order,
    plus a synthesized [obs.spans.dropped] counter. *)

(* ---------------------------------------------------------- exporters *)

val write_chrome_trace : string -> unit
(** Chrome [trace_event] JSON (complete "X" events, one track per
    domain), loadable in chrome://tracing and Perfetto. *)

val write_jsonl : string -> unit
(** One JSON object per line: spans, metrics, a GC snapshot, and a
    dropped-span count. *)

val metrics_json : unit -> string
(** Single JSON object: counters, gauges, histograms (with p50/p95/p99
    and bucket layout), GC snapshot. *)

val metrics_prometheus : unit -> string
(** Prometheus text exposition (format 0.0.4) of every registered
    metric: counters as [name_total], gauges (unset/NaN skipped),
    histograms as cumulative [le]-buckets plus [_sum]/[_count].  Names
    are sanitized to [[a-zA-Z0-9_:]]. *)

val pp_summary : Format.formatter -> unit -> unit
(** Console summary: metric table, per-name span aggregation, and the
    span-buffer health line (dropped count, per-domain high-water). *)

(* ---------------------------------------------------- env integration *)

val trace_env_var : string  (* BUFSIZE_TRACE *)
val metrics_env_var : string  (* BUFSIZE_METRICS *)

val init_from_env : unit -> unit
(** Entry points (CLI, bench) call this once at startup:
    [BUFSIZE_TRACE=<path>] enables spans + metrics and writes the Chrome
    trace to [<path>] at exit; [BUFSIZE_METRICS=1|summary] enables
    metrics and prints the console summary to stderr at exit, while any
    other non-empty value is a path that receives the JSONL dump. *)

(* ------------------------------------------------------------- ring *)

(** A lock-free bounded ring of recent records, striped by domain id —
    the storage behind the serve layer's flight recorder.  Writers never
    wait: a push is two fetch-and-adds plus one immutable-pointer store,
    so records are never torn and readers may snapshot concurrently.
    Each stripe retains its own newest [capacity] records; {!tail} is
    therefore exactly the newest [capacity] records overall. *)
module Ring : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument when [capacity < 1]. *)

  val capacity : 'a t -> int

  val push : 'a t -> 'a -> unit
  (** Record [v], evicting the oldest record of this domain's stripe
      when it is full.  Lock-free, safe from any domain. *)

  val pushed : 'a t -> int
  (** Total records ever pushed (not the retained count). *)

  val snapshot : 'a t -> 'a list
  (** Every retained record, oldest first.  Safe during pushes; at most
      [stripes * capacity] records. *)

  val tail : 'a t -> 'a list
  (** The newest [capacity] records overall, oldest first. *)

  val clear : 'a t -> unit
  (** Not linearizable against concurrent pushes — quiescent use only. *)
end

(* -------------------------------------------------------- test hooks *)

module Internal : sig
  val stripes : int

  val counter_add_on_stripe : counter -> stripe:int -> int -> unit
  (** Bypass the domain-id stripe choice — lets tests drive increments
      onto chosen shards to check merge-order independence. *)

  val observe_on_stripe : histogram -> stripe:int -> float -> unit
end
