(** End-to-end telemetry for the solve & simulate pipeline: hierarchical
    spans with monotonic-clock timing, a registry of named metrics with
    per-domain shards, and Chrome-trace / JSONL / console exporters.

    Everything is off by default.  The disabled fast path of {!span} and
    the metric mutators is a single atomic load and branch, so
    instrumentation can sit inside hot loops (simplex pivots, SpMV, the
    DES event loop) without measurable cost.  No numeric result may ever
    depend on whether telemetry is enabled: the layer only observes. *)

(* ------------------------------------------------------------ enabling *)

val spans_enabled : unit -> bool
val metrics_enabled : unit -> bool

val enable_spans : unit -> unit
(** Also resets the trace epoch so exported timestamps start near 0. *)

val enable_metrics : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Clear every recorded span and zero every metric shard.  Call only
    when no pooled work is in flight (between runs, in tests, between
    benchmark repetitions). *)

(* ------------------------------------------------------------- spans *)

val span : ?attrs:(unit -> (string * string) list) -> name:string -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f ()] inside a span.  When tracing is disabled
    this is [f ()] after one atomic load — no allocation.  When enabled,
    the span records its monotonic start/duration, the enclosing span as
    parent, the current domain as track, and the minor words allocated
    while it was open.  [attrs] is evaluated once, at span close, so
    attribute values can read counters accumulated during the span.
    Exceptions close the span and propagate. *)

val span_with_id : ?attrs:(unit -> (string * string) list) -> name:string -> (int -> 'a) -> 'a
(** Like {!span} but passes the span id to the body (0 when disabled) so
    callers can cross-reference the span from other records — the
    resilience layer stores it in its diagnostics. *)

val current_context : unit -> int
(** Id of the innermost open span on this domain (or the propagated
    parent context), 0 when none or disabled.  Capture it before handing
    work to another domain and restore it there with {!with_context}. *)

val with_context : int -> (unit -> 'a) -> 'a
(** [with_context parent f] runs [f] with spans parented under [parent]
    when no local span is open — the pool uses it to parent worker-domain
    spans under the span that submitted the job. *)

type span_record = {
  sid : int;
  sparent : int;  (* 0 = root *)
  sname : string;
  strack : int;  (* domain id *)
  sstart_ns : int64;  (* monotonic, absolute *)
  sdur_ns : int64;
  salloc_minor_w : float;  (* minor words allocated while open *)
  sattrs : (string * string) list;
}

val recorded_spans : unit -> span_record list
(** All completed spans across every domain, sorted by start time. *)

val dropped_spans : unit -> int
(** Spans discarded because a domain hit its buffer cap. *)

(* ------------------------------------------------------------ metrics *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a named monotonic counter.  Idempotent. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val set_gauge : gauge -> float -> unit
val observe : histogram -> float -> unit

val counter_value : counter -> int
(** Sum across all shards; reads are always allowed, even when disabled. *)

val gauge_value : gauge -> float

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (* +inf when empty *)
  h_max : float;  (* -inf when empty *)
  h_buckets : int array;  (* decade buckets, see [bucket_bounds] *)
}

val histogram_value : histogram -> histogram_snapshot
val bucket_bounds : float array
(** Upper bounds of the histogram decade buckets (last bucket catches
    the rest). *)

type metric_value =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * histogram_snapshot

val metrics_snapshot : unit -> metric_value list
(** Every registered metric merged across shards, in registration order. *)

(* ---------------------------------------------------------- exporters *)

val write_chrome_trace : string -> unit
(** Chrome [trace_event] JSON (complete "X" events, one track per
    domain), loadable in chrome://tracing and Perfetto. *)

val write_jsonl : string -> unit
(** One JSON object per line: spans, metrics, a GC snapshot, and a
    dropped-span count. *)

val metrics_json : unit -> string
(** Single JSON object: counters, gauges, histograms, GC snapshot. *)

val pp_summary : Format.formatter -> unit -> unit
(** Console summary: metric table plus per-name span aggregation. *)

(* ---------------------------------------------------- env integration *)

val trace_env_var : string  (* BUFSIZE_TRACE *)
val metrics_env_var : string  (* BUFSIZE_METRICS *)

val init_from_env : unit -> unit
(** Entry points (CLI, bench) call this once at startup:
    [BUFSIZE_TRACE=<path>] enables spans + metrics and writes the Chrome
    trace to [<path>] at exit; [BUFSIZE_METRICS=1|summary] enables
    metrics and prints the console summary to stderr at exit, while any
    other non-empty value is a path that receives the JSONL dump. *)

(* -------------------------------------------------------- test hooks *)

module Internal : sig
  val stripes : int

  val counter_add_on_stripe : counter -> stripe:int -> int -> unit
  (** Bypass the domain-id stripe choice — lets tests drive increments
      onto chosen shards to check merge-order independence. *)

  val observe_on_stripe : histogram -> stripe:int -> float -> unit
end
