(** Multi-replication simulation driver.

    Runs a simulation spec several times with independent RNG streams
    (derived seeds) and aggregates per-processor losses and totals with
    confidence intervals — the paper's "we repeated these experiments for
    10 iterations". *)

type aggregate = {
  replications : int;
  per_proc_lost : Bufsize_numeric.Stats.t array;
  per_proc_offered : Bufsize_numeric.Stats.t array;
  per_proc_latency : Bufsize_numeric.Stats.t array;
      (** per-replication mean end-to-end latency of each processor's
          delivered requests (replications with no delivery contribute
          nothing) *)
  total_lost : Bufsize_numeric.Stats.t;
  total_offered : Bufsize_numeric.Stats.t;
  loss_fraction : Bufsize_numeric.Stats.t;
  mean_sojourn : Bufsize_numeric.Stats.t;
      (** mean buffer sojourn per replication (timeout calibration) *)
}

val run : ?replications:int -> ?pool:Bufsize_pool.Pool.t -> Sim_run.spec -> aggregate
(** Default 10 replications; replication [i] uses seed
    [Rng.derive_seed spec.seed i] — a splitmix-style hash of the pair, so
    nearby user seeds cannot alias each other's replication streams (the
    old additive [seed + 1000 * i] scheme collided for seeds less than
    [1000 * replications] apart).

    Replications are independent simulations and run on [pool] (default:
    the process-wide {!Bufsize_pool.Pool}, sized by [BUFSIZE_NUM_DOMAINS]).
    Reports are folded into the accumulators in replication order on the
    caller's domain, so the aggregate is bitwise identical for every pool
    size. *)

val merge : aggregate -> aggregate -> aggregate
(** Combine aggregates of disjoint replication sets (shards of a sweep)
    with {!Bufsize_numeric.Stats.merge}.  @raise Invalid_argument when the
    per-processor arrays differ in length. *)

val mean_per_proc_lost : aggregate -> float array

val pp : Format.formatter -> aggregate -> unit
