(** Multi-replication simulation driver.

    Runs a simulation spec several times with independent RNG streams
    (derived seeds) and aggregates per-processor losses and totals with
    confidence intervals — the paper's "we repeated these experiments for
    10 iterations". *)

type aggregate = {
  replications : int;
  per_proc_lost : Bufsize_numeric.Stats.t array;
  per_proc_offered : Bufsize_numeric.Stats.t array;
  per_proc_latency : Bufsize_numeric.Stats.t array;
      (** per-replication mean end-to-end latency of each processor's
          delivered requests (replications with no delivery contribute
          nothing) *)
  total_lost : Bufsize_numeric.Stats.t;
  total_offered : Bufsize_numeric.Stats.t;
  loss_fraction : Bufsize_numeric.Stats.t;
  mean_sojourn : Bufsize_numeric.Stats.t;
      (** mean buffer sojourn per replication (timeout calibration) *)
}

val run : ?replications:int -> ?pool:Bufsize_pool.Pool.t -> Sim_run.spec -> aggregate
(** Default 10 replications; replication [i] uses seed
    [Rng.derive_seed spec.seed i] — a splitmix-style hash of the pair, so
    nearby user seeds cannot alias each other's replication streams (the
    old additive [seed + 1000 * i] scheme collided for seeds less than
    [1000 * replications] apart).

    Replications are independent simulations and run on [pool] (default:
    the process-wide {!Bufsize_pool.Pool}, sized by [BUFSIZE_NUM_DOMAINS]).
    Reports are folded into the accumulators in replication order on the
    caller's domain, so the aggregate is bitwise identical for every pool
    size. *)

val empty : nprocs:int -> aggregate
(** The identity of {!merge} for a [nprocs]-processor topology: zero
    replications, all accumulators empty.  Useful as the fold seed when
    combining shards of a sweep; merging it into an aggregate changes
    nothing (counts, means, variances, and extrema all survive). *)

val merge : aggregate -> aggregate -> aggregate
(** Combine aggregates of disjoint replication sets (shards of a sweep)
    with {!Bufsize_numeric.Stats.merge}.  Empty shards (e.g. {!empty} or
    a slice of a sweep that produced no replications) are handled: the
    other side's statistics pass through unchanged, no NaNs are
    introduced.  @raise Invalid_argument when the per-processor arrays
    differ in length. *)

val mean_per_proc_lost : aggregate -> float array

val pp : Format.formatter -> aggregate -> unit
