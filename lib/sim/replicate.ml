module Stats = Bufsize_numeric.Stats
module Rng = Bufsize_prob.Rng
module Pool = Bufsize_pool.Pool
module Obs = Bufsize_obs.Obs

let m_replications = Obs.counter "sim.replications"

type aggregate = {
  replications : int;
  per_proc_lost : Stats.t array;
  per_proc_offered : Stats.t array;
  per_proc_latency : Stats.t array;
  total_lost : Stats.t;
  total_offered : Stats.t;
  loss_fraction : Stats.t;
  mean_sojourn : Stats.t;
}

let make_empty nprocs replications =
  {
    replications;
    per_proc_lost = Array.init nprocs (fun _ -> Stats.create ());
    per_proc_offered = Array.init nprocs (fun _ -> Stats.create ());
    per_proc_latency = Array.init nprocs (fun _ -> Stats.create ());
    total_lost = Stats.create ();
    total_offered = Stats.create ();
    loss_fraction = Stats.create ();
    mean_sojourn = Stats.create ();
  }

let accumulate agg (report : Metrics.report) =
  Array.iteri
    (fun p (s : Metrics.proc_stats) ->
      Stats.add agg.per_proc_lost.(p) (float_of_int s.Metrics.lost);
      Stats.add agg.per_proc_offered.(p) (float_of_int s.Metrics.offered);
      if Float.is_finite s.Metrics.mean_latency then
        Stats.add agg.per_proc_latency.(p) s.Metrics.mean_latency)
    report.Metrics.per_proc;
  Stats.add agg.total_lost (float_of_int (Metrics.total_lost report));
  Stats.add agg.total_offered (float_of_int (Metrics.total_offered report));
  Stats.add agg.loss_fraction (Metrics.loss_fraction report);
  let sj = Metrics.mean_buffer_sojourn report in
  if Float.is_finite sj then Stats.add agg.mean_sojourn sj

let run ?(replications = 10) ?pool spec =
  if replications <= 0 then invalid_arg "Replicate.run: need at least one replication";
  let nprocs =
    Bufsize_soc.Topology.num_processors (Bufsize_soc.Traffic.topology spec.Sim_run.traffic)
  in
  (* Each replication builds its RNG from a hashed (seed, index) pair
     inside [Sim_run.run] — a fully isolated stream per item, so the map
     is embarrassingly parallel.  The pool preserves input ordering, and
     the reports are folded into the accumulators in replication order on
     the caller's domain, so every aggregate is bitwise identical whatever
     the pool size. *)
  let reports =
    Pool.map_array ?pool
      (fun i ->
        Obs.incr m_replications;
        Obs.span ~name:"sim.replication"
          ~attrs:(fun () -> [ ("replication", string_of_int i) ])
          (fun () ->
            Sim_run.run { spec with Sim_run.seed = Rng.derive_seed spec.Sim_run.seed i }))
      (Array.init replications Fun.id)
  in
  let agg = make_empty nprocs replications in
  Array.iter (accumulate agg) reports;
  agg

(* Combine aggregates of DISJOINT replication sets (e.g. shards of a sweep
   run on different pools or hosts) via the pairwise Welford merge. *)
let merge a b =
  let np = Array.length a.per_proc_lost in
  if np <> Array.length b.per_proc_lost then
    invalid_arg "Replicate.merge: aggregates cover different topologies";
  {
    replications = a.replications + b.replications;
    per_proc_lost = Array.init np (fun p -> Stats.merge a.per_proc_lost.(p) b.per_proc_lost.(p));
    per_proc_offered =
      Array.init np (fun p -> Stats.merge a.per_proc_offered.(p) b.per_proc_offered.(p));
    per_proc_latency =
      Array.init np (fun p -> Stats.merge a.per_proc_latency.(p) b.per_proc_latency.(p));
    total_lost = Stats.merge a.total_lost b.total_lost;
    total_offered = Stats.merge a.total_offered b.total_offered;
    loss_fraction = Stats.merge a.loss_fraction b.loss_fraction;
    mean_sojourn = Stats.merge a.mean_sojourn b.mean_sojourn;
  }

let empty ~nprocs = make_empty nprocs 0

let mean_per_proc_lost agg = Array.map Stats.mean agg.per_proc_lost

let pp ppf agg =
  Format.fprintf ppf "@[<v>%d replications: total lost %.1f +- %.1f (of %.1f offered, %.2f%%)"
    agg.replications (Stats.mean agg.total_lost)
    (Stats.std_error agg.total_lost)
    (Stats.mean agg.total_offered)
    (100. *. Stats.mean agg.loss_fraction);
  Array.iteri
    (fun p s -> Format.fprintf ppf "@,  proc %2d: mean lost %.1f" (p + 1) (Stats.mean s))
    agg.per_proc_lost;
  Format.fprintf ppf "@]"
