module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Rng = Bufsize_prob.Rng
module Obs = Bufsize_obs.Obs

let m_des_events = Obs.counter "des.events"

type timeout_policy =
  | Global of float
  | Per_buffer of (Topology.bus_id -> Traffic.client -> float)

type spec = {
  traffic : Traffic.t;
  allocation : Buffer_alloc.t;
  arbiter : Arbiter.t;
  timeout : timeout_policy option;
  horizon : float;
  warmup : float;
  seed : int;
}

let default_spec ~traffic ~allocation =
  {
    traffic;
    allocation;
    arbiter = Arbiter.Longest_queue;
    timeout = None;
    horizon = 2000.;
    warmup = 100.;
    seed = 1;
  }

type request = {
  origin : int;
  created_at : float;
  mutable remaining : (Topology.bus_id * Traffic.client) list;
  mutable enqueued_at : float;
}

type buffer = {
  client : Traffic.client;
  capacity : int;
  timeout_threshold : float;  (* infinity = no timeout *)
  queue : request Queue.t;
  mutable arrivals : int;
  mutable drops : int;
  mutable timeouts : int;
  mutable served : int;
  mutable sojourn_sum : float;
  mutable occ_integral : float;
  mutable last_update : float;
}

type bus_rt = {
  bus_id : Topology.bus_id;
  mu : float;
  buffers : buffer array;
  mutable busy : bool;
  mutable last_served : int;
}

type proc_counters = {
  mutable offered : int;
  mutable lost : int;
  mutable delivered : int;
  mutable latency_sum : float;
  mutable latency_max : float;
}

let run spec =
  if spec.horizon <= 0. then invalid_arg "Sim_run.run: nonpositive horizon";
  if spec.warmup < 0. || spec.warmup >= spec.horizon then
    invalid_arg "Sim_run.run: warmup must lie in [0, horizon)";
  Obs.span ~name:"sim.run"
    ~attrs:(fun () ->
      [ ("horizon", string_of_float spec.horizon); ("seed", string_of_int spec.seed) ])
  @@ fun () ->
  let topo = Traffic.topology spec.traffic in
  let rng = Rng.create spec.seed in
  let des = Des.create () in
  let events = ref 0 in
  let nb = Topology.num_buses topo in
  let threshold_of bus_id client =
    let raw =
      match spec.timeout with
      | None -> infinity
      | Some (Global t) -> t
      | Some (Per_buffer f) -> f bus_id client
    in
    if Float.is_finite raw && raw > 0. then raw else infinity
  in
  let buses =
    Array.init nb (fun bus_id ->
        let clients = Traffic.clients_of_bus spec.traffic bus_id in
        let buffers =
          Array.of_list
            (List.map
               (fun (c, _) ->
                 {
                   client = c;
                   capacity = Buffer_alloc.lookup spec.allocation bus_id c;
                   timeout_threshold = threshold_of bus_id c;
                   queue = Queue.create ();
                   arrivals = 0;
                   drops = 0;
                   timeouts = 0;
                   served = 0;
                   sojourn_sum = 0.;
                   occ_integral = 0.;
                   last_update = 0.;
                 })
               clients)
        in
        {
          bus_id;
          mu = (Topology.bus topo bus_id).Topology.service_rate;
          buffers;
          busy = false;
          last_served = -1;
        })
  in
  let buffer_of bus_id client =
    let bus = buses.(bus_id) in
    let rec scan i =
      if i >= Array.length bus.buffers then
        invalid_arg "Sim_run: request routed to a client with no buffer"
      else if Traffic.client_equal bus.buffers.(i).client client then (bus, i)
      else scan (i + 1)
    in
    scan 0
  in
  let procs =
    Array.init (Topology.num_processors topo) (fun _ ->
        { offered = 0; lost = 0; delivered = 0; latency_sum = 0.; latency_max = 0. })
  in
  let touch_occupancy buf now =
    buf.occ_integral <- buf.occ_integral +. (float_of_int (Queue.length buf.queue) *. (now -. buf.last_update));
    buf.last_update <- now
  in
  let lose req = procs.(req.origin).lost <- procs.(req.origin).lost + 1 in
  (* Timeout purge: drop stale heads (FIFO queues, so heads are oldest). *)
  let purge_stale bus now =
    if Option.is_some spec.timeout then
      Array.iter
        (fun buf ->
          if Float.is_finite buf.timeout_threshold then begin
            let continue = ref true in
            while !continue do
              match Queue.peek_opt buf.queue with
              | Some req when now -. req.enqueued_at > buf.timeout_threshold ->
                  touch_occupancy buf now;
                  ignore (Queue.pop buf.queue);
                  buf.timeouts <- buf.timeouts + 1;
                  lose req
              | Some _ | None -> continue := false
            done
          end)
        bus.buffers
  in
  let rec try_select bus des =
    if not bus.busy then begin
      let now = Des.now des in
      purge_stale bus now;
      let view =
        {
          Arbiter.bus = bus.bus_id;
          num_clients = Array.length bus.buffers;
          queue_lengths = Array.map (fun b -> Queue.length b.queue) bus.buffers;
          capacities = Array.map (fun b -> b.capacity) bus.buffers;
          last_served = bus.last_served;
        }
      in
      match Arbiter.choose spec.arbiter rng view with
      | None -> ()
      | Some i ->
          let buf = bus.buffers.(i) in
          touch_occupancy buf now;
          let req = Queue.pop buf.queue in
          buf.served <- buf.served + 1;
          buf.sojourn_sum <- buf.sojourn_sum +. (now -. req.enqueued_at);
          bus.busy <- true;
          bus.last_served <- i;
          let service = Rng.exponential rng ~rate:bus.mu in
          Des.schedule des ~delay:service (fun des ->
              incr events;
              bus.busy <- false;
              complete req des;
              try_select bus des)
    end
  and complete req des =
    match req.remaining with
    | [] -> assert false
    | [ _last ] ->
        let p = procs.(req.origin) in
        let latency = Des.now des -. req.created_at in
        p.delivered <- p.delivered + 1;
        p.latency_sum <- p.latency_sum +. latency;
        if latency > p.latency_max then p.latency_max <- latency
    | _ :: next :: rest ->
        req.remaining <- next :: rest;
        enqueue next req des
  and enqueue (bus_id, client) req des =
    let bus, i = buffer_of bus_id client in
    let buf = bus.buffers.(i) in
    buf.arrivals <- buf.arrivals + 1;
    let now = Des.now des in
    (* Under the timeout policy stale requests also age out on arrival
       pressure, freeing space before the drop decision. *)
    purge_stale bus now;
    if Queue.length buf.queue >= buf.capacity then begin
      buf.drops <- buf.drops + 1;
      lose req
    end
    else begin
      touch_occupancy buf now;
      req.enqueued_at <- now;
      Queue.push req buf.queue;
      try_select bus des
    end
  in
  (* Poisson sources, one per flow. *)
  let flows = Traffic.flows spec.traffic in
  Array.iter
    (fun f ->
      let hops = Traffic.hops spec.traffic f in
      let rec arrival des =
        incr events;
        procs.(f.Traffic.src).offered <- procs.(f.Traffic.src).offered + 1;
        let now = Des.now des in
        let req = { origin = f.Traffic.src; created_at = now; remaining = hops; enqueued_at = now } in
        (match hops with
        | first :: _ -> enqueue first req des
        | [] -> assert false);
        Des.schedule des ~delay:(Rng.exponential rng ~rate:f.Traffic.rate) arrival
      in
      Des.schedule des ~delay:(Rng.exponential rng ~rate:f.Traffic.rate) arrival)
    flows;
  (* Statistics reset at the end of the warmup. *)
  if spec.warmup > 0. then
    Des.schedule_at des ~time:spec.warmup (fun des ->
        let now = Des.now des in
        Array.iter
          (fun p ->
            p.offered <- 0;
            p.lost <- 0;
            p.delivered <- 0;
            p.latency_sum <- 0.;
            p.latency_max <- 0.)
          procs;
        Array.iter
          (fun bus ->
            Array.iter
              (fun buf ->
                buf.arrivals <- 0;
                buf.drops <- 0;
                buf.timeouts <- 0;
                buf.served <- 0;
                buf.sojourn_sum <- 0.;
                buf.occ_integral <- 0.;
                buf.last_update <- now)
              bus.buffers)
          buses;
        events := 0);
  Des.run des ~until:spec.horizon;
  (* Flush occupancy integrals to the horizon. *)
  Array.iter (fun bus -> Array.iter (fun buf -> touch_occupancy buf spec.horizon) bus.buffers) buses;
  let measured = spec.horizon -. spec.warmup in
  let per_proc =
    Array.map
      (fun p ->
        {
          Metrics.offered = p.offered;
          lost = p.lost;
          delivered = p.delivered;
          mean_latency =
            (if p.delivered > 0 then p.latency_sum /. float_of_int p.delivered else Float.nan);
          max_latency = p.latency_max;
        })
      procs
  in
  let buffers =
    Array.to_list buses
    |> List.concat_map (fun bus ->
           Array.to_list bus.buffers
           |> List.map (fun buf ->
                  {
                    Metrics.bus = bus.bus_id;
                    client = buf.client;
                    capacity = buf.capacity;
                    arrivals = buf.arrivals;
                    drops = buf.drops;
                    timeouts = buf.timeouts;
                    served = buf.served;
                    mean_sojourn =
                      (if buf.served > 0 then buf.sojourn_sum /. float_of_int buf.served
                       else Float.nan);
                    mean_occupancy = buf.occ_integral /. measured;
                  }))
    |> Array.of_list
  in
  Obs.add m_des_events !events;
  { Metrics.horizon = measured; per_proc; buffers; events = !events }
