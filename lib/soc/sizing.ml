module Lp = Bufsize_numeric.Lp
module Lp_formulation = Bufsize_mdp.Lp_formulation
module Kswitching = Bufsize_mdp.Kswitching
module Pool = Bufsize_pool.Pool
module Resilience = Bufsize_resilience.Resilience
module Obs = Bufsize_obs.Obs
module Solve_cache = Bufsize_numeric.Solve_cache
module Birth_death = Bufsize_prob.Birth_death

let m_subsystems = Obs.counter "sizing.subsystems"

type solver = Joint | Separate
type sharing = Static | Damq

type config = {
  budget : int;
  occupancy_fraction : float;
  quantile : float;
  max_states : int;
  solver : solver;
  sharing : sharing;
  client_weight : Traffic.client -> float;
}

let default_config ~budget =
  {
    budget;
    occupancy_fraction = 0.6;
    quantile = 0.95;
    max_states = 96;
    solver = Joint;
    sharing = Static;
    client_weight = (fun _ -> 1.);
  }

type subsystem_solution = {
  model : Bus_model.t;
  solved : Lp_formulation.solved;
  switching : Kswitching.analysis;
  occupancy : float array array;
  requirements : (Topology.bus_id * Traffic.client * float) list;
}

type result = {
  config : config;
  split : Splitting.t;
  solutions : subsystem_solution array;
  allocation : Buffer_alloc.t;
  predicted_loss_rate : float;
  words_per_level : float;
  budget_bound_active : bool;
  health : Resilience.health;
}

(* Demote a diagnostic after a recovery the chain itself could not see
   (e.g. re-solving without the occupancy bound): keep any failure, fold
   the new defect into a Degraded status, and record the extra fallback. *)
let demote note fallback (d : Resilience.diagnostic) =
  match d.Resilience.status with
  | Resilience.Failed _ -> d
  | Resilience.Ok ->
      {
        d with
        Resilience.status = Resilience.Degraded note;
        fallbacks = d.Resilience.fallbacks @ [ fallback ];
      }
  | Resilience.Degraded r ->
      {
        d with
        Resilience.status = Resilience.Degraded (r ^ "; " ^ note);
        fallbacks = d.Resilience.fallbacks @ [ fallback ];
      }

(* Smallest level whose cumulative stationary probability reaches the
   quantile. *)
let quantile_level dist q =
  let acc = ref 0. in
  let result = ref (Array.length dist - 1) in
  (try
     Array.iteri
       (fun l p ->
         acc := !acc +. p;
         if !acc >= q then begin
           result := l;
           raise Exit
         end)
       dist
   with Exit -> ());
  !result

let requirements_for model ~words_per_level ~quantile occupancy =
  let sub = Bus_model.subsystem model in
  let loaded = Bus_model.loaded_clients model in
  Array.to_list
    (Array.mapi
       (fun i (c : Bus_model.client_model) ->
         (* The smallest level covering the occupancy quantile, in words.
            Floor of two levels per loaded client: one for the request in
            service and one of burst headroom — coarse (1-level) client
            models cannot represent the bus-wide backlog tails that the
            re-simulation punishes.  A client whose losses weigh w times
            more gets its occupancy covered to a w-fold smaller tail
            probability. *)
         let weighted_quantile =
           let w = Float.max 1e-9 c.Bus_model.weight in
           Float.min 0.999999 (1. -. ((1. -. quantile) /. w))
         in
         let level = Int.max 2 (quantile_level occupancy.(i) weighted_quantile) in
         let demand = float_of_int level *. words_per_level in
         (sub.Splitting.bus, c.Bus_model.client, demand))
       loaded)

let bus_label model =
  Printf.sprintf "bus-%d" (Bus_model.subsystem model).Splitting.bus

let unconstrained_note = "occupancy budget bound not honored: solved unconstrained"

(* State-space guard for shared-pool models: C(K+n, n) grows much faster
   than the static product, so allow a few times the static cap before
   giving up on the DAMQ comparison for a bus. *)
let shared_guard config = Int.max 512 (4 * config.max_states)

(* Re-solve one statically solved subsystem as a DAMQ shared pool of equal
   capacity (total static levels).  The static partition's admission rule
   is included as an action alternative, so the shared optimum can never
   be worse; the pool's time-average occupancy is held to what the static
   solution achieved (plus numerical slack) so the comparison does not
   trade buffer space for loss. *)
let damq_reeval ?(bound_occupancy = true) config (s : subsystem_solution) =
  let sub = Bus_model.subsystem s.model in
  let levels =
    Array.map (fun (c : Bus_model.client_model) -> c.Bus_model.levels) (Bus_model.clients s.model)
  in
  let capacity = Bus_model.total_levels s.model in
  match
    Bus_model.Shared.build ~weights:config.client_weight ~static_levels:levels
      ~max_states:(shared_guard config) ~capacity sub
  with
  | exception Invalid_argument msg -> Error msg
  | shared -> (
      let model = Bus_model.Shared.ctmdp shared in
      let constrained () =
        let bound = s.solved.Lp_formulation.extras.(0) in
        let value = bound +. (1e-6 *. (1. +. Float.abs bound)) in
        Lp_formulation.solve_diag
          ~extra_bounds:[| { Lp_formulation.sense = Lp.Le; value } |]
          model
      in
      let first =
        if bound_occupancy then constrained ()
        else Lp_formulation.solve_diag model
      in
      match first with
      | Some (Lp_formulation.Optimal d), diag -> Ok (shared, d, diag)
      | _ when bound_occupancy -> (
          match Lp_formulation.solve_diag model with
          | Some (Lp_formulation.Optimal d), diag ->
              Ok (shared, d, demote unconstrained_note "unconstrained-lp" diag)
          | _ -> Error "shared-pool LP failed")
      | _ -> Error "shared-pool LP failed")

let solve_subsystems ?pool config models =
  let total_levels =
    Array.fold_left (fun acc m -> acc + Bus_model.total_levels m) 0 models
  in
  let words_per_level = float_of_int config.budget /. float_of_int total_levels in
  (* The shared occupancy bound expressed in levels. *)
  let bound_levels =
    config.occupancy_fraction *. float_of_int config.budget /. words_per_level
  in
  (* Per-subsystem CTMDP construction is independent — build on the pool. *)
  let ctmdps = Pool.map_array ?pool Bus_model.ctmdp models in
  match config.solver with
  | Joint -> (
      let attempt bounds =
        Obs.span ~name:"sizing.solve-joint"
          ~attrs:(fun () -> [ ("subsystems", string_of_int (Array.length ctmdps)) ])
          (fun () -> Lp_formulation.solve_joint_diag ?shared_bounds:bounds ctmdps)
      in
      match
        attempt (Some [| { Lp_formulation.sense = Lp.Le; value = bound_levels } |])
      with
      | Some (Lp_formulation.Joint_optimal j), diag ->
          ( j.Lp_formulation.components,
            j.Lp_formulation.total_gain,
            true,
            words_per_level,
            [ ("joint-lp", diag) ] )
      | _ -> (
          match attempt None with
          | Some (Lp_formulation.Joint_optimal j), diag ->
              ( j.Lp_formulation.components,
                j.Lp_formulation.total_gain,
                false,
                words_per_level,
                [ ("joint-lp", demote unconstrained_note "unconstrained-lp" diag) ] )
          | _ -> failwith "Sizing.run: joint LP failed even without the budget bound"))
  | Separate ->
      let shares =
        (* Divide the occupancy bound proportionally to represented levels. *)
        Array.map
          (fun m ->
            bound_levels *. float_of_int (Bus_model.total_levels m) /. float_of_int total_levels)
          models
      in
      (* Each subsystem LP is independent (that is the paper's point), so
         solve them on the pool.  The solver returns (solution, bound kept,
         diagnostic) triples instead of flipping a shared flag — no mutable
         state crosses domains, and the same code path serves the
         sequential fallback. *)
      let solve_one i m =
        Obs.span ~name:"sizing.subsystem"
          ~attrs:(fun () -> [ ("bus", bus_label models.(i)) ])
        @@ fun () ->
        let bounds = [| { Lp_formulation.sense = Lp.Le; value = shares.(i) } |] in
        match Lp_formulation.solve_diag ~extra_bounds:bounds m with
        | Some (Lp_formulation.Optimal s), diag -> (s, true, diag)
        | _ -> (
            match Lp_formulation.solve_diag m with
            | Some (Lp_formulation.Optimal s), diag ->
                (s, false, demote unconstrained_note "unconstrained-lp" diag)
            | _ -> failwith "Sizing.run: subsystem LP failed")
      in
      let solved = Pool.mapi_array ?pool solve_one ctmdps in
      let solutions = Array.map (fun (s, _, _) -> s) solved in
      let active = Array.for_all (fun (_, a, _) -> a) solved in
      let health =
        Array.to_list (Array.mapi (fun i (_, _, d) -> (bus_label models.(i), d)) solved)
      in
      let gain = Array.fold_left (fun acc s -> acc +. s.Lp_formulation.gain) 0. solutions in
      (solutions, gain, active, words_per_level, health)

(* The expensive middle of [run] — CTMDP construction, the LP solve(s),
   and the occupancy / K-switching post-processing — is a deterministic
   function of the post-profile subsystems and the numeric config, so it
   is memoized in a process-wide exact-key cache.  The key prints every
   number that feeds the computation losslessly (including the
   [client_weight] closure {e evaluated} on each client — closures cannot
   be compared, their values on the actual inputs can), so a hit replays
   exactly what a recompute would produce.  Allocation and the occupancy
   health check are recomputed fresh on hits: they also depend on the
   caller's [traffic] value, which the key does not capture. *)
type cached = {
  c_solutions : subsystem_solution array;
  c_total_gain : float;
  c_words_per_level : float;
  c_bound_active : bool;
  c_lp_health : Resilience.health;
}

let cache : cached Solve_cache.t = Solve_cache.create ~capacity:16 "sizing"

let cache_stats () = (Solve_cache.hits cache, Solve_cache.misses cache)

let cache_key config (subsystems : Splitting.subsystem array) =
  let buf = Buffer.create 512 in
  let fstr = Solve_cache.float_repr in
  Buffer.add_string buf
    (Printf.sprintf "sizing2 budget %d kappa %s q %s states %d solver %s sharing %s\n"
       config.budget (fstr config.occupancy_fraction) (fstr config.quantile) config.max_states
       (match config.solver with Joint -> "joint" | Separate -> "separate")
       (match config.sharing with Static -> "static" | Damq -> "damq"));
  Array.iter
    (fun (s : Splitting.subsystem) ->
      Buffer.add_string buf
        (Printf.sprintf "sub %d bus %d name %s mu %s:" s.Splitting.index s.Splitting.bus
           s.Splitting.bus_name
           (fstr s.Splitting.service_rate));
      List.iter
        (fun (c, r) ->
          (match c with
          | Traffic.Proc_client p -> Buffer.add_string buf (Printf.sprintf " p%d" p)
          | Traffic.Bridge_client { bridge; into_bus } ->
              Buffer.add_string buf (Printf.sprintf " b%d>%d" bridge into_bus));
          Buffer.add_string buf
            (Printf.sprintf "=%s w%s" (fstr r) (fstr (config.client_weight c))))
        s.Splitting.clients;
      Buffer.add_char buf '\n')
    subsystems;
  Buffer.contents buf

let run ?measured_rates ?pool config traffic =
  Obs.span ~name:"sizing.run"
    ~attrs:(fun () -> [ ("budget", string_of_int config.budget) ])
  @@ fun () ->
  if config.budget <= 0 then invalid_arg "Sizing.run: budget must be positive";
  if config.occupancy_fraction <= 0. || config.occupancy_fraction > 1. then
    invalid_arg "Sizing.run: occupancy_fraction must be in (0, 1]";
  if config.quantile <= 0. || config.quantile > 1. then
    invalid_arg "Sizing.run: quantile must be in (0, 1]";
  let split = Splitting.split traffic in
  (* Profiled rates, when supplied, replace the analytically routed ones
     (they capture loss thinning and burst clustering the routing-based
     derivation cannot see). *)
  let apply_profile (s : Splitting.subsystem) =
    match measured_rates with
    | None -> s
    | Some rate_of ->
        let clients =
          List.map
            (fun (c, r) ->
              match rate_of s.Splitting.bus c with
              | Some measured when measured > 0. && r > 0. -> (c, measured)
              | Some _ | None -> (c, r))
            s.Splitting.clients
        in
        { s with Splitting.clients }
  in
  let subsystems = Array.map apply_profile split.Splitting.subsystems in
  Obs.add m_subsystems (Array.length subsystems);
  let key = cache_key config subsystems in
  let payload =
    match Solve_cache.find cache key with
    | Some p -> p
    | None ->
        let models =
          Pool.map_array ?pool
            (fun (s : Splitting.subsystem) ->
              Obs.span ~name:"sizing.build"
                ~attrs:(fun () -> [ ("bus", string_of_int s.Splitting.bus) ])
                (fun () ->
                  Bus_model.build ~weights:config.client_weight
                    ~max_states:config.max_states s))
            subsystems
        in
        let solved, total_gain, bound_active, words_per_level, lp_health =
          solve_subsystems ?pool config models
        in
        let solutions =
          Pool.mapi_array ?pool
            (fun i model ->
              Obs.span ~name:"sizing.occupancy"
                ~attrs:(fun () -> [ ("bus", bus_label model) ])
              @@ fun () ->
              let s = solved.(i) in
              let occupancy = Bus_model.occupancy_distribution model s.Lp_formulation.policy in
              let switching =
                (* The joint problem has one shared constraint, so at most one
                   randomized state exists across ALL subsystems; states with
                   negligible occupation mass are filtered (their conditional
                   probabilities are numerical noise). *)
                Kswitching.of_occupation ~mass_tol:1e-7 ~constraints:1
                  (Bus_model.ctmdp model) s.Lp_formulation.occupation
              in
              let requirements =
                requirements_for model ~words_per_level ~quantile:config.quantile occupancy
              in
              { model; solved = s; switching; occupancy; requirements })
            models
        in
        let payload =
          {
            c_solutions = solutions;
            c_total_gain = total_gain;
            c_words_per_level = words_per_level;
            c_bound_active = bound_active;
            c_lp_health = lp_health;
          }
        in
        (* Degraded solves may depend on wall-clock budgets; only the
           deterministic clean path is worth replaying. *)
        if Resilience.health_ok lp_health then Solve_cache.add cache key payload;
        payload
  in
  let solutions = payload.c_solutions in
  let all_requirements =
    Array.to_list solutions |> List.concat_map (fun s -> s.requirements)
  in
  let allocation = Buffer_alloc.of_requirements traffic ~budget:config.budget all_requirements in
  (* Per-subsystem occupancy health: the stationary marginals feeding the
     quantile requirements must be finite and normalized — a defect here
     silently corrupts the allocation, so it is surfaced as Degraded. *)
  let occupancy_health =
    Array.to_list
      (Array.map
         (fun s ->
           let label = bus_label s.model in
           let solver = Printf.sprintf "sizing.occupancy(%s)" label in
           let bad = ref [] in
           Array.iteri
             (fun i dist ->
               let sum = Array.fold_left ( +. ) 0. dist in
               if not (Resilience.all_finite dist && Float.abs (sum -. 1.) <= 1e-6) then
                 bad := i :: !bad)
             s.occupancy;
           let d =
             if !bad = [] then Resilience.ok ~solver ()
             else
               Resilience.degraded ~solver
                 (Printf.sprintf "invalid occupancy marginal for client(s) %s"
                    (String.concat "," (List.rev_map string_of_int !bad)))
           in
           (label ^ "-occupancy", d))
         solutions)
  in
  (* Under [Damq], buses marked shared in the topology are re-solved as a
     shared pool of equal capacity; the allocation stays the static one
     (its per-client words become the pool the bus draws from at runtime),
     only the predicted loss reflects the dynamic sharing. *)
  let damq_health, predicted_loss_rate =
    match config.sharing with
    | Static -> ([], payload.c_total_gain)
    | Damq ->
        let topo = Traffic.topology traffic in
        let delta = ref 0. in
        let health = ref [] in
        Array.iter
          (fun s ->
            let bus = (Bus_model.subsystem s.model).Splitting.bus in
            if Topology.shared_buffer topo bus then begin
              let label = bus_label s.model ^ "-damq" in
              match damq_reeval config s with
              | Ok (_, d, diag) ->
                  let g =
                    Float.min d.Lp_formulation.gain s.solved.Lp_formulation.gain
                  in
                  delta := !delta +. (s.solved.Lp_formulation.gain -. g);
                  health := (label, diag) :: !health
              | Error msg ->
                  health :=
                    ( label,
                      Resilience.degraded ~solver:label ("kept static partition: " ^ msg) )
                    :: !health
            end)
          solutions;
        (List.rev !health, payload.c_total_gain -. !delta)
  in
  {
    config;
    split;
    solutions;
    allocation;
    predicted_loss_rate;
    words_per_level = payload.c_words_per_level;
    budget_bound_active = payload.c_bound_active;
    health = payload.c_lp_health @ damq_health @ occupancy_health;
  }

type sharing_entry = {
  cmp_bus : Topology.bus_id;
  cmp_bus_name : string;
  cmp_clients : int;
  cmp_capacity : int;
  static_loss : float;
  damq_loss : float;
  separate_loss : float;
  static_delay : float;
  damq_delay : float;
  separate_delay : float;
}

type sharing_report = {
  entries : sharing_entry list;
  skipped : (string * string) list;
  total_static_loss : float;
  total_damq_loss : float;
  total_separate_loss : float;
}

(* Mean model-levels in system divided by accepted throughput: Little's
   law on the occupancy abstraction.  Comparable across organizations of
   the same bus; exact delay in requests when every client weight is 1
   (then the LP gain is the unweighted loss rate). *)
let delay_of ~expected ~offered ~loss = expected /. Float.max 1e-12 (offered -. loss)

let compare_sharing ?pool config traffic =
  let result = run ?pool config traffic in
  let topo = Traffic.topology traffic in
  (* Compare the buses marked shared; with none marked, compare them all
     (the CLI's mesh constructor path marks every router). *)
  let is_target =
    match Topology.shared_buses topo with
    | [] -> fun _ -> true
    | marked -> fun bus -> List.mem bus marked
  in
  let entries = ref [] in
  let skipped = ref [] in
  Array.iter
    (fun (s : subsystem_solution) ->
      let sub = Bus_model.subsystem s.model in
      let bus = sub.Splitting.bus in
      if is_target bus then begin
        let name = sub.Splitting.bus_name in
        let loaded = Bus_model.loaded_clients s.model in
        let mu = sub.Splitting.service_rate in
        let offered =
          Array.fold_left (fun acc c -> acc +. c.Bus_model.arrival_rate) 0. loaded
        in
        let capacity = Bus_model.total_levels s.model in
        (* Static partition at its solved levels, unconstrained: the best
           loss the partition itself allows. *)
        let static_eval () =
          match Lp_formulation.solve_diag (Bus_model.ctmdp s.model) with
          | Some (Lp_formulation.Optimal st), _ ->
              let occupancy =
                Bus_model.occupancy_distribution s.model st.Lp_formulation.policy
              in
              let expected =
                Array.fold_left
                  (fun acc dist ->
                    let e = ref 0. in
                    Array.iteri (fun l p -> e := !e +. (float_of_int l *. p)) dist;
                    acc +. !e)
                  0. occupancy
              in
              Ok (st.Lp_formulation.gain, expected)
          | _ -> Error "static LP failed"
        in
        let damq_eval () =
          match damq_reeval ~bound_occupancy:false config s with
          | Ok (shared, d, _) ->
              Ok
                ( d.Lp_formulation.gain,
                  Bus_model.Shared.expected_total shared d.Lp_formulation.policy )
          | Error msg -> Error msg
        in
        match (static_eval (), damq_eval ()) with
        | Ok (static_loss, static_en), Ok (damq_loss, damq_en) ->
            (* Decoupled baseline: each client as its own M/M/1/levels
               queue at full bus rate — no arbitration contention, hence
               optimistic. *)
            let separate_loss = ref 0. in
            let separate_en = ref 0. in
            Array.iter
              (fun (c : Bus_model.client_model) ->
                let lambda = c.Bus_model.arrival_rate and k = c.Bus_model.levels in
                separate_loss :=
                  !separate_loss +. Birth_death.Mm1k.loss_rate ~lambda ~mu ~k;
                separate_en :=
                  !separate_en +. Birth_death.Mm1k.mean_customers ~lambda ~mu ~k)
              loaded;
            entries :=
              {
                cmp_bus = bus;
                cmp_bus_name = name;
                cmp_clients = Array.length loaded;
                cmp_capacity = capacity;
                static_loss;
                damq_loss = Float.min damq_loss static_loss;
                separate_loss = !separate_loss;
                static_delay = delay_of ~expected:static_en ~offered ~loss:static_loss;
                damq_delay = delay_of ~expected:damq_en ~offered ~loss:damq_loss;
                separate_delay =
                  delay_of ~expected:!separate_en ~offered ~loss:!separate_loss;
              }
              :: !entries;
        | Error msg, _ | _, Error msg -> skipped := (name, msg) :: !skipped
      end)
    result.solutions;
  let entries = List.rev !entries in
  let total f = List.fold_left (fun acc e -> acc +. f e) 0. entries in
  ( result,
    {
      entries;
      skipped = List.rev !skipped;
      total_static_loss = total (fun e -> e.static_loss);
      total_damq_loss = total (fun e -> e.damq_loss);
      total_separate_loss = total (fun e -> e.separate_loss);
    } )

let pp_sharing_report ppf r =
  Format.fprintf ppf "@[<v>sharing comparison: %d bus(es)%s" (List.length r.entries)
    (if r.skipped = [] then "" else Printf.sprintf ", %d skipped" (List.length r.skipped));
  List.iter
    (fun e ->
      Format.fprintf ppf
        "@,  %s: %d clients, pool %d levels | loss static %.4g damq %.4g separate %.4g | \
         delay static %.4g damq %.4g separate %.4g"
        e.cmp_bus_name e.cmp_clients e.cmp_capacity e.static_loss e.damq_loss e.separate_loss
        e.static_delay e.damq_delay e.separate_delay)
    r.entries;
  List.iter (fun (name, why) -> Format.fprintf ppf "@,  %s: skipped (%s)" name why) r.skipped;
  Format.fprintf ppf "@,  totals: loss static %.4g damq %.4g separate %.4g@]"
    r.total_static_loss r.total_damq_loss r.total_separate_loss

let requirements_of_solution r =
  Array.to_list r.solutions |> List.concat_map (fun s -> s.requirements)

let pp_summary ppf r =
  Format.fprintf ppf
    "@[<v>sizing: budget %d words over %d buffers, %d subsystem(s), predicted loss rate %.4g@,\
     granularity %.3g words/level, budget bound %s@]"
    r.config.budget
    (Buffer_alloc.num_buffers r.allocation)
    (Array.length r.solutions) r.predicted_loss_rate r.words_per_level
    (if r.budget_bound_active then "active" else "fallback (unconstrained)");
  if not (Resilience.health_ok r.health) then
    Format.fprintf ppf "@\n%a" Resilience.pp_health r.health
