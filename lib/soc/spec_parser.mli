(** Text format for architectures and traffic.

    A small line-oriented description language so the CLI can size
    user-defined SoCs without writing OCaml:

    {v
    # comments and blank lines are ignored
    bus    core rate 20.0          # a bus with service rate (default 1.0)
    bus    io
    proc   cpu on core             # a processor homed on a bus
    proc   dma on io
    bridge br0 core io             # a bridge between two buses
    mesh   noc rows 2 cols 3 rate 4.0   # a 2x3 router mesh (cells noc_r0c0 ...)
    torus  ring rows 1 cols 4      # like mesh, plus wrap-around links
    shared_buffer noc_r0c1         # DAMQ-style shared pool on that bus
    proc   ni0 on noc_r0c0         # processors may attach to grid cells
    flow   cpu -> dma rate 1.5     # a Poisson request flow
    v}

    A [mesh]/[torus] stanza declares a whole grid of buses named
    [<grid>_r<r>c<c>] joined by nearest-neighbour bridges (named
    [<grid>_h_r<r>c<c>] / [<grid>_v_r<r>c<c>]); the deterministic naming
    is what keeps {!to_string} lossless.  [shared_buffer] marks a bus as
    using one dynamically shared buffer pool across its clients instead
    of the paper's static partition.

    Identifiers are non-empty words without whitespace; keywords are
    lowercase.  Errors are reported with their line numbers.

    The parser is exposed to untrusted input (daemon requests, user
    files), so resource use is bounded by hard caps, each producing a
    line-numbered error rather than an allocation storm: 1 MiB of input,
    4096 bytes per line, 4096 statements, 256 bytes per token, and 4096
    cells per [mesh]/[torus] grid. *)

val parse : string -> (Topology.t * Traffic.t, string) result
(** Parse a description from a string.  At least one flow is required
    (a traffic-less architecture has nothing to size). *)

val parse_file : string -> (Topology.t * Traffic.t, string) result
(** Like {!parse}, reading the given file.  I/O errors are reported in
    the [Error] case. *)

val to_string : Topology.t -> Traffic.t -> string
(** Render an architecture back into the text format ({!parse} of the
    result reconstructs an equivalent architecture). *)
