type subsystem = {
  index : int;
  bus : Topology.bus_id;
  bus_name : string;
  service_rate : float;
  clients : (Traffic.client * float) list;
}

type t = {
  subsystems : subsystem array;
  inserted_buffers : (Topology.bridge_id * Topology.bus_id) list;
  coupling_points : int;
}

let split traffic =
  let topo = Traffic.topology traffic in
  let nb = Topology.num_buses topo in
  let subsystems = ref [] in
  let inserted = ref [] in
  for bus = nb - 1 downto 0 do
    let clients = Traffic.clients_of_bus traffic bus in
    List.iter
      (fun (c, _) ->
        match c with
        | Traffic.Bridge_client { bridge; into_bus } -> inserted := (bridge, into_bus) :: !inserted
        | Traffic.Proc_client _ -> ())
      clients;
    if clients <> [] then begin
      let b = Topology.bus topo bus in
      subsystems :=
        {
          index = 0;
          bus;
          bus_name = b.Topology.bus_name;
          service_rate = b.Topology.service_rate;
          clients;
        }
        :: !subsystems
    end
  done;
  let subsystems = Array.of_list !subsystems in
  Array.iteri (fun i s -> subsystems.(i) <- { s with index = i }) subsystems;
  let inserted = List.sort_uniq compare !inserted in
  { subsystems; inserted_buffers = inserted; coupling_points = List.length inserted }

(* Fold every routed flow along its hop sequence: the transit rate of the
   directed edge (bridge, into_bus) is the sum of the rates of all flows
   whose path crosses that bridge in that direction.  This is the quantity
   the split turns into a bridge client, so it must agree with
   [Traffic.clients_of_bus] — the [topo] verify oracle checks exactly
   that. *)
let edge_flows traffic =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun (f : Traffic.flow) ->
      List.iter
        (fun (_, client) ->
          match client with
          | Traffic.Bridge_client { bridge; into_bus } ->
              let key = (bridge, into_bus) in
              let prev = Option.value ~default:0. (Hashtbl.find_opt table key) in
              Hashtbl.replace table key (prev +. f.Traffic.rate)
          | Traffic.Proc_client _ -> ())
        (Traffic.hops traffic f))
    (Traffic.flows traffic);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let is_linear_without_split traffic =
  List.for_all
    (fun (_, c, _) ->
      match c with Traffic.Proc_client _ -> true | Traffic.Bridge_client _ -> false)
    (Traffic.all_clients traffic)

let subsystem_of_bus t bus = Array.find_opt (fun s -> s.bus = bus) t.subsystems

let total_clients t =
  Array.fold_left (fun acc s -> acc + List.length s.clients) 0 t.subsystems

let pp ppf topo t =
  Format.fprintf ppf "@[<v>split: %d subsystem(s), %d inserted buffer(s), %d coupling point(s)"
    (Array.length t.subsystems)
    (List.length t.inserted_buffers)
    t.coupling_points;
  Array.iter
    (fun s ->
      Format.fprintf ppf "@,  subsystem %d = bus %s:" s.index s.bus_name;
      List.iter
        (fun (c, r) -> Format.fprintf ppf " %s@%.3g" (Traffic.client_label topo c) r)
        s.clients)
    t.subsystems;
  List.iter
    (fun (br, into_bus) ->
      Format.fprintf ppf "@,  buffer inserted: %s feeding %s"
        (Topology.bridge topo br).Topology.bridge_name
        (Topology.bus topo into_bus).Topology.bus_name)
    t.inserted_buffers;
  Format.fprintf ppf "@]"
