module Vec = Bufsize_numeric.Vec
module Newton = Bufsize_numeric.Newton
module Rng = Bufsize_prob.Rng
module Ctmc = Bufsize_prob.Ctmc
module Birth_death = Bufsize_prob.Birth_death

type spec = {
  kx : int;
  ky : int;
  lambda_x : float;
  lambda_y : float;
  cross_fraction : float;
  mu_x : float;
  mu_y : float;
}

let validate s =
  if s.kx < 1 || s.ky < 1 then invalid_arg "Monolithic: capacities must be >= 1";
  if s.lambda_x <= 0. || s.lambda_y <= 0. || s.mu_x <= 0. || s.mu_y <= 0. then
    invalid_arg "Monolithic: rates must be positive";
  if s.cross_fraction < 0. || s.cross_fraction > 1. then
    invalid_arg "Monolithic: cross_fraction must be in [0, 1]"

let dim s = s.kx + 1 + (s.ky + 1)

(* Distinct nonlinear monomial occurrences in the balance system: the
   effective X service rate couples every X death term to y_0 (kx terms),
   the throttled Y service rate couples every Y death term to x_0 (ky
   terms), and the cross input to Y couples every Y balance row to x-y
   products (two occurrences per row). *)
let quadratic_term_count s = s.kx + s.ky + (2 * (s.ky + 1))

(* Unknowns v = [x_0..x_kx; y_0..y_ky].  Marginal-independence closure of a
   BUFFERLESS bridge, which holds both buses for the duration of a cross
   transfer:
   - X dies at rate mu_x * ((1-f) + f * y_0): a cross transfer at the head
     of X's queue also needs bus Y free;
   - symmetrically, Y's service capacity shrinks while X pushes cross
     traffic: mu_y * (1 - f * (1 - x_0));
   - Y's arrival stream adds the cross throughput f * mu_x_eff * (1 - x_0).
   The bidirectional products (x_i * y_0, y_j * x_0, and the cross-input
   composites) are the paper's quadratic terms; they also make the closure
   bistable under heavy coupling — light-traffic and congestion-collapse
   roots coexist — which is precisely what defeats a generic root finder.
   Rows: X balance 0..kx-1, X normalization, Y balance 0..ky-1,
   Y normalization. *)
let residual s v =
  validate s;
  if Vec.dim v <> dim s then invalid_arg "Monolithic.residual: dimension mismatch";
  let x i = v.(i) in
  let y j = v.(s.kx + 1 + j) in
  let f = s.cross_fraction in
  let mu_x_eff = s.mu_x *. (1. -. f +. (f *. y 0)) in
  let mu_y_eff = s.mu_y *. (1. -. (f *. (1. -. x 0))) in
  let cross_in = f *. mu_x_eff *. (1. -. x 0) in
  let lambda_y_total = s.lambda_y +. cross_in in
  let out = Array.make (dim s) 0. in
  (* X birth-death balance (global balance rows 0..kx-1). *)
  for i = 0 to s.kx - 1 do
    let inflow =
      (if i > 0 then s.lambda_x *. x (i - 1) else 0.) +. (mu_x_eff *. x (i + 1))
    in
    let outflow =
      ((if i < s.kx then s.lambda_x else 0.) +. if i > 0 then mu_x_eff else 0.) *. x i
    in
    out.(i) <- inflow -. outflow
  done;
  let sum_x = ref 0. in
  for i = 0 to s.kx do
    sum_x := !sum_x +. x i
  done;
  out.(s.kx) <- !sum_x -. 1.;
  (* Y birth-death balance with the quadratic cross input and the
     bridge-throttled service rate. *)
  for j = 0 to s.ky - 1 do
    let inflow =
      (if j > 0 then lambda_y_total *. y (j - 1) else 0.) +. (mu_y_eff *. y (j + 1))
    in
    let outflow =
      ((if j < s.ky then lambda_y_total else 0.) +. if j > 0 then mu_y_eff else 0.) *. y j
    in
    out.(s.kx + 1 + j) <- inflow -. outflow
  done;
  let sum_y = ref 0. in
  for j = 0 to s.ky do
    sum_y := !sum_y +. y j
  done;
  out.(dim s - 1) <- !sum_y -. 1.;
  out

type attempt_report = {
  starts : int;
  converged_valid : int;
  converged_invalid : int;
  failed : int;
  best_residual : float;
}

let attempt ?(starts = 20) ?(seed = 7) ?(max_iter = 60) ?(damped = false) s =
  validate s;
  let n = dim s in
  let rng = Rng.create seed in
  let uniform_start =
    Array.init n (fun i ->
        if i <= s.kx then 1. /. float_of_int (s.kx + 1) else 1. /. float_of_int (s.ky + 1))
  in
  let random_start () = Array.init n (fun _ -> Rng.float_range rng (-0.5) 1.5) in
  let valid sol = Array.for_all (fun c -> c >= -1e-7) sol in
  let cv = ref 0 and ci = ref 0 and fl = ref 0 in
  let best = ref infinity in
  for k = 0 to starts - 1 do
    let x0 = if k = 0 then uniform_start else random_start () in
    let r = Newton.solve ~max_iter ~tol:1e-10 ~damped ~f:(residual s) ~x0 () in
    if r.Newton.residual < !best then best := r.Newton.residual;
    if r.Newton.converged then
      if valid r.Newton.solution then incr cv else incr ci
    else incr fl
  done;
  {
    starts;
    converged_valid = !cv;
    converged_invalid = !ci;
    failed = !fl;
    best_residual = !best;
  }

type split_solution = {
  x_dist : Vec.t;
  y_dist : Vec.t;
  bridge_dist : Vec.t;
  x_loss : float;
  y_loss : float;
  bridge_loss : float;
}

let solve_split ?bridge_capacity s =
  validate s;
  let bcap = Option.value ~default:s.ky bridge_capacity in
  (* Bus X with a buffer inserted at the bridge serves at full rate. *)
  let x_bd = Birth_death.mm1k ~lambda:s.lambda_x ~mu:s.mu_x ~k:s.kx in
  let x_dist = Birth_death.stationary x_bd in
  let x_loss = s.lambda_x *. x_dist.(s.kx) in
  (* Cross throughput out of X feeds the inserted bridge buffer. *)
  let cross_in = s.cross_fraction *. s.mu_x *. (1. -. x_dist.(0)) in
  (* Bus Y: two buffered clients (local traffic and the bridge buffer)
     sharing the server — a plain linear CTMC on the product space. *)
  let ny = s.ky + 1 and nb = bcap + 1 in
  let encode i j = (i * nb) + j in
  let rates = ref [] in
  for i = 0 to s.ky do
    for j = 0 to bcap do
      let st = encode i j in
      if i < s.ky then rates := (st, encode (i + 1) j, s.lambda_y) :: !rates;
      if j < bcap && cross_in > 0. then rates := (st, encode i (j + 1), cross_in) :: !rates;
      (* Processor-sharing service: both nonempty queues drain at mu/2,
         a lone nonempty queue at full mu. *)
      if i > 0 && j > 0 then begin
        rates := (st, encode (i - 1) j, s.mu_y /. 2.) :: !rates;
        rates := (st, encode i (j - 1), s.mu_y /. 2.) :: !rates
      end
      else if i > 0 then rates := (st, encode (i - 1) j, s.mu_y) :: !rates
      else if j > 0 then rates := (st, encode i (j - 1), s.mu_y) :: !rates
    done
  done;
  let ctmc = Ctmc.of_rates (ny * nb) !rates in
  let pi = Ctmc.stationary ctmc in
  let y_dist = Array.make ny 0. and bridge_dist = Array.make nb 0. in
  Array.iteri
    (fun st p ->
      let i = st / nb and j = st mod nb in
      y_dist.(i) <- y_dist.(i) +. p;
      bridge_dist.(j) <- bridge_dist.(j) +. p)
    pi;
  {
    x_dist;
    y_dist;
    bridge_dist;
    x_loss;
    y_loss = s.lambda_y *. y_dist.(s.ky);
    bridge_loss = cross_in *. bridge_dist.(bcap);
  }

let pp_attempt ppf r =
  Format.fprintf ppf
    "newton on the monolithic quadratic system: %d starts -> %d valid, %d invalid, %d failed \
     (best residual %.2e)"
    r.starts r.converged_valid r.converged_invalid r.failed r.best_residual

(* ------------------------------------------------ resilient closure solve *)

module Resilience = Bufsize_resilience.Resilience
module Obs = Bufsize_obs.Obs

(* Closure-solve telemetry: Newton iterations (plain and damped) and
   Picard fixed-point sweeps, summed across escalation attempts. *)
let m_newton_iters = Obs.counter "monolithic.newton_iterations"
let m_picard_iters = Obs.counter "monolithic.picard_iterations"

let residual_norm s v =
  Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0. (residual s v)

(* A usable closure root: finite, (numerically) nonnegative, both blocks
   normalized. *)
let closure_valid s v =
  Resilience.all_finite v
  && Array.for_all (fun c -> c >= -1e-7) v
  && begin
       let sum_x = ref 0. and sum_y = ref 0. in
       for i = 0 to s.kx do
         sum_x := !sum_x +. v.(i)
       done;
       for j = 0 to s.ky do
         sum_y := !sum_y +. v.(s.kx + 1 + j)
       done;
       Float.abs (!sum_x -. 1.) <= 1e-6 && Float.abs (!sum_y -. 1.) <= 1e-6
     end

let bd_stationary ~birth ~death ~k =
  Birth_death.stationary
    (Birth_death.create ~births:(Array.make k birth) ~deaths:(Array.make k death))

(* Picard iteration on the closure: given (x_0, y_0) the effective rates
   freeze, making both buses constant-rate birth-death chains whose
   product-form marginals refresh (x_0, y_0).  Slower than Newton but
   immune to the Jacobian pathologies that defeat it on stiff instances —
   the last resort of the escalation chain. *)
let picard ?(tol = 1e-13) ?(max_iter = 500) ?x0 ?y0 s =
  validate s;
  let f = s.cross_fraction in
  let px0 = Option.value ~default:(1. /. float_of_int (s.kx + 1)) x0 in
  let py0 = Option.value ~default:(1. /. float_of_int (s.ky + 1)) y0 in
  let rec go px py iter =
    if iter > max_iter then None
    else begin
      let mu_x_eff = s.mu_x *. (1. -. f +. (f *. py)) in
      let xd = bd_stationary ~birth:s.lambda_x ~death:mu_x_eff ~k:s.kx in
      let cross_in = f *. mu_x_eff *. (1. -. xd.(0)) in
      let mu_y_eff = s.mu_y *. (1. -. (f *. (1. -. xd.(0)))) in
      let yd = bd_stationary ~birth:(s.lambda_y +. cross_in) ~death:mu_y_eff ~k:s.ky in
      let delta = Float.abs (xd.(0) -. px) +. Float.abs (yd.(0) -. py) in
      if delta < tol then Some (Array.append xd yd, iter) else go xd.(0) yd.(0) (iter + 1)
    end
  in
  go px0 py0 0

let solve_closure ?budget ?(tol = 1e-9) s =
  validate s;
  let uniform_start =
    Array.init (dim s) (fun i ->
        if i <= s.kx then 1. /. float_of_int (s.kx + 1) else 1. /. float_of_int (s.ky + 1))
  in
  let newton_step name ~damped =
    Resilience.step name (fun _ ->
        let r = Newton.solve ~max_iter:200 ~tol ~damped ~f:(residual s) ~x0:uniform_start () in
        Obs.add m_newton_iters r.Newton.iterations;
        let meta = Resilience.meta ~iterations:r.Newton.iterations ~residual:r.Newton.residual () in
        if not r.Newton.converged then
          Resilience.Reject
            (if r.Newton.singular_jacobian then
               Printf.sprintf "singular Jacobian after %d iterations (residual %.3e)"
                 r.Newton.iterations r.Newton.residual
             else
               Printf.sprintf "did not converge in %d iterations (residual %.3e)"
                 r.Newton.iterations r.Newton.residual)
        else if not (closure_valid s r.Newton.solution) then
          Resilience.Reject "converged outside the probability simplex"
        else Resilience.Accept (r.Newton.solution, meta))
  in
  let picard_step =
    Resilience.step "picard" (fun _ ->
        match picard s with
        | None -> Resilience.Reject "no attractive fixed point from the uniform start"
        | Some (v, iters) ->
            Obs.add m_picard_iters iters;
            let res = residual_norm s v in
            let meta = Resilience.meta ~iterations:iters ~residual:res () in
            if not (closure_valid s v) then
              Resilience.Reject "fixed point outside the probability simplex"
            else if res <= Float.max 1e-7 tol then Resilience.Accept (v, meta)
            else
              Resilience.Partial
                (v, meta, Printf.sprintf "fixed point residual %.3e above target" res))
  in
  let budget = match budget with Some b -> b | None -> Resilience.of_env () in
  Resilience.escalate
    ~solver:(Printf.sprintf "monolithic.closure(kx=%d,ky=%d)" s.kx s.ky)
    ~budget
    [ newton_step "newton" ~damped:false; newton_step "damped-newton" ~damped:true; picard_step ]
