(** End-to-end CTMDP buffer sizing — the paper's methodology in one call.

    Pipeline: split the architecture at bridges ({!Splitting}), build one
    CTMDP per subsystem ({!Bus_model}), solve all subsystems in one joint
    LP with a shared time-average buffer-occupancy budget
    ({!Bufsize_mdp.Lp_formulation.solve_joint}), analyze the K-switching
    structure, translate the optimal policy's stationary occupancy
    distributions into per-client buffer requirements (occupancy quantile),
    and apportion the integer word budget ({!Buffer_alloc}).

    Model levels are an abstraction of buffer words: with total budget [W]
    words and [L] total model levels, one level stands for [g = W/L] words
    (the granularity).  The LP's shared constraint bounds the expected
    occupied space at [occupancy_fraction * W] words. *)

type solver = Joint | Separate
(** [Joint] solves one block LP over all subsystems (the paper's "in one
    go"); [Separate] solves per-subsystem LPs with proportionally divided
    budgets (the sequential strawman, kept for the ablation). *)

type sharing = Static | Damq
(** How buses marked shared ({!Topology.mark_shared} / the spec's
    [shared_buffer] stanza) are treated.  [Static] — the paper's static
    partition everywhere.  [Damq] — after the static solve, every shared
    bus is re-solved as a DAMQ shared pool of equal capacity
    ({!Bus_model.Shared}) under the occupancy the static solution
    achieved; the allocation stays the static one (its per-client words
    form the runtime pool), only [predicted_loss_rate] reflects the
    dynamic sharing.  Never worse: the static partition's admission rule
    is one of the pool's actions. *)

type config = {
  budget : int;  (** total buffer words to distribute *)
  occupancy_fraction : float;  (** kappa in (0, 1]: time-average bound *)
  quantile : float;  (** occupancy quantile for requirements, e.g. 0.95 *)
  max_states : int;  (** per-subsystem CTMDP state cap *)
  solver : solver;
  sharing : sharing;
  client_weight : Traffic.client -> float;
      (** loss-importance weight per client in the CTMDP cost — the
          paper's closing remark ("allowing some losses to be more
          important than the others") as a first-class knob; default 1.
          Weights must be positive. *)
}

val default_config : budget:int -> config
(** kappa = 0.6, quantile = 0.95, max_states = 96, Joint, Static.  Larger state
    caps buy model fidelity at steeply growing joint-LP cost; the
    ABL-LEVELS ablation shows allocations saturating well below 100 states
    per subsystem. *)

type subsystem_solution = {
  model : Bus_model.t;
  solved : Bufsize_mdp.Lp_formulation.solved;
  switching : Bufsize_mdp.Kswitching.analysis;
  occupancy : float array array;
      (** stationary occupancy marginals per loaded client *)
  requirements : (Topology.bus_id * Traffic.client * float) list;
      (** real-valued word requirements per loaded client *)
}

type result = {
  config : config;
  split : Splitting.t;
  solutions : subsystem_solution array;
  allocation : Buffer_alloc.t;
  predicted_loss_rate : float;
      (** the joint LP's optimal gain: model-predicted total loss rate *)
  words_per_level : float;  (** the granularity g *)
  budget_bound_active : bool;
      (** false when the occupancy bound was infeasible and the solve fell
          back to the unconstrained LP *)
  health : Bufsize_resilience.Resilience.health;
      (** per-subsystem solver diagnostics: one entry per LP solve (the
          joint block LP, or each subsystem LP under [Separate]) plus one
          per-subsystem occupancy-marginal check.  All-[Ok] on the clean
          path; any fallback taken anywhere in the pipeline appears here
          as [Degraded] with its reason — this is what the CLI's
          [--health] flag prints. *)
}

val run :
  ?measured_rates:(Topology.bus_id -> Traffic.client -> float option) ->
  ?pool:Bufsize_pool.Pool.t ->
  config ->
  Traffic.t ->
  result
(** [pool] runs the independent per-subsystem stages — CTMDP model
    construction, occupancy/K-switching post-processing, and (under
    [Separate]) the per-subsystem LP solves — on a {!Bufsize_pool.Pool}
    (default: the process-wide pool, sized by [BUFSIZE_NUM_DOMAINS]).  The [Joint]
    block LP itself stays sequential: its subsystems are coupled by the
    shared occupancy constraint, so there is nothing independent to fan
    out at the solver level.  Results are identical for every pool size.

    [measured_rates] optionally overrides the analytically routed client
    arrival rates with profiled ones (e.g. per-buffer arrival counts from a
    simulation of the previous allocation — the paper's "better profiling"
    suggestion; see [Bufsize.profiled_sizing]).  [None] keeps the routed
    rate; overrides must be positive to keep a loaded client loaded.
    @raise Failure if some subsystem LP is unbounded (cannot happen for
    well-formed models) or the unconstrained fallback also fails. *)

type sharing_entry = {
  cmp_bus : Topology.bus_id;
  cmp_bus_name : string;
  cmp_clients : int;  (** loaded clients of the bus *)
  cmp_capacity : int;  (** pool capacity compared at, in model levels *)
  static_loss : float;  (** unconstrained LP optimum of the static partition *)
  damq_loss : float;  (** shared-pool LP optimum at equal capacity *)
  separate_loss : float;  (** decoupled per-client M/M/1/levels baseline *)
  static_delay : float;
  damq_delay : float;
  separate_delay : float;
      (** delays are mean model-levels in system over accepted throughput
          (Little's law); exact when every client weight is 1 *)
}

type sharing_report = {
  entries : sharing_entry list;
  skipped : (string * string) list;
      (** buses whose shared pool exceeded the state guard or whose LP
          failed: (bus name, reason) *)
  total_static_loss : float;
  total_damq_loss : float;
  total_separate_loss : float;
}

val compare_sharing :
  ?pool:Bufsize_pool.Pool.t -> config -> Traffic.t -> result * sharing_report
(** {!run}, plus a per-bus comparison of the three buffer organizations —
    static partition (the paper), DAMQ shared pool of equal capacity, and
    the decoupled per-client M/M/1 baseline — over the buses marked
    shared (all buses when none is marked).  [total_damq_loss <=
    total_static_loss] always: the static partition's admission rule is
    representable in the shared-pool CTMDP. *)

val pp_sharing_report : Format.formatter -> sharing_report -> unit

val requirements_of_solution : result -> (Topology.bus_id * Traffic.client * float) list
(** All subsystems' requirements concatenated. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the sizing-level solve cache.  {!run} memoizes its
    expensive middle — CTMDP construction, the LP solve(s), and the
    occupancy / K-switching post-processing — in a process-wide exact-key
    {!Bufsize_numeric.Solve_cache} keyed on a lossless print of the
    post-profile subsystems and every numeric config field (with
    [client_weight] evaluated per client).  A hit replays exactly what a
    recompute would produce; allocation and the occupancy health check are
    recomputed fresh.  Only clean (all-[Ok]) solves are stored.  Disable
    process-wide with [BUFSIZE_SOLVE_CACHE=0] or
    {!Bufsize_numeric.Solve_cache.set_enabled}. *)

val pp_summary : Format.formatter -> result -> unit
