let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

type statement =
  | Bus of string * float
  | Proc of string * string
  | Bridge of string * string * string
  | Grid of Topology.grid_kind * string * int * int * float
  | Shared of string
  | Flow of string * string * float

let parse_float ~lineno what s =
  match float_of_string_opt s with
  | Some f when f > 0. -> Ok f
  | Some _ -> Error (Printf.sprintf "line %d: %s must be positive, got %s" lineno what s)
  | None -> Error (Printf.sprintf "line %d: malformed %s %S" lineno what s)

let parse_int ~lineno what s =
  match int_of_string_opt s with
  | Some i when i > 0 -> Ok i
  | Some _ -> Error (Printf.sprintf "line %d: %s must be positive, got %s" lineno what s)
  | None -> Error (Printf.sprintf "line %d: malformed %s %S" lineno what s)

let keywords = [ "bus"; "proc"; "bridge"; "mesh"; "torus"; "shared_buffer"; "flow" ]

(* Hard caps against adversarial input.  The parser feeds on daemon
   requests and user files, so resource use must be bounded before any
   topology is built: a one-line multi-gigabyte "spec", a million-stanza
   flood, or a [mesh] stanza declaring 10^9 buses should all be cheap,
   line-numbered errors — not an allocation storm. *)
let max_input_bytes = 1 lsl 20
let max_line_bytes = 4096
let max_statements = 4096
let max_token_bytes = 256
let max_grid_cells = 4096

let grid_kind_of_keyword = function
  | "mesh" -> Topology.Mesh
  | "torus" -> Topology.Torus
  | kw -> invalid_arg ("not a grid keyword: " ^ kw)

let check_grid_size ~lineno kw r c =
  if r * c > max_grid_cells then
    Error
      (Printf.sprintf "line %d: %s declares %d cells, more than the cap of %d" lineno kw (r * c)
         max_grid_cells)
  else Ok ()

let parse_statement lineno tokens =
  match List.find_opt (fun t -> String.length t > max_token_bytes) tokens with
  | Some t ->
      Error
        (Printf.sprintf "line %d: token of %d bytes exceeds the cap of %d" lineno
           (String.length t) max_token_bytes)
  | None -> (
  match tokens with
  | [] -> Ok None
  | [ "bus"; name ] -> Ok (Some (Bus (name, 1.0)))
  | [ "bus"; name; "rate"; rate ] ->
      Result.map (fun r -> Some (Bus (name, r))) (parse_float ~lineno "bus rate" rate)
  | [ "proc"; name; "on"; bus ] -> Ok (Some (Proc (name, bus)))
  | [ "bridge"; name; bus1; bus2 ] -> Ok (Some (Bridge (name, bus1, bus2)))
  | [ (("mesh" | "torus") as kw); name; "rows"; rows; "cols"; cols ] ->
      Result.bind (parse_int ~lineno (kw ^ " rows") rows) (fun r ->
          Result.bind (parse_int ~lineno (kw ^ " cols") cols) (fun c ->
              Result.map
                (fun () -> Some (Grid (grid_kind_of_keyword kw, name, r, c, 1.0)))
                (check_grid_size ~lineno kw r c)))
  | [ (("mesh" | "torus") as kw); name; "rows"; rows; "cols"; cols; "rate"; rate ] ->
      Result.bind (parse_int ~lineno (kw ^ " rows") rows) (fun r ->
          Result.bind (parse_int ~lineno (kw ^ " cols") cols) (fun c ->
              Result.bind (check_grid_size ~lineno kw r c) (fun () ->
                  Result.map
                    (fun mu -> Some (Grid (grid_kind_of_keyword kw, name, r, c, mu)))
                    (parse_float ~lineno (kw ^ " rate") rate))))
  | [ "shared_buffer"; bus ] -> Ok (Some (Shared bus))
  | [ "flow"; src; "->"; dst; "rate"; rate ] ->
      Result.map (fun r -> Some (Flow (src, dst, r))) (parse_float ~lineno "flow rate" rate)
  | keyword :: _ when List.mem keyword keywords ->
      Error
        (Printf.sprintf "line %d: malformed %s statement: %S" lineno keyword
           (String.concat " " tokens))
  | keyword :: _ -> Error (Printf.sprintf "line %d: unknown keyword %S" lineno keyword))

let parse text =
  if String.length text > max_input_bytes then
    Error
      (Printf.sprintf "spec of %d bytes exceeds the cap of %d" (String.length text)
         max_input_bytes)
  else begin
  let lines = String.split_on_char '\n' text in
  let statements = ref [] in
  let nstatements = ref 0 in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then
        if String.length line > max_line_bytes then
          error :=
            Some
              (Printf.sprintf "line %d: %d bytes exceeds the cap of %d" (i + 1)
                 (String.length line) max_line_bytes)
        else
          match parse_statement (i + 1) (tokenize (strip_comment line)) with
          | Ok None -> ()
          | Ok (Some s) ->
              incr nstatements;
              if !nstatements > max_statements then
                error :=
                  Some
                    (Printf.sprintf "line %d: more than %d statements" (i + 1) max_statements)
              else statements := (i + 1, s) :: !statements
          | Error e -> error := Some e)
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      let statements = List.rev !statements in
      let b = Topology.builder () in
      let buses = Hashtbl.create 8 in
      let procs = Hashtbl.create 8 in
      let grid_names = Hashtbl.create 4 in
      let flows = ref [] in
      let build () =
        List.iter
          (fun (lineno, s) ->
            match s with
            | Bus (name, rate) ->
                if Hashtbl.mem buses name then
                  failwith (Printf.sprintf "line %d: duplicate bus %S" lineno name);
                Hashtbl.add buses name (Topology.add_bus b ~service_rate:rate name)
            | Proc (name, bus) -> (
                match Hashtbl.find_opt buses bus with
                | None -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus)
                | Some bus_id ->
                    if Hashtbl.mem procs name then
                      failwith (Printf.sprintf "line %d: duplicate processor %S" lineno name);
                    Hashtbl.add procs name (Topology.add_processor b ~bus:bus_id name))
            | Bridge (name, bus1, bus2) -> (
                match (Hashtbl.find_opt buses bus1, Hashtbl.find_opt buses bus2) with
                | None, _ -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus1)
                | _, None -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus2)
                | Some x, Some y -> (
                    try ignore (Topology.add_bridge b ~between:(x, y) name)
                    with Invalid_argument msg ->
                      failwith (Printf.sprintf "line %d: %s" lineno msg)))
            | Grid (kind, name, rows, cols, rate) ->
                if Hashtbl.mem grid_names name then
                  failwith (Printf.sprintf "line %d: duplicate grid %S" lineno name);
                let cells =
                  try
                    match kind with
                    | Topology.Mesh -> Topology.mesh b ~service_rate:rate ~rows ~cols name
                    | Topology.Torus -> Topology.torus b ~service_rate:rate ~rows ~cols name
                  with Invalid_argument msg ->
                    failwith (Printf.sprintf "line %d: %s" lineno msg)
                in
                Hashtbl.add grid_names name ();
                Array.iteri
                  (fun r row ->
                    Array.iteri
                      (fun c id ->
                        Hashtbl.add buses (Printf.sprintf "%s_r%dc%d" name r c) id)
                      row)
                  cells
            | Shared bus -> (
                match Hashtbl.find_opt buses bus with
                | None -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus)
                | Some bus_id -> Topology.mark_shared b bus_id)
            | Flow (src, dst, rate) -> (
                match (Hashtbl.find_opt procs src, Hashtbl.find_opt procs dst) with
                | None, _ -> failwith (Printf.sprintf "line %d: unknown processor %S" lineno src)
                | _, None -> failwith (Printf.sprintf "line %d: unknown processor %S" lineno dst)
                | Some s, Some d ->
                    if s = d then
                      failwith (Printf.sprintf "line %d: flow from %S to itself" lineno src);
                    flows := { Traffic.src = s; dst = d; rate } :: !flows))
          statements;
        if !flows = [] then failwith "no flows defined: nothing to size";
        let topo =
          try Topology.finalize b with Invalid_argument msg -> failwith msg
        in
        let traffic =
          try Traffic.create topo (List.rev !flows)
          with Invalid_argument msg -> failwith msg
        in
        (topo, traffic)
      in
      match build () with
      | result -> Ok result
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg)
  end

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      parse text

let to_string topo traffic =
  let buf = Buffer.create 512 in
  (* Grid members get their stanza, not individual bus/bridge lines; the
     deterministic member naming makes this lossless. *)
  let nb = Topology.num_buses topo in
  let nbr = Topology.num_bridges topo in
  let in_grid_bus = Array.make nb false in
  let in_grid_bridge = Array.make (Int.max 1 nbr) false in
  Array.iter
    (fun (g : Topology.grid) ->
      Array.iter (Array.iter (fun id -> in_grid_bus.(id) <- true)) g.Topology.cells;
      let mark = Array.iter (Array.iter (fun id -> if id >= 0 then in_grid_bridge.(id) <- true)) in
      mark g.Topology.h_bridges;
      mark g.Topology.v_bridges)
    (Topology.grids topo);
  Array.iter
    (fun (g : Topology.grid) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s rows %d cols %d rate %g\n"
           (match g.Topology.grid_kind with Topology.Mesh -> "mesh" | Topology.Torus -> "torus")
           g.Topology.grid_name g.Topology.rows g.Topology.cols g.Topology.grid_rate))
    (Topology.grids topo);
  Array.iter
    (fun (b : Topology.bus) ->
      if not in_grid_bus.(b.Topology.bus_id) then
        Buffer.add_string buf
          (Printf.sprintf "bus %s rate %g\n" b.Topology.bus_name b.Topology.service_rate))
    (Topology.buses topo);
  Array.iter
    (fun (p : Topology.processor) ->
      Buffer.add_string buf
        (Printf.sprintf "proc %s on %s\n" p.Topology.proc_name
           (Topology.bus topo p.Topology.home_bus).Topology.bus_name))
    (Topology.processors topo);
  Array.iter
    (fun (br : Topology.bridge) ->
      if not in_grid_bridge.(br.Topology.bridge_id) then
        let x, y = br.Topology.endpoints in
        Buffer.add_string buf
          (Printf.sprintf "bridge %s %s %s\n" br.Topology.bridge_name
             (Topology.bus topo x).Topology.bus_name
             (Topology.bus topo y).Topology.bus_name))
    (Topology.bridges topo);
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "shared_buffer %s\n" (Topology.bus topo id).Topology.bus_name))
    (Topology.shared_buses topo);
  Array.iter
    (fun (f : Traffic.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %s -> %s rate %g\n"
           (Topology.processor topo f.Traffic.src).Topology.proc_name
           (Topology.processor topo f.Traffic.dst).Topology.proc_name
           f.Traffic.rate))
    (Traffic.flows traffic);
  Buffer.contents buf
