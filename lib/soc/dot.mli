(** Graphviz export of architectures and allocations.

    Renders the bus/bridge/processor graph (and optionally a buffer
    allocation as node annotations) in DOT format, for inspection with
    [dot -Tsvg].  Buses are boxes, processors ellipses, bridges edges
    between buses; bridge buffers inserted by the split appear as small
    house-shaped nodes on the bus they feed.  Buses marked as shared DAMQ
    pools ({!Topology.mark_shared}) render with a distinct fill and a
    [shared pool] tag in every view. *)

val topology : ?rankdir:string -> Topology.t -> string
(** DOT source for the bare architecture graph ([rankdir] defaults to
    ["LR"]). *)

val with_routes : ?rankdir:string -> Traffic.t -> string
(** The architecture graph overlaid with one dashed, colored chain per
    flow tracing its full multi-hop route: source processor, every bus the
    routed path visits, destination processor.  The first edge of each
    chain carries the flow's offered rate. *)

val with_allocation : ?rankdir:string -> Topology.t -> Traffic.t -> Buffer_alloc.t -> string
(** DOT source with per-client buffer sizes (words) in the node labels and
    bridge-buffer nodes for every loaded bridge direction. *)
