type bus_id = int
type proc_id = int
type bridge_id = int

type bus = { bus_id : bus_id; bus_name : string; service_rate : float }
type processor = { proc_id : proc_id; proc_name : string; home_bus : bus_id }

type bridge = {
  bridge_id : bridge_id;
  bridge_name : string;
  endpoints : bus_id * bus_id;
}

type grid_kind = Mesh | Torus

type grid = {
  grid_name : string;
  grid_kind : grid_kind;
  rows : int;
  cols : int;
  grid_rate : float;
  cells : bus_id array array;  (* rows x cols *)
  (* h_bridges.(r).(c) connects (r,c) to (r,(c+1) mod cols); -1 when absent.
     v_bridges.(r).(c) connects (r,c) to ((r+1) mod rows,c); -1 when absent. *)
  h_bridges : bridge_id array array;
  v_bridges : bridge_id array array;
}

type builder = {
  mutable b_buses : bus list;  (* reversed *)
  mutable b_procs : processor list;
  mutable b_bridges : bridge list;
  mutable b_grids : grid list;  (* reversed *)
  mutable b_shared : bus_id list;
  mutable names : string list;
}

type t = {
  t_buses : bus array;
  t_procs : processor array;
  t_bridges : bridge array;
  t_grids : grid array;
  by_bus : processor list array;  (* processors per bus *)
  bridges_by_bus : bridge list array;
  cell_of_bus : (int * int * int) option array;  (* grid index, row, col *)
  t_shared : bool array;
}

let builder () =
  { b_buses = []; b_procs = []; b_bridges = []; b_grids = []; b_shared = []; names = [] }

let check_name b name =
  if List.mem name b.names then
    invalid_arg (Printf.sprintf "Topology: duplicate name %S" name);
  b.names <- name :: b.names

let add_bus b ?(service_rate = 1.0) name =
  if service_rate <= 0. then invalid_arg "Topology.add_bus: nonpositive service rate";
  check_name b name;
  let id = List.length b.b_buses in
  b.b_buses <- { bus_id = id; bus_name = name; service_rate } :: b.b_buses;
  id

let known_bus b id =
  if id < 0 || id >= List.length b.b_buses then
    invalid_arg (Printf.sprintf "Topology: unknown bus %d" id)

let add_processor b ~bus name =
  known_bus b bus;
  check_name b name;
  let id = List.length b.b_procs in
  b.b_procs <- { proc_id = id; proc_name = name; home_bus = bus } :: b.b_procs;
  id

let add_bridge b ~between name =
  let x, y = between in
  known_bus b x;
  known_bus b y;
  if x = y then invalid_arg "Topology.add_bridge: endpoints coincide";
  check_name b name;
  let id = List.length b.b_bridges in
  b.b_bridges <- { bridge_id = id; bridge_name = name; endpoints = between } :: b.b_bridges;
  id

let mark_shared b bus =
  known_bus b bus;
  if not (List.mem bus b.b_shared) then b.b_shared <- bus :: b.b_shared

(* Grid cell buses are named <grid>_r<r>c<c>, the bridge leaving (r,c)
   rightwards <grid>_h_r<r>c<c> and downwards <grid>_v_r<r>c<c>.  The
   deterministic scheme is what makes the spec-text round-trip lossless:
   the parser can re-derive every member name from the stanza alone. *)
let add_grid b kind ?(service_rate = 1.0) ~rows ~cols name =
  let what = match kind with Mesh -> "mesh" | Torus -> "torus" in
  if rows < 1 || cols < 1 then
    invalid_arg (Printf.sprintf "Topology.%s: rows and cols must be >= 1" what);
  if rows * cols < 2 then
    invalid_arg (Printf.sprintf "Topology.%s: a grid needs at least 2 cells" what);
  if service_rate <= 0. then
    invalid_arg (Printf.sprintf "Topology.%s: nonpositive service rate" what);
  check_name b name;
  let cells =
    Array.init rows (fun r ->
        Array.init cols (fun c ->
            add_bus b ~service_rate (Printf.sprintf "%s_r%dc%d" name r c)))
  in
  let h = Array.make_matrix rows cols (-1) in
  let v = Array.make_matrix rows cols (-1) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        h.(r).(c) <-
          add_bridge b
            ~between:(cells.(r).(c), cells.(r).(c + 1))
            (Printf.sprintf "%s_h_r%dc%d" name r c);
      if r + 1 < rows then
        v.(r).(c) <-
          add_bridge b
            ~between:(cells.(r).(c), cells.(r + 1).(c))
            (Printf.sprintf "%s_v_r%dc%d" name r c)
    done
  done;
  (* Wrap-around links; skipped when the dimension has length <= 2, where
     they would merely duplicate an existing mesh edge. *)
  if kind = Torus then begin
    if cols > 2 then
      for r = 0 to rows - 1 do
        h.(r).(cols - 1) <-
          add_bridge b
            ~between:(cells.(r).(cols - 1), cells.(r).(0))
            (Printf.sprintf "%s_h_r%dc%d" name r (cols - 1))
      done;
    if rows > 2 then
      for c = 0 to cols - 1 do
        v.(rows - 1).(c) <-
          add_bridge b
            ~between:(cells.(rows - 1).(c), cells.(0).(c))
            (Printf.sprintf "%s_v_r%dc%d" name (rows - 1) c)
      done
  end;
  b.b_grids <-
    {
      grid_name = name;
      grid_kind = kind;
      rows;
      cols;
      grid_rate = service_rate;
      cells;
      h_bridges = h;
      v_bridges = v;
    }
    :: b.b_grids;
  cells

let mesh b ?service_rate ~rows ~cols name = add_grid b Mesh ?service_rate ~rows ~cols name
let torus b ?service_rate ~rows ~cols name = add_grid b Torus ?service_rate ~rows ~cols name

let finalize b =
  let t_buses = Array.of_list (List.rev b.b_buses) in
  let t_procs = Array.of_list (List.rev b.b_procs) in
  let t_bridges = Array.of_list (List.rev b.b_bridges) in
  let t_grids = Array.of_list (List.rev b.b_grids) in
  let nb = Array.length t_buses in
  let by_bus = Array.make nb [] in
  Array.iter (fun p -> by_bus.(p.home_bus) <- p :: by_bus.(p.home_bus)) t_procs;
  Array.iteri (fun i ps -> by_bus.(i) <- List.rev ps) by_bus;
  let bridges_by_bus = Array.make nb [] in
  Array.iter
    (fun br ->
      let x, y = br.endpoints in
      bridges_by_bus.(x) <- br :: bridges_by_bus.(x);
      bridges_by_bus.(y) <- br :: bridges_by_bus.(y))
    t_bridges;
  Array.iteri (fun i bs -> bridges_by_bus.(i) <- List.rev bs) bridges_by_bus;
  (* Connectivity validation: a disconnected bus graph can never route the
     cross-component flows a spec will ask for, so fail now with the
     component list instead of letting routing fail later. *)
  if nb > 1 then begin
    let comp = Array.make nb (-1) in
    let ncomp = ref 0 in
    for s = 0 to nb - 1 do
      if comp.(s) < 0 then begin
        let c = !ncomp in
        incr ncomp;
        let q = Queue.create () in
        comp.(s) <- c;
        Queue.add s q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          List.iter
            (fun br ->
              let x, y = br.endpoints in
              let v = if x = u then y else x in
              if comp.(v) < 0 then begin
                comp.(v) <- c;
                Queue.add v q
              end)
            bridges_by_bus.(u)
        done
      end
    done;
    if !ncomp > 1 then begin
      let members = Array.make !ncomp [] in
      for i = nb - 1 downto 0 do
        members.(comp.(i)) <- t_buses.(i).bus_name :: members.(comp.(i))
      done;
      let show names = "[" ^ String.concat " " names ^ "]" in
      invalid_arg
        (Printf.sprintf
           "Topology.finalize: disconnected bus graph: %d components: %s (add bridges to \
            connect them)"
           !ncomp
           (String.concat "; " (Array.to_list (Array.map show members))))
    end
  end;
  let cell_of_bus = Array.make nb None in
  Array.iteri
    (fun gi g ->
      Array.iteri
        (fun r row -> Array.iteri (fun c bus -> cell_of_bus.(bus) <- Some (gi, r, c)) row)
        g.cells)
    t_grids;
  let t_shared = Array.make nb false in
  List.iter (fun i -> t_shared.(i) <- true) b.b_shared;
  { t_buses; t_procs; t_bridges; t_grids; by_bus; bridges_by_bus; cell_of_bus; t_shared }

let num_buses t = Array.length t.t_buses
let num_processors t = Array.length t.t_procs
let num_bridges t = Array.length t.t_bridges
let bus t id = t.t_buses.(id)
let processor t id = t.t_procs.(id)
let bridge t id = t.t_bridges.(id)
let buses t = Array.copy t.t_buses
let processors t = Array.copy t.t_procs
let bridges t = Array.copy t.t_bridges
let grids t = Array.copy t.t_grids
let grid_cell t id = t.cell_of_bus.(id)
let shared_buffer t id = t.t_shared.(id)

let shared_buses t =
  let acc = ref [] in
  for i = Array.length t.t_shared - 1 downto 0 do
    if t.t_shared.(i) then acc := i :: !acc
  done;
  !acc

let processors_on_bus t id = t.by_bus.(id)
let bridges_of_bus t id = t.bridges_by_bus.(id)

let find_bus t name =
  match Array.find_opt (fun b -> b.bus_name = name) t.t_buses with
  | Some b -> b.bus_id
  | None -> raise Not_found

let find_processor t name =
  match Array.find_opt (fun p -> p.proc_name = name) t.t_procs with
  | Some p -> p.proc_id
  | None -> raise Not_found

(* Dimension-order (XY) routing inside one grid: adjust the column first,
   then the row.  On a torus the wrapping direction is the shorter one,
   ties broken towards increasing index.  Wrap links are only present when
   the dimension has length > 2, so shorter-side arithmetic degenerates to
   mesh stepping exactly when it has to. *)
let grid_route g r1 c1 r2 c2 =
  let steps dim wrapped from_ to_ =
    if from_ = to_ then []
    else begin
      let dir =
        if not wrapped then if to_ > from_ then 1 else -1
        else
          let fwd = ((to_ - from_) mod dim + dim) mod dim in
          if fwd <= dim - fwd then 1 else -1
      in
      let rec go x acc =
        if x = to_ then List.rev acc
        else
          let nx = ((x + dir) mod dim + dim) mod dim in
          go nx ((x, nx) :: acc)
      in
      go from_ []
    end
  in
  (* The link between adjacent indices x and nx lives at index [lo] where
     the bridge points lo -> (lo+1) mod dim.  Without wrap links this is
     always [min x nx]; with them (dim > 2) the direction test is
     unambiguous. *)
  let link_index wrapped dim x nx =
    if wrapped then if (x + 1) mod dim = nx then x else nx else Int.min x nx
  in
  let wrap_cols = g.grid_kind = Torus && g.cols > 2 in
  let wrap_rows = g.grid_kind = Torus && g.rows > 2 in
  let h_moves =
    steps g.cols wrap_cols c1 c2
    |> List.map (fun (x, nx) -> g.h_bridges.(r1).(link_index wrap_cols g.cols x nx))
  in
  let v_moves =
    steps g.rows wrap_rows r1 r2
    |> List.map (fun (x, nx) -> g.v_bridges.(link_index wrap_rows g.rows x nx).(c2))
  in
  h_moves @ v_moves

(* BFS over the bus graph; parents record the bridge used to reach a bus. *)
let bfs_route t src dst =
  let n = num_buses t in
  let parent = Array.make n None in
  let visited = Array.make n false in
  visited.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun br ->
        let x, y = br.endpoints in
        let v = if x = u then y else x in
        if not visited.(v) then begin
          visited.(v) <- true;
          parent.(v) <- Some (u, br.bridge_id);
          if v = dst then found := true else Queue.add v q
        end)
      t.bridges_by_bus.(u)
  done;
  if not !found then None
  else begin
    let rec collect v acc =
      match parent.(v) with None -> acc | Some (u, br) -> collect u (br :: acc)
    in
    Some (collect dst [])
  end

let route t src dst =
  if src = dst then Some []
  else
    match (t.cell_of_bus.(src), t.cell_of_bus.(dst)) with
    | Some (g1, r1, c1), Some (g2, r2, c2) when g1 = g2 ->
        Some (grid_route t.t_grids.(g1) r1 c1 r2 c2)
    | _ -> bfs_route t src dst

let bus_path t src dst =
  match route t src dst with
  | None -> None
  | Some brs ->
      let step current br_id =
        let x, y = (bridge t br_id).endpoints in
        if x = current then y else x
      in
      let rec walk current = function
        | [] -> []
        | br :: rest ->
            let next = step current br in
            next :: walk next rest
      in
      Some (src :: walk src brs)

let is_connected t =
  let n = num_buses t in
  n <= 1
  ||
  let ok = ref true in
  for v = 1 to n - 1 do
    if route t 0 v = None then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>topology: %d buses, %d processors, %d bridges" (num_buses t)
    (num_processors t) (num_bridges t);
  Array.iter
    (fun g ->
      Format.fprintf ppf "@,  %s %s: %dx%d (mu=%.3g)"
        (match g.grid_kind with Mesh -> "mesh" | Torus -> "torus")
        g.grid_name g.rows g.cols g.grid_rate)
    t.t_grids;
  Array.iter
    (fun b ->
      let procs = processors_on_bus t b.bus_id |> List.map (fun p -> p.proc_name) in
      Format.fprintf ppf "@,  bus %s (mu=%.3g)%s: procs [%s]" b.bus_name b.service_rate
        (if shared_buffer t b.bus_id then " [shared]" else "")
        (String.concat "; " procs))
    t.t_buses;
  Array.iter
    (fun br ->
      let x, y = br.endpoints in
      Format.fprintf ppf "@,  bridge %s: %s <-> %s" br.bridge_name (bus t x).bus_name
        (bus t y).bus_name)
    t.t_bridges;
  Format.fprintf ppf "@]"
