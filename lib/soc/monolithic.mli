(** The monolithic (unsplit) model of two bridged buses — quadratic, and
    the reproduction of the paper's negative result.

    Without an inserted bridge buffer, a cross-bus transfer holds {e both}
    buses: under the standard marginal-independence closure the stationary
    balance equations of each bus contain {e products} of the two buses'
    unknowns (one quadratic coupling per loaded bridge direction, the
    paper's "number of quadratic terms depend on how many points in the
    bus topology ... buses are connected to each other").

    The paper reports that Matlab 6.1's nonlinear solver failed on this
    system; {!attempt} reproduces the phenomenon by running damped Newton
    from a battery of generic starting points and reporting how many runs
    converge to a valid (probability-vector) solution.  {!solve_split}
    solves the same architecture after buffer insertion — two decoupled
    linear birth-death systems — which always succeeds. *)

type spec = {
  kx : int;  (** bus X queue capacity (states 0..kx) *)
  ky : int;  (** bus Y queue capacity *)
  lambda_x : float;  (** local arrival rate at bus X *)
  lambda_y : float;  (** local arrival rate at bus Y *)
  cross_fraction : float;  (** fraction of X's traffic that crosses to Y *)
  mu_x : float;
  mu_y : float;
}

val dim : spec -> int
(** Number of unknowns: [(kx+1) + (ky+1)]. *)

val quadratic_term_count : spec -> int
(** Number of distinct quadratic monomials in the balance system. *)

val residual : spec -> Bufsize_numeric.Vec.t -> Bufsize_numeric.Vec.t
(** The nonlinear system F(x, y) = 0: birth-death balance rows for both
    buses with the quadratic coupling, plus two normalization rows. *)

type attempt_report = {
  starts : int;
  converged_valid : int;  (** converged to a probability-vector solution *)
  converged_invalid : int;  (** converged, but outside the simplex *)
  failed : int;  (** Newton did not converge (or hit a singular Jacobian) *)
  best_residual : float;
}

val attempt :
  ?starts:int -> ?seed:int -> ?max_iter:int -> ?damped:bool -> spec -> attempt_report
(** Newton from [starts] (default 20) starting points: the uniform
    distribution plus random points around the simplex.  [damped] defaults
    to [false] — the plain Newton steps of a generic solver, which is what
    the paper's Matlab 6.1 experiment exercised; pass [~damped:true] to see
    how a modern globalized iteration fares (it does noticeably better,
    which we report honestly in the bench). *)

type split_solution = {
  x_dist : Bufsize_numeric.Vec.t;  (** bus X stationary occupancy *)
  y_dist : Bufsize_numeric.Vec.t;
  bridge_dist : Bufsize_numeric.Vec.t;  (** inserted bridge buffer occupancy *)
  x_loss : float;
  y_loss : float;
  bridge_loss : float;
}

val solve_split : ?bridge_capacity:int -> spec -> split_solution
(** The linear solution after buffer insertion: bus X is an M/M/1/K with
    full service rate; the cross throughput feeds the inserted bridge
    buffer (capacity [bridge_capacity], default [ky]); bus Y serves its
    local traffic and the bridge buffer.  Every step is a birth-death or
    small CTMC stationary solve — linear algebra only. *)

val pp_attempt : Format.formatter -> attempt_report -> unit

val residual_norm : spec -> Bufsize_numeric.Vec.t -> float
(** [|F(v)|_inf] — the balance residual of a candidate closure root. *)

val closure_valid : spec -> Bufsize_numeric.Vec.t -> bool
(** Finite, nonnegative, both blocks normalized — the acceptance test for
    closure roots in {!solve_closure}. *)

val picard :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float ->
  ?y0:float ->
  spec ->
  (Bufsize_numeric.Vec.t * int) option
(** Picard fixed-point iteration on the closure through birth-death
    product forms: freeze [(x_0, y_0)], solve both buses as constant-rate
    chains, refresh.  Returns the root and the iteration count, or [None]
    if no attractive fixed point is reached from the start
    ([x0]/[y0] default to the uniform marginals).  Derivative-free — the
    escalation fallback when Newton's Jacobian misbehaves. *)

val solve_closure :
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?tol:float ->
  spec ->
  Bufsize_numeric.Vec.t option * Bufsize_resilience.Resilience.diagnostic
(** Resilient closure solve: plain Newton, then damped Newton, then
    {!picard}, each checked for convergence {e and} simplex validity —
    a non-converged Newton report is rejected (never silently used), and
    any fallback is recorded as a [Degraded] diagnostic.  On stiff
    bridge instances (heavy cross coupling) the chain typically lands on
    Picard; on benign ones the first step accepts and the diagnostic is
    [Ok]. *)
