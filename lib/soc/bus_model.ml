module Ctmdp = Bufsize_mdp.Ctmdp
module Policy = Bufsize_mdp.Policy

type client_model = {
  client : Traffic.client;
  arrival_rate : float;
  levels : int;
  weight : float;
}

type t = {
  sub : Splitting.subsystem;
  all_clients : client_model array;
  loaded : client_model array;  (* levels >= 1, arrival_rate > 0 *)
  radix : int array;  (* levels + 1 per loaded client *)
  model : Ctmdp.t;
}

let choose_levels ?(base = 1) ?(max_states = 256) ?(max_levels = 6) clients =
  let n = List.length clients in
  let rates = Array.of_list (List.map snd clients) in
  let levels = Array.map (fun r -> if r > 0. then base else 0) rates in
  let product () =
    Array.fold_left (fun acc l -> if l > 0 then acc * (l + 1) else acc) 1 levels
  in
  if product () > max_states then
    (* Too many loaded clients for the cap even at the base level; shrink
       the base for the lightest clients until it fits. *)
    begin
      let order = Array.init n (fun i -> i) in
      Array.sort (fun i j -> compare rates.(i) rates.(j)) order;
      let idx = ref 0 in
      while product () > max_states && !idx < n do
        let i = order.(!idx) in
        if levels.(i) > 1 then levels.(i) <- 1 else incr idx
      done
    end;
  (* Greedy refinement: grow the level count of the client with the largest
     arrival rate per level while the state space stays under the cap. *)
  let continue = ref true in
  while !continue do
    let best = ref (-1) in
    let best_score = ref 0. in
    for i = 0 to n - 1 do
      if levels.(i) > 0 && levels.(i) < max_levels then begin
        let grown = product () / (levels.(i) + 1) * (levels.(i) + 2) in
        let score = rates.(i) /. float_of_int levels.(i) in
        if grown <= max_states && score > !best_score then begin
          best := i;
          best_score := score
        end
      end
    done;
    if !best >= 0 then levels.(!best) <- levels.(!best) + 1 else continue := false
  done;
  levels

let build ?(weights = fun _ -> 1.) ?levels ?max_states sub =
  let client_list = sub.Splitting.clients in
  let level_vector =
    match levels with
    | Some ls ->
        if Array.length ls <> List.length client_list then
          invalid_arg "Bus_model.build: levels length mismatch";
        List.iteri
          (fun i (_, r) ->
            if r <= 0. && ls.(i) <> 0 then
              invalid_arg "Bus_model.build: positive levels for unloaded client";
            if r > 0. && ls.(i) < 1 then
              invalid_arg "Bus_model.build: loaded client needs at least one level")
          client_list;
        ls
    | None ->
        (* Model resolution follows weighted importance: a client whose
           losses weigh more deserves a finer occupancy discretization. *)
        let importance =
          List.map (fun (c, r) -> (c, r *. Float.max 1e-6 (weights c))) client_list
        in
        choose_levels ?max_states importance
  in
  let all_clients =
    Array.of_list
      (List.mapi
         (fun i (c, r) ->
           { client = c; arrival_rate = r; levels = level_vector.(i); weight = weights c })
         client_list)
  in
  let loaded = Array.of_list (List.filter (fun c -> c.levels > 0) (Array.to_list all_clients)) in
  if Array.length loaded = 0 then
    invalid_arg "Bus_model.build: subsystem has no loaded client";
  let radix = Array.map (fun c -> c.levels + 1) loaded in
  let nl = Array.length loaded in
  let num_states = Array.fold_left ( * ) 1 radix in
  let encode k =
    let s = ref 0 in
    for i = 0 to nl - 1 do
      if k.(i) < 0 || k.(i) >= radix.(i) then invalid_arg "Bus_model: occupancy out of range";
      s := (!s * radix.(i)) + k.(i)
    done;
    !s
  in
  let decode s =
    let k = Array.make nl 0 in
    let rest = ref s in
    for i = nl - 1 downto 0 do
      k.(i) <- !rest mod radix.(i);
      rest := !rest / radix.(i)
    done;
    k
  in
  let mu = sub.Splitting.service_rate in
  (* Cost rate: weighted arrival streams currently blocked (full buffers). *)
  let cost_of k =
    let acc = ref 0. in
    for i = 0 to nl - 1 do
      if k.(i) = loaded.(i).levels then acc := !acc +. (loaded.(i).weight *. loaded.(i).arrival_rate)
    done;
    !acc
  in
  let occupied k =
    let acc = ref 0 in
    for i = 0 to nl - 1 do
      acc := !acc + k.(i)
    done;
    float_of_int !acc
  in
  let arrival_transitions k =
    let acc = ref [] in
    for i = 0 to nl - 1 do
      if k.(i) < loaded.(i).levels then begin
        let k' = Array.copy k in
        k'.(i) <- k.(i) + 1;
        acc := (encode k', loaded.(i).arrival_rate) :: !acc
      end
    done;
    !acc
  in
  let actions =
    Array.init num_states (fun s ->
        let k = decode s in
        let cost = cost_of k in
        let extras = [| occupied k |] in
        let arrivals = arrival_transitions k in
        let serve_actions =
          List.concat
            (List.init nl (fun i ->
                 if k.(i) > 0 then begin
                   let k' = Array.copy k in
                   k'.(i) <- k.(i) - 1;
                   [
                     {
                       Ctmdp.label = Printf.sprintf "serve%d" i;
                       transitions = (encode k', mu) :: arrivals;
                       cost;
                       extras;
                     };
                   ]
                 end
                 else []))
        in
        match serve_actions with
        | [] -> [| { Ctmdp.label = "idle"; transitions = arrivals; cost; extras } |]
        | _ :: _ -> Array.of_list serve_actions)
  in
  let state_labels =
    Array.init num_states (fun s ->
        let k = decode s in
        "("
        ^ String.concat "," (Array.to_list (Array.map string_of_int k))
        ^ ")")
  in
  let model = Ctmdp.create ~state_labels ~num_extras:1 actions in
  { sub; all_clients; loaded; radix; model }

let subsystem t = t.sub
let clients t = Array.copy t.all_clients
let loaded_clients t = Array.copy t.loaded
let ctmdp t = t.model
let num_states t = Ctmdp.num_states t.model

let encode t k =
  let nl = Array.length t.loaded in
  if Array.length k <> nl then invalid_arg "Bus_model.encode: vector length mismatch";
  let s = ref 0 in
  for i = 0 to nl - 1 do
    if k.(i) < 0 || k.(i) >= t.radix.(i) then invalid_arg "Bus_model.encode: occupancy out of range";
    s := (!s * t.radix.(i)) + k.(i)
  done;
  !s

let decode t s =
  let nl = Array.length t.loaded in
  let k = Array.make nl 0 in
  let rest = ref s in
  for i = nl - 1 downto 0 do
    k.(i) <- !rest mod t.radix.(i);
    rest := !rest / t.radix.(i)
  done;
  k

let occupancy_distribution t policy =
  let pi = Policy.stationary t.model policy in
  let nl = Array.length t.loaded in
  let marginals = Array.init nl (fun i -> Array.make (t.loaded.(i).levels + 1) 0.) in
  Array.iteri
    (fun s p ->
      let k = decode t s in
      for i = 0 to nl - 1 do
        marginals.(i).(k.(i)) <- marginals.(i).(k.(i)) +. p
      done)
    pi;
  marginals

let expected_occupancy t policy =
  let marginals = occupancy_distribution t policy in
  Array.map
    (fun dist ->
      let acc = ref 0. in
      Array.iteri (fun l p -> acc := !acc +. (float_of_int l *. p)) dist;
      !acc)
    marginals

let total_levels t = Array.fold_left (fun acc c -> acc + c.levels) 0 t.loaded

module Shared = struct
  type t = {
    sh_sub : Splitting.subsystem;
    sh_all : client_model array;
    sh_loaded : client_model array;  (* arrival_rate > 0, in client order *)
    capacity : int;
    states : int array array;  (* state -> pool occupancy vector, lex order *)
    sh_model : Ctmdp.t;
  }

  let state_count ~capacity n =
    (* C(capacity + n, n), saturating *)
    let acc = ref 1 in
    for i = 1 to n do
      acc := !acc * (capacity + i) / i;
      if !acc > 1 lsl 40 then acc := 1 lsl 40
    done;
    !acc

  let choose_capacity ?(max_states = 256) n =
    if n < 1 then invalid_arg "Bus_model.Shared.choose_capacity: no clients";
    let k = ref 1 in
    while state_count ~capacity:(!k + 1) n <= max_states do
      incr k
    done;
    !k

  let enumerate n capacity =
    let acc = ref [] in
    let k = Array.make n 0 in
    let rec go i remaining =
      if i = n then acc := Array.copy k :: !acc
      else
        for v = 0 to remaining do
          k.(i) <- v;
          go (i + 1) (remaining - v)
        done
    in
    go 0 capacity;
    Array.of_list (List.rev !acc)

  let build ?(weights = fun _ -> 1.) ?static_levels ?(max_states = 10_000) ~capacity sub =
    if capacity < 1 then invalid_arg "Bus_model.Shared.build: capacity must be >= 1";
    let client_list = sub.Splitting.clients in
    let sh_all =
      Array.of_list
        (List.map
           (fun (c, r) -> { client = c; arrival_rate = r; levels = capacity; weight = weights c })
           client_list)
    in
    let sh_loaded =
      Array.of_list (List.filter (fun c -> c.arrival_rate > 0.) (Array.to_list sh_all))
    in
    let n = Array.length sh_loaded in
    if n = 0 then invalid_arg "Bus_model.Shared.build: subsystem has no loaded client";
    if state_count ~capacity n > max_states then
      invalid_arg
        (Printf.sprintf "Bus_model.Shared.build: %d clients at capacity %d need %d states (cap %d)"
           n capacity (state_count ~capacity n) max_states);
    (* Static level vector of the partition to mimic, restricted to loaded
       clients; its induced admission rule "admit i iff its static queue
       has room" is added to every state's admission alternatives, which
       makes the static-partition optimum representable in this model. *)
    let mimic =
      match static_levels with
      | None -> None
      | Some ls ->
          if Array.length ls <> List.length client_list then
            invalid_arg "Bus_model.Shared.build: static_levels length mismatch";
          let picked = ref [] in
          List.iteri
            (fun i (_, r) -> if r > 0. then picked := ls.(i) :: !picked)
            client_list;
          Some (Array.of_list (List.rev !picked))
    in
    let states = enumerate n capacity in
    let index = Hashtbl.create (Array.length states * 2) in
    Array.iteri (fun s k -> Hashtbl.replace index k s) states;
    let encode k =
      match Hashtbl.find_opt index k with
      | Some s -> s
      | None -> invalid_arg "Bus_model.Shared: occupancy out of range"
    in
    let mu = sub.Splitting.service_rate in
    let full_set = List.init n (fun i -> i) in
    (* Admission alternatives: admit-all, admit-all-but-one (reserve a slot
       against one stream), and — when mimicking — the static partition's
       rule.  Enumerating all 2^n subsets would square the LP for nothing:
       these already include every undominated single-slot reservation. *)
    let admissions k =
      let cands =
        full_set :: List.map (fun i -> List.filter (fun j -> j <> i) full_set) full_set
      in
      let cands =
        match mimic with
        | None -> cands
        | Some ls ->
            let a = List.filter (fun i -> k.(i) < ls.(i)) full_set in
            a :: cands
      in
      List.sort_uniq compare cands
    in
    let num_states = Array.length states in
    let actions =
      Array.init num_states (fun s ->
          let k = states.(s) in
          let total = Array.fold_left ( + ) 0 k in
          let extras = [| float_of_int total |] in
          let serve_bases =
            List.concat
              (List.init n (fun j ->
                   if k.(j) > 0 then begin
                     let k' = Array.copy k in
                     k'.(j) <- k.(j) - 1;
                     [ (Printf.sprintf "serve%d" j, [ (encode k', mu) ]) ]
                   end
                   else []))
          in
          let bases = if serve_bases = [] then [ ("idle", []) ] else serve_bases in
          let acts =
            if total = capacity then
              (* Pool full: every arrival is lost no matter what. *)
              let cost =
                Array.fold_left (fun acc c -> acc +. (c.weight *. c.arrival_rate)) 0. sh_loaded
              in
              List.filter_map
                (fun (label, moves) ->
                  if moves = [] then None
                  else Some { Ctmdp.label; transitions = moves; cost; extras })
                bases
            else
              List.concat_map
                (fun (base_label, moves) ->
                  List.filter_map
                    (fun adm ->
                      let arrivals =
                        List.map
                          (fun i ->
                            let k' = Array.copy k in
                            k'.(i) <- k.(i) + 1;
                            (encode k', sh_loaded.(i).arrival_rate))
                          adm
                      in
                      let transitions = moves @ arrivals in
                      if transitions = [] then None
                      else begin
                        let cost =
                          List.fold_left
                            (fun acc i ->
                              if List.mem i adm then acc
                              else acc +. (sh_loaded.(i).weight *. sh_loaded.(i).arrival_rate))
                            0. full_set
                        in
                        let label =
                          if adm = full_set then base_label
                          else
                            base_label ^ "_adm"
                            ^ String.concat "" (List.map string_of_int adm)
                        in
                        Some { Ctmdp.label; transitions; cost; extras }
                      end)
                    (admissions k))
                bases
          in
          Array.of_list acts)
    in
    let state_labels =
      Array.map
        (fun k -> "(" ^ String.concat "," (Array.to_list (Array.map string_of_int k)) ^ ")")
        states
    in
    let sh_model = Ctmdp.create ~state_labels ~num_extras:1 actions in
    { sh_sub = sub; sh_all; sh_loaded; capacity; states; sh_model }

  let subsystem t = t.sh_sub
  let clients t = Array.copy t.sh_all
  let loaded_clients t = Array.copy t.sh_loaded
  let ctmdp t = t.sh_model
  let num_states t = Array.length t.states
  let capacity t = t.capacity
  let state t s = Array.copy t.states.(s)

  let pool_distribution t policy =
    let pi = Policy.stationary t.sh_model policy in
    let dist = Array.make (t.capacity + 1) 0. in
    Array.iteri
      (fun s p ->
        let total = Array.fold_left ( + ) 0 t.states.(s) in
        dist.(total) <- dist.(total) +. p)
      pi;
    dist

  let expected_total t policy =
    let dist = pool_distribution t policy in
    let acc = ref 0. in
    Array.iteri (fun l p -> acc := !acc +. (float_of_int l *. p)) dist;
    !acc

  let pp ppf t =
    Format.fprintf ppf
      "@[<v>shared bus model %s: %d loaded clients, pool capacity %d, %d states"
      t.sh_sub.Splitting.bus_name (Array.length t.sh_loaded) t.capacity (num_states t);
    Array.iter
      (fun c ->
        Format.fprintf ppf "@,  client rate=%.3g weight=%.3g" c.arrival_rate c.weight)
      t.sh_loaded;
    Format.fprintf ppf "@]"
end

let pp ppf t =
  Format.fprintf ppf "@[<v>bus model %s: %d loaded clients, %d states" t.sub.Splitting.bus_name
    (Array.length t.loaded) (num_states t);
  Array.iter
    (fun c ->
      Format.fprintf ppf "@,  client rate=%.3g levels=%d weight=%.3g" c.arrival_rate c.levels
        c.weight)
    t.loaded;
  Format.fprintf ppf "@]"
