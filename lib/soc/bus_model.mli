(** CTMDP model of one split subsystem (a bus and its buffered clients).

    State = vector of client buffer occupancies, discretized to a small
    number of {e model levels} per client; action = which nonempty client
    the bus serves (arbitration); transitions = Poisson arrivals per client
    and exponential service at the bus rate; cost rate = weighted loss rate
    (arrival streams of full clients); extra resource 0 = total occupied
    levels (the buffer space in use, which constrained sizing bounds in
    time average).

    The state space is the mixed-radix product of per-client levels;
    {!choose_levels} keeps it under a configurable cap by giving busier
    clients finer discretizations. *)

type client_model = {
  client : Traffic.client;
  arrival_rate : float;
  levels : int;  (** occupancy range 0..levels; [levels >= 1] for loaded clients *)
  weight : float;  (** loss-importance weight in the cost *)
}

type t

val choose_levels :
  ?base:int -> ?max_states:int -> ?max_levels:int -> (Traffic.client * float) list -> int array
(** Per-client level counts for the {e loaded} clients (rate > 0), in the
    order they appear.  Every loaded client gets at least [base] (default 1)
    levels; extra levels go greedily to the client with the highest
    arrival-rate-per-level until the product of [(levels+1)] would exceed
    [max_states] (default 256) or the client reaches [max_levels] (default
    6 — unbounded per-client level counts would skew the downstream word
    demands quadratically toward the hottest client).  Zero-rate clients
    get 0 levels.  The cap is best-effort: with many loaded clients the
    product of the mandatory single levels alone may exceed [max_states]. *)

val build :
  ?weights:(Traffic.client -> float) ->
  ?levels:int array ->
  ?max_states:int ->
  Splitting.subsystem ->
  t
(** Builds the CTMDP.  [levels] overrides {!choose_levels} (must align with
    the subsystem's client list and give 0 levels exactly to zero-rate
    clients).  [weights] default to [fun _ -> 1.].
    @raise Invalid_argument on malformed level vectors or a subsystem whose
    clients are all unloaded. *)

val subsystem : t -> Splitting.subsystem

val clients : t -> client_model array
(** All clients, including unloaded ones (with [levels = 0]). *)

val loaded_clients : t -> client_model array
(** The clients actually represented in the CTMDP state. *)

val ctmdp : t -> Bufsize_mdp.Ctmdp.t

val num_states : t -> int

val encode : t -> int array -> int
(** Mixed-radix encoding of a loaded-client occupancy vector.
    @raise Invalid_argument out of range. *)

val decode : t -> int -> int array

val occupancy_distribution : t -> Bufsize_mdp.Policy.t -> float array array
(** [occupancy_distribution m p] gives, for each loaded client (in
    {!loaded_clients} order), the stationary marginal distribution of its
    occupancy level under policy [p] — the quantity the paper translates
    into buffer space requirements. *)

val expected_occupancy : t -> Bufsize_mdp.Policy.t -> float array
(** Mean occupied levels per loaded client. *)

val total_levels : t -> int
(** Sum of level counts over loaded clients (capacity represented by the
    model). *)

(** DAMQ-style shared-pool CTMDP of one subsystem.

    Instead of statically partitioning the bus buffer between clients,
    all clients draw from one pool of [capacity] levels; state = the
    occupancy vector [k] with [sum k <= capacity], and {e allocate on
    arrival} becomes part of the action: each action pairs the serve
    choice with an admission set (which arrival streams may claim a free
    slot right now).  Admission alternatives per state are admit-all,
    admit-all-but-one (reserve one slot against a stream), and — when
    [static_levels] is given — the static partition's rule "admit [i] iff
    [k.(i) < levels.(i)]", which makes every static-partition policy
    representable here and hence the shared optimum never worse than the
    static one at equal capacity.  Cost rate = weighted rate of rejected
    arrivals; extra resource 0 = total pool occupancy. *)
module Shared : sig
  type t

  val choose_capacity : ?max_states:int -> int -> int
  (** Largest capacity whose state count [C(capacity + n, n)] for [n]
      loaded clients stays within [max_states] (default 256); at least
      1. *)

  val build :
    ?weights:(Traffic.client -> float) ->
    ?static_levels:int array ->
    ?max_states:int ->
    capacity:int ->
    Splitting.subsystem ->
    t
  (** [static_levels], when given, aligns with the subsystem's full client
      list (like {!val:build}'s [levels]).  [max_states] (default 10000)
      is a guard against runaway state spaces.
      @raise Invalid_argument on bad capacity, mismatched [static_levels],
      an all-unloaded subsystem, or a state space over the guard. *)

  val subsystem : t -> Splitting.subsystem
  val clients : t -> client_model array
  val loaded_clients : t -> client_model array
  val ctmdp : t -> Bufsize_mdp.Ctmdp.t
  val num_states : t -> int

  val capacity : t -> int

  val state : t -> int -> int array
  (** Occupancy vector (over loaded clients) of a state index. *)

  val pool_distribution : t -> Bufsize_mdp.Policy.t -> float array
  (** Stationary distribution of the total pool occupancy [0..capacity]
      under a policy. *)

  val expected_total : t -> Bufsize_mdp.Policy.t -> float

  val pp : Format.formatter -> t -> unit
end

val pp : Format.formatter -> t -> unit
