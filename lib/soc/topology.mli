(** SoC communication-architecture topology.

    An architecture is a set of buses, bridges connecting pairs of buses,
    and processors (IP cores) each attached to one bus — the structure of
    the paper's Figure 1, generalized to arbitrary bridge graphs.  Buses
    are the vertices of the "bus graph" and bridges its edges; requests
    between processors on different buses are routed along shortest bridge
    paths, and along dimension-order (XY) paths inside mesh/torus grids.

    Build with the mutable {!builder} API, then {!finalize}; a finalized
    topology is immutable and validated (connected references, no
    duplicate names, no bridge from a bus to itself, connected bus
    graph). *)

type bus_id = int
type proc_id = int
type bridge_id = int

type bus = { bus_id : bus_id; bus_name : string; service_rate : float }
(** [service_rate] is the bus transfer rate mu: requests served per time
    unit when the bus is busy. *)

type processor = { proc_id : proc_id; proc_name : string; home_bus : bus_id }

type bridge = {
  bridge_id : bridge_id;
  bridge_name : string;
  endpoints : bus_id * bus_id;
}

type grid_kind = Mesh | Torus

type grid = {
  grid_name : string;
  grid_kind : grid_kind;
  rows : int;
  cols : int;
  grid_rate : float;  (** service rate shared by every cell bus *)
  cells : bus_id array array;  (** [rows] x [cols], row-major *)
  h_bridges : bridge_id array array;
      (** [(r,c)] connects cell [(r,c)] to [(r,(c+1) mod cols)]; [-1] when
          that link is absent (mesh boundary, or torus wrap on a dimension
          of length <= 2). *)
  v_bridges : bridge_id array array;
      (** [(r,c)] connects cell [(r,c)] to [((r+1) mod rows,c)]; [-1] when
          absent. *)
}
(** A NoC-style router grid registered by {!mesh} or {!torus}.  Member
    buses are named ["<grid>_r<r>c<c>"] and bridges ["<grid>_h_r<r>c<c>"]
    / ["<grid>_v_r<r>c<c>"] — deterministic, so specs mentioning a grid
    stanza round-trip losslessly. *)

type builder

type t

val builder : unit -> builder

val add_bus : builder -> ?service_rate:float -> string -> bus_id
(** Default [service_rate] is [1.0].
    @raise Invalid_argument on duplicate name or nonpositive rate. *)

val add_processor : builder -> bus:bus_id -> string -> proc_id

val add_bridge : builder -> between:bus_id * bus_id -> string -> bridge_id
(** @raise Invalid_argument if the endpoints coincide or are unknown. *)

val mesh : builder -> ?service_rate:float -> rows:int -> cols:int -> string -> bus_id array array
(** Add a [rows] x [cols] mesh of buses joined by nearest-neighbour
    bridges; returns the cell bus ids (row-major).  Cell buses and link
    bridges get deterministic derived names (see {!grid}).
    @raise Invalid_argument on degenerate dimensions (fewer than 2 cells)
    or nonpositive rate. *)

val torus : builder -> ?service_rate:float -> rows:int -> cols:int -> string -> bus_id array array
(** Like {!mesh} plus wrap-around links on every dimension of length > 2
    (length-2 wraps would duplicate existing mesh edges). *)

val mark_shared : builder -> bus_id -> unit
(** Declare that the buffers of all clients of this bus are drawn from one
    shared pool (DAMQ-style) rather than statically partitioned.
    Idempotent. *)

val finalize : builder -> t
(** @raise Invalid_argument if the bus graph is disconnected; the message
    lists the components by bus name. *)

val num_buses : t -> int
val num_processors : t -> int
val num_bridges : t -> int

val bus : t -> bus_id -> bus
val processor : t -> proc_id -> processor
val bridge : t -> bridge_id -> bridge

val buses : t -> bus array
val processors : t -> processor array
val bridges : t -> bridge array

val grids : t -> grid array
(** Registered grids in declaration order. *)

val grid_cell : t -> bus_id -> (int * int * int) option
(** [(grid index, row, col)] when the bus is a grid cell. *)

val shared_buffer : t -> bus_id -> bool
(** Whether the bus was declared shared-pool via {!mark_shared}. *)

val shared_buses : t -> bus_id list
(** Ids of all shared-pool buses, ascending. *)

val processors_on_bus : t -> bus_id -> processor list

val bridges_of_bus : t -> bus_id -> bridge list

val find_bus : t -> string -> bus_id
(** @raise Not_found *)

val find_processor : t -> string -> proc_id
(** @raise Not_found *)

val route : t -> bus_id -> bus_id -> bridge_id list option
(** Bridge path between two buses ([Some []] when equal, [None] when
    unreachable — impossible after {!finalize}'s connectivity check).
    Both endpoints in the same grid: dimension-order (XY) routing, column
    first then row, torus wrap taking the shorter direction with ties
    towards increasing index.  Otherwise: BFS shortest path with
    deterministic tie-breaking by bridge id. *)

val bus_path : t -> bus_id -> bus_id -> bus_id list option
(** The bus sequence visited by {!route}, including both endpoints. *)

val is_connected : t -> bool
(** Whether the bus graph is connected (always true after {!finalize};
    vacuously true with <= 1 bus). *)

val pp : Format.formatter -> t -> unit
