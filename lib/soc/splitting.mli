(** Buffer insertion at bridges and splitting into linear subsystems.

    The paper's core structural move (its Figure 2): a monolithic CTMDP of
    a bridged architecture has quadratic balance/cost terms (one coupling
    per loaded bridge direction), which generic nonlinear solvers fail on.
    Inserting a buffer at every loaded bridge direction decouples the
    buses: each bus together with its buffered clients becomes an
    independent {e linear} subsystem, and all subsystem LPs are solved
    jointly (see {!Sizing}). *)

type subsystem = {
  index : int;
  bus : Topology.bus_id;
  bus_name : string;
  service_rate : float;
  clients : (Traffic.client * float) list;
      (** clients and their aggregate arrival rates, deterministic order *)
}

type t = {
  subsystems : subsystem array;
  inserted_buffers : (Topology.bridge_id * Topology.bus_id) list;
      (** one inserted buffer per loaded bridge direction (feeding the
          given bus) — the paper's "buffers inserted" annotations *)
  coupling_points : int;
      (** number of quadratic couplings the monolithic formulation would
          have had (= number of inserted buffers) *)
}

val split : Traffic.t -> t
(** One subsystem per bus that carries any client.  Buses with no
    processors and no routed load are dropped. *)

val edge_flows : Traffic.t -> ((Topology.bridge_id * Topology.bus_id) * float) list
(** Transit rate of every loaded directed bridge edge, computed by folding
    each flow along its routed hop sequence; sorted by (bridge, bus).
    Agrees with the bridge-client rates {!split} derives from
    {!Traffic.clients_of_bus} — the [topo] verify oracle cross-checks the
    two computations. *)

val is_linear_without_split : Traffic.t -> bool
(** True iff no flow crosses a bridge, i.e. the monolithic model is
    already linear and splitting is a no-op. *)

val subsystem_of_bus : t -> Topology.bus_id -> subsystem option

val total_clients : t -> int

val pp : Format.formatter -> Topology.t -> t -> unit
