module Vec = Bufsize_numeric.Vec
module San = Bufsize_prob.San

type solution = {
  spec : Monolithic.spec;
  bridge_capacity : int;
  states : int;
  sweeps : int;
  converged : bool;
  residual : float;
  x_dist : Vec.t;
  bridge_dist : Vec.t;
  y_dist : Vec.t;
  x_loss : float;
  bridge_loss : float;
  y_loss : float;
  x_delay : float;
  bridge_delay : float;
  y_delay : float;
}

(* Automaton order: X producer queue (mode 0), bridge buffer (mode 1),
   Y local queue (mode 2).  X serves at full rate mu_x; a completion is
   a cross transfer with probability f, so the local drain runs at
   (1-f) mu_x and the synchronized cross event at f mu_x — the X
   marginal is exactly the split's M/M/1/K. *)
let model ?bridge_capacity (s : Monolithic.spec) =
  let bcap = Option.value ~default:s.Monolithic.ky bridge_capacity in
  if bcap < 0 then invalid_arg "San_bridge.model: negative bridge capacity";
  let range_routing d = List.init d (fun i -> (i + 1, i, 1.)) in
  let x =
    {
      San.name = "x";
      size = s.kx + 1;
      local =
        List.init s.kx (fun i -> (i, i + 1, s.lambda_x))
        @ List.init s.kx (fun i -> (i + 1, i, (1. -. s.cross_fraction) *. s.mu_x));
    }
  in
  let bridge = { San.name = "bridge"; size = bcap + 1; local = [] } in
  let y =
    {
      San.name = "y";
      size = s.ky + 1;
      local = List.init s.ky (fun l -> (l, l + 1, s.lambda_y));
    }
  in
  (* Processor sharing on bus Y: full rate alone, half rate while the
     other queue is busy — a functional rate on the opposite automaton. *)
  let shared_with d = Array.init d (fun st -> if st = 0 then 1. else 0.5) in
  let cross =
    {
      San.label = "cross";
      rate = s.cross_fraction *. s.mu_x;
      routing =
        [
          (0, range_routing s.kx);
          (* bridge admits, or drops on the full self-loop *)
          (1, List.init bcap (fun j -> (j, j + 1, 1.)) @ [ (bcap, bcap, 1.) ]);
        ];
      scaling = [];
    }
  in
  let bridge_serve =
    {
      San.label = "bridge-serve";
      rate = s.mu_y;
      routing = [ (1, range_routing bcap) ];
      scaling = [ (2, shared_with (s.ky + 1)) ];
    }
  in
  let y_serve =
    {
      San.label = "y-serve";
      rate = s.mu_y;
      routing = [ (2, range_routing s.ky) ];
      scaling = [ (1, shared_with (bcap + 1)) ];
    }
  in
  San.create [ x; bridge; y ] [ cross; bridge_serve; y_serve ]

let split_seed ?bridge_capacity (s : Monolithic.spec) =
  let bcap = Option.value ~default:s.Monolithic.ky bridge_capacity in
  let split = Monolithic.solve_split ~bridge_capacity:bcap s in
  let nb = bcap + 1 and ny = s.ky + 1 in
  let n = (s.kx + 1) * nb * ny in
  let pi0 = Array.make n 0. in
  for i = 0 to s.kx do
    for j = 0 to bcap do
      for l = 0 to s.ky do
        pi0.(((i * nb) + j) * ny + l) <-
          split.Monolithic.x_dist.(i)
          *. split.Monolithic.bridge_dist.(j)
          *. split.Monolithic.y_dist.(l)
      done
    done
  done;
  (* Renormalize the triple product's rounding so the seed passes the
     iteration's distribution check exactly. *)
  let total = Vec.sum pi0 in
  if total > 0. then Array.map (fun p -> p /. total) pi0 else pi0

let mean dist =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (float_of_int i *. p)) dist;
  !acc

let solve ?tol ?max_sweeps ?(warm_start = true) ?bridge_capacity (s : Monolithic.spec) =
  let bcap = Option.value ~default:s.Monolithic.ky bridge_capacity in
  let san = model ~bridge_capacity:bcap s in
  let init = if warm_start then Some (split_seed ~bridge_capacity:bcap s) else None in
  let pi, sweeps, converged =
    San.stationary_report ?tol ?max_iter:max_sweeps ?init san
  in
  let x_dist = San.marginal san ~automaton:0 pi in
  let bridge_dist = San.marginal san ~automaton:1 pi in
  let y_dist = San.marginal san ~automaton:2 pi in
  (* Joint probabilities of the cross event's fate: it fires whenever X
     is busy and drops exactly when the bridge is full at that moment. *)
  let p_cross_drop =
    San.expected san (fun st -> if st.(0) > 0 && st.(1) = bcap then 1. else 0.) pi
  in
  let p_cross_accept =
    San.expected san (fun st -> if st.(0) > 0 && st.(1) < bcap then 1. else 0.) pi
  in
  let cross_rate = s.cross_fraction *. s.mu_x in
  let safe_div a b = if b > 0. then a /. b else 0. in
  {
    spec = s;
    bridge_capacity = bcap;
    states = San.num_states san;
    sweeps;
    converged;
    residual = San.stationary_residual san pi;
    x_dist;
    bridge_dist;
    y_dist;
    x_loss = s.lambda_x *. x_dist.(s.kx);
    bridge_loss = cross_rate *. p_cross_drop;
    y_loss = s.lambda_y *. y_dist.(s.ky);
    x_delay = safe_div (mean x_dist) (s.lambda_x *. (1. -. x_dist.(s.kx)));
    bridge_delay = safe_div (mean bridge_dist) (cross_rate *. p_cross_accept);
    y_delay = safe_div (mean y_dist) (s.lambda_y *. (1. -. y_dist.(s.ky)));
  }

type gap_report = {
  joint : solution;
  split : Monolithic.split_solution;
  split_bridge_delay : float;
  split_y_delay : float;
  x_loss_gap_pct : float;
  bridge_loss_gap_pct : float;
  y_loss_gap_pct : float;
  bridge_delay_gap_pct : float;
  y_delay_gap_pct : float;
}

let gap_pct ~joint ~split =
  if Float.abs joint > 1e-12 then 100. *. (split -. joint) /. joint
  else if Float.abs split <= 1e-12 then 0.
  else Float.infinity

let compare_split ?tol ?max_sweeps ?warm_start ?bridge_capacity (s : Monolithic.spec) =
  let bcap = Option.value ~default:s.Monolithic.ky bridge_capacity in
  let joint = solve ?tol ?max_sweeps ?warm_start ~bridge_capacity:bcap s in
  let split = Monolithic.solve_split ~bridge_capacity:bcap s in
  let cross_in =
    s.cross_fraction *. s.mu_x *. (1. -. split.Monolithic.x_dist.(0))
  in
  let safe_div a b = if b > 0. then a /. b else 0. in
  let split_bridge_delay =
    safe_div (mean split.Monolithic.bridge_dist)
      (cross_in *. (1. -. split.Monolithic.bridge_dist.(bcap)))
  in
  let split_y_delay =
    safe_div (mean split.Monolithic.y_dist)
      (s.lambda_y *. (1. -. split.Monolithic.y_dist.(s.ky)))
  in
  {
    joint;
    split;
    split_bridge_delay;
    split_y_delay;
    x_loss_gap_pct = gap_pct ~joint:joint.x_loss ~split:split.Monolithic.x_loss;
    bridge_loss_gap_pct = gap_pct ~joint:joint.bridge_loss ~split:split.Monolithic.bridge_loss;
    y_loss_gap_pct = gap_pct ~joint:joint.y_loss ~split:split.Monolithic.y_loss;
    bridge_delay_gap_pct = gap_pct ~joint:joint.bridge_delay ~split:split_bridge_delay;
    y_delay_gap_pct = gap_pct ~joint:joint.y_delay ~split:split_y_delay;
  }

let pp_solution ppf r =
  Format.fprintf ppf
    "@[<v>joint SAN solve: %d states, %d sweeps%s, residual %.2e@,\
     loss   x %.6g  bridge %.6g  y %.6g@,\
     delay  x %.6g  bridge %.6g  y %.6g@]"
    r.states r.sweeps
    (if r.converged then "" else " (NOT converged)")
    r.residual r.x_loss r.bridge_loss r.y_loss r.x_delay r.bridge_delay r.y_delay

let pp_gap ppf g =
  let j = g.joint and s = g.split in
  Format.fprintf ppf
    "@[<v>%a@,\
     split approximation vs joint:@,\
     \  metric         split        joint        gap@,\
     \  x_loss         %-12.6g %-12.6g %+.2f%%@,\
     \  bridge_loss    %-12.6g %-12.6g %+.2f%%@,\
     \  y_loss         %-12.6g %-12.6g %+.2f%%@,\
     \  bridge_delay   %-12.6g %-12.6g %+.2f%%@,\
     \  y_delay        %-12.6g %-12.6g %+.2f%%@]"
    pp_solution j
    s.Monolithic.x_loss j.x_loss g.x_loss_gap_pct
    s.Monolithic.bridge_loss j.bridge_loss g.bridge_loss_gap_pct
    s.Monolithic.y_loss j.y_loss g.y_loss_gap_pct
    g.split_bridge_delay j.bridge_delay g.bridge_delay_gap_pct
    g.split_y_delay j.y_delay g.y_delay_gap_pct
