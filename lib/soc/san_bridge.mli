(** The un-split bridged-bus model as a Stochastic Automata Network —
    the scale path past {!Monolithic}'s materialized joint CTMC.

    Three automata — producer bus X (queue [0..kx]), the inserted
    bridge buffer ([0..bridge_capacity]), and consumer bus Y's local
    queue ([0..ky]) — are coupled by one synchronizing event (a
    cross-bus transfer departs X and lands in the bridge, dropped when
    the bridge is full) and two functionally-rated service events (bus
    Y drains its local queue and the bridge with processor sharing:
    each side gets [mu_y/2] while the other is busy, [mu_y] alone).
    The joint generator is a Kronecker descriptor, so solving at
    [10^6+] joint states needs only O(n) vectors — the generator is
    never materialized.

    Marginally, X is exactly the M/M/1/K of the split solution; the
    split's remaining error is its Poisson-at-average-rate closure of
    the cross stream, and {!compare_split} measures that gap. *)

type solution = {
  spec : Monolithic.spec;
  bridge_capacity : int;
  states : int;  (** joint state count *)
  sweeps : int;  (** uniformized power-iteration sweeps *)
  converged : bool;
  residual : float;  (** [|pi Q|_inf] of the returned vector *)
  x_dist : Bufsize_numeric.Vec.t;  (** exact joint marginals *)
  bridge_dist : Bufsize_numeric.Vec.t;
  y_dist : Bufsize_numeric.Vec.t;
  x_loss : float;
  bridge_loss : float;  (** [f mu_x P(X busy, bridge full)] — a joint
                            probability the split cannot express *)
  y_loss : float;
  x_delay : float;  (** mean sojourn times via Little's law *)
  bridge_delay : float;
  y_delay : float;
}

val model : ?bridge_capacity:int -> Monolithic.spec -> Bufsize_prob.San.t
(** The SAN; [bridge_capacity] defaults to [ky] like
    {!Monolithic.solve_split}. *)

val split_seed : ?bridge_capacity:int -> Monolithic.spec -> Bufsize_numeric.Vec.t
(** Product of the split solution's marginals — the warm start that
    hands the joint iteration a distribution already correct up to the
    cross-stream correlation. *)

val solve :
  ?tol:float ->
  ?max_sweeps:int ->
  ?warm_start:bool ->
  ?bridge_capacity:int ->
  Monolithic.spec ->
  solution
(** Stationary solve of the joint model through the Kronecker SpMV.
    [warm_start] (default [true]) seeds from {!split_seed}; [tol] and
    [max_sweeps] default to the {!Bufsize_prob.San} iteration
    defaults. *)

type gap_report = {
  joint : solution;
  split : Monolithic.split_solution;
  split_bridge_delay : float;
  split_y_delay : float;
  x_loss_gap_pct : float;  (** 100 (split - joint) / joint *)
  bridge_loss_gap_pct : float;
  y_loss_gap_pct : float;
  bridge_delay_gap_pct : float;
  y_delay_gap_pct : float;
}

val compare_split :
  ?tol:float ->
  ?max_sweeps:int ->
  ?warm_start:bool ->
  ?bridge_capacity:int ->
  Monolithic.spec ->
  gap_report
(** Solve both ways and report the split approximation's loss/delay
    error against the exact joint solution. *)

val pp_solution : Format.formatter -> solution -> unit
val pp_gap : Format.formatter -> gap_report -> unit
