let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let bus_node id = Printf.sprintf "bus%d" id
let proc_node id = Printf.sprintf "proc%d" id
let bridge_buffer_node bridge into_bus = Printf.sprintf "bb%d_%d" bridge into_bus

let header rankdir buf =
  Buffer.add_string buf "digraph architecture {\n";
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" rankdir);
  Buffer.add_string buf "  node [fontname=\"Helvetica\"];\n"

(* [label_of] must pre-escape user text (it may embed the DOT line break
   [\n], which [escape] would double).  Buses flagged as shared DAMQ pools
   render in a warmer fill with a [shared pool] tag. *)
let emit_buses topo buf label_of =
  Array.iter
    (fun (b : Topology.bus) ->
      let shared = Topology.shared_buffer topo b.Topology.bus_id in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=box, style=filled, fillcolor=%s, label=\"%s%s\"];\n"
           (bus_node b.Topology.bus_id)
           (if shared then "lightsalmon" else "lightblue")
           (label_of b)
           (if shared then "\\nshared pool" else "")))
    (Topology.buses topo)

let emit_bridges topo buf =
  Array.iter
    (fun (br : Topology.bridge) ->
      let x, y = br.Topology.endpoints in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [dir=both, style=bold, label=\"%s\"];\n" (bus_node x)
           (bus_node y)
           (escape br.Topology.bridge_name)))
    (Topology.bridges topo)

let topology ?(rankdir = "LR") topo =
  let buf = Buffer.create 1024 in
  header rankdir buf;
  emit_buses topo buf (fun b ->
      Printf.sprintf "%s\\nmu=%.3g" (escape b.Topology.bus_name) b.Topology.service_rate);
  Array.iter
    (fun (p : Topology.processor) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=ellipse, label=\"%s\"];\n" (proc_node p.Topology.proc_id)
           (escape p.Topology.proc_name));
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [arrowhead=none];\n" (proc_node p.Topology.proc_id)
           (bus_node p.Topology.home_bus)))
    (Topology.processors topo);
  emit_bridges topo buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let route_colors =
  [| "crimson"; "royalblue"; "forestgreen"; "darkorange"; "purple"; "teal"; "goldenrod" |]

let with_routes ?(rankdir = "LR") traffic =
  let topo = Traffic.topology traffic in
  let buf = Buffer.create 2048 in
  header rankdir buf;
  emit_buses topo buf (fun b ->
      Printf.sprintf "%s\\nmu=%.3g" (escape b.Topology.bus_name) b.Topology.service_rate);
  Array.iter
    (fun (p : Topology.processor) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=ellipse, label=\"%s\"];\n" (proc_node p.Topology.proc_id)
           (escape p.Topology.proc_name));
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [arrowhead=none];\n" (proc_node p.Topology.proc_id)
           (bus_node p.Topology.home_bus)))
    (Topology.processors topo);
  emit_bridges topo buf;
  (* One dashed overlay chain per flow: source processor, then every bus its
     requests visit (home bus + one per crossed bridge), then the
     destination processor.  [constraint=false] keeps the overlay from
     distorting the base layout. *)
  Array.iteri
    (fun i (f : Traffic.flow) ->
      let color = route_colors.(i mod Array.length route_colors) in
      let buses = List.map (fun (bus, _) -> bus_node bus) (Traffic.hops traffic f) in
      let chain = (proc_node f.Traffic.src :: buses) @ [ proc_node f.Traffic.dst ] in
      let rec emit = function
        | a :: (b :: _ as rest) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [color=%s, style=dashed, constraint=false%s];\n" a b
                 color
                 (if a = proc_node f.Traffic.src then
                    Printf.sprintf ", label=\"%.3g/s\"" f.Traffic.rate
                  else ""));
            emit rest
        | _ -> ()
      in
      emit chain)
    (Traffic.flows traffic);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let with_allocation ?(rankdir = "LR") topo traffic alloc =
  let buf = Buffer.create 2048 in
  header rankdir buf;
  emit_buses topo buf (fun b ->
      Printf.sprintf "%s\\nmu=%.3g rho=%.2f" (escape b.Topology.bus_name)
        b.Topology.service_rate
        (Traffic.bus_utilization traffic b.Topology.bus_id));
  Array.iter
    (fun (p : Topology.processor) ->
      let words =
        Buffer_alloc.lookup alloc p.Topology.home_bus (Traffic.Proc_client p.Topology.proc_id)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=ellipse, label=\"%s\\n%d words\"];\n"
           (proc_node p.Topology.proc_id)
           (escape p.Topology.proc_name)
           words);
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [arrowhead=none];\n" (proc_node p.Topology.proc_id)
           (bus_node p.Topology.home_bus)))
    (Topology.processors topo);
  (* Inserted bridge buffers: one per loaded bridge direction. *)
  List.iter
    (fun (bus, client, rate) ->
      match client with
      | Traffic.Proc_client _ -> ()
      | Traffic.Bridge_client { bridge; into_bus } ->
          let words = Buffer_alloc.lookup alloc bus client in
          let node = bridge_buffer_node bridge into_bus in
          Buffer.add_string buf
            (Printf.sprintf
               "  %s [shape=house, style=filled, fillcolor=khaki, label=\"%s\\n%d words\\n%.2g/s\"];\n"
               node
               (escape (Traffic.client_label topo client))
               words rate);
          Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" node (bus_node into_bus)))
    (Traffic.all_clients traffic);
  emit_bridges topo buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
