(** Seeded random model generators for differential verification.

    Every generator is a pure function of a {!Bufsize_prob.Rng.t}, so the
    same seed reproduces the same instance on every machine — the property
    the [bufsize verify] fuzz harness and the qcheck properties both rely
    on.  Size knobs keep instances small enough that the exact solvers
    (LU-based policy evaluation, dense simplex) stay authoritative.

    Generators guarantee model validity by construction:
    - architectures have a connected bus graph (spanning tree of bridges),
      at least two processors, at least one flow per processor (so every
      subsystem has a loaded client), and are rescaled so no bus exceeds
      the utilization knob;
    - CTMDPs give every action a transition along the cycle
      [s -> s + 1 mod n], so every stationary deterministic policy induces
      an irreducible chain (the unichain property policy iteration needs);
    - LPs are plain records ({!lp_case}) so oracles can shrink them
      structurally. *)

module Rng := Bufsize_prob.Rng

(** {1 SoC architectures} *)

type arch_knobs = {
  max_buses : int;  (** >= 1 *)
  max_procs_per_bus : int;  (** >= 1 *)
  max_extra_bridges : int;  (** beyond the connecting spanning tree *)
  max_flows_per_proc : int;  (** every processor emits at least one flow *)
  min_service : float;
  max_service : float;
  min_rate : float;
  max_rate : float;
  max_utilization : float;
      (** flows are rescaled so every bus keeps rho below this *)
}

val default_arch_knobs : arch_knobs

val arch :
  ?knobs:arch_knobs -> Rng.t -> Bufsize_soc.Topology.t * Bufsize_soc.Traffic.t
(** A random bridged architecture with routed traffic. *)

val arch_text : ?knobs:arch_knobs -> Rng.t -> string
(** {!arch} rendered through {!Bufsize_soc.Spec_parser.to_string} — the
    round-trippable repro form. *)

(** {1 NoC grid architectures} *)

type topo_knobs = {
  max_grid_dim : int;  (** >= 2; rows and cols use 2..[max_grid_dim] *)
  max_flows_per_ni : int;  (** every network interface emits at least one *)
  grid_min_service : float;
  grid_max_service : float;
  grid_min_rate : float;
  grid_max_rate : float;
  grid_max_utilization : float;
      (** flows are rescaled so every router keeps rho below this, transit
          load included *)
}

val default_topo_knobs : topo_knobs

val topo_arch :
  ?knobs:topo_knobs -> Rng.t -> Bufsize_soc.Topology.t * Bufsize_soc.Traffic.t
(** A random mesh or torus grid with one network-interface processor per
    cell, a random nonempty subset of routers marked shared-pool
    ({!Bufsize_soc.Topology.mark_shared}), and random inter-NI flows —
    the [topo] oracle's instance family.  Round-trips through
    {!Bufsize_soc.Spec_parser} like {!arch} does. *)

(** {1 Standalone CTMDPs} *)

type ctmdp_knobs = {
  max_states : int;  (** >= 2 *)
  max_actions : int;  (** per state, >= 1 *)
  max_fanout : int;  (** extra random transitions per action *)
  min_trans_rate : float;
  max_trans_rate : float;
  max_cost : float;
  max_extra : float;  (** resource rates are uniform in [0, max_extra] *)
}

val default_ctmdp_knobs : ctmdp_knobs

type ctmdp_case = {
  num_states : int;
  actions : (string * (int * float) list * float * float) list array;
      (** per state: (label, transitions, cost, extra-0 rate) *)
}
(** A CTMDP as plain data, so oracles can shrink it structurally and dump
    it textually. *)

val ctmdp_case : ?knobs:ctmdp_knobs -> Rng.t -> ctmdp_case

val ctmdp_of_case : ctmdp_case -> Bufsize_mdp.Ctmdp.t
(** @raise Invalid_argument if the case data violates CTMDP validity
    (cannot happen for generated or shrunk cases). *)

val ctmdp_case_to_string : ctmdp_case -> string

val ctmdp : ?knobs:ctmdp_knobs -> Rng.t -> Bufsize_mdp.Ctmdp.t
(** [ctmdp_of_case (ctmdp_case rng)]. *)

(** {1 Linear programs} *)

type lp_knobs = {
  max_vars : int;  (** >= 1 *)
  max_rows : int;  (** beyond the bounding box rows *)
  max_terms : int;  (** nonzeros per extra row *)
  free_var_freq : int;  (** one in [n] variables is free; 0 = never *)
  max_coeff : float;
}

val default_lp_knobs : lp_knobs

type lp_case = {
  maximize : bool;
  lbs : float array;  (** per-variable lower bound; [neg_infinity] = free *)
  obj : float array;
  rows : ((int * float) list * Bufsize_numeric.Lp.sense * float) list;
}

val lp_case : ?knobs:lp_knobs -> Rng.t -> lp_case
(** Random LP over nonnegative (occasionally free or shifted) variables.
    Every variable gets a box row, so instances are usually bounded and
    feasible, but infeasible and unbounded instances do occur — engines
    must agree on the classification either way. *)

val lp_of_case : lp_case -> Bufsize_numeric.Lp.t

val lp_case_to_string : lp_case -> string

(** {1 Queues and bridged pairs} *)

type mm1k_case = { lambda : float; mu : float; k : int; sim_seed : int }
(** An M/M/1/K instance plus the seed of its simulation cross-check. *)

val mm1k_case : Rng.t -> mm1k_case
(** Utilization in [0.2, 1.2] (overload allowed — loss systems are stable),
    [k] in [1, 8]. *)

val monolithic_spec : Rng.t -> Bufsize_soc.Monolithic.spec
(** A tiny bridged pair: capacities in [1, 4], utilization kept below 0.85
    on both buses, [cross_fraction] in [0, 0.25] with a point mass at 0
    (the decoupled boundary where split and monolithic models must agree
    exactly). *)

val monolithic_to_string : Bufsize_soc.Monolithic.spec -> string

(** {1 Repro parsing}

    Inverses of the [*_to_string] printers, used by
    [bufsize verify --replay] to reconstruct a case from a dumped repro.
    All parsers skip blank and ['#'] comment lines. *)

val lp_case_of_string : string -> (lp_case, string) result
val ctmdp_case_of_string : string -> (ctmdp_case, string) result
val monolithic_of_string : string -> (Bufsize_soc.Monolithic.spec, string) result

(** {1 SAN / Kronecker descriptors} *)

type san_knobs = {
  max_automata : int;  (** >= 2; instances use 2..[max_automata] *)
  max_size : int;  (** local states per automaton, >= 2 *)
  max_extra_local : int;  (** local transitions beyond the cycle *)
  max_events : int;  (** synchronizing events, possibly 0 *)
  min_rate : float;
  max_rate : float;
}

val default_san_knobs : san_knobs

type san_case = {
  automata : Bufsize_prob.San.automaton list;
  events : Bufsize_prob.San.event list;
}
(** A SAN as plain data for structural shrinking and textual dumps. *)

val san_case : ?knobs:san_knobs -> Rng.t -> san_case
(** Random SAN whose every automaton carries a local cycle
    [s -> s + 1 mod size] with positive rates, so the joint chain is
    irreducible by construction; events mix routing participants
    (possibly with self loops) and functional-rate scalings on
    non-participants.  Joint state spaces stay small enough for the
    materialized cross-check (< 100 states at default knobs). *)

val san_of_case : san_case -> Bufsize_prob.San.t
(** @raise Invalid_argument if the case data violates SAN validity
    (cannot happen for generated or shrunk cases). *)

val san_case_to_string : san_case -> string
val san_case_of_string : string -> (san_case, string) result
