let minimize ?(max_steps = 500) case msg =
  let rec first = function
    | [] -> None
    | c :: rest -> (
        match Oracle.run_check c with
        | Oracle.Fail m -> Some (c, m)
        | Oracle.Pass -> first rest)
  in
  let rec go case msg steps =
    if steps >= max_steps then (case, msg, steps)
    else
      match first (case.Oracle.shrink ()) with
      | None -> (case, msg, steps)
      | Some (c, m) -> go c m (steps + 1)
  in
  go case msg 0
