module Rng = Bufsize_prob.Rng
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Spec_parser = Bufsize_soc.Spec_parser
module Monolithic = Bufsize_soc.Monolithic
module Ctmdp = Bufsize_mdp.Ctmdp
module Lp = Bufsize_numeric.Lp

(* Round to 3 decimals: keeps generated instances printable/re-parseable
   without loss and avoids adversarially ill-conditioned coefficients. *)
let round3 x = Float.round (x *. 1000.) /. 1000.

let float_in rng lo hi = round3 (Rng.float_range rng lo hi)

(* ------------------------------------------------------- architectures *)

type arch_knobs = {
  max_buses : int;
  max_procs_per_bus : int;
  max_extra_bridges : int;
  max_flows_per_proc : int;
  min_service : float;
  max_service : float;
  min_rate : float;
  max_rate : float;
  max_utilization : float;
}

let default_arch_knobs =
  {
    max_buses = 3;
    max_procs_per_bus = 2;
    max_extra_bridges = 1;
    max_flows_per_proc = 2;
    min_service = 1.0;
    max_service = 6.0;
    min_rate = 0.1;
    max_rate = 2.0;
    max_utilization = 0.9;
  }

let arch ?(knobs = default_arch_knobs) rng =
  if knobs.max_buses < 1 || knobs.max_procs_per_bus < 1 then
    invalid_arg "Gen_model.arch: degenerate knobs";
  let nbuses = 1 + Rng.int rng knobs.max_buses in
  let b = Topology.builder () in
  let buses =
    Array.init nbuses (fun i ->
        Topology.add_bus b
          ~service_rate:(float_in rng knobs.min_service knobs.max_service)
          (Printf.sprintf "b%d" i))
  in
  (* A spanning tree keeps the bus graph connected; extra bridges add
     alternative routes (and exercise the BFS tie-breaking). *)
  let bridged = Hashtbl.create 8 in
  let nbridges = ref 0 in
  let add_bridge x y =
    let key = (Int.min x y, Int.max x y) in
    if x <> y && not (Hashtbl.mem bridged key) then begin
      Hashtbl.add bridged key ();
      ignore
        (Topology.add_bridge b
           ~between:(buses.(x), buses.(y))
           (Printf.sprintf "br%d" !nbridges));
      incr nbridges
    end
  in
  for i = 1 to nbuses - 1 do
    add_bridge (Rng.int rng i) i
  done;
  if nbuses >= 2 then
    for _ = 1 to Rng.int rng (knobs.max_extra_bridges + 1) do
      add_bridge (Rng.int rng nbuses) (Rng.int rng nbuses)
    done;
  let procs = ref [] in
  let nprocs = ref 0 in
  let add_proc bus =
    procs := Topology.add_processor b ~bus:buses.(bus) (Printf.sprintf "p%d" !nprocs) :: !procs;
    incr nprocs
  in
  for bus = 0 to nbuses - 1 do
    for _ = 1 to 1 + Rng.int rng knobs.max_procs_per_bus do
      add_proc bus
    done
  done;
  (* Flows need two distinct endpoints. *)
  if !nprocs < 2 then add_proc 0;
  let procs = Array.of_list (List.rev !procs) in
  let np = Array.length procs in
  let flows = ref [] in
  Array.iter
    (fun src ->
      (* Every processor emits at least one flow, so every bus that has
         processors carries a loaded client (Bus_model.build requires one
         per subsystem). *)
      for _ = 1 to 1 + Rng.int rng knobs.max_flows_per_proc do
        let dst = ref src in
        while !dst = src do
          dst := procs.(Rng.int rng np)
        done;
        flows :=
          { Traffic.src; dst = !dst; rate = float_in rng knobs.min_rate knobs.max_rate }
          :: !flows
      done)
    procs;
  let topo = Topology.finalize b in
  let traffic = Traffic.create topo (List.rev !flows) in
  (* Rescale so the busiest bus stays below the utilization knob: heavily
     overloaded subsystems make the sizing LPs uninformative. *)
  let max_rho = ref 0. in
  Array.iter
    (fun (bus : Topology.bus) ->
      max_rho := Float.max !max_rho (Traffic.bus_utilization traffic bus.Topology.bus_id))
    (Topology.buses topo);
  if !max_rho <= knobs.max_utilization then (topo, traffic)
  else begin
    let f = knobs.max_utilization /. !max_rho in
    (* Round scaled rates DOWN so rounding never pushes a bus back above
       the cap; only the 0.001 floor can, by a hair per tiny flow. *)
    let scaled =
      List.map
        (fun (fl : Traffic.flow) ->
          { fl with Traffic.rate = Float.max 0.001 (Float.of_int (int_of_float (fl.Traffic.rate *. f *. 1000.)) /. 1000.) })
        (List.rev !flows)
    in
    (topo, Traffic.create topo scaled)
  end

let arch_text ?knobs rng =
  let topo, traffic = arch ?knobs rng in
  Spec_parser.to_string topo traffic

(* ---------------------------------------------------- grid architectures *)

type topo_knobs = {
  max_grid_dim : int;
  max_flows_per_ni : int;
  grid_min_service : float;
  grid_max_service : float;
  grid_min_rate : float;
  grid_max_rate : float;
  grid_max_utilization : float;
}

let default_topo_knobs =
  {
    max_grid_dim = 3;
    max_flows_per_ni = 2;
    grid_min_service = 2.0;
    grid_max_service = 6.0;
    grid_min_rate = 0.05;
    grid_max_rate = 0.4;
    grid_max_utilization = 0.85;
  }

let topo_arch ?(knobs = default_topo_knobs) rng =
  if knobs.max_grid_dim < 2 then invalid_arg "Gen_model.topo_arch: need dims >= 2";
  let rows = 2 + Rng.int rng (knobs.max_grid_dim - 1) in
  let cols = 2 + Rng.int rng (knobs.max_grid_dim - 1) in
  let kind = if Rng.bool rng then Topology.Mesh else Topology.Torus in
  let b = Topology.builder () in
  let service_rate = float_in rng knobs.grid_min_service knobs.grid_max_service in
  let cells =
    (match kind with Topology.Mesh -> Topology.mesh | Topology.Torus -> Topology.torus)
      b ~service_rate ~rows ~cols "g"
  in
  let n = rows * cols in
  (* At least one router draws from a shared pool; the others flip coins,
     so mixed static/shared instances are common. *)
  let forced_shared = Rng.int rng n in
  for i = 0 to n - 1 do
    if i = forced_shared || Rng.bool rng then
      Topology.mark_shared b cells.(i / cols).(i mod cols)
  done;
  let procs =
    Array.init n (fun i ->
        Topology.add_processor b ~bus:cells.(i / cols).(i mod cols)
          (Printf.sprintf "ni%d" i))
  in
  let flows = ref [] in
  (* Every network interface emits at least one flow, so every cell bus
     carries a loaded client (Bus_model.build requires one per
     subsystem). *)
  Array.iteri
    (fun i src ->
      for _ = 1 to 1 + Rng.int rng knobs.max_flows_per_ni do
        let dst = ref i in
        while !dst = i do
          dst := Rng.int rng n
        done;
        flows :=
          {
            Traffic.src;
            dst = procs.(!dst);
            rate = float_in rng knobs.grid_min_rate knobs.grid_max_rate;
          }
          :: !flows
      done)
    procs;
  let topo = Topology.finalize b in
  let flows = List.rev !flows in
  let traffic = Traffic.create topo flows in
  (* Transit load concentrates on interior routers; rescale like {!arch}
     so the busiest bus stays below the utilization knob. *)
  let max_rho = ref 0. in
  Array.iter
    (fun (bus : Topology.bus) ->
      max_rho := Float.max !max_rho (Traffic.bus_utilization traffic bus.Topology.bus_id))
    (Topology.buses topo);
  if !max_rho <= knobs.grid_max_utilization then (topo, traffic)
  else begin
    let f = knobs.grid_max_utilization /. !max_rho in
    let scaled =
      List.map
        (fun (fl : Traffic.flow) ->
          { fl with Traffic.rate = Float.max 0.001 (Float.of_int (int_of_float (fl.Traffic.rate *. f *. 1000.)) /. 1000.) })
        flows
    in
    (topo, Traffic.create topo scaled)
  end

(* --------------------------------------------------------------- CTMDPs *)

type ctmdp_knobs = {
  max_states : int;
  max_actions : int;
  max_fanout : int;
  min_trans_rate : float;
  max_trans_rate : float;
  max_cost : float;
  max_extra : float;
}

let default_ctmdp_knobs =
  {
    max_states = 6;
    max_actions = 3;
    max_fanout = 2;
    min_trans_rate = 0.2;
    max_trans_rate = 4.0;
    max_cost = 5.0;
    max_extra = 4.0;
  }

type ctmdp_case = {
  num_states : int;
  actions : (string * (int * float) list * float * float) list array;
}

let ctmdp_case ?(knobs = default_ctmdp_knobs) rng =
  if knobs.max_states < 2 then invalid_arg "Gen_model.ctmdp_case: need >= 2 states";
  let n = 2 + Rng.int rng (knobs.max_states - 1) in
  let actions =
    Array.init n (fun s ->
        let na = 1 + Rng.int rng knobs.max_actions in
        List.init na (fun a ->
            (* Accumulate rates per target; the mandatory cycle edge
               [s -> s+1 mod n] makes every deterministic policy's chain
               irreducible, so policy iteration's evaluation system is
               never singular. *)
            let tbl = Hashtbl.create 4 in
            let add t r =
              Hashtbl.replace tbl t (r +. Option.value ~default:0. (Hashtbl.find_opt tbl t))
            in
            add ((s + 1) mod n) (float_in rng knobs.min_trans_rate knobs.max_trans_rate);
            for _ = 1 to Rng.int rng (knobs.max_fanout + 1) do
              let t = Rng.int rng n in
              if t <> s then add t (float_in rng knobs.min_trans_rate knobs.max_trans_rate)
            done;
            let transitions =
              Hashtbl.fold (fun t r acc -> (t, r) :: acc) tbl []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            ( Printf.sprintf "a%d" a,
              transitions,
              float_in rng 0. knobs.max_cost,
              float_in rng 0. knobs.max_extra )))
  in
  { num_states = n; actions }

let ctmdp_of_case c =
  Ctmdp.create ~num_extras:1
    (Array.map
       (fun acts ->
         Array.of_list
           (List.map
              (fun (label, transitions, cost, extra) ->
                { Ctmdp.label; transitions; cost; extras = [| extra |] })
              acts))
       c.actions)

(* Lossless float printing for repro files: %g where it round-trips (the
   common round3 case), full precision otherwise (coefficients summed
   during generation or shrinking need not land on 3 decimals). *)
let fstr x =
  let s = Printf.sprintf "%g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let fstr_signed x = if x >= 0. then "+" ^ fstr x else fstr x

let ctmdp_case_to_string c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "ctmdp states %d extras 1\n" c.num_states);
  Array.iteri
    (fun s acts ->
      List.iter
        (fun (label, transitions, cost, extra) ->
          Buffer.add_string buf
            (Printf.sprintf "state %d action %s cost %s extra %s :%s\n" s label (fstr cost)
               (fstr extra)
               (String.concat ""
                  (List.map (fun (t, r) -> Printf.sprintf " ->%d@%s" t (fstr r)) transitions))))
        acts)
    c.actions;
  Buffer.contents buf

let ctmdp ?knobs rng = ctmdp_of_case (ctmdp_case ?knobs rng)

(* ------------------------------------------------------ linear programs *)

type lp_knobs = {
  max_vars : int;
  max_rows : int;
  max_terms : int;
  free_var_freq : int;
  max_coeff : float;
}

let default_lp_knobs =
  { max_vars = 5; max_rows = 4; max_terms = 3; free_var_freq = 6; max_coeff = 3.0 }

type lp_case = {
  maximize : bool;
  lbs : float array;
  obj : float array;
  rows : ((int * float) list * Lp.sense * float) list;
}

let lp_case ?(knobs = default_lp_knobs) rng =
  let n = 1 + Rng.int rng knobs.max_vars in
  let lbs =
    Array.init n (fun _ ->
        if knobs.free_var_freq > 0 && Rng.int rng knobs.free_var_freq = 0 then neg_infinity
        else if Rng.int rng 4 = 0 then float_in rng (-2.) 2.
        else 0.)
  in
  let obj = Array.init n (fun _ -> float_in rng (-.knobs.max_coeff) knobs.max_coeff) in
  (* One box row per variable keeps most instances bounded; extra rows mix
     senses and signs, so infeasible (and occasionally unbounded, via free
     variables) classifications are exercised too. *)
  let box =
    List.init n (fun j -> ([ (j, 1.) ], Lp.Le, float_in rng 1. 10.))
  in
  let nrows = Rng.int rng (knobs.max_rows + 1) in
  let extra =
    List.init nrows (fun _ ->
        let nterms = 1 + Rng.int rng knobs.max_terms in
        let tbl = Hashtbl.create 4 in
        for _ = 1 to nterms do
          let j = Rng.int rng n in
          let c = float_in rng (-.knobs.max_coeff) knobs.max_coeff in
          if c <> 0. then
            Hashtbl.replace tbl j (c +. Option.value ~default:0. (Hashtbl.find_opt tbl j))
        done;
        let terms =
          Hashtbl.fold (fun j c acc -> (j, c) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let sense =
          match Rng.int rng 5 with 0 -> Lp.Eq | 1 | 2 -> Lp.Ge | _ -> Lp.Le
        in
        let rhs =
          (* Bias right-hand sides toward feasibility (Le rows nonnegative,
             Ge rows small) so most instances are Optimal. *)
          match sense with
          | Lp.Le -> float_in rng 0. 8.
          | Lp.Ge -> float_in rng (-4.) 2.
          | Lp.Eq -> float_in rng (-1.) 3.
        in
        (terms, sense, rhs))
  in
  { maximize = Rng.bool rng; lbs; obj; rows = box @ extra }

let lp_of_case c =
  let m = Lp.create (if c.maximize then Lp.Maximize else Lp.Minimize) in
  let vars =
    Array.mapi (fun j lb -> Lp.add_var ~name:(Printf.sprintf "x%d" j) ~lb m) c.lbs
  in
  Lp.set_objective m (Array.to_list (Array.mapi (fun j cj -> (cj, vars.(j))) c.obj));
  List.iter
    (fun (terms, sense, rhs) ->
      match terms with
      | [] -> ()
      | _ -> Lp.add_constraint m (List.map (fun (j, cf) -> (cf, vars.(j))) terms) sense rhs)
    c.rows;
  m

let lp_case_to_string c =
  let buf = Buffer.create 256 in
  let n = Array.length c.obj in
  Buffer.add_string buf
    (Printf.sprintf "lp %s vars %d\n" (if c.maximize then "maximize" else "minimize") n);
  Buffer.add_string buf "objective:";
  Array.iteri (fun j cj -> Buffer.add_string buf (Printf.sprintf " %s x%d" (fstr_signed cj) j)) c.obj;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun j lb ->
      if lb <> 0. then
        Buffer.add_string buf
          (if lb = neg_infinity then Printf.sprintf "x%d free\n" j
           else Printf.sprintf "x%d >= %s\n" j (fstr lb)))
    c.lbs;
  List.iter
    (fun (terms, sense, rhs) ->
      Buffer.add_string buf "row:";
      List.iter
        (fun (j, cf) -> Buffer.add_string buf (Printf.sprintf " %s x%d" (fstr_signed cf) j))
        terms;
      let s = match sense with Lp.Le -> "<=" | Lp.Eq -> "=" | Lp.Ge -> ">=" in
      Buffer.add_string buf (Printf.sprintf " %s %s\n" s (fstr rhs)))
    c.rows;
  Buffer.contents buf

(* --------------------------------------------------- queues and bridges *)

type mm1k_case = { lambda : float; mu : float; k : int; sim_seed : int }

let mm1k_case rng =
  let mu = float_in rng 0.5 4.0 in
  let rho = Rng.float_range rng 0.2 1.2 in
  let lambda = Float.max 0.05 (round3 (rho *. mu)) in
  { lambda; mu; k = 1 + Rng.int rng 8; sim_seed = 1 + Rng.int rng 1_000_000 }

let monolithic_spec rng =
  let mu_x = float_in rng 1.0 4.0 and mu_y = float_in rng 1.0 4.0 in
  let lambda_x = Float.max 0.05 (round3 (Rng.float_range rng 0.15 0.85 *. mu_x)) in
  let lambda_y = Float.max 0.05 (round3 (Rng.float_range rng 0.15 0.85 *. mu_y)) in
  let cross_fraction = if Rng.int rng 4 = 0 then 0. else float_in rng 0. 0.25 in
  {
    Monolithic.kx = 1 + Rng.int rng 4;
    ky = 1 + Rng.int rng 4;
    lambda_x;
    lambda_y;
    cross_fraction;
    mu_x;
    mu_y;
  }

let monolithic_to_string (s : Monolithic.spec) =
  Printf.sprintf
    "monolithic kx %d ky %d lambda_x %s lambda_y %s cross_fraction %s mu_x %s mu_y %s\n"
    s.Monolithic.kx s.Monolithic.ky
    (fstr s.Monolithic.lambda_x)
    (fstr s.Monolithic.lambda_y)
    (fstr s.Monolithic.cross_fraction)
    (fstr s.Monolithic.mu_x) (fstr s.Monolithic.mu_y)

(* ------------------------------------------------------- repro parsing *)

(* Inverses of the printers above, for `bufsize verify --replay`.  All
   parsers skip blank and '#' comment lines and return [Error] with the
   offending line instead of raising. *)

let repro_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* "x3" -> Some 3 *)
let parse_var_tok n tok =
  if String.length tok >= 2 && tok.[0] = 'x' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some j when j >= 0 && j < n -> Some j
    | _ -> None
  else None

(* coefficient/variable pairs, optionally ending in a sense and rhs *)
let rec parse_terms n acc = function
  | [] -> Some (List.rev acc, None)
  | [ sense; rhs ] when sense = "<=" || sense = "=" || sense = ">=" -> (
      match float_of_string_opt rhs with
      | Some r ->
          let s = match sense with "<=" -> Lp.Le | ">=" -> Lp.Ge | _ -> Lp.Eq in
          Some (List.rev acc, Some (s, r))
      | None -> None)
  | coef :: var :: tl -> (
      match (float_of_string_opt coef, parse_var_tok n var) with
      | Some c, Some v -> parse_terms n ((v, c) :: acc) tl
      | _ -> None)
  | _ -> None

let lp_case_of_string text =
  match repro_lines text with
  | [] -> Error "lp: empty repro"
  | header :: rest -> (
      match tokens header with
      | [ "lp"; dir; "vars"; nv ] when dir = "maximize" || dir = "minimize" -> (
          match int_of_string_opt nv with
          | Some n when n >= 1 -> (
              let lbs = Array.make n 0. in
              let obj = Array.make n 0. in
              let rows = ref [] in
              let error = ref None in
              let fail msg = if !error = None then error := Some msg in
              List.iter
                (fun line ->
                  match tokens line with
                  | "objective:" :: tl -> (
                      match parse_terms n [] tl with
                      | Some (terms, None) -> List.iter (fun (v, c) -> obj.(v) <- c) terms
                      | _ -> fail ("lp: bad objective line: " ^ line))
                  | [ v; "free" ] -> (
                      match parse_var_tok n v with
                      | Some j -> lbs.(j) <- neg_infinity
                      | None -> fail ("lp: bad free line: " ^ line))
                  | [ v; ">="; b ] -> (
                      match (parse_var_tok n v, float_of_string_opt b) with
                      | Some j, Some lb -> lbs.(j) <- lb
                      | _ -> fail ("lp: bad bound line: " ^ line))
                  | "row:" :: tl -> (
                      match parse_terms n [] tl with
                      | Some (terms, Some (sense, rhs)) -> rows := (terms, sense, rhs) :: !rows
                      | _ -> fail ("lp: bad row line: " ^ line))
                  | _ -> fail ("lp: unrecognized line: " ^ line))
                rest;
              match !error with
              | Some e -> Error e
              | None -> Ok { maximize = dir = "maximize"; lbs; obj; rows = List.rev !rows })
          | _ -> Error ("lp: bad variable count: " ^ nv))
      | _ -> Error ("lp: bad header: " ^ header))

(* "->3@1.5" -> Some (3, 1.5) *)
let parse_transition_tok tok =
  if String.length tok > 2 && tok.[0] = '-' && tok.[1] = '>' then
    match String.index_opt tok '@' with
    | Some at -> (
        match
          ( int_of_string_opt (String.sub tok 2 (at - 2)),
            float_of_string_opt (String.sub tok (at + 1) (String.length tok - at - 1)) )
        with
        | Some t, Some r -> Some (t, r)
        | _ -> None)
    | None -> None
  else None

let ctmdp_case_of_string text =
  match repro_lines text with
  | [] -> Error "ctmdp: empty repro"
  | header :: rest -> (
      match tokens header with
      | [ "ctmdp"; "states"; nv; "extras"; _ ] -> (
          match int_of_string_opt nv with
          | Some n when n >= 1 -> (
              (* Reversed per-state action lists, un-reversed at the end. *)
              let actions = Array.make n [] in
              let error = ref None in
              let fail msg = if !error = None then error := Some msg in
              List.iter
                (fun line ->
                  match tokens line with
                  | "state" :: s :: "action" :: label :: "cost" :: c :: "extra" :: e :: ":"
                    :: trans -> (
                      let transitions =
                        List.fold_left
                          (fun acc tok ->
                            match (acc, parse_transition_tok tok) with
                            | Some acc, Some (t, r) when t >= 0 && t < n ->
                                Some ((t, r) :: acc)
                            | _ -> None)
                          (Some []) trans
                      in
                      match (int_of_string_opt s, float_of_string_opt c, float_of_string_opt e, transitions) with
                      | Some s, Some cost, Some extra, Some ts when s >= 0 && s < n ->
                          actions.(s) <- (label, List.rev ts, cost, extra) :: actions.(s)
                      | _ -> fail ("ctmdp: bad action line: " ^ line))
                  | _ -> fail ("ctmdp: unrecognized line: " ^ line))
                rest;
              match !error with
              | Some e -> Error e
              | None ->
                  let actions = Array.map List.rev actions in
                  if Array.exists (fun acts -> acts = []) actions then
                    Error "ctmdp: some state has no actions"
                  else Ok { num_states = n; actions })
          | _ -> Error ("ctmdp: bad state count: " ^ nv))
      | _ -> Error ("ctmdp: bad header: " ^ header))

let monolithic_of_string text =
  match repro_lines text with
  | [ line ] -> (
      match tokens line with
      | [
       "monolithic"; "kx"; kx; "ky"; ky; "lambda_x"; lx; "lambda_y"; ly; "cross_fraction"; cf;
       "mu_x"; mx; "mu_y"; my;
      ] -> (
          match
            ( int_of_string_opt kx,
              int_of_string_opt ky,
              float_of_string_opt lx,
              float_of_string_opt ly,
              float_of_string_opt cf,
              float_of_string_opt mx,
              float_of_string_opt my )
          with
          | Some kx, Some ky, Some lambda_x, Some lambda_y, Some cross_fraction, Some mu_x, Some mu_y
            ->
              Ok
                {
                  Monolithic.kx;
                  ky;
                  lambda_x;
                  lambda_y;
                  cross_fraction;
                  mu_x;
                  mu_y;
                }
          | _ -> Error ("monolithic: bad field: " ^ line))
      | _ -> Error ("monolithic: unrecognized line: " ^ line))
  | [] -> Error "monolithic: empty repro"
  | _ -> Error "monolithic: expected exactly one spec line"

(* ----------------------------------------------------- SAN descriptors *)

module San = Bufsize_prob.San

type san_knobs = {
  max_automata : int;
  max_size : int;
  max_extra_local : int;
  max_events : int;
  min_rate : float;
  max_rate : float;
}

let default_san_knobs =
  {
    max_automata = 3;
    max_size = 4;
    max_extra_local = 2;
    max_events = 2;
    min_rate = 0.1;
    max_rate = 2.0;
  }

type san_case = { automata : San.automaton list; events : San.event list }

let san_case ?(knobs = default_san_knobs) rng =
  if knobs.max_automata < 2 || knobs.max_size < 2 then
    invalid_arg "Gen_model.san_case: degenerate knobs";
  let n_aut = 2 + Rng.int rng (knobs.max_automata - 1) in
  let automata =
    List.init n_aut (fun i ->
        let d = 2 + Rng.int rng (knobs.max_size - 1) in
        (* The local cycle s -> s+1 mod d visits every local state under
           local transitions alone, so the joint chain is irreducible no
           matter what the events do — the stationary cross-check never
           chases closed-class ambiguity. *)
        let cycle =
          List.init d (fun s -> (s, (s + 1) mod d, float_in rng knobs.min_rate knobs.max_rate))
        in
        let extras =
          List.init
            (Rng.int rng (knobs.max_extra_local + 1))
            (fun _ ->
              let f = Rng.int rng d in
              let t = ref (Rng.int rng d) in
              while !t = f do
                t := Rng.int rng d
              done;
              (f, !t, float_in rng knobs.min_rate knobs.max_rate))
        in
        { San.name = Printf.sprintf "a%d" i; size = d; local = cycle @ extras })
  in
  let sizes = Array.of_list (List.map (fun a -> a.San.size) automata) in
  let events =
    List.init
      (Rng.int rng (knobs.max_events + 1))
      (fun e ->
        let participates = Array.init n_aut (fun _ -> Rng.bool rng) in
        if Array.for_all not participates then participates.(Rng.int rng n_aut) <- true;
        let routing =
          List.init n_aut Fun.id
          |> List.filter_map (fun a ->
                 if not participates.(a) then None
                 else begin
                   let d = sizes.(a) in
                   let rows =
                     List.init d (fun s ->
                         if Rng.int rng 3 = 0 then None
                         else Some (s, Rng.int rng d, float_in rng 0.1 1.0))
                     |> List.filter_map Fun.id
                   in
                   (* A participant with no routing rows would disable the
                      event everywhere; keep at least one row. *)
                   let rows =
                     if rows = [] then [ (0, Rng.int rng d, float_in rng 0.1 1.0) ] else rows
                   in
                   Some (a, rows)
                 end)
        in
        let scaling =
          List.init n_aut Fun.id
          |> List.filter_map (fun a ->
                 if participates.(a) || Rng.int rng 3 <> 0 then None
                 else Some (a, Array.init sizes.(a) (fun _ -> float_in rng 0. 1.5)))
        in
        {
          San.label = Printf.sprintf "e%d" e;
          rate = float_in rng knobs.min_rate knobs.max_rate;
          routing;
          scaling;
        })
  in
  { automata; events }

let san_of_case c = San.create c.automata c.events

let san_case_to_string c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "san automata %d\n" (List.length c.automata));
  Buffer.add_string buf "sizes:";
  List.iter (fun a -> Buffer.add_string buf (Printf.sprintf " %d" a.San.size)) c.automata;
  Buffer.add_char buf '\n';
  let edges rows =
    String.concat ""
      (List.map (fun (f, t, r) -> Printf.sprintf " %d->%d@%s" f t (fstr r)) rows)
  in
  List.iteri
    (fun i a ->
      if a.San.local <> [] then
        Buffer.add_string buf (Printf.sprintf "local %d :%s\n" i (edges a.San.local)))
    c.automata;
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "event %s rate %s\n" e.San.label (fstr e.San.rate));
      List.iter
        (fun (a, rows) -> Buffer.add_string buf (Printf.sprintf "route %d :%s\n" a (edges rows)))
        e.San.routing;
      List.iter
        (fun (a, mult) ->
          Buffer.add_string buf (Printf.sprintf "scale %d :" a);
          Array.iter (fun m -> Buffer.add_string buf (" " ^ fstr m)) mult;
          Buffer.add_char buf '\n')
        e.San.scaling)
    c.events;
  Buffer.contents buf

(* "2->0@1.5" -> Some (2, 0, 1.5) *)
let parse_edge_tok tok =
  let len = String.length tok in
  let rec arrow i =
    if i + 1 >= len then None
    else if tok.[i] = '-' && tok.[i + 1] = '>' then Some i
    else arrow (i + 1)
  in
  match arrow 0 with
  | None -> None
  | Some i -> (
      match String.index_from_opt tok i '@' with
      | None -> None
      | Some at -> (
          match
            ( int_of_string_opt (String.sub tok 0 i),
              int_of_string_opt (String.sub tok (i + 2) (at - i - 2)),
              float_of_string_opt (String.sub tok (at + 1) (len - at - 1)) )
          with
          | Some f, Some t, Some r -> Some (f, t, r)
          | _ -> None))

let san_case_of_string text =
  match repro_lines text with
  | [] -> Error "san: empty repro"
  | header :: rest -> (
      match tokens header with
      | [ "san"; "automata"; na ] -> (
          match int_of_string_opt na with
          | Some n_aut when n_aut >= 1 ->
              let sizes = ref [||] in
              let locals = ref [||] in
              let events = ref [] in
              let current = ref None in
              let error = ref None in
              let fail msg = if !error = None then error := Some msg in
              let flush () =
                match !current with
                | Some (label, rate, routing, scaling) ->
                    events :=
                      {
                        San.label;
                        rate;
                        routing = List.rev routing;
                        scaling = List.rev scaling;
                      }
                      :: !events;
                    current := None
                | None -> ()
              in
              let parse_edges line tl =
                List.fold_left
                  (fun acc tok ->
                    match (acc, parse_edge_tok tok) with
                    | Some acc, Some e -> Some (e :: acc)
                    | _ ->
                        fail ("san: bad edge token in: " ^ line);
                        None)
                  (Some []) tl
                |> Option.map List.rev
              in
              let automaton_index line a =
                match int_of_string_opt a with
                | Some i when i >= 0 && i < n_aut -> Some i
                | _ ->
                    fail ("san: automaton index out of range in: " ^ line);
                    None
              in
              List.iter
                (fun line ->
                  match tokens line with
                  | "sizes:" :: tl ->
                      let parsed = List.filter_map int_of_string_opt tl in
                      if List.length parsed <> n_aut || List.exists (fun d -> d < 1) parsed
                      then fail ("san: bad sizes line: " ^ line)
                      else begin
                        sizes := Array.of_list parsed;
                        locals := Array.make n_aut []
                      end
                  | "local" :: a :: ":" :: tl -> (
                      match (automaton_index line a, parse_edges line tl) with
                      | Some i, Some edges ->
                          if Array.length !locals = 0 then
                            fail "san: local line before sizes"
                          else !locals.(i) <- edges
                      | _ -> ())
                  | [ "event"; label; "rate"; r ] -> (
                      match float_of_string_opt r with
                      | Some rate ->
                          flush ();
                          current := Some (label, rate, [], [])
                      | None -> fail ("san: bad event line: " ^ line))
                  | "route" :: a :: ":" :: tl -> (
                      match (!current, automaton_index line a, parse_edges line tl) with
                      | Some (label, rate, routing, scaling), Some i, Some edges ->
                          current := Some (label, rate, (i, edges) :: routing, scaling)
                      | None, _, _ -> fail ("san: route line outside an event: " ^ line)
                      | _ -> ())
                  | "scale" :: a :: ":" :: tl -> (
                      let mult = List.filter_map float_of_string_opt tl in
                      match (!current, automaton_index line a) with
                      | Some (label, rate, routing, scaling), Some i ->
                          if List.length mult <> List.length tl then
                            fail ("san: bad scale line: " ^ line)
                          else
                            current :=
                              Some (label, rate, routing, (i, Array.of_list mult) :: scaling)
                      | None, _ -> fail ("san: scale line outside an event: " ^ line)
                      | _ -> ())
                  | _ -> fail ("san: unrecognized line: " ^ line))
                rest;
              flush ();
              if Array.length !sizes = 0 then fail "san: missing sizes line";
              (match !error with
              | Some e -> Error e
              | None ->
                  let automata =
                    List.init n_aut (fun i ->
                        {
                          San.name = Printf.sprintf "a%d" i;
                          size = !sizes.(i);
                          local = !locals.(i);
                        })
                  in
                  Ok { automata; events = List.rev !events })
          | _ -> Error ("san: bad automata count: " ^ na))
      | _ -> Error ("san: bad header: " ^ header))
