(** Oracle plumbing: a differential check packaged with its own shrink
    candidates and repro rendering.

    An oracle generates a {e case} — a concrete model instance with a
    [check] that cross-validates two or more independent solution routes,
    a [shrink] producing structurally smaller candidate cases, and a
    [repro] string suitable for dumping to disk (Spec_parser format for
    SoC cases, a plain-text dump otherwise).  The closures carry the case
    data, so the driver and the shrinker stay fully generic. *)

type verdict = Pass | Fail of string

type case = {
  label : string;  (** one-line description for summaries *)
  repro : string;  (** repro artifact contents *)
  check : unit -> verdict;
  shrink : unit -> case list;  (** smaller candidates, most aggressive first *)
}

type t = {
  name : string;  (** CLI identifier, kebab-case *)
  doc : string;  (** one-line description of the cross-check *)
  generate : max_states:int -> Bufsize_prob.Rng.t -> case;
      (** [max_states] caps CTMDP state spaces where applicable *)
}

val failf : ('a, unit, string, verdict) format4 -> 'a
(** [failf fmt ...] is [Fail (sprintf fmt ...)]. *)

val all_of : (unit -> verdict) list -> verdict
(** First failure wins; [Pass] when every thunk passes. *)

val run_check : case -> verdict
(** [case.check ()] with uncaught exceptions converted to [Fail] — a
    solver crash on a generated instance is a finding, not a harness
    error. *)
