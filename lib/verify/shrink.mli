(** Greedy minimization of failing oracle cases.

    Classic delta-debugging loop: as long as some shrink candidate of the
    current case still fails its check, move to the first such candidate.
    The result is locally minimal — every remaining shrink candidate
    passes — which is what makes repro files readable. *)

val minimize :
  ?max_steps:int -> Oracle.case -> string -> Oracle.case * string * int
(** [minimize case msg] takes a case whose check already failed with
    [msg]; returns the shrunk case, its failure message, and the number of
    accepted shrink steps.  [max_steps] (default 500) bounds the greedy
    descent; candidate checks that raise count as failures (via
    {!Oracle.run_check}). *)
