module Rng = Bufsize_prob.Rng
module Lp = Bufsize_numeric.Lp
module Newton = Bufsize_numeric.Newton
module Stats = Bufsize_numeric.Stats
module Birth_death = Bufsize_prob.Birth_death
module Ctmc = Bufsize_prob.Ctmc
module Lp_formulation = Bufsize_mdp.Lp_formulation
module Policy_iteration = Bufsize_mdp.Policy_iteration
module Value_iteration = Bufsize_mdp.Value_iteration
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Spec_parser = Bufsize_soc.Spec_parser
module Splitting = Bufsize_soc.Splitting
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Sizing = Bufsize_soc.Sizing
module Monolithic = Bufsize_soc.Monolithic
module Sim_run = Bufsize_sim.Sim_run
module Replicate = Bufsize_sim.Replicate

open Oracle

let rel_close tol a b = Float.abs (a -. b) <= tol *. (1. +. Float.max (Float.abs a) (Float.abs b))

(* ----------------------------------------------------- 1. simplex-cross *)

(* Dense tableau vs sparse revised simplex: independently engineered
   solvers for the same standard form must agree on the classification and
   (when optimal) on the objective. *)

let outcome_name = function
  | Lp.Optimal _ -> "optimal"
  | Lp.Infeasible -> "infeasible"
  | Lp.Unbounded -> "unbounded"

let check_lp_case (c : Gen_model.lp_case) =
  let solve engine = Lp.solve ~engine (Gen_model.lp_of_case c) in
  match (solve Lp.Dense, solve Lp.Revised) with
  | Lp.Optimal d, Lp.Optimal r ->
      if rel_close 1e-6 d.Lp.objective r.Lp.objective then Pass
      else
        failf "optimal objectives differ: dense %.12g vs revised %.12g" d.Lp.objective
          r.Lp.objective
  | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> Pass
  | d, r -> failf "outcome mismatch: dense %s vs revised %s" (outcome_name d) (outcome_name r)

let shrink_lp_case (c : Gen_model.lp_case) =
  let drop_row i =
    { c with Gen_model.rows = List.filteri (fun j _ -> j <> i) c.Gen_model.rows }
  in
  let drop_var j =
    let n = Array.length c.Gen_model.obj in
    if n <= 1 then None
    else
      let keep k = k <> j in
      let reindex k = if k > j then k - 1 else k in
      let filter_arr a = Array.of_list (List.filteri (fun k _ -> keep k) (Array.to_list a)) in
      Some
        {
          c with
          Gen_model.lbs = filter_arr c.Gen_model.lbs;
          obj = filter_arr c.Gen_model.obj;
          rows =
            List.filter_map
              (fun (terms, sense, rhs) ->
                match
                  List.filter_map
                    (fun (k, cf) -> if keep k then Some (reindex k, cf) else None)
                    terms
                with
                | [] -> None
                | terms -> Some (terms, sense, rhs))
              c.Gen_model.rows;
        }
  in
  let zero_obj j =
    if c.Gen_model.obj.(j) = 0. then None
    else
      let obj = Array.copy c.Gen_model.obj in
      obj.(j) <- 0.;
      Some { c with Gen_model.obj }
  in
  let n = Array.length c.Gen_model.obj in
  List.init (List.length c.Gen_model.rows) drop_row
  @ List.filter_map drop_var (List.init n Fun.id)
  @ List.filter_map zero_obj (List.init n Fun.id)

let rec lp_case_to_oracle_case (c : Gen_model.lp_case) =
  {
    label =
      Printf.sprintf "lp: %d vars, %d rows" (Array.length c.Gen_model.obj)
        (List.length c.Gen_model.rows);
    repro = Gen_model.lp_case_to_string c;
    check = (fun () -> check_lp_case c);
    shrink = (fun () -> List.map lp_case_to_oracle_case (shrink_lp_case c));
  }

let simplex_cross =
  {
    name = "simplex-cross";
    doc = "dense tableau vs sparse revised simplex on random LPs";
    generate = (fun ~max_states:_ rng -> lp_case_to_oracle_case (Gen_model.lp_case rng));
  }

(* --------------------------------------------------------- 2. mdp-gain *)

(* Average-cost routes on random unichain CTMDPs: the occupation-measure
   LP (both simplex engines), policy iteration, and small-discount value
   iteration must tell one consistent story about the optimal gain. *)

let vi_alpha = 1e-3

let check_ctmdp_case (c : Gen_model.ctmdp_case) =
  let m = Gen_model.ctmdp_of_case c in
  match Lp_formulation.solve ~engine:Lp.Dense m with
  | Lp_formulation.Infeasible | Lp_formulation.Unbounded ->
      failf "occupation LP not optimal on a valid CTMDP"
  | Lp_formulation.Optimal s ->
      let g = s.Lp_formulation.gain in
      all_of
        [
          (fun () ->
            (* The occupation measure is a distribution over (state, action)
               pairs. *)
            let mass =
              Array.fold_left (Array.fold_left ( +. ) : float -> float array -> float) 0.
                s.Lp_formulation.occupation
            in
            if Float.abs (mass -. 1.) <= 1e-6 then Pass
            else failf "occupation mass %.12g instead of 1" mass);
          (fun () ->
            (* Reported extras must be the occupation-weighted resource
               rates. *)
            let acc = ref 0. in
            Array.iteri
              (fun st xs ->
                Array.iteri
                  (fun a x ->
                    acc := !acc +. (x *. (Bufsize_mdp.Ctmdp.action m st a).Bufsize_mdp.Ctmdp.extras.(0)))
                  xs)
              s.Lp_formulation.occupation;
            if rel_close 1e-6 !acc s.Lp_formulation.extras.(0) then Pass
            else
              failf "extras inconsistent with occupation: %.12g vs %.12g" !acc
                s.Lp_formulation.extras.(0));
          (fun () ->
            match Lp_formulation.solve ~engine:Lp.Revised m with
            | Lp_formulation.Optimal r ->
                if rel_close 1e-6 r.Lp_formulation.gain g then Pass
                else
                  failf "revised-engine gain %.12g differs from dense %.12g"
                    r.Lp_formulation.gain g
            | _ -> failf "revised engine failed where dense was optimal");
          (fun () ->
            let pi = Policy_iteration.solve m in
            if not pi.Policy_iteration.converged then failf "policy iteration diverged"
            else if rel_close 1e-6 pi.Policy_iteration.gain g then Pass
            else failf "policy-iteration gain %.12g vs LP gain %.12g" pi.Policy_iteration.gain g);
          (fun () ->
            let vi = Value_iteration.solve ~alpha:vi_alpha ~tol:1e-7 ~max_iter:1_000_000 m in
            if not vi.Value_iteration.converged then failf "value iteration diverged"
            else begin
              (* The greedy policy of a small-discount solve is average
                 optimal up to O(alpha): its exactly evaluated gain may
                 never beat the LP optimum, and must stay close to it. *)
              let gain_vi, _ = Policy_iteration.evaluate_deterministic m vi.Value_iteration.choice in
              if gain_vi < g -. (1e-6 *. (1. +. Float.abs g)) then
                failf "VI's policy gain %.12g beats the 'optimal' LP gain %.12g" gain_vi g
              else if gain_vi > g +. (0.05 *. (1. +. Float.abs g)) then
                failf "VI's policy gain %.12g far above the optimal gain %.12g" gain_vi g
              else Pass
            end);
        ]

let shrink_ctmdp_case (c : Gen_model.ctmdp_case) =
  let n = c.Gen_model.num_states in
  let drop_last_state () =
    if n <= 2 then None
    else
      let n' = n - 1 in
      Some
        {
          Gen_model.num_states = n';
          actions =
            Array.init n' (fun s ->
                List.map
                  (fun (label, transitions, cost, extra) ->
                    (* Remap transitions into the smaller state space; the
                       cycle edge survives as s -> (s + 1) mod n'. *)
                    let tbl = Hashtbl.create 4 in
                    List.iter
                      (fun (t, r) ->
                        let t = t mod n' in
                        if t <> s then
                          Hashtbl.replace tbl t
                            (r +. Option.value ~default:0. (Hashtbl.find_opt tbl t)))
                      transitions;
                    let transitions =
                      Hashtbl.fold (fun t r acc -> (t, r) :: acc) tbl []
                      |> List.sort (fun (a, _) (b, _) -> compare a b)
                    in
                    (label, transitions, cost, extra))
                  c.Gen_model.actions.(s));
        }
  in
  let drop_action s =
    match c.Gen_model.actions.(s) with
    | [] | [ _ ] -> []
    | acts ->
        List.init (List.length acts) (fun a ->
            let actions = Array.copy c.Gen_model.actions in
            actions.(s) <- List.filteri (fun i _ -> i <> a) acts;
            { c with Gen_model.actions })
  in
  (* Replace the [ai]-th action of state [s] in a fresh copy. *)
  let with_action s ai act =
    let actions = Array.copy c.Gen_model.actions in
    actions.(s) <- List.mapi (fun i a -> if i = ai then act else a) c.Gen_model.actions.(s);
    { c with Gen_model.actions }
  in
  let drop_noncycle_transition s =
    List.concat
      (List.mapi
         (fun ai (label, transitions, cost, extra) ->
           List.filter_map
             (fun (t, _) ->
               if t = (s + 1) mod n then None
               else
                 Some
                   (with_action s ai
                      (label, List.filter (fun (t', _) -> t' <> t) transitions, cost, extra)))
             transitions)
         c.Gen_model.actions.(s))
  in
  let zero_cost s =
    List.mapi
      (fun ai (label, transitions, cost, extra) ->
        if cost = 0. then None else Some (with_action s ai (label, transitions, 0., extra)))
      c.Gen_model.actions.(s)
    |> List.filter_map Fun.id
  in
  Option.to_list (drop_last_state ())
  @ List.concat (List.init n drop_action)
  @ List.concat (List.init n drop_noncycle_transition)
  @ List.concat (List.init n zero_cost)

let rec ctmdp_case_to_oracle_case (c : Gen_model.ctmdp_case) =
  {
    label = Printf.sprintf "ctmdp: %d states" c.Gen_model.num_states;
    repro = Gen_model.ctmdp_case_to_string c;
    check = (fun () -> check_ctmdp_case c);
    shrink = (fun () -> List.map ctmdp_case_to_oracle_case (shrink_ctmdp_case c));
  }

let mdp_gain =
  {
    name = "mdp-gain";
    doc = "occupation LP vs policy iteration vs small-discount value iteration";
    generate = (fun ~max_states rng ->
        let knobs =
          { Gen_model.default_ctmdp_knobs with Gen_model.max_states = Int.min 7 max_states }
        in
        ctmdp_case_to_oracle_case (Gen_model.ctmdp_case ~knobs rng));
  }

(* ------------------------------------------------------ 3. sim-analytic *)

(* The simulator's single-client bus is an M/M/1/(k+1) system (the request
   in service has left the buffer).  Product form, generator solve, closed
   forms and the discrete-event simulation must agree. *)

let sim_replications = 5
let sim_horizon = 2500.
let sim_warmup = 100.

let single_bus_arch (c : Gen_model.mm1k_case) =
  let b = Topology.builder () in
  let bus0 = Topology.add_bus b ~service_rate:c.Gen_model.mu "bus" in
  let p0 = Topology.add_processor b ~bus:bus0 "src" in
  let p1 = Topology.add_processor b ~bus:bus0 "dst" in
  let topo = Topology.finalize b in
  let traffic =
    Traffic.create topo [ { Traffic.src = p0; dst = p1; rate = c.Gen_model.lambda } ]
  in
  (topo, traffic, bus0, p0, p1)

let check_mm1k_case (c : Gen_model.mm1k_case) =
  let lambda = c.Gen_model.lambda and mu = c.Gen_model.mu in
  let ksys = c.Gen_model.k + 1 in
  let bd = Birth_death.mm1k ~lambda ~mu ~k:ksys in
  let pi = Birth_death.stationary bd in
  all_of
    [
      (fun () ->
        let s = Array.fold_left ( +. ) 0. pi in
        if Float.abs (s -. 1.) <= 1e-9 then Pass
        else failf "product-form distribution sums to %.12g" s);
      (fun () ->
        (* Product form vs the generic generator-based LU solve. *)
        let pi' = Ctmc.stationary (Birth_death.to_ctmc bd) in
        let err = ref 0. in
        Array.iteri (fun i p -> err := Float.max !err (Float.abs (p -. pi'.(i)))) pi;
        if !err <= 1e-8 then Pass
        else failf "product form vs CTMC stationary: max |diff| = %.3e" !err);
      (fun () ->
        let closed = Birth_death.Mm1k.blocking_probability ~lambda ~mu ~k:ksys in
        if Float.abs (closed -. pi.(ksys)) <= 1e-9 then Pass
        else failf "closed-form blocking %.12g vs stationary tail %.12g" closed pi.(ksys));
      (fun () ->
        (* Steady-state flow balance: accepted inflow = served outflow. *)
        let accepted = lambda *. (1. -. pi.(ksys)) in
        let served = mu *. (1. -. pi.(0)) in
        if rel_close 1e-8 accepted served then Pass
        else failf "flow balance violated: accepted %.12g vs served %.12g" accepted served);
      (fun () ->
        let expected = Birth_death.Mm1k.blocking_probability ~lambda ~mu ~k:ksys in
        let _, traffic, bus0, p0, p1 = single_bus_arch c in
        let allocation =
          Buffer_alloc.make
            [ (bus0, Traffic.Proc_client p0, c.Gen_model.k); (bus0, Traffic.Proc_client p1, 1) ]
        in
        let spec =
          {
            (Sim_run.default_spec ~traffic ~allocation) with
            Sim_run.horizon = sim_horizon;
            warmup = sim_warmup;
            seed = c.Gen_model.sim_seed;
          }
        in
        let agg = Replicate.run ~replications:sim_replications spec in
        let sim = Stats.mean agg.Replicate.loss_fraction in
        let lo, hi = Stats.confidence_interval95 agg.Replicate.loss_fraction in
        let half = (hi -. lo) /. 2. in
        let tol = (4. *. half) +. 0.01 in
        if Float.abs (sim -. expected) <= tol then Pass
        else
          failf "simulated loss fraction %.6g vs analytic %.6g (tolerance %.2g, %d replications)"
            sim expected tol sim_replications);
    ]

let shrink_mm1k_case (c : Gen_model.mm1k_case) =
  let round1 x = Float.round (x *. 10.) /. 10. in
  List.filter_map Fun.id
    [
      (if c.Gen_model.k > 1 then Some { c with Gen_model.k = c.Gen_model.k - 1 } else None);
      (let l = Float.max 0.1 (round1 c.Gen_model.lambda) in
       if l <> c.Gen_model.lambda then Some { c with Gen_model.lambda = l } else None);
      (let m = Float.max 0.1 (round1 c.Gen_model.mu) in
       if m <> c.Gen_model.mu then Some { c with Gen_model.mu = m } else None);
    ]

let mm1k_repro (c : Gen_model.mm1k_case) =
  let topo, traffic, _, _, _ = single_bus_arch c in
  Printf.sprintf "# M/M/1/K cross-check: src buffer capacity %d words, sim seed %d\n%s"
    c.Gen_model.k c.Gen_model.sim_seed
    (Spec_parser.to_string topo traffic)

let rec mm1k_case_to_oracle_case (c : Gen_model.mm1k_case) =
  {
    label =
      Printf.sprintf "mm1k: lambda %g, mu %g, k %d" c.Gen_model.lambda c.Gen_model.mu
        c.Gen_model.k;
    repro = mm1k_repro c;
    check = (fun () -> check_mm1k_case c);
    shrink = (fun () -> List.map mm1k_case_to_oracle_case (shrink_mm1k_case c));
  }

let sim_analytic =
  {
    name = "sim-analytic";
    doc = "M/M/1/K closed forms vs CTMC solve vs replicated simulation";
    generate = (fun ~max_states:_ rng -> mm1k_case_to_oracle_case (Gen_model.mm1k_case rng));
  }

(* ----------------------------------------------------- 4. sizing-bounds *)

type sizing_case = { text : string; budget : int; max_states : int }

(* A shrink candidate must stay solvable: parseable, and every subsystem
   keeping at least one loaded client (Bus_model.build's precondition) —
   otherwise the shrinker would chase unrelated construction errors. *)
let sizing_well_formed (c : sizing_case) =
  match Spec_parser.parse c.text with
  | Error _ -> false
  | Ok (_, traffic) ->
      let split = Splitting.split traffic in
      c.budget >= Splitting.total_clients split
      && Array.for_all
           (fun (s : Splitting.subsystem) ->
             List.exists (fun (_, r) -> r > 0.) s.Splitting.clients)
           split.Splitting.subsystems

let check_sizing_case (c : sizing_case) =
  match Spec_parser.parse c.text with
  | Error e -> failf "repro text no longer parses: %s" e
  | Ok (topo, traffic) ->
      let config solver =
        {
          (Sizing.default_config ~budget:c.budget) with
          Sizing.max_states = c.max_states;
          solver;
        }
      in
      let run solver =
        match Sizing.run (config solver) traffic with
        | r -> Ok r
        | exception Failure msg -> Error msg
      in
      let joint = run Sizing.Joint and separate = run Sizing.Separate in
      (match (joint, separate) with
      | Error msg, _ -> failf "joint sizing failed: %s" msg
      | _, Error msg -> failf "separate sizing failed: %s" msg
      | Ok j, Ok s ->
          all_of
            [
              (fun () ->
                if Buffer_alloc.total j.Sizing.allocation = c.budget then Pass
                else
                  failf "joint allocation spends %d of %d words"
                    (Buffer_alloc.total j.Sizing.allocation) c.budget);
              (fun () ->
                if Buffer_alloc.total s.Sizing.allocation = c.budget then Pass
                else
                  failf "separate allocation spends %d of %d words"
                    (Buffer_alloc.total s.Sizing.allocation) c.budget);
              (fun () ->
                if
                  Float.is_finite j.Sizing.predicted_loss_rate
                  && j.Sizing.predicted_loss_rate >= -1e-9
                  && Float.is_finite s.Sizing.predicted_loss_rate
                  && s.Sizing.predicted_loss_rate >= -1e-9
                then Pass
                else
                  failf "loss-rate predictions out of range: joint %g, separate %g"
                    j.Sizing.predicted_loss_rate s.Sizing.predicted_loss_rate);
              (fun () ->
                if
                  List.for_all
                    (fun (_, _, d) -> Float.is_finite d && d >= 0.)
                    (Sizing.requirements_of_solution j)
                then Pass
                else failf "joint requirements contain negatives or non-finites");
              (fun () ->
                (* The separate solution (per-subsystem occupancy shares)
                   is feasible for the joint LP, so the joint optimum can
                   only be at least as good — the paper's "in one go"
                   claim, checked when neither solve fell back to the
                   unconstrained LP. *)
                if (not j.Sizing.budget_bound_active) || not s.Sizing.budget_bound_active then
                  Pass
                else if
                  j.Sizing.predicted_loss_rate
                  <= s.Sizing.predicted_loss_rate
                     +. (1e-6 *. (1. +. Float.abs s.Sizing.predicted_loss_rate))
                then Pass
                else
                  failf "joint loss %.12g worse than separate %.12g"
                    j.Sizing.predicted_loss_rate s.Sizing.predicted_loss_rate);
              (fun () ->
                (* Repro dumps must round-trip through the parser. *)
                match Spec_parser.parse (Spec_parser.to_string topo traffic) with
                | Ok _ -> Pass
                | Error e -> failf "to_string output does not re-parse: %s" e);
            ])

let shrink_sizing_case (c : sizing_case) =
  let lines = String.split_on_char '\n' c.text in
  let drop_line i =
    let text =
      String.concat "\n" (List.filteri (fun j _ -> j <> i) lines)
    in
    { c with text }
  in
  let candidates =
    List.init (List.length lines) drop_line
    @ (if c.budget > 2 then [ { c with budget = c.budget / 2 } ] else [])
    @ if c.max_states > 8 then [ { c with max_states = c.max_states / 2 } ] else []
  in
  List.filter sizing_well_formed candidates

let rec sizing_case_to_oracle_case (c : sizing_case) =
  {
    label = Printf.sprintf "sizing: budget %d, max_states %d" c.budget c.max_states;
    repro =
      Printf.sprintf "# sizing cross-check: budget %d words, max_states %d\n%s" c.budget
        c.max_states c.text;
    check = (fun () -> check_sizing_case c);
    shrink = (fun () -> List.map sizing_case_to_oracle_case (shrink_sizing_case c));
  }

let sizing_bounds =
  {
    name = "sizing-bounds";
    doc = "joint vs separate sizing: bound ordering and budget conservation";
    generate =
      (fun ~max_states rng ->
        let topo, traffic = Gen_model.arch rng in
        let nclients = Splitting.total_clients (Splitting.split traffic) in
        let budget = nclients * (2 + Rng.int rng 3) in
        sizing_case_to_oracle_case
          {
            text = Spec_parser.to_string topo traffic;
            budget;
            max_states = Int.max 8 (Int.min max_states 64);
          });
  }

(* -------------------------------------------------- 5. split-monolithic *)

(* Two independent solvers of the monolithic quadratic closure — damped
   Newton on the balance residual, and a Picard fixed point built from
   Birth_death product forms — plus the split linear solution, which must
   agree exactly on the decoupled (cross_fraction = 0) boundary. *)

let bd_stationary ~birth ~death ~k =
  Birth_death.stationary
    (Birth_death.create ~births:(Array.make k birth) ~deaths:(Array.make k death))

(* Given (x_0, y_0), the closure's effective rates make both buses plain
   constant-rate birth-death chains; iterate to a fixed point. *)
let picard (s : Monolithic.spec) ~x0:px ~y0:py =
  let f = s.Monolithic.cross_fraction in
  let rec go px py iter =
    if iter > 500 then None
    else begin
      let mu_x_eff = s.Monolithic.mu_x *. (1. -. f +. (f *. py)) in
      let xd = bd_stationary ~birth:s.Monolithic.lambda_x ~death:mu_x_eff ~k:s.Monolithic.kx in
      let cross_in = f *. mu_x_eff *. (1. -. xd.(0)) in
      let mu_y_eff = s.Monolithic.mu_y *. (1. -. (f *. (1. -. xd.(0)))) in
      let yd =
        bd_stationary ~birth:(s.Monolithic.lambda_y +. cross_in) ~death:mu_y_eff
          ~k:s.Monolithic.ky
      in
      let delta = Float.abs (xd.(0) -. px) +. Float.abs (yd.(0) -. py) in
      if delta < 1e-13 then Some (Array.append xd yd) else go xd.(0) yd.(0) (iter + 1)
    end
  in
  go px py 0

let residual_inf s v =
  Array.fold_left (fun acc r -> Float.max acc (Float.abs r)) 0. (Monolithic.residual s v)

let check_monolithic_case (s : Monolithic.spec) =
  let split = Monolithic.solve_split s in
  let normalized name (d : float array) () =
    let sum = Array.fold_left ( +. ) 0. d in
    if Float.abs (sum -. 1.) <= 1e-7 && Array.for_all (fun p -> p >= -1e-9) d then Pass
    else failf "%s distribution invalid (sum %.12g)" name sum
  in
  all_of
    [
      normalized "bus X" split.Monolithic.x_dist;
      normalized "bus Y" split.Monolithic.y_dist;
      normalized "bridge" split.Monolithic.bridge_dist;
      (fun () ->
        (* After insertion, bus X is exactly M/M/1/K. *)
        let closed =
          Birth_death.Mm1k.loss_rate ~lambda:s.Monolithic.lambda_x ~mu:s.Monolithic.mu_x
            ~k:s.Monolithic.kx
        in
        if rel_close 1e-7 closed split.Monolithic.x_loss then Pass
        else failf "split bus-X loss %.12g vs closed form %.12g" split.Monolithic.x_loss closed);
      (fun () ->
        let start = Array.append split.Monolithic.x_dist split.Monolithic.y_dist in
        match picard s ~x0:split.Monolithic.x_dist.(0) ~y0:split.Monolithic.y_dist.(0) with
        | None -> Pass (* no attractive fixed point from this start: nothing to compare *)
        | Some fp ->
            all_of
              [
                (fun () ->
                  (* The Picard root is computed through Birth_death product
                     forms — an independent encoding of the same closure —
                     so it must satisfy Monolithic.residual. *)
                  let r = residual_inf s fp in
                  if r <= 1e-7 then Pass
                  else failf "picard fixed point violates the balance residual: %.3e" r);
                (fun () ->
                  let r =
                    Newton.solve ~damped:true ~tol:1e-11 ~f:(Monolithic.residual s) ~x0:start ()
                  in
                  if not r.Newton.converged then
                    failf "damped Newton diverged from the split warm start (residual %.3e)"
                      r.Newton.residual
                  else begin
                    let diff = ref 0. in
                    Array.iteri
                      (fun i v -> diff := Float.max !diff (Float.abs (v -. fp.(i))))
                      r.Newton.solution;
                    if !diff <= 1e-5 then Pass
                    else if
                      (* Two tiny residuals at different points = the
                         closure's known bistability, not a solver bug. *)
                      residual_inf s r.Newton.solution <= 1e-8 && residual_inf s fp <= 1e-8
                    then Pass
                    else
                      failf "Newton and Picard disagree (max |diff| %.3e) without both being roots"
                        !diff
                  end);
                (fun () ->
                  if s.Monolithic.cross_fraction <> 0. then Pass
                  else begin
                    (* Decoupled boundary: the monolithic root and the split
                       solution describe the same two independent queues. *)
                    let diff = ref 0. in
                    Array.iteri
                      (fun i p -> diff := Float.max !diff (Float.abs (p -. fp.(i))))
                      (Array.append split.Monolithic.x_dist split.Monolithic.y_dist);
                    if !diff <= 1e-7 then Pass
                    else
                      failf "cross_fraction = 0 but split and monolithic differ by %.3e" !diff
                  end);
              ])
    ]

let shrink_monolithic_case (s : Monolithic.spec) =
  let round1 x = Float.max 0.1 (Float.round (x *. 10.) /. 10.) in
  List.filter_map Fun.id
    [
      (if s.Monolithic.kx > 1 then Some { s with Monolithic.kx = s.Monolithic.kx - 1 } else None);
      (if s.Monolithic.ky > 1 then Some { s with Monolithic.ky = s.Monolithic.ky - 1 } else None);
      (if s.Monolithic.cross_fraction > 0. then Some { s with Monolithic.cross_fraction = 0. }
       else None);
      (let l = round1 s.Monolithic.lambda_x in
       if l <> s.Monolithic.lambda_x && l < s.Monolithic.mu_x then
         Some { s with Monolithic.lambda_x = l }
       else None);
      (let l = round1 s.Monolithic.lambda_y in
       if l <> s.Monolithic.lambda_y && l < s.Monolithic.mu_y then
         Some { s with Monolithic.lambda_y = l }
       else None);
    ]

let rec monolithic_case_to_oracle_case (s : Monolithic.spec) =
  {
    label =
      Printf.sprintf "monolithic: kx %d, ky %d, cross %g" s.Monolithic.kx s.Monolithic.ky
        s.Monolithic.cross_fraction;
    repro = Gen_model.monolithic_to_string s;
    check = (fun () -> check_monolithic_case s);
    shrink = (fun () -> List.map monolithic_case_to_oracle_case (shrink_monolithic_case s));
  }

let split_monolithic =
  {
    name = "split-monolithic";
    doc = "split linear solution vs Newton and Picard on the quadratic closure";
    generate =
      (fun ~max_states:_ rng -> monolithic_case_to_oracle_case (Gen_model.monolithic_spec rng));
  }

(* -------------------------------------------------------- 6. warm-cold *)

(* Warm-started, incrementally patched, and cached solves must reproduce
   their cold baselines: re-using an optimal basis (from the same or a
   perturbed LP) must not move the objective, a rate-patched CTMC must be
   bitwise the full rebuild, seeded iterations must converge to the cold
   fixed point, and a cache-served sizing run must be bitwise the
   cache-off run. *)

let warm_tol = 1e-9

let check_warm_lp (c : Gen_model.lp_case) =
  let fresh () = Gen_model.lp_of_case c in
  match Lp.solve ~engine:Lp.Revised (fresh ()) with
  | Lp.Infeasible | Lp.Unbounded -> Pass (* no optimal basis to warm from *)
  | Lp.Optimal cold ->
      all_of
        [
          (fun () ->
            (* Re-solving from the optimal basis itself: the warm path must
               accept it (or fall back) and land on the same objective. *)
            match Lp.solve ~warm_basis:cold.Lp.basis (fresh ()) with
            | Lp.Optimal warm ->
                if rel_close warm_tol warm.Lp.objective cold.Lp.objective then Pass
                else
                  failf "same-problem warm restart: objective %.15g vs cold %.15g"
                    warm.Lp.objective cold.Lp.objective
            | o -> failf "same-problem warm restart reclassified as %s" (outcome_name o));
          (fun () ->
            (* The canonical warm start: a basis taken from a problem with
               nudged right-hand sides.  Whether re-used or rejected, the
               answer must match the cold one. *)
            let nudged =
              {
                c with
                Gen_model.rows =
                  List.map (fun (t, s, rhs) -> (t, s, rhs +. 0.125)) c.Gen_model.rows;
              }
            in
            match Lp.solve ~engine:Lp.Revised (Gen_model.lp_of_case nudged) with
            | Lp.Infeasible | Lp.Unbounded -> Pass
            | Lp.Optimal near -> (
                match Lp.solve ~warm_basis:near.Lp.basis (fresh ()) with
                | Lp.Optimal warm ->
                    if rel_close warm_tol warm.Lp.objective cold.Lp.objective then Pass
                    else
                      failf "perturbed-basis warm start: objective %.15g vs cold %.15g"
                        warm.Lp.objective cold.Lp.objective
                | o -> failf "perturbed-basis warm start reclassified as %s" (outcome_name o)));
        ]

let rec warm_lp_to_oracle_case (c : Gen_model.lp_case) =
  {
    label =
      Printf.sprintf "warm lp: %d vars, %d rows" (Array.length c.Gen_model.obj)
        (List.length c.Gen_model.rows);
    repro = "# warm-cold kind: lp\n" ^ Gen_model.lp_case_to_string c;
    check = (fun () -> check_warm_lp c);
    shrink = (fun () -> List.map warm_lp_to_oracle_case (shrink_lp_case c));
  }

(* The chain induced by each state's first action; the generated cycle
   edge makes it irreducible. *)
let first_choice_rates (c : Gen_model.ctmdp_case) =
  let triples = ref [] in
  Array.iteri
    (fun s acts ->
      match acts with
      | (_, transitions, _, _) :: _ ->
          List.iter (fun (t, r) -> if r > 0. then triples := (s, t, r) :: !triples) transitions
      | [] -> ())
    c.Gen_model.actions;
  List.rev !triples

let same_generator a b =
  let n = Ctmc.dim a in
  if Ctmc.dim b <> n then false
  else begin
    let same = ref true in
    for i = 0 to n - 1 do
      if Int64.bits_of_float (Ctmc.exit_rate a i) <> Int64.bits_of_float (Ctmc.exit_rate b i)
      then same := false;
      for j = 0 to n - 1 do
        if
          i <> j
          && Int64.bits_of_float (Ctmc.rate a i j) <> Int64.bits_of_float (Ctmc.rate b i j)
        then same := false
      done
    done;
    !same
  end

let check_warm_ctmdp (c : Gen_model.ctmdp_case) =
  let m = Gen_model.ctmdp_of_case c in
  let n = c.Gen_model.num_states in
  let rates = first_choice_rates c in
  let chain = Ctmc.of_rates n rates in
  all_of
    [
      (fun () ->
        (* Occupation LP warm-restarted from its own optimal basis. *)
        match Lp.solve ~engine:Lp.Revised (Lp_formulation.build m) with
        | Lp.Infeasible | Lp.Unbounded -> failf "occupation LP not optimal on a valid CTMDP"
        | Lp.Optimal cold -> (
            match Lp.solve ~warm_basis:cold.Lp.basis (Lp_formulation.build m) with
            | Lp.Optimal warm ->
                if rel_close warm_tol warm.Lp.objective cold.Lp.objective then Pass
                else
                  failf "occupation LP warm gain %.15g vs cold %.15g" warm.Lp.objective
                    cold.Lp.objective
            | o -> failf "occupation LP warm restart reclassified as %s" (outcome_name o)));
      (fun () ->
        (* Same-pattern rate patch vs full rebuild: bitwise. *)
        let scaled = List.map (fun (i, j, r) -> (i, j, r *. 1.5)) rates in
        match Ctmc.patch_rates chain scaled with
        | None -> failf "patch_rates rejected a same-pattern rate change"
        | Some patched ->
            if same_generator patched (Ctmc.of_rates n scaled) then Pass
            else failf "patched generator differs bitwise from the rebuild");
      (fun () ->
        (* Power iteration seeded with a nearby chain's stationary vector
           must land on the cold fixed point. *)
        let scaled = List.map (fun (i, j, r) -> (i, j, r *. 1.25)) rates in
        let nearby = Ctmc.of_rates n scaled in
        let seed = Ctmc.stationary_iterative chain in
        let pi_cold = Ctmc.stationary_iterative nearby in
        let pi_seeded = Ctmc.stationary_iterative ~init:seed nearby in
        let diff = ref 0. in
        Array.iteri
          (fun i p -> diff := Float.max !diff (Float.abs (p -. pi_cold.(i))))
          pi_seeded;
        if !diff <= 1e-8 && Ctmc.stationary_residual nearby pi_seeded <= 1e-8 then Pass
        else
          failf "seeded stationary differs from cold by %.3e (residual %.3e)" !diff
            (Ctmc.stationary_residual nearby pi_seeded));
      (fun () ->
        (* Policy evaluation seeded with its own bias: same gain. *)
        let choice = Array.make n 0 in
        let g_cold, h_cold = Policy_iteration.evaluate_deterministic_iterative m choice in
        let g_seed, _ =
          Policy_iteration.evaluate_deterministic_iterative ~init_bias:h_cold m choice
        in
        if rel_close 1e-8 g_cold g_seed then Pass
        else failf "bias-seeded evaluation gain %.15g vs cold %.15g" g_seed g_cold);
    ]

let rec warm_ctmdp_to_oracle_case (c : Gen_model.ctmdp_case) =
  {
    label = Printf.sprintf "warm ctmdp: %d states" c.Gen_model.num_states;
    repro = "# warm-cold kind: ctmdp\n" ^ Gen_model.ctmdp_case_to_string c;
    check = (fun () -> check_warm_ctmdp c);
    shrink = (fun () -> List.map warm_ctmdp_to_oracle_case (shrink_ctmdp_case c));
  }

let bits = Int64.bits_of_float

let check_warm_sizing (c : sizing_case) =
  match Spec_parser.parse c.text with
  | Error e -> failf "repro text no longer parses: %s" e
  | Ok (_, traffic) ->
      let config =
        { (Sizing.default_config ~budget:c.budget) with Sizing.max_states = c.max_states }
      in
      let was_cached = Bufsize_numeric.Solve_cache.enabled () in
      let was_warm = Lp.warm_start_enabled () in
      Fun.protect
        ~finally:(fun () ->
          Bufsize_numeric.Solve_cache.set_enabled was_cached;
          Lp.set_warm_start was_warm;
          Bufsize_numeric.Solve_cache.clear_all ())
        (fun () ->
          (* Cold: no caching, no warm starts. *)
          Bufsize_numeric.Solve_cache.set_enabled false;
          Lp.set_warm_start false;
          let cold = Sizing.run config traffic in
          (* Warm: caches on (empty), warm-start hand-off on.  The first
             run populates, the second must be served verbatim. *)
          Bufsize_numeric.Solve_cache.set_enabled true;
          Bufsize_numeric.Solve_cache.clear_all ();
          Lp.set_warm_start true;
          let w1 = Sizing.run config traffic in
          let w2 = Sizing.run config traffic in
          let same_run a b =
            a.Sizing.allocation = b.Sizing.allocation
            && bits a.Sizing.predicted_loss_rate = bits b.Sizing.predicted_loss_rate
            && bits a.Sizing.words_per_level = bits b.Sizing.words_per_level
            && a.Sizing.budget_bound_active = b.Sizing.budget_bound_active
          in
          all_of
            [
              (fun () ->
                if same_run cold w1 then Pass
                else
                  failf "cached+warm sizing differs from cold (loss %.17g vs %.17g)"
                    w1.Sizing.predicted_loss_rate cold.Sizing.predicted_loss_rate);
              (fun () ->
                if same_run w1 w2 then Pass
                else
                  failf "cache-served rerun differs from its own first run (loss %.17g vs %.17g)"
                    w2.Sizing.predicted_loss_rate w1.Sizing.predicted_loss_rate);
            ])

let warm_sizing_header (c : sizing_case) =
  Printf.sprintf "# warm-cold kind: sizing\n# warm-cold sizing: budget %d words, max_states %d\n%s"
    c.budget c.max_states c.text

let rec warm_sizing_to_oracle_case (c : sizing_case) =
  {
    label = Printf.sprintf "warm sizing: budget %d, max_states %d" c.budget c.max_states;
    repro = warm_sizing_header c;
    check = (fun () -> check_warm_sizing c);
    shrink = (fun () -> List.map warm_sizing_to_oracle_case (shrink_sizing_case c));
  }

let warm_cold =
  {
    name = "warm-cold";
    doc = "warm-started, patched, and cached solves vs their cold baselines";
    generate =
      (fun ~max_states rng ->
        match Rng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 -> warm_lp_to_oracle_case (Gen_model.lp_case rng)
        | 5 | 6 | 7 ->
            let knobs =
              { Gen_model.default_ctmdp_knobs with Gen_model.max_states = Int.min 7 max_states }
            in
            warm_ctmdp_to_oracle_case (Gen_model.ctmdp_case ~knobs rng)
        | _ ->
            let topo, traffic = Gen_model.arch rng in
            let nclients = Splitting.total_clients (Splitting.split traffic) in
            let budget = nclients * (2 + Rng.int rng 3) in
            warm_sizing_to_oracle_case
              {
                text = Spec_parser.to_string topo traffic;
                budget;
                max_states = Int.max 8 (Int.min max_states 48);
              });
  }

(* -------------------------------------------------------------- 7. kron *)

(* The Kronecker shuffle SpMV vs the materialized joint generator: on
   small random SANs the descriptor must agree with the explicit CSR
   matrix to near machine precision (SpMV, transposed SpMV, diagonal,
   adjointness) and the Kronecker-side power iteration must land on the
   same stationary vector as the dense-side GTH solve. *)

module San = Bufsize_prob.San
module Kronecker = Bufsize_numeric.Kronecker
module Sparse = Bufsize_numeric.Sparse

let max_abs_diff a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let inf_norm v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

(* Deterministic dense probe vector — replayed repros re-run the exact
   same products without carrying an RNG in the repro file. *)
let probe n =
  Array.init n (fun i ->
      (if i mod 2 = 0 then 1. else -1.) *. (1. +. (float_of_int ((17 * i) mod 29) /. 7.)))

let check_san_case (c : Gen_model.san_case) =
  match Gen_model.san_of_case c with
  | exception Invalid_argument msg -> failf "san construction rejected: %s" msg
  | san ->
      let desc = San.descriptor san in
      let n = San.num_states san in
      let m = Kronecker.materialize desc in
      let x = probe n in
      all_of
        [
          (fun () ->
            (* Mixed-radix index codec round-trips over the whole space. *)
            let bad = ref None in
            for idx = 0 to n - 1 do
              let back = San.encode san (San.decode san idx) in
              if back <> idx && !bad = None then bad := Some (idx, back)
            done;
            match !bad with
            | None -> Pass
            | Some (idx, back) -> failf "encode/decode round trip: %d -> %d" idx back);
          (fun () ->
            (* Generator invariants of the materialized descriptor. *)
            let worst_row = inf_norm (Sparse.row_sums m) in
            if worst_row > 1e-9 then failf "generator row sums reach %.3e" worst_row
            else begin
              let neg = ref 0. in
              Sparse.iter m (fun i j v -> if i <> j && v < !neg then neg := v);
              if !neg < -1e-12 then failf "negative off-diagonal %.3e" !neg else Pass
            end);
          (fun () ->
            let shuffle = Kronecker.mul_vec desc x in
            let dense = Sparse.mul_vec m x in
            let diff = max_abs_diff shuffle dense in
            let tol = 1e-12 *. (1. +. inf_norm dense) in
            if diff <= tol then Pass
            else failf "SpMV: shuffle vs materialized differ by %.3e" diff);
          (fun () ->
            let shuffle = Kronecker.mul_vec_t desc x in
            let dense = Sparse.mul_vec_t m x in
            let diff = max_abs_diff shuffle dense in
            let tol = 1e-12 *. (1. +. inf_norm dense) in
            if diff <= tol then Pass
            else failf "transposed SpMV: shuffle vs materialized differ by %.3e" diff);
          (fun () ->
            (* <Ax, y> = <x, A'y> with independent shuffle passes. *)
            let y = Array.init n (fun i -> Float.cos (float_of_int (i + 1))) in
            let ax = Kronecker.mul_vec desc x and aty = Kronecker.mul_vec_t desc y in
            let dot a b =
              let acc = ref 0. in
              Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
              !acc
            in
            let lhs = dot ax y and rhs = dot x aty in
            if rel_close 1e-11 lhs rhs then Pass
            else failf "adjointness: <Ax,y> %.12g vs <x,A'y> %.12g" lhs rhs);
          (fun () ->
            let kd = Kronecker.diagonal desc in
            let md = Array.init n (fun i -> Sparse.get m i i) in
            let diff = max_abs_diff kd md in
            if diff <= 1e-12 *. (1. +. inf_norm md) then Pass
            else failf "diagonal: Kronecker vs materialized differ by %.3e" diff);
          (fun () ->
            (* Stationary vector: Kronecker power iteration vs the dense
               GTH solve on the materialized chain, plus warm re-seeding
               staying on the fixed point. *)
            let pi_kron, _, converged = San.stationary_report san in
            if not converged then failf "Kronecker power iteration did not converge"
            else begin
              let pi_dense = Ctmc.stationary (San.to_ctmc san) in
              let diff = max_abs_diff pi_kron pi_dense in
              if diff > 1e-8 then
                failf "stationary: Kronecker vs materialized differ by %.3e" diff
              else begin
                let reseeded = San.stationary ~init:pi_kron san in
                let drift = max_abs_diff reseeded pi_kron in
                if drift <= 1e-10 then Pass
                else failf "warm re-seed moved the fixed point by %.3e" drift
              end
            end);
        ]

let shrink_san_case (c : Gen_model.san_case) =
  let drop_event i =
    { c with Gen_model.events = List.filteri (fun j _ -> j <> i) c.Gen_model.events }
  in
  let drop_events = List.mapi (fun i _ -> drop_event i) c.Gen_model.events in
  let drop_scalings =
    List.concat
      (List.mapi
         (fun i (e : San.event) ->
           List.map
             (fun (a, _) ->
               {
                 c with
                 Gen_model.events =
                   List.mapi
                     (fun j ev ->
                       if j <> i then ev
                       else
                         {
                           ev with
                           San.scaling =
                             List.filter (fun (b, _) -> b <> a) ev.San.scaling;
                         })
                     c.Gen_model.events;
               })
             e.San.scaling)
         c.Gen_model.events)
  in
  let drop_participants =
    List.concat
      (List.mapi
         (fun i (e : San.event) ->
           if List.length e.San.routing < 2 then []
           else
             List.map
               (fun (a, _) ->
                 {
                   c with
                   Gen_model.events =
                     List.mapi
                       (fun j ev ->
                         if j <> i then ev
                         else
                           {
                             ev with
                             San.routing =
                               List.filter (fun (b, _) -> b <> a) ev.San.routing;
                           })
                       c.Gen_model.events;
                 })
               e.San.routing)
         c.Gen_model.events)
  in
  (* Drop local transitions that are not part of the irreducibility
     cycle, so shrunk chains keep a unique stationary vector. *)
  let drop_locals =
    List.concat
      (List.mapi
         (fun i (a : San.automaton) ->
           List.filteri
             (fun j _ ->
               match List.nth a.San.local j with
               | f, t, _ -> t <> (f + 1) mod a.San.size)
             (List.mapi (fun j _ -> j) a.San.local)
           |> List.map (fun j ->
                  {
                    c with
                    Gen_model.automata =
                      List.mapi
                        (fun k (b : San.automaton) ->
                          if k <> i then b
                          else
                            {
                              b with
                              San.local = List.filteri (fun l _ -> l <> j) b.San.local;
                            })
                        c.Gen_model.automata;
                  }))
         c.Gen_model.automata)
  in
  drop_events @ drop_participants @ drop_scalings @ drop_locals

let rec san_case_to_oracle_case (c : Gen_model.san_case) =
  {
    label =
      Printf.sprintf "san: %d automata, %d events, %d joint states"
        (List.length c.Gen_model.automata)
        (List.length c.Gen_model.events)
        (List.fold_left (fun acc (a : San.automaton) -> acc * a.San.size) 1 c.Gen_model.automata);
    repro = Gen_model.san_case_to_string c;
    check = (fun () -> check_san_case c);
    shrink = (fun () -> List.map san_case_to_oracle_case (shrink_san_case c));
  }

let kron =
  {
    name = "kron";
    doc = "Kronecker shuffle SpMV and stationary solve vs the materialized generator";
    generate = (fun ~max_states:_ rng -> san_case_to_oracle_case (Gen_model.san_case rng));
  }

(* --------------------------------------------------------------- 8. topo *)

(* Mesh/torus NoC instances through the whole pipeline: dimension-order
   route lengths must equal grid distances, the per-edge transit flows
   folded along routes must agree with the bridge clients the split
   derives, the shared-pool (DAMQ) optimum must never lose more than the
   static partition it can mimic at equal capacity, and the discrete-event
   simulation of the sized allocation must conserve the offered traffic
   and respond monotonically to extra buffer space. *)

module Bus_model = Bufsize_soc.Bus_model

type topo_case = {
  topo_text : string;
  topo_budget : int;
  topo_max_states : int;
  topo_sim_seed : int;
}

let topo_horizon = 800.
let topo_warmup = 100.
let topo_replications = 3

let topo_well_formed (c : topo_case) =
  match Spec_parser.parse c.topo_text with
  | Error _ -> false
  | Ok (_, traffic) ->
      Array.length (Traffic.flows traffic) > 0
      &&
      let split = Splitting.split traffic in
      c.topo_budget >= Splitting.total_clients split
      && Array.for_all
           (fun (s : Splitting.subsystem) ->
             List.exists (fun (_, r) -> r > 0.) s.Splitting.clients)
           split.Splitting.subsystems

let grid_hop_distance (g : Topology.grid) r1 c1 r2 c2 =
  let axis len a b =
    let d = abs (a - b) in
    if g.Topology.grid_kind = Topology.Torus && len > 2 then Int.min d (len - d) else d
  in
  axis g.Topology.cols c1 c2 + axis g.Topology.rows r1 r2

let check_topo_case (c : topo_case) =
  match Spec_parser.parse c.topo_text with
  | Error e -> failf "repro text no longer parses: %s" e
  | Ok (topo, traffic) ->
      let split = Splitting.split traffic in
      all_of
        [
          (fun () ->
            (* XY routing: within a grid, the routed hop count must equal
               the dimension-order distance (manhattan, with torus wrap on
               dimensions longer than 2). *)
            let grids = Topology.grids topo in
            let bad = ref None in
            Array.iter
              (fun (fl : Traffic.flow) ->
                let b1 = (Topology.processor topo fl.Traffic.src).Topology.home_bus in
                let b2 = (Topology.processor topo fl.Traffic.dst).Topology.home_bus in
                match (Topology.grid_cell topo b1, Topology.grid_cell topo b2) with
                | Some (g1, r1, c1), Some (g2, r2, c2) when g1 = g2 ->
                    let expected = grid_hop_distance grids.(g1) r1 c1 r2 c2 in
                    let got =
                      match Topology.route topo b1 b2 with
                      | Some route -> List.length route
                      | None -> -1
                    in
                    if got <> expected && !bad = None then
                      bad := Some (fl, expected, got)
                | _ -> ())
              (Traffic.flows traffic);
            match !bad with
            | None -> Pass
            | Some (fl, expected, got) ->
                failf "route of flow %d -> %d has %d hops, dimension-order distance is %d"
                  fl.Traffic.src fl.Traffic.dst got expected);
          (fun () ->
            (* Transit folding: the per-edge flows folded along routed hop
               sequences must match the bridge clients the split derives
               from Traffic.clients_of_bus — two independent computations
               of the same loads. *)
            let tbl = Hashtbl.create 16 in
            List.iter
              (fun (key, r) -> Hashtbl.replace tbl key r)
              (Splitting.edge_flows traffic);
            let err = ref None in
            Array.iter
              (fun (s : Splitting.subsystem) ->
                List.iter
                  (fun (cl, rate) ->
                    match cl with
                    | Traffic.Proc_client _ -> ()
                    | Traffic.Bridge_client { bridge; into_bus } -> (
                        let key = (bridge, into_bus) in
                        match Hashtbl.find_opt tbl key with
                        | Some r when rel_close 1e-9 r rate -> Hashtbl.remove tbl key
                        | Some r ->
                            if !err = None then
                              err :=
                                Some
                                  (Printf.sprintf
                                     "bridge %d into bus %d: split rate %.12g vs folded %.12g"
                                     bridge into_bus rate r)
                        | None ->
                            if !err = None then
                              err :=
                                Some
                                  (Printf.sprintf
                                     "bridge %d into bus %d carries %.12g but edge_flows has no entry"
                                     bridge into_bus rate)))
                  s.Splitting.clients)
              split.Splitting.subsystems;
            match !err with
            | Some e -> failf "%s" e
            | None ->
                if Hashtbl.length tbl = 0 then Pass
                else
                  failf "%d folded edge flows have no matching bridge client"
                    (Hashtbl.length tbl));
          (fun () ->
            (* Source conservation: proc-client rates across all subsystems
               must sum to the offered traffic (each flow loads exactly its
               source processor's buffer). *)
            let total = Traffic.total_offered traffic in
            let from_split =
              Array.fold_left
                (fun acc (s : Splitting.subsystem) ->
                  List.fold_left
                    (fun acc (cl, r) ->
                      match cl with Traffic.Proc_client _ -> acc +. r | _ -> acc)
                    acc s.Splitting.clients)
                0. split.Splitting.subsystems
            in
            if rel_close 1e-9 total from_split then Pass
            else failf "proc-client rates sum to %.12g but flows offer %.12g" from_split total);
          (fun () ->
            (* DAMQ never worse: at equal capacity the shared pool's
               unconstrained LP optimum cannot exceed the static
               partition's — the static admission rule is one of its
               actions.  Checked on the raw LP gains, per subsystem. *)
            all_of
              (Array.to_list split.Splitting.subsystems
              |> List.map (fun (sub : Splitting.subsystem) () ->
                     let nloaded =
                       List.length (List.filter (fun (_, r) -> r > 0.) sub.Splitting.clients)
                     in
                     if nloaded < 2 then Pass (* one client has nothing to share with *)
                     else begin
                       let levels =
                         Bus_model.choose_levels ~max_states:c.topo_max_states
                           sub.Splitting.clients
                       in
                       let model = Bus_model.build ~levels sub in
                       match Lp_formulation.solve_diag (Bus_model.ctmdp model) with
                       | Some (Lp_formulation.Optimal st), _ -> (
                           let guard = Int.max 512 (4 * c.topo_max_states) in
                           match
                             Bus_model.Shared.build ~static_levels:levels ~max_states:guard
                               ~capacity:(Bus_model.total_levels model) sub
                           with
                           | exception Invalid_argument _ ->
                               Pass (* pool state space over the guard *)
                           | shared -> (
                               match
                                 Lp_formulation.solve_diag (Bus_model.Shared.ctmdp shared)
                               with
                               | Some (Lp_formulation.Optimal sh), _ ->
                                   let sg = st.Lp_formulation.gain
                                   and dg = sh.Lp_formulation.gain in
                                   let tol = 1e-7 *. (1. +. Float.abs sg) in
                                   if dg < -.tol then
                                     failf "bus %s: negative shared-pool loss %.12g"
                                       sub.Splitting.bus_name dg
                                   else if dg <= sg +. tol then Pass
                                   else
                                     failf
                                       "bus %s: shared pool loses %.12g, static partition %.12g"
                                       sub.Splitting.bus_name dg sg
                               | _ ->
                                   failf "bus %s: shared-pool LP failed"
                                     sub.Splitting.bus_name))
                       | _ -> failf "bus %s: static LP failed" sub.Splitting.bus_name
                     end)));
          (fun () ->
            (* DES cross-check: simulate the sized allocation. *)
            let config =
              {
                (Sizing.default_config ~budget:c.topo_budget) with
                Sizing.max_states = c.topo_max_states;
              }
            in
            match Sizing.run config traffic with
            | exception Failure msg -> failf "sizing failed on the grid: %s" msg
            | result ->
                let sim allocation =
                  let spec =
                    {
                      (Sim_run.default_spec ~traffic ~allocation) with
                      Sim_run.horizon = topo_horizon;
                      warmup = topo_warmup;
                      seed = c.topo_sim_seed;
                    }
                  in
                  Replicate.run ~replications:topo_replications spec
                in
                let agg = sim result.Sizing.allocation in
                let span = topo_horizon -. topo_warmup in
                all_of
                  [
                    (fun () ->
                      let lf = Stats.mean agg.Replicate.loss_fraction in
                      if Float.is_finite lf && lf >= -1e-9 && lf <= 1. +. 1e-9 then Pass
                      else failf "simulated loss fraction %.6g out of range" lf);
                    (fun () ->
                      (* Every source is a Poisson stream: measured offered
                         rates must match the spec within the replication
                         CI. *)
                      let bad = ref None in
                      Array.iteri
                        (fun p st ->
                          let expected = Traffic.offered_by_proc traffic p in
                          let measured = Stats.mean st /. span in
                          let lo, hi = Stats.confidence_interval95 st in
                          let half = (hi -. lo) /. 2. /. span in
                          let tol = (4. *. half) +. (0.05 *. expected) +. 0.02 in
                          if Float.abs (measured -. expected) > tol && !bad = None then
                            bad := Some (p, measured, expected, tol))
                        agg.Replicate.per_proc_offered;
                      match !bad with
                      | None -> Pass
                      | Some (p, m, e, tol) ->
                          failf
                            "proc %d offered %.6g requests per time unit, spec says %.6g (tolerance %.2g)"
                            p m e tol);
                    (fun () ->
                      (* Doubling every buffer must not increase the loss
                         (beyond replication noise). *)
                      let doubled =
                        Buffer_alloc.make
                          (Array.to_list
                             (Array.map
                                (fun (e : Buffer_alloc.entry) ->
                                  (e.Buffer_alloc.bus, e.Buffer_alloc.client,
                                   2 * e.Buffer_alloc.words))
                                result.Sizing.allocation.Buffer_alloc.entries))
                      in
                      let agg2 = sim doubled in
                      let lf1 = Stats.mean agg.Replicate.loss_fraction
                      and lf2 = Stats.mean agg2.Replicate.loss_fraction in
                      let lo, hi = Stats.confidence_interval95 agg.Replicate.loss_fraction in
                      let half = (hi -. lo) /. 2. in
                      if lf2 <= lf1 +. (4. *. half) +. 0.02 then Pass
                      else
                        failf
                          "doubling all buffers raised the simulated loss fraction from %.6g to %.6g"
                          lf1 lf2);
                  ]);
        ]

let shrink_topo_case (c : topo_case) =
  let lines = String.split_on_char '\n' c.topo_text in
  let drop_line i =
    { c with topo_text = String.concat "\n" (List.filteri (fun j _ -> j <> i) lines) }
  in
  let candidates =
    List.init (List.length lines) drop_line
    @ (if c.topo_budget > 2 then [ { c with topo_budget = c.topo_budget / 2 } ] else [])
    @
    if c.topo_max_states > 8 then [ { c with topo_max_states = c.topo_max_states / 2 } ]
    else []
  in
  List.filter topo_well_formed candidates

let topo_label (c : topo_case) =
  let head =
    match String.split_on_char '\n' c.topo_text |> List.filter (fun l -> l <> "" && l.[0] <> '#') with
    | first :: _ -> first
    | [] -> "empty"
  in
  Printf.sprintf "topo: %s, budget %d" head c.topo_budget

let rec topo_case_to_oracle_case (c : topo_case) =
  {
    label = topo_label c;
    repro =
      Printf.sprintf "# topo cross-check: budget %d words, max_states %d, sim seed %d\n%s"
        c.topo_budget c.topo_max_states c.topo_sim_seed c.topo_text;
    check = (fun () -> check_topo_case c);
    shrink = (fun () -> List.map topo_case_to_oracle_case (shrink_topo_case c));
  }

let topo =
  {
    name = "topo";
    doc = "mesh/torus routing, transit folding, DAMQ vs static, and DES conservation";
    generate =
      (fun ~max_states rng ->
        let topology, traffic = Gen_model.topo_arch rng in
        let nclients = Splitting.total_clients (Splitting.split traffic) in
        let budget = nclients * (2 + Rng.int rng 3) in
        topo_case_to_oracle_case
          {
            topo_text = Spec_parser.to_string topology traffic;
            topo_budget = budget;
            topo_max_states = Int.max 8 (Int.min max_states 24);
            topo_sim_seed = 1 + Rng.int rng 1_000_000;
          });
  }

(* ----------------------------------------------------------- the matrix *)

let all =
  [
    simplex_cross;
    mdp_gain;
    sim_analytic;
    sizing_bounds;
    split_monolithic;
    warm_cold;
    kron;
    topo;
    Chaos.oracle;
    Serve_oracle.oracle;
  ]

(* The daemon's [verify] op runs this same matrix; the list is injected
   (rather than referenced from Serve_oracle) because Driver defaults to
   [all] and a back-reference would cycle. *)
let () = Serve_oracle.set_verify_oracles all

let find name = List.find_opt (fun o -> o.name = name) all

let names () = List.map (fun o -> o.name) all

(* -------------------------------------------------------------- replay *)

let header_value ~prefix text =
  let plen = String.length prefix in
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         let line = String.trim line in
         if String.length line >= plen && String.sub line 0 plen = prefix then
           Some (String.trim (String.sub line plen (String.length line - plen)))
         else None)

let case_of_repro text =
  match header_value ~prefix:"# oracle:" text with
  | None -> Error "repro has no '# oracle:' header"
  | Some "simplex-cross" -> Result.map lp_case_to_oracle_case (Gen_model.lp_case_of_string text)
  | Some "mdp-gain" ->
      Result.map ctmdp_case_to_oracle_case (Gen_model.ctmdp_case_of_string text)
  | Some "split-monolithic" ->
      Result.map monolithic_case_to_oracle_case (Gen_model.monolithic_of_string text)
  | Some "kron" -> Result.map san_case_to_oracle_case (Gen_model.san_case_of_string text)
  | Some "chaos" -> (
      match (header_value ~prefix:"# fault:" text, header_value ~prefix:"# seed:" text) with
      | None, _ -> Error "chaos repro has no '# fault:' header"
      | _, None -> Error "chaos repro has no '# seed:' header"
      | Some fname, Some sname -> (
          match (Chaos.fault_of_name fname, int_of_string_opt sname) with
          | None, _ -> Error ("chaos: unknown fault kind: " ^ fname)
          | _, None -> Error ("chaos: bad seed: " ^ sname)
          | Some fault, Some seed -> Ok (Chaos.case ~fault ~seed)))
  | Some "sim-analytic" -> (
      (* Buffer capacity and sim seed live in the mm1k header; lambda and
         mu are recovered from the embedded single-bus architecture. *)
      match header_value ~prefix:"# M/M/1/K cross-check:" text with
      | None -> Error "sim-analytic repro has no '# M/M/1/K cross-check:' header"
      | Some hdr -> (
          match
            Scanf.sscanf_opt hdr "src buffer capacity %d words, sim seed %d" (fun k s ->
                (k, s))
          with
          | None -> Error ("sim-analytic: bad cross-check header: " ^ hdr)
          | Some (k, sim_seed) -> (
              match Spec_parser.parse text with
              | Error e -> Error ("sim-analytic: " ^ e)
              | Ok (topo, traffic) ->
                  let flows = Traffic.flows traffic in
                  if Array.length flows <> 1 || Topology.num_buses topo <> 1 then
                    Error "sim-analytic: expected a single-bus single-flow architecture"
                  else
                    let lambda = flows.(0).Traffic.rate in
                    let mu = (Topology.buses topo).(0).Topology.service_rate in
                    Ok (mm1k_case_to_oracle_case { Gen_model.lambda; mu; k; sim_seed }))))
  | Some "sizing-bounds" -> (
      match header_value ~prefix:"# sizing cross-check:" text with
      | None -> Error "sizing-bounds repro has no '# sizing cross-check:' header"
      | Some hdr -> (
          match
            Scanf.sscanf_opt hdr "budget %d words, max_states %d" (fun b m -> (b, m))
          with
          | None -> Error ("sizing-bounds: bad cross-check header: " ^ hdr)
          | Some (budget, max_states) -> (
              (* The parser skips '#' lines, so the full repro text is a
                 valid sizing_case spec. *)
              match Spec_parser.parse text with
              | Error e -> Error ("sizing-bounds: " ^ e)
              | Ok _ -> Ok (sizing_case_to_oracle_case { text; budget; max_states }))))
  | Some "serve" -> (
      match header_value ~prefix:"# serve cross-check:" text with
      | None -> Error "serve repro has no '# serve cross-check:' header"
      | Some hdr -> (
          match
            Scanf.sscanf_opt hdr "budget %d words, max_states %d, seed %d" (fun b m s ->
                (b, m, s))
          with
          | None -> Error ("serve: bad cross-check header: " ^ hdr)
          | Some (budget, max_states, seed) -> (
              (* The parser skips '#' lines, so the full repro text is a
                 valid spec. *)
              match Spec_parser.parse text with
              | Error e -> Error ("serve: " ^ e)
              | Ok _ -> Ok (Serve_oracle.case ~text ~budget ~max_states ~seed))))
  | Some "topo" -> (
      match header_value ~prefix:"# topo cross-check:" text with
      | None -> Error "topo repro has no '# topo cross-check:' header"
      | Some hdr -> (
          match
            Scanf.sscanf_opt hdr "budget %d words, max_states %d, sim seed %d"
              (fun b m s -> (b, m, s))
          with
          | None -> Error ("topo: bad cross-check header: " ^ hdr)
          | Some (topo_budget, topo_max_states, topo_sim_seed) -> (
              (* The parser skips '#' lines, so the full repro text is a
                 valid spec. *)
              match Spec_parser.parse text with
              | Error e -> Error ("topo: " ^ e)
              | Ok _ ->
                  Ok
                    (topo_case_to_oracle_case
                       { topo_text = text; topo_budget; topo_max_states; topo_sim_seed }))))
  | Some "warm-cold" -> (
      match header_value ~prefix:"# warm-cold kind:" text with
      | None -> Error "warm-cold repro has no '# warm-cold kind:' header"
      | Some "lp" -> Result.map warm_lp_to_oracle_case (Gen_model.lp_case_of_string text)
      | Some "ctmdp" ->
          Result.map warm_ctmdp_to_oracle_case (Gen_model.ctmdp_case_of_string text)
      | Some "sizing" -> (
          match header_value ~prefix:"# warm-cold sizing:" text with
          | None -> Error "warm-cold sizing repro has no '# warm-cold sizing:' header"
          | Some hdr -> (
              match
                Scanf.sscanf_opt hdr "budget %d words, max_states %d" (fun b m -> (b, m))
              with
              | None -> Error ("warm-cold: bad sizing header: " ^ hdr)
              | Some (budget, max_states) -> (
                  match Spec_parser.parse text with
                  | Error e -> Error ("warm-cold: " ^ e)
                  | Ok _ -> Ok (warm_sizing_to_oracle_case { text; budget; max_states }))))
      | Some other -> Error ("warm-cold: unknown sub-case kind " ^ other))
  | Some other -> Error (Printf.sprintf "unknown oracle %S in repro" other)
