module Rng = Bufsize_prob.Rng
module Obs = Bufsize_obs.Obs

let m_instances = Obs.counter "verify.instances"
let m_failures = Obs.counter "verify.failures"

type failure = {
  oracle : string;
  instance : int;
  seed : int;
  message : string;
  shrink_steps : int;
  case : Oracle.case;
  repro_path : string option;
}

type oracle_summary = {
  name : string;
  instances : int;
  failures : failure list;
}

type summary = {
  seed : int;
  oracles : oracle_summary list;
  total_instances : int;
  total_failures : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_repro ~out_dir ~oracle ~instance ~seed ~message case =
  mkdir_p out_dir;
  let path = Filename.concat out_dir (Printf.sprintf "%s-%03d.repro" oracle instance) in
  let oc = open_out path in
  (* '#' heads every comment line, so architecture repros stay directly
     loadable by Spec_parser.parse_file. *)
  Printf.fprintf oc "# oracle: %s\n# instance: %d (derived seed %d)\n" oracle instance seed;
  String.split_on_char '\n' message
  |> List.iter (fun l -> Printf.fprintf oc "# failure: %s\n" l);
  output_string oc case.Oracle.repro;
  if String.length case.Oracle.repro > 0
     && case.Oracle.repro.[String.length case.Oracle.repro - 1] <> '\n'
  then output_char oc '\n';
  close_out oc;
  path

let run_oracle ?out_dir ~max_states ~seed ~count (o : Oracle.t) =
  (* Stream seeds are derived per oracle name, so adding or reordering
     oracles never perturbs another oracle's instances. *)
  let oracle_seed = Rng.derive_seed seed (Hashtbl.hash o.Oracle.name) in
  let failures = ref [] in
  Obs.span ~name:("verify.oracle:" ^ o.Oracle.name)
    ~attrs:(fun () -> [ ("instances", string_of_int count) ])
  @@ fun () ->
  for i = 0 to count - 1 do
    Obs.incr m_instances;
    let instance_seed = Rng.derive_seed oracle_seed i in
    let case = o.Oracle.generate ~max_states (Rng.create instance_seed) in
    match Oracle.run_check case with
    | Oracle.Pass -> ()
    | Oracle.Fail msg ->
        Obs.incr m_failures;
        let case, message, shrink_steps = Shrink.minimize case msg in
        let repro_path =
          Option.map
            (fun dir ->
              write_repro ~out_dir:dir ~oracle:o.Oracle.name ~instance:i ~seed:instance_seed
                ~message case)
            out_dir
        in
        failures :=
          {
            oracle = o.Oracle.name;
            instance = i;
            seed = instance_seed;
            message;
            shrink_steps;
            case;
            repro_path;
          }
          :: !failures
  done;
  { name = o.Oracle.name; instances = count; failures = List.rev !failures }

let run ?(oracles = Oracles.all) ?out_dir ?(max_states = 48) ?(progress = ignore) ~seed ~count
    () =
  let summaries =
    List.map
      (fun o ->
        let s = run_oracle ?out_dir ~max_states ~seed ~count o in
        progress
          (Printf.sprintf "%-16s %d/%d passed" s.name (s.instances - List.length s.failures)
             s.instances);
        s)
      oracles
  in
  {
    seed;
    oracles = summaries;
    total_instances = List.fold_left (fun a s -> a + s.instances) 0 summaries;
    total_failures = List.fold_left (fun a s -> a + List.length s.failures) 0 summaries;
  }

let passed s = s.total_failures = 0

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>verify: seed %d, %d instances across %d oracles@," s.seed
    s.total_instances (List.length s.oracles);
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-16s %4d/%d passed@," o.name
        (o.instances - List.length o.failures)
        o.instances;
      List.iter
        (fun f ->
          Format.fprintf ppf "    FAIL #%d (seed %d, %d shrink steps): %s@," f.instance f.seed
            f.shrink_steps f.message;
          Option.iter (fun p -> Format.fprintf ppf "      repro: %s@," p) f.repro_path)
        o.failures)
    s.oracles;
  if s.total_failures = 0 then Format.fprintf ppf "all oracles passed@]"
  else Format.fprintf ppf "%d failure(s)@]" s.total_failures

let replay path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Result.map
        (fun case -> (case.Oracle.label, Oracle.run_check case))
        (Oracles.case_of_repro text)
