(** Run the oracle matrix over seeded random instances.

    The driver behind [bufsize verify] (and the [test_verify] suite):
    draws [count] instances per oracle from independent derived RNG
    streams, checks each, greedily shrinks every failure
    ({!Shrink.minimize}) and optionally dumps the minimized repro to a
    file in [out_dir]. *)

type failure = {
  oracle : string;
  instance : int;  (** index within the oracle's run, 0-based *)
  seed : int;  (** derived seed that regenerates the unshrunk instance *)
  message : string;  (** failure message of the shrunk case *)
  shrink_steps : int;
  case : Oracle.case;  (** the shrunk case *)
  repro_path : string option;  (** where the repro was written, if anywhere *)
}

type oracle_summary = {
  name : string;
  instances : int;
  failures : failure list;  (** in discovery order *)
}

type summary = {
  seed : int;
  oracles : oracle_summary list;
  total_instances : int;
  total_failures : int;
}

val run :
  ?oracles:Oracle.t list ->
  ?out_dir:string ->
  ?max_states:int ->
  ?progress:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** [run ~seed ~count ()] checks [count] instances of every oracle (default
    {!Oracles.all}).  Instance [i] of oracle [o] is generated from seed
    [derive_seed (derive_seed seed (hash o.name)) i], so runs are
    reproducible per oracle and independent of the oracle list order.
    With [out_dir], each shrunk failing repro is written to
    [<out_dir>/<oracle>-<instance>.repro] (the directory is created).
    [max_states] (default 48) caps generated model sizes where relevant.
    [progress] receives one line per oracle as it finishes. *)

val passed : summary -> bool

val pp_summary : Format.formatter -> summary -> unit

val replay : string -> (string * Oracle.verdict, string) result
(** [replay path] re-runs the check of a [.repro] file previously written
    by {!run} with [out_dir] — [Ok (label, verdict)], or [Error] when the
    file cannot be read or parsed.  Powers [bufsize verify --replay]. *)
