module Rng = Bufsize_prob.Rng
module Gen_model = Bufsize_verify.Gen_model

let seeded name gen =
  let of_seed seed = (seed, gen (Rng.create seed)) in
  QCheck.make
    ~print:(fun (seed, _) -> Printf.sprintf "%s (seed %d)" name seed)
    ~shrink:(fun (seed, _) yield -> QCheck.Shrink.int seed (fun s -> yield (of_seed s)))
    QCheck.Gen.(map of_seed nat)

let arch = seeded "arch" (fun rng -> Gen_model.arch rng)

let spec_text = seeded "spec_text" (fun rng -> Gen_model.arch_text rng)

let topo_spec_text =
  seeded "topo_spec_text" (fun rng ->
      let topo, traffic = Gen_model.topo_arch rng in
      Bufsize_soc.Spec_parser.to_string topo traffic)

let ctmdp = seeded "ctmdp" (fun rng -> Gen_model.ctmdp rng)

let ctmdp_case = seeded "ctmdp_case" (fun rng -> Gen_model.ctmdp_case rng)

let lp_case = seeded "lp_case" (fun rng -> Gen_model.lp_case rng)

let mm1k_case = seeded "mm1k_case" Gen_model.mm1k_case

let monolithic_spec = seeded "monolithic_spec" Gen_model.monolithic_spec
