(** Fault injection (chaos) for the resilient solve pipeline.

    Each case deterministically builds a numerically hazardous instance of
    one fault family — rank-deficient LP bases, near-tolerance pivots,
    rate underflow/overflow, reducible chains, expired wall-clock budgets,
    Newton-hostile closures — and asserts the resilience contract: no
    uncaught exception, no NaN/Inf in a surfaced result, metamorphic
    agreement with the clean instance when the diagnostic claims [Ok], and
    a [Degraded]/[Failed] diagnostic otherwise.

    Exposed both as the [chaos] oracle of [bufsize verify] and as a
    library for the test-suite's exhaustive fault sweep. *)

type fault =
  | Singular_basis  (** duplicated LP rows: rank-deficient simplex bases *)
  | Degenerate_pivot  (** one row scaled to near the pivot tolerance *)
  | Rate_underflow  (** all CTMC rates scaled by 1e-150 *)
  | Rate_overflow  (** all CTMC rates scaled by 1e+140 *)
  | Reducible_chain  (** two disjoint closed communicating classes *)
  | Budget_exhaustion  (** an already-expired wall-clock budget *)
  | Stiff_closure  (** heavily coupled monolithic bridge *)

val all_faults : fault list

val fault_name : fault -> string
(** Kebab-case identifier used in repro headers and test labels. *)

val fault_of_name : string -> fault option

val check : fault -> int -> Oracle.verdict
(** [check fault seed] regenerates the seeded instance and runs its
    resilience assertions. *)

val case : fault:fault -> seed:int -> Oracle.case
(** The oracle-shaped case: a chaos instance is fully determined by
    [(fault, seed)], so its repro is just those two headers and it has no
    structural shrink. *)

val oracle : Oracle.t
(** The [chaos] entry of the oracle matrix: each generated case draws a
    fault family and a seed from the driver's RNG stream. *)
