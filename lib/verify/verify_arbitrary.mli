(** {!Gen_model} generators exposed as qcheck arbitraries.

    Each arbitrary draws an integer seed and maps it through the
    corresponding seeded {!Gen_model} generator, so qcheck counterexamples
    print (and shrink) as seeds — rerun any failure deterministically with
    [Bufsize_verify.Gen_model.* (Rng.create seed)].  Kept in a separate library
    ([bufsize.verify-qcheck]) so the CLI's verify path does not link
    qcheck. *)

val seeded : string -> (Bufsize_prob.Rng.t -> 'a) -> (int * 'a) QCheck.arbitrary
(** [seeded name gen] pairs the drawn seed with the generated value; the
    seed shrinks toward 0 like any qcheck integer, regenerating the value
    as it goes. *)

val arch :
  (int * (Bufsize_soc.Topology.t * Bufsize_soc.Traffic.t)) QCheck.arbitrary

val spec_text : (int * string) QCheck.arbitrary
(** {!Bufsize_verify.Gen_model.arch_text}: parseable architecture descriptions. *)

val topo_spec_text : (int * string) QCheck.arbitrary
(** {!Bufsize_verify.Gen_model.topo_arch} rendered through
    {!Bufsize_soc.Spec_parser.to_string}: mesh/torus grid specs with
    [shared_buffer] stanzas. *)

val ctmdp : (int * Bufsize_mdp.Ctmdp.t) QCheck.arbitrary

val ctmdp_case : (int * Bufsize_verify.Gen_model.ctmdp_case) QCheck.arbitrary

val lp_case : (int * Bufsize_verify.Gen_model.lp_case) QCheck.arbitrary

val mm1k_case : (int * Bufsize_verify.Gen_model.mm1k_case) QCheck.arbitrary

val monolithic_spec : (int * Bufsize_soc.Monolithic.spec) QCheck.arbitrary
