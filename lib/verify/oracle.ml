type verdict = Pass | Fail of string

type case = {
  label : string;
  repro : string;
  check : unit -> verdict;
  shrink : unit -> case list;
}

type t = {
  name : string;
  doc : string;
  generate : max_states:int -> Bufsize_prob.Rng.t -> case;
}

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

let rec all_of = function
  | [] -> Pass
  | f :: rest -> ( match f () with Pass -> all_of rest | Fail _ as v -> v)

let run_check case =
  match case.check () with
  | v -> v
  | exception e -> failf "uncaught exception: %s" (Printexc.to_string e)
