(* Fault injection for the resilient solve pipeline.

   Each chaos case deterministically (from a seed) builds a numerically
   hazardous instance of a known fault family and drives it through the
   diagnostic solver entry points.  The contract under test is the
   resilience invariant:

   - no fault may escape as an uncaught exception (the escalation chains
     convert solver exceptions into step rejections);
   - no claimed-[Ok] result may contain NaN/Inf or disagree with the
     clean-instance answer beyond 1e-8 (faults here are metamorphic:
     duplicated LP rows, uniformly scaled CTMC rates, ... preserve the
     mathematical answer while stressing the numerics);
   - any fault the solver could not absorb cleanly must surface as a
     [Degraded] or [Failed] diagnostic, never as a silently wrong answer.

   The module doubles as the `chaos` oracle of the verify harness
   ([bufsize verify --oracle chaos]) and as the engine of the
   test-suite's fault sweep. *)

module Rng = Bufsize_prob.Rng
module Lp = Bufsize_numeric.Lp
module Ctmc = Bufsize_prob.Ctmc
module Monolithic = Bufsize_soc.Monolithic
module Resilience = Bufsize_resilience.Resilience
open Oracle

type fault =
  | Singular_basis  (* duplicated LP rows: rank-deficient bases *)
  | Degenerate_pivot  (* a constraint row scaled to near the pivot tolerance *)
  | Rate_underflow  (* all CTMC rates scaled by 1e-150 *)
  | Rate_overflow  (* all CTMC rates scaled by 1e+140 *)
  | Reducible_chain  (* two disjoint closed classes *)
  | Budget_exhaustion  (* an already-expired wall-clock budget *)
  | Stiff_closure  (* heavily coupled monolithic bridge: Newton-hostile *)

let all_faults =
  [
    Singular_basis;
    Degenerate_pivot;
    Rate_underflow;
    Rate_overflow;
    Reducible_chain;
    Budget_exhaustion;
    Stiff_closure;
  ]

let fault_name = function
  | Singular_basis -> "singular-basis"
  | Degenerate_pivot -> "degenerate-pivot"
  | Rate_underflow -> "rate-underflow"
  | Rate_overflow -> "rate-overflow"
  | Reducible_chain -> "reducible-chain"
  | Budget_exhaustion -> "budget-exhaustion"
  | Stiff_closure -> "stiff-closure"

let fault_of_name s = List.find_opt (fun f -> fault_name f = s) all_faults

(* ------------------------------------------------------------ helpers *)

let rel_close tol a b =
  Float.abs (a -. b) <= tol *. (1. +. Float.max (Float.abs a) (Float.abs b))

let status_name = function
  | Resilience.Ok -> "ok"
  | Resilience.Degraded _ -> "degraded"
  | Resilience.Failed _ -> "failed"

(* The value/status contract of [Resilience.escalate]: a usable status
   comes with an answer, [Failed] comes without one. *)
let check_diag_consistency (o : 'a option) (d : Resilience.diagnostic) =
  match (o, d.Resilience.status) with
  | Some _, (Resilience.Ok | Resilience.Degraded _) -> Pass
  | None, Resilience.Failed _ -> Pass
  | Some _, Resilience.Failed _ -> failf "answer present but diagnostic says failed"
  | None, s -> failf "no answer but diagnostic says %s" (status_name s)

(* ----------------------------------------------------------- LP faults *)

(* Metamorphic LP check: [mutate] must preserve the feasible set and the
   objective, so a claimed-Ok solve of the faulted model must agree with
   the clean solve; anything else must be Degraded/Failed.

   [require_feasible] redraws until the clean instance is Optimal: faults
   that scale a row towards the solver tolerance are only numerically
   neutral away from the feasibility boundary (an infeasible row whose
   violation is scaled below the phase-1 tolerance legitimately flips the
   classification — that is a property of any fixed-tolerance solver, not
   a resilience failure). *)
let check_lp_metamorphic ?(require_feasible = false) ~mutate rng =
  let rec draw attempts =
    let c = Gen_model.lp_case rng in
    let clean = Lp.solve (Gen_model.lp_of_case c) in
    match clean with
    | Lp.Optimal _ -> (c, clean)
    | _ when require_feasible && attempts < 20 -> draw (attempts + 1)
    | _ -> (c, clean)
  in
  let c, clean = draw 0 in
  let faulted = mutate c in
  let o, diag = Lp.solve_diag faulted in
  all_of
    [
      (fun () -> check_diag_consistency o diag);
      (fun () ->
        match o with
        | Some fo when not (Lp.outcome_finite fo) ->
            failf "NaN/Inf in a surfaced LP outcome (status %s)" (status_name diag.Resilience.status)
        | _ -> Pass);
      (fun () ->
        match (o, diag.Resilience.status) with
        | Some fo, Resilience.Ok -> (
            match (clean, fo) with
            | Lp.Optimal a, Lp.Optimal b ->
                if rel_close 1e-8 a.Lp.objective b.Lp.objective then Pass
                else
                  failf "Ok result drifted under a neutral fault: clean %.12g vs faulted %.12g"
                    a.Lp.objective b.Lp.objective
            | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> Pass
            | _, _ ->
                failf "Ok result changed the LP classification under a neutral fault: clean %s vs faulted %s"
                  (Format.asprintf "%a" Lp.pp_outcome clean)
                  (Format.asprintf "%a" Lp.pp_outcome fo))
        | _ -> Pass);
    ]

(* Duplicate every row (Le/Ge duplicates nudged by 1e-12 so the copies are
   distinct but the binding side is unchanged): the standard form gains
   linearly dependent rows, so simplex bases go rank-deficient and the
   dual back-solve of the refinement step sees singular systems. *)
let duplicate_rows (c : Gen_model.lp_case) =
  let nudged (terms, sense, rhs) =
    match sense with
    | Lp.Le -> (terms, sense, rhs +. 1e-12)
    | Lp.Ge -> (terms, sense, rhs -. 1e-12)
    | Lp.Eq -> (terms, sense, rhs)
  in
  Gen_model.lp_of_case
    { c with Gen_model.rows = c.Gen_model.rows @ List.map nudged c.Gen_model.rows }

(* Scale one row (both sides) down to near the pivot tolerance: the
   feasible set is untouched but every pivot in that row is tiny. *)
let scale_row rng (c : Gen_model.lp_case) =
  match c.Gen_model.rows with
  | [] -> Gen_model.lp_of_case c
  | rows ->
      let target = Rng.int rng (List.length rows) in
      let scale = 1e-7 in
      let rows =
        List.mapi
          (fun i (terms, sense, rhs) ->
            if i = target then
              (List.map (fun (v, cf) -> (v, cf *. scale)) terms, sense, rhs *. scale)
            else (terms, sense, rhs))
          rows
      in
      Gen_model.lp_of_case { c with Gen_model.rows }

(* ---------------------------------------------------------- CTMC faults *)

(* A random irreducible chain: a cycle (guaranteeing irreducibility) plus
   random extra edges. *)
let random_ctmc_rates rng =
  let n = 3 + Rng.int rng 10 in
  let rates = ref [] in
  for i = 0 to n - 1 do
    rates := (i, (i + 1) mod n, Rng.float_range rng 0.1 2.) :: !rates;
    let extras = Rng.int rng 3 in
    for _ = 1 to extras do
      let j = Rng.int rng n in
      if j <> i then rates := (i, j, Rng.float_range rng 0.01 1.) :: !rates
    done
  done;
  (n, !rates)

(* Metamorphic CTMC check: scaling every rate by [scale] leaves the
   stationary distribution unchanged, so a claimed-Ok solve of the scaled
   chain must match the clean chain's distribution. *)
let check_ctmc_scaled ~scale rng =
  let n, rates = random_ctmc_rates rng in
  let clean_pi = Ctmc.stationary (Ctmc.of_rates n rates) in
  let scaled = Ctmc.of_rates n (List.map (fun (i, j, r) -> (i, j, r *. scale)) rates) in
  let o, diag = Ctmc.stationary_diag scaled in
  all_of
    [
      (fun () -> check_diag_consistency o diag);
      (fun () ->
        match o with
        | Some pi when not (Ctmc.distribution_valid pi) ->
            failf "surfaced stationary vector is not a distribution (status %s)"
              (status_name diag.Resilience.status)
        | _ -> Pass);
      (fun () ->
        match (o, diag.Resilience.status) with
        | Some pi, Resilience.Ok ->
            let worst = ref 0. in
            Array.iteri
              (fun i p -> worst := Float.max !worst (Float.abs (p -. clean_pi.(i))))
              pi;
            if !worst <= 1e-8 then Pass
            else failf "Ok stationary distribution drifted by %.3e under rate scaling" !worst
        | _ -> Pass);
    ]

(* Two disjoint closed classes: GTH must reject with the offending class
   named, the typed error must name a genuine communicating class, and no
   route may report Ok. *)
let check_reducible rng =
  let n1 = 2 + Rng.int rng 4 and n2 = 2 + Rng.int rng 4 in
  let n = n1 + n2 in
  let rates = ref [] in
  for i = 0 to n1 - 1 do
    rates := (i, (i + 1) mod n1, Rng.float_range rng 0.2 2.) :: !rates
  done;
  for i = 0 to n2 - 1 do
    rates := (n1 + i, n1 + ((i + 1) mod n2), Rng.float_range rng 0.2 2.) :: !rates
  done;
  let t = Ctmc.of_rates n !rates in
  let class_a = List.init n1 Fun.id and class_b = List.init n2 (fun i -> n1 + i) in
  all_of
    [
      (fun () ->
        match Ctmc.stationary_gth t with
        | Ok _ -> failf "GTH accepted a chain with two closed classes"
        | Error (`Reducible_class cls) ->
            if cls = class_a || cls = class_b then Pass
            else
              failf "reported class [%s] is neither constructed closed class"
                (String.concat ";" (List.map string_of_int cls)));
      (fun () ->
        let o, diag = Ctmc.stationary_diag t in
        all_of
          [
            (fun () -> check_diag_consistency o diag);
            (fun () ->
              match diag.Resilience.status with
              | Resilience.Ok -> failf "reducible chain solved with a clean Ok diagnostic"
              | Resilience.Degraded _ | Resilience.Failed _ -> Pass);
            (fun () ->
              match o with
              | Some pi when not (Ctmc.distribution_valid pi) ->
                  failf "degraded stationary vector is not a distribution"
              | _ -> Pass);
          ]);
    ]

(* ------------------------------------------------------- budget faults *)

(* An already-expired budget: the chain must stop before (or between)
   steps and report the exhaustion as a diagnostic, never hang or raise. *)
let check_budget_exhaustion rng =
  let lp = Gen_model.lp_of_case (Gen_model.lp_case rng) in
  let o, diag = Lp.solve_diag ~budget:(Resilience.expired ()) lp in
  let mentions_budget () =
    match Resilience.status_reason diag.Resilience.status with
    | Some r ->
        if
          String.length r >= 6
          && List.exists
               (fun i -> String.sub r i 6 = "budget")
               (List.init (String.length r - 5) Fun.id)
        then Pass
        else failf "exhausted-budget diagnostic does not mention the budget: %s" r
    | None -> failf "exhausted budget yielded a clean Ok diagnostic"
  in
  all_of
    [
      (fun () -> check_diag_consistency o diag);
      (fun () ->
        match diag.Resilience.status with
        | Resilience.Ok -> failf "expired budget still reported Ok"
        | Resilience.Degraded _ | Resilience.Failed _ -> Pass);
      mentions_budget;
    ]

(* ------------------------------------------------------ closure faults *)

(* A heavily coupled, highly utilized bridge: the quadratic closure is
   bistable and Newton-hostile.  Whatever happens, the chain must return
   a structured diagnostic and only surface simplex-valid roots. *)
let check_stiff_closure rng =
  let s =
    {
      Monolithic.kx = 4 + Rng.int rng 4;
      ky = 4 + Rng.int rng 4;
      lambda_x = Rng.float_range rng 0.8 1.1;
      lambda_y = Rng.float_range rng 0.8 1.1;
      cross_fraction = Rng.float_range rng 0.7 0.95;
      mu_x = 1.;
      mu_y = 1.;
    }
  in
  let o, diag = Monolithic.solve_closure s in
  all_of
    [
      (fun () -> check_diag_consistency o diag);
      (fun () ->
        match o with
        | Some v when not (Monolithic.closure_valid s v) ->
            failf "surfaced closure root is outside the probability simplex (status %s)"
              (status_name diag.Resilience.status)
        | _ -> Pass);
      (fun () ->
        match (o, diag.Resilience.status) with
        | Some v, Resilience.Ok ->
            let r = Monolithic.residual_norm s v in
            if r <= 1e-6 then Pass
            else failf "Ok closure root has balance residual %.3e" r
        | _ -> Pass);
    ]

(* ------------------------------------------------------------- dispatch *)

let check fault seed =
  let rng = Rng.create seed in
  match fault with
  | Singular_basis -> check_lp_metamorphic ~mutate:duplicate_rows rng
  | Degenerate_pivot -> check_lp_metamorphic ~require_feasible:true ~mutate:(scale_row rng) rng
  | Rate_underflow -> check_ctmc_scaled ~scale:1e-150 rng
  | Rate_overflow -> check_ctmc_scaled ~scale:1e140 rng
  | Reducible_chain -> check_reducible rng
  | Budget_exhaustion -> check_budget_exhaustion rng
  | Stiff_closure -> check_stiff_closure rng

let repro_of ~fault ~seed =
  Printf.sprintf "# oracle: chaos\n# fault: %s\n# seed: %d\n" (fault_name fault) seed

let case ~fault ~seed =
  {
    label = Printf.sprintf "chaos: %s (seed %d)" (fault_name fault) seed;
    repro = repro_of ~fault ~seed;
    check = (fun () -> check fault seed);
    (* A chaos case is (fault, seed) — there is no smaller instance. *)
    shrink = (fun () -> []);
  }

let oracle =
  {
    name = "chaos";
    doc = "injected numeric faults must surface as structured diagnostics";
    generate =
      (fun ~max_states:_ rng ->
        let fault = List.nth all_faults (Rng.int rng (List.length all_faults)) in
        let seed = Rng.int rng 1_000_000_000 in
        case ~fault ~seed);
  }
