(** Oracle #10: the daemon answers exactly like the library.

    Each case starts a real in-process {!Bufsize_serve.Serve} server on a
    fresh socket and throws a mixed batch at it — well-formed sizing
    requests (pipelined on one connection and concurrently from separate
    domains), malformed JSON, an unknown op, an oversized line, a
    deadline-zero request, and (under [BUFSIZE_CHAOS=1]) a fault-injected
    op that crashes its handler.  The contract checked:

    - every request line gets exactly one well-formed reply, ids echoed;
    - sizing replies are {e bitwise identical} to a direct
      {!Bufsize_soc.Sizing.run} through the shared serializer;
    - malformed / unknown / oversized / deadline-zero / crashed requests
      come back as their typed statuses, never as silence or a dead
      socket;
    - the server survives all of it and still answers afterwards.

    This module also registers the daemon's [verify] and [chaos] ops
    (the oracle list is injected by [Oracles] to avoid a module cycle
    with the driver). *)

val set_verify_oracles : Oracle.t list -> unit
(** Called once by [Oracles] at init with the full oracle matrix; the
    daemon's [verify] op draws from this list. *)

val case : text:string -> budget:int -> max_states:int -> seed:int -> Oracle.case
(** The case is fully determined by the architecture text and the three
    numeric headers, so replay needs only the repro file. *)

val oracle : Oracle.t
(** The [serve] entry of the oracle matrix. *)
