(* Oracle #10: the daemon is a transparent wrapper.  See serve_oracle.mli
   for the contract; the short version is that a real in-process server
   must answer a hostile mixed batch with exactly one typed reply per
   request, byte-identical to direct library calls where a result is
   involved, and still be alive afterwards. *)

module Rng = Bufsize_prob.Rng
module Json = Bufsize_json.Json
module Serve = Bufsize_serve.Serve
module Spec_parser = Bufsize_soc.Spec_parser
module Splitting = Bufsize_soc.Splitting
module Sizing = Bufsize_soc.Sizing
open Oracle

(* ----------------------------------------------------- daemon-side ops *)

(* The oracle matrix, injected by Oracles at init.  A ref rather than a
   direct reference because Driver defaults to Oracles.all: referencing
   Oracles here would close a module cycle. *)
let verify_oracles : Oracle.t list ref = ref []
let set_verify_oracles l = verify_oracles := l

let verify_handler ~deadline:_ req =
  let count = Int.max 1 (Int.min 50 (Option.value ~default:1 (Json.mem_int "count" req))) in
  let seed = Option.value ~default:1 (Json.mem_int "seed" req) in
  let max_states = Int.max 8 (Option.value ~default:24 (Json.mem_int "max_states" req)) in
  let wanted = Json.mem_string "oracle" req in
  let oracles =
    match wanted with
    | Some name -> List.filter (fun o -> o.name = name) !verify_oracles
    | None ->
        (* Running the serve oracle from inside a serve worker would nest
           a server per case; callers who really want that name it. *)
        List.filter (fun o -> o.name <> "serve") !verify_oracles
  in
  match (oracles, wanted) with
  | [], Some name ->
      Serve.Reply_error
        {
          kind = Serve.Bad_request;
          message = Printf.sprintf "unknown oracle %S" name;
          retry_after_ms = None;
        }
  | oracles, _ ->
      let failures = ref [] in
      let cases = ref 0 in
      List.iteri
        (fun oi o ->
          let rng = Rng.create (Rng.derive_seed seed oi) in
          for _ = 1 to count do
            incr cases;
            let case = o.generate ~max_states rng in
            match run_check case with
            | Pass -> ()
            | Fail msg ->
                failures :=
                  Json.Obj
                    [
                      ("oracle", Json.Str o.name);
                      ("label", Json.Str case.label);
                      ("message", Json.Str msg);
                    ]
                  :: !failures
          done)
        oracles;
      Serve.Reply_ok
        [
          ("oracles", Json.Num (float_of_int (List.length oracles)));
          ("cases", Json.Num (float_of_int !cases));
          ("failures", Json.List (List.rev !failures));
          ("pass", Json.Bool (!failures = []));
        ]

(* Fault injection op: replays a Chaos fault family by name, or — with
   the reserved name [raise] — crashes its own handler on purpose to
   prove worker crash isolation end to end. *)
let chaos_handler ~deadline:_ req =
  if not (Serve.chaos_enabled ()) then
    Serve.Reply_error
      { kind = Serve.Bad_request; message = "chaos requires BUFSIZE_CHAOS=1"; retry_after_ms = None }
  else
    match Json.mem_string "fault" req with
    | None ->
        Serve.Reply_error
          { kind = Serve.Bad_request; message = "chaos needs a \"fault\" name"; retry_after_ms = None }
    | Some "raise" -> failwith "chaos: injected handler crash"
    | Some name -> (
        match Chaos.fault_of_name name with
        | None ->
            Serve.Reply_error
              {
                kind = Serve.Bad_request;
                message =
                  Printf.sprintf "unknown fault %S (or \"raise\"); known: %s" name
                    (String.concat ", " (List.map Chaos.fault_name Chaos.all_faults));
                retry_after_ms = None;
              }
        | Some fault -> (
            let seed = Option.value ~default:1 (Json.mem_int "seed" req) in
            match Chaos.check fault seed with
            | Pass -> Serve.Reply_ok [ ("verdict", Json.Str "pass") ]
            | Fail msg ->
                Serve.Reply_ok [ ("verdict", Json.Str "fail"); ("message", Json.Str msg) ]))

let () =
  Serve.register_op "verify" verify_handler;
  Serve.register_op "chaos" chaos_handler

(* ------------------------------------------------------- the cross-check *)

type serve_case = { sv_text : string; sv_budget : int; sv_max_states : int; sv_seed : int }

let oracle_config () =
  {
    Serve.socket_path = Serve.temp_socket_path ();
    queue_depth = 32;
    workers = 2;
    default_deadline_ms = 0.;
    max_request_bytes = 4096;
    flight_cap = 256;
    log_requests = false;
  }

let size_request ~id c =
  Json.Obj
    [
      ("id", Json.Num (float_of_int id));
      ("op", Json.Str "size");
      ("spec", Json.Str c.sv_text);
      ("budget", Json.Num (float_of_int c.sv_budget));
      ("max_states", Json.Num (float_of_int c.sv_max_states));
    ]

(* What the daemon must answer for a sizing request, computed without the
   daemon: the shared serializer over a direct library call. *)
let expected_result c =
  match Spec_parser.parse c.sv_text with
  | Error e -> Error ("case spec does not parse: " ^ e)
  | Ok (_, traffic) ->
      let config =
        { (Sizing.default_config ~budget:c.sv_budget) with Sizing.max_states = c.sv_max_states }
      in
      Ok (Json.encode (Serve.sizing_core_json traffic (Sizing.run config traffic)))

let status_of reply = Option.value ~default:"?" (Json.mem_string "status" reply)

let error_kind_of reply =
  match Json.member "error" reply with
  | Some err -> Option.value ~default:"?" (Json.mem_string "kind" err)
  | None -> "?"

let check_sizing_reply ~what ~expected reply =
  match status_of reply with
  | "ok" | "degraded" -> (
      match Json.member "result" reply with
      | None -> failf "%s: sizing reply has no result field" what
      | Some r ->
          let got = Json.encode r in
          if got = expected then Pass
          else failf "%s: daemon result differs from direct call:\n  daemon  %s\n  direct  %s" what got
              expected)
  | other -> failf "%s: expected ok/degraded, got status %s" what other

(* One connection, the whole hostile batch pipelined: every line must
   come back as exactly one reply, ids echoed, each with its typed
   status. *)
let pipelined_batch c socket expected =
  let lines =
    [
      Json.encode (size_request ~id:1 c);
      "{\"id\":2,\"op\":\"size\",";  (* malformed JSON *)
      Json.encode (Json.Obj [ ("id", Json.Num 3.); ("op", Json.Str "no-such-op") ]);
      Json.encode
        (Json.Obj
           [
             ("id", Json.Num 4.);
             ("op", Json.Str "size");
             ("spec", Json.Str c.sv_text);
             ("deadline_ms", Json.Num 0.);
           ]);
      "{\"id\":5,\"op\":\"size\",\"pad\":\"" ^ String.make 5000 'x' ^ "\"}";  (* > 4096 bytes *)
      Json.encode (size_request ~id:6 c);
    ]
  in
  let n = List.length lines in
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_UNIX socket);
      Unix.setsockopt_float fd SO_RCVTIMEO 30.;
      let payload = String.concat "\n" lines ^ "\n" in
      let b = Bytes.of_string payload in
      let rec send off len =
        if len > 0 then
          let w = Unix.write fd b off len in
          send (off + w) (len - w)
      in
      send 0 (Bytes.length b);
      let buf = Bytes.create 65536 in
      let acc = Buffer.create 1024 in
      let count_newlines s = String.fold_left (fun k ch -> if ch = '\n' then k + 1 else k) 0 s in
      let rec recv () =
        if count_newlines (Buffer.contents acc) < n then
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> failf "pipelined: connection closed after %d/%d replies"
                   (count_newlines (Buffer.contents acc)) n
          | r ->
              Buffer.add_subbytes acc buf 0 r;
              recv ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              failf "pipelined: timed out after %d/%d replies"
                (count_newlines (Buffer.contents acc)) n
        else Pass
      in
      match recv () with
      | Fail _ as f -> f
      | Pass -> (
          let raw =
            String.split_on_char '\n' (Buffer.contents acc) |> List.filter (fun l -> l <> "")
          in
          if List.length raw <> n then
            failf "pipelined: sent %d requests, got %d replies" n (List.length raw)
          else
            match
              List.fold_left
                (fun acc line ->
                  match (acc, Json.parse line) with
                  | Error e, _ -> Error e
                  | Ok rs, Ok r -> Ok (r :: rs)
                  | Ok _, Error e -> Error (Printf.sprintf "unparsable reply %S: %s" line e))
                (Ok []) raw
            with
            | Error e -> Fail ("pipelined: " ^ e)
            | Ok replies ->
                let with_id k =
                  List.filter
                    (fun r -> Json.member "id" r = Some (Json.Num (float_of_int k)))
                    replies
                in
                let null_id =
                  List.filter
                    (fun r -> match Json.member "id" r with Some Json.Null -> true | _ -> false)
                    replies
                in
                let exactly_one what = function
                  | [ r ] -> Ok r
                  | rs -> Result.Error (Printf.sprintf "%s: %d replies, want 1" what (List.length rs))
                in
                let ( let* ) r f = match r with Ok v -> f v | Error e -> Fail ("pipelined: " ^ e) in
                let* r1 = exactly_one "id 1" (with_id 1) in
                let* r3 = exactly_one "id 3" (with_id 3) in
                let* r4 = exactly_one "id 4" (with_id 4) in
                let* r6 = exactly_one "id 6" (with_id 6) in
                all_of
                  [
                    (fun () -> check_sizing_reply ~what:"pipelined id 1" ~expected r1);
                    (fun () -> check_sizing_reply ~what:"pipelined id 6" ~expected r6);
                    (fun () ->
                      if status_of r3 = "error" && error_kind_of r3 = "bad_request" then Pass
                      else failf "unknown op: want error/bad_request, got %s/%s" (status_of r3)
                          (error_kind_of r3));
                    (fun () ->
                      if status_of r4 = "degraded" then Pass
                      else failf "deadline-zero: want status degraded, got %s" (status_of r4));
                    (fun () ->
                      (* Malformed and oversized both answer with id null;
                         order depends on framing, so check the multiset. *)
                      let kinds = List.sort String.compare (List.map error_kind_of null_id) in
                      if kinds = [ "bad_request"; "oversized" ] then Pass
                      else
                        failf "null-id replies: want [bad_request; oversized], got [%s]"
                          (String.concat "; " kinds));
                  ]))

(* Separate connections from separate domains, all in flight at once:
   every client must get the same bytes the library gives. *)
let concurrent_clients c socket expected =
  let one i =
    match Serve.request ~socket (size_request ~id:(100 + i) c) with
    | Error e -> failf "concurrent client %d: %s" i e
    | Ok reply -> check_sizing_reply ~what:(Printf.sprintf "concurrent client %d" i) ~expected reply
  in
  let domains = Array.init 2 (fun i -> Domain.spawn (fun () -> one i)) in
  let verdicts = Array.to_list (Array.map Domain.join domains) in
  all_of (List.map (fun v () -> v) verdicts)

(* Telemetry must only observe.  A deterministic op (kron — no wall-clock
   fields, no global counters in the reply) answered with and without
   ["telemetry": true] must differ by exactly that one trailing member:
   stripping it restores the plain reply byte for byte.  For [size] —
   whose health member carries wall-clock times — only the [result]
   member is compared, plus the shape of the telemetry object itself. *)
let strip_telemetry reply =
  match reply with
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") fields)
  | v -> v

let with_telemetry req =
  match req with
  | Json.Obj fields -> Json.Obj (fields @ [ ("telemetry", Json.Bool true) ])
  | v -> v

let check_telemetry_shape ~what reply =
  match Json.member "telemetry" reply with
  | None -> failf "%s: telemetry-enabled reply has no telemetry member" what
  | Some t ->
      all_of
        [
          (fun () ->
            match Json.mem_int "request_id" t with
            | Some rid when rid >= 1 -> Pass
            | _ -> failf "%s: telemetry.request_id missing or < 1" what);
          (fun () ->
            match (Json.mem_number "queue_ms" t, Json.mem_number "service_ms" t) with
            | Some q, Some s when q >= 0. && s >= 0. -> Pass
            | _ -> failf "%s: telemetry queue_ms/service_ms missing or negative" what);
          (fun () ->
            match Json.member "spans" t with
            | Some (Json.List spans) ->
                if
                  List.for_all
                    (fun s -> match Json.mem_string "name" s with Some _ -> true | None -> false)
                    spans
                then Pass
                else failf "%s: telemetry span without a name" what
            | _ -> failf "%s: telemetry.spans is not a list" what);
          (fun () ->
            match Json.member "cache" t with
            | Some (Json.Obj _) -> Pass
            | _ -> failf "%s: telemetry.cache is not an object" what);
        ]

let telemetry_probe c socket expected =
  let kron_req ~id =
    Json.Obj
      [
        ("id", Json.Num (float_of_int id));
        ("op", Json.Str "kron");
        ("dims", Json.List [ Json.Num 3.; Json.Num 4. ]);
        ("rates", Json.List [ Json.Num 1.; Json.Num 2. ]);
      ]
  in
  match
    ( Serve.request ~socket (kron_req ~id:9),
      Serve.request ~socket (with_telemetry (kron_req ~id:9)),
      Serve.request ~socket (with_telemetry (size_request ~id:10 c)) )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> failf "telemetry probe: %s" e
  | Ok plain, Ok tele, Ok tele_size ->
      all_of
        [
          (fun () ->
            if status_of plain = "ok" && status_of tele = "ok" then Pass
            else failf "telemetry kron: statuses %s/%s" (status_of plain) (status_of tele));
          (fun () ->
            let stripped = Json.encode (strip_telemetry tele) in
            let want = Json.encode plain in
            if stripped = want then Pass
            else
              failf "telemetry kron: stripped reply differs from plain:\n  stripped %s\n  plain    %s"
                stripped want);
          (fun () -> check_telemetry_shape ~what:"telemetry kron" tele);
          (fun () ->
            match Json.member "result" tele_size with
            | Some r when Json.encode r = expected -> Pass
            | Some r ->
                failf "telemetry size: result differs from direct call:\n  daemon  %s\n  direct  %s"
                  (Json.encode r) expected
            | None -> failf "telemetry size: no result member");
          (fun () -> check_telemetry_shape ~what:"telemetry size" tele_size);
        ]

(* The IO loop's stats must conserve: everything accepted is completed,
   failed, or still in flight — and at quiescence (every reply of this
   oracle already read off the socket; stats commit before the reply is
   written) nothing is in flight.  The per-op table must sum to the
   totals. *)
let stats_probe socket =
  match Serve.request ~socket (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Error e -> failf "stats probe: %s" e
  | Ok reply ->
      let int_field what v name =
        match Json.mem_int name v with
        | Some n -> Ok n
        | None -> Result.Error (Printf.sprintf "%s: stats field %s missing" what name)
      in
      let ( let* ) r f = match r with Ok v -> f v | Error e -> Fail ("stats probe: " ^ e) in
      let* accepted = int_field "totals" reply "accepted" in
      let* completed = int_field "totals" reply "completed" in
      let* failed = int_field "totals" reply "failed" in
      let* in_flight = int_field "totals" reply "in_flight" in
      all_of
        [
          (fun () ->
            if accepted = completed + failed + in_flight then Pass
            else
              failf "stats: accepted %d <> completed %d + failed %d + in_flight %d" accepted
                completed failed in_flight);
          (fun () ->
            if in_flight = 0 then Pass
            else failf "stats: %d in flight at quiescence" in_flight);
          (fun () ->
            if accepted > 0 then Pass
            else failf "stats: accepted %d, but this oracle dispatched work" accepted);
          (fun () ->
            match Json.member "ops" reply with
            | Some (Json.Obj per_op) ->
                let sum name =
                  List.fold_left
                    (fun acc (_, v) -> acc + Option.value ~default:0 (Json.mem_int name v))
                    0 per_op
                in
                if sum "accepted" = accepted && sum "completed" = completed && sum "failed" = failed
                then Pass
                else
                  failf "stats: per-op sums (%d/%d/%d) don't match totals (%d/%d/%d)"
                    (sum "accepted") (sum "completed") (sum "failed") accepted completed failed
            | _ -> failf "stats: ops is not an object");
        ]

(* Every flight-recorder record must be a completed request this oracle's
   clients saw: ops it sent, outcomes it received, latencies non-negative,
   count consistent with the stats totals. *)
let flight_probe socket =
  match
    ( Serve.request ~socket (Json.Obj [ ("op", Json.Str "stats") ]),
      Serve.request ~socket (Json.Obj [ ("op", Json.Str "flight") ]) )
  with
  | Error e, _ | _, Error e -> failf "flight probe: %s" e
  | Ok stats, Ok reply -> (
      match (Json.member "records" reply, Json.mem_int "capacity" reply) with
      | Some (Json.List records), Some cap ->
          let finished =
            Option.value ~default:0 (Json.mem_int "completed" stats)
            + Option.value ~default:0 (Json.mem_int "failed" stats)
          in
          all_of
            [
              (fun () ->
                if List.length records = Int.min cap finished then Pass
                else
                  failf "flight: %d records, want min(capacity %d, finished %d)"
                    (List.length records) cap finished);
              (fun () ->
                let sent_ops = [ "size"; "kron"; "chaos" ] in
                let ok_rec r =
                  (match Json.mem_string "op" r with
                  | Some op -> List.mem op sent_ops
                  | None -> false)
                  && (match Json.mem_string "outcome" r with
                     | Some ("ok" | "degraded" | "internal_error") -> true
                     | Some _ | None -> false)
                  && (match Json.mem_number "queue_ms" r with Some q -> q >= 0. | None -> false)
                  &&
                  match Json.mem_number "service_ms" r with Some s -> s >= 0. | None -> false
                in
                match List.find_opt (fun r -> not (ok_rec r)) records with
                | None -> Pass
                | Some r -> failf "flight: implausible record %s" (Json.encode r));
              (fun () ->
                let rids =
                  List.filter_map (fun r -> Json.mem_int "request_id" r) records
                in
                if List.length (List.sort_uniq compare rids) = List.length records then Pass
                else failf "flight: duplicate or missing request ids");
            ]
      | _ -> failf "flight: reply missing records/capacity")

(* Under BUFSIZE_CHAOS=1, crash a handler on purpose: the reply must be a
   typed internal_error and the server must still answer afterwards. *)
let chaos_probe c socket expected =
  if not (Serve.chaos_enabled ()) then Pass
  else
    let crash =
      Json.Obj
        [ ("id", Json.Num 7.); ("op", Json.Str "chaos"); ("fault", Json.Str "raise") ]
    in
    match Serve.request ~socket crash with
    | Error e -> failf "chaos crash request: %s" e
    | Ok reply ->
        all_of
          [
            (fun () ->
              if status_of reply = "error" && error_kind_of reply = "internal_error" then Pass
              else
                failf "chaos crash: want error/internal_error, got %s/%s" (status_of reply)
                  (error_kind_of reply));
            (fun () ->
              match Serve.request ~socket (size_request ~id:8 c) with
              | Error e -> failf "after chaos crash: %s" e
              | Ok r -> check_sizing_reply ~what:"after chaos crash" ~expected r);
          ]

let check_serve_case c =
  match expected_result c with
  | Error e -> Fail e
  | Ok expected ->
      let server = Serve.start ~config:(oracle_config ()) () in
      let socket = Serve.socket_path server in
      Fun.protect
        ~finally:(fun () -> Serve.stop server)
        (fun () ->
          all_of
            [
              (fun () -> pipelined_batch c socket expected);
              (fun () -> concurrent_clients c socket expected);
              (fun () -> telemetry_probe c socket expected);
              (fun () -> chaos_probe c socket expected);
              (fun () -> stats_probe socket);
              (fun () -> flight_probe socket);
              (fun () ->
                (* Survival: the server still answers ping at the end. *)
                match
                  Serve.request ~socket (Json.Obj [ ("op", Json.Str "ping") ])
                with
                | Error e -> failf "final ping: %s" e
                | Ok reply ->
                    if status_of reply = "ok" then Pass
                    else failf "final ping: status %s" (status_of reply));
            ])

let serve_label c =
  Printf.sprintf "serve: %d-byte spec, budget %d, max_states %d" (String.length c.sv_text)
    c.sv_budget c.sv_max_states

let case ~text ~budget ~max_states ~seed =
  let c = { sv_text = text; sv_budget = budget; sv_max_states = max_states; sv_seed = seed } in
  {
    label = serve_label c;
    repro =
      Printf.sprintf "# oracle: serve\n# serve cross-check: budget %d words, max_states %d, seed %d\n%s"
        c.sv_budget c.sv_max_states c.sv_seed c.sv_text;
    check = (fun () -> check_serve_case c);
    (* A serve case has no structural shrink: the batch is fixed and the
       architecture only parameterizes the payload (chaos precedent). *)
    shrink = (fun () -> []);
  }

let oracle =
  {
    name = "serve";
    doc = "daemon replies typed, exactly-once, and bitwise-equal to direct library calls";
    generate =
      (fun ~max_states rng ->
        let topology, traffic = Gen_model.arch rng in
        let nclients = Splitting.total_clients (Splitting.split traffic) in
        let budget = nclients * (2 + Rng.int rng 3) in
        case
          ~text:(Spec_parser.to_string topology traffic)
          ~budget
          ~max_states:(Int.max 8 (Int.min max_states 24))
          ~seed:(1 + Rng.int rng 1_000_000));
  }
