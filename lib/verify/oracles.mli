(** The oracle matrix: independent solution routes cross-checked on random
    instances (see DESIGN.md §6.1 for the full matrix and tolerances).

    - [simplex-cross]: dense tableau vs sparse revised simplex on random
      LPs — same classification, same objective.
    - [mdp-gain]: occupation-measure LP (both engines) vs average-cost
      policy iteration vs small-discount value iteration on random
      unichain CTMDPs.
    - [sim-analytic]: M/M/1/K product form vs generator-based CTMC
      stationary solve vs closed forms vs replicated discrete-event
      simulation (confidence-interval aware).
    - [sizing-bounds]: joint vs separate sizing solves on random bridged
      architectures — bound ordering, budget conservation, repro
      round-trips.
    - [split-monolithic]: the split linear solution vs damped Newton and a
      Picard fixed point on the monolithic quadratic closure; exact
      agreement on the decoupled ([cross_fraction = 0]) boundary.
    - [kron]: random SAN descriptors — Kronecker shuffle SpMV, transposed
      SpMV, diagonal, and adjointness vs the materialized joint generator
      to 1e-12, and the Kronecker-side stationary power iteration vs the
      dense GTH solve to 1e-8 (warm re-seeding must hold the fixed point
      to 1e-10).
    - [topo]: random mesh/torus NoC instances with shared-pool routers —
      dimension-order route lengths vs grid distances, per-edge transit
      folding vs the split's bridge clients, the DAMQ shared-pool LP never
      worse than the static partition at equal capacity, and a replicated
      DES of the sized allocation conserving offered traffic and
      responding monotonically to extra buffer space.
    - [chaos] ({!Chaos.oracle}): injected numeric faults (singular bases,
      degenerate pivots, rate underflow/overflow, reducible chains,
      expired budgets, stiff closures) must surface as structured
      [Degraded]/[Failed] diagnostics — never an uncaught exception, a
      NaN/Inf result, or a silently drifted [Ok] answer. *)

val all : Oracle.t list

val find : string -> Oracle.t option

val names : unit -> string list

val case_of_repro : string -> (Oracle.case, string) result
(** Reconstruct a runnable case from the contents of a [.repro] file
    written by {!Driver} (dispatching on its [# oracle:] header) — the
    replay half of [bufsize verify --replay]. *)
