(** Constrained average-cost CTMDP solving — the paper's method wrapped in
    one call, with diagnostics.

    Combines {!Lp_formulation} (the only solver able to handle the
    constraints), {!Kswitching} (structure of the optimal policy), and a
    sanity cross-check of the reported gain against a re-evaluation of the
    extracted policy.

    Also provides a Lagrangian alternative: dualize the constraints and
    solve the resulting unconstrained CTMDPs by policy iteration, adjusting
    the multiplier by bisection.  Used by the ABL-SOLVER ablation and as a
    scalable fallback for very large models. *)

type result = {
  solved : Lp_formulation.solved;
  switching : Kswitching.analysis;
  policy_gain_check : float;
      (** gain of the extracted policy re-evaluated through its CTMC;
          should match [solved.gain] up to numerical error for unichain
          models *)
}

type outcome =
  | Feasible of result
  | Infeasible
  | Unbounded

val solve :
  ?max_iter:int -> bounds:Lp_formulation.bound array -> Ctmdp.t -> outcome

val solve_diag :
  ?max_iter:int ->
  ?budget:Bufsize_resilience.Resilience.budget ->
  bounds:Lp_formulation.bound array ->
  Ctmdp.t ->
  outcome option * Bufsize_resilience.Resilience.diagnostic
(** {!solve} through the LP escalation chain, reporting how the solve was
    obtained (engine fallbacks, anti-cycling, budget exhaustion) as a
    structured diagnostic. *)

val solve_lagrangian :
  ?bisection_steps:int ->
  ?price_hi:float ->
  budget:float ->
  extra:int ->
  Ctmdp.t ->
  (Policy_iteration.result * float) option
(** [solve_lagrangian ~budget ~extra m] minimizes cost subject to
    [E extra <= budget] by bisecting on the resource price: for price [y],
    policy iteration solves the unconstrained CTMDP with costs
    [c + y * r_extra].  Returns the policy-iteration result at the final
    price together with that price, or [None] when even price 0 satisfies
    the budget (the constraint is slack: the unconstrained optimum is
    returned inside [Some] in that case too — [None] only when policy
    iteration fails to converge). *)
