module Vec = Bufsize_numeric.Vec
module Obs = Bufsize_obs.Obs

let m_sweeps = Obs.counter "value_iteration.sweeps"

type result = {
  values : Vec.t;
  choice : int array;
  policy : Policy.t;
  iterations : int;
  converged : bool;
  span : float;
}

let solve ?(max_iter = 100_000) ?(tol = 1e-9) ~alpha m =
  if alpha <= 0. then invalid_arg "Value_iteration.solve: alpha must be positive";
  let n = Ctmdp.num_states m in
  let big_lambda = Float.max 1e-9 (Ctmdp.max_exit_rate m) in
  let denom = alpha +. big_lambda in
  let beta = big_lambda /. denom in
  (* Uniformized Bellman operator.  For action a in state s:
     T_a(v) = c/denom + beta * sum_j P(j|s,a) v(j), where the uniformized
     kernel is P(j|s,a) = rate/big_lambda off-diagonal and the leftover
     mass (1 - exit/big_lambda) stays in s.  The kernel is precomputed
     into flat arrays once — the transition lists would otherwise be
     walked (boxed, pointer-chasing) on every sweep. *)
  let precomputed =
    Array.init n (fun s ->
        Array.init (Ctmdp.num_actions m s) (fun a ->
            let act = Ctmdp.action m s a in
            let exit = Ctmdp.exit_rate act in
            let nt = List.length act.Ctmdp.transitions in
            let targets = Array.make nt 0 in
            let weights = Array.make nt 0. in
            List.iteri
              (fun k (j, r) ->
                targets.(k) <- j;
                weights.(k) <- r /. big_lambda)
              act.Ctmdp.transitions;
            (act.Ctmdp.cost /. denom, 1. -. (exit /. big_lambda), targets, weights)))
  in
  let q_value v s a =
    let scaled_cost, stay_coef, targets, weights = precomputed.(s).(a) in
    let flow = ref 0. in
    for k = 0 to Array.length targets - 1 do
      flow := !flow +. (weights.(k) *. v.(targets.(k)))
    done;
    let stay = stay_coef *. v.(s) in
    scaled_cost +. (beta *. (!flow +. stay))
  in
  let bellman v =
    let next = Array.make n 0. in
    let choice = Array.make n 0 in
    for s = 0 to n - 1 do
      let k = Ctmdp.num_actions m s in
      let best = ref (q_value v s 0) and best_a = ref 0 in
      for a = 1 to k - 1 do
        let q = q_value v s a in
        if q < !best then begin
          best := q;
          best_a := a
        end
      done;
      next.(s) <- !best;
      choice.(s) <- !best_a
    done;
    (next, choice)
  in
  let span u v =
    let lo = ref infinity and hi = ref neg_infinity in
    for s = 0 to n - 1 do
      let d = u.(s) -. v.(s) in
      if d < !lo then lo := d;
      if d > !hi then hi := d
    done;
    !hi -. !lo
  in
  let rec loop v iters =
    Obs.incr m_sweeps;
    let next, choice = bellman v in
    let sp = span next v in
    if sp <= tol || iters >= max_iter then
      {
        values = next;
        choice;
        policy = Policy.deterministic m choice;
        iterations = iters;
        converged = sp <= tol;
        span = sp;
      }
    else loop next (iters + 1)
  in
  loop (Vec.zeros n) 0

module Resilience = Bufsize_resilience.Resilience

(* Diagnostic wrapper: span convergence and value finiteness as data. *)
let solve_diag ?budget ?max_iter ?tol ~alpha m =
  let budget = match budget with Some b -> b | None -> Resilience.of_env () in
  Resilience.escalate
    ~solver:(Printf.sprintf "value_iteration.solve(n=%d)" (Ctmdp.num_states m))
    ~budget
    [
      Resilience.step "uniformized-value-iteration" (fun _ ->
          let r = solve ?max_iter ?tol ~alpha m in
          if not (Resilience.all_finite r.values) then
            Resilience.Reject "value vector contains NaN/Inf"
          else
            let meta = Resilience.meta ~iterations:r.iterations ~residual:r.span () in
            if r.converged then Resilience.Accept (r, meta)
            else Resilience.Partial (r, meta, "span target not reached within max_iter"));
    ]
