(** Average-cost policy iteration for unichain CTMDPs.

    Works directly in continuous time: for a stationary deterministic
    policy [phi], the gain [g] and bias [h] solve

    {v  c_phi - g 1 + Q_phi h = 0,   h(s0) = 0  v}

    and the improvement step replaces [phi(s)] by the action minimizing
    [c(s,a) + sum_j q(j|s,a) h(j)].  Unconstrained only — it serves as an
    independent cross-check of the LP formulation (they must agree on the
    gain) and as the inner solver of the Lagrangian decomposition. *)

type result = {
  policy : Policy.t;
  choice : int array;  (** the deterministic action choice *)
  gain : float;
  bias : Bufsize_numeric.Vec.t;
  iterations : int;
  converged : bool;
}

val evaluate_deterministic : Ctmdp.t -> int array -> float * Bufsize_numeric.Vec.t
(** Gain and bias of a deterministic policy (bias normalized at state 0)
    by dense elimination of the (n+1)-unknown evaluation system.
    @raise Bufsize_numeric.Lu.Singular if the induced chain is not
    unichain (the evaluation system is singular). *)

val evaluate_deterministic_iterative :
  ?tol:float ->
  ?max_iter:int ->
  ?init_bias:Bufsize_numeric.Vec.t ->
  Ctmdp.t ->
  int array ->
  float * Bufsize_numeric.Vec.t
(** Same result through the sparse pipeline: stationary distribution of
    the induced chain for the gain, uniformized Poisson-equation sweeps
    for the bias.  O(nnz) per sweep, no dense allocation; used
    automatically by {!solve} above a few hundred states.  [init_bias]
    seeds the sweep with a previous policy's bias vector (re-pinned at
    [h(0) = 0]); the fixed point — and hence the result at convergence —
    is unchanged, a nearby seed only shrinks the sweep count.  Malformed
    seeds (wrong size, non-finite) are ignored. *)

val evaluate_deterministic_iterative_report :
  ?tol:float ->
  ?max_iter:int ->
  ?init_bias:Bufsize_numeric.Vec.t ->
  Ctmdp.t ->
  int array ->
  float * Bufsize_numeric.Vec.t * int * bool
(** {!evaluate_deterministic_iterative} plus the sweep count and whether
    the residual target was reached — convergence evidence for the
    resilience layer. *)

val evaluate : Ctmdp.t -> int array -> float * Bufsize_numeric.Vec.t
(** Size-dispatching policy evaluation: dense elimination below a few
    hundred states (degrading to the iterative path when the dense system
    is singular, i.e. the policy is multichain), iterative above. *)

val evaluate_diag :
  ?budget:Bufsize_resilience.Resilience.budget ->
  Ctmdp.t ->
  int array ->
  (float * Bufsize_numeric.Vec.t) option * Bufsize_resilience.Resilience.diagnostic
(** {!evaluate} with the fallback recorded instead of taken silently: a
    singular dense system rejects the first step with the pivot named, an
    unconverged iterative sweep surfaces as a best-known [Degraded]
    answer, and NaN/Inf in gain or bias is rejected outright. *)

val solve : ?max_iter:int -> ?tol:float -> ?initial:int array -> Ctmdp.t -> result
(** Policy iteration from [initial] (default: first action everywhere).
    [tol] (default [1e-9]) is the improvement threshold guarding against
    cycling on ties; [max_iter] defaults to [1000]. *)

val solve_diag :
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?max_iter:int ->
  ?tol:float ->
  ?initial:int array ->
  Ctmdp.t ->
  result option * Bufsize_resilience.Resilience.diagnostic
(** {!solve} as a diagnostic: [Ok] when converged, [Degraded] (with the
    best policy found) when the iteration cap was hit, [Failed] on
    NaN/Inf. *)
