(** Linear-programming formulation of average-cost (constrained) CTMDPs.

    Feinberg's occupation-measure LP (reference [1] of the paper): variables
    [x(s,a) >= 0] represent the long-run fraction of time spent in state [s]
    while using action [a].  The LP is

    {v
      minimize    sum c(s,a) x(s,a)
      subject to  sum_a x(s',a) q_exit(s',a) = sum_{s,a} rate(s->s'|a) x(s,a)
                  sum x(s,a) = 1
                  sum r_k(s,a) x(s,a)  (<=|=|>=)  bound_k     (k = 1..K)
      x >= 0
    v}

    One balance row is redundant and dropped.  An optimal basic solution
    induces an optimal stationary policy that randomizes in at most K
    states — the K-switching policy (see {!Kswitching}).

    [solve_joint] assembles the block LP of several independent CTMDPs
    (one balance+normalization block each) coupled only through shared
    resource rows — exactly the paper's "all the equations shall be solved
    in one go and not sequentially for each subsystem". *)

type bound = {
  sense : Bufsize_numeric.Lp.sense;
  value : float;
}

type solved = {
  gain : float;  (** optimal long-run average cost *)
  occupation : float array array;  (** x(s,a) *)
  policy : Policy.t;
  extras : float array;  (** achieved time-average of each extra *)
  extra_duals : float array;  (** multipliers of the resource rows *)
  lp_iterations : int;
}

type outcome =
  | Optimal of solved
  | Infeasible
  | Unbounded

val build : ?extra_bounds:bound array -> Ctmdp.t -> Bufsize_numeric.Lp.t
(** The LP model, exposed for inspection and benchmarks.  [extra_bounds]
    must have length [Ctmdp.num_extras]; omitted means unconstrained. *)

val solve :
  ?extra_bounds:bound array ->
  ?max_iter:int ->
  ?engine:Bufsize_numeric.Lp.engine ->
  Ctmdp.t ->
  outcome
(** Build and solve the LP for one CTMDP.  [engine] selects the dense or
    sparse-revised simplex (see {!Bufsize_numeric.Lp.engine}). *)

val solve_diag :
  ?extra_bounds:bound array ->
  ?max_iter:int ->
  ?engine:Bufsize_numeric.Lp.engine ->
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?warm_basis:int array ->
  Ctmdp.t ->
  outcome option * Bufsize_resilience.Resilience.diagnostic
(** {!solve} through {!Bufsize_numeric.Lp.solve_diag}: same model, same
    clean path, plus the engine escalation chain and a structured
    diagnostic instead of silent fallbacks.  [warm_basis] — the optimal
    basis of a related prior solve — is threaded through to every step of
    the chain (see {!Bufsize_numeric.Lp.solve_diag}); with warm starting
    enabled globally ({!Bufsize_numeric.Lp.set_warm_start}) bases also
    hand off implicitly between structurally identical solves. *)

type joint_solved = {
  total_gain : float;
  components : solved array;  (** per-component results, same order *)
  shared_extras : float array;  (** achieved totals across components *)
  shared_duals : float array;
  joint_iterations : int;
}

type joint_outcome =
  | Joint_optimal of joint_solved
  | Joint_infeasible
  | Joint_unbounded

val solve_joint :
  ?shared_bounds:bound array ->
  ?max_iter:int ->
  ?engine:Bufsize_numeric.Lp.engine ->
  Ctmdp.t array ->
  joint_outcome
(** One block LP over all components.  All components must agree on
    [num_extras]; [shared_bounds] constrain the {e sums} of each extra
    across components.  @raise Invalid_argument on mismatched extras. *)

val solve_joint_diag :
  ?shared_bounds:bound array ->
  ?max_iter:int ->
  ?engine:Bufsize_numeric.Lp.engine ->
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?warm_basis:int array ->
  Ctmdp.t array ->
  joint_outcome option * Bufsize_resilience.Resilience.diagnostic
(** {!solve_joint} with the LP engine escalation chain and a structured
    diagnostic.  [warm_basis] as in {!solve_diag}. *)
