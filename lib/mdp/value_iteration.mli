(** Discounted-cost value iteration via uniformization.

    An extension beyond the paper's average-cost setting: the CTMDP with
    continuous discount rate [alpha] is reduced to an equivalent discrete
    MDP by uniformization with constant [big_lambda]: discount factor
    [beta = big_lambda / (alpha + big_lambda)] and per-step cost
    [c / (alpha + big_lambda)].  Standard value iteration follows, with a
    span-seminorm stopping rule.  Useful for transient buffer-sizing
    questions (finite design windows). *)

type result = {
  values : Bufsize_numeric.Vec.t;  (** discounted value per state *)
  choice : int array;  (** greedy action per state *)
  policy : Policy.t;
  iterations : int;
  converged : bool;
  span : float;  (** final span of the value update *)
}

val solve :
  ?max_iter:int -> ?tol:float -> alpha:float -> Ctmdp.t -> result
(** [solve ~alpha m] with discount rate [alpha > 0].  [tol] (default
    [1e-9]) is the span target; [max_iter] defaults to [100_000].
    @raise Invalid_argument if [alpha <= 0]. *)

val solve_diag :
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?max_iter:int ->
  ?tol:float ->
  alpha:float ->
  Ctmdp.t ->
  result option * Bufsize_resilience.Resilience.diagnostic
(** {!solve} as a diagnostic: [Ok] when the span target was met,
    [Degraded] with the best iterate when [max_iter] was exhausted,
    [Failed] on NaN/Inf values. *)
