module Mat = Bufsize_numeric.Mat
module Vec = Bufsize_numeric.Vec
module Lu = Bufsize_numeric.Lu
module Sparse = Bufsize_numeric.Sparse
module Ctmc = Bufsize_prob.Ctmc
module Obs = Bufsize_obs.Obs

(* Evaluation telemetry: Poisson-equation sweeps of the iterative policy
   evaluation and improvement rounds of the outer policy iteration. *)
let m_poisson_sweeps = Obs.counter "policy_iteration.poisson_sweeps"
let m_improvements = Obs.counter "policy_iteration.improvements"

type result = {
  policy : Policy.t;
  choice : int array;
  gain : float;
  bias : Vec.t;
  iterations : int;
  converged : bool;
}

(* Unknowns: h(0..n-1) and g.  Equations: for each state s,
   sum_j Q_sj h(j) - g = -c_s; plus h(0) = 0. *)
let evaluate_deterministic m choice =
  let n = Ctmdp.num_states m in
  let a = Mat.zeros (n + 1) (n + 1) in
  let b = Array.make (n + 1) 0. in
  for s = 0 to n - 1 do
    let act = Ctmdp.action m s choice.(s) in
    let exit = Ctmdp.exit_rate act in
    Mat.update a s s (fun x -> x -. exit);
    List.iter (fun (j, r) -> Mat.update a s j (fun x -> x +. r)) act.Ctmdp.transitions;
    Mat.set a s n (-1.);
    b.(s) <- -.act.Ctmdp.cost
  done;
  Mat.set a n 0 1.;
  (* b.(n) = 0: bias normalized at state 0 *)
  let sol = Lu.solve a b in
  let bias = Array.sub sol 0 n in
  (sol.(n), bias)

(* Large-n evaluation without the dense (n+1)^2 system: gain from the
   induced chain's stationary distribution (itself iterative at this
   size), bias from the uniformized Poisson-equation sweep
   h <- h + (Q h + c - g)/Lambda pinned at h(0) = 0 — each sweep is one
   transposed-free SpMV. *)
let evaluate_deterministic_iterative_report ?(tol = 1e-10) ?(max_iter = 200_000) ?init_bias m
    choice =
  let n = Ctmdp.num_states m in
  let costs = Array.init n (fun s -> (Ctmdp.action m s choice.(s)).Ctmdp.cost) in
  let rates = ref [] in
  for s = n - 1 downto 0 do
    List.iter
      (fun (j, r) -> rates := (s, j, r) :: !rates)
      (Ctmdp.action m s choice.(s)).Ctmdp.transitions
  done;
  let chain = Ctmc.of_rates n !rates in
  let pi = Ctmc.stationary chain in
  let gain = ref 0. in
  for s = 0 to n - 1 do
    gain := !gain +. (pi.(s) *. costs.(s))
  done;
  let g = !gain in
  let q = Ctmc.sparse_generator chain in
  let lambda =
    let m = ref 0. in
    for s = 0 to n - 1 do
      m := Float.max !m (Ctmc.exit_rate chain s)
    done;
    Float.max (2. *. !m) 1e-300
  in
  let scale = 1. +. Float.abs g in
  (* A previous policy's bias (sweep warm start) is accepted as the
     starting point when finite and of the right size — re-pinned at
     h(0) = 0, since the sweep maintains that normalization.  The fixed
     point is unchanged, only the sweep count shrinks. *)
  let h =
    match init_bias with
    | Some h0
      when Array.length h0 = n && Array.for_all Float.is_finite h0 ->
        Array.init n (fun i -> h0.(i) -. h0.(0))
    | _ -> Array.make n 0.
  in
  let qh = Array.make n 0. in
  let continue = ref true in
  let iters = ref 0 in
  while !continue && !iters < max_iter do
    Sparse.mul_vec_into q h qh;
    let residual = ref 0. in
    for i = 0 to n - 1 do
      let r = qh.(i) +. costs.(i) -. g in
      residual := Float.max !residual (Float.abs r);
      h.(i) <- h.(i) +. (r /. lambda)
    done;
    let h0 = h.(0) in
    for i = 0 to n - 1 do
      h.(i) <- h.(i) -. h0
    done;
    incr iters;
    if !residual <= tol *. scale then continue := false
  done;
  Obs.add m_poisson_sweeps !iters;
  (g, h, !iters, not !continue)

let evaluate_deterministic_iterative ?tol ?max_iter ?init_bias m choice =
  let g, h, _, _ = evaluate_deterministic_iterative_report ?tol ?max_iter ?init_bias m choice in
  (g, h)

(* Dense elimination up to this many states; beyond it policy evaluation
   goes through the sparse iterative path and never allocates O(n^2). *)
let dense_threshold = 512

let evaluate m choice =
  if Ctmdp.num_states m > dense_threshold then evaluate_deterministic_iterative m choice
  else
    (* A multichain policy makes the dense evaluation system singular;
       rather than unwind, degrade to the iterative evaluation (whose
       stationary solve has its own reducible fallbacks). *)
    match evaluate_deterministic m choice with
    | r -> r
    | exception Lu.Singular _ -> evaluate_deterministic_iterative m choice

module Resilience = Bufsize_resilience.Resilience

let gain_bias_finite (g, h) = Float.is_finite g && Resilience.all_finite h

(* Diagnostic policy evaluation: the same dense-then-iterative chain as
   [evaluate], but every step is checked for finiteness and the fallback
   is recorded instead of taken silently.  Above the dense threshold only
   the iterative step runs (the dense system would allocate O(n^2)). *)
let evaluate_diag ?budget m choice =
  let budget = match budget with Some b -> b | None -> Resilience.of_env () in
  let accept pair ~iterations =
    if gain_bias_finite pair then
      Resilience.Accept (pair, Resilience.meta ~iterations ())
    else Resilience.Reject "gain/bias contains NaN/Inf"
  in
  let dense =
    Resilience.step "dense-lu" (fun _ ->
        match evaluate_deterministic m choice with
        | pair -> accept pair ~iterations:0
        | exception Lu.Singular k ->
            Resilience.Reject
              (Printf.sprintf "singular evaluation system (pivot %d): multichain policy" k))
  in
  let iterative =
    Resilience.step "uniformized-iterative" (fun _ ->
        let g, h, iters, converged = evaluate_deterministic_iterative_report m choice in
        if not (gain_bias_finite (g, h)) then
          Resilience.Reject "gain/bias contains NaN/Inf"
        else if converged then Resilience.Accept ((g, h), Resilience.meta ~iterations:iters ())
        else
          Resilience.Partial
            ((g, h), Resilience.meta ~iterations:iters (), "Poisson sweep hit max_iter"))
  in
  let steps =
    if Ctmdp.num_states m > dense_threshold then [ iterative ] else [ dense; iterative ]
  in
  Resilience.escalate
    ~solver:(Printf.sprintf "policy_iteration.evaluate(n=%d)" (Ctmdp.num_states m))
    ~budget steps

let improvement m bias =
  Array.init (Ctmdp.num_states m) (fun s ->
      let value a =
        let act = Ctmdp.action m s a in
        let exit = Ctmdp.exit_rate act in
        let flow =
          List.fold_left (fun acc (j, r) -> acc +. (r *. bias.(j))) 0. act.Ctmdp.transitions
        in
        act.Ctmdp.cost +. flow -. (exit *. bias.(s))
      in
      let k = Ctmdp.num_actions m s in
      let best = ref 0 and best_val = ref (value 0) in
      for a = 1 to k - 1 do
        let v = value a in
        if v < !best_val then begin
          best := a;
          best_val := v
        end
      done;
      (!best, !best_val))

let solve ?(max_iter = 1000) ?(tol = 1e-9) ?initial m =
  let n = Ctmdp.num_states m in
  let choice =
    match initial with
    | Some c ->
        if Array.length c <> n then invalid_arg "Policy_iteration.solve: initial length mismatch";
        Array.copy c
    | None -> Array.make n 0
  in
  let rec loop choice iters =
    Obs.incr m_improvements;
    let gain, bias = Obs.span ~name:"policy_iteration.evaluate" (fun () -> evaluate m choice) in
    if iters >= max_iter then
      { policy = Policy.deterministic m choice; choice; gain; bias; iterations = iters; converged = false }
    else begin
      let improved = improvement m bias in
      (* Keep the incumbent action unless a strictly better one exists:
         the standard tie-breaking that guarantees termination. *)
      let next = Array.copy choice in
      let changed = ref false in
      Array.iteri
        (fun s (best, best_val) ->
          let incumbent =
            let act = Ctmdp.action m s choice.(s) in
            let exit = Ctmdp.exit_rate act in
            let flow =
              List.fold_left (fun acc (j, r) -> acc +. (r *. bias.(j))) 0. act.Ctmdp.transitions
            in
            act.Ctmdp.cost +. flow -. (exit *. bias.(s))
          in
          if best_val < incumbent -. tol then begin
            next.(s) <- best;
            changed := true
          end)
        improved;
      if !changed then loop next (iters + 1)
      else
        { policy = Policy.deterministic m choice; choice; gain; bias; iterations = iters; converged = true }
    end
  in
  loop choice 0

(* Diagnostic wrapper around [solve]: convergence and finiteness become
   data.  One step only — policy iteration already escalates internally
   through [evaluate]'s dense-to-iterative fallback. *)
let solve_diag ?budget ?max_iter ?tol ?initial m =
  let budget = match budget with Some b -> b | None -> Resilience.of_env () in
  Resilience.escalate
    ~solver:(Printf.sprintf "policy_iteration.solve(n=%d)" (Ctmdp.num_states m))
    ~budget
    [
      Resilience.step "policy-iteration" (fun _ ->
          let r = solve ?max_iter ?tol ?initial m in
          if not (gain_bias_finite (r.gain, r.bias)) then
            Resilience.Reject "gain/bias contains NaN/Inf"
          else
            let meta = Resilience.meta ~iterations:r.iterations () in
            if r.converged then Resilience.Accept (r, meta)
            else Resilience.Partial (r, meta, "policy iteration hit max_iter"));
    ]
