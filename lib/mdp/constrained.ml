type result = {
  solved : Lp_formulation.solved;
  switching : Kswitching.analysis;
  policy_gain_check : float;
}

type outcome = Feasible of result | Infeasible | Unbounded

let outcome_of_lp ~bounds m = function
  | Lp_formulation.Infeasible -> Infeasible
  | Lp_formulation.Unbounded -> Unbounded
  | Lp_formulation.Optimal solved ->
      let switching =
        Kswitching.analyze ~constraints:(Array.length bounds) m solved.Lp_formulation.policy
      in
      let check = Policy.evaluate m solved.Lp_formulation.policy in
      Feasible { solved; switching; policy_gain_check = check.Policy.gain }

let solve ?max_iter ~bounds m =
  outcome_of_lp ~bounds m (Lp_formulation.solve ~extra_bounds:bounds ?max_iter m)

let solve_diag ?max_iter ?budget ~bounds m =
  let o, diag = Lp_formulation.solve_diag ~extra_bounds:bounds ?max_iter ?budget m in
  (Option.map (outcome_of_lp ~bounds m) o, diag)

let with_priced_extra m ~extra ~price =
  Ctmdp.map_costs m (fun _ _ act -> act.Ctmdp.cost +. (price *. act.Ctmdp.extras.(extra)))

let extra_usage m ~extra result =
  let eval = Policy.evaluate m result.Policy_iteration.policy in
  eval.Policy.extras.(extra)

let solve_lagrangian ?(bisection_steps = 40) ?(price_hi = 1e6) ~budget ~extra m =
  if extra < 0 || extra >= Ctmdp.num_extras m then
    invalid_arg "Constrained.solve_lagrangian: extra index out of range";
  let solve_at price =
    let priced = with_priced_extra m ~extra ~price in
    let r = Policy_iteration.solve priced in
    (* Report the gain in terms of the original costs. *)
    let eval = Policy.evaluate m r.Policy_iteration.policy in
    (r, eval.Policy.gain)
  in
  let r0, _ = solve_at 0. in
  if not r0.Policy_iteration.converged then None
  else if extra_usage m ~extra r0 <= budget then Some (r0, 0.)
  else begin
    (* Find a price making the budget hold, then bisect the threshold. *)
    let rec bracket price =
      if price > price_hi then price_hi
      else begin
        let r, _ = solve_at price in
        if extra_usage m ~extra r <= budget then price else bracket (price *. 4.)
      end
    in
    let hi0 = bracket 1e-3 in
    let rec bisect lo hi steps =
      if steps = 0 then hi
      else begin
        let mid = (lo +. hi) /. 2. in
        let r, _ = solve_at mid in
        if extra_usage m ~extra r <= budget then bisect lo mid (steps - 1)
        else bisect mid hi (steps - 1)
      end
    in
    let price = bisect 0. hi0 bisection_steps in
    let r, _ = solve_at price in
    Some (r, price)
  end
