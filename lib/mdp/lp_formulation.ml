module Lp = Bufsize_numeric.Lp
module Obs = Bufsize_obs.Obs

type bound = { sense : Lp.sense; value : float }

type solved = {
  gain : float;
  occupation : float array array;
  policy : Policy.t;
  extras : float array;
  extra_duals : float array;
  lp_iterations : int;
}

type outcome = Optimal of solved | Infeasible | Unbounded

(* Shared plumbing: add one CTMDP block (variables, balance rows minus one,
   normalization) to [lp].  Returns the variable handles as x.(s).(a) and a
   function accumulating the extra-resource terms of the block. *)
let add_block lp m ~prefix =
  let n = Ctmdp.num_states m in
  let x =
    Array.init n (fun s ->
        Array.init (Ctmdp.num_actions m s) (fun a ->
            Lp.add_var ~name:(Printf.sprintf "%sx_%d_%d" prefix s a) lp))
  in
  (* Balance rows: row s' collects q(s'|s,a) * x(s,a).  Emitted as flat
     term arrays (count pass, then fill pass) straight into the model's
     CSR store — no per-state term lists. *)
  let dummy = (0., x.(0).(0)) in
  let counts = Array.make n 0 in
  for s = 0 to n - 1 do
    Array.iteri
      (fun a _ ->
        let act = Ctmdp.action m s a in
        if Ctmdp.exit_rate act > 0. then counts.(s) <- counts.(s) + 1;
        List.iter (fun (j, _) -> counts.(j) <- counts.(j) + 1) act.Ctmdp.transitions)
      x.(s)
  done;
  let balance_terms = Array.map (fun c -> Array.make c dummy) counts in
  let fill = Array.make n 0 in
  let push r term =
    balance_terms.(r).(fill.(r)) <- term;
    fill.(r) <- fill.(r) + 1
  in
  for s = 0 to n - 1 do
    Array.iteri
      (fun a v ->
        let act = Ctmdp.action m s a in
        let exit = Ctmdp.exit_rate act in
        if exit > 0. then push s (-.exit, v);
        List.iter (fun (j, r) -> push j (r, v)) act.Ctmdp.transitions)
      x.(s)
  done;
  (* Drop the last balance row (linearly dependent on the others). *)
  for s = 0 to n - 2 do
    Lp.add_constraint_a ~name:(Printf.sprintf "%sbal_%d" prefix s) lp balance_terms.(s) Lp.Eq 0.
  done;
  let total_actions = Array.fold_left (fun acc row -> acc + Array.length row) 0 x in
  let normalization = Array.make total_actions dummy in
  let k = ref 0 in
  Array.iter
    (Array.iter (fun v ->
         normalization.(!k) <- (1., v);
         incr k))
    x;
  Lp.add_constraint_a ~name:(prefix ^ "norm") lp normalization Lp.Eq 1.;
  x

let objective_terms m x =
  let terms = ref [] in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun a v ->
          let c = (Ctmdp.action m s a).Ctmdp.cost in
          if c <> 0. then terms := (c, v) :: !terms)
        row)
    x;
  !terms

let extra_terms m x k =
  let terms = ref [] in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun a v ->
          let e = (Ctmdp.action m s a).Ctmdp.extras.(k) in
          if e <> 0. then terms := (e, v) :: !terms)
        row)
    x;
  !terms

let check_bounds m extra_bounds =
  match extra_bounds with
  | None -> ()
  | Some bs ->
      if Array.length bs <> Ctmdp.num_extras m then
        invalid_arg "Lp_formulation: extra_bounds length mismatch"

let build ?extra_bounds m =
  check_bounds m extra_bounds;
  let lp = Lp.create ~name:"ctmdp-average-cost" Lp.Minimize in
  let x = add_block lp m ~prefix:"" in
  (match extra_bounds with
  | None -> ()
  | Some bs ->
      Array.iteri
        (fun k b ->
          Lp.add_constraint ~name:(Printf.sprintf "extra_%d" k) lp (extra_terms m x k) b.sense
            b.value)
        bs);
  Lp.set_objective lp (objective_terms m x);
  lp

(* Extract occupation / extras / policy from raw LP values laid out as one
   block's x.(s).(a) handles. *)
let harvest m x values =
  let occupation =
    Array.map (Array.map (fun (v : Lp.var) -> Float.max 0. values.((v :> int)))) x
  in
  let extras = Array.make (Ctmdp.num_extras m) 0. in
  let gain = ref 0. in
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun a mass ->
          let act = Ctmdp.action m s a in
          gain := !gain +. (mass *. act.Ctmdp.cost);
          Array.iteri (fun k e -> extras.(k) <- extras.(k) +. (mass *. e)) act.Ctmdp.extras)
        row)
    occupation;
  (occupation, extras, !gain)

(* Assemble the single-model LP, returning the handles the harvest needs.
   [solve] and [solve_diag] share this so their models are identical. *)
let assemble ?extra_bounds m =
  check_bounds m extra_bounds;
  let lp = Lp.create ~name:"ctmdp-average-cost" Lp.Minimize in
  let x = add_block lp m ~prefix:"" in
  let n_structural_rows = Lp.num_constraints lp in
  (match extra_bounds with
  | None -> ()
  | Some bs ->
      Array.iteri
        (fun k b ->
          Lp.add_constraint ~name:(Printf.sprintf "extra_%d" k) lp (extra_terms m x k) b.sense
            b.value)
        bs);
  Lp.set_objective lp (objective_terms m x);
  (lp, x, n_structural_rows)

let outcome_of_lp ?extra_bounds m x n_structural_rows = function
  | Lp.Infeasible -> Infeasible
  | Lp.Unbounded -> Unbounded
  | Lp.Optimal sol ->
      let occupation, extras, gain = harvest m x sol.Lp.values in
      let num_bounds = match extra_bounds with None -> 0 | Some bs -> Array.length bs in
      let extra_duals =
        Array.init num_bounds (fun k -> sol.Lp.duals.(n_structural_rows + k))
      in
      Optimal
        {
          gain;
          occupation;
          policy = Policy.of_occupation m occupation;
          extras;
          extra_duals;
          lp_iterations = sol.Lp.iterations;
        }

let solve ?extra_bounds ?max_iter ?engine m =
  let lp, x, n_structural_rows = assemble ?extra_bounds m in
  outcome_of_lp ?extra_bounds m x n_structural_rows (Lp.solve ?max_iter ?engine lp)

let solve_diag ?extra_bounds ?max_iter ?engine ?budget ?warm_basis m =
  let lp, x, n_structural_rows = assemble ?extra_bounds m in
  let o, diag = Lp.solve_diag ?max_iter ?engine ?budget ?warm_basis lp in
  (Option.map (outcome_of_lp ?extra_bounds m x n_structural_rows) o, diag)

type joint_solved = {
  total_gain : float;
  components : solved array;
  shared_extras : float array;
  shared_duals : float array;
  joint_iterations : int;
}

type joint_outcome = Joint_optimal of joint_solved | Joint_infeasible | Joint_unbounded

let assemble_joint ?shared_bounds models =
  if Array.length models = 0 then invalid_arg "Lp_formulation.solve_joint: no components";
  let num_extras = Ctmdp.num_extras models.(0) in
  Array.iter
    (fun m ->
      if Ctmdp.num_extras m <> num_extras then
        invalid_arg "Lp_formulation.solve_joint: components disagree on extras")
    models;
  (match shared_bounds with
  | Some bs when Array.length bs <> num_extras ->
      invalid_arg "Lp_formulation.solve_joint: shared_bounds length mismatch"
  | _ -> ());
  let lp = Lp.create ~name:"ctmdp-joint" Lp.Minimize in
  let blocks =
    Array.mapi (fun i m -> add_block lp m ~prefix:(Printf.sprintf "b%d_" i)) models
  in
  let n_structural_rows = Lp.num_constraints lp in
  (match shared_bounds with
  | None -> ()
  | Some bs ->
      Array.iteri
        (fun k b ->
          let terms =
            Array.to_list (Array.mapi (fun i m -> extra_terms m blocks.(i) k) models)
            |> List.concat
          in
          Lp.add_constraint ~name:(Printf.sprintf "shared_%d" k) lp terms b.sense b.value)
        bs);
  let objective =
    Array.to_list (Array.mapi (fun i m -> objective_terms m blocks.(i)) models) |> List.concat
  in
  Lp.set_objective lp objective;
  (lp, blocks, n_structural_rows, num_extras)

let joint_outcome_of_lp ?shared_bounds models blocks n_structural_rows num_extras = function
  | Lp.Infeasible -> Joint_infeasible
  | Lp.Unbounded -> Joint_unbounded
  | Lp.Optimal sol ->
      let components =
        Array.mapi
          (fun i m ->
            let occupation, extras, gain = harvest m blocks.(i) sol.Lp.values in
            {
              gain;
              occupation;
              policy = Policy.of_occupation m occupation;
              extras;
              extra_duals = [||];
              lp_iterations = sol.Lp.iterations;
            })
          models
      in
      let shared_extras = Array.make num_extras 0. in
      Array.iter
        (fun c -> Array.iteri (fun k e -> shared_extras.(k) <- shared_extras.(k) +. e) c.extras)
        components;
      let num_bounds = match shared_bounds with None -> 0 | Some bs -> Array.length bs in
      let shared_duals =
        Array.init num_bounds (fun k -> sol.Lp.duals.(n_structural_rows + k))
      in
      Joint_optimal
        {
          total_gain = Array.fold_left (fun acc c -> acc +. c.gain) 0. components;
          components;
          shared_extras;
          shared_duals;
          joint_iterations = sol.Lp.iterations;
        }

let solve_joint ?shared_bounds ?max_iter ?engine models =
  let lp, blocks, n_structural_rows, num_extras = assemble_joint ?shared_bounds models in
  joint_outcome_of_lp ?shared_bounds models blocks n_structural_rows num_extras
    (Lp.solve ?max_iter ?engine lp)

let solve_joint_diag ?shared_bounds ?max_iter ?engine ?budget ?warm_basis models =
  let lp, blocks, n_structural_rows, num_extras =
    Obs.span ~name:"lp_formulation.assemble_joint"
      ~attrs:(fun () -> [ ("blocks", string_of_int (Array.length models)) ])
      (fun () -> assemble_joint ?shared_bounds models)
  in
  Obs.span ~name:"lp_formulation.solve_joint"
    ~attrs:(fun () ->
      [
        ("blocks", string_of_int (Array.length models));
        ("rows", string_of_int (Lp.num_constraints lp));
        ("nnz", string_of_int (Lp.num_terms lp));
      ])
  @@ fun () ->
  let o, diag = Lp.solve_diag ?max_iter ?engine ?budget ?warm_basis lp in
  ( Option.map
      (joint_outcome_of_lp ?shared_bounds models blocks n_structural_rows num_extras)
      o,
    diag )
