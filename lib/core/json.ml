(* A minimal strict JSON parser and printer, dependency-free.

   Originally the test-suite's round-trip checker for the hand-written
   JSON the exporters emit; promoted into the library when the sizing
   service started parsing requests off a socket.  Untrusted input is the
   design point: the parser is strict (no trailing garbage, no unpaired
   surrogates-by-accident), never raises on malformed bytes ([parse]
   returns [Error]), and bounds its recursion with a nesting-depth cap so
   a crafted [[[[... line cannot blow the stack of a server worker. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

(* Deep enough for any document this system emits, shallow enough that
   the recursive descent stays well inside the stack. *)
let default_max_depth = 256

let parse ?(max_depth = default_max_depth) (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'u' ->
              advance ();
              let c = parse_hex4 () in
              (* This system only emits code points below 0x80 via \u, so
                 a raw byte is enough here. *)
              if c < 0x80 then Buffer.add_char b (Char.chr c)
              else Buffer.add_string b (Printf.sprintf "\\u%04X" c);
              pos := !pos - 1
          | _ -> fail "bad escape");
          advance ();
          loop ())
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let parse_exn s = match parse s with Ok v -> v | Error e -> failwith ("bad JSON: " ^ e)

(* ------------------------------------------------------------ printing *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Numbers print with %.17g so every float round-trips bitwise through
   parse (integers within 2^53 print without an exponent or dot, matching
   how ids and counts are written by hand elsewhere); NaN/infinities have
   no JSON spelling and become null, mirroring [Resilience.to_json]. *)
let number_repr f =
  if Float.is_integer f && Float.abs f <= 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let encode_buf buf v =
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        Buffer.add_string buf (if Float.is_finite f then number_repr f else "null")
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v

let encode v =
  let buf = Buffer.create 256 in
  encode_buf buf v;
  Buffer.contents buf

(* ------------------------------------------------------- accessors *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let member_exn k v =
  match member k v with
  | Some x -> x
  | None -> failwith (Printf.sprintf "missing member %S" k)

let to_string = function Str s -> s | _ -> failwith "expected a string"
let to_number = function Num f -> f | _ -> failwith "expected a number"
let to_list = function List l -> l | _ -> failwith "expected an array"
let to_bool = function Bool b -> b | _ -> failwith "expected a bool"

(* Option-returning lookups for protocol code that must not raise on
   adversarial input. *)
let string_opt = function Str s -> Some s | _ -> None
let number_opt = function Num f -> Some f | _ -> None

let int_opt v =
  match v with
  | Num f when Float.is_integer f && Float.abs f <= 1e9 -> Some (int_of_float f)
  | _ -> None

let mem_string k v = Option.bind (member k v) string_opt
let mem_number k v = Option.bind (member k v) number_opt
let mem_int k v = Option.bind (member k v) int_opt
