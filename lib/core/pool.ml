(* A job is an array of independent items claimed by index from a shared
   atomic counter.  Workers are persistent domains that sleep between jobs;
   a generation counter tells them a new job was published.  The caller's
   domain participates in every job, so a pool of size [k] really applies
   [k] domains to the work. *)

type job = {
  run : int -> unit;  (* process item [i]; must not raise (pre-wrapped) *)
  count : int;
  chunk : int;  (* indices claimed per steal; >= 1 *)
  next : int Atomic.t;  (* next unclaimed index *)
  remaining : int Atomic.t;  (* items not yet finished *)
  fin_m : Mutex.t;
  fin_cv : Condition.t;
  mutable fin : bool;
}

type t = {
  total : int;  (* worker domains + the calling domain *)
  m : Mutex.t;
  cv : Condition.t;
  mutable gen : int;  (* bumped when [current] is published *)
  mutable current : job option;
  mutable stop : bool;
  busy : Mutex.t;  (* held by the caller for a whole map; try-locked *)
  mutable workers : unit Domain.t array;
}

(* Claim [chunk] consecutive indices per fetch_and_add instead of one:
   with fine-grained items the single shared counter was the contention
   point that made small pools slower than sequential (every item bounced
   the counter's cache line across domains).  Item order within a block is
   ascending, and block boundaries do not affect results — each item still
   writes only its own slot. *)
let steal job =
  let rec loop () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.count then begin
      let stop = Int.min job.count (start + job.chunk) in
      for i = start to stop - 1 do
        job.run i
      done;
      let block = stop - start in
      if Atomic.fetch_and_add job.remaining (-block) = block then begin
        Mutex.lock job.fin_m;
        job.fin <- true;
        Condition.broadcast job.fin_cv;
        Mutex.unlock job.fin_m
      end;
      loop ()
    end
  in
  loop ()

let worker_loop pool =
  let rec loop last_gen =
    Mutex.lock pool.m;
    while (not pool.stop) && pool.gen = last_gen do
      Condition.wait pool.cv pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      let gen = pool.gen and job = pool.current in
      Mutex.unlock pool.m;
      (match job with Some j -> steal j | None -> ());
      loop gen
    end
  in
  loop 0

let env_true name =
  match Sys.getenv_opt name with
  | Some ("1" | "on" | "true" | "yes") -> true
  | Some _ | None -> false

(* More domains than cores is pure overhead under OCaml 5's stop-the-world
   minor GC — the 4-domain slowdown recorded in BENCH_parallel.json came
   from exactly this on a small container.  [create] therefore caps the
   pool at the hardware's recommended domain count unless the caller (or
   BUFSIZE_POOL_OVERSUBSCRIBE=1) explicitly asks to exceed it, e.g. tests
   that must exercise real multi-domain execution on any machine. *)
let create ?(oversubscribe = false) total =
  if total < 1 then invalid_arg "Pool.create: need at least one domain";
  let total =
    if oversubscribe || env_true "BUFSIZE_POOL_OVERSUBSCRIBE" then total
    else Int.min total (Int.max 1 (Domain.recommended_domain_count ()))
  in
  let pool =
    {
      total;
      m = Mutex.create ();
      cv = Condition.create ();
      gen = 0;
      current = None;
      stop = false;
      busy = Mutex.create ();
      workers = [||];
    }
  in
  pool.workers <- Array.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.total

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let default_size () =
  match Sys.getenv_opt "BUFSIZE_NUM_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          invalid_arg "Pool.default_size: BUFSIZE_NUM_DOMAINS must be a positive integer")

let default_m = Mutex.create ()
let default_p = ref None

let default () =
  Mutex.lock default_m;
  let p =
    match !default_p with
    | Some p -> p
    | None ->
        let p = create (default_size ()) in
        default_p := Some p;
        p
  in
  Mutex.unlock default_m;
  p

(* Steal granularity: an explicit [?chunk] wins, then the
   BUFSIZE_POOL_CHUNK environment knob, then a heuristic giving each
   domain ~8 steals per job — coarse enough to keep counter traffic
   negligible, fine enough that uneven item costs still balance. *)
let chunk_env =
  match Sys.getenv_opt "BUFSIZE_POOL_CHUNK" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some c when c >= 1 -> Some c
      | Some _ | None ->
          invalid_arg "Pool: BUFSIZE_POOL_CHUNK must be a positive integer")

let resolve_chunk pool ~chunk n =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Pool: chunk must be a positive integer"
  | None -> (
      match chunk_env with
      | Some c -> c
      | None -> Int.max 1 (n / (8 * pool.total)))

(* Run [f 0 .. f (n-1)] on the pool.  Sequential when the pool has one
   domain, was shut down, or is already running a job (nested calls from a
   worker's item function, or concurrent callers) — the try-lock on [busy]
   makes re-entrancy a graceful degradation instead of a deadlock. *)
let run_items ?chunk pool f n =
  if n > 0 then begin
    if pool.total = 1 || n = 1 || Array.length pool.workers = 0 || not (Mutex.try_lock pool.busy)
    then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let error = Atomic.make None in
      (* Spans opened inside pooled items run on worker domains, where the
         caller's span stack is invisible; capturing the caller's span
         context here and restoring it around each item parents them
         correctly (and costs nothing when tracing is off). *)
      let ctx = Bufsize_obs.Obs.current_context () in
      (* The caller may be inside a per-request telemetry capture; its
         sink travels with the job the same way the span parent does, so
         spans from pooled items land in the request's subtree. *)
      let snk = Bufsize_obs.Obs.current_sink () in
      (* Likewise for the ambient solve deadline: it is domain-local, so a
         worker domain would otherwise run the caller's items with no
         deadline at all and a budget-bounded solve could overrun by
         exactly the parallel fraction. *)
      let ambient = Bufsize_resilience.Resilience.ambient_budget () in
      let with_ambient g =
        match ambient with
        | None -> g ()
        | Some b -> Bufsize_resilience.Resilience.with_ambient_budget b g
      in
      let guarded i =
        if Atomic.get error = None then
          try
            with_ambient (fun () ->
                Bufsize_obs.Obs.with_sink snk (fun () ->
                    Bufsize_obs.Obs.with_context ctx (fun () -> f i)))
          with e -> ignore (Atomic.compare_and_set error None (Some e))
      in
      let job =
        {
          run = guarded;
          count = n;
          chunk = resolve_chunk pool ~chunk n;
          next = Atomic.make 0;
          remaining = Atomic.make n;
          fin_m = Mutex.create ();
          fin_cv = Condition.create ();
          fin = false;
        }
      in
      Mutex.lock pool.m;
      pool.current <- Some job;
      pool.gen <- pool.gen + 1;
      Condition.broadcast pool.cv;
      Mutex.unlock pool.m;
      steal job;
      Mutex.lock job.fin_m;
      while not job.fin do
        Condition.wait job.fin_cv job.fin_m
      done;
      Mutex.unlock job.fin_m;
      Mutex.lock pool.m;
      pool.current <- None;
      Mutex.unlock pool.m;
      Mutex.unlock pool.busy;
      match Atomic.get error with Some e -> raise e | None -> ()
    end
  end

let mapi_array ?pool ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let pool = match pool with Some p -> p | None -> default () in
    if pool.total = 1 || n = 1 then Array.mapi f a
    else begin
      (* An option buffer keeps the write type-safe for any ['b] (a raw
         [Array.make] with a dummy would misrepresent float arrays). *)
      let out = Array.make n None in
      run_items ?chunk pool (fun i -> out.(i) <- Some (f i a.(i))) n;
      Array.map (function Some v -> v | None -> assert false) out
    end
  end

let map_array ?pool ?chunk f a = mapi_array ?pool ?chunk (fun _ x -> f x) a
