module Obs = Bufsize_obs.Obs
module Pool = Bufsize_pool.Pool
module Resilience = Bufsize_resilience.Resilience
module Json = Bufsize_json.Json
module Serve = Bufsize_serve.Serve
module Numeric = Bufsize_numeric
module Prob = Bufsize_prob
module Mdp = Bufsize_mdp
module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Splitting = Bufsize_soc.Splitting
module Bus_model = Bufsize_soc.Bus_model
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Sizing = Bufsize_soc.Sizing
module Monolithic = Bufsize_soc.Monolithic
module San_bridge = Bufsize_soc.San_bridge
module Dot = Bufsize_soc.Dot
module Spec_parser = Bufsize_soc.Spec_parser
module Fig1 = Bufsize_soc.Fig1
module Netproc = Bufsize_soc.Netproc
module Amba = Bufsize_soc.Amba
module Arbiter = Bufsize_sim.Arbiter
module Metrics = Bufsize_sim.Metrics
module Sim_run = Bufsize_sim.Sim_run
module Replicate = Bufsize_sim.Replicate
module Verify = Bufsize_verify

type experiment = {
  traffic : Traffic.t;
  sizing_config : Sizing.config;
  arbiter : Arbiter.t;
  horizon : float;
  warmup : float;
  replications : int;
  seed : int;
  timeout_factor : float;
}

let experiment ?(horizon = 2000.) ?(warmup = 100.) ?(replications = 10) ?(seed = 1)
    ?(arbiter = Arbiter.Longest_queue) ?(timeout_factor = 3.0) ?config ~budget traffic =
  let sizing_config =
    match config with Some c -> { c with Sizing.budget } | None -> Sizing.default_config ~budget
  in
  { traffic; sizing_config; arbiter; horizon; warmup; replications; seed; timeout_factor }

type variant = {
  label : string;
  allocation : Buffer_alloc.t;
  timeout : Sim_run.timeout_policy option;
  aggregate : Replicate.aggregate;
}

type outcome = {
  exp_config : experiment;
  sizing : Sizing.result;
  before : variant;
  after : variant;
  timeout_variant : variant;
  improvement_vs_before : float;
  improvement_vs_timeout : float;
}

let run_variant exp_config ~label ~allocation ~(timeout : Sim_run.timeout_policy option) =
  let spec =
    {
      Sim_run.traffic = exp_config.traffic;
      allocation;
      arbiter = exp_config.arbiter;
      timeout;
      horizon = exp_config.horizon;
      warmup = exp_config.warmup;
      seed = exp_config.seed;
    }
  in
  let aggregate = Replicate.run ~replications:exp_config.replications spec in
  { label; allocation; timeout; aggregate }

let size_and_evaluate exp_config =
  let budget = exp_config.sizing_config.Sizing.budget in
  let uniform = Buffer_alloc.uniform exp_config.traffic ~budget in
  let before = run_variant exp_config ~label:"before (uniform)" ~allocation:uniform ~timeout:None in
  let sizing = Sizing.run exp_config.sizing_config exp_config.traffic in
  let after =
    run_variant exp_config ~label:"after (CTMDP sizing)" ~allocation:sizing.Sizing.allocation
      ~timeout:None
  in
  (* The paper's timeout threshold: "the average time spent by a request in
     a buffer" — measured per buffer on a calibration run of the baseline
     system (buffers differ in load by orders of magnitude, so a global
     average would starve the hot ones). *)
  let calibration =
    Sim_run.run
      {
        Sim_run.traffic = exp_config.traffic;
        allocation = uniform;
        arbiter = exp_config.arbiter;
        timeout = None;
        horizon = exp_config.horizon;
        warmup = exp_config.warmup;
        seed = exp_config.seed;
      }
  in
  let global_mean = Metrics.mean_buffer_sojourn calibration in
  let per_buffer bus client =
    let found =
      Array.find_opt
        (fun (b : Metrics.buffer_stats) ->
          b.Metrics.bus = bus && Traffic.client_equal b.Metrics.client client)
        calibration.Metrics.buffers
    in
    match found with
    | Some b when Float.is_finite b.Metrics.mean_sojourn && b.Metrics.mean_sojourn > 0. ->
        exp_config.timeout_factor *. b.Metrics.mean_sojourn
    | Some _ | None -> exp_config.timeout_factor *. global_mean
  in
  let timeout_variant =
    run_variant exp_config ~label:"timeout policy" ~allocation:uniform
      ~timeout:(Some (Sim_run.Per_buffer per_buffer))
  in
  let mean_lost v = Numeric.Stats.mean v.aggregate.Replicate.total_lost in
  let improvement base v =
    let b = mean_lost base in
    if b <= 0. then 0. else (b -. mean_lost v) /. b
  in
  {
    exp_config;
    sizing;
    before;
    after;
    timeout_variant;
    improvement_vs_before = improvement before after;
    improvement_vs_timeout = improvement timeout_variant after;
  }

let profiled_sizing ?(rounds = 3) exp_config =
  if rounds < 1 then invalid_arg "Bufsize.profiled_sizing: need at least one round";
  let simulate allocation =
    Sim_run.run
      {
        Sim_run.traffic = exp_config.traffic;
        allocation;
        arbiter = exp_config.arbiter;
        timeout = None;
        horizon = exp_config.horizon;
        warmup = exp_config.warmup;
        seed = exp_config.seed;
      }
  in
  let rates_of (report : Metrics.report) bus client =
    Array.find_opt
      (fun (b : Metrics.buffer_stats) ->
        b.Metrics.bus = bus && Traffic.client_equal b.Metrics.client client)
      report.Metrics.buffers
    |> Option.map (fun (b : Metrics.buffer_stats) ->
           float_of_int b.Metrics.arrivals /. report.Metrics.horizon)
  in
  let rec loop k sizing losses =
    let report = simulate sizing.Sizing.allocation in
    let losses = float_of_int (Metrics.total_lost report) :: losses in
    if k >= rounds then (sizing, List.rev losses)
    else begin
      let resized =
        Sizing.run ~measured_rates:(rates_of report) exp_config.sizing_config exp_config.traffic
      in
      loop (k + 1) resized losses
    end
  in
  loop 1 (Sizing.run exp_config.sizing_config exp_config.traffic) []

(* Discretize simulated queue lengths (words) onto the CTMDP's model levels
   and sample the optimal policy's action.  The mapping mirrors the sizing
   granularity: one model level per [words_per_level] words, clamped to the
   client's level range.  The simulator's view lists clients in the same
   deterministic order as the subsystem (both come from
   [Traffic.clients_of_bus]), so positions can be matched by client. *)
let stochastic_arbiter (sizing : Sizing.result) =
  let per_bus = Hashtbl.create 8 in
  Array.iter
    (fun (sol : Sizing.subsystem_solution) ->
      let model = sol.Sizing.model in
      let sub = Bus_model.subsystem model in
      Hashtbl.replace per_bus sub.Splitting.bus
        (model, sol.Sizing.solved.Mdp.Lp_formulation.policy))
    sizing.Sizing.solutions;
  let g = Float.max 1e-9 sizing.Sizing.words_per_level in
  let position_of sub (cm : Bus_model.client_model) =
    let rec scan i = function
      | [] -> None
      | (c, _) :: rest ->
          if Traffic.client_equal c cm.Bus_model.client then Some i else scan (i + 1) rest
    in
    scan 0 sub.Splitting.clients
  in
  let f (view : Arbiter.view) rng =
    match Hashtbl.find_opt per_bus view.Arbiter.bus with
    | None -> None
    | Some (model, policy) ->
        let sub = Bus_model.subsystem model in
        let loaded = Bus_model.loaded_clients model in
        let occupancy =
          Array.map
            (fun (cm : Bus_model.client_model) ->
              match position_of sub cm with
              | None -> 0
              | Some i when i >= Array.length view.Arbiter.queue_lengths -> 0
              | Some i ->
                  let words = view.Arbiter.queue_lengths.(i) in
                  Int.min cm.Bus_model.levels
                    (int_of_float (Float.round (float_of_int words /. g))))
            loaded
        in
        let state = Bus_model.encode model occupancy in
        let action = Mdp.Policy.sample_action rng policy state in
        let act = Mdp.Ctmdp.action (Bus_model.ctmdp model) state action in
        (* Action labels are "serve<i>" (index over loaded clients) or
           "idle"; map back to the view's client position. *)
        let label = act.Mdp.Ctmdp.label in
        if String.length label <= 5 || String.sub label 0 5 <> "serve" then None
        else
          Option.bind
            (int_of_string_opt (String.sub label 5 (String.length label - 5)))
            (fun li -> if li < Array.length loaded then position_of sub loaded.(li) else None)
  in
  Arbiter.Custom ("ctmdp-stochastic", f)

let per_proc_mean_losses v = Replicate.mean_per_proc_lost v.aggregate

let pp_outcome ppf o =
  let topo = Traffic.topology o.exp_config.traffic in
  let np = Topology.num_processors topo in
  let b = per_proc_mean_losses o.before in
  let a = per_proc_mean_losses o.after in
  let t = per_proc_mean_losses o.timeout_variant in
  Format.fprintf ppf "@[<v>per-processor mean losses over %d replications:"
    o.exp_config.replications;
  Format.fprintf ppf "@,  %-6s %10s %10s %10s" "proc" "before" "after" "timeout";
  for p = 0 to np - 1 do
    Format.fprintf ppf "@,  %-6s %10.1f %10.1f %10.1f"
      (Topology.processor topo p).Topology.proc_name b.(p) a.(p) t.(p)
  done;
  let mean v = Numeric.Stats.mean v.aggregate.Replicate.total_lost in
  Format.fprintf ppf "@,  total: before %.1f, after %.1f, timeout %.1f" (mean o.before)
    (mean o.after) (mean o.timeout_variant);
  Format.fprintf ppf "@,  improvement vs constant sizing: %.1f%%"
    (100. *. o.improvement_vs_before);
  Format.fprintf ppf "@,  improvement vs timeout policy:  %.1f%%"
    (100. *. o.improvement_vs_timeout);
  Format.fprintf ppf "@]"
