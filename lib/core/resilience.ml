(* Structured solver diagnostics, wall-clock/iteration budgets, and
   escalation chains.

   Every numeric entry point of the solve pipeline (simplex, LU, Newton,
   stationary solves, policy/value iteration) reports its outcome as a
   [diagnostic] instead of a bare exception or a silent NaN/unconverged
   return: which solver ran, whether the answer is clean ([Ok]), usable
   but produced by a fallback or with a known defect ([Degraded]), or
   absent ([Failed]) — plus the iteration count, the final residual, the
   wall time, and the ordered list of fallbacks taken.

   The [escalate] combinator runs a chain of solver steps in order
   (e.g. revised simplex -> dense tableau -> Bland -> lexicographic
   perturbation), converts uncaught exceptions into step rejections,
   stops the chain when the wall-clock budget is exhausted, and keeps the
   best partial answer so a hung or failing solve degrades to the
   best-known answer instead of spinning or crashing.

   This module sits below lib/numeric in the dependency order and
   depends only on the telemetry layer (Bufsize_obs), which sits at the
   very bottom. *)

module Obs = Bufsize_obs.Obs

(* Escalation telemetry: every step taken beyond the first is a fallback;
   chains that end without a usable answer count as failures.  The spans
   make each escalation chain (and each step inside it) visible in the
   Chrome trace, and the diagnostic carries the chain's span id so
   --health-json and the trace cross-reference. *)
let m_fallbacks = Obs.counter "resilience.fallbacks"
let m_failures = Obs.counter "resilience.failures"

(* ------------------------------------------------------------- status *)

type status = Ok | Degraded of string | Failed of string

let status_ok = function Ok -> true | Degraded _ | Failed _ -> false
let status_usable = function Ok | Degraded _ -> true | Failed _ -> false

let status_reason = function Ok -> None | Degraded r | Failed r -> Some r

let pp_status ppf = function
  | Ok -> Format.fprintf ppf "ok"
  | Degraded r -> Format.fprintf ppf "degraded (%s)" r
  | Failed r -> Format.fprintf ppf "failed (%s)" r

(* --------------------------------------------------------- diagnostic *)

type diagnostic = {
  solver : string;  (* entry point, e.g. "lp.solve" or "ctmc.stationary" *)
  status : status;
  iterations : int;
  residual : float;  (* NaN when the solver has no residual notion *)
  wall_ms : float;
  fallbacks : string list;  (* escalation steps taken, oldest first *)
  span_id : int;  (* id of the escalation span in the trace; 0 = no span *)
}

let make ?(iterations = 0) ?(residual = Float.nan) ?(wall_ms = 0.)
    ?(fallbacks = []) ?(span_id = 0) ~solver status =
  { solver; status; iterations; residual; wall_ms; fallbacks; span_id }

let ok ?iterations ?residual ?wall_ms ?fallbacks ~solver () =
  make ?iterations ?residual ?wall_ms ?fallbacks ~solver Ok

let degraded ?iterations ?residual ?wall_ms ?fallbacks ~solver reason =
  make ?iterations ?residual ?wall_ms ?fallbacks ~solver (Degraded reason)

let failed ?iterations ?residual ?wall_ms ?fallbacks ~solver reason =
  make ?iterations ?residual ?wall_ms ?fallbacks ~solver (Failed reason)

let is_ok d = status_ok d.status
let is_usable d = status_usable d.status

(* Worst status wins when a pipeline stage aggregates sub-diagnostics:
   Failed > Degraded > Ok; the first reason at the worst severity is kept. *)
let worst_status ds =
  List.fold_left
    (fun acc d ->
      match (acc, d.status) with
      | Failed _, _ -> acc
      | _, Failed r -> Failed r
      | Degraded _, _ -> acc
      | _, Degraded r -> Degraded r
      | Ok, Ok -> Ok)
    Ok ds

let pp ppf d =
  Format.fprintf ppf "@[<h>%-24s %a" d.solver pp_status d.status;
  if d.iterations > 0 then Format.fprintf ppf ", %d iters" d.iterations;
  if Float.is_finite d.residual then Format.fprintf ppf ", residual %.2e" d.residual;
  Format.fprintf ppf ", %.1f ms" d.wall_ms;
  if d.fallbacks <> [] then
    Format.fprintf ppf ", fallbacks: %s" (String.concat " -> " d.fallbacks);
  Format.fprintf ppf "@]"

(* Hand-rolled JSON (no dependency): strings are escaped, NaN/infinite
   floats are emitted as null so the output stays standard JSON. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let to_json d =
  let status, reason =
    match d.status with
    | Ok -> ("ok", None)
    | Degraded r -> ("degraded", Some r)
    | Failed r -> ("failed", Some r)
  in
  Printf.sprintf
    "{\"solver\":\"%s\",\"status\":\"%s\",\"reason\":%s,\"iterations\":%d,\"residual\":%s,\"wall_ms\":%s,\"fallbacks\":[%s],\"span\":%s}"
    (json_escape d.solver) status
    (match reason with None -> "null" | Some r -> Printf.sprintf "\"%s\"" (json_escape r))
    d.iterations (json_float d.residual) (json_float d.wall_ms)
    (String.concat "," (List.map (fun f -> Printf.sprintf "\"%s\"" (json_escape f)) d.fallbacks))
    (if d.span_id = 0 then "null" else string_of_int d.span_id)

(* ------------------------------------------------------------- budget *)

(* A budget is an absolute wall-clock deadline (plus an optional iteration
   allowance solvers can consult).  [None] deadline = unlimited.  The
   BUFSIZE_SOLVE_BUDGET_MS environment variable seeds the default budget;
   unset or non-positive means unlimited, matching the historical
   behavior exactly. *)

type budget = { deadline : float option (* Unix epoch seconds *) }

let now_s () = Unix.gettimeofday ()

let unlimited = { deadline = None }

let of_ms ms = if ms <= 0. then unlimited else { deadline = Some (now_s () +. (ms /. 1000.)) }

(* A budget that is already exhausted — deterministic regardless of clock
   resolution; used by the chaos harness to exercise the exhaustion path. *)
let expired () = { deadline = Some (now_s () -. 1.) }

let budget_env_var = "BUFSIZE_SOLVE_BUDGET_MS"

(* Ambient per-request budget.  The sizing daemon serves many clients
   with different deadlines from one process, so a process-wide env var
   cannot carry them; instead the request handler installs its deadline
   here (domain-local, so concurrent worker domains never see each
   other's deadlines) and every solver that defaults its budget from
   [of_env] picks it up without any signature change.  [Pool] re-installs
   the caller's ambient budget inside its worker domains, so a solve that
   fans out stays under the same deadline. *)

let ambient_key : budget option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let ambient_budget () = Domain.DLS.get ambient_key

let with_ambient_budget b f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key (Some b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let of_env () =
  match ambient_budget () with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt budget_env_var with
      | None | Some "" -> unlimited
      | Some s -> (
          match float_of_string_opt s with
          | Some ms when ms > 0. -> of_ms ms
          | Some _ -> unlimited
          | None ->
              invalid_arg
                (Printf.sprintf "%s: expected a duration in milliseconds, got %S" budget_env_var s)))

let exhausted b = match b.deadline with None -> false | Some d -> now_s () > d

let remaining_ms b =
  match b.deadline with
  | None -> Float.infinity
  | Some d -> Float.max 0. ((d -. now_s ()) *. 1000.)

(* --------------------------------------------------------- escalation *)

(* One step of an escalation chain either:
   - [Accept]s with a clean answer (the chain stops, status Ok unless a
     previous step already failed);
   - returns a [Partial] answer with a defect note (kept as the
     best-known answer; the chain keeps escalating for a clean one);
   - [Reject]s with a reason (the chain escalates). *)

type meta = { m_iterations : int; m_residual : float }

let meta ?(iterations = 0) ?(residual = Float.nan) () =
  { m_iterations = iterations; m_residual = residual }

type 'a step_outcome =
  | Accept of 'a * meta
  | Partial of 'a * meta * string
  | Reject of string

type 'a step = { step_name : string; run : budget -> 'a step_outcome }

let step name run = { step_name = name; run }

(* Run the chain.  Returns the best answer found (None only when every
   step rejected) and the diagnostic describing how it was obtained:
   - first step accepts            -> Ok
   - a later step accepts          -> Degraded "fell back to <step> (<why>)"
   - only a partial answer exists  -> Degraded with the partial's note
   - everything rejected           -> Failed with the first reason
   - budget ran out                -> Degraded (best-known answer) or
                                      Failed, noting the exhaustion.
   Uncaught exceptions in a step are converted into rejections, so a
   chain can never let a solver exception escape. *)
let escalate ~solver ?(budget = unlimited) steps =
  Obs.span_with_id ~name:solver @@ fun chain_span ->
  let t0 = now_s () in
  let finish status value m fallbacks =
    let wall_ms = (now_s () -. t0) *. 1000. in
    Obs.add m_fallbacks (List.length fallbacks);
    (match status with Failed _ -> Obs.incr m_failures | Ok | Degraded _ -> ());
    ( value,
      {
        solver;
        status;
        iterations = m.m_iterations;
        residual = m.m_residual;
        wall_ms;
        fallbacks = List.rev fallbacks;
        span_id = chain_span;
      } )
  in
  let run_step s budget =
    (* Each step is a child span of the chain; an exception still closes
       the span before being converted into a rejection below. *)
    Obs.span ~name:("step:" ^ s.step_name) (fun () -> s.run budget)
  in
  let no_meta = meta () in
  let rec go steps ~first_reject ~best ~fallbacks =
    match steps with
    | [] -> (
        match best with
        | Some (v, m, note) -> finish (Degraded note) (Some v) m fallbacks
        | None ->
            let reason = Option.value ~default:"no steps" first_reject in
            finish (Failed reason) None no_meta fallbacks)
    | s :: rest ->
        if exhausted budget then begin
          let note = Printf.sprintf "budget exhausted before step %s" s.step_name in
          match best with
          | Some (v, m, _) -> finish (Degraded note) (Some v) m fallbacks
          | None ->
              let reason =
                match first_reject with
                | Some r -> Printf.sprintf "%s; %s" note r
                | None -> note
              in
              finish (Failed reason) None no_meta fallbacks
        end
        else begin
          let outcome =
            match run_step s budget with
            | o -> o
            | exception e -> Reject (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e))
          in
          match outcome with
          | Accept (v, m) ->
              let status =
                match first_reject with
                | None -> Ok
                | Some why -> Degraded (Printf.sprintf "fell back to %s (%s)" s.step_name why)
              in
              finish status (Some v) m (s.step_name :: fallbacks)
          | Partial (v, m, note) ->
              let best =
                match best with Some _ -> best | None -> Some (v, m, note)
              in
              go rest
                ~first_reject:(Some (Option.value ~default:note first_reject))
                ~best
                ~fallbacks:(s.step_name :: fallbacks)
          | Reject why ->
              go rest
                ~first_reject:(Some (Option.value ~default:why first_reject))
                ~best
                ~fallbacks:(s.step_name :: fallbacks)
        end
  in
  match steps with
  | [] -> finish (Failed "empty escalation chain") None no_meta []
  | first :: rest -> (
      (* The first step is the normal path: it does not count as a
         fallback, so an immediate Accept yields a pristine diagnostic. *)
      if exhausted budget then
        go steps ~first_reject:None ~best:None ~fallbacks:[]
      else
        let outcome =
          match run_step first budget with
          | o -> o
          | exception e -> Reject (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e))
        in
        match outcome with
        | Accept (v, m) -> finish Ok (Some v) m []
        | Partial (v, m, note) ->
            go rest ~first_reject:(Some note) ~best:(Some (v, m, note)) ~fallbacks:[]
        | Reject why -> go rest ~first_reject:(Some why) ~best:None ~fallbacks:[])

(* ------------------------------------------------------------- health *)

(* A health report is a labelled list of diagnostics collected across a
   pipeline run (e.g. one entry per subsystem LP, per stationary solve). *)

type health = (string * diagnostic) list

let health_ok h = List.for_all (fun (_, d) -> is_ok d) h

let pp_health ppf (h : health) =
  Format.fprintf ppf "@[<v>health: %s@," (if health_ok h then "all ok" else "DEGRADED");
  List.iter (fun (label, d) -> Format.fprintf ppf "  %-20s %a@," label pp d) h;
  Format.fprintf ppf "@]"

let health_to_json (h : health) =
  Printf.sprintf "{\"ok\":%b,\"diagnostics\":[%s]}" (health_ok h)
    (String.concat ","
       (List.map
          (fun (label, d) ->
            Printf.sprintf "{\"label\":\"%s\",\"diagnostic\":%s}" (json_escape label) (to_json d))
          h))

(* Structured variants of [to_json]/[health_to_json]: the serve layer
   embeds diagnostics inside larger reply objects, and building the tree
   directly beats printing and re-parsing.  [Json.encode] of these
   values is byte-identical to the strings above (its number printer
   collapses integer-valued floats to %.0f and both print non-integers
   with %.17g; NaN residuals encode as null either way). *)
let diagnostic_json d : Bufsize_json.Json.t =
  let module J = Bufsize_json.Json in
  let status, reason =
    match d.status with
    | Ok -> ("ok", None)
    | Degraded r -> ("degraded", Some r)
    | Failed r -> ("failed", Some r)
  in
  J.Obj
    [
      ("solver", J.Str d.solver);
      ("status", J.Str status);
      ("reason", match reason with None -> J.Null | Some r -> J.Str r);
      ("iterations", J.Num (float_of_int d.iterations));
      ("residual", J.Num d.residual);
      ("wall_ms", J.Num d.wall_ms);
      ("fallbacks", J.List (List.map (fun f -> J.Str f) d.fallbacks));
      ("span", if d.span_id = 0 then J.Null else J.Num (float_of_int d.span_id));
    ]

let health_json (h : health) : Bufsize_json.Json.t =
  let module J = Bufsize_json.Json in
  J.Obj
    [
      ("ok", J.Bool (health_ok h));
      ( "diagnostics",
        J.List
          (List.map
             (fun (label, d) ->
               J.Obj [ ("label", J.Str label); ("diagnostic", diagnostic_json d) ])
             h) );
    ]

(* ----------------------------------------------------------- finiteness *)

(* The "no NaN/Inf in a claimed-feasible solution" guard used by the
   solver integrations and asserted by the chaos harness. *)
let all_finite a = Array.for_all Float.is_finite a
