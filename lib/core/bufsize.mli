(** [Bufsize] — CTMDP buffer insertion and optimal buffer sizing for SoC
    communication architectures.

    Reproduction of Kallakuri, Doboli & Feinberg, {e Buffer Insertion for
    Bridges and Optimal Buffer Sizing for Communication Sub-System of
    Systems-on-Chip} (DATE 2005).

    This facade re-exports the underlying libraries and implements the
    paper's experimental loop: size the buffers with the CTMDP method, then
    re-simulate under (a) the constant/uniform sizing, (b) the CTMDP
    sizing, and (c) the timeout policy, and compare per-processor and total
    losses.

    {1 Quick start}

    {[
      let topo, traffic = Bufsize.Netproc.create () in
      let outcome =
        Bufsize.size_and_evaluate
          (Bufsize.experiment ~budget:160 traffic)
      in
      Format.printf "%a@." Bufsize.pp_outcome outcome
    ]} *)

(** {1 Re-exported layers} *)

module Obs = Bufsize_obs.Obs
(** Hierarchical spans, the metrics registry, and the Chrome-trace /
    JSONL exporters ([BUFSIZE_TRACE], [BUFSIZE_METRICS]).  Telemetry is
    observational only: results are bitwise identical with tracing on or
    off. *)

module Pool = Bufsize_pool.Pool

module Resilience = Bufsize_resilience.Resilience
(** Structured solver diagnostics, escalation chains and wall-clock
    budgets ([BUFSIZE_SOLVE_BUDGET_MS]) shared by every numeric entry
    point; {!Sizing.result.health} aggregates them per subsystem. *)

module Json = Bufsize_json.Json
(** Strict JSON parser/encoder shared by the daemon protocol, the
    telemetry exporters' self-checks, and [size --json]. *)

module Serve = Bufsize_serve.Serve
(** The sizing daemon ([bufsize serve] / [bufsize request]): a
    Unix-domain-socket NDJSON server with admission control, per-request
    deadlines, crash isolation, and graceful shutdown. *)

module Numeric = Bufsize_numeric
module Prob = Bufsize_prob
module Mdp = Bufsize_mdp

module Topology = Bufsize_soc.Topology
module Traffic = Bufsize_soc.Traffic
module Splitting = Bufsize_soc.Splitting
module Bus_model = Bufsize_soc.Bus_model
module Buffer_alloc = Bufsize_soc.Buffer_alloc
module Sizing = Bufsize_soc.Sizing
module Monolithic = Bufsize_soc.Monolithic

module San_bridge = Bufsize_soc.San_bridge
(** Exact monolithic (un-split) solve of the bridged two-bus model as a
    stochastic automata network: the joint generator stays in
    sum-of-Kronecker form ({!Numeric.Kronecker}), so the state space
    scales multiplicatively while memory stays additive. *)

module Dot = Bufsize_soc.Dot
module Spec_parser = Bufsize_soc.Spec_parser
module Fig1 = Bufsize_soc.Fig1
module Netproc = Bufsize_soc.Netproc
module Amba = Bufsize_soc.Amba

module Arbiter = Bufsize_sim.Arbiter
module Metrics = Bufsize_sim.Metrics
module Sim_run = Bufsize_sim.Sim_run
module Replicate = Bufsize_sim.Replicate

module Verify = Bufsize_verify
(** Differential-testing harness: seeded model generators, the oracle
    matrix cross-checking independent solution routes, and the greedy
    repro shrinker behind [bufsize verify]. *)

(** {1 The paper's experiment} *)

type experiment = {
  traffic : Traffic.t;
  sizing_config : Sizing.config;
  arbiter : Arbiter.t;  (** arbitration used in every simulated variant *)
  horizon : float;
  warmup : float;
  replications : int;
  seed : int;
  timeout_factor : float;
      (** timeout threshold = factor x per-buffer average sojourn; the
          paper's threshold rule ("the average time spent by a request in
          a buffer") underdetermines the drop rate — at factor 1 a large
          fraction of every exponential-tailed wait exceeds its own mean *)
}

val experiment :
  ?horizon:float ->
  ?warmup:float ->
  ?replications:int ->
  ?seed:int ->
  ?arbiter:Arbiter.t ->
  ?timeout_factor:float ->
  ?config:Sizing.config ->
  budget:int ->
  Traffic.t ->
  experiment
(** Defaults: horizon 2000, warmup 100, 10 replications (the paper's
    count), seed 1, longest-queue arbitration, timeout factor 3,
    [Sizing.default_config]. *)

type variant = {
  label : string;
  allocation : Buffer_alloc.t;
  timeout : Sim_run.timeout_policy option;
  aggregate : Replicate.aggregate;
}

type outcome = {
  exp_config : experiment;
  sizing : Sizing.result;
  before : variant;  (** uniform ("constant") sizing *)
  after : variant;  (** CTMDP-derived sizing *)
  timeout_variant : variant;
      (** uniform sizing with the timeout drop policy; each buffer's
          threshold is its own average request sojourn measured on a
          baseline calibration run (the paper's "average time spent by a
          request in a buffer") *)
  improvement_vs_before : float;
      (** relative reduction of mean total loss, after vs before *)
  improvement_vs_timeout : float;
}

val size_and_evaluate : experiment -> outcome
(** Runs the full loop: uniform baseline replications, CTMDP sizing, post
    sizing replications, timeout-policy replications. *)

val profiled_sizing :
  ?rounds:int -> experiment -> Sizing.result * float list
(** Profile-driven re-sizing — the paper's suggestion that results "could
    be improved with better profiling".  Round 0 sizes with the
    analytically routed rates; each further round simulates the previous
    allocation once, measures every buffer's actual arrival rate (which
    includes upstream loss thinning), and re-sizes with those profiled
    rates.  Returns the final sizing and the simulated total loss of each
    round's allocation (so convergence is observable).  [rounds] defaults
    to 3. *)

val stochastic_arbiter : Sizing.result -> Arbiter.t
(** The K-switching CTMDP policy as a simulator arbitration policy: per
    bus, queue lengths are discretized to the model's levels and an action
    is sampled from the optimal (possibly randomized) policy.  Buses
    without a model fall back to longest-queue. *)

val per_proc_mean_losses : variant -> float array

val pp_outcome : Format.formatter -> outcome -> unit
(** Paper-style summary: per-processor losses for the three variants plus
    aggregate improvements. *)
