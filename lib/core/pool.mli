(** Fixed-size domain work pool for coarse-grained data parallelism.

    The paper's central structural result — bridge splitting turns one
    intractable quadratic system into independent linear subsystems — makes
    the evaluation pipeline embarrassingly parallel: per-subsystem LP
    solves, per-subsystem CTMDP construction, and simulation replications
    share no state.  This pool runs such independent array jobs across
    OCaml 5 domains while keeping results bitwise-deterministic: item [i]'s
    result always lands in slot [i], and the work function receives exactly
    the same inputs regardless of how many domains execute.

    Design notes:
    - A pool of size [k] uses [k - 1] persistent worker domains plus the
      calling domain; workers sleep on a condition variable between jobs,
      so a pool is cheap to keep around and reuse.
    - A pool of size 1 spawns no domains and [map_array] degenerates to
      [Array.map] — the reproducible sequential baseline.
    - Jobs are claimed from a shared atomic counter (work stealing by
      index), so uneven item costs balance automatically.
    - Nested or concurrent [map_array] calls on a busy pool fall back to
      sequential execution on the caller's domain instead of deadlocking.
    - The first exception raised by any item is re-raised on the caller's
      domain after all in-flight items finish; remaining unstarted items
      are skipped. *)

type t

val create : ?oversubscribe:bool -> int -> t
(** [create k] builds a pool of [k] domains total ([k - 1] spawned
    workers).  [k] is capped at [Domain.recommended_domain_count ()] —
    more domains than cores is pure overhead under the stop-the-world
    minor GC (the recorded 4-domain slowdown) — unless
    [oversubscribe:true] or [BUFSIZE_POOL_OVERSUBSCRIBE=1] lifts the cap
    (tests exercising real multi-domain execution need this on small
    machines).  @raise Invalid_argument if [k < 1]. *)

val size : t -> int
(** Total domains the pool uses, including the caller's. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must be idle; after shutdown,
    [map_array] on it runs sequentially.  Idempotent. *)

val default_size : unit -> int
(** The [BUFSIZE_NUM_DOMAINS] environment override when set (must be a
    positive integer), otherwise [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** The lazily created process-wide pool of [default_size ()] domains.
    Library entry points ({!Bufsize_soc.Sizing.run},
    {!Bufsize_sim.Replicate.run}) use it when no explicit pool is given. *)

val map_array : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] with the items evaluated on the
    pool's domains (the [default] pool when none is supplied).  Result
    ordering is that of the input array regardless of execution order.
    [f] must be safe to run concurrently with itself on distinct items.

    [chunk] sets how many consecutive items a domain claims per steal.
    Default: the [BUFSIZE_POOL_CHUNK] environment knob when set, else
    [max 1 (n / (8 * size pool))] — about eight steals per domain, coarse
    enough that the shared claim counter stops being a contention point
    on fine-grained items, fine enough that uneven item costs still
    balance.  Chunking never changes results: item [i]'s output lands in
    slot [i] regardless of block boundaries. *)

val mapi_array : ?pool:t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed variant of {!map_array}. *)
