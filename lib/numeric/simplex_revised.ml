(* Sparse revised simplex.  See the interface for the design overview; the
   moving parts are:
   - [ftran] computes B^-1 v through the LU factorization of the basis at
     the last refactorization followed by the eta updates (oldest first);
   - [btran] computes B^-T v by applying the transposed eta inverses
     (newest first) and then the transposed LU solve;
   - each pivot appends one eta; every [refactor_every] pivots the basis is
     refactorized from scratch and the eta file cleared.

   The engine itself only ever sees sparse structural columns; the dense
   [Simplex.standard] entry point converts once up front, so both [solve]
   and [solve_sparse] share one pivot path (and produce bitwise-identical
   trajectories on the same problem). *)

module Obs = Bufsize_obs.Obs

(* Same pivot/refactorization telemetry as the dense engine, under its
   own metric names so the two engines stay distinguishable. *)
let m_pivots = Obs.counter "simplex_revised.pivots"
let m_refactorizations = Obs.counter "simplex_revised.refactorizations"

(* Warm-start outcome telemetry: accepted = a supplied basis carried the
   solve to completion; rejected = it was invalid, singular, infeasible or
   stalled and the engine fell back to a cold start. *)
let m_warm_accepted = Obs.counter "simplex_revised.warm_accepted"
let m_warm_rejected = Obs.counter "simplex_revised.warm_rejected"
let warm_acc = Atomic.make 0
let warm_rej = Atomic.make 0

let warm_stats () = (Atomic.get warm_acc, Atomic.get warm_rej)

let note_warm_accepted () =
  Atomic.incr warm_acc;
  Obs.incr m_warm_accepted

let note_warm_rejected () =
  Atomic.incr warm_rej;
  Obs.incr m_warm_rejected

type sparse_standard = {
  snrows : int;
  sncols : int;
  scols : (int * float) array array;
  sb : float array;
  sc : float array;
}

type eta = { er : int; ew : float array }

type engine = {
  m : int;
  n : int;
  cols : (int * float) array array;  (* flipped sparse structural columns *)
  flip : float array;  (* row sign flips making the rhs nonnegative *)
  b_true : float array;  (* flipped true rhs *)
  b_work : float array;  (* flipped perturbed rhs *)
  c : float array;
  basis : int array;
  in_basis : bool array;  (* length n + m *)
  mutable lu : Lu.factorization option;  (* None = identity (artificial basis) *)
  mutable etas : eta list;  (* newest first *)
  mutable neta : int;
  mutable xb : float array;
}

let perturb_b b =
  let scale =
    1e-4 *. Float.max 1. (Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0. b)
  in
  let m = float_of_int (Int.max 1 (Array.length b)) in
  Array.mapi (fun i bi -> bi +. (scale *. float_of_int (i + 1) /. m)) b

let create ~perturbed sp =
  let m = sp.snrows and n = sp.sncols in
  let flip = Array.init m (fun i -> if sp.sb.(i) < 0. then -1. else 1.) in
  let cols =
    Array.map (fun col -> Array.map (fun (i, v) -> (i, flip.(i) *. v)) col) sp.scols
  in
  let b_true = Array.init m (fun i -> flip.(i) *. sp.sb.(i)) in
  let b_work = if perturbed then perturb_b b_true else Array.copy b_true in
  {
    m;
    n;
    cols;
    flip;
    b_true;
    b_work;
    c = sp.sc;
    basis = Array.init m (fun i -> n + i);
    in_basis = Array.init (n + m) (fun j -> j >= n);
    lu = None;
    etas = [];
    neta = 0;
    xb = Array.copy b_work;
  }

(* Apply E^-1 in place: u_r <- u_r / w_r; u_i <- u_i - w_i * u_r'. *)
let apply_eta_inv { er; ew } u =
  let t = u.(er) /. ew.(er) in
  for i = 0 to Array.length u - 1 do
    if i <> er then u.(i) <- u.(i) -. (ew.(i) *. t)
  done;
  u.(er) <- t

(* Apply E^-T in place: only u_r changes. *)
let apply_eta_inv_t { er; ew } u =
  let acc = ref u.(er) in
  for i = 0 to Array.length u - 1 do
    if i <> er then acc := !acc -. (ew.(i) *. u.(i))
  done;
  u.(er) <- !acc /. ew.(er)

let ftran eng v =
  let x = match eng.lu with None -> Array.copy v | Some f -> Lu.solve_factorized f v in
  (* Oldest eta first. *)
  List.iter (fun e -> apply_eta_inv e x) (List.rev eng.etas);
  x

let btran eng v =
  let u = Array.copy v in
  List.iter (fun e -> apply_eta_inv_t e u) eng.etas;
  match eng.lu with None -> u | Some f -> Lu.solve_transposed f u

let dense_column eng j =
  let col = Array.make eng.m 0. in
  if j < eng.n then Array.iter (fun (i, v) -> col.(i) <- v) eng.cols.(j)
  else col.(j - eng.n) <- 1.;
  col

(* Rebuild the basis factorization; returns false on a (numerically)
   singular basis.  The factorization storage of the previous rebuild is
   reused in place (Lu.refactorize is bitwise-identical to a fresh
   Lu.factorize), so the hundreds of refactorizations in a long solve share
   one allocation.  After a [false] return the reused storage holds a
   partial elimination — every caller treats [false] as terminal for the
   current pivot path, and a later call rewrites the storage from scratch. *)
let refactorize eng =
  Obs.incr m_refactorizations;
  let bmat =
    Mat.init eng.m eng.m (fun i j ->
        let col = eng.basis.(j) in
        if col < eng.n then (
          let acc = ref 0. in
          Array.iter (fun (r, v) -> if r = i then acc := !acc +. v) eng.cols.(col);
          !acc)
        else if col - eng.n = i then 1.
        else 0.)
  in
  let factorized =
    match eng.lu with
    | Some f when Lu.dim f = eng.m -> (
        match Lu.refactorize f bmat with Ok () -> Some f | Error _ -> None)
    | _ -> ( match Lu.factorize bmat with f -> Some f | exception Lu.Singular _ -> None)
  in
  match factorized with
  | None -> false
  | Some f ->
      eng.lu <- Some f;
      eng.etas <- [];
      eng.neta <- 0;
      eng.xb <- ftran eng eng.b_work;
      true

(* Reduced costs under the given basic-cost assignment; Dantzig choice. *)
let entering eng ~eps ~allow ~cost_of =
  let cb = Array.init eng.m (fun i -> cost_of eng.basis.(i)) in
  let y = btran eng cb in
  let best = ref (-1) in
  let best_val = ref (-.eps) in
  for j = 0 to eng.n + eng.m - 1 do
    if allow j && not eng.in_basis.(j) then begin
      let dot =
        if j < eng.n then
          Array.fold_left (fun acc (i, v) -> acc +. (v *. y.(i))) 0. eng.cols.(j)
        else y.(j - eng.n)
      in
      let r = cost_of j -. dot in
      if r < !best_val then begin
        best := j;
        best_val := r
      end
    end
  done;
  !best

(* Harris-flavoured two-pass ratio test on w = B^-1 a_q. *)
let leaving eng ~tol w =
  let min_ratio = ref infinity in
  for i = 0 to eng.m - 1 do
    if w.(i) > tol then begin
      let ratio = Float.max 0. eng.xb.(i) /. w.(i) in
      if ratio < !min_ratio then min_ratio := ratio
    end
  done;
  if !min_ratio = infinity then -1
  else begin
    let cutoff = !min_ratio +. (1e-7 *. !min_ratio) +. 1e-12 in
    let best = ref (-1) in
    let best_pivot = ref 0. in
    for i = 0 to eng.m - 1 do
      if w.(i) > tol then begin
        let ratio = Float.max 0. eng.xb.(i) /. w.(i) in
        if ratio <= cutoff && w.(i) > !best_pivot then begin
          best := i;
          best_pivot := w.(i)
        end
      end
    done;
    !best
  end

type phase_outcome = Optimal_phase | Unbounded_phase | Iteration_limit | Singular_basis

let run_phase eng ~eps ~max_iter ~refactor_every ~allow ~cost_of iterations =
  let iters = ref iterations in
  let outcome = ref None in
  while !outcome = None do
    if !iters >= max_iter then outcome := Some Iteration_limit
    else begin
      let q = entering eng ~eps ~allow ~cost_of in
      if q < 0 then outcome := Some Optimal_phase
      else begin
        let w = ftran eng (dense_column eng q) in
        let r =
          let r = leaving eng ~tol:1e-6 w in
          if r >= 0 then r else leaving eng ~tol:eps w
        in
        if r < 0 then outcome := Some Unbounded_phase
        else begin
          let t = Float.max 0. eng.xb.(r) /. w.(r) in
          for i = 0 to eng.m - 1 do
            if i <> r then eng.xb.(i) <- eng.xb.(i) -. (t *. w.(i))
          done;
          eng.xb.(r) <- t;
          eng.in_basis.(eng.basis.(r)) <- false;
          eng.in_basis.(q) <- true;
          eng.basis.(r) <- q;
          eng.etas <- { er = r; ew = w } :: eng.etas;
          eng.neta <- eng.neta + 1;
          Obs.incr m_pivots;
          incr iters;
          if eng.neta >= refactor_every then
            if not (refactorize eng) then outcome := Some Singular_basis
        end
      end
    end
  done;
  (Option.get !outcome, !iters)

(* Dual-simplex cleanup: after the pivot path ran on the perturbed
   right-hand side, restore the true one and drive the slightly negative
   basic values out with dual pivots (leave on the most negative basic,
   enter on the dual ratio test over the B^-1 row).  Reduced costs stay
   nonnegative, so the final basis is optimal for the true problem. *)
let dual_cleanup eng ~refactor_every ~allow ~cost_of =
  Array.blit eng.b_true 0 eng.b_work 0 eng.m;
  if refactorize eng then begin
    let max_pivots = eng.m + 16 in
    let continue = ref true in
    let pivots = ref 0 in
    while !continue && !pivots < max_pivots do
      let r = ref (-1) in
      let worst = ref (-1e-9) in
      for i = 0 to eng.m - 1 do
        if eng.xb.(i) < !worst then begin
          worst := eng.xb.(i);
          r := i
        end
      done;
      if !r < 0 then continue := false
      else begin
        (* Row r of B^-1 A via rho = B^-T e_r; reduced costs via y. *)
        let e_r = Array.make eng.m 0. in
        e_r.(!r) <- 1.;
        let rho = btran eng e_r in
        let cb = Array.init eng.m (fun i -> cost_of eng.basis.(i)) in
        let y = btran eng cb in
        let best = ref (-1) in
        let best_ratio = ref infinity in
        for j = 0 to eng.n + eng.m - 1 do
          if allow j && not eng.in_basis.(j) then begin
            let alpha, dot =
              if j < eng.n then
                Array.fold_left
                  (fun (a, d) (i, v) -> (a +. (v *. rho.(i)), d +. (v *. y.(i))))
                  (0., 0.) eng.cols.(j)
              else (rho.(j - eng.n), y.(j - eng.n))
            in
            if alpha < -1e-7 then begin
              let rc = Float.max 0. (cost_of j -. dot) in
              let ratio = rc /. -.alpha in
              if ratio < !best_ratio then begin
                best_ratio := ratio;
                best := j
              end
            end
          end
        done;
        if !best < 0 then continue := false
        else begin
          let q = !best in
          let w = ftran eng (dense_column eng q) in
          if Float.abs w.(!r) < 1e-9 then continue := false
          else begin
            let t = eng.xb.(!r) /. w.(!r) in
            for i = 0 to eng.m - 1 do
              if i <> !r then eng.xb.(i) <- eng.xb.(i) -. (t *. w.(i))
            done;
            eng.xb.(!r) <- t;
            eng.in_basis.(eng.basis.(!r)) <- false;
            eng.in_basis.(q) <- true;
            eng.basis.(!r) <- q;
            eng.etas <- { er = !r; ew = w } :: eng.etas;
            eng.neta <- eng.neta + 1;
            Obs.incr m_pivots;
            incr pivots;
            if eng.neta >= refactor_every then
              if not (refactorize eng) then continue := false
          end
        end
      end
    done
  end

(* Exact answer from the final basis against the TRUE data. *)
let refined eng iterations =
  let bmat =
    Mat.init eng.m eng.m (fun i j ->
        let col = eng.basis.(j) in
        if col < eng.n then (
          let acc = ref 0. in
          Array.iter (fun (r, v) -> if r = i then acc := !acc +. v) eng.cols.(col);
          !acc)
        else if col - eng.n = i then 1.
        else 0.)
  in
  match Lu.factorize bmat with
  | exception Lu.Singular _ -> None
  | f ->
      let xbstar = Lu.solve_factorized f eng.b_true in
      let ok = ref true in
      let worst = ref 0. and worst_art = ref 0. in
      Array.iteri
        (fun j v ->
          if v < -1e-5 then ok := false;
          if v < !worst then worst := v;
          if eng.basis.(j) >= eng.n && Float.abs v > 1e-5 then ok := false;
          if eng.basis.(j) >= eng.n && Float.abs v > !worst_art then worst_art := Float.abs v)
        xbstar;
      if (not !ok) && Sys.getenv_opt "BUFSIZE_SIMPLEX_DEBUG" <> None then
        Printf.eprintf "[revised] refine rejected: min x_B %.3e, max |artificial| %.3e\n%!" !worst
          !worst_art;
      if not !ok then None
      else begin
        let x = Array.make eng.n 0. in
        Array.iteri
          (fun j v -> if eng.basis.(j) < eng.n then x.(eng.basis.(j)) <- Float.max 0. v)
          xbstar;
        let objective = ref 0. in
        for j = 0 to eng.n - 1 do
          objective := !objective +. (eng.c.(j) *. x.(j))
        done;
        let cb = Array.init eng.m (fun i -> if eng.basis.(i) < eng.n then eng.c.(eng.basis.(i)) else 0.) in
        let y = Lu.solve_transposed f cb in
        let duals = Array.init eng.m (fun i -> eng.flip.(i) *. y.(i)) in
        Some
          {
            Simplex.x;
            objective = !objective;
            duals;
            basis = Array.copy eng.basis;
            iterations;
          }
      end

let best_effort eng iterations =
  let x = Array.make eng.n 0. in
  Array.iteri (fun j v -> if eng.basis.(j) < eng.n then x.(eng.basis.(j)) <- Float.max 0. v) eng.xb;
  let objective = ref 0. in
  for j = 0 to eng.n - 1 do
    objective := !objective +. (eng.c.(j) *. x.(j))
  done;
  { Simplex.x; objective = !objective; duals = Array.make eng.m Float.nan; basis = Array.copy eng.basis; iterations }

let solve_once ~eps ~max_iter ~refactor_every ~perturbed sp =
  Obs.span ~name:"simplex.revised"
    ~attrs:(fun () ->
      [ ("rows", string_of_int sp.snrows); ("cols", string_of_int sp.sncols) ])
  @@ fun () ->
  let eng = create ~perturbed sp in
  let allow_all j = j < eng.n + eng.m in
  let phase1_cost j = if j < eng.n then 0. else 1. in
  let outcome1, iters1 =
    run_phase eng ~eps ~max_iter ~refactor_every ~allow:allow_all ~cost_of:phase1_cost 0
  in
  (* Recompute the phase-1 objective from a clean refactorization. *)
  if not (refactorize eng) then `Drifted (best_effort eng iters1)
  else begin
    let phase1_obj =
      let acc = ref 0. in
      Array.iteri (fun i bj -> if bj >= eng.n then acc := !acc +. Float.max 0. eng.xb.(i)) eng.basis;
      !acc
    in
    match outcome1 with
    | Iteration_limit | Singular_basis -> `Stalled
    | Unbounded_phase -> `Infeasible (* phase 1 is bounded below; cannot happen *)
    | Optimal_phase when phase1_obj > 1e-6 -> `Infeasible
    | Optimal_phase -> (
        let structural j = j < eng.n in
        let phase2_cost j = if j < eng.n then eng.c.(j) else 0. in
        let outcome2, iters2 =
          run_phase eng ~eps ~max_iter ~refactor_every ~allow:structural ~cost_of:phase2_cost
            iters1
        in
        match outcome2 with
        | Unbounded_phase -> `Unbounded
        | Singular_basis -> `Drifted (best_effort eng iters2)
        | Iteration_limit | Optimal_phase -> (
            (* Remove the perturbation exactly before reading the answer. *)
            if perturbed then dual_cleanup eng ~refactor_every ~allow:structural ~cost_of:phase2_cost;
            match refined eng iters2 with
            | Some sol -> `Optimal sol
            | None -> `Drifted (best_effort eng iters2)))
  end

(* A warm basis is usable only if it is a permutation-free selection of m
   distinct columns of [A | I]. *)
let valid_warm_basis sp basis =
  Array.length basis = sp.snrows
  &&
  let total = sp.sncols + sp.snrows in
  let seen = Array.make total false in
  Array.for_all
    (fun j ->
      j >= 0 && j < total && not seen.(j)
      &&
      (seen.(j) <- true;
       true))
    basis

(* Attempt the solve from a prior optimal basis: install it, refactorize,
   check primal feasibility on the true rhs, and run phase 2 only.  Any
   defect (singular basis, negative basic value, mass on an artificial,
   stall) yields None and the caller falls back to a cold start.  The
   iteration budget is capped well below [max_iter]: a warm basis either
   re-optimizes in a handful of pivots or is not worth pursuing. *)
let solve_warm ~eps ~max_iter ~refactor_every sp basis =
  Obs.span ~name:"simplex.revised.warm"
    ~attrs:(fun () ->
      [ ("rows", string_of_int sp.snrows); ("cols", string_of_int sp.sncols) ])
  @@ fun () ->
  let eng = create ~perturbed:false sp in
  Array.blit basis 0 eng.basis 0 eng.m;
  Array.fill eng.in_basis 0 (eng.n + eng.m) false;
  Array.iter (fun j -> eng.in_basis.(j) <- true) eng.basis;
  if not (refactorize eng) then None
  else if Array.exists (fun v -> v < -1e-7) eng.xb then None
  else begin
    let artificial_mass = ref 0. in
    Array.iteri
      (fun i j ->
        if j >= eng.n then artificial_mass := Float.max !artificial_mass (Float.abs eng.xb.(i)))
      eng.basis;
    if !artificial_mass > 1e-7 then None
    else begin
      let structural j = j < eng.n in
      let phase2_cost j = if j < eng.n then eng.c.(j) else 0. in
      let cap = Int.min max_iter (eng.m + eng.n + 1024) in
      let outcome, iters =
        run_phase eng ~eps ~max_iter:cap ~refactor_every ~allow:structural
          ~cost_of:phase2_cost 0
      in
      match outcome with
      | Optimal_phase -> (
          match refined eng iters with Some sol -> Some (`Optimal sol) | None -> None)
      | Unbounded_phase ->
          (* The basis was primal feasible, so an unbounded ray is a genuine
             certificate: no need to re-derive it from a cold start. *)
          Some `Unbounded
      | Iteration_limit | Singular_basis -> None
    end
  end

let debug_log label outcome =
  if Sys.getenv_opt "BUFSIZE_SIMPLEX_DEBUG" <> None then
    Printf.eprintf "[revised] %s: %s\n%!" label
      (match outcome with
      | `Optimal _ -> "optimal"
      | `Unbounded -> "unbounded"
      | `Infeasible -> "infeasible"
      | `Stalled -> "stalled"
      | `Drifted _ -> "drifted")

let solve_sparse ?(eps = 1e-9) ?(max_iter = 200_000) ?(refactor_every = 64) ?warm_basis sp =
  if Array.length sp.scols <> sp.sncols then
    invalid_arg "Simplex_revised.solve_sparse: column count mismatch";
  if Array.length sp.sb <> sp.snrows then
    invalid_arg "Simplex_revised.solve_sparse: rhs size mismatch";
  if Array.length sp.sc <> sp.sncols then
    invalid_arg "Simplex_revised.solve_sparse: cost size mismatch";
  Array.iter
    (fun col ->
      let prev = ref (-1) in
      Array.iter
        (fun (i, _) ->
          if i <= !prev || i < 0 || i >= sp.snrows then
            invalid_arg "Simplex_revised.solve_sparse: column rows not strictly increasing";
          prev := i)
        col)
    sp.scols;
  let unperturbed_retry () =
    match solve_once ~eps ~max_iter ~refactor_every ~perturbed:false sp with
    | `Optimal sol -> Simplex.Optimal sol
    | `Unbounded -> Simplex.Unbounded
    | `Infeasible | `Stalled -> Simplex.Infeasible
    | `Drifted fallback -> Simplex.Optimal fallback
  in
  let cold () =
    let first = solve_once ~eps ~max_iter ~refactor_every ~perturbed:true sp in
    debug_log "first run" first;
    match first with
    | `Optimal sol -> Simplex.Optimal sol
    | `Unbounded -> Simplex.Unbounded
    | `Infeasible | `Stalled -> unperturbed_retry ()
    | `Drifted _ -> (
        (* Retry with a much shorter eta file before settling for less. *)
        match
          solve_once ~eps ~max_iter ~refactor_every:(Int.max 8 (refactor_every / 8))
            ~perturbed:true sp
        with
        | `Optimal sol -> Simplex.Optimal sol
        | `Unbounded -> Simplex.Unbounded
        | `Infeasible | `Stalled -> unperturbed_retry ()
        | `Drifted fallback -> Simplex.Optimal fallback)
  in
  match warm_basis with
  | None -> cold ()
  | Some basis when not (valid_warm_basis sp basis) ->
      note_warm_rejected ();
      cold ()
  | Some basis -> (
      match solve_warm ~eps ~max_iter ~refactor_every sp basis with
      | Some (`Optimal sol) ->
          note_warm_accepted ();
          Simplex.Optimal sol
      | Some `Unbounded ->
          note_warm_accepted ();
          Simplex.Unbounded
      | None ->
          note_warm_rejected ();
          cold ())

let sparse_of_standard std =
  let m = std.Simplex.nrows and n = std.Simplex.ncols in
  let scols =
    Array.init n (fun j ->
        let entries = ref [] in
        for i = m - 1 downto 0 do
          let v = std.Simplex.a.((i * n) + j) in
          if v <> 0. then entries := (i, v) :: !entries
        done;
        Array.of_list !entries)
  in
  { snrows = m; sncols = n; scols; sb = std.Simplex.b; sc = std.Simplex.c }

let solve ?eps ?max_iter ?refactor_every ?warm_basis std =
  if Array.length std.Simplex.a <> std.Simplex.nrows * std.Simplex.ncols then
    invalid_arg "Simplex_revised.solve: matrix size mismatch";
  if Array.length std.Simplex.b <> std.Simplex.nrows then
    invalid_arg "Simplex_revised.solve: rhs size mismatch";
  if Array.length std.Simplex.c <> std.Simplex.ncols then
    invalid_arg "Simplex_revised.solve: cost size mismatch";
  solve_sparse ?eps ?max_iter ?refactor_every ?warm_basis (sparse_of_standard std)
