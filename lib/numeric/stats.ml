type t = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mu = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mu in
  t.mu <- t.mu +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mu));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mu
let variance t = if t.n < 2 then Float.nan else t.m2 /. float_of_int (t.n - 1)
let std_dev t = sqrt (variance t)
let std_error t = std_dev t /. sqrt (float_of_int t.n)
let min_value t = t.lo
let max_value t = t.hi

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let copy t = { n = t.n; mu = t.mu; m2 = t.m2; lo = t.lo; hi = t.hi }

(* Chan/Golub/LeVeque pairwise combination of two Welford accumulators:
   exact in [n], and the [m2] update is the numerically stable form (the
   naive sum-of-squares difference cancels catastrophically). *)
let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let n = a.n + b.n in
    let na = float_of_int a.n and nb = float_of_int b.n in
    let nf = float_of_int n in
    let delta = b.mu -. a.mu in
    {
      n;
      mu = a.mu +. (delta *. nb /. nf);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. nf);
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
    }
  end

(* Two-sided 95% Student-t critical values; linear interpolation between the
   tabulated degrees of freedom, 1.96 beyond df = 120. *)
let t_table =
  [|
    (1, 12.706); (2, 4.303); (3, 3.182); (4, 2.776); (5, 2.571);
    (6, 2.447); (7, 2.365); (8, 2.306); (9, 2.262); (10, 2.228);
    (12, 2.179); (15, 2.131); (20, 2.086); (25, 2.060); (30, 2.042);
    (40, 2.021); (60, 2.000); (120, 1.980);
  |]

let t_quantile ~df =
  if df <= 0 then Float.nan
  else begin
    let n = Array.length t_table in
    let rec find i =
      if i >= n then 1.96
      else begin
        let dfi, ti = t_table.(i) in
        if df = dfi then ti
        else if df < dfi then
          if i = 0 then ti
          else begin
            let df0, t0 = t_table.(i - 1) in
            let frac = float_of_int (df - df0) /. float_of_int (dfi - df0) in
            t0 +. (frac *. (ti -. t0))
          end
        else find (i + 1)
      end
    in
    find 0
  end

let confidence_interval95 t =
  if t.n < 2 then (Float.nan, Float.nan)
  else begin
    let half = t_quantile ~df:(t.n - 1) *. std_error t in
    (mean t -. half, mean t +. half)
  end

let batch_means ~batch xs =
  if batch <= 0 then invalid_arg "Stats.batch_means: nonpositive batch size";
  let acc = create () in
  let rec loop remaining current count =
    match remaining with
    | [] -> ()
    | x :: rest ->
        let current = current +. x and count = count + 1 in
        if count = batch then begin
          add acc (current /. float_of_int batch);
          loop rest 0. 0
        end
        else loop rest current count
  in
  loop xs 0. 0;
  acc
