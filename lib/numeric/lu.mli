(** LU decomposition with partial pivoting, and the linear solves built on
    top of it.

    Used throughout the library: stationary distributions of CTMCs, the
    policy-evaluation equations of average-cost policy iteration, and Newton
    steps for the monolithic nonlinear formulation. *)

type factorization
(** Opaque PA = LU factorization of a square matrix. *)

exception Singular of int
(** Raised (with the offending elimination step) when the matrix is
    numerically singular. *)

val factorize : ?pivot_tol:float -> Mat.t -> factorization
(** [factorize m] computes PA = LU with partial pivoting.  A pivot whose
    magnitude is below [pivot_tol] (default [1e-12]) raises {!Singular}.
    @raise Invalid_argument if [m] is not square. *)

val refactorize : ?pivot_tol:float -> factorization -> Mat.t -> (unit, int) result
(** [refactorize f m] rebuilds [f] in place from [m], reusing the storage of
    an earlier same-sized factorization (the revised simplex refactorizes its
    basis hundreds of times per solve; this avoids reallocating each time).
    The result is bitwise-identical to [factorize m] — both run the same
    elimination loop.  [Error k] names the elimination step whose pivot fell
    below [pivot_tol]; after an error [f] holds a partial elimination and
    must not be used for solves until a later [refactorize] succeeds.
    @raise Invalid_argument if [m] is not square or its size differs from
    [dim f]. *)

val dim : factorization -> int
(** Order of the factorized matrix. *)

val solve_factorized : factorization -> Vec.t -> Vec.t
(** Solves [A x = b] given the factorization of [A]. *)

val try_factorize :
  ?pivot_tol:float -> Mat.t -> (factorization, int) result
(** Exception-free {!factorize}: [Error k] names the elimination step whose
    pivot fell below [pivot_tol], so callers can report the defect as data
    instead of unwinding. *)

val solve : ?pivot_tol:float -> Mat.t -> Vec.t -> Vec.t
(** [solve a b] factorizes and solves in one step. *)

val try_solve :
  ?pivot_tol:float -> Mat.t -> Vec.t -> (Vec.t, int) result
(** Exception-free {!solve}; [Error k] as in {!try_factorize}. *)

val solve_transposed : factorization -> Vec.t -> Vec.t
(** [solve_transposed f b] solves [A' x = b] using the factorization of
    [A] (PA = LU gives A' = U' L' P, two triangular solves and the inverse
    permutation).  This is the BTRAN operation of the revised simplex. *)

val det : factorization -> float
(** Determinant of the factorized matrix. *)

val inverse : ?pivot_tol:float -> Mat.t -> Mat.t
(** Full inverse; prefer {!solve} when only a solve is needed. *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is |Ax - b|_inf; cheap a-posteriori check. *)
