module Obs = Bufsize_obs.Obs

let env_var = "BUFSIZE_SOLVE_CACHE"

(* Env contract: unset/empty -> defaults on; "0"/"off"/"false" -> disabled;
   positive integer -> enabled with that per-cache capacity. *)
let env_setting =
  match Sys.getenv_opt env_var with
  | None | Some "" -> `Default
  | Some ("0" | "off" | "OFF" | "false" | "no") -> `Disabled
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> `Capacity n
      | _ -> `Default)

let global_enabled =
  Atomic.make (match env_setting with `Disabled -> false | _ -> true)

let enabled () = Atomic.get global_enabled
let set_enabled b = Atomic.set global_enabled b

let default_capacity =
  match env_setting with `Capacity n -> n | `Default | `Disabled -> 64

let fnv1a s =
  let offset = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let float_repr x =
  let s = Printf.sprintf "%g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

type 'a entry = { key : string; value : 'a; mutable stamp : int }

type 'a t = {
  cache_name : string;
  capacity : int;
  always : bool;  (* ignore the global switch (caller gates it itself) *)
  mutex : Mutex.t;
  table : (int64, 'a entry) Hashtbl.t;
  mutable tick : int;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  m_hits : Obs.counter;
  m_misses : Obs.counter;
}

(* Registry of every cache, so benchmarks and oracles can wipe global
   state between a cold and a warm measurement. *)
type any = Any : 'a t -> any

let registry_mutex = Mutex.create ()
let registry : any list ref = ref []

let create ?(capacity = default_capacity) ?(always = false) cache_name =
  let c =
    {
      cache_name;
      capacity = max 1 capacity;
      always;
      mutex = Mutex.create ();
      table = Hashtbl.create 64;
      tick = 0;
      hit_count = Atomic.make 0;
      miss_count = Atomic.make 0;
      m_hits = Obs.counter (Printf.sprintf "cache.%s.hits" cache_name);
      m_misses = Obs.counter (Printf.sprintf "cache.%s.misses" cache_name);
    }
  in
  Mutex.lock registry_mutex;
  registry := Any c :: !registry;
  Mutex.unlock registry_mutex;
  c

let name c = c.cache_name

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find c key =
  if not (c.always || enabled ()) then None
  else
    let h = fnv1a key in
    locked c @@ fun () ->
    match Hashtbl.find_all c.table h with
    | entries -> (
        match List.find_opt (fun e -> String.equal e.key key) entries with
        | Some e ->
            c.tick <- c.tick + 1;
            e.stamp <- c.tick;
            Atomic.incr c.hit_count;
            Obs.incr c.m_hits;
            Some e.value
        | None ->
            Atomic.incr c.miss_count;
            Obs.incr c.m_misses;
            None)

let evict_lru c =
  let oldest = ref None in
  Hashtbl.iter
    (fun h e ->
      match !oldest with
      | Some (_, prev) when prev.stamp <= e.stamp -> ()
      | _ -> oldest := Some (h, e))
    c.table;
  match !oldest with
  | None -> ()
  | Some (h, victim) ->
      (* Remove just the victim among possibly several same-hash bindings. *)
      let keep =
        Hashtbl.find_all c.table h
        |> List.filter (fun e -> not (e == victim))
      in
      while Hashtbl.mem c.table h do
        Hashtbl.remove c.table h
      done;
      List.iter (fun e -> Hashtbl.add c.table h e) (List.rev keep)

let add c key value =
  if c.always || enabled () then begin
    let h = fnv1a key in
    locked c @@ fun () ->
    c.tick <- c.tick + 1;
    let existing =
      Hashtbl.find_all c.table h |> List.find_opt (fun e -> String.equal e.key key)
    in
    match existing with
    | Some e -> e.stamp <- c.tick
    | None ->
        if Hashtbl.length c.table >= c.capacity then evict_lru c;
        Hashtbl.add c.table h { key; value; stamp = c.tick }
  end

let clear c = locked c @@ fun () -> Hashtbl.reset c.table

let hits c = Atomic.get c.hit_count
let misses c = Atomic.get c.miss_count
let length c = locked c @@ fun () -> Hashtbl.length c.table

let clear_all () =
  let caches =
    Mutex.lock registry_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) (fun () -> !registry)
  in
  List.iter (fun (Any c) -> clear c) caches
