(** Exact-key solve caching for the warm-start / incremental layer.

    A [Solve_cache.t] is a small mutex-guarded LRU map from a {e canonical
    spec string} (a lossless print of everything the cached computation
    depends on) to a previously computed result.  Keys are first reduced
    to a 64-bit FNV-1a hash for cheap bucketing; the full canonical string
    is kept alongside the value and compared on lookup, so hash collisions
    can never alias two different problems.

    Because a hit requires the canonical strings to be byte-identical, a
    cached result is exactly what recomputing would produce (all solvers
    in this library are deterministic functions of their inputs) — caching
    is therefore bitwise-transparent to every artifact.  The caches behind
    {!Lp.solve_diag} and [Sizing.run] are instances of this module.

    Caching is enabled by default and controlled globally:
    - the [BUFSIZE_SOLVE_CACHE] environment variable ([0]/[off] disables,
      a positive integer overrides the default per-cache capacity);
    - {!set_enabled} flips all caches at runtime (used by benchmarks to
      measure cold paths and by the warm-cold verify oracle).

    Instances are safe to share across pool domains. *)

type 'a t

val create : ?capacity:int -> ?always:bool -> string -> 'a t
(** [create name] registers a cache.  [capacity] (default 64, or the
    [BUFSIZE_SOLVE_CACHE] integer when set) bounds the number of retained
    entries; the least-recently-used entry is evicted beyond it.  [name]
    scopes the hit/miss telemetry counters ([cache.<name>.hits] /
    [cache.<name>.misses] in the {!Bufsize_obs.Obs} metrics registry).
    [always] (default false) exempts the instance from the global
    {!set_enabled} switch — for stores with their own independent gate,
    like the warm-basis registry behind [BUFSIZE_WARM_START] ({!clear_all}
    still wipes it). *)

val name : 'a t -> string

val find : 'a t -> string -> 'a option
(** Lookup by canonical key; refreshes the entry's recency on a hit.
    Always [None] (and counts nothing) when caching is disabled. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) an entry, evicting the least recently used entry
    when the cache is full.  No-op when caching is disabled. *)

val clear : 'a t -> unit
(** Drop all entries (hit/miss counters are kept). *)

val hits : 'a t -> int

val misses : 'a t -> int

val length : 'a t -> int
(** Entries currently held; never exceeds the capacity. *)

val enabled : unit -> bool
(** Whether caching is globally enabled right now. *)

val set_enabled : bool -> unit
(** Override the global switch at runtime (all caches at once). *)

val clear_all : unit -> unit
(** {!clear} every cache created so far — benchmarks use this to separate
    cold from warm timings without re-launching the process. *)

val env_var : string
(** ["BUFSIZE_SOLVE_CACHE"]. *)

val fnv1a : string -> int64
(** The 64-bit FNV-1a hash used for key bucketing (exposed for tests). *)

val float_repr : float -> string
(** Lossless float printing for canonical keys: ["%g"] when it round-trips,
    ["%.17g"] otherwise — the same discipline as the verify harness's
    repro printers. *)
