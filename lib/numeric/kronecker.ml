(* Sum-of-Kronecker-products operator.  See kronecker.mli for the
   contract; the implementation notes here cover the shuffle layout.

   Joint indices are mixed-radix with mode 0 most significant: a joint
   state (s_0, ..., s_{N-1}) maps to sum_i s_i * span_i with
   span_i = prod_{j>i} dims_j.  Applying mode [m] of a term then means
   multiplying by (I_left (x) A (x) I_right) with left = prod_{j<m} n_j
   and right = span_m: for every (left-block, right-offset) pair the
   entries at stride [right] form a contiguous-by-stride copy of a
   length-n_m vector that A acts on directly. *)

type factor = Identity | Factor of Sparse.t

type term = { coeff : float; factors : factor array }

type t = {
  dims : int array;
  spans : int array;  (* spans.(i) = prod dims.(i+1 ..) *)
  n : int;
  terms : term array;
}

let create ~dims terms =
  let nmodes = Array.length dims in
  if nmodes = 0 then invalid_arg "Kronecker.create: no modes";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Kronecker.create: mode size must be positive")
    dims;
  let dims = Array.copy dims in
  let n =
    Array.fold_left
      (fun acc d ->
        if acc > max_int / d then invalid_arg "Kronecker.create: joint dimension overflows";
        acc * d)
      1 dims
  in
  let spans = Array.make nmodes 1 in
  for i = nmodes - 2 downto 0 do
    spans.(i) <- spans.(i + 1) * dims.(i + 1)
  done;
  List.iter
    (fun { coeff; factors } ->
      if not (Float.is_finite coeff) then
        invalid_arg "Kronecker.create: non-finite coefficient";
      if Array.length factors <> nmodes then
        invalid_arg "Kronecker.create: term arity does not match dims";
      Array.iteri
        (fun m f ->
          match f with
          | Identity -> ()
          | Factor a ->
              if a.Sparse.rows <> dims.(m) || a.Sparse.cols <> dims.(m) then
                invalid_arg "Kronecker.create: factor shape does not match its mode")
        factors)
    terms;
  { dims; spans; n; terms = Array.of_list terms }

let dims t = Array.copy t.dims
let num_modes t = Array.length t.dims
let num_states t = t.n
let terms t = Array.to_list t.terms

let encode t state =
  let nmodes = Array.length t.dims in
  if Array.length state <> nmodes then invalid_arg "Kronecker.encode: arity mismatch";
  let idx = ref 0 in
  for m = 0 to nmodes - 1 do
    let s = state.(m) in
    if s < 0 || s >= t.dims.(m) then invalid_arg "Kronecker.encode: digit out of range";
    idx := !idx + (s * t.spans.(m))
  done;
  !idx

let decode_into t idx state =
  if idx < 0 || idx >= t.n then invalid_arg "Kronecker.decode: index out of range";
  if Array.length state <> Array.length t.dims then
    invalid_arg "Kronecker.decode: arity mismatch";
  let rest = ref idx in
  for m = 0 to Array.length t.dims - 1 do
    state.(m) <- !rest / t.spans.(m);
    rest := !rest mod t.spans.(m)
  done

let decode t idx =
  let state = Array.make (Array.length t.dims) 0 in
  decode_into t idx state;
  state

type scratch = float array * float array

let scratch t = (Array.make t.n 0., Array.make t.n 0.)

(* dst <- (I_left (x) a (x) I_right) src for mode [m]. *)
let apply_mode t src dst m a =
  let d = t.dims.(m) in
  let right = t.spans.(m) in
  let left = t.n / (d * right) in
  Array.fill dst 0 t.n 0.;
  let rp = a.Sparse.row_ptr and ci = a.Sparse.col_idx and v = a.Sparse.values in
  for blk = 0 to left - 1 do
    let base = blk * d * right in
    for r = 0 to d - 1 do
      let ob = base + (r * right) in
      for k = rp.(r) to rp.(r + 1) - 1 do
        let x = v.(k) in
        let ib = base + (ci.(k) * right) in
        for b = 0 to right - 1 do
          dst.(ob + b) <- dst.(ob + b) +. (x *. src.(ib + b))
        done
      done
    done
  done

(* dst <- (I_left (x) a' (x) I_right) src — same CSR walk, scattering
   along columns instead of gathering along rows. *)
let apply_mode_t t src dst m a =
  let d = t.dims.(m) in
  let right = t.spans.(m) in
  let left = t.n / (d * right) in
  Array.fill dst 0 t.n 0.;
  let rp = a.Sparse.row_ptr and ci = a.Sparse.col_idx and v = a.Sparse.values in
  for blk = 0 to left - 1 do
    let base = blk * d * right in
    for r = 0 to d - 1 do
      let ib = base + (r * right) in
      for k = rp.(r) to rp.(r + 1) - 1 do
        let x = v.(k) in
        let ob = base + (ci.(k) * right) in
        for b = 0 to right - 1 do
          dst.(ob + b) <- dst.(ob + b) +. (x *. src.(ib + b))
        done
      done
    done
  done

let mul_into apply ?scratch:sc t x y =
  if Array.length x <> t.n || Array.length y <> t.n then
    invalid_arg "Kronecker.mul_vec_into: vector size mismatch";
  let s1, s2 =
    match sc with
    | Some (s1, s2) ->
        if Array.length s1 <> t.n || Array.length s2 <> t.n then
          invalid_arg "Kronecker.mul_vec_into: scratch size mismatch";
        (s1, s2)
    | None -> (Array.make t.n 0., Array.make t.n 0.)
  in
  Array.fill y 0 t.n 0.;
  let nmodes = Array.length t.dims in
  let bufs = [| s1; s2 |] in
  Array.iter
    (fun { coeff; factors } ->
      let src = ref x in
      let next = ref 0 in
      for m = 0 to nmodes - 1 do
        match factors.(m) with
        | Identity -> ()
        | Factor a ->
            let dst = bufs.(!next) in
            apply t !src dst m a;
            src := dst;
            next := 1 - !next
      done;
      let src = !src in
      for i = 0 to t.n - 1 do
        y.(i) <- y.(i) +. (coeff *. src.(i))
      done)
    t.terms

let mul_vec_into ?scratch t x y = mul_into apply_mode ?scratch t x y
let mul_vec_t_into ?scratch t x y = mul_into apply_mode_t ?scratch t x y

let mul_vec t x =
  let y = Array.make t.n 0. in
  mul_vec_into t x y;
  y

let mul_vec_t t x =
  let y = Array.make t.n 0. in
  mul_vec_t_into t x y;
  y

let diagonal t =
  let nmodes = Array.length t.dims in
  let d = Array.make t.n 0. in
  Array.iter
    (fun { coeff; factors } ->
      (* Per-mode diagonals; identity modes contribute ones. *)
      let diags =
        Array.init nmodes (fun m ->
            match factors.(m) with
            | Identity -> Array.make t.dims.(m) 1.
            | Factor a -> Array.init t.dims.(m) (fun s -> Sparse.get a s s))
      in
      let state = Array.make nmodes 0 in
      for idx = 0 to t.n - 1 do
        let p = ref coeff in
        for m = 0 to nmodes - 1 do
          p := !p *. diags.(m).(state.(m))
        done;
        d.(idx) <- d.(idx) +. !p;
        (* Increment the mixed-radix counter (last mode fastest). *)
        let m = ref (nmodes - 1) in
        let carry = ref true in
        while !carry && !m >= 0 do
          state.(!m) <- state.(!m) + 1;
          if state.(!m) = t.dims.(!m) then begin
            state.(!m) <- 0;
            decr m
          end
          else carry := false
        done
      done)
    t.terms;
  d

let flops_per_apply t =
  let n = float_of_int t.n in
  Array.fold_left
    (fun acc { factors; _ } ->
      let per_mode =
        Array.fold_left
          (fun s f ->
            match f with
            | Identity -> s
            | Factor a ->
                s +. (float_of_int (Sparse.nnz a) /. float_of_int a.Sparse.rows))
          0. factors
      in
      acc +. (2. *. n *. per_mode) +. (2. *. n))
    0. t.terms

let materialize t =
  let nmodes = Array.length t.dims in
  let triplets = ref [] in
  Array.iter
    (fun { coeff; factors } ->
      (* Cartesian product of per-mode entries; identities contribute
         their diagonal.  Depth-first so entry order is deterministic. *)
      let rec go m row col v =
        if m = nmodes then triplets := (row, col, coeff *. v) :: !triplets
        else
          let d = t.dims.(m) in
          match factors.(m) with
          | Identity ->
              for s = 0 to d - 1 do
                go (m + 1) ((row * d) + s) ((col * d) + s) v
              done
          | Factor a ->
              for r = 0 to d - 1 do
                Sparse.iter_row a r (fun c x -> go (m + 1) ((row * d) + r) ((col * d) + c) (v *. x))
              done
      in
      go 0 0 0 1.)
    t.terms;
  Sparse.of_triplets ~rows:t.n ~cols:t.n (List.rev !triplets)
