(** Sum-of-Kronecker-products operators over CSR factors — the
    compositional backbone that lets the solver treat a product state
    space without ever materializing the joint matrix.

    An operator is [sum_k c_k (A_k1 (x) ... (x) A_kN)] where every
    factor [A_ki] is either a small {!Sparse} matrix over the [i]-th
    local state space or the implicit identity.  SAN / Kronecker-CTMC
    generators (Plateau-style descriptors) take exactly this shape: one
    term per local generator and two terms per synchronizing event.

    Matrix-vector products use the shuffle-permutation algorithm: each
    term is applied one mode at a time as [(I_l (x) A_ki (x) I_r) v],
    so a term over joint dimension [n = prod n_i] costs
    [n * sum_i nnz(A_ki)/n_i] flops instead of the [prod nnz(A_ki)] of
    the materialized product.  Identity factors are skipped outright. *)

type factor =
  | Identity  (** implicit identity over that mode — never stored *)
  | Factor of Sparse.t  (** square [n_i x n_i] CSR factor *)

type term = {
  coeff : float;
  factors : factor array;  (** length [N], one per mode *)
}

type t

val create : dims:int array -> term list -> t
(** [create ~dims terms] validates that every [Factor] is square with
    the size of its mode and that the joint dimension [prod dims] fits
    in [int] without overflow.
    @raise Invalid_argument on empty/negative dims, shape mismatches,
    non-finite coefficients, or joint-dimension overflow. *)

val dims : t -> int array
(** Copy of the per-mode sizes. *)

val num_modes : t -> int

val num_states : t -> int
(** Joint dimension [prod dims]. *)

val terms : t -> term list
(** The terms in application order (factor arrays are shared, not
    copied — treat them as read-only). *)

val encode : t -> int array -> int
(** Mixed-radix encoding of a local-state tuple into a joint index;
    mode [0] is the most significant digit.
    @raise Invalid_argument on wrong arity or out-of-range digits. *)

val decode : t -> int -> int array
(** Inverse of {!encode}. @raise Invalid_argument if out of range. *)

val decode_into : t -> int -> int array -> unit
(** Allocation-free {!decode} into a caller-owned buffer. *)

type scratch
(** Two joint-dimension work vectors for the shuffle ping-pong; reuse
    one across repeated products to keep the hot loop allocation-free. *)

val scratch : t -> scratch

val mul_vec_into : ?scratch:scratch -> t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into t x y] writes [A x] into [y].  [x], [y] and the
    scratch buffers must not alias. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_t_into : ?scratch:scratch -> t -> Vec.t -> Vec.t -> unit
(** [mul_vec_t_into t x y] writes [A' x] into [y], factor-transposing
    on the fly — no transposed copy of any factor is formed. *)

val mul_vec_t : t -> Vec.t -> Vec.t

val diagonal : t -> Vec.t
(** The joint diagonal, exploiting [diag((x) A_i) = (x) diag(A_i)]:
    costs [O(n * terms)], no materialization.  For a generator
    descriptor this is minus the exit-rate vector, which is how the
    SAN solver picks its uniformization rate. *)

val flops_per_apply : t -> float
(** Estimated flops of one shuffle SpMV — [sum_k n * sum_i nnz_ki/n_i]
    plus the final axpy per term.  Reported by benchmarks. *)

val materialize : t -> Sparse.t
(** The joint matrix as explicit CSR — cross-check path for small
    joint dimensions only; cost is [sum_k prod_i nnz(A_ki)] entries
    (identities contribute their full diagonal). *)
