type factorization = {
  lu : Mat.t;  (* L below diagonal (unit diag implied), U on/above *)
  perm : int array;  (* row permutation applied to the input *)
  mutable sign : float;  (* parity of the permutation, for det *)
}

exception Singular of int

(* In-place Doolittle elimination with partial pivoting over [lu]/[perm];
   returns the permutation sign.  Both [factorize] and [refactorize] run
   exactly this loop, so a factorization rebuilt into reused storage is
   bitwise-identical to a fresh one. *)
let eliminate ~pivot_tol lu perm =
  let n = lu.Mat.rows in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* partial pivoting: pick the largest |entry| in column k at/below row k *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot_row k) then pivot_row := i
    done;
    if !pivot_row <> k then begin
      Mat.swap_rows lu k !pivot_row;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.abs pivot < pivot_tol then raise (Singular k);
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Mat.update lu i j (fun x -> x -. (factor *. Mat.get lu k j))
        done
    done
  done;
  !sign

let factorize ?(pivot_tol = 1e-12) m =
  if m.Mat.rows <> m.Mat.cols then invalid_arg "Lu.factorize: matrix not square";
  let n = m.Mat.rows in
  let lu = Mat.copy m in
  let perm = Array.init n (fun i -> i) in
  let sign = eliminate ~pivot_tol lu perm in
  { lu; perm; sign }

let dim f = f.lu.Mat.rows

(* Re-run the elimination into [f]'s existing storage for a new same-sized
   matrix: the warm-start path refactorizes hundreds of simplex bases per
   solve and reuses one allocation for all of them.  On a singular pivot
   the storage holds a partial elimination and [Error k] tells the caller
   to fall back; the factorization must not be used for solves until a
   subsequent refactorization succeeds. *)
let refactorize ?(pivot_tol = 1e-12) f m =
  if m.Mat.rows <> m.Mat.cols then invalid_arg "Lu.refactorize: matrix not square";
  let n = dim f in
  if m.Mat.rows <> n then invalid_arg "Lu.refactorize: dimension mismatch";
  Array.blit m.Mat.data 0 f.lu.Mat.data 0 (n * n);
  for i = 0 to n - 1 do
    f.perm.(i) <- i
  done;
  match eliminate ~pivot_tol f.lu f.perm with
  | sign ->
      f.sign <- sign;
      Stdlib.Ok ()
  | exception Singular k -> Stdlib.Error k

(* The triangular solves are the hot loop of the simplex refactorization
   (thousands of right-hand sides per refactor), hence the unsafe flat-array
   accesses. *)
let solve_factorized { lu; perm; _ } b =
  let n = lu.Mat.rows in
  if Array.length b <> n then invalid_arg "Lu.solve_factorized: dimension mismatch";
  let data = lu.Mat.data in
  let y = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution: L y = P b *)
  for i = 0 to n - 1 do
    let base = i * n in
    let acc = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get data (base + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !acc
  done;
  (* back substitution: U x = y *)
  for i = n - 1 downto 0 do
    let base = i * n in
    let acc = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Array.unsafe_get data (base + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!acc /. Array.unsafe_get data (base + i))
  done;
  y

(* Exception-free entry point: [Error k] names the elimination column whose
   pivot vanished, so callers can report the defect instead of unwinding. *)
let try_factorize ?pivot_tol m =
  match factorize ?pivot_tol m with
  | f -> Stdlib.Ok f
  | exception Singular k -> Stdlib.Error k

let solve ?pivot_tol a b = solve_factorized (factorize ?pivot_tol a) b

let try_solve ?pivot_tol a b =
  Result.map (fun f -> solve_factorized f b) (try_factorize ?pivot_tol a)

(* A' x = b with PA = LU: solve U' z = b (forward, diagonal from U), then
   L' w = z (backward, unit diagonal), then undo the permutation. *)
let solve_transposed { lu; perm; _ } b =
  let n = lu.Mat.rows in
  if Array.length b <> n then invalid_arg "Lu.solve_transposed: dimension mismatch";
  let data = lu.Mat.data in
  let z = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref (Array.unsafe_get z i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get data ((j * n) + i) *. Array.unsafe_get z j)
    done;
    Array.unsafe_set z i (!acc /. Array.unsafe_get data ((i * n) + i))
  done;
  for i = n - 1 downto 0 do
    let acc = ref (Array.unsafe_get z i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Array.unsafe_get data ((j * n) + i) *. Array.unsafe_get z j)
    done;
    Array.unsafe_set z i !acc
  done;
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    x.(perm.(i)) <- z.(i)
  done;
  x

let det { lu; sign; _ } =
  let acc = ref sign in
  for i = 0 to lu.Mat.rows - 1 do
    acc := !acc *. Mat.get lu i i
  done;
  !acc

let inverse ?pivot_tol m =
  let n = m.Mat.rows in
  let f = factorize ?pivot_tol m in
  let inv = Mat.zeros n n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let x = solve_factorized f e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv

let residual_norm a x b = Vec.norm_inf (Vec.sub (Mat.mul_vec a x) b)
