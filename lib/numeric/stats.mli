(** Streaming sample statistics and confidence intervals.

    The simulation replication driver reports paper-style aggregates
    ("over 10 iterations the overall loss decreases by about 20%") with
    Student-t confidence intervals computed here. *)

type t
(** Mutable accumulator of a univariate sample (Welford's algorithm). *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [nan] on an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val std_dev : t -> float

val std_error : t -> float

val min_value : t -> float

val max_value : t -> float

val of_list : float list -> t

val copy : t -> t

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to observing [a]'s
    sample followed by [b]'s (Chan et al. pairwise combination of Welford
    states — count and extrema exact, mean and variance up to roundoff).
    Neither argument is mutated.  This is the join step for statistics
    accumulated on separate domains of a {!Bufsize_pool.Pool}-style
    parallel run. *)

val t_quantile : df:int -> float
(** Two-sided 95% Student-t critical value for [df] degrees of freedom
    (tabulated, interpolated, asymptote 1.96). *)

val confidence_interval95 : t -> float * float
(** [(half_width_low, half_width_high)] bounds as [mean -/+ t * stderr];
    [nan, nan] with fewer than two observations. *)

val batch_means : batch:int -> float list -> t
(** Group a (time-ordered) sample into batches of size [batch] and
    accumulate the batch means — the classic variance-reduction device for
    correlated simulation output.  Trailing partial batches are dropped. *)
