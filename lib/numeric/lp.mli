(** Linear-program model layer.

    A small modelling API on top of {!Simplex}: named variables with lower
    bounds, [<=]/[=]/[>=] rows, minimize or maximize.  The model is lowered
    to standard form (slack and surplus variables, bound shifting, free
    variables split into positive and negative parts) and the solution is
    mapped back onto the user's variables.

    This is the layer the CTMDP occupation-measure formulation is written
    against ({!Bufsize_mdp.Lp_formulation}). *)

type t
(** A mutable LP under construction. *)

type var = private int
(** Variable handle, valid only for the model that created it. *)

type sense = Le | Eq | Ge

type direction = Minimize | Maximize

val create : ?name:string -> direction -> t
(** Fresh empty model. *)

val name : t -> string

val direction : t -> direction

val add_var : ?name:string -> ?lb:float -> t -> var
(** New variable with lower bound [lb] (default [0.]).
    [lb = neg_infinity] declares a free variable. *)

val add_vars : ?prefix:string -> t -> int -> var array
(** [add_vars t k] adds [k] nonnegative variables at once. *)

val var_name : t -> var -> string

val num_vars : t -> int

val num_constraints : t -> int

val num_terms : t -> int
(** Total nonzero coefficients across all constraint rows. *)

val set_objective : t -> (float * var) list -> unit
(** Linear objective; later coefficients for the same variable accumulate. *)

val add_constraint : ?name:string -> t -> (float * var) list -> sense -> float -> unit
(** [add_constraint t terms sense rhs] adds [sum terms (sense) rhs].
    Duplicate variables inside [terms] accumulate. *)

val add_constraint_a : ?name:string -> t -> (float * var) array -> sense -> float -> unit
(** Array flavour of {!add_constraint} — callers that assemble rows in
    arrays (e.g. CTMDP block emitters) avoid building an intermediate
    list per row. *)

val constraint_matrix : t -> Sparse.t
(** The raw user-level constraint matrix (rows x vars, duplicate terms
    accumulated) as CSR — no slack columns, bound shifts or objective. *)

type solution = {
  objective : float;
  values : float array;  (** indexed by variable *)
  duals : float array;  (** indexed by constraint, in insertion order *)
  iterations : int;
  basis : int array;
      (** optimal standard-form basis (indices into the columns of [A | I]),
          suitable as [?warm_basis] for a subsequent related solve *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

val value : solution -> var -> float

type engine = Dense | Revised

val solve :
  ?eps:float ->
  ?max_iter:int ->
  ?engine:engine ->
  ?bland_after:int ->
  ?lex:bool ->
  ?warm_basis:int array ->
  t ->
  outcome
(** Lower to standard form and solve.  [engine] selects the dense tableau
    ({!Simplex.solve} — battle-tested, O(m*(n+m)) memory) or the sparse
    revised simplex ({!Simplex_revised.solve_sparse} — lowered via
    {!to_standard_sparse}, never materializing a dense tableau).  When
    [engine] is omitted the model chooses: dense below ~400 rows (all
    published artifact runs stay on it, bit-for-bit), revised above.
    [bland_after] and [lex] are forwarded to the dense tableau only
    (anti-cycling knobs used by the escalation chain in {!solve_diag}).

    [warm_basis] — the [basis] of a prior {!solution} on a related model —
    is forwarded to the revised engine, which attempts a phase-2-only
    re-optimization from it and falls back to a cold start on any defect.
    When [engine] is omitted and a warm basis is supplied, the revised
    engine is selected regardless of size (a warm basis is meaningless to
    the dense tableau). *)

val feasibility_residual : t -> float array -> float
(** Worst violation of the user-level constraints by [values] (indexed by
    variable): [max] over rows of the signed gap appropriate to each row's
    sense.  Zero on a feasible point; reported as the diagnostic residual
    by {!solve_diag}. *)

val relative_feasibility_residual : t -> float array -> float
(** Like {!feasibility_residual} but with each row's gap divided by the
    row's largest coefficient magnitude, so violations of badly scaled
    rows (satisfied only within the solver's absolute tolerance) remain
    visible.  {!solve_diag} demotes a claimed optimum to [Degraded] when
    this exceeds [1e-6]. *)

val outcome_finite : outcome -> bool
(** [true] unless the outcome claims optimality with a NaN/Inf objective,
    value, or dual. *)

val solve_diag :
  ?eps:float ->
  ?max_iter:int ->
  ?engine:engine ->
  ?budget:Bufsize_resilience.Resilience.budget ->
  ?warm_basis:int array ->
  t ->
  outcome option * Bufsize_resilience.Resilience.diagnostic
(** Resilient {!solve}: runs the escalation chain
    auto engine -> other engine -> Bland from pivot one -> lexicographic
    perturbation, each step bounded by [budget] (default
    {!Bufsize_resilience.Resilience.of_env}).  The first step is exactly
    {!solve}, so the clean path is bit-for-bit unchanged and reported
    [Ok]; any fallback demotes the diagnostic to [Degraded]; exhausting
    the chain (or the budget with nothing usable) yields [None, Failed].
    A step is rejected — never surfaced — when it raises or claims an
    optimum containing NaN/Inf.

    Two layers of reuse sit in front of the chain:
    - an exact-key result cache ({!Solve_cache}) keyed on {!canonical} —
      a hit returns the stored result of the identical solve, bypassing
      the chain entirely (bitwise-transparent by construction);
    - when warm starting is on ({!set_warm_start} or [BUFSIZE_WARM_START]),
      the last optimal basis recorded under the model's {!signature} is
      handed to every step as a warm start, and the basis of each new
      optimum is recorded back.  An explicit [warm_basis] argument takes
      precedence over the registry and is honored regardless of the
      switch. *)

val canonical : ?tag:string -> t -> string
(** Lossless canonical print of the model (direction, nonzero lower
    bounds, objective, rows; names excluded).  Equal canonical strings
    imply bitwise-identical standard forms, hence bitwise-identical
    solver behaviour — the exact-key cache in {!solve_diag} relies on
    this.  [tag] folds solver parameters into the key. *)

val signature : t -> string
(** Structure-only key: dimensions, senses, sparsity pattern, free-variable
    pattern — everything that fixes the standard-form column layout but not
    the numeric values.  Models with equal signatures can exchange warm
    bases. *)

val set_warm_start : bool -> unit
(** Toggle the implicit warm-basis registry used by {!solve_diag}
    (default: off unless [BUFSIZE_WARM_START] is set to [1]/[on]/[true]).
    Off by default because a warm start may land on a different optimal
    vertex of a degenerate LP, perturbing last-ulp reproducibility of
    published artifacts; the warm-cold oracle checks objectives agree to
    [1e-9] and sizing outputs bitwise. *)

val warm_start_enabled : unit -> bool

val cache_stats : unit -> int * int
(** [(hits, misses)] of the {!solve_diag} result cache. *)

val to_standard : t -> Simplex.standard
(** The lowered dense standard form (exposed for tests and benchmarks). *)

val to_standard_sparse : t -> Simplex_revised.sparse_standard
(** The lowered standard form as sparse columns.  Coefficients are
    accumulated in the same order as {!to_standard}, so the two lowerings
    agree bitwise entry-for-entry. *)

val pp_outcome : Format.formatter -> outcome -> unit
