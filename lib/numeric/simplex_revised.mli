(** Sparse revised simplex — the scalable alternative to the dense tableau.

    Same problem class and result types as {!Simplex} (standard form:
    minimize [c'x] s.t. [A x = b], [x >= 0]), but instead of carrying the
    full [m x (n+m)] tableau it maintains only:

    - the sparse columns of [A];
    - an LU factorization of the current basis, extended between
      refactorizations by product-form {e eta} updates (FTRAN/BTRAN);
    - the dense basic solution vector.

    Per-pivot cost drops from [O(m (n+m))] dense row operations to
    [O(m k + nnz)] (eta application plus sparse pricing), which is what
    makes CTMDP occupation LPs beyond a few hundred states practical.

    Shares the dense engine's anti-degeneracy strategy: perturbed
    right-hand side during pivoting, a Harris-flavoured ratio test, and an
    exact LU refinement against the true data at the end (with an
    unperturbed retry when the perturbation manufactures infeasibility).

    Cross-validated against {!Simplex} by the test-suite on random LPs and
    on CTMDP instances. *)

type sparse_standard = {
  snrows : int;
  sncols : int;
  scols : (int * float) array array;
      (** structural columns; [(row, value)] pairs with strictly
          increasing rows *)
  sb : float array;
  sc : float array;
}
(** Standard form held column-wise and sparse — the native input of this
    engine.  {!solve} on a dense {!Simplex.standard} converts to this
    once up front; large models should lower straight to it
    ({!Lp.to_standard_sparse}) and never materialize the dense matrix. *)

val solve_sparse :
  ?eps:float ->
  ?max_iter:int ->
  ?refactor_every:int ->
  ?warm_basis:int array ->
  sparse_standard ->
  Simplex.result
(** Solve from the sparse columns directly.  Identical pivot trajectory to
    {!solve} on the equivalent dense input.

    [warm_basis] supplies the optimal basis of a related prior solve (the
    [basis] field of {!Simplex.solution}, indices into the columns of
    [A | I]).  The engine installs it, refactorizes, checks primal
    feasibility on the true right-hand side, and runs phase 2 only — on a
    nearby problem this re-optimizes in a handful of pivots.  If the basis
    is malformed, singular, infeasible, carries mass on an artificial
    column, or stalls, the engine falls back to the usual cold two-phase
    path, so a stale basis can degrade only speed, never the answer.
    Acceptance/rejection is counted in [simplex_revised.warm_accepted] /
    [simplex_revised.warm_rejected] (see {!warm_stats}). *)

val sparse_of_standard : Simplex.standard -> sparse_standard
(** Column extraction from a dense standard form (zeros dropped). *)

val solve :
  ?eps:float ->
  ?max_iter:int ->
  ?refactor_every:int ->
  ?warm_basis:int array ->
  Simplex.standard ->
  Simplex.result
(** [solve std] with [eps] (default [1e-9]) the reduced-cost tolerance,
    [max_iter] (default [200_000]) the total pivot bound, and
    [refactor_every] (default [64]) the eta-file length triggering basis
    refactorization.  [warm_basis] as in {!solve_sparse}. *)

val warm_stats : unit -> int * int
(** [(accepted, rejected)] warm-start counts since process start —
    mirrored as metrics-registry counters and reported by the CLI's
    [--health-json]. *)
