(** Sparse revised simplex — the scalable alternative to the dense tableau.

    Same problem class and result types as {!Simplex} (standard form:
    minimize [c'x] s.t. [A x = b], [x >= 0]), but instead of carrying the
    full [m x (n+m)] tableau it maintains only:

    - the sparse columns of [A];
    - an LU factorization of the current basis, extended between
      refactorizations by product-form {e eta} updates (FTRAN/BTRAN);
    - the dense basic solution vector.

    Per-pivot cost drops from [O(m (n+m))] dense row operations to
    [O(m k + nnz)] (eta application plus sparse pricing), which is what
    makes CTMDP occupation LPs beyond a few hundred states practical.

    Shares the dense engine's anti-degeneracy strategy: perturbed
    right-hand side during pivoting, a Harris-flavoured ratio test, and an
    exact LU refinement against the true data at the end (with an
    unperturbed retry when the perturbation manufactures infeasibility).

    Cross-validated against {!Simplex} by the test-suite on random LPs and
    on CTMDP instances. *)

type sparse_standard = {
  snrows : int;
  sncols : int;
  scols : (int * float) array array;
      (** structural columns; [(row, value)] pairs with strictly
          increasing rows *)
  sb : float array;
  sc : float array;
}
(** Standard form held column-wise and sparse — the native input of this
    engine.  {!solve} on a dense {!Simplex.standard} converts to this
    once up front; large models should lower straight to it
    ({!Lp.to_standard_sparse}) and never materialize the dense matrix. *)

val solve_sparse :
  ?eps:float -> ?max_iter:int -> ?refactor_every:int -> sparse_standard -> Simplex.result
(** Solve from the sparse columns directly.  Identical pivot trajectory to
    {!solve} on the equivalent dense input. *)

val sparse_of_standard : Simplex.standard -> sparse_standard
(** Column extraction from a dense standard form (zeros dropped). *)

val solve :
  ?eps:float -> ?max_iter:int -> ?refactor_every:int -> Simplex.standard -> Simplex.result
(** [solve std] with [eps] (default [1e-9]) the reduced-cost tolerance,
    [max_iter] (default [200_000]) the total pivot bound, and
    [refactor_every] (default [64]) the eta-file length triggering basis
    refactorization. *)
