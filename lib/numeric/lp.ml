type var = int

type sense = Le | Eq | Ge

type direction = Minimize | Maximize

(* Growable-array backing store.  Variables and rows are append-only, so
   everything is held in capacity-doubling arrays: [add_var], [var_name]
   and [num_constraints] are O(1), and the constraint matrix is stored
   CSR-style ([row_start] into flat [term_coef]/[term_var] arrays) so the
   lowering never walks linked lists. *)

type t = {
  lp_name : string;
  dir : direction;
  (* variables *)
  mutable vars : int;
  mutable var_names : string array;
  mutable lower_bounds : float array;
  (* objective *)
  mutable objective : (float * var) list;
  (* rows, CSR-style *)
  mutable nrows : int;
  mutable row_start : int array;  (* length >= nrows + 1 *)
  mutable row_rhs : float array;
  mutable row_sense : sense array;
  mutable row_names : string array;
  mutable nterms : int;
  mutable term_coef : float array;
  mutable term_var : int array;
}

let grow_float a len = Array.append a (Array.make (Int.max 4 len) 0.)
let grow_int a len = Array.append a (Array.make (Int.max 4 len) 0)
let grow_str a len = Array.append a (Array.make (Int.max 4 len) "")
let grow_sense a len = Array.append a (Array.make (Int.max 4 len) Eq)

let create ?(name = "lp") dir =
  {
    lp_name = name;
    dir;
    vars = 0;
    var_names = Array.make 8 "";
    lower_bounds = Array.make 8 0.;
    objective = [];
    nrows = 0;
    row_start = Array.make 9 0;
    row_rhs = Array.make 8 0.;
    row_sense = Array.make 8 Eq;
    row_names = Array.make 8 "";
    nterms = 0;
    term_coef = Array.make 16 0.;
    term_var = Array.make 16 0;
  }

let name t = t.lp_name
let direction t = t.dir

let add_var ?name ?(lb = 0.) t =
  let v = t.vars in
  if v = Array.length t.var_names then begin
    t.var_names <- grow_str t.var_names v;
    t.lower_bounds <- grow_float t.lower_bounds v
  end;
  let vname = match name with Some n -> n | None -> Printf.sprintf "x%d" v in
  t.var_names.(v) <- vname;
  t.lower_bounds.(v) <- lb;
  t.vars <- v + 1;
  v

let add_vars ?(prefix = "x") t k =
  Array.init k (fun i -> add_var ~name:(Printf.sprintf "%s%d" prefix i) t)

let var_name t v = t.var_names.(v)
let num_vars t = t.vars
let num_constraints t = t.nrows
let num_terms t = t.nterms

let check_var t v fn =
  if v < 0 || v >= t.vars then invalid_arg (Printf.sprintf "Lp.%s: unknown variable %d" fn v)

let set_objective t terms =
  List.iter (fun (_, v) -> check_var t v "set_objective") terms;
  t.objective <- terms

let ensure_row_capacity t extra_terms =
  let r = t.nrows in
  if r + 1 = Array.length t.row_start then begin
    t.row_start <- grow_int t.row_start r;
    t.row_rhs <- grow_float t.row_rhs r;
    t.row_sense <- grow_sense t.row_sense r;
    t.row_names <- grow_str t.row_names r
  end;
  let need = t.nterms + extra_terms in
  if need > Array.length t.term_coef then begin
    let cap = Int.max need (2 * Array.length t.term_coef) in
    t.term_coef <- Array.append t.term_coef (Array.make (cap - Array.length t.term_coef) 0.);
    t.term_var <- Array.append t.term_var (Array.make (cap - Array.length t.term_var) 0)
  end

let finish_row ?name t sense rhs =
  let r = t.nrows in
  t.row_rhs.(r) <- rhs;
  t.row_sense.(r) <- sense;
  t.row_names.(r) <- (match name with Some n -> n | None -> Printf.sprintf "c%d" r);
  t.nrows <- r + 1;
  t.row_start.(r + 1) <- t.nterms

let add_constraint ?name t terms sense rhs =
  List.iter (fun (_, v) -> check_var t v "add_constraint") terms;
  ensure_row_capacity t (List.length terms);
  List.iter
    (fun (coef, v) ->
      t.term_coef.(t.nterms) <- coef;
      t.term_var.(t.nterms) <- v;
      t.nterms <- t.nterms + 1)
    terms;
  finish_row ?name t sense rhs

let add_constraint_a ?name t terms sense rhs =
  Array.iter (fun (_, v) -> check_var t v "add_constraint_a") terms;
  ensure_row_capacity t (Array.length terms);
  Array.iter
    (fun (coef, v) ->
      t.term_coef.(t.nterms) <- coef;
      t.term_var.(t.nterms) <- v;
      t.nterms <- t.nterms + 1)
    terms;
  finish_row ?name t sense rhs

let iter_row_terms t r f =
  for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
    f t.term_coef.(k) t.term_var.(k)
  done

let constraint_matrix t =
  let triplets = ref [] in
  for r = t.nrows - 1 downto 0 do
    for k = t.row_start.(r + 1) - 1 downto t.row_start.(r) do
      triplets := (r, t.term_var.(k), t.term_coef.(k)) :: !triplets
    done
  done;
  Sparse.of_triplets ~rows:t.nrows ~cols:t.vars !triplets

type solution = {
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
  basis : int array;
      (* optimal standard-form basis, for warm-starting related solves *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

let value sol (v : var) = sol.values.(v)

(* Lowering.  Structural layout of standard-form columns:
   - for each user variable: one column (shifted by its finite lower bound),
     or two columns (positive/negative parts) when the variable is free;
   - then one slack (Le) or surplus (Ge) column per inequality row.
   The same layout drives the dense lowering, the sparse lowering and the
   solution mapping, so the two engines see the exact same problem. *)

type col_map = Single of int * float (* column, shift *) | Split of int * int

type layout = {
  cols : col_map array;  (* per user variable *)
  slack_cols : (int * float) option array;  (* per row: column, sign *)
  lncols : int;
}

let layout t =
  let next_col = ref 0 in
  let fresh () =
    let c = !next_col in
    incr next_col;
    c
  in
  let cols =
    Array.init t.vars (fun v ->
        let lb = t.lower_bounds.(v) in
        if lb = Float.neg_infinity then
          let p = fresh () in
          let m = fresh () in
          Split (p, m)
        else Single (fresh (), lb))
  in
  let slack_cols =
    Array.init t.nrows (fun r ->
        match t.row_sense.(r) with
        | Le -> Some (fresh (), 1.)
        | Ge -> Some (fresh (), -1.)
        | Eq -> None)
  in
  { cols; slack_cols; lncols = !next_col }

let standard_cost t lay =
  let c = Array.make lay.lncols 0. in
  let obj_sign = match t.dir with Minimize -> 1. | Maximize -> -1. in
  List.iter
    (fun (coef, v) ->
      match lay.cols.(v) with
      | Single (col, _) -> c.(col) <- c.(col) +. (obj_sign *. coef)
      | Split (p, m) ->
          c.(p) <- c.(p) +. (obj_sign *. coef);
          c.(m) <- c.(m) -. (obj_sign *. coef))
    t.objective;
  c

let to_standard t =
  let lay = layout t in
  let ncols = lay.lncols in
  let nrows = t.nrows in
  let a = Array.make (nrows * ncols) 0. in
  let b = Array.make nrows 0. in
  let add_entry i col x = a.((i * ncols) + col) <- a.((i * ncols) + col) +. x in
  for i = 0 to nrows - 1 do
    let rhs = ref t.row_rhs.(i) in
    iter_row_terms t i (fun coef v ->
        match lay.cols.(v) with
        | Single (col, shift) ->
            add_entry i col coef;
            if shift <> 0. then rhs := !rhs -. (coef *. shift)
        | Split (p, m) ->
            add_entry i p coef;
            add_entry i m (-.coef));
    (match lay.slack_cols.(i) with
    | Some (col, sign) -> add_entry i col sign
    | None -> ());
    b.(i) <- !rhs
  done;
  { Simplex.nrows; ncols; a; b; c = standard_cost t lay }

(* Sparse lowering: the same accumulation order as [to_standard] (a dense
   scratch row reused across rows), so the standard-form coefficients are
   bitwise identical to the dense path's — only the storage differs. *)
let to_standard_sparse t =
  let lay = layout t in
  let ncols = lay.lncols in
  let nrows = t.nrows in
  let b = Array.make nrows 0. in
  let scratch = Array.make ncols 0. in
  let touched = Array.make ncols false in
  let col_count = Array.make ncols 0 in
  (* Pass 1: per-row sorted nonzero columns with accumulated values. *)
  let row_entries =
    Array.init nrows (fun i ->
        let used = ref [] in
        let touch col x =
          if not touched.(col) then begin
            touched.(col) <- true;
            used := col :: !used
          end;
          scratch.(col) <- scratch.(col) +. x
        in
        let rhs = ref t.row_rhs.(i) in
        iter_row_terms t i (fun coef v ->
            match lay.cols.(v) with
            | Single (col, shift) ->
                touch col coef;
                if shift <> 0. then rhs := !rhs -. (coef *. shift)
            | Split (p, m) ->
                touch p coef;
                touch m (-.coef));
        (match lay.slack_cols.(i) with
        | Some (col, sign) -> touch col sign
        | None -> ());
        b.(i) <- !rhs;
        let cols_used = List.sort compare !used in
        let entries =
          List.filter_map
            (fun col ->
              let v = scratch.(col) in
              if v = 0. then None else Some (col, v))
            cols_used
        in
        List.iter
          (fun col ->
            scratch.(col) <- 0.;
            touched.(col) <- false)
          !used;
        List.iter (fun (col, _) -> col_count.(col) <- col_count.(col) + 1) entries;
        entries)
  in
  (* Pass 2: transpose row entries into per-column arrays; scanning rows in
     order yields strictly increasing row indices within each column. *)
  let scols = Array.map (fun c -> Array.make c (0, 0.)) col_count in
  let fill = Array.make ncols 0 in
  Array.iteri
    (fun i entries ->
      List.iter
        (fun (col, v) ->
          scols.(col).(fill.(col)) <- (i, v);
          fill.(col) <- fill.(col) + 1)
        entries)
    row_entries;
  { Simplex_revised.snrows = nrows; sncols = ncols; scols; sb = b; sc = standard_cost t lay }

type engine = Dense | Revised

(* With no explicit engine the model picks for itself: the dense tableau
   for small instances (battle-tested, and what all published artifacts
   were produced with), the sparse revised engine once the tableau would
   be large enough to dominate memory and time. *)
let auto_engine_threshold = 400

let choose_engine t = function
  | Some e -> e
  | None -> if t.nrows > auto_engine_threshold then Revised else Dense

let solve ?eps ?max_iter ?engine ?bland_after ?lex ?warm_basis t =
  (* A warm basis is only meaningful to the revised engine; when the caller
     did not pin an engine, its presence selects Revised so the warm attempt
     actually engages (sizing LPs sit below the auto threshold). *)
  let chosen =
    match (engine, warm_basis) with
    | None, Some _ -> Revised
    | _ -> choose_engine t engine
  in
  let result =
    match chosen with
    | Dense -> Simplex.solve ?eps ?max_iter ?bland_after ?lex (to_standard t)
    | Revised ->
        Simplex_revised.solve_sparse ?eps ?max_iter ?warm_basis (to_standard_sparse t)
  in
  match result with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal sol ->
      let lay = layout t in
      let values =
        Array.init t.vars (fun v ->
            match lay.cols.(v) with
            | Split (p, m) -> sol.Simplex.x.(p) -. sol.Simplex.x.(m)
            | Single (col, lb) -> sol.Simplex.x.(col) +. lb)
      in
      let obj_sign = match t.dir with Minimize -> 1. | Maximize -> -1. in
      (* Objective constant from lower-bound shifts is reconstructed by
         re-evaluating the user objective on the mapped values. *)
      let objective =
        List.fold_left (fun acc (coef, v) -> acc +. (coef *. values.(v))) 0. t.objective
      in
      let duals = Array.map (fun y -> obj_sign *. y) sol.Simplex.duals in
      Optimal
        {
          objective;
          values;
          duals;
          iterations = sol.Simplex.iterations;
          basis = sol.Simplex.basis;
        }

let pp_outcome ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal s ->
      Format.fprintf ppf "optimal: %.6g (%d iterations)" s.objective s.iterations

(* ------------------------------------------------------- resilient solve *)

module Resilience = Bufsize_resilience.Resilience
module Obs = Bufsize_obs.Obs

(* Worst constraint violation of [values] in user (pre-lowering) space,
   reported as the diagnostic residual. *)
let feasibility_residual t values =
  let worst = ref 0. in
  for r = 0 to t.nrows - 1 do
    let lhs = ref 0. in
    iter_row_terms t r (fun coef v -> lhs := !lhs +. (coef *. values.(v)));
    let gap =
      match t.row_sense.(r) with
      | Eq -> Float.abs (!lhs -. t.row_rhs.(r))
      | Le -> Float.max 0. (!lhs -. t.row_rhs.(r))
      | Ge -> Float.max 0. (t.row_rhs.(r) -. !lhs)
    in
    worst := Float.max !worst gap
  done;
  !worst

(* Worst violation with each row's gap divided by the row's coefficient
   magnitude.  The absolute measure calls a row "satisfied" whenever its
   gap is below the solver tolerance — which a row scaled down towards
   that tolerance achieves at points violating the original constraint
   badly.  Dividing by the row scale restores the comparison, so badly
   scaled rows are detectable a posteriori. *)
let relative_feasibility_residual t values =
  let worst = ref 0. in
  for r = 0 to t.nrows - 1 do
    let lhs = ref 0. in
    let scale = ref 0. in
    iter_row_terms t r (fun coef v ->
        lhs := !lhs +. (coef *. values.(v));
        scale := Float.max !scale (Float.abs coef));
    let gap =
      match t.row_sense.(r) with
      | Eq -> Float.abs (!lhs -. t.row_rhs.(r))
      | Le -> Float.max 0. (!lhs -. t.row_rhs.(r))
      | Ge -> Float.max 0. (t.row_rhs.(r) -. !lhs)
    in
    if !scale > 0. then worst := Float.max !worst (gap /. !scale)
  done;
  !worst

let outcome_finite = function
  | Infeasible | Unbounded -> true
  | Optimal s ->
      Float.is_finite s.objective
      && Resilience.all_finite s.values
      && Resilience.all_finite s.duals

(* Escalation chain over the LP engines: the auto-chosen engine first
   (identical to [solve] on the clean path), then the other engine, then
   the dense tableau under Bland's anti-cycling rule from the first pivot,
   then the dense tableau under the geometric (lexicographic-style)
   right-hand-side perturbation.  A step is rejected when it raises or
   when it claims optimality with NaN/Inf anywhere in the solution, so a
   usable result is always finite.  [budget] (default: the
   BUFSIZE_SOLVE_BUDGET_MS environment budget) bounds the whole chain in
   wall-clock time; on exhaustion the best-known answer is returned as
   [Degraded] rather than spinning through further fallbacks.

   Returns [None] (with a [Failed] diagnostic) only when every step
   rejected. *)
let m_lp_solves = Obs.counter "lp.solves"
let g_lp_rows = Obs.gauge "lp.rows"
let g_lp_nnz = Obs.gauge "lp.nnz"

(* ------------------------------------------- canonical printing & caching *)

(* Lossless canonical print of the full model (direction, bounds, objective
   in insertion order, rows with CSR-order terms).  Two models with equal
   canonical strings lower to bitwise-identical standard forms and therefore
   solve to bitwise-identical answers, which is what makes exact-key result
   caching transparent to every artifact.  Variable/row names are excluded —
   they never reach the solver. *)
let canonical ?(tag = "") t =
  let buf = Buffer.create (256 + (t.nterms * 16)) in
  let f = Solve_cache.float_repr in
  Printf.bprintf buf "lp1 %s %s vars %d rows %d"
    (match t.dir with Minimize -> "min" | Maximize -> "max")
    t.lp_name t.vars t.nrows;
  if tag <> "" then Printf.bprintf buf " tag %s" tag;
  Buffer.add_char buf '\n';
  for v = 0 to t.vars - 1 do
    let lb = t.lower_bounds.(v) in
    if lb <> 0. then Printf.bprintf buf "lb %d %s\n" v (f lb)
  done;
  Buffer.add_string buf "obj";
  List.iter (fun (c, v) -> Printf.bprintf buf " %d:%s" v (f c)) t.objective;
  Buffer.add_char buf '\n';
  for r = 0 to t.nrows - 1 do
    Buffer.add_string buf
      (match t.row_sense.(r) with Le -> "le " | Eq -> "eq " | Ge -> "ge ");
    Buffer.add_string buf (f t.row_rhs.(r));
    iter_row_terms t r (fun coef v -> Printf.bprintf buf " %d:%s" v (f coef));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Structure-only key (dimensions, senses, sparsity pattern, free-variable
   pattern) — everything that determines the standard-form column layout but
   not the numbers.  Two models with equal signatures accept each other's
   optimal bases as warm starts; whether a basis actually helps is then
   decided numerically by the engine. *)
let signature t =
  let buf = Buffer.create (128 + (t.nterms * 4)) in
  Printf.bprintf buf "lpsig1 %s %s vars %d rows %d terms %d\n"
    (match t.dir with Minimize -> "min" | Maximize -> "max")
    t.lp_name t.vars t.nrows t.nterms;
  for v = 0 to t.vars - 1 do
    if t.lower_bounds.(v) = Float.neg_infinity then Printf.bprintf buf "free %d\n" v
  done;
  Buffer.add_string buf "o";
  List.iter (fun (_, v) -> Printf.bprintf buf " %d" v) t.objective;
  Buffer.add_char buf '\n';
  for r = 0 to t.nrows - 1 do
    Buffer.add_string buf
      (match t.row_sense.(r) with Le -> "l" | Eq -> "e" | Ge -> "g");
    iter_row_terms t r (fun _ v -> Printf.bprintf buf " %d" v);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Exact-key result cache for [solve_diag], plus a structural registry of
   last good bases so escalation chains and sweep loops inherit a warm
   start without explicit threading.  The registry is consulted only when
   warm starting is switched on: its hand-offs can land on a different
   optimal vertex of a degenerate LP, so the default keeps published
   artifacts bitwise-reproducible; callers opt in per process
   ([BUFSIZE_WARM_START=1] or {!set_warm_start}).  Explicit [?warm_basis]
   arguments are always honored. *)
let result_cache : (outcome option * Resilience.diagnostic) Solve_cache.t =
  Solve_cache.create "lp"

let warm_registry : int array Solve_cache.t =
  (* [always]: the registry is gated by the warm-start flag below, not by
     the result-cache switch — disabling result caching to time a cold
     path must not silently turn warm starts off too. *)
  Solve_cache.create ~capacity:32 ~always:true "lp.warm-basis"

let warm_env_var = "BUFSIZE_WARM_START"

let warm_flag =
  ref
    (match Sys.getenv_opt warm_env_var with
    | Some ("1" | "on" | "true" | "yes") -> true
    | _ -> false)

let set_warm_start b = warm_flag := b
let warm_start_enabled () = !warm_flag

let cache_stats () =
  (Solve_cache.hits result_cache, Solve_cache.misses result_cache)

let solve_diag ?eps ?max_iter ?engine ?budget ?warm_basis t =
  Obs.incr m_lp_solves;
  Obs.set_gauge g_lp_rows (float_of_int t.nrows);
  Obs.set_gauge g_lp_nnz (float_of_int t.nterms);
  let cache_key =
    (* Budgeted calls are excluded from caching entirely: the caller asked
       for wall-clock semantics (an expired budget must surface as a
       budget failure, a tight one as Degraded), and a cached Ok from an
       unbudgeted solve would silently override that contract. *)
    if budget = None && Solve_cache.enabled () then
      Some
        (canonical
           ~tag:
             (Printf.sprintf "eps=%s;it=%s;eng=%s"
                (match eps with Some e -> Solve_cache.float_repr e | None -> "-")
                (match max_iter with Some i -> string_of_int i | None -> "-")
                (match engine with
                | Some Dense -> "dense"
                | Some Revised -> "revised"
                | None -> "auto"))
           t)
    else None
  in
  match Option.bind cache_key (Solve_cache.find result_cache) with
  | Some cached -> cached
  | None ->
  let warm =
    match warm_basis with
    | Some _ as w -> w
    | None ->
        if warm_start_enabled () then Solve_cache.find warm_registry (signature t)
        else None
  in
  let primary =
    match (engine, warm) with None, Some _ -> Revised | _ -> choose_engine t engine
  in
  let attempt ?bland_after ?lex engine _budget =
    let o = solve ?eps ?max_iter ~engine ?bland_after ?lex ?warm_basis:warm t in
    if not (outcome_finite o) then
      Resilience.Reject "claimed-optimal solution contains NaN/Inf"
    else
      match o with
      | Optimal s ->
          let m =
            Resilience.meta ~iterations:s.iterations ~residual:(feasibility_residual t s.values)
              ()
          in
          let rel = relative_feasibility_residual t s.values in
          if rel > 1e-6 then
            Resilience.Partial
              ( o,
                m,
                Printf.sprintf
                  "claimed optimum violates a constraint at relative level %.3e (badly scaled \
                   row?)"
                  rel )
          else Resilience.Accept (o, m)
      | Infeasible | Unbounded -> Resilience.Accept (o, Resilience.meta ())
  in
  let dense_steps =
    [
      Resilience.step "bland" (attempt ~bland_after:0 Dense);
      Resilience.step "lex-perturbation" (attempt ~lex:true Dense);
    ]
  in
  let steps =
    match primary with
    | Revised ->
        Resilience.step "revised-simplex" (attempt Revised)
        :: Resilience.step "dense-tableau" (attempt Dense)
        :: dense_steps
    | Dense ->
        Resilience.step "dense-tableau" (attempt Dense)
        :: Resilience.step "revised-simplex" (attempt Revised)
        :: dense_steps
  in
  let budget = match budget with Some b -> b | None -> Resilience.of_env () in
  let ((outcome_opt, diag) as result) =
    Resilience.escalate ~solver:(Printf.sprintf "lp.solve(%s)" t.lp_name) ~budget steps
  in
  (match outcome_opt with
  | Some (Optimal s) ->
      if warm_start_enabled () then Solve_cache.add warm_registry (signature t) s.basis;
      (* Only clean first-step answers are cached: Degraded/Failed outcomes
         can depend on the wall-clock budget and deserve a retry. *)
      (match (cache_key, diag.Resilience.status) with
      | Some key, Resilience.Ok -> Solve_cache.add result_cache key result
      | _ -> ())
  | Some (Infeasible | Unbounded) | None -> ());
  result
