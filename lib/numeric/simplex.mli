(** Two-phase primal simplex on standard-form linear programs.

    Standard form here means: minimize [c'x] subject to [A x = b], [x >= 0].
    Rows with negative right-hand side are flipped internally, so callers
    only need equality form.  Phase 1 introduces one artificial variable per
    row; phase 2 blocks artificial columns from re-entering the basis.

    Pivoting uses Dantzig's rule and falls back to Bland's rule (which is
    provably cycle-free) after [bland_after] iterations, so the solver
    terminates on degenerate problems such as CTMDP occupation-measure LPs.
    Setting [BUFSIZE_SIMPLEX_PRICING=partial] switches the pre-Bland
    iterations to rotating-window partial pricing (optimality is still
    certified by a full scan); the Dantzig default is the measured winner
    on this repo's LPs — see DESIGN.md §3.1.  Pivot elimination skips the
    pivot row's zero columns, the dominant saving on sparse tableaus.

    Dual values are read off the artificial columns of the final tableau and
    exposed in {!solution}; the buffer-budget row's dual is the "price of
    buffer space" used by the Lagrangian decomposition ablation. *)

type standard = {
  nrows : int;
  ncols : int;
  a : float array;  (** row-major [nrows * ncols] constraint matrix *)
  b : float array;  (** right-hand side, length [nrows] *)
  c : float array;  (** cost vector, length [ncols] *)
}

type solution = {
  x : float array;  (** primal optimum, length [ncols] *)
  objective : float;
  duals : float array;  (** one multiplier per row (sign: y'b = objective) *)
  basis : int array;  (** basic column per row *)
  iterations : int;
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded

val solve :
  ?eps:float ->
  ?max_iter:int ->
  ?bland_after:int ->
  ?lex:bool ->
  standard ->
  result
(** [solve std] runs two-phase simplex.  [eps] (default [1e-9]) is the
    numerical tolerance for reduced costs and pivots; [max_iter] (default
    [200_000]) bounds total pivots; [bland_after] (default [20_000]) is the
    pivot count after which Bland's rule replaces Dantzig's.  [lex]
    (default [false]) replaces the uniform anti-degeneracy right-hand-side
    perturbation with a lexicographic-style geometric one — strictly
    decreasing per-row magnitudes, so ties between degenerate rows are
    broken in a fixed row order; the escalation chain's last resort on
    cycling-prone instances.
    @raise Invalid_argument on inconsistent dimensions. *)

val solution_finite : solution -> bool
(** No NaN/Inf anywhere in the claimed solution (objective, primal point,
    duals) — the invariant the resilience layer checks before accepting. *)

val feasibility_error : standard -> float array -> float
(** [feasibility_error std x] is [|Ax - b|_inf]; a-posteriori check used by
    the test-suite. *)
