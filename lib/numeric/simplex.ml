module Obs = Bufsize_obs.Obs

(* Pivot-level telemetry: one guarded atomic add per pivot (a pivot is
   already O(width) work) and per tableau refactorization.  Disabled:
   one atomic load and branch. *)
let m_pivots = Obs.counter "simplex.pivots"
let m_refactorizations = Obs.counter "simplex.refactorizations"

type standard = {
  nrows : int;
  ncols : int;
  a : float array;
  b : float array;
  c : float array;
}

type solution = {
  x : float array;
  objective : float;
  duals : float array;
  basis : int array;
  iterations : int;
}

type result = Optimal of solution | Infeasible | Unbounded

(* The tableau is stored row-major with width [width = ncols + nrows + 1]:
   columns 0..ncols-1 are the structural variables, ncols..ncols+nrows-1 the
   artificials, and the last column the right-hand side.  Row [nrows] is the
   reduced-cost row; its last entry holds minus the current objective. *)

type tableau = {
  m : int;  (* constraint rows *)
  n : int;  (* structural columns *)
  width : int;
  t : float array;  (* (m + 1) * width *)
  basis : int array;  (* length m *)
  nz : int array;  (* scratch: nonzero column indices of the pivot row *)
}

let tget tab i j = Array.unsafe_get tab.t ((i * tab.width) + j)
let tset tab i j x = Array.unsafe_set tab.t ((i * tab.width) + j) x

let check_dims std =
  if Array.length std.a <> std.nrows * std.ncols then
    invalid_arg "Simplex.solve: matrix size mismatch";
  if Array.length std.b <> std.nrows then invalid_arg "Simplex.solve: rhs size mismatch";
  if Array.length std.c <> std.ncols then invalid_arg "Simplex.solve: cost size mismatch"

let build_tableau std =
  let m = std.nrows and n = std.ncols in
  let width = n + m + 1 in
  let t = Array.make ((m + 1) * width) 0. in
  let tab =
    { m; n; width; t; basis = Array.init m (fun i -> n + i); nz = Array.make width 0 }
  in
  for i = 0 to m - 1 do
    let flip = if std.b.(i) < 0. then -1. else 1. in
    for j = 0 to n - 1 do
      tset tab i j (flip *. std.a.((i * n) + j))
    done;
    tset tab i (n + i) 1.;
    tset tab i (width - 1) (flip *. std.b.(i))
  done;
  tab

(* Pivot on (row, col): normalize the pivot row and eliminate the column from
   every other row including the cost row.  The elimination only visits the
   pivot row's nonzero columns (their indices are gathered into the [nz]
   scratch during normalization) and skips rows with a zero factor —
   subtracting [factor *. 0.] is an identity, and on the sparse early
   tableaus of the occupation-measure LPs most entries are exactly zero, so
   the skipped work dominates. *)
let pivot tab row col =
  Obs.incr m_pivots;
  let { width; t; nz; _ } = tab in
  let pbase = row * width in
  let pval = Array.unsafe_get t (pbase + col) in
  let inv = 1. /. pval in
  let nnz = ref 0 in
  for j = 0 to width - 1 do
    let v = Array.unsafe_get t (pbase + j) in
    if v <> 0. then begin
      Array.unsafe_set t (pbase + j) (v *. inv);
      Array.unsafe_set nz !nnz j;
      incr nnz
    end
  done;
  let nnz = !nnz in
  for i = 0 to tab.m do
    if i <> row then begin
      let base = i * width in
      let factor = Array.unsafe_get t (base + col) in
      if factor <> 0. then
        for k = 0 to nnz - 1 do
          let j = Array.unsafe_get nz k in
          Array.unsafe_set t (base + j)
            (Array.unsafe_get t (base + j) -. (factor *. Array.unsafe_get t (pbase + j)))
        done
    end
  done;
  tab.basis.(row) <- col

(* Entering column.  Bland mode scans for the first negative reduced cost
   from column 0 (the anti-cycling rule needs that fixed order).  The
   normal mode has two pricing strategies:

   - [Dantzig] (default): full scan over all n + m reduced costs, enter on
     the most negative.
   - [Partial]: rotating-window partial pricing.  A refill scans columns
     from a rotating cursor, wrapping, and collects up to
     [max_candidates] columns with negative reduced cost, stopping early
     once the window is full; the iterations in between price only that
     list (re-reading each candidate's CURRENT reduced cost from the
     tableau) and enter on the most negative among them.  When the list
     yields nothing, the refill resumes at the cursor — and only a refill
     that wraps the entire column range without finding a negative
     reduced cost declares optimality, so termination rests on a full
     scan exactly as with Dantzig.

   Partial pricing is the textbook remedy when pricing dominates, but
   measurement on this repo's occupation-measure LPs shows the opposite
   regime: once [pivot] exploits row sparsity, the full scan is cheap,
   and lower-quality entering picks inflate the pivot count — and the
   pivots are the expensive step.  A keep-the-K-most-negative variant
   already doubled the pivots (1870 -> 3614 across the Table 1 sizing
   workload, ~2x wall clock); the rotating first-found window is several
   times slower again, even on the widest joint LP we build (2176
   columns).  Dantzig is therefore the default at every width; set
   BUFSIZE_SIMPLEX_PRICING=partial to force the rotating window (for
   problem classes wide enough that scanning dominates again), or
   =dantzig to pin the default explicitly. *)
type pricing_mode = Dantzig | Partial

let pricing_mode_of_env () =
  match Sys.getenv_opt "BUFSIZE_SIMPLEX_PRICING" with
  | Some "partial" -> Partial
  | Some "dantzig" | None -> Dantzig
  | Some other ->
      invalid_arg
        (Printf.sprintf
           "BUFSIZE_SIMPLEX_PRICING: expected \"dantzig\" or \"partial\", got %S" other)

type pricing = {
  mode : pricing_mode;
  cand : int array;
  mutable ncand : int;
  mutable cursor : int;  (* column the next rotating refill starts from *)
}

let max_candidates = 24

let new_pricing () =
  { mode = pricing_mode_of_env (); cand = Array.make max_candidates 0; ncand = 0; cursor = 0 }

(* Rotating refill: scan from the cursor, wrapping once around all n + m
   columns, collecting allowed columns with reduced cost < -eps; stop as
   soon as the window is full.  Leaves [pr.ncand = 0] only after a
   complete wrap found nothing — a full-scan certificate of optimality. *)
let refill_candidates tab ~eps ~allow pr =
  let cost_row = tab.m in
  let total = tab.n + tab.m in
  pr.ncand <- 0;
  let scanned = ref 0 in
  let j = ref (if pr.cursor < total then pr.cursor else 0) in
  while !scanned < total && pr.ncand < max_candidates do
    (if allow !j && tget tab cost_row !j < -.eps then begin
       pr.cand.(pr.ncand) <- !j;
       pr.ncand <- pr.ncand + 1
     end);
    incr scanned;
    j := !j + 1;
    if !j >= total then j := 0
  done;
  pr.cursor <- !j

let entering tab ~eps ~bland ~allow ~pricing:pr =
  let cost_row = tab.m in
  let total = tab.n + tab.m in
  if bland then begin
    let best = ref (-1) in
    (try
       for j = 0 to total - 1 do
         if allow j && tget tab cost_row j < -.eps then begin
           best := j;
           raise Exit
         end
       done
     with Exit -> ());
    !best
  end
  else
    match pr.mode with
    | Dantzig ->
        let best = ref (-1) in
        let best_val = ref (-.eps) in
        for j = 0 to total - 1 do
          if allow j then begin
            let r = tget tab cost_row j in
            if r < !best_val then begin
              best := j;
              best_val := r
            end
          end
        done;
        !best
    | Partial ->
        let pick () =
          (* Most negative CURRENT reduced cost among the candidates;
             stale entries (risen above -eps since the refill) are
             skipped. *)
          let best = ref (-1) and best_k = ref (-1) in
          let best_val = ref (-.eps) in
          for k = 0 to pr.ncand - 1 do
            let r = tget tab cost_row pr.cand.(k) in
            if r < !best_val then begin
              best := pr.cand.(k);
              best_val := r;
              best_k := k
            end
          done;
          (!best, !best_k)
        in
        let best, best_k =
          match pick () with
          | -1, _ ->
              refill_candidates tab ~eps ~allow pr;
              pick ()
          | found -> found
        in
        if best >= 0 then begin
          (* The chosen column becomes basic (reduced cost 0) — drop it. *)
          pr.cand.(best_k) <- pr.cand.(pr.ncand - 1);
          pr.ncand <- pr.ncand - 1;
          best
        end
        else -1

(* Ratio test: row minimizing b_i / a_ij over a_ij > eps; ties broken on the
   smallest basic-variable index (part of Bland's anti-cycling guarantee).
   Tiny negative b_i are roundoff on degenerate vertices and treated as 0,
   which keeps noise from steering the pivot path. *)
(* Harris-flavoured two-pass ratio test.  Pass 1 finds the minimum ratio;
   pass 2 picks, among rows whose ratio sits within a tiny relative window
   of the minimum, the one with the LARGEST pivot element — the standard
   defence against pivoting on near-zero entries, whose reciprocals amplify
   roundoff catastrophically.  The right-hand side carries a deliberate
   perturbation (see [perturb]) much larger than the window, so the
   anti-degeneracy ordering survives. *)
let leaving_scan tab ~tol col =
  let min_ratio = ref infinity in
  for i = 0 to tab.m - 1 do
    let aij = tget tab i col in
    if aij > tol then begin
      let ratio = Float.max 0. (tget tab i (tab.width - 1)) /. aij in
      if ratio < !min_ratio then min_ratio := ratio
    end
  done;
  if !min_ratio = infinity then -1
  else begin
    let cutoff = !min_ratio +. (1e-7 *. !min_ratio) +. 1e-12 in
    let best = ref (-1) in
    let best_pivot = ref 0. in
    for i = 0 to tab.m - 1 do
      let aij = tget tab i col in
      if aij > tol then begin
        let ratio = Float.max 0. (tget tab i (tab.width - 1)) /. aij in
        if ratio <= cutoff && aij > !best_pivot then begin
          best := i;
          best_pivot := aij
        end
      end
    done;
    !best
  end

(* Prefer healthy pivot elements (> 1e-6); only fall back to the loose
   tolerance before declaring unboundedness. *)
let leaving tab ~eps col =
  let row = leaving_scan tab ~tol:1e-6 col in
  if row >= 0 then row else leaving_scan tab ~tol:eps col

type phase_outcome = Phase_optimal | Phase_unbounded | Phase_iterations

let run_phase tab ~eps ~max_iter ~bland_after ~refactor_every ~refactor ~allow iterations =
  let pricing = new_pricing () in
  let rec loop iters since_refactor =
    if iters >= max_iter then (Phase_iterations, iters)
    else begin
      let since_refactor =
        if since_refactor >= refactor_every then begin
          refactor ();
          0
        end
        else since_refactor
      in
      let bland = iters >= bland_after in
      let col = entering tab ~eps ~bland ~allow ~pricing in
      if col < 0 then (Phase_optimal, iters)
      else begin
        let row = leaving tab ~eps col in
        if row < 0 then (Phase_unbounded, iters)
        else begin
          pivot tab row col;
          loop (iters + 1) (since_refactor + 1)
        end
      end
    end
  in
  loop iterations 0

(* Install a cost vector (length n over structural columns; artificials cost
   [art_cost]) into the reduced-cost row, pricing out the current basis. *)
let install_costs tab ~art_cost c =
  let cost_row = tab.m in
  for j = 0 to tab.width - 1 do
    tset tab cost_row j 0.
  done;
  for j = 0 to tab.n - 1 do
    tset tab cost_row j c.(j)
  done;
  for j = tab.n to tab.n + tab.m - 1 do
    tset tab cost_row j art_cost
  done;
  for i = 0 to tab.m - 1 do
    let cb = if tab.basis.(i) < tab.n then c.(tab.basis.(i)) else art_cost in
    if cb <> 0. then begin
      let base = i * tab.width in
      let cbase = cost_row * tab.width in
      for j = 0 to tab.width - 1 do
        Array.unsafe_set tab.t (cbase + j)
          (Array.unsafe_get tab.t (cbase + j) -. (cb *. Array.unsafe_get tab.t (base + j)))
      done
    end
  done

(* After phase 1, pivot basic artificials out on any structural column with a
   nonzero entry; rows where that is impossible are redundant and harmless
   (their artificial stays basic at value zero and can never re-enter). *)
let drive_out_artificials tab ~eps =
  ignore eps;
  for i = 0 to tab.m - 1 do
    if tab.basis.(i) >= tab.n then begin
      let j = ref 0 in
      let found = ref (-1) in
      while !found < 0 && !j < tab.n do
        if Float.abs (tget tab i !j) > 1e-7 then found := !j;
        incr j
      done;
      if !found >= 0 then pivot tab i !found
    end
  done

(* Extract the solution directly from the tableau (subject to accumulated
   floating-point drift after long pivot runs). *)
let tableau_solution std tab iterations =
  let x = Array.make tab.n 0. in
  for i = 0 to tab.m - 1 do
    if tab.basis.(i) < tab.n then x.(tab.basis.(i)) <- Float.max 0. (tget tab i (tab.width - 1))
  done;
  let objective = ref 0. in
  for j = 0 to tab.n - 1 do
    objective := !objective +. (std.c.(j) *. x.(j))
  done;
  (* Duals: y_i = -reduced cost of artificial column i (cost 0 in phase 2),
     adjusted for rows flipped at tableau construction. *)
  let duals =
    Array.init tab.m (fun i ->
        let y = -.tget tab tab.m (tab.n + i) in
        if std.b.(i) < 0. then -.y else y)
  in
  { x; objective = !objective; duals; basis = Array.copy tab.basis; iterations }

(* Recompute the basic solution and duals exactly from the original data
   given the final basis: solve B x_B = b and B' y = c_B by LU.  This wipes
   out tableau drift.  Returns None when the recomputed point is infeasible
   (the pivot path went numerically astray) so the caller can fall back. *)
let refined_solution std tab iterations =
  let m = tab.m in
  let flip i = if std.b.(i) < 0. then -1. else 1. in
  let bmat =
    Mat.init m m (fun i j ->
        let col = tab.basis.(j) in
        if col < tab.n then flip i *. std.a.((i * std.ncols) + col)
        else if col - tab.n = i then 1.
        else 0.)
  in
  match Lu.factorize bmat with
  | exception Lu.Singular _ -> None
  | f ->
      let b_flipped = Array.init m (fun i -> flip i *. std.b.(i)) in
      let xb = Lu.solve_factorized f b_flipped in
      (* The pivot path ran on a perturbed right-hand side (amplitude up to
         ~1e-7, see [perturb]), so the final basis may be infeasible for the
         true data by that same order; accept it and clamp, reject only
         genuine infeasibility. *)
      let feasible = ref true in
      let worst = ref 0. and worst_art = ref 0. in
      Array.iteri
        (fun j v ->
          if v < -1e-5 then feasible := false;
          if v < !worst then worst := v;
          (* A basic artificial must sit at (perturbation-) zero. *)
          if tab.basis.(j) >= tab.n && Float.abs v > 1e-5 then feasible := false;
          if tab.basis.(j) >= tab.n && Float.abs v > !worst_art then worst_art := Float.abs v)
        xb;
      if (not !feasible) && Sys.getenv_opt "BUFSIZE_SIMPLEX_DEBUG" <> None then
        Printf.eprintf "[simplex] refine rejected: min x_B %.3e, max |artificial| %.3e\n%!" !worst
          !worst_art;
      if not !feasible then None
      else begin
        let x = Array.make tab.n 0. in
        Array.iteri (fun j v -> if tab.basis.(j) < tab.n then x.(tab.basis.(j)) <- Float.max 0. v) xb;
        let objective = ref 0. in
        for j = 0 to tab.n - 1 do
          objective := !objective +. (std.c.(j) *. x.(j))
        done;
        let cb = Array.init m (fun j -> if tab.basis.(j) < tab.n then std.c.(tab.basis.(j)) else 0.) in
        let bt = Mat.transpose bmat in
        (* A singular transposed basis means the dual solve cannot be
           trusted; historically this claimed Optimal with NaN duals.  Now
           the refinement is rejected instead, so the caller falls back to
           the tableau solution (finite duals, drift-retry path) and the
           claimed-feasible result never carries NaN/Inf. *)
        match Lu.try_solve bt cb with
        | Stdlib.Error _ -> None
        | Stdlib.Ok y ->
            let duals = Array.init m (fun i -> flip i *. y.(i)) in
            Some { x; objective = !objective; duals; basis = Array.copy tab.basis; iterations }
      end

(* Rebuild the whole tableau from the original data given the current basis
   (solve B z = col for every column by LU), then re-install the phase's
   cost row.  This is the textbook defence against floating-point drift in
   long pivot runs; without it the heavily degenerate CTMDP occupation LPs
   corrupt their right-hand sides after a few thousand pivots. *)
let refactorize std tab ~art_cost ~costs =
  Obs.incr m_refactorizations;
  let m = tab.m in
  let flip i = if std.b.(i) < 0. then -1. else 1. in
  let bmat =
    Mat.init m m (fun i j ->
        let col = tab.basis.(j) in
        if col < tab.n then flip i *. std.a.((i * std.ncols) + col)
        else if col - tab.n = i then 1.
        else 0.)
  in
  match Lu.factorize bmat with
  | exception Lu.Singular _ -> ()
  | f ->
      let col_buf = Array.make m 0. in
      for j = 0 to tab.width - 1 do
        for i = 0 to m - 1 do
          col_buf.(i) <-
            (if j < tab.n then flip i *. std.a.((i * std.ncols) + j)
             else if j < tab.n + tab.m then if j - tab.n = i then 1. else 0.
             else flip i *. std.b.(i))
        done;
        let z = Lu.solve_factorized f col_buf in
        for i = 0 to m - 1 do
          tset tab i j (if Float.abs z.(i) < 1e-12 then 0. else z.(i))
        done
      done;
      install_costs tab ~art_cost costs

(* Dual-simplex cleanup: after the pivot path ran on perturbed data, the
   final basis can be slightly primal-infeasible for the true right-hand
   side while remaining dual-feasible (reduced costs >= 0).  Standard dual
   pivots restore primal feasibility in a handful of steps: leave on the
   most negative basic value, enter on the dual ratio test. *)
let dual_cleanup tab ~allow ~max_pivots =
  let rec loop k =
    if k < max_pivots then begin
      let r = ref (-1) in
      let worst = ref (-1e-9) in
      for i = 0 to tab.m - 1 do
        let b = tget tab i (tab.width - 1) in
        if b < !worst then begin
          worst := b;
          r := i
        end
      done;
      if !r >= 0 then begin
        let best = ref (-1) in
        let best_ratio = ref infinity in
        for j = 0 to tab.n + tab.m - 1 do
          if allow j then begin
            let arj = tget tab !r j in
            if arj < -1e-7 then begin
              let rc = Float.max 0. (tget tab tab.m j) in
              let ratio = rc /. -.arj in
              if ratio < !best_ratio then begin
                best_ratio := ratio;
                best := j
              end
            end
          end
        done;
        if !best >= 0 then begin
          pivot tab !r !best;
          loop (k + 1)
        end
      end
    end
  in
  loop 0

(* Occupation-measure LPs are extremely degenerate (the right-hand side is
   almost entirely zero), which stalls Dantzig pivoting for tens of
   thousands of ties.  The classic cure: perturb the right-hand side by a
   tiny strictly increasing amount, making every basic feasible solution
   nondegenerate, then restore the true right-hand side (refactorization +
   dual-simplex cleanup) and read the exact answer off the final basis
   ([refined_solution] solves B x_B = b by LU). *)
let perturb std =
  let scale =
    1e-4 *. Float.max 1. (Array.fold_left (fun a b -> Float.max a (Float.abs b)) 0. std.b)
  in
  let m = float_of_int (Int.max 1 std.nrows) in
  let b =
    Array.mapi
      (fun i bi ->
        let delta = scale *. float_of_int (i + 1) /. m in
        if bi < 0. then bi -. delta else bi +. delta)
      std.b
  in
  { std with b }

(* Geometric right-hand-side perturbation — the numerical stand-in for the
   lexicographic anti-cycling rule.  The deltas decay geometrically (with a
   floor against underflow), so ties between rows are broken in a strict
   priority order no matter how the linear [perturb] profile interacted
   with the data; used as the last step of the LP escalation chain. *)
let perturb_lex std =
  let scale =
    1e-4 *. Float.max 1. (Array.fold_left (fun a b -> Float.max a (Float.abs b)) 0. std.b)
  in
  let b =
    Array.mapi
      (fun i bi ->
        let delta = scale *. Float.max (0.618 ** float_of_int (i + 1)) 1e-9 in
        if bi < 0. then bi -. delta else bi +. delta)
      std.b
  in
  { std with b }

(* No NaN/Inf anywhere in a claimed-feasible solution: the invariant the
   resilience layer asserts on every public LP result. *)
let solution_finite (s : solution) =
  Float.is_finite s.objective
  && Array.for_all Float.is_finite s.x
  && Array.for_all Float.is_finite s.duals

let solve ?(eps = 1e-9) ?(max_iter = 200_000) ?(bland_after = 20_000) ?(lex = false) std =
  check_dims std;
  (* Pivot on the perturbed problem; refine and report against the true
     one.  [refined_solution] and the result records must see [std]. *)
  let run ~work ~bland_after ~refactor_every =
    let tab = build_tableau work in
    install_costs tab ~art_cost:1. (Array.make tab.n 0.);
    let allow_all j = j < tab.n + tab.m in
    let zero_costs = Array.make tab.n 0. in
    let refactor1 () = refactorize work tab ~art_cost:1. ~costs:zero_costs in
    let outcome1, iters1 =
      Obs.span ~name:"simplex.phase1"
        ~attrs:(fun () -> [ ("rows", string_of_int tab.m); ("cols", string_of_int tab.n) ])
        (fun () ->
          run_phase tab ~eps ~max_iter ~bland_after ~refactor_every ~refactor:refactor1
            ~allow:allow_all 0)
    in
    refactor1 ();
    let phase1_obj = -.tget tab tab.m (tab.width - 1) in
    match outcome1 with
    | Phase_iterations -> `Stalled
    | Phase_unbounded -> `Infeasible
    | Phase_optimal when phase1_obj > 1e-6 -> `Infeasible
    | Phase_optimal -> (
        drive_out_artificials tab ~eps;
        install_costs tab ~art_cost:0. work.c;
        let structural j = j < tab.n in
        let refactor2 () = refactorize work tab ~art_cost:0. ~costs:work.c in
        let outcome2, iters2 =
          Obs.span ~name:"simplex.phase2"
            ~attrs:(fun () -> [ ("rows", string_of_int tab.m); ("cols", string_of_int tab.n) ])
            (fun () ->
              run_phase tab ~eps ~max_iter ~bland_after ~refactor_every ~refactor:refactor2
                ~allow:structural iters1)
        in
        match outcome2 with
        | Phase_unbounded -> `Unbounded
        | Phase_iterations | Phase_optimal -> (
            (* Swap the true data back in (removing the perturbation) and
               restore primal feasibility with a few dual pivots. *)
            refactorize std tab ~art_cost:0. ~costs:std.c;
            dual_cleanup tab ~allow:structural ~max_pivots:(tab.m + 16);
            match refined_solution std tab iters2 with
            | Some sol -> `Optimal sol
            | None -> `Drifted (tableau_solution std tab iters2)))
  in
  let debug = Sys.getenv_opt "BUFSIZE_SIMPLEX_DEBUG" <> None in
  let timed label f =
    Obs.span ~name:"simplex.dense"
      ~attrs:(fun () ->
        [ ("run", label); ("rows", string_of_int std.nrows); ("cols", string_of_int std.ncols) ])
    @@ fun () ->
    if not debug then f ()
    else begin
      let t0 = Sys.time () in
      let r = f () in
      Printf.eprintf "[simplex] %s: %.2fs (m=%d n=%d)\n%!" label (Sys.time () -. t0) std.nrows
        std.ncols;
      r
    end
  in
  let unperturbed_retry () =
    (* The perturbation turns redundant-but-consistent rows (rank-deficient
       systems like balanced transportation problems) into inconsistent
       ones; a perturbed "infeasible" verdict must be confirmed on the true
       data before being believed. *)
    match timed "unperturbed retry" (fun () -> run ~work:std ~bland_after ~refactor_every:200)
    with
    | `Optimal sol -> Optimal sol
    | `Unbounded -> Unbounded
    | `Infeasible | `Stalled -> Infeasible
    | `Drifted fallback -> Optimal fallback
  in
  let work = if lex then perturb_lex std else perturb std in
  match timed "first run" (fun () -> run ~work ~bland_after ~refactor_every:400) with
  | `Infeasible -> unperturbed_retry ()
  | `Unbounded -> Unbounded
  | `Optimal sol -> Optimal sol
  | `Stalled -> unperturbed_retry ()
  | `Drifted fallback -> (
      (* The pivot path drifted numerically despite refactorization; retry
         with much tighter refactorization (still Dantzig — Bland is far
         too slow on these LPs and no more accurate). *)
      match timed "drift retry" (fun () -> run ~work ~bland_after ~refactor_every:100) with
      | `Optimal sol -> Optimal sol
      | `Infeasible -> Infeasible
      | `Unbounded -> Unbounded
      | `Stalled | `Drifted _ -> Optimal fallback)

let feasibility_error std x =
  let err = ref 0. in
  for i = 0 to std.nrows - 1 do
    let acc = ref 0. in
    for j = 0 to std.ncols - 1 do
      acc := !acc +. (std.a.((i * std.ncols) + j) *. x.(j))
    done;
    err := Float.max !err (Float.abs (!acc -. std.b.(i)))
  done;
  !err
