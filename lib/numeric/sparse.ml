(* Compressed sparse row matrices.  See sparse.mli for the contract. *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let nnz t = t.row_ptr.(t.rows)
let row_nnz t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let of_triplets ~rows ~cols entries =
  if rows < 0 || cols < 0 then
    invalid_arg "Sparse.of_triplets: negative dimensions";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: entry (%d, %d) out of %dx%d" i j
             rows cols))
    entries;
  (* Accumulate duplicates per row in list order so float sums are
     reproducible regardless of how callers interleave rows. *)
  let row_entries = Array.make rows [] in
  List.iter
    (fun (i, j, v) -> row_entries.(i) <- (j, v) :: row_entries.(i))
    entries;
  let row_ptr = Array.make (rows + 1) 0 in
  let acc = Hashtbl.create 16 in
  let per_row =
    Array.init rows (fun i ->
        let elts = List.rev row_entries.(i) in
        Hashtbl.reset acc;
        let order = ref [] in
        List.iter
          (fun (j, v) ->
            match Hashtbl.find_opt acc j with
            | None ->
                Hashtbl.add acc j v;
                order := j :: !order
            | Some prev -> Hashtbl.replace acc j (prev +. v))
          elts;
        let cols_used = List.sort compare (List.rev !order) in
        let kept =
          List.filter_map
            (fun j ->
              let v = Hashtbl.find acc j in
              if v = 0. then None else Some (j, v))
            cols_used
        in
        row_ptr.(i + 1) <- List.length kept;
        kept)
  in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + row_ptr.(i + 1)
  done;
  let n = row_ptr.(rows) in
  let col_idx = Array.make n 0 and values = Array.make n 0. in
  Array.iteri
    (fun i kept ->
      let k = ref row_ptr.(i) in
      List.iter
        (fun (j, v) ->
          col_idx.(!k) <- j;
          values.(!k) <- v;
          incr k)
        kept)
    per_row;
  { rows; cols; row_ptr; col_idx; values }

let of_rows ~rows ~cols row_data =
  if Array.length row_data <> rows then
    invalid_arg "Sparse.of_rows: row count mismatch";
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Array.length row_data.(i)
  done;
  let n = row_ptr.(rows) in
  let col_idx = Array.make n 0 and values = Array.make n 0. in
  for i = 0 to rows - 1 do
    let base = row_ptr.(i) in
    let prev = ref (-1) in
    Array.iteri
      (fun k (j, v) ->
        if j <= !prev || j < 0 || j >= cols then
          invalid_arg "Sparse.of_rows: columns not strictly increasing";
        prev := j;
        col_idx.(base + k) <- j;
        values.(base + k) <- v)
      row_data.(i)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense (m : Mat.t) =
  let rows = m.Mat.rows and cols = m.Mat.cols in
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    let c = ref 0 in
    for j = 0 to cols - 1 do
      if Mat.get m i j <> 0. then incr c
    done;
    row_ptr.(i + 1) <- row_ptr.(i) + !c
  done;
  let n = row_ptr.(rows) in
  let col_idx = Array.make n 0 and values = Array.make n 0. in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Mat.get m i j in
      if v <> 0. then begin
        col_idx.(!k) <- j;
        values.(!k) <- v;
        incr k
      end
    done
  done;
  { rows; cols; row_ptr; col_idx; values }

let to_dense t =
  let m = Mat.zeros t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: index out of range";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let res = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      res := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let fold_row t i f init =
  let acc = ref init in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    acc := f !acc t.col_idx.(k) t.values.(k)
  done;
  !acc

let iter t f =
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.col_idx.(k) t.values.(k)
    done
  done

let mul_vec_into t x y =
  if Array.length x <> t.cols then invalid_arg "Sparse.mul_vec: size mismatch";
  if Array.length y <> t.rows then invalid_arg "Sparse.mul_vec: out mismatch";
  for i = 0 to t.rows - 1 do
    let s = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      s := !s +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !s
  done

let mul_vec t x =
  let y = Array.make t.rows 0. in
  mul_vec_into t x y;
  y

let mul_vec_t_into t x y =
  if Array.length x <> t.rows then
    invalid_arg "Sparse.mul_vec_t: size mismatch";
  if Array.length y <> t.cols then invalid_arg "Sparse.mul_vec_t: out mismatch";
  Array.fill y 0 (Array.length y) 0.;
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        y.(j) <- y.(j) +. (t.values.(k) *. xi)
      done
  done

let mul_vec_t t x =
  let y = Array.make t.cols 0. in
  mul_vec_t_into t x y;
  y

let scale a t = { t with values = Array.map (fun v -> a *. v) t.values }
let map f t = { t with values = Array.map f t.values }

let with_values t values =
  if Array.length values <> nnz t then
    invalid_arg "Sparse.with_values: value count mismatch";
  { t with values }

let index t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.index: index out of range";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      res := mid;
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  if !res < 0 then None else Some !res

let transpose t =
  let n = nnz t in
  let row_ptr = Array.make (t.cols + 1) 0 in
  for k = 0 to n - 1 do
    let j = t.col_idx.(k) in
    row_ptr.(j + 1) <- row_ptr.(j + 1) + 1
  done;
  for j = 0 to t.cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j) + row_ptr.(j + 1)
  done;
  let fill = Array.copy row_ptr in
  let col_idx = Array.make n 0 and values = Array.make n 0. in
  (* Row-major scan emits each transposed row's entries in increasing
     original-row order, i.e. increasing column order of the result. *)
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      let pos = fill.(j) in
      col_idx.(pos) <- i;
      values.(pos) <- t.values.(k);
      fill.(j) <- pos + 1
    done
  done;
  { rows = t.cols; cols = t.rows; row_ptr; col_idx; values }

let row_sums t =
  let s = Array.make t.rows 0. in
  for i = 0 to t.rows - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. t.values.(k)
    done;
    s.(i) <- !acc
  done;
  s

let approx_equal ?(tol = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      if Float.abs (get a i j -. get b i j) > tol then ok := false
    done
  done;
  !ok

let pp fmt t =
  Format.fprintf fmt "@[<v>sparse %dx%d (nnz %d)" t.rows t.cols (nnz t);
  for i = 0 to t.rows - 1 do
    if row_nnz t i > 0 then begin
      Format.fprintf fmt "@,row %d:" i;
      iter_row t i (fun j v -> Format.fprintf fmt " (%d, %g)" j v)
    end
  done;
  Format.fprintf fmt "@]"
