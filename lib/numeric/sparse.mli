(** Compressed sparse row (CSR) matrices — the numeric backbone of the
    sparse-first solve pipeline.

    CTMDP generators, induced CTMC generators, and lowered LP constraint
    matrices are all structurally sparse (a handful of arrival/service
    neighbours per buffer-occupancy state), so the hot paths carry a CSR
    triple [(row_ptr, col_idx, values)] instead of an O(n^2) dense
    {!Mat.t}.  Entries within a row are stored with strictly increasing
    column indices; duplicate triplets are accumulated at construction.

    The dense {!Mat} layer remains the cross-check and small-instance
    fallback ({!to_dense} / {!of_dense} convert losslessly). *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1]; row [i] occupies
                            [row_ptr.(i) .. row_ptr.(i+1) - 1] *)
  col_idx : int array;  (** length [nnz], strictly increasing per row *)
  values : float array;  (** length [nnz] *)
}

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** [of_triplets ~rows ~cols entries] accumulates duplicate [(i, j, v)]
    entries (in list order, so float accumulation is reproducible) and
    drops entries whose accumulated value is exactly [0.].
    @raise Invalid_argument on out-of-range indices or negative dims. *)

val of_dense : Mat.t -> t
(** Structural zeros are dropped. *)

val to_dense : t -> Mat.t

val of_rows : rows:int -> cols:int -> (int * float) array array -> t
(** [of_rows ~rows ~cols r] with [r.(i)] the entries of row [i] as
    [(col, value)] pairs in strictly increasing column order (validated).
    Zero values are kept as given; no accumulation is performed. *)

val nnz : t -> int

val get : t -> int -> int -> float
(** Binary search within the row; [0.] for structural zeros. *)

val row_nnz : t -> int -> int

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row a i f] applies [f col value] over row [i] in increasing
    column order. *)

val fold_row : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a

val iter : t -> (int -> int -> float -> unit) -> unit
(** All entries, row-major. *)

val mul_vec : t -> Vec.t -> Vec.t
(** SpMV: [A x]. *)

val mul_vec_t : t -> Vec.t -> Vec.t
(** Transposed SpMV: [A' x], computed without materializing [A']. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x y] writes [A x] into [y] (no allocation). *)

val mul_vec_t_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_t_into a x y] writes [A' x] into [y] (no allocation). *)

val scale : float -> t -> t
(** [scale a m] is [a * m] (fresh values array, shared structure copied). *)

val map : (float -> float) -> t -> t
(** Entry-wise; structure preserved (zeros produced by [f] are kept). *)

val with_values : t -> float array -> t
(** [with_values a v] is [a] with its values replaced by [v] (same
    [row_ptr]/[col_idx], shared not copied) — the incremental-update
    primitive: rebuild only the numbers when the sparsity pattern is
    known unchanged.
    @raise Invalid_argument unless [Array.length v = nnz a]. *)

val index : t -> int -> int -> int option
(** [index a i j] is the position of entry [(i, j)] inside the flat
    [values] array, or [None] for a structural zero.  Binary search within
    the row, like {!get}. *)

val transpose : t -> t
(** CSR of [A']; entries stay sorted per row. *)

val row_sums : t -> float array

val approx_equal : ?tol:float -> t -> t -> bool
(** Entry-wise comparison through the dense semantics (structural zeros
    compare equal to stored zeros). *)

val pp : Format.formatter -> t -> unit
