(* AMBA AHB/APB bridge sizing.

   The paper motivates bridged SoC architectures with "the AMBA and
   CoreConnect systems"; this example sizes the canonical AMBA shape: a
   fast AHB system bus feeding a slow APB peripheral bus through the
   AHB-APB bridge.  Peripheral-bound writes pile up at the bridge, so the
   uniform split wastes words on lightly used peripheral buffers while the
   bridge overflows — exactly the redistribution opportunity the CTMDP
   method exploits.

   Run with:  dune exec examples/amba_peripheral.exe *)

module B = Bufsize

let () =
  let topo, traffic = B.Amba.create () in
  Format.printf "%a@.@.%a@.@." B.Topology.pp topo B.Traffic.pp traffic;
  let outcome =
    B.size_and_evaluate
      (B.experiment ~budget:24 ~replications:5
         ~config:{ (B.Sizing.default_config ~budget:24) with B.Sizing.max_states = 96 }
         traffic)
  in
  Format.printf "CTMDP allocation (note the AHB-APB bridge share):@.%a@.@."
    (fun ppf -> B.Buffer_alloc.pp topo ppf)
    outcome.B.sizing.B.Sizing.allocation;
  Format.printf "%a@.@." B.pp_outcome outcome;
  (* Latency view: the delivered requests' end-to-end delay per processor
     under the CTMDP sizing. *)
  let spec =
    B.Sim_run.default_spec ~traffic ~allocation:outcome.B.sizing.B.Sizing.allocation
  in
  let report = B.Sim_run.run { spec with B.Sim_run.horizon = 2000. } in
  Format.printf "end-to-end latency under the CTMDP sizing:@.";
  Array.iteri
    (fun p (s : B.Metrics.proc_stats) ->
      if s.B.Metrics.delivered > 0 then
        Format.printf "  %-6s mean %.3f  max %.3f@."
          (B.Topology.processor topo p).B.Topology.proc_name s.B.Metrics.mean_latency
          s.B.Metrics.max_latency)
    report.B.Metrics.per_proc
