(* The paper's Figure 1 architecture, end to end.

   Demonstrates the paper's structural argument:
   - the monolithic model of bridged buses is a quadratic system that a
     generic Newton solver does not reliably crack (Section 2);
   - inserting buffers at bridges splits the architecture into linear
     subsystems (Figure 2), which the CTMDP/LP machinery solves jointly;
   - the resulting K-switching policies and allocation.

   Run with:  dune exec examples/bridged_soc.exe *)

module B = Bufsize

let () =
  let topo, traffic = B.Fig1.create () in
  Format.printf "== The paper's Figure 1 architecture ==@.%a@.@.%a@.@." B.Topology.pp topo
    B.Traffic.pp traffic;

  (* The split (the paper's Figure 2). *)
  let split = B.Splitting.split traffic in
  Format.printf "== Splitting at bridges ==@.%a@.@." (fun ppf -> B.Splitting.pp ppf topo) split;

  (* The monolithic quadratic system vs the split linear one. *)
  let spec =
    {
      B.Monolithic.kx = 4;
      ky = 4;
      lambda_x = 2.1;
      lambda_y = 1.8;
      cross_fraction = 0.6;
      mu_x = 2.4;
      mu_y = 2.2;
    }
  in
  Format.printf "== Monolithic (no buffer at the bridge): %d unknowns, %d nonlinear terms ==@."
    (B.Monolithic.dim spec)
    (B.Monolithic.quadratic_term_count spec);
  let report = B.Monolithic.attempt ~starts:25 spec in
  Format.printf "%a@." B.Monolithic.pp_attempt report;
  let split_sol = B.Monolithic.solve_split spec in
  Format.printf
    "split system (linear): always solvable; losses x=%.4g y=%.4g bridge=%.4g@.@."
    split_sol.B.Monolithic.x_loss split_sol.B.Monolithic.y_loss split_sol.B.Monolithic.bridge_loss;

  (* Full CTMDP sizing of the Figure 1 system. *)
  let config = { (B.Sizing.default_config ~budget:40) with B.Sizing.max_states = 64 } in
  let sizing = B.Sizing.run config traffic in
  Format.printf "== CTMDP sizing ==@.%a@.@.%a@.@." B.Sizing.pp_summary sizing
    (fun ppf -> B.Buffer_alloc.pp topo ppf)
    sizing.B.Sizing.allocation;

  (* The K-switching structure of each subsystem's optimal policy. *)
  Array.iter
    (fun (sol : B.Sizing.subsystem_solution) ->
      let sub = B.Bus_model.subsystem sol.B.Sizing.model in
      Format.printf "subsystem %s: %a@." sub.B.Splitting.bus_name B.Mdp.Kswitching.pp
        sol.B.Sizing.switching)
    sizing.B.Sizing.solutions
