(* The paper's evaluation platform: a 17-processor network processor.

   Reproduces the Figure 3 experiment at reduced statistical effort (3
   replications instead of 10; run the bench harness for the full thing):
   per-processor losses before sizing, after CTMDP sizing, and under the
   timeout policy.

   Run with:  dune exec examples/network_processor.exe *)

module B = Bufsize

let () =
  let topo, traffic = B.Netproc.create () in
  Format.printf "network processor testbench: %d processors, %d buses, %d bridges@."
    (B.Topology.num_processors topo) (B.Topology.num_buses topo) (B.Topology.num_bridges topo);
  Array.iter
    (fun (bus : B.Topology.bus) ->
      Format.printf "  bus %-5s rho = %.2f@." bus.B.Topology.bus_name
        (B.Traffic.bus_utilization traffic bus.B.Topology.bus_id))
    (B.Topology.buses topo);
  Format.printf "@.";
  let outcome =
    B.size_and_evaluate
      (B.experiment ~budget:160 ~replications:3 ~horizon:1500.
         ~config:{ (B.Sizing.default_config ~budget:160) with B.Sizing.max_states = 128 }
         traffic)
  in
  Format.printf "%a@.@." B.pp_outcome outcome;
  Format.printf "K-switching summary per subsystem:@.";
  Array.iter
    (fun (sol : B.Sizing.subsystem_solution) ->
      let sub = B.Bus_model.subsystem sol.B.Sizing.model in
      Format.printf "  %-6s: %d randomized state(s) of %d@." sub.B.Splitting.bus_name
        sol.B.Sizing.switching.B.Mdp.Kswitching.num_randomized
        (B.Bus_model.num_states sol.B.Sizing.model))
    outcome.B.sizing.B.Sizing.solutions
