(* Budget sweep (the paper's Table 1 in miniature).

   Sweeps the total buffer budget on a compact bridged architecture and
   prints pre/post-sizing losses, showing the paper's trend: redistribution
   helps at every budget and losses vanish once the budget is generous.

   Run with:  dune exec examples/capacity_sweep.exe *)

module B = Bufsize
module Stats = Bufsize_numeric.Stats

(* Deliberately asymmetric: the bridge into the slower east bus carries the
   dominant load, so a uniform split under-provisions it — the situation
   buffer redistribution exists for. *)
let arch () =
  let b = B.Topology.builder () in
  let bus0 = B.Topology.add_bus b ~service_rate:3.0 "west" in
  let bus1 = B.Topology.add_bus b ~service_rate:2.5 "east" in
  let p0 = B.Topology.add_processor b ~bus:bus0 "A" in
  let p1 = B.Topology.add_processor b ~bus:bus0 "B" in
  let p2 = B.Topology.add_processor b ~bus:bus1 "C" in
  let p3 = B.Topology.add_processor b ~bus:bus1 "D" in
  ignore (B.Topology.add_bridge b ~between:(bus0, bus1) "br");
  let topo = B.Topology.finalize b in
  let traffic =
    B.Traffic.create topo
      [
        { B.Traffic.src = p0; dst = p2; rate = 1.5 };
        { B.Traffic.src = p1; dst = p0; rate = 0.6 };
        { B.Traffic.src = p2; dst = p3; rate = 0.5 };
        { B.Traffic.src = p3; dst = p1; rate = 0.3 };
      ]
  in
  (topo, traffic)

let () =
  let _, traffic = arch () in
  Format.printf "%-8s %12s %12s %12s@." "budget" "before" "after" "reduction";
  List.iter
    (fun budget ->
      let outcome =
        B.size_and_evaluate
          (B.experiment ~budget ~replications:5 ~horizon:1200.
             ~config:{ (B.Sizing.default_config ~budget) with B.Sizing.max_states = 48 }
             traffic)
      in
      let mean v = Stats.mean v.B.aggregate.B.Replicate.total_lost in
      Format.printf "%-8d %12.1f %12.1f %11.1f%%@." budget
        (mean outcome.B.before) (mean outcome.B.after)
        (100. *. outcome.B.improvement_vs_before))
    [ 8; 12; 16; 24; 32; 48; 64 ]
