(* Quickstart: size the buffers of a two-bus SoC and compare losses.

   Build a topology, attach Poisson flows, run the CTMDP sizing, and
   re-simulate before/after — the library's happy path in ~40 lines.

   Run with:  dune exec examples/quickstart.exe *)

module B = Bufsize

let () =
  (* 1. Describe the architecture: two buses joined by a bridge. *)
  let builder = B.Topology.builder () in
  let left = B.Topology.add_bus builder ~service_rate:3.0 "left" in
  let right = B.Topology.add_bus builder ~service_rate:3.0 "right" in
  let cpu = B.Topology.add_processor builder ~bus:left "cpu" in
  let dsp = B.Topology.add_processor builder ~bus:left "dsp" in
  let dma = B.Topology.add_processor builder ~bus:right "dma" in
  let io = B.Topology.add_processor builder ~bus:right "io" in
  ignore (B.Topology.add_bridge builder ~between:(left, right) "bridge");
  let topo = B.Topology.finalize builder in

  (* 2. Describe the traffic (Poisson request rates). *)
  let traffic =
    B.Traffic.create topo
      [
        { B.Traffic.src = cpu; dst = dma; rate = 1.0 };
        { B.Traffic.src = dsp; dst = cpu; rate = 0.7 };
        { B.Traffic.src = dma; dst = io; rate = 0.8 };
        { B.Traffic.src = io; dst = dsp; rate = 0.6 };
      ]
  in
  Format.printf "%a@.@.%a@.@." B.Topology.pp topo B.Traffic.pp traffic;

  (* 3. Size 16 buffer words with the CTMDP method and evaluate. *)
  let outcome = B.size_and_evaluate (B.experiment ~budget:16 ~replications:5 traffic) in
  Format.printf "allocation chosen by the CTMDP method:@.%a@.@."
    (fun ppf -> B.Buffer_alloc.pp topo ppf)
    outcome.B.sizing.B.Sizing.allocation;
  Format.printf "%a@." B.pp_outcome outcome
