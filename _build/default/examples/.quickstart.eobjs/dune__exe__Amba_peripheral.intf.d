examples/amba_peripheral.mli:
