examples/network_processor.mli:
