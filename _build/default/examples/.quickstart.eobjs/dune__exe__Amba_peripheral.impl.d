examples/amba_peripheral.ml: Array Bufsize Format
