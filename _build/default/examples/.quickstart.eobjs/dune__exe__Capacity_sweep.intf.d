examples/capacity_sweep.mli:
