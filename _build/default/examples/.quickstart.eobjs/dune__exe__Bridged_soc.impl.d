examples/bridged_soc.ml: Array Bufsize Format
