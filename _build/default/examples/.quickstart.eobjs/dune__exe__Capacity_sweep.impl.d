examples/capacity_sweep.ml: Bufsize Bufsize_numeric Format List
