examples/network_processor.ml: Array Bufsize Format
