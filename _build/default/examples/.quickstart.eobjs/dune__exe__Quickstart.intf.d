examples/quickstart.mli:
