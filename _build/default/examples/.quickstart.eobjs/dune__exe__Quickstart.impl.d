examples/quickstart.ml: Bufsize Format
