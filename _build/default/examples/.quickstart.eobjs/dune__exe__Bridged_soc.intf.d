examples/bridged_soc.mli:
