lib/sim/arbiter.mli: Bufsize_prob Bufsize_soc
