lib/sim/replicate.ml: Array Bufsize_numeric Bufsize_soc Float Format Metrics Sim_run
