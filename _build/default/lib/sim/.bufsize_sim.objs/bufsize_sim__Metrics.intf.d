lib/sim/metrics.mli: Bufsize_soc Format
