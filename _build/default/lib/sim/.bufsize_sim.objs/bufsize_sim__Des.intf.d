lib/sim/des.mli:
