lib/sim/metrics.ml: Array Bufsize_soc Float Format
