lib/sim/replicate.mli: Bufsize_numeric Format Sim_run
