lib/sim/arbiter.ml: Array Bufsize_prob Bufsize_soc
