lib/sim/sim_run.ml: Arbiter Array Bufsize_prob Bufsize_soc Des Float List Metrics Option Queue
