lib/sim/sim_run.mli: Arbiter Bufsize_soc Metrics
