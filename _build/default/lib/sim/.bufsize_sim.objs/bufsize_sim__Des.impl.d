lib/sim/des.ml: Event_heap
