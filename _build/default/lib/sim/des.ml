type t = { heap : (t -> unit) Event_heap.t; mutable clock : float }

let create () = { heap = Event_heap.create (); clock = 0. }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Des.schedule_at: time in the past";
  Event_heap.push t.heap ~time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Des.schedule: negative delay";
  Event_heap.push t.heap ~time:(t.clock +. delay) f

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      f t;
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    match Event_heap.peek_time t.heap with
    | Some time when time <= until -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.clock < until then t.clock <- until

let pending t = Event_heap.size t.heap
