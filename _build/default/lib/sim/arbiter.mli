(** Bus arbitration policies for the simulator.

    At every service opportunity the bus arbiter picks which nonempty
    client buffer to serve next.  [Custom] hooks in externally built
    policies — in particular the stochastic CTMDP policy extracted by
    {!Bufsize_soc.Sizing} (see [Bufsize.stochastic_arbiter]). *)

type view = {
  bus : Bufsize_soc.Topology.bus_id;  (** the bus being arbitrated *)
  num_clients : int;
  queue_lengths : int array;  (** requests waiting per client *)
  capacities : int array;  (** buffer capacity per client, in requests *)
  last_served : int;  (** previously served client, [-1] before any *)
}

type t =
  | Round_robin  (** cycle through nonempty clients after [last_served] *)
  | Fixed_priority  (** lowest client index first *)
  | Longest_queue  (** most backlogged first, index tie-break *)
  | Random  (** uniform among nonempty clients *)
  | Custom of string * (view -> Bufsize_prob.Rng.t -> int option)
      (** named external policy; a [None] or invalid answer falls back to
          [Longest_queue] *)

val choose : t -> Bufsize_prob.Rng.t -> view -> int option
(** The client to serve, or [None] when all buffers are empty. *)

val name : t -> string
