(** Discrete-event simulation core.

    A thin engine around {!Event_heap}: a clock, an event queue, and a run
    loop.  Event payloads are closures, so model code schedules arbitrary
    behaviour without the engine knowing about entity types. *)

type t

val create : unit -> t

val now : t -> float

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Schedule relative to the current time.
    @raise Invalid_argument on negative delay. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Schedule at an absolute time.
    @raise Invalid_argument if the time is in the past. *)

val run : t -> until:float -> unit
(** Execute events in order until the queue empties or the next event is
    later than [until]; the clock ends at [min until (last event time)]
    and is then advanced to [until]. *)

val step : t -> bool
(** Execute a single event; false when the queue is empty. *)

val pending : t -> int
(** Number of scheduled events. *)
