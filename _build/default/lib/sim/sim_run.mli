(** Build and run a discrete-event simulation of a buffered bus
    architecture.

    Wires a {!Bufsize_soc.Traffic} spec, a {!Bufsize_soc.Buffer_alloc}
    allocation, and an {!Arbiter} policy into the {!Des} engine:

    - every flow is an independent Poisson source;
    - a request traverses the buffer sequence of its route (source
      processor buffer, then one bridge buffer per crossed bridge), being
      transmitted once on each bus along the way (exponential service at
      the bus rate);
    - a request arriving at a full buffer is dropped and counted against
      its originating processor;
    - with [timeout = Some t], a request whose buffer sojourn exceeds [t]
      is dropped at selection time (the paper's timeout policy; use
      {!Metrics.mean_buffer_sojourn} of a calibration run as [t]);
    - statistics reset at [warmup] and accumulate until [horizon]. *)

type timeout_policy =
  | Global of float  (** one threshold for every buffer *)
  | Per_buffer of (Bufsize_soc.Topology.bus_id -> Bufsize_soc.Traffic.client -> float)
      (** per-buffer thresholds, e.g. each buffer's own measured average
          sojourn (the paper's "average time spent by a request in a
          buffer"); non-finite or nonpositive values disable the timeout
          for that buffer *)

type spec = {
  traffic : Bufsize_soc.Traffic.t;
  allocation : Bufsize_soc.Buffer_alloc.t;
  arbiter : Arbiter.t;
  timeout : timeout_policy option;
  horizon : float;
  warmup : float;
  seed : int;
}

val default_spec :
  traffic:Bufsize_soc.Traffic.t ->
  allocation:Bufsize_soc.Buffer_alloc.t ->
  spec
(** Longest-queue arbiter, no timeout, horizon 2000, warmup 100, seed 1. *)

val run : spec -> Metrics.report
(** @raise Invalid_argument on a nonpositive horizon or warmup >= horizon. *)
