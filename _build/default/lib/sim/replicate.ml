module Stats = Bufsize_numeric.Stats

type aggregate = {
  replications : int;
  per_proc_lost : Stats.t array;
  per_proc_offered : Stats.t array;
  per_proc_latency : Stats.t array;
  total_lost : Stats.t;
  total_offered : Stats.t;
  loss_fraction : Stats.t;
  mean_sojourn : Stats.t;
}

let run ?(replications = 10) spec =
  if replications <= 0 then invalid_arg "Replicate.run: need at least one replication";
  let nprocs =
    Bufsize_soc.Topology.num_processors (Bufsize_soc.Traffic.topology spec.Sim_run.traffic)
  in
  let agg =
    {
      replications;
      per_proc_lost = Array.init nprocs (fun _ -> Stats.create ());
      per_proc_offered = Array.init nprocs (fun _ -> Stats.create ());
      per_proc_latency = Array.init nprocs (fun _ -> Stats.create ());
      total_lost = Stats.create ();
      total_offered = Stats.create ();
      loss_fraction = Stats.create ();
      mean_sojourn = Stats.create ();
    }
  in
  for i = 0 to replications - 1 do
    let report = Sim_run.run { spec with Sim_run.seed = spec.Sim_run.seed + (1000 * i) } in
    Array.iteri
      (fun p (s : Metrics.proc_stats) ->
        Stats.add agg.per_proc_lost.(p) (float_of_int s.Metrics.lost);
        Stats.add agg.per_proc_offered.(p) (float_of_int s.Metrics.offered);
        if Float.is_finite s.Metrics.mean_latency then
          Stats.add agg.per_proc_latency.(p) s.Metrics.mean_latency)
      report.Metrics.per_proc;
    Stats.add agg.total_lost (float_of_int (Metrics.total_lost report));
    Stats.add agg.total_offered (float_of_int (Metrics.total_offered report));
    Stats.add agg.loss_fraction (Metrics.loss_fraction report);
    let sj = Metrics.mean_buffer_sojourn report in
    if Float.is_finite sj then Stats.add agg.mean_sojourn sj
  done;
  agg

let mean_per_proc_lost agg = Array.map Stats.mean agg.per_proc_lost

let pp ppf agg =
  Format.fprintf ppf "@[<v>%d replications: total lost %.1f +- %.1f (of %.1f offered, %.2f%%)"
    agg.replications (Stats.mean agg.total_lost)
    (Stats.std_error agg.total_lost)
    (Stats.mean agg.total_offered)
    (100. *. Stats.mean agg.loss_fraction);
  Array.iteri
    (fun p s -> Format.fprintf ppf "@,  proc %2d: mean lost %.1f" (p + 1) (Stats.mean s))
    agg.per_proc_lost;
  Format.fprintf ppf "@]"
