module Rng = Bufsize_prob.Rng

type view = {
  bus : Bufsize_soc.Topology.bus_id;
  num_clients : int;
  queue_lengths : int array;
  capacities : int array;
  last_served : int;
}

type t =
  | Round_robin
  | Fixed_priority
  | Longest_queue
  | Random
  | Custom of string * (view -> Rng.t -> int option)

let nonempty view = Array.exists (fun l -> l > 0) view.queue_lengths

let longest_queue view =
  let best = ref (-1) in
  for i = 0 to view.num_clients - 1 do
    if view.queue_lengths.(i) > 0 then
      if !best < 0 || view.queue_lengths.(i) > view.queue_lengths.(!best) then best := i
  done;
  if !best < 0 then None else Some !best

let rec choose t rng view =
  if not (nonempty view) then None
  else
    match t with
    | Fixed_priority ->
        let rec scan i = if view.queue_lengths.(i) > 0 then Some i else scan (i + 1) in
        scan 0
    | Longest_queue -> longest_queue view
    | Round_robin ->
        let n = view.num_clients in
        let start = (view.last_served + 1) mod n in
        let rec scan k =
          let i = (start + k) mod n in
          if view.queue_lengths.(i) > 0 then Some i else scan (k + 1)
        in
        scan 0
    | Random ->
        let weights =
          Array.map (fun l -> if l > 0 then 1. else 0.) view.queue_lengths
        in
        Some (Rng.discrete rng weights)
    | Custom (_, f) -> (
        match f view rng with
        | Some i when i >= 0 && i < view.num_clients && view.queue_lengths.(i) > 0 -> Some i
        | Some _ | None -> choose Longest_queue rng view)

let name = function
  | Round_robin -> "round-robin"
  | Fixed_priority -> "fixed-priority"
  | Longest_queue -> "longest-queue"
  | Random -> "random"
  | Custom (n, _) -> n
