(** Multi-replication simulation driver.

    Runs a simulation spec several times with independent RNG streams
    (derived seeds) and aggregates per-processor losses and totals with
    confidence intervals — the paper's "we repeated these experiments for
    10 iterations". *)

type aggregate = {
  replications : int;
  per_proc_lost : Bufsize_numeric.Stats.t array;
  per_proc_offered : Bufsize_numeric.Stats.t array;
  per_proc_latency : Bufsize_numeric.Stats.t array;
      (** per-replication mean end-to-end latency of each processor's
          delivered requests (replications with no delivery contribute
          nothing) *)
  total_lost : Bufsize_numeric.Stats.t;
  total_offered : Bufsize_numeric.Stats.t;
  loss_fraction : Bufsize_numeric.Stats.t;
  mean_sojourn : Bufsize_numeric.Stats.t;
      (** mean buffer sojourn per replication (timeout calibration) *)
}

val run : ?replications:int -> Sim_run.spec -> aggregate
(** Default 10 replications; replication [i] uses seed [spec.seed + 1000 * i]. *)

val mean_per_proc_lost : aggregate -> float array

val pp : Format.formatter -> aggregate -> unit
