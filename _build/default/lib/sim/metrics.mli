(** Simulation output: per-processor and per-buffer statistics.

    Losses are attributed to the {e originating} processor wherever they
    occur along the route (source buffer full, bridge buffer full, or
    timeout drop), matching the paper's per-processor loss plots. *)

type proc_stats = {
  offered : int;  (** requests generated *)
  lost : int;  (** dropped anywhere along the route *)
  delivered : int;  (** reached their destination *)
  mean_latency : float;
      (** average end-to-end delay (creation to delivery) of this
          processor's delivered requests; [nan] when none *)
  max_latency : float;  (** worst observed end-to-end delay; 0 when none *)
}

type buffer_stats = {
  bus : Bufsize_soc.Topology.bus_id;
  client : Bufsize_soc.Traffic.client;
  capacity : int;  (** words *)
  arrivals : int;
  drops : int;  (** rejected because the buffer was full *)
  timeouts : int;  (** dropped by the timeout policy *)
  served : int;
  mean_sojourn : float;  (** average wait of served requests; nan if none *)
  mean_occupancy : float;  (** time-average queue length *)
}

type report = {
  horizon : float;  (** measured interval length (post-warmup) *)
  per_proc : proc_stats array;
  buffers : buffer_stats array;
  events : int;  (** simulator events executed (performance metric) *)
}

val total_offered : report -> int
val total_lost : report -> int
val total_delivered : report -> int

val loss_fraction : report -> float
(** lost / offered (0 when nothing was offered). *)

val mean_buffer_sojourn : report -> float
(** Served-weighted mean sojourn over all buffers — the paper's timeout
    threshold ("the average time spent by a request in a buffer"). *)

val pp : Format.formatter -> report -> unit
