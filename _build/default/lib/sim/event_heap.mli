(** Binary min-heap of timestamped events.

    Ties are broken by insertion sequence number, so simultaneous events
    fire in FIFO order and runs are fully deterministic. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
