type proc_stats = {
  offered : int;
  lost : int;
  delivered : int;
  mean_latency : float;
  max_latency : float;
}

type buffer_stats = {
  bus : Bufsize_soc.Topology.bus_id;
  client : Bufsize_soc.Traffic.client;
  capacity : int;
  arrivals : int;
  drops : int;
  timeouts : int;
  served : int;
  mean_sojourn : float;
  mean_occupancy : float;
}

type report = {
  horizon : float;
  per_proc : proc_stats array;
  buffers : buffer_stats array;
  events : int;
}

let total_offered r = Array.fold_left (fun acc p -> acc + p.offered) 0 r.per_proc
let total_lost r = Array.fold_left (fun acc p -> acc + p.lost) 0 r.per_proc
let total_delivered r = Array.fold_left (fun acc p -> acc + p.delivered) 0 r.per_proc

let loss_fraction r =
  let offered = total_offered r in
  if offered = 0 then 0. else float_of_int (total_lost r) /. float_of_int offered

let mean_buffer_sojourn r =
  let num = ref 0. and den = ref 0 in
  Array.iter
    (fun b ->
      if b.served > 0 && Float.is_finite b.mean_sojourn then begin
        num := !num +. (b.mean_sojourn *. float_of_int b.served);
        den := !den + b.served
      end)
    r.buffers;
  if !den = 0 then Float.nan else !num /. float_of_int !den

let pp ppf r =
  Format.fprintf ppf "@[<v>simulation report (horizon %.4g, %d events):" r.horizon r.events;
  Format.fprintf ppf "@,  offered %d, delivered %d, lost %d (%.2f%%)" (total_offered r)
    (total_delivered r) (total_lost r)
    (100. *. loss_fraction r);
  Array.iteri
    (fun i p ->
      Format.fprintf ppf "@,  proc %2d: offered %6d lost %5d delivered %6d latency %.3g" (i + 1)
        p.offered p.lost p.delivered p.mean_latency)
    r.per_proc;
  Format.fprintf ppf "@]"
