module Mat = Bufsize_numeric.Mat
module Vec = Bufsize_numeric.Vec
module Lu = Bufsize_numeric.Lu

type t = { q : Mat.t }

let of_rates n rates =
  if n <= 0 then invalid_arg "Ctmc.of_rates: need at least one state";
  let q = Mat.zeros n n in
  List.iter
    (fun (i, j, r) ->
      if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Ctmc.of_rates: state out of range";
      if i = j then invalid_arg "Ctmc.of_rates: self loop";
      if r < 0. then invalid_arg "Ctmc.of_rates: negative rate";
      Mat.update q i j (fun x -> x +. r))
    rates;
  for i = 0 to n - 1 do
    let out = ref 0. in
    for j = 0 to n - 1 do
      if j <> i then out := !out +. Mat.get q i j
    done;
    Mat.set q i i (-. !out)
  done;
  { q }

let of_generator m =
  if m.Mat.rows <> m.Mat.cols then invalid_arg "Ctmc.of_generator: not square";
  let n = m.Mat.rows in
  for i = 0 to n - 1 do
    let sum = ref 0. in
    for j = 0 to n - 1 do
      let x = Mat.get m i j in
      if i <> j && x < 0. then invalid_arg "Ctmc.of_generator: negative off-diagonal";
      sum := !sum +. x
    done;
    if Float.abs !sum > 1e-8 then invalid_arg "Ctmc.of_generator: row does not sum to zero"
  done;
  { q = Mat.copy m }

let dim t = t.q.Mat.rows
let generator t = Mat.copy t.q
let rate t i j = Mat.get t.q i j
let exit_rate t i = -.Mat.get t.q i i

let stationary t =
  (* Solve pi Q = 0 with the last balance equation replaced by sum pi = 1:
     transpose to Q' pi' = 0 and overwrite the final row with ones. *)
  let n = dim t in
  if n = 1 then [| 1. |]
  else begin
    let a = Mat.transpose t.q in
    for j = 0 to n - 1 do
      Mat.set a (n - 1) j 1.
    done;
    let b = Array.make n 0. in
    b.(n - 1) <- 1.;
    let pi = Lu.solve a b in
    (* Clamp the tiny negatives produced by roundoff and renormalize. *)
    let pi = Array.map (fun p -> Float.max 0. p) pi in
    let total = Vec.sum pi in
    Array.map (fun p -> p /. total) pi
  end

let is_irreducible t =
  let n = dim t in
  let reaches from =
    let seen = Array.make n false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        for j = 0 to n - 1 do
          if j <> i && Mat.get t.q i j > 0. then dfs j
        done
      end
    in
    dfs from;
    Array.for_all (fun b -> b) seen
  in
  let rec check i = i >= n || (reaches i && check (i + 1)) in
  check 0

let uniformization_rate t =
  let n = dim t in
  let m = ref 0. in
  for i = 0 to n - 1 do
    m := Float.max !m (exit_rate t i)
  done;
  (!m *. 1.0000001) +. 1e-12

let uniformize ?rate t =
  let lambda = match rate with Some r -> r | None -> uniformization_rate t in
  let n = dim t in
  Mat.init n n (fun i j ->
      let base = if i = j then 1. else 0. in
      base +. (Mat.get t.q i j /. lambda))

let transient t pi0 horizon =
  if horizon < 0. then invalid_arg "Ctmc.transient: negative horizon";
  let n = dim t in
  if Vec.dim pi0 <> n then invalid_arg "Ctmc.transient: distribution size mismatch";
  let lambda = uniformization_rate t in
  let p = uniformize ~rate:lambda t in
  let pt = Mat.transpose p in
  let mean = lambda *. horizon in
  (* Truncate the Poisson sum when the accumulated mass is within 1e-12. *)
  let result = Vec.zeros n in
  let term = ref (Vec.copy pi0) in
  let weight = ref (exp (-.mean)) in
  let accumulated = ref 0. in
  let k = ref 0 in
  let max_terms = 16 + int_of_float (mean +. (8. *. sqrt (mean +. 1.))) in
  while !accumulated < 1. -. 1e-12 && !k <= max_terms do
    Vec.axpy !weight !term result;
    accumulated := !accumulated +. !weight;
    term := Mat.mul_vec pt !term;
    incr k;
    weight := !weight *. mean /. float_of_int !k
  done;
  (* Renormalize the truncation remainder. *)
  let total = Vec.sum result in
  if total > 0. then Vec.scale (1. /. total) result else result

let expected_value _t pi f =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. f i)) pi;
  !acc
