module Vec = Bufsize_numeric.Vec

type t = { births : float array; deaths : float array }

let create ~births ~deaths =
  if Array.length births <> Array.length deaths then
    invalid_arg "Birth_death.create: births and deaths lengths differ";
  Array.iter (fun r -> if r < 0. then invalid_arg "Birth_death.create: negative birth rate") births;
  Array.iter (fun r -> if r < 0. then invalid_arg "Birth_death.create: negative death rate") deaths;
  { births; deaths }

let mm1k ~lambda ~mu ~k =
  if k <= 0 then invalid_arg "Birth_death.mm1k: capacity must be positive";
  if lambda <= 0. || mu <= 0. then invalid_arg "Birth_death.mm1k: rates must be positive";
  create ~births:(Array.make k lambda) ~deaths:(Array.make k mu)

let states t = Array.length t.births + 1

let to_ctmc t =
  let n = states t in
  let rates = ref [] in
  for i = 0 to n - 2 do
    if t.births.(i) > 0. then rates := (i, i + 1, t.births.(i)) :: !rates;
    if t.deaths.(i) > 0. then rates := (i + 1, i, t.deaths.(i)) :: !rates
  done;
  Ctmc.of_rates n !rates

let stationary t =
  (* pi_{i+1} = pi_i * birth_i / death_i (product form). *)
  let n = states t in
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for i = 0 to n - 2 do
    pi.(i + 1) <- (if t.deaths.(i) > 0. then pi.(i) *. t.births.(i) /. t.deaths.(i) else 0.)
  done;
  let total = Vec.sum pi in
  Array.map (fun p -> p /. total) pi

module Mm1k = struct
  let distribution ~lambda ~mu ~k = stationary (mm1k ~lambda ~mu ~k)

  let blocking_probability ~lambda ~mu ~k = (distribution ~lambda ~mu ~k).(k)

  let loss_rate ~lambda ~mu ~k = lambda *. blocking_probability ~lambda ~mu ~k

  let mean_customers ~lambda ~mu ~k =
    let pi = distribution ~lambda ~mu ~k in
    let acc = ref 0. in
    Array.iteri (fun i p -> acc := !acc +. (float_of_int i *. p)) pi;
    !acc

  let throughput ~lambda ~mu ~k = lambda *. (1. -. blocking_probability ~lambda ~mu ~k)

  let mean_sojourn ~lambda ~mu ~k =
    mean_customers ~lambda ~mu ~k /. throughput ~lambda ~mu ~k
end
