(** Birth-death chains and M/M/1/K queue closed forms.

    The single-client bus is exactly an M/M/1/K queue; the closed forms
    here validate the CTMDP machinery, the LP solver and the discrete-event
    simulator against each other. *)

type t
(** A birth-death chain on states [0..k]. *)

val create : births:float array -> deaths:float array -> t
(** [create ~births ~deaths] builds a chain with [k+1] states where
    [births.(i)] is the rate [i -> i+1] (length [k]) and [deaths.(i)] the
    rate [i+1 -> i] (length [k]).
    @raise Invalid_argument on length mismatch or negative rates. *)

val mm1k : lambda:float -> mu:float -> k:int -> t
(** The M/M/1/K queue (arrival rate [lambda], service rate [mu],
    capacity [k] customers including the one in service). *)

val states : t -> int
(** Number of states, [k+1]. *)

val to_ctmc : t -> Ctmc.t

val stationary : t -> Bufsize_numeric.Vec.t
(** Product-form stationary distribution (computed directly, not via LU). *)

(** Closed-form M/M/1/K metrics. *)
module Mm1k : sig
  val blocking_probability : lambda:float -> mu:float -> k:int -> float
  (** Probability an arrival finds the system full (Erlang-like loss). *)

  val loss_rate : lambda:float -> mu:float -> k:int -> float
  (** [lambda * blocking_probability]: lost customers per unit time. *)

  val mean_customers : lambda:float -> mu:float -> k:int -> float

  val throughput : lambda:float -> mu:float -> k:int -> float
  (** Accepted (= served, in steady state) customers per unit time. *)

  val mean_sojourn : lambda:float -> mu:float -> k:int -> float
  (** Mean time an accepted customer spends in the system (Little's law). *)
end
