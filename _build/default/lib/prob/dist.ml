type t =
  | Exponential of float
  | Erlang of int * float
  | Deterministic of float
  | Uniform of float * float

let exponential rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  Exponential rate

let erlang k rate =
  if k <= 0 then invalid_arg "Dist.erlang: shape must be positive";
  if rate <= 0. then invalid_arg "Dist.erlang: rate must be positive";
  Erlang (k, rate)

let deterministic x =
  if x < 0. then invalid_arg "Dist.deterministic: negative value";
  Deterministic x

let uniform lo hi =
  if lo < 0. || hi <= lo then invalid_arg "Dist.uniform: need 0 <= lo < hi";
  Uniform (lo, hi)

let mean = function
  | Exponential rate -> 1. /. rate
  | Erlang (k, rate) -> float_of_int k /. rate
  | Deterministic x -> x
  | Uniform (lo, hi) -> (lo +. hi) /. 2.

let variance = function
  | Exponential rate -> 1. /. (rate *. rate)
  | Erlang (k, rate) -> float_of_int k /. (rate *. rate)
  | Deterministic _ -> 0.
  | Uniform (lo, hi) ->
      let w = hi -. lo in
      w *. w /. 12.

let rate d =
  let m = mean d in
  if m <= 0. then infinity else 1. /. m

let sample rng = function
  | Exponential r -> Rng.exponential rng ~rate:r
  | Erlang (k, r) ->
      let acc = ref 0. in
      for _ = 1 to k do
        acc := !acc +. Rng.exponential rng ~rate:r
      done;
      !acc
  | Deterministic x -> x
  | Uniform (lo, hi) -> Rng.float_range rng lo hi

let scale_rate f = function
  | Exponential r -> Exponential (r *. f)
  | Erlang (k, r) -> Erlang (k, r *. f)
  | Deterministic x -> Deterministic (x /. f)
  | Uniform (lo, hi) -> Uniform (lo /. f, hi /. f)

let pp ppf = function
  | Exponential r -> Format.fprintf ppf "Exp(%.4g)" r
  | Erlang (k, r) -> Format.fprintf ppf "Erlang(%d, %.4g)" k r
  | Deterministic x -> Format.fprintf ppf "Det(%.4g)" x
  | Uniform (lo, hi) -> Format.fprintf ppf "U[%.4g, %.4g)" lo hi
