(** Finite continuous-time Markov chains.

    A CTMC is represented by its generator matrix [Q]: off-diagonal entries
    are nonnegative transition rates, each diagonal entry is minus its row
    sum.  The stationary distribution solves [pi Q = 0], [sum pi = 1]; it is
    the analytic backbone of policy evaluation and of the translation from
    CTMDP policies to buffer occupancy distributions. *)

type t
(** A validated generator. *)

val of_rates : int -> (int * int * float) list -> t
(** [of_rates n rates] builds an [n]-state generator from
    [(from, to, rate)] triples (accumulating duplicates; diagonal computed).
    @raise Invalid_argument on negative rates, self loops, or out-of-range
    states. *)

val of_generator : Bufsize_numeric.Mat.t -> t
(** Validates an explicit generator matrix: square, nonnegative
    off-diagonal, rows summing to (numerically) zero. *)

val dim : t -> int

val generator : t -> Bufsize_numeric.Mat.t
(** A copy of the generator matrix. *)

val rate : t -> int -> int -> float
(** [rate t i j] with [i <> j] is the transition rate. *)

val exit_rate : t -> int -> float
(** Total rate out of a state ([-Q_ii]). *)

val stationary : t -> Bufsize_numeric.Vec.t
(** Stationary distribution.  Solves the balance equations with one
    replaced by the normalization row (LU).  For chains that are not
    irreducible the result is a stationary distribution of one closed
    class as selected by the linear solve.
    @raise Bufsize_numeric.Lu.Singular on pathological generators. *)

val is_irreducible : t -> bool
(** Graph check: every state reaches every other along positive rates. *)

val uniformization_rate : t -> float
(** Smallest valid uniformization constant, [max_i exit_rate + epsilon]. *)

val uniformize : ?rate:float -> t -> Bufsize_numeric.Mat.t
(** Discrete-time transition matrix [P = I + Q/rate]; [rate] defaults to
    {!uniformization_rate}. *)

val transient : t -> Bufsize_numeric.Vec.t -> float -> Bufsize_numeric.Vec.t
(** [transient t pi0 horizon] is the distribution at time [horizon] from
    initial distribution [pi0], via uniformization with adaptive Poisson
    truncation. *)

val expected_value : t -> Bufsize_numeric.Vec.t -> (int -> float) -> float
(** [expected_value t pi f] is [sum_i pi_i f(i)]. *)
