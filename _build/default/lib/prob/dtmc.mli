(** Finite discrete-time Markov chains.

    Companion to {!Ctmc}: stationary distributions of stochastic matrices
    and the embedded jump chain of a CTMC.  Used to cross-validate
    uniformization and in tests. *)

type t

val of_matrix : Bufsize_numeric.Mat.t -> t
(** Validates a row-stochastic matrix (rows sum to 1, entries in [0,1]). *)

val embedded_of_ctmc : Ctmc.t -> t
(** Jump chain of a CTMC: [P_ij = q_ij / exit_i] (absorbing states become
    self-loops). *)

val dim : t -> int

val matrix : t -> Bufsize_numeric.Mat.t

val step : t -> Bufsize_numeric.Vec.t -> Bufsize_numeric.Vec.t
(** One transition: [pi P]. *)

val stationary : t -> Bufsize_numeric.Vec.t
(** Solves [pi P = pi], [sum pi = 1] by LU on [(P' - I)] with a
    normalization row. *)

val power_stationary : ?tol:float -> ?max_iter:int -> t -> Bufsize_numeric.Vec.t
(** Power iteration from the uniform distribution; used in tests as an
    independent check of {!stationary}. *)
