lib/prob/rng.mli:
