lib/prob/dist.ml: Format Rng
