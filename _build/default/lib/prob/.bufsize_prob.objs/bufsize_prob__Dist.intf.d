lib/prob/dist.mli: Format Rng
