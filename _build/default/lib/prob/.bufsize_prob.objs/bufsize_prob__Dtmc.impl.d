lib/prob/dtmc.ml: Array Bufsize_numeric Ctmc Float
