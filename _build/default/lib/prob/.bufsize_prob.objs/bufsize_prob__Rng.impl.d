lib/prob/rng.ml: Array Float Int Int64
