lib/prob/birth_death.mli: Bufsize_numeric Ctmc
