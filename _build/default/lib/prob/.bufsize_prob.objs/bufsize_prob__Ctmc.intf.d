lib/prob/ctmc.mli: Bufsize_numeric
