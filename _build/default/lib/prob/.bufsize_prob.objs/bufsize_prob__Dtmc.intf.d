lib/prob/dtmc.mli: Bufsize_numeric Ctmc
