lib/prob/ctmc.ml: Array Bufsize_numeric Float List
