lib/prob/birth_death.ml: Array Bufsize_numeric Ctmc
