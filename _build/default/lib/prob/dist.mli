(** Holding-time distributions for traffic and service models.

    The paper's model is exponential throughout; [Erlang] and
    [Deterministic] are provided for sensitivity experiments (the CTMDP
    abstraction assumes memorylessness, the simulator does not). *)

type t =
  | Exponential of float  (** rate *)
  | Erlang of int * float  (** shape k, rate per stage *)
  | Deterministic of float  (** constant value *)
  | Uniform of float * float  (** [lo, hi) *)

val mean : t -> float

val variance : t -> float

val rate : t -> float
(** [1 / mean]; the effective event rate of the distribution. *)

val sample : Rng.t -> t -> float

val exponential : float -> t
(** @raise Invalid_argument on nonpositive rate. *)

val erlang : int -> float -> t

val deterministic : float -> t

val uniform : float -> float -> t

val scale_rate : float -> t -> t
(** [scale_rate f d] speeds the distribution up by factor [f]
    (mean divided by [f]). *)

val pp : Format.formatter -> t -> unit
