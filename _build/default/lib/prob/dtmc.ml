module Mat = Bufsize_numeric.Mat
module Vec = Bufsize_numeric.Vec
module Lu = Bufsize_numeric.Lu

type t = { p : Mat.t }

let of_matrix m =
  if m.Mat.rows <> m.Mat.cols then invalid_arg "Dtmc.of_matrix: not square";
  for i = 0 to m.Mat.rows - 1 do
    let sum = ref 0. in
    for j = 0 to m.Mat.cols - 1 do
      let x = Mat.get m i j in
      if x < -1e-12 || x > 1. +. 1e-9 then invalid_arg "Dtmc.of_matrix: entry out of [0,1]";
      sum := !sum +. x
    done;
    if Float.abs (!sum -. 1.) > 1e-8 then invalid_arg "Dtmc.of_matrix: row does not sum to one"
  done;
  { p = Mat.copy m }

let embedded_of_ctmc c =
  let n = Ctmc.dim c in
  let p =
    Mat.init n n (fun i j ->
        let exit = Ctmc.exit_rate c i in
        if exit <= 0. then if i = j then 1. else 0.
        else if i = j then 0.
        else Ctmc.rate c i j /. exit)
  in
  { p }

let dim t = t.p.Mat.rows
let matrix t = Mat.copy t.p
let step t pi = Mat.mul_vec (Mat.transpose t.p) pi

let stationary t =
  let n = dim t in
  if n = 1 then [| 1. |]
  else begin
    (* (P^T - I) pi = 0 with the last row replaced by normalization. *)
    let a = Mat.init n n (fun i j -> Mat.get t.p j i -. if i = j then 1. else 0.) in
    for j = 0 to n - 1 do
      Mat.set a (n - 1) j 1.
    done;
    let b = Array.make n 0. in
    b.(n - 1) <- 1.;
    let pi = Lu.solve a b in
    let pi = Array.map (Float.max 0.) pi in
    let total = Vec.sum pi in
    Array.map (fun p -> p /. total) pi
  end

let power_stationary ?(tol = 1e-12) ?(max_iter = 100_000) t =
  let n = dim t in
  let pt = Mat.transpose t.p in
  let rec loop pi iters =
    let next = Mat.mul_vec pt pi in
    if Vec.norm_inf (Vec.sub next pi) < tol || iters >= max_iter then next
    else loop next (iters + 1)
  in
  loop (Array.make n (1. /. float_of_int n)) 0
