(** Damped Newton iteration for square nonlinear systems [F(x) = 0].

    Used by {!Bufsize_soc.Monolithic} to reproduce the paper's observation
    that a generic nonlinear solver fails on the coupled (quadratic)
    bus-bridge formulation, which motivates the split-into-linear-subsystems
    method. *)

type report = {
  converged : bool;
  solution : Vec.t;  (** last iterate, whether converged or not *)
  residual : float;  (** |F(x)|_inf at the last iterate *)
  iterations : int;
  singular_jacobian : bool;  (** iteration aborted on a singular Jacobian *)
}

val numeric_jacobian : ?h:float -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t
(** Forward-difference Jacobian of [f] at [x] with step [h]
    (default [1e-7] scaled by component magnitude). *)

val solve :
  ?max_iter:int ->
  ?tol:float ->
  ?damped:bool ->
  ?jacobian:(Vec.t -> Mat.t) ->
  ?lower:Vec.t ->
  f:(Vec.t -> Vec.t) ->
  x0:Vec.t ->
  unit ->
  report
(** Newton iteration on [|F|_inf].  With [damped] (the default) each step
    runs a halving line search on the residual norm; with [~damped:false]
    the raw step is always taken — the behaviour of a plain generic solver,
    which diverges on many nonlinear systems that the damped variant still
    cracks.  [tol] (default [1e-9]) is the residual target, [max_iter]
    defaults to [200].  When [jacobian] is omitted, {!numeric_jacobian} is
    used.  When [lower] is given, iterates are clipped componentwise from
    below (crude projection, enough to keep probability-like unknowns in
    range). *)
